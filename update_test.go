package shoremt

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// TestUpdateTransferWorkloadNoVisibleDeadlocks is the headline guarantee
// of the managed API: under 8-way contention with random lock order,
// DB.Update commits every transfer with zero caller-visible deadlock or
// timeout errors — the engine absorbs them — and money is conserved.
func TestUpdateTransferWorkloadNoVisibleDeadlocks(t *testing.T) {
	// Deadlock detection (on by default at StageFinal) converts cycles
	// into retryable victims within milliseconds; the lock timeout is kept
	// generous so an oversubscribed CI machine cannot turn honest FIFO
	// waits into timeout storms. The attempt budget absorbs the victims.
	db := openTest(t, Options{
		LockTimeout: 2 * time.Second,
		Retry:       RetryPolicy{MaxAttempts: 100},
	})
	const (
		accounts = 16
		workers  = 8
		perW     = 25
		initial  = 1000
	)
	key := func(i int) []byte { return []byte(fmt.Sprintf("a%03d", i)) }
	enc := func(v int64) []byte { return []byte(strconv.FormatInt(v, 10)) }
	dec := func(b []byte) int64 {
		v, err := strconv.ParseInt(string(b), 10, 64)
		if err != nil {
			t.Errorf("bad balance %q", b)
		}
		return v
	}

	var ix *Index
	if err := db.Update(context.Background(), func(tx *Tx) error {
		var err error
		ix, err = db.CreateIndex(tx)
		if err != nil {
			return err
		}
		for i := 0; i < accounts; i++ {
			if err := ix.Insert(tx, key(i), enc(initial)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failures atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				from, to := (w*7+i)%accounts, (w*3+i*5+1)%accounts
				if from == to {
					continue
				}
				err := db.Update(context.Background(), func(tx *Tx) error {
					fb, _, err := ix.Get(tx, key(from))
					if err != nil {
						return err
					}
					tb, _, err := ix.Get(tx, key(to))
					if err != nil {
						return err
					}
					if err := ix.Update(tx, key(from), enc(dec(fb)-1)); err != nil {
						return err
					}
					return ix.Update(tx, key(to), enc(dec(tb)+1))
				})
				if err != nil {
					failures.Add(1)
					t.Errorf("worker %d transfer %d: %v", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d caller-visible errors (want 0)", failures.Load())
	}

	var total int64
	if err := db.View(context.Background(), func(tx *Tx) error {
		total = 0
		return ix.Scan(tx, nil, nil, func(k, v []byte) bool {
			total += dec(v)
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	if total != accounts*initial {
		t.Fatalf("money not conserved: %d != %d", total, accounts*initial)
	}
}

// TestUpdateCancelUnblocksConflictingWait: with LockTimeout at 5s, a
// cancelled Update blocked on a conflicting row lock returns in under
// 100ms with ErrCanceled, and the lock stays grantable.
func TestUpdateCancelUnblocksConflictingWait(t *testing.T) {
	db := openTest(t, Options{LockTimeout: 5 * time.Second})
	var ix *Index
	if err := db.Update(context.Background(), func(tx *Tx) error {
		var err error
		ix, err = db.CreateIndex(tx)
		if err != nil {
			return err
		}
		return ix.Insert(tx, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	holder, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Update(holder, []byte("k"), []byte("held")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- db.Update(ctx, func(tx *Tx) error {
			return ix.Update(tx, []byte("k"), []byte("blocked"))
		})
	}()
	time.Sleep(30 * time.Millisecond) // let the waiter block
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("cancel took %v to unblock (LockTimeout is 5s)", elapsed)
		}
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Update still blocked")
	}
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	// Queue healthy: an uncancelled Update succeeds immediately.
	if err := db.Update(context.Background(), func(tx *Tx) error {
		return ix.Update(tx, []byte("k"), []byte("after"))
	}); err != nil {
		t.Fatalf("lock not grantable after cancelled wait: %v", err)
	}
}

// TestViewRejectsWritesAndAllowsReads: every write method under View
// returns ErrReadOnly; reads work.
func TestViewRejectsWritesAndAllowsReads(t *testing.T) {
	db := openTest(t, Options{})
	var (
		tb  *Table
		ix  *Index
		rid RID
	)
	if err := db.Update(context.Background(), func(tx *Tx) error {
		var err error
		if tb, err = db.CreateTable(tx); err != nil {
			return err
		}
		if ix, err = db.CreateIndex(tx); err != nil {
			return err
		}
		if rid, err = tb.Insert(tx, []byte("row")); err != nil {
			return err
		}
		return ix.Insert(tx, []byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	err := db.View(context.Background(), func(tx *Tx) error {
		if got, err := tb.Get(tx, rid); err != nil || string(got) != "row" {
			t.Errorf("View Get = %q, %v", got, err)
		}
		if v, ok, err := ix.Get(tx, []byte("k")); err != nil || !ok || string(v) != "v" {
			t.Errorf("View index Get = %q, %v, %v", v, ok, err)
		}
		for name, werr := range map[string]error{
			"table insert": func() error { _, err := tb.Insert(tx, []byte("x")); return err }(),
			"table update": tb.Update(tx, rid, []byte("x")),
			"table delete": tb.Delete(tx, rid),
			"index insert": ix.Insert(tx, []byte("z"), []byte("x")),
			"index update": ix.Update(tx, []byte("k"), []byte("x")),
			"index delete": func() error { _, err := ix.Delete(tx, []byte("k")); return err }(),
			"create table": func() error { _, err := db.CreateTable(tx); return err }(),
			"create index": func() error { _, err := db.CreateIndex(tx); return err }(),
		} {
			if !errors.Is(werr, ErrReadOnly) {
				t.Errorf("%s under View = %v, want ErrReadOnly", name, werr)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Nothing leaked from the rejected writes.
	if err := db.View(context.Background(), func(tx *Tx) error {
		if got, err := tb.Get(tx, rid); err != nil || string(got) != "row" {
			t.Errorf("row mutated by rejected writes: %q, %v", got, err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateGivesUpAfterRetryCap: a closure that always reports a
// deadlock runs exactly MaxAttempts times, and the final error still
// matches ErrDeadlock.
func TestUpdateGivesUpAfterRetryCap(t *testing.T) {
	db := openTest(t, Options{Retry: RetryPolicy{
		MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond,
	}})
	attempts := 0
	err := db.Update(context.Background(), func(tx *Tx) error {
		attempts++
		return fmt.Errorf("induced: %w", ErrDeadlock)
	})
	if attempts != 3 {
		t.Fatalf("closure ran %d times, want 3", attempts)
	}
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want wrapped ErrDeadlock", err)
	}
}

// TestUpdateDoesNotRetryOtherErrors: a non-retryable closure error aborts
// once and is returned verbatim.
func TestUpdateDoesNotRetryOtherErrors(t *testing.T) {
	db := openTest(t, Options{})
	boom := errors.New("boom")
	attempts := 0
	err := db.Update(context.Background(), func(tx *Tx) error {
		attempts++
		return boom
	})
	if attempts != 1 {
		t.Fatalf("closure ran %d times, want 1", attempts)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestManagedTxRefusesLifecycleCalls: Commit/Abort/CommitAsync inside an
// Update or View closure return ErrManaged (the runner owns those).
func TestManagedTxRefusesLifecycleCalls(t *testing.T) {
	db := openTest(t, Options{})
	if err := db.Update(context.Background(), func(tx *Tx) error {
		if err := tx.Commit(); !errors.Is(err, ErrManaged) {
			t.Errorf("Commit = %v, want ErrManaged", err)
		}
		if err := tx.Abort(); !errors.Is(err, ErrManaged) {
			t.Errorf("Abort = %v, want ErrManaged", err)
		}
		if _, err := tx.CommitAsync(); !errors.Is(err, ErrManaged) {
			t.Errorf("CommitAsync = %v, want ErrManaged", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestManualCommitRetryAfterCancelledWait: a manual commit whose
// durability wait is cancelled leaves the transaction in doubt and
// retryable — a second Commit resumes the wait (ignoring the dead
// context, since the caller explicitly asked to finish) and succeeds.
func TestManualCommitRetryAfterCancelledWait(t *testing.T) {
	cfg := core.StageConfig(core.StagePipeline)
	cfg.LogDesign = wal.DesignCoupled // no internal flusher: the daemon's window gates hardening
	cfg.PipelineInterval = 300 * time.Millisecond
	db := openTest(t, Options{Advanced: &cfg})

	ctx, cancel := context.WithCancel(context.Background())
	tx, err := db.BeginCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(tx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Insert(tx, []byte("row")); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if err := tx.Commit(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("first Commit = %v, want ErrCanceled", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("retried Commit = %v, want nil", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Fatalf("third Commit = %v, want ErrTxDone", err)
	}
}

// TestBeginCtxAlreadyCancelled: a dead context fails Begin fast.
func TestBeginCtxAlreadyCancelled(t *testing.T) {
	db := openTest(t, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.BeginCtx(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("BeginCtx = %v, want ErrCanceled", err)
	}
	if err := db.Update(ctx, func(tx *Tx) error { return nil }); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Update = %v, want ErrCanceled", err)
	}
}

// TestUpdateWorksAcrossStages: the managed API behaves identically on
// the baseline and pipeline engines (View included).
func TestUpdateWorksAcrossStages(t *testing.T) {
	for _, stage := range []Stage{StageBaseline, StageFinal, StagePipeline} {
		stage := stage
		t.Run(stage.String(), func(t *testing.T) {
			db := openTest(t, Options{Stage: stage})
			var ix *Index
			if err := db.Update(context.Background(), func(tx *Tx) error {
				var err error
				ix, err = db.CreateIndex(tx)
				if err != nil {
					return err
				}
				return ix.Insert(tx, []byte("k"), []byte("v1"))
			}); err != nil {
				t.Fatal(err)
			}
			if err := db.View(context.Background(), func(tx *Tx) error {
				v, ok, err := ix.Get(tx, []byte("k"))
				if err != nil || !ok || string(v) != "v1" {
					t.Errorf("View Get = %q, %v, %v", v, ok, err)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
