package shoremt

import (
	"errors"

	"repro/internal/btree"
)

// isBtreeDup reports a duplicate-key failure from the index layer.
func isBtreeDup(err error) bool { return errors.Is(err, btree.ErrDuplicateKey) }

// isBtreeNotFound reports a missing-key failure from the index layer.
func isBtreeNotFound(err error) bool { return errors.Is(err, btree.ErrKeyNotFound) }
