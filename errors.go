package shoremt

import (
	"errors"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/lock"
)

// Sentinel errors surfaced by the public API. Test with errors.Is; the
// engine wraps them with per-occurrence detail.
var (
	// ErrDeadlock marks a transaction chosen as a deadlock victim. The
	// transaction has been (or must be) aborted; the whole unit of work
	// can be retried — DB.Update does so automatically.
	ErrDeadlock = lock.ErrDeadlock
	// ErrTimeout marks a lock wait that exceeded Options.LockTimeout.
	// Like ErrDeadlock it is retryable, and DB.Update retries it.
	ErrTimeout = lock.ErrTimeout
	// ErrCanceled marks an operation abandoned because its context was
	// cancelled or its deadline passed. It wraps the context's error, so
	// errors.Is(err, context.Canceled) (or DeadlineExceeded) also holds.
	// Cancellation is not retryable: DB.Update stops and returns it.
	// A cancelled lock wait is dequeued cleanly — FIFO grant order for
	// the waiters behind it is unaffected. A cancelled commit wait leaves
	// the transaction in doubt (see Tx.Commit).
	ErrCanceled = lock.ErrCanceled
	// ErrReadOnly is returned by every write method of a transaction
	// running under DB.View.
	ErrReadOnly = errors.New("shoremt: read-only transaction")
	// ErrNoRecord is returned by Table.Get/Update/Delete when the RID
	// does not name a live record.
	ErrNoRecord = core.ErrNoRecord
	// ErrTxDone is returned when using a transaction after Commit/Abort.
	ErrTxDone = errors.New("shoremt: transaction already finished")
	// ErrManaged is returned by Commit/Abort on a transaction whose
	// lifecycle belongs to DB.Update or DB.View: the closure only does
	// the work; committing, aborting and retrying are the engine's job.
	ErrManaged = errors.New("shoremt: transaction lifecycle is managed by Update/View")
	// ErrDuplicate is returned by Index.Insert for an existing key.
	ErrDuplicate = errors.New("shoremt: duplicate key")
	// ErrNotFound is returned by Index.Update/Delete for a missing key.
	ErrNotFound = errors.New("shoremt: key not found")
)

// isBtreeDup reports a duplicate-key failure from the index layer.
func isBtreeDup(err error) bool { return errors.Is(err, btree.ErrDuplicateKey) }

// isBtreeNotFound reports a missing-key failure from the index layer.
func isBtreeNotFound(err error) bool { return errors.Is(err, btree.ErrKeyNotFound) }
