package shoremt

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, opts Options) *DB {
	t.Helper()
	if opts.CleanerInterval == 0 {
		opts.CleanerInterval = -1 // keep tests deterministic
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCloseIdempotent(t *testing.T) {
	db := openTest(t, Options{})
	ctx := context.Background()
	err := db.Update(ctx, func(tx *Tx) error {
		_, err := db.CreateTable(tx)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	// Every later call — a signal handler racing a deferred cleanup, an
	// error path double close — must be a silent no-op.
	for i := 0; i < 3; i++ {
		if err := db.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+2, err)
		}
	}
}

func TestCloseIdempotentConcurrent(t *testing.T) {
	db := openTest(t, Options{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = db.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Close %d: %v", i, err)
		}
	}
}

func TestPublicTableRoundTrip(t *testing.T) {
	db := openTest(t, Options{})
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable(tx)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(tx, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := tb.Get(tx, rid); err != nil || string(got) != "hello" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := tb.Update(tx, rid, []byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Reopen handle by id.
	tb2 := db.OpenTable(tb.ID())
	tx2, _ := db.Begin()
	if got, err := tb2.Get(tx2, rid); err != nil || string(got) != "world" {
		t.Fatalf("after commit: %q, %v", got, err)
	}
	count := 0
	if err := tb2.Scan(tx2, func(_ RID, rec []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("scan count = %d", count)
	}
	if err := tb2.Delete(tx2, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tb2.Get(tx2, rid); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("get after delete = %v", err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicIndexErrors(t *testing.T) {
	db := openTest(t, Options{})
	tx, _ := db.Begin()
	ix, err := db.CreateIndex(tx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(tx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(tx, []byte("k"), []byte("v2")); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate = %v", err)
	}
	if err := ix.Update(tx, []byte("missing"), []byte("v")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing = %v", err)
	}
	if _, err := ix.Delete(tx, []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing = %v", err)
	}
	old, err := ix.Delete(tx, []byte("k"))
	if err != nil || string(old) != "v1" {
		t.Fatalf("delete = %q, %v", old, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestTxDoneGuards(t *testing.T) {
	db := openTest(t, Options{})
	tx, _ := db.Begin()
	tb, err := db.CreateTable(tx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("abort after commit = %v", err)
	}
	if _, err := tb.Insert(tx, []byte("x")); !errors.Is(err, ErrTxDone) {
		t.Errorf("insert on done tx = %v", err)
	}
	if _, err := tb.Get(tx, RID{}); !errors.Is(err, ErrTxDone) {
		t.Errorf("get on done tx = %v", err)
	}
}

func TestPublicAbortRollsBack(t *testing.T) {
	db := openTest(t, Options{})
	tx, _ := db.Begin()
	ix, err := db.CreateIndex(tx)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(tx, []byte("keep"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin()
	if err := ix.Insert(tx2, []byte("drop"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	tx3, _ := db.Begin()
	if _, ok, _ := ix.Get(tx3, []byte("drop")); ok {
		t.Fatal("aborted key visible")
	}
	if _, ok, _ := ix.Get(tx3, []byte("keep")); !ok {
		t.Fatal("committed key lost")
	}
	if err := tx3.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestFileBackedPersistence(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CleanerInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	ix, err := db.CreateIndex(tx)
	if err != nil {
		t.Fatal(err)
	}
	ixID := ix.ID()
	for i := 0; i < 200; i++ {
		if err := ix.Insert(tx, []byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// Files exist.
	if _, err := filepath.Glob(filepath.Join(dir, "*")); err != nil {
		t.Fatal(err)
	}
	// Reopen: recovery replays/loads the durable state.
	db2 := openTest(t, Options{Dir: dir})
	ix2, err := db2.OpenIndex(ixID)
	if err != nil {
		t.Fatal(err)
	}
	tx2, _ := db2.Begin()
	count := 0
	if err := ix2.Scan(tx2, nil, nil, func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 200 {
		t.Fatalf("reopened index has %d keys, want 200", count)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestStagesAllFunctional(t *testing.T) {
	for _, stage := range Stages() {
		stage := stage
		t.Run(stage.String(), func(t *testing.T) {
			db := openTest(t, Options{Stage: stage, BufferFrames: 128})
			tx, _ := db.Begin()
			tb, err := db.CreateTable(tx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				if _, err := tb.Insert(tx, []byte("row")); err != nil {
					t.Fatal(err)
				}
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			st := db.Stats()
			if st.Tx.Commits != 1 {
				t.Errorf("commits = %d", st.Tx.Commits)
			}
		})
	}
}

func TestBufferShardsOption(t *testing.T) {
	// An explicit shard count survives plumbing into the engine, and the
	// pre-bpool2 stages keep the original single clock hand by default.
	db := openTest(t, Options{BufferShards: 2, BufferFrames: 128})
	if got := len(db.Stats().Buffer.Shards); got != 2 {
		t.Fatalf("shard count = %d, want 2", got)
	}
	ctx := context.Background()
	var rid RID
	tb := (*Table)(nil)
	err := db.Update(ctx, func(tx *Tx) error {
		var err error
		tb, err = db.CreateTable(tx)
		if err != nil {
			return err
		}
		rid, err = tb.Insert(tx, []byte("sharded"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(ctx, func(tx *Tx) error {
		got, err := tb.Get(tx, rid)
		if err != nil || string(got) != "sharded" {
			return fmt.Errorf("Get = %q, %v", got, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh pool serves its first misses from the free lists.
	if st := db.Stats().Buffer; st.FreeListHits == 0 {
		t.Errorf("no free-list allocations recorded: %+v", st)
	}

	base := openTest(t, Options{Stage: StageBaseline, BufferFrames: 128})
	if got := len(base.Stats().Buffer.Shards); got != 1 {
		t.Errorf("baseline shard count = %d, want 1", got)
	}
}

func TestDefaultStageIsFinal(t *testing.T) {
	// The zero Options must open the finished Shore-MT, not the baseline.
	db := openTest(t, Options{})
	cfg := db.Engine().Config()
	if cfg.Stage.String() != "final" {
		t.Fatalf("default stage = %q, want final", cfg.Stage)
	}
	if StageDefault.String() != "final" || StageBaseline.String() != "baseline" {
		t.Errorf("stage names: default=%q baseline=%q", StageDefault, StageBaseline)
	}
	if len(Stages()) != 8 {
		t.Errorf("Stages() has %d entries", len(Stages()))
	}
	if StagePipeline.String() != "pipeline" {
		t.Errorf("pipeline stage name = %q", StagePipeline)
	}
}

func TestCommitAsyncDurable(t *testing.T) {
	db := openTest(t, Options{Stage: StagePipeline, BufferFrames: 128})
	tx1, _ := db.Begin()
	tb, err := db.CreateTable(tx1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(tx1, []byte("async"))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := tx1.CommitAsync()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-ch; err != nil {
		t.Fatalf("async commit: %v", err)
	}
	if _, err := tx1.CommitAsync(); err != ErrTxDone {
		t.Fatalf("second CommitAsync: %v", err)
	}
	tx2, _ := db.Begin()
	got, err := tb.Get(tx2, rid)
	if err != nil || string(got) != "async" {
		t.Fatalf("after async commit: %q, %v", got, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := db.Stats(); st.Pipeline.Requests == 0 {
		t.Errorf("flush daemon saw no harden requests: %+v", st.Pipeline)
	}
}

// TestCommitAsyncWorksAtEveryStage: the API must degrade gracefully to a
// blocking commit when the pipeline is off.
func TestCommitAsyncWorksAtEveryStage(t *testing.T) {
	for _, stage := range []Stage{StageBaseline, StageFinal, StagePipeline} {
		stage := stage
		t.Run(stage.String(), func(t *testing.T) {
			db := openTest(t, Options{Stage: stage, BufferFrames: 128})
			tx1, _ := db.Begin()
			tb, err := db.CreateTable(tx1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := tb.Insert(tx1, []byte("x")); err != nil {
				t.Fatal(err)
			}
			ch, err := tx1.CommitAsync()
			if err != nil {
				t.Fatal(err)
			}
			if err := <-ch; err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDurabilityRelaxedCommit(t *testing.T) {
	db := openTest(t, Options{Stage: StagePipeline, Durability: DurabilityRelaxed, BufferFrames: 128})
	tx1, _ := db.Begin()
	tb, err := db.CreateTable(tx1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(tx1, []byte("relaxed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	// Relaxed commit released locks at pre-commit: the row is readable
	// immediately even if hardening is still in flight.
	tx2, _ := db.Begin()
	got, err := tb.Get(tx2, rid)
	if err != nil || string(got) != "relaxed" {
		t.Fatalf("after relaxed commit: %q, %v", got, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestLockTimeoutSurfaces(t *testing.T) {
	db := openTest(t, Options{LockTimeout: 50 * time.Millisecond})
	tx1, _ := db.Begin()
	tb, err := db.CreateTable(tx1)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tb.Insert(tx1, []byte("v"))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := db.Begin()
	if err := tb.Update(tx2, rid, []byte("w")); err != nil {
		t.Fatal(err)
	}
	// Without the deadlock detector firing (no cycle), a conflicting read
	// must time out.
	tx3, _ := db.Begin()
	_, err = tb.Get(tx3, rid)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("conflicting read = %v, want timeout", err)
	}
	_ = tx3.Abort()
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestOptionsSLI(t *testing.T) {
	db := openTest(t, Options{SLI: true})
	ctx := context.Background()
	var tb *Table
	if err := db.Update(ctx, func(tx *Tx) error {
		var err error
		tb, err = db.CreateTable(tx)
		if err != nil {
			return err
		}
		_, err = tb.Insert(tx, []byte("v0"))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	// A single worker's transaction chain inherits its db/store intent
	// locks instead of re-acquiring them through the lock table.
	for i := 0; i < 10; i++ {
		if err := db.Update(ctx, func(tx *Tx) error {
			rid, err := tb.Insert(tx, []byte("v"))
			if err != nil {
				return err
			}
			// The read-back's intent and row locks are all covered by the
			// insert's grants: answered by the private cache.
			_, err = tb.Get(tx, rid)
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats().Lock
	if st.Inherits == 0 || st.InheritedGrants == 0 {
		t.Fatalf("SLI never exercised: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatalf("lock cache never hit: %+v", st)
	}
	// Reads from another worker while the agent's locks are parked must
	// still see everything (intent locks are revocable/shareable).
	n := 0
	if err := db.View(ctx, func(tx *Tx) error {
		n = 0
		return tb.Scan(tx, func(RID, []byte) bool { n++; return true })
	}); err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("scan saw %d rows, want 11", n)
	}
}

// TestPublicOLCOption drives index traffic with optimistic latch
// coupling on through the managed API and checks the new stats surface.
func TestPublicOLCOption(t *testing.T) {
	db := openTest(t, Options{OLC: true})
	ctx := context.Background()
	var ix *Index
	err := db.Update(ctx, func(tx *Tx) error {
		var err error
		ix, err = db.CreateIndex(tx)
		if err != nil {
			return err
		}
		for i := 0; i < 1500; i++ {
			if err := ix.Insert(tx, []byte(fmt.Sprintf("key%06d", i)), []byte("v")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = db.View(ctx, func(tx *Tx) error {
		for i := 0; i < 1500; i += 7 {
			k := []byte(fmt.Sprintf("key%06d", i))
			v, ok, err := ix.Get(tx, k)
			if err != nil || !ok || string(v) != "v" {
				return fmt.Errorf("Get(%s) = %q, %v, %v", k, v, ok, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := db.Stats().Btree
	if s.OptDescents == 0 {
		t.Fatal("OLC enabled but no optimistic descents recorded")
	}
	if s.OptDescents < 10*(s.Restarts+s.Fallbacks) {
		t.Fatalf("optimistic descents (%d) should dwarf restarts (%d) + fallbacks (%d) on this mix",
			s.OptDescents, s.Restarts, s.Fallbacks)
	}
}

// TestPublicAutoCheckpoint checks that Options.CheckpointEvery bounds
// recovery without any manual DB.Checkpoint call: the log's master
// record advances on its own as committed work accumulates.
func TestPublicAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CleanerInterval: -1, CheckpointEvery: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	ctx := context.Background()
	var tb *Table
	var rid RID
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := db.Update(ctx, func(tx *Tx) error {
			if tb == nil {
				var err error
				if tb, err = db.CreateTable(tx); err != nil {
					return err
				}
			}
			for i := 0; i < 16; i++ {
				var err error
				if rid, err = tb.Insert(tx, make([]byte, 200)); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		master, err := db.logStore.Master()
		if err != nil {
			t.Fatal(err)
		}
		if master > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("auto-checkpoint never ran")
		}
	}
	// Reopen (clean close flushes; the point is the master moved on its
	// own) and confirm the data is there.
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir, CleanerInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tb2 := db2.OpenTable(tb.ID())
	err = db2.View(ctx, func(tx *Tx) error {
		got, err := tb2.Get(tx, rid)
		if err != nil || len(got) != 200 {
			return fmt.Errorf("Get(%v) = %d bytes, %v", rid, len(got), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
