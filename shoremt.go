// Package shoremt is a Go reproduction of Shore-MT, the scalable
// multithreaded storage manager of Johnson, Pandis, Hardavellas, Ailamaki
// and Falsafi (EDBT 2009). It provides a complete transactional storage
// engine — buffer pool, ARIES write-ahead logging and recovery,
// hierarchical two-phase locking, B-link-tree indexes, heap tables, and
// free-space management — in which every component exists in both its
// original (bottlenecked) and optimized (scalable) form, selectable per
// the paper's optimization stages.
//
// Quick start (managed transactions — deadlock retry is the engine's job):
//
//	db, err := shoremt.Open(shoremt.Options{})
//	var rid shoremt.RID
//	err = db.Update(ctx, func(tx *shoremt.Tx) error {
//		table, err := db.CreateTable(tx)
//		if err != nil {
//			return err
//		}
//		rid, err = table.Insert(tx, []byte("hello"))
//		return err
//	})
//
// The manual Begin/Commit path remains for callers that need explicit
// lifecycle control; see DB.Begin and the README's API tour.
package shoremt

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/tx"
	"repro/internal/wal"
)

// Stage selects the optimization level of the engine, mirroring Figure 7.
// The zero value means "the finished Shore-MT" so that Options{} gives the
// scalable engine by default. Every stage exposes the same public API —
// managed Update/View transactions included; see the README's "API tour".
type Stage int

// Optimization stages (see Figure 7 and §7 of the paper, plus the
// post-paper commit pipeline).
const (
	StageDefault  Stage = iota // same as StageFinal
	StageBaseline              // §7.1: the original Shore
	StageBpool1                // §7.2
	StageCaching               // §7.3
	StageLog                   // §7.4
	StageLockMgr               // §7.5
	StageBpool2                // §7.6
	StageFinal                 // §7.7: Shore-MT
	// StagePipeline extends the ladder past the paper: commits are staged
	// through Early Lock Release and an asynchronous group-commit flush
	// daemon. Commit keeps its durable-on-return contract; CommitAsync
	// exposes the weaker pre-committed state.
	StagePipeline
)

// coreStage maps the public enum onto the engine's.
func (s Stage) coreStage() core.Stage {
	switch s {
	case StageBaseline:
		return core.StageBaseline
	case StageBpool1:
		return core.StageBpool1
	case StageCaching:
		return core.StageCaching
	case StageLog:
		return core.StageLog
	case StageLockMgr:
		return core.StageLockMgr
	case StageBpool2:
		return core.StageBpool2
	case StagePipeline:
		return core.StagePipeline
	default:
		return core.StageFinal
	}
}

// String names the stage as Figure 7 does.
func (s Stage) String() string { return s.coreStage().String() }

// Stages lists the optimization ladder in order.
func Stages() []Stage {
	return []Stage{StageBaseline, StageBpool1, StageCaching, StageLog, StageLockMgr, StageBpool2, StageFinal, StagePipeline}
}

// Durability selects what Tx.Commit guarantees when it returns. (See the
// README's "API tour" for how Durability composes with Update/View and
// contexts: View never waits for durability regardless of this setting.)
type Durability int

const (
	// DurabilityStrict (the default) makes Commit block until the commit
	// record is durable — the classical contract.
	DurabilityStrict Durability = iota
	// DurabilityRelaxed lets Commit return once the transaction is
	// pre-committed: the commit record is in the log and the locks are
	// released, but durability is hardened in the background. A crash in
	// the window silently rolls the transaction back — use CommitAsync
	// instead when the caller needs to learn the outcome. Only meaningful
	// with StagePipeline; other stages always commit strictly.
	DurabilityRelaxed
)

// RID identifies a heap record.
type RID = page.RID

// RetryPolicy governs DB.Update's (and DB.View's) automatic retry of
// deadlock victims and lock timeouts: capped exponential backoff with
// jitter. The zero value means 10 attempts, 250µs base, 50ms cap.
type RetryPolicy = core.RetryPolicy

// Options configures Open.
type Options struct {
	// Stage selects component implementations; the default is StageFinal
	// (the finished Shore-MT).
	Stage Stage
	// BufferFrames sizes the buffer pool in 8 KiB pages (default 4096).
	BufferFrames int
	// BufferShards overrides the number of independent buffer-replacement
	// shards — clock regions with their own hand, lock, and free list of
	// pre-evicted frames. 0 keeps the stage's default (GOMAXPROCS-scaled
	// for the scalable stages); 1 restores the original single global
	// clock hand, with no free lists and inline eviction write-back. See
	// the README's "Buffer replacement" section.
	BufferShards int
	// Dir, when non-empty, stores data and log in files under this
	// directory; otherwise everything is in memory.
	Dir string
	// LockTimeout bounds lock waits (default 500ms); waits that exceed it
	// abort with ErrTimeout.
	LockTimeout time.Duration
	// CleanerInterval runs the background page cleaner (default 50ms;
	// negative disables).
	CleanerInterval time.Duration
	// Durability selects Commit's blocking behavior (see Durability).
	Durability Durability
	// SLI enables speculative lock inheritance: committing transactions
	// park their database/store intent locks on a per-worker agent and
	// the next transaction reclaims them with a single CAS instead of a
	// lock-table round trip. Inherited locks are revoked on demand by
	// conflicting requesters, so it is safe at every stage — but on
	// high-conflict workloads (frequent store-level S/X locks, full-table
	// scans) the revocation traffic can outweigh the savings; leave it
	// off there. See the README's "Lock hierarchy" section.
	SLI bool
	// OLC enables optimistic latch coupling on B-tree descents: probes
	// and the inner levels of every index operation read nodes
	// speculatively and validate against a per-frame latch version
	// instead of pinning and latching them, removing all shared-memory
	// writes from read-mostly index traffic. Validation failures restart
	// from the root and, after bounded retries, fall back to the classic
	// latched descent; leaves are always latched, so locking and crash
	// consistency are unchanged. Observability: Stats().Btree
	// (OptDescents / Restarts / Fallbacks). See the README's "Latch
	// hierarchy" section.
	OLC bool
	// DORA enables data-oriented execution (the Shore-MT authors' VLDB
	// 2010 follow-up): the engine owns a partition executor whose
	// dedicated owner goroutines run decomposed transaction actions
	// against thread-local lock tables, bypassing the shared lock
	// manager. Regular Begin/Update transactions are unaffected; work
	// enters the executor through Engine().Dora() (see the tpcc
	// package's Dora* transactions and the README's "Data-oriented
	// execution" section). Observability: Stats().Dora.
	DORA bool
	// Partitions fixes the DORA executor's partition count; 0
	// auto-scales to GOMAXPROCS. Ignored unless DORA is set.
	Partitions int
	// PLP enables physiologically partitioned B-trees (the Shore-MT
	// authors' PLP follow-up) on top of DORA (implied): each partition
	// owns a disjoint routing-key sub-range of every partitioned index,
	// backed by its own B-tree segment, so partition-local index
	// operations run latch-free on the owner's goroutine. A background
	// re-balancer watches per-partition routing skew and migrates
	// boundary keys between adjacent partitions (a pure metadata flip,
	// crash-atomic through the catalog). Indexes created through
	// Engine().CreatePartitionedIndex participate; plain CreateIndex
	// stays a single shared tree. Requires a fresh volume (the catalog
	// claims the first store). Observability: Stats().Plp and
	// Stats().Btree (Owner* counters). See the README's "Physiological
	// partitioning" section.
	PLP bool
	// PlpRebalanceEvery sets the re-balancer's sampling interval
	// (default 100ms; negative disables rebalancing). Ignored unless
	// PLP is set.
	PlpRebalanceEvery time.Duration
	// Snapshot enables lock-free snapshot reads: View transactions pin
	// the durable log horizon at begin and read everything as of that
	// LSN through writer-installed version chains, never touching the
	// lock table — a long analytical scan neither blocks TPC-C writers
	// nor can be picked as a deadlock victim, and it is never retried.
	// Writes pay one version install per row/key update; versions are
	// garbage-collected below the oldest active snapshot at every
	// checkpoint. Observability: Stats().Mvcc (VersionsInstalled /
	// ChainWalks / GCReclaimed / OldestSnapshot). See the README's
	// "Snapshot reads" section.
	Snapshot bool
	// CheckpointEvery, when positive, takes a background fuzzy checkpoint
	// every time that many log bytes accumulate, so long-running
	// workloads bound their restart-recovery work without calling
	// DB.Checkpoint manually. Zero disables automatic checkpoints.
	CheckpointEvery int64
	// LogSegmentBytes, when positive, rotates the write-ahead log into
	// fixed-size segments with sealed headers: full segments are sealed
	// (marked immutable with a recorded end LSN), checkpoints archive
	// segments wholly below the recovery horizon, and restart recovery
	// distinguishes a torn tail in the active segment (clipped and
	// recovered) from corruption below the durable horizon (startup
	// refused with wal.ErrCorrupt). Zero keeps the single unbounded log.
	// With Dir set, segments live under Dir/wal/; see the README's
	// "Recovery & the log" section.
	LogSegmentBytes int64
	// RedoWorkers sets the parallelism of restart recovery's redo pass
	// (log records fan out to workers hash-partitioned by page ID). 0
	// auto-scales to GOMAXPROCS; 1 forces serial replay.
	RedoWorkers int
	// Retry governs Update/View's automatic deadlock/timeout retry; the
	// zero value selects the defaults (see RetryPolicy).
	Retry RetryPolicy
	// Advanced overrides the full component configuration; when non-nil it
	// takes precedence over Stage.
	Advanced *core.Config
}

// DB is an open database.
type DB struct {
	engine     *core.Engine
	vol        disk.Volume
	logStore   wal.Store
	durability Durability
	retry      RetryPolicy
	closed     atomic.Bool
}

// Open creates or reopens a database. If the log is non-empty, ARIES
// restart recovery runs before Open returns.
func Open(opts Options) (*DB, error) {
	cfg := core.StageConfig(opts.Stage.coreStage())
	if opts.Advanced != nil {
		cfg = *opts.Advanced
	}
	if opts.BufferFrames > 0 {
		cfg.Frames = opts.BufferFrames
	}
	if opts.BufferShards > 0 {
		cfg.Buffer.Shards = opts.BufferShards
	}
	if opts.LockTimeout > 0 {
		cfg.LockTimeout = opts.LockTimeout
	}
	switch {
	case opts.CleanerInterval > 0:
		cfg.CleanerInterval = opts.CleanerInterval
	case opts.CleanerInterval == 0:
		cfg.CleanerInterval = 50 * time.Millisecond
	default:
		cfg.CleanerInterval = 0
	}
	if opts.SLI {
		cfg.SLI = true
	}
	if opts.OLC {
		cfg.OLC = true
	}
	if opts.DORA {
		cfg.DORA = true
		cfg.DoraPartitions = opts.Partitions
	}
	if opts.PLP {
		cfg.PLP = true
		cfg.DORA = true
		if cfg.DoraPartitions == 0 {
			cfg.DoraPartitions = opts.Partitions
		}
		cfg.PlpRebalanceEvery = opts.PlpRebalanceEvery
	}
	if opts.Snapshot {
		cfg.Snapshot = true
	}
	if opts.CheckpointEvery > 0 {
		cfg.CheckpointEvery = opts.CheckpointEvery
	}
	if opts.RedoWorkers > 0 {
		cfg.RedoWorkers = opts.RedoWorkers
	}

	var vol disk.Volume
	var logStore wal.Store
	if opts.Dir != "" {
		fv, err := disk.OpenFile(filepath.Join(opts.Dir, "data.vol"))
		if err != nil {
			return nil, fmt.Errorf("shoremt: open volume: %w", err)
		}
		var ls wal.Store
		if opts.LogSegmentBytes > 0 {
			ls, err = wal.OpenSegmentStore(filepath.Join(opts.Dir, "wal"), opts.LogSegmentBytes)
		} else {
			ls, err = wal.OpenFileStore(filepath.Join(opts.Dir, "wal.log"))
		}
		if err != nil {
			fv.Close()
			return nil, fmt.Errorf("shoremt: open log: %w", err)
		}
		vol, logStore = fv, ls
	} else {
		vol = disk.NewMem(0)
		if opts.LogSegmentBytes > 0 {
			logStore = wal.NewMemSegmentStore(opts.LogSegmentBytes)
		} else {
			logStore = wal.NewMemStore()
		}
	}
	engine, err := core.Open(vol, logStore, cfg)
	if err != nil {
		vol.Close()
		logStore.Close()
		return nil, err
	}
	return &DB{engine: engine, vol: vol, logStore: logStore, durability: opts.Durability, retry: opts.Retry}, nil
}

// Close flushes and closes the database. Every resource is closed even
// when an earlier one fails; the errors are joined. Close is idempotent:
// only the first call does the work, every later call returns nil — so
// a daemon's signal handler and its deferred cleanup can both call it.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	return errors.Join(db.engine.Close(), db.vol.Close(), db.logStore.Close())
}

// Checkpoint takes a fuzzy checkpoint, bounding future recovery work.
func (db *DB) Checkpoint() error { return db.engine.Checkpoint() }

// Stats returns a snapshot of every component's counters.
func (db *DB) Stats() core.EngineStats { return db.engine.Stats() }

// Engine exposes the underlying storage manager for advanced use
// (benchmarks, stage experiments).
func (db *DB) Engine() *core.Engine { return db.engine }

// Tx is an open transaction. A Tx must be used by one goroutine. Every
// transaction is bound to a context at Begin/BeginCtx/Update/View time:
// all of its lock waits and its commit's durability wait observe that
// context, and cancellation surfaces as ErrCanceled.
type Tx struct {
	db       *DB
	inner    *tx.Tx
	ctx      context.Context
	readonly bool // under View: write methods return ErrReadOnly
	managed  bool // under Update/View: Commit/Abort return ErrManaged
	done     bool
}

// Begin starts a transaction bound to context.Background. Prefer BeginCtx
// (or the managed Update/View) in code that can be cancelled.
func (db *DB) Begin() (*Tx, error) { return db.BeginCtx(context.Background()) }

// BeginCtx starts a transaction bound to ctx: every blocking point of the
// transaction — lock waits in reads and writes, the commit's durability
// wait — unblocks promptly when ctx is cancelled or its deadline passes,
// returning ErrCanceled (which wraps the context's error). The earliest
// of the ctx deadline and Options.LockTimeout bounds each lock wait.
// Cancellation does NOT abort the transaction by itself: the caller still
// owns the lifecycle and should Abort on error as usual.
func (db *DB) BeginCtx(ctx context.Context) (*Tx, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inner, err := db.engine.BeginCtx(ctx)
	if err != nil {
		return nil, err
	}
	return &Tx{db: db, inner: inner, ctx: ctx}, nil
}

// Update executes fn inside a managed read-write transaction and commits
// when fn returns nil. Deadlock victims and lock timeouts are aborted and
// retried automatically with capped exponential backoff (Options.Retry),
// so fn may run several times and must not have side effects outside the
// transaction. Any other error from fn aborts and is returned as-is.
// Cancellation of ctx stops the retry loop and unblocks any lock or
// commit wait (ErrCanceled); fn must not call Commit or Abort itself
// (they return ErrManaged).
func (db *DB) Update(ctx context.Context, fn func(*Tx) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return db.engine.RunCtx(ctx, db.retry, func(inner *tx.Tx) error {
		w := &Tx{db: db, inner: inner, ctx: ctx, managed: true}
		err := fn(w)
		w.done = true // a leaked wrapper gets ErrTxDone, not a retired txID
		return err
	}, db.commitInner)
}

// View executes fn inside a managed read-only transaction: every write
// method returns ErrReadOnly. With Options.Snapshot the transaction is a
// lock-free snapshot reader — it sees the database as of the durable
// horizon at begin, cannot block or be blocked by writers, can never be
// a deadlock victim, and fn therefore runs exactly once. Without
// Snapshot, reads lock (S mode, two-phase), a View can be a deadlock
// victim, and like Update it is retried automatically (fn may run
// several times). Because a read-only transaction has nothing to make
// durable, its commit never waits on the log.
func (db *DB) View(ctx context.Context, fn func(*Tx) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return db.engine.RunViewCtx(ctx, db.retry, func(inner *tx.Tx) error {
		w := &Tx{db: db, inner: inner, ctx: ctx, managed: true, readonly: true}
		err := fn(w)
		w.done = true // a leaked wrapper gets ErrTxDone, not a retired txID
		return err
	})
}

// commitInner commits a finished inner transaction per the DB's
// durability setting, observing ctx during any durability wait.
func (db *DB) commitInner(ctx context.Context, inner *tx.Tx) error {
	// Relaxed durability only applies when the commit pipeline is on;
	// other stages have no pre-committed state to return early from, so
	// they always commit strictly (as Durability documents).
	if db.durability == DurabilityRelaxed && db.engine.Config().CommitPipeline {
		ch := db.engine.CommitAsync(inner)
		select {
		case err := <-ch: // resolved immediately: pre-commit failure or already durable
			return err
		default: // harden in the background; outcome intentionally unobserved
			return nil
		}
	}
	return db.engine.CommitCtx(ctx, inner)
}

// Commit commits the transaction. Under DurabilityStrict (the default)
// it returns only once the commit record is durable (group commit).
// Under DurabilityRelaxed it may return as soon as the transaction is
// pre-committed, with hardening left to the background flush daemon;
// immediately surfaced errors are still reported.
//
// If the transaction's context is cancelled during the durability wait,
// Commit returns ErrCanceled and the transaction is in doubt: its commit
// record is in the log, so it can no longer abort — call Commit again to
// resume waiting (the record is not re-inserted), or walk away and let
// the background flush / restart recovery settle it.
func (t *Tx) Commit() error {
	if t.managed {
		return ErrManaged
	}
	if t.done {
		return ErrTxDone
	}
	ctx := t.ctx
	if t.inner.State() == tx.StateCommitting && ctx.Err() != nil {
		// Explicit retry after a cancelled wait: the caller wants the
		// commit finished, and the original context can never allow it.
		ctx = context.Background()
	}
	err := t.db.commitInner(ctx, t.inner)
	if err != nil {
		switch t.inner.State() {
		case tx.StateCommitting:
			// In doubt: leave the Tx open so the caller can retry the wait.
			return err
		case tx.StateActive:
			// Never reached the commit record (e.g. the fail-fast on an
			// already-dead context): still abortable — leave the Tx open
			// so the caller's usual Abort-on-error releases the locks.
			return err
		}
	}
	t.done = true
	return err
}

// CommitAsync pre-commits the transaction and returns a channel that
// fires exactly once when the commit record is durable (nil) or the
// commit failed (error). With StagePipeline the transaction's locks are
// already released when CommitAsync returns, so other transactions can
// proceed against its writes before durability — the engine orders their
// own commit acknowledgments behind this one. Until the channel fires,
// the commit is NOT guaranteed to survive a crash; callers needing the
// classical guarantee must wait on the channel (or use Commit).
func (t *Tx) CommitAsync() (<-chan error, error) {
	if t.managed {
		return nil, ErrManaged
	}
	if t.done {
		return nil, ErrTxDone
	}
	t.done = true
	ch := t.db.engine.CommitAsync(t.inner)
	if t.db.engine.Config().CommitPipeline && t.inner.State() == tx.StateActive {
		// Pre-commit failed synchronously (the error is already on ch):
		// the transaction is still active and abortable, so leave the Tx
		// open for the caller to Abort. (Without the pipeline the commit
		// runs on a helper goroutine, which cleans up after itself.)
		t.done = false
	}
	return ch, nil
}

// Abort rolls the transaction back. Abort always runs to completion,
// even when the transaction's context is already cancelled — rollback is
// what restores consistency.
func (t *Tx) Abort() error {
	if t.managed {
		return ErrManaged
	}
	if t.done {
		return ErrTxDone
	}
	t.done = true
	return t.db.engine.Abort(t.inner)
}

// Table is a heap table handle.
type Table struct {
	db    *DB
	store uint32
}

// CreateTable creates a heap table inside transaction t. Like
// CreateIndex, the store registration itself is not undone by abort;
// creation is durable once any row insert in it commits (table metadata
// is derived from page headers).
func (db *DB) CreateTable(t *Tx) (*Table, error) {
	if t.done {
		return nil, ErrTxDone
	}
	if t.readonly {
		return nil, ErrReadOnly
	}
	store, err := db.engine.CreateTable(t.inner)
	if err != nil {
		return nil, err
	}
	return &Table{db: db, store: store}, nil
}

// OpenTable attaches to a table by store id.
func (db *DB) OpenTable(store uint32) *Table { return &Table{db: db, store: store} }

// ID returns the table's store id (stable across restarts).
func (tb *Table) ID() uint32 { return tb.store }

// Insert appends a record, returning its RID.
func (tb *Table) Insert(t *Tx, data []byte) (RID, error) {
	if t.done {
		return RID{}, ErrTxDone
	}
	if t.readonly {
		return RID{}, ErrReadOnly
	}
	return tb.db.engine.HeapInsertCtx(t.ctx, t.inner, tb.store, data)
}

// Get reads the record at rid (S-locked until commit).
func (tb *Table) Get(t *Tx, rid RID) ([]byte, error) {
	if t.done {
		return nil, ErrTxDone
	}
	return tb.db.engine.HeapReadCtx(t.ctx, t.inner, tb.store, rid)
}

// Update replaces the record at rid.
func (tb *Table) Update(t *Tx, rid RID, data []byte) error {
	if t.done {
		return ErrTxDone
	}
	if t.readonly {
		return ErrReadOnly
	}
	return tb.db.engine.HeapUpdateCtx(t.ctx, t.inner, tb.store, rid, data)
}

// Delete removes the record at rid.
func (tb *Table) Delete(t *Tx, rid RID) error {
	if t.done {
		return ErrTxDone
	}
	if t.readonly {
		return ErrReadOnly
	}
	return tb.db.engine.HeapDeleteCtx(t.ctx, t.inner, tb.store, rid)
}

// Scan iterates all records in RID order under a table S lock; fn
// receives a copy of each record and stops the scan by returning false.
func (tb *Table) Scan(t *Tx, fn func(rid RID, rec []byte) bool) error {
	if t.done {
		return ErrTxDone
	}
	return tb.db.engine.HeapScanCtx(t.ctx, t.inner, tb.store, fn)
}

// Index is a B-tree index handle.
type Index struct {
	db    *DB
	inner *core.Index
}

// CreateIndex creates a B-tree index inside transaction t.
func (db *DB) CreateIndex(t *Tx) (*Index, error) {
	if t.done {
		return nil, ErrTxDone
	}
	if t.readonly {
		return nil, ErrReadOnly
	}
	ix, err := db.engine.CreateIndex(t.inner)
	if err != nil {
		return nil, err
	}
	return &Index{db: db, inner: ix}, nil
}

// OpenIndex attaches to an index by store id.
func (db *DB) OpenIndex(store uint32) (*Index, error) {
	ix, err := db.engine.OpenIndex(store)
	if err != nil {
		return nil, err
	}
	return &Index{db: db, inner: ix}, nil
}

// ID returns the index's store id (stable across restarts).
func (ix *Index) ID() uint32 { return ix.inner.Store() }

// Insert adds key→value; ErrDuplicate if the key exists.
func (ix *Index) Insert(t *Tx, key, value []byte) error {
	if t.done {
		return ErrTxDone
	}
	if t.readonly {
		return ErrReadOnly
	}
	err := ix.db.engine.IndexInsertCtx(t.ctx, t.inner, ix.inner, key, value)
	return mapBtreeErr(err)
}

// Get returns the value for key.
func (ix *Index) Get(t *Tx, key []byte) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxDone
	}
	return ix.db.engine.IndexLookupCtx(t.ctx, t.inner, ix.inner, key)
}

// GetForUpdate returns the value for key under an exclusive lock —
// SELECT FOR UPDATE. Use it when the transaction will write the key
// back later: reading under S and upgrading to X at write time
// deadlocks against any concurrent reader doing the same, and the
// longer the read-to-write window the more certain the collision.
func (ix *Index) GetForUpdate(t *Tx, key []byte) ([]byte, bool, error) {
	if t.done {
		return nil, false, ErrTxDone
	}
	if t.readonly {
		return nil, false, ErrReadOnly
	}
	return ix.db.engine.IndexLookupForUpdateCtx(t.ctx, t.inner, ix.inner, key)
}

// Update replaces the value for key; ErrNotFound if absent.
func (ix *Index) Update(t *Tx, key, value []byte) error {
	if t.done {
		return ErrTxDone
	}
	if t.readonly {
		return ErrReadOnly
	}
	return mapBtreeErr(ix.db.engine.IndexUpdateCtx(t.ctx, t.inner, ix.inner, key, value))
}

// Delete removes key, returning the old value; ErrNotFound if absent.
func (ix *Index) Delete(t *Tx, key []byte) ([]byte, error) {
	if t.done {
		return nil, ErrTxDone
	}
	if t.readonly {
		return nil, ErrReadOnly
	}
	old, err := ix.db.engine.IndexDeleteCtx(t.ctx, t.inner, ix.inner, key)
	return old, mapBtreeErr(err)
}

// Scan iterates keys in [from, to) ascending (nil = unbounded) under a
// store S lock; fn stops the scan by returning false.
func (ix *Index) Scan(t *Tx, from, to []byte, fn func(key, value []byte) bool) error {
	if t.done {
		return ErrTxDone
	}
	return ix.db.engine.IndexScanCtx(t.ctx, t.inner, ix.inner, from, to, fn)
}

func mapBtreeErr(err error) error {
	switch {
	case err == nil:
		return nil
	case isBtreeDup(err):
		return fmt.Errorf("%w: %v", ErrDuplicate, err)
	case isBtreeNotFound(err):
		return fmt.Errorf("%w: %v", ErrNotFound, err)
	default:
		return err
	}
}
