// Command shorebench regenerates the figures of "Shore-MT: A Scalable
// Storage Manager for the Multicore Era" (EDBT 2009) over the
// deterministic contention simulator.
//
// Usage:
//
//	shorebench -fig 1          # Figure 1: four open-source engines, normalized
//	shorebench -fig 2          # Figure 2: HW contexts per chip over time
//	shorebench -fig 4          # Figure 4: all engines + shore-mt, tps/thread
//	shorebench -fig 5          # Figure 5: TPC-C New Order + Payment
//	shorebench -fig 6          # Figure 6: free-space manager mutex variants
//	shorebench -fig 7          # Figure 7: optimization stages
//	shorebench -fig profile    # §4-style per-engine bottleneck profiles
//	shorebench -fig all        # everything
//	shorebench -fig 4 -csv     # CSV instead of the aligned table
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/peers"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1|2|4|5|6|7|ablation|profile|all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	profileAt := flag.Int("clients", 16, "client count for -fig profile")
	flag.Parse()
	profileClients = *profileAt

	emit := func(f bench.Figure) {
		if *csv {
			fmt.Print(f.CSV())
		} else {
			fmt.Println(f.Render())
		}
	}

	switch *fig {
	case "1":
		emit(bench.Figure1())
	case "2":
		fmt.Println(bench.Figure2Render())
	case "4":
		emit(bench.Figure4())
	case "5":
		no, pay := bench.Figure5()
		emit(no)
		emit(pay)
	case "6":
		emit(bench.Figure6())
	case "7":
		emit(bench.Figure7())
	case "ablation":
		emit(bench.Ablation())
	case "profile":
		printProfiles()
	case "all":
		emit(bench.Figure1())
		fmt.Println(bench.Figure2Render())
		emit(bench.Figure4())
		no, pay := bench.Figure5()
		emit(no)
		emit(pay)
		emit(bench.Figure6())
		emit(bench.Figure7())
		emit(bench.Ablation())
		printProfiles()
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

var profileClients = 16

// printProfiles reproduces the §4 bottleneck breakdowns (the paper
// profiles its engines at 16-24 clients).
func printProfiles() {
	fmt.Printf("§4 profiles — fraction of total thread time spent waiting, %d clients\n", profileClients)
	models := append(peers.Figure1Models(), peers.DBMSX(), peers.ShoreMT())
	for _, m := range models {
		fmt.Printf("\n%s:\n", m.Name)
		entries := bench.Profile(m, profileClients)
		shown := 0
		for _, e := range entries {
			if e.WaitPercent < 0.05 {
				continue
			}
			fmt.Printf("  %-28s wait %6.1f%%   held %6.1f%% of wall-clock   %d/%d contended acquires\n",
				e.Resource, e.WaitPercent, e.HoldPercent, e.Contended, e.Acquires)
			shown++
			if shown >= 6 {
				break
			}
		}
		if shown == 0 {
			fmt.Println("  (no significant waiting — compute bound)")
		}
	}
}
