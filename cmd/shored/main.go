// Command shored serves a shore-mt database over TCP: the embedded
// engine behind internal/wire's length-prefixed protocol, with
// per-connection sessions, a bounded admission queue in front of a
// GOMAXPROCS-scaled worker pool, and load shedding at the transaction
// boundary. SIGTERM/SIGINT drain in-flight sessions before the process
// exits; a second signal forces immediate teardown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	shoremt "repro"
	"repro/internal/server"
	"repro/internal/tpcc"
)

func stageByName(name string) (shoremt.Stage, bool) {
	for _, s := range shoremt.Stages() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "listen address")
	dir := flag.String("dir", "", "data directory (empty = in-memory volume and log)")
	stageName := flag.String("stage", "final", "engine optimization stage (baseline|bpool1|caching|log|lock mgr|bpool2|final|pipeline)")
	frames := flag.Int("frames", 8192, "buffer pool frames")
	shards := flag.Int("shards", 0, "buffer replacement shards (0 = stage default)")
	durability := flag.String("durability", "strict", "commit durability: strict|relaxed")
	sli := flag.Bool("sli", false, "speculative lock inheritance")
	olc := flag.Bool("olc", false, "optimistic latch coupling on B-tree descents")
	dora := flag.Bool("dora", false, "data-oriented execution (partitioned lock tables)")
	plp := flag.Bool("plp", false, "physiological partitioning (implies -dora): per-partition B-tree segments with a skew re-balancer")
	partitions := flag.Int("partitions", 0, "DORA partitions (0 = GOMAXPROCS)")
	workers := flag.Int("workers", 0, "execution pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth (0 = 4x workers); overflow sheds with busy")
	idle := flag.Duration("idle", 5*time.Minute, "idle-session timeout (rolls back and closes; <0 disables)")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain window")
	snapshot := flag.Bool("snapshot", false, "multiversion snapshot reads: View batches run lock-free against version chains")
	warehouses := flag.Int("tpcc", 0, "preload a TPC-C database with this many warehouses and publish its catalog")
	logSegment := flag.Int64("log-segment", 0, "rotate the log into fixed-size segments of this many bytes (0 = single unbounded log)")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo workers during restart recovery (0 = GOMAXPROCS, 1 = serial)")
	flag.Parse()

	stage, ok := stageByName(*stageName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown stage %q\n", *stageName)
		os.Exit(2)
	}
	opts := shoremt.Options{
		Stage:        stage,
		BufferFrames: *frames,
		BufferShards: *shards,
		Dir:          *dir,
		SLI:          *sli,
		OLC:          *olc,
		DORA:         *dora,
		PLP:          *plp,
		Partitions:   *partitions,
		Snapshot:     *snapshot,

		LogSegmentBytes: *logSegment,
		RedoWorkers:     *redoWorkers,
	}
	if *snapshot && opts.CheckpointEvery == 0 {
		// Version-chain GC rides checkpoints; give a -snapshot server a
		// default cadence so long-lived chains get reclaimed.
		opts.CheckpointEvery = 8 << 20
	}
	if *durability == "relaxed" {
		opts.Durability = shoremt.DurabilityRelaxed
	} else if *durability != "strict" {
		fmt.Fprintf(os.Stderr, "unknown durability %q\n", *durability)
		os.Exit(2)
	}

	db, err := shoremt.Open(opts)
	if err != nil {
		log.Fatalf("open: %v", err)
	}
	if rs := db.Stats().Recovery; rs.Ran {
		log.Printf("recovery: analysis %v, redo %v (%d workers, %d/%d records replayed), undo %v (%d losers), %d B torn tail clipped, %d segments archived",
			rs.Analysis.Round(time.Microsecond), rs.Redo.Round(time.Microsecond), rs.RedoWorkers,
			rs.RecordsReplayed, rs.RecordsScanned, rs.Undo.Round(time.Microsecond), rs.Losers, rs.TornBytesClipped, rs.SegmentsArchived)
	}
	// DB.Close is idempotent: this defer and the shutdown path below can
	// both call it, whichever runs last is a no-op.
	defer db.Close()

	srv := server.New(db, server.Options{
		Workers:     *workers,
		QueueDepth:  *queue,
		IdleTimeout: *idle,
		Logf:        log.Printf,
	})

	if *warehouses > 0 {
		scale := tpcc.DefaultScale(*warehouses)
		log.Printf("loading TPC-C: %d warehouses (%d districts, %d customers/district, %d items)",
			scale.Warehouses, scale.Districts, scale.Customers, scale.Items)
		start := time.Now()
		tdb, err := tpcc.Load(db.Engine(), scale, 42)
		if err != nil {
			log.Fatalf("tpcc load: %v", err)
		}
		for _, e := range tdb.Catalog() {
			srv.RegisterStore(e.Name, e.ID, e.Kind)
		}
		log.Printf("loaded in %v", time.Since(start).Round(time.Millisecond))
	}

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("shored listening on %s (stage %s, workers %d, queue %d)",
		l.Addr(), stage, *workers, *queue)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("%v: draining (window %v; signal again to force)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		go func() {
			<-sig
			log.Printf("second signal: forcing shutdown")
			cancel()
		}()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		cancel()
	case err := <-serveErr:
		if err != nil {
			log.Printf("serve: %v", err)
		}
		_ = srv.Close()
	}

	st := srv.Stats()
	if b, err := json.MarshalIndent(st, "", "  "); err == nil {
		log.Printf("server stats:\n%s", b)
	}
	es := db.Stats()
	log.Printf("engine: %d commits, %d aborts, %d lock acquires (%d live at exit)",
		es.Tx.Commits, es.Tx.Aborts, es.Lock.Acquires, es.Lock.LiveRequests)
	if *snapshot {
		m := es.Mvcc
		log.Printf("mvcc: %d versions installed (%d live, %d B, chain high-water %d), %d walks, %d reclaimed, %d snapshots",
			m.VersionsInstalled, m.LiveVersions, m.LiveBytes, m.ChainLenHW, m.ChainWalks, m.GCReclaimed, m.Snapshots)
	}
	if *plp {
		p := es.Plp
		log.Printf("plp: %d keys over %d partitions (%d forests), map v%d, %d migrations, dora skew %.2f",
			p.Keys, p.Partitions, p.Tables, p.MapVersion, p.Migrations, es.Dora.SkewRatio)
	}
	if err := db.Close(); err != nil {
		log.Printf("close: %v", err)
	}
}
