// Command tpcc loads a TPC-C database into the real storage engine and
// runs a Payment / New Order mix against it, reporting throughput and
// engine statistics. Unlike shorebench (which reproduces the paper's
// figures on the contention simulator), this drives the actual Go
// implementation end to end.
//
// Usage:
//
//	tpcc -warehouses 2 -clients 4 -duration 5s -stage final
//
// With -addr the same mix runs remotely against a live shored daemon
// (started with a -tpcc preload): each client goroutine dials its own
// connection and drives Payment / New Order over the wire protocol, two
// round trips per transaction. The engine flags are ignored in that
// mode — the server picked its stage when it started.
//
//	shored -tpcc 2 &
//	tpcc -addr 127.0.0.1:7070 -clients 64 -duration 10s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/tpcc"
	"repro/internal/wal"
)

func stageByName(name string) (core.Stage, bool) {
	for _, s := range core.Stages() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}

func main() {
	warehouses := flag.Int("warehouses", 2, "TPC-C warehouses")
	clients := flag.Int("clients", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "run duration")
	stageName := flag.String("stage", "final", "engine optimization stage (baseline|bpool1|caching|log|lock mgr|bpool2|final|pipeline)")
	frames := flag.Int("frames", 8192, "buffer pool frames")
	shards := flag.Int("shards", 0, "buffer replacement shards (0 = stage default: GOMAXPROCS-scaled from bpool2 up, 1 = single clock hand)")
	payPct := flag.Int("payment", 50, "percent of transactions that are Payment (rest New Order)")
	sli := flag.Bool("sli", false, "speculative lock inheritance: park intent locks on the worker agent across transactions")
	olc := flag.Bool("olc", false, "optimistic latch coupling: validate B-tree inner nodes against latch versions instead of pinning them")
	dorafl := flag.Bool("dora", false, "data-oriented execution: route decomposed actions to partition owners with thread-local lock tables")
	plpfl := flag.Bool("plp", false, "physiological partitioning (implies -dora): per-partition B-tree segments with latch-free owner access and a skew re-balancer")
	partitions := flag.Int("partitions", 0, "DORA partitions (0 = GOMAXPROCS; clamped to -warehouses)")
	addr := flag.String("addr", "", "drive a remote shored server at this address instead of an embedded engine")
	logSegment := flag.Int64("log-segment", 0, "rotate the log into fixed-size segments of this many bytes (0 = single unbounded log)")
	redoWorkers := flag.Int("redo-workers", 0, "parallel redo workers during restart recovery (0 = GOMAXPROCS, 1 = serial)")
	readers := flag.Int("readers", 0, "concurrent read-only clients running Stock-Level / Order-Status scan loops next to the write mix")
	snapshot := flag.Bool("snapshot", false, "multiversion snapshot reads: read-only transactions run lock-free against version chains")
	flag.Parse()

	if *addr != "" {
		runRemote(*addr, *clients, *readers, *duration, *payPct)
		return
	}

	stage, ok := stageByName(*stageName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown stage %q\n", *stageName)
		os.Exit(2)
	}
	useDora := *dorafl || *plpfl
	cfg := core.StageConfig(stage)
	cfg.Frames = *frames
	cfg.SLI = *sli
	cfg.OLC = *olc
	cfg.DORA = useDora
	cfg.PLP = *plpfl
	cfg.DoraPartitions = *partitions
	cfg.DoraKeys = *warehouses
	if *shards > 0 {
		cfg.Buffer.Shards = *shards
	}
	cfg.CleanerInterval = 10 * time.Millisecond
	cfg.RedoWorkers = *redoWorkers
	cfg.Snapshot = *snapshot
	if *snapshot {
		// Version-chain GC rides checkpoints; without a checkpoint cadence
		// a long -snapshot run grows chains without bound.
		cfg.CheckpointEvery = 8 << 20
	}

	var logStore wal.Store = wal.NewMemStore()
	if *logSegment > 0 {
		logStore = wal.NewMemSegmentStore(*logSegment)
	}
	engine, err := core.Open(disk.NewMem(0), logStore, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "open:", err)
		os.Exit(1)
	}
	defer engine.Close()

	scale := tpcc.DefaultScale(*warehouses)
	fmt.Printf("loading %d warehouses (%d districts, %d customers/district, %d items)...\n",
		scale.Warehouses, scale.Districts, scale.Customers, scale.Items)
	start := time.Now()
	db, err := tpcc.Load(engine, scale, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, "load:", err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	// The run is bounded by a context deadline: workers drain as soon as
	// it fires, even from inside a lock wait, and every transaction runs
	// under the engine's managed deadlock retry.
	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var payments, newOrders, userAborts, payFailures, noFailures atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := tpcc.NewRand(int64(1000 + c))
			home := uint32(c%*warehouses + 1)
			for ctx.Err() == nil {
				if r.Int(1, 100) <= *payPct {
					in := tpcc.GenPayment(r, scale, home)
					var err error
					if useDora {
						err = db.DoraPayment(ctx, in)
					} else {
						err = db.PaymentCtx(ctx, in)
					}
					switch {
					case err == nil:
						payments.Add(1)
					case errors.Is(err, lock.ErrCanceled):
						return // deadline: drain
					default:
						payFailures.Add(1)
					}
				} else {
					in := tpcc.GenNewOrder(r, scale, home)
					var err error
					if useDora {
						err = db.DoraNewOrder(ctx, in)
					} else {
						err = db.NewOrderCtx(ctx, in)
					}
					switch {
					case err == nil:
						newOrders.Add(1)
					case errors.Is(err, tpcc.ErrUserAbort):
						userAborts.Add(1)
					case errors.Is(err, lock.ErrCanceled):
						return // deadline: drain
					default:
						noFailures.Add(1)
					}
				}
			}
		}(c)
	}
	// Read-only clients: Stock-Level / Order-Status scan loops running
	// next to the write mix. With -snapshot these never touch the lock
	// table; without it they contend for S locks against the writers.
	var reads, readFailures atomic.Uint64
	for c := 0; c < *readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := tpcc.NewRand(int64(9000 + c))
			home := uint32(c%*warehouses + 1)
			for ctx.Err() == nil {
				var err error
				if r.Int(1, 100) <= 50 {
					_, err = db.StockLevelCtx(ctx, tpcc.GenStockLevel(r, scale, home))
				} else {
					_, err = db.OrderStatusCtx(ctx, tpcc.GenOrderStatus(r, scale, home))
				}
				switch {
				case err == nil:
					reads.Add(1)
				case ctx.Err() != nil, errors.Is(err, lock.ErrCanceled):
					return // deadline: drain
				default:
					readFailures.Add(1)
				}
			}
		}(c)
	}
	fmt.Printf("running %d clients + %d readers for %v (stage %s, snapshot %v)...\n",
		*clients, *readers, *duration, stage, *snapshot)
	wg.Wait()

	secs := duration.Seconds()
	total := payments.Load() + newOrders.Load()
	fmt.Printf("\nresults (tps by transaction type):\n")
	fmt.Printf("  payments:    %8d (%8.1f tps, %d failed)\n", payments.Load(), float64(payments.Load())/secs, payFailures.Load())
	fmt.Printf("  new orders:  %8d (%8.1f tps, %d failed)\n", newOrders.Load(), float64(newOrders.Load())/secs, noFailures.Load())
	fmt.Printf("  user aborts: %8d (the spec's 1%% intentional rollbacks)\n", userAborts.Load())
	fmt.Printf("  total:       %8d committed (%8.1f tps)\n", total, float64(total)/secs)
	if *readers > 0 {
		fmt.Printf("  readers:     %8d read txns (%8.1f tps, %d failed)\n",
			reads.Load(), float64(reads.Load())/secs, readFailures.Load())
	}

	st := engine.Stats()
	fmt.Printf("\nengine statistics:\n")
	fmt.Printf("  buffer pool: %d hits, %d hot-array hits, %d misses, %d evictions\n",
		st.Buffer.Hits, st.Buffer.HotHits, st.Buffer.Misses, st.Buffer.Evictions)
	fmt.Printf("  bpool repl.: %d shards, %d free-list allocs, %d steals, %d cleaner-supplied, %d clock scans\n",
		len(st.Buffer.Shards), st.Buffer.FreeListHits, st.Buffer.Steals, st.Buffer.CleanerFrees, st.Buffer.ScanFrames)
	if len(st.Buffer.Shards) > 1 {
		for i, sh := range st.Buffer.Shards {
			fmt.Printf("    shard %2d:  %8d evictions, %8d scans, %6d steals, %6d cleaner-supplied, %4d free\n",
				i, sh.Evictions, sh.Scans, sh.Steals, sh.CleanerFrees, sh.FreeFrames)
		}
	}
	fmt.Printf("  log:         %d inserts (%.1f MiB), %d flushes\n",
		st.Log.Inserts, float64(st.Log.InsertedBytes)/(1<<20), st.Log.Flushes)
	fmt.Printf("  locks:       %d acquires, %d waits, %d deadlocks, %d timeouts, %d canceled\n",
		st.Lock.Acquires, st.Lock.Waits, st.Lock.Deadlocks, st.Lock.Timeouts, st.Lock.Cancels)
	fmt.Printf("  lock bypass: %d cache hits, %d inherits, %d inherited grants, %d revokes\n",
		st.Lock.CacheHits, st.Lock.Inherits, st.Lock.InheritedGrants, st.Lock.Revokes)
	if *snapshot {
		m := st.Mvcc
		fmt.Printf("  mvcc:        %d versions installed (%d live, %.1f KiB, chain high-water %d), %d chain walks, %d reclaimed\n",
			m.VersionsInstalled, m.LiveVersions, float64(m.LiveBytes)/1024, m.ChainLenHW, m.ChainWalks, m.GCReclaimed)
		fmt.Printf("               %d snapshots (%d active, oldest LSN %d), %d reads, %d scans\n",
			m.Snapshots, m.ActiveSnapshots, m.OldestSnapshot, m.SnapshotReads, m.SnapshotScans)
	}
	if *olc {
		fmt.Printf("  btree OLC:   %d optimistic descents, %d restarts, %d fallbacks\n",
			st.Btree.OptDescents, st.Btree.Restarts, st.Btree.Fallbacks)
	}
	if useDora {
		d := st.Dora
		fmt.Printf("  dora:        %d partitions, %d actions routed, %d local tx, %d cross-partition tx, %d aborted\n",
			d.Partitions, d.Routed, d.LocalTx, d.CrossTx, d.Aborts)
		fmt.Printf("               %d local acquires, %d local waits, %d rendezvous waits, queue high-water %d, skew %.2f (max/mean routed)\n",
			d.LocalAcquires, d.LocalWaits, d.RendezvousWaits, d.QueueHighWater, d.SkewRatio)
		for i, p := range d.Parts {
			fmt.Printf("    part %2d:   %8d actions, %8d acquires, %6d waits, %8d commits, %6d aborts, queue hw %d\n",
				i, p.Routed, p.Acquires, p.LockWaits, p.Commits, p.Aborts, p.QueueHighWater)
		}
	}
	if *plpfl {
		p := st.Plp
		b := st.Btree
		fmt.Printf("  plp:         %d routing keys over %d partitions (%d forests), map v%d, %d migrations\n",
			p.Keys, p.Partitions, p.Tables, p.MapVersion, p.Migrations)
		fmt.Printf("               owner path: %d descents, %d reads, %d writes, %d scans, %d fallbacks\n",
			b.OwnerDescents, b.OwnerReads, b.OwnerWrites, b.OwnerScans, b.OwnerFallbacks)
	}
	fmt.Printf("  space:       %d page allocations, %d extent grows\n",
		st.Space.Allocs, st.Space.ExtentsGrown)
	fmt.Printf("  tx:          %d begun, %d committed, %d aborted\n",
		st.Tx.Begins, st.Tx.Commits, st.Tx.Aborts)
}

// runRemote drives the Payment / New Order mix against a live shored
// server: one connection per client goroutine, client-side retry on
// deadlock/timeout/shed, server statistics fetched at the end. With
// readers > 0, additional connections run Stock-Level / Order-Status
// through the server's View path, which rides the snapshot read path
// when shored was started with -snapshot.
func runRemote(addr string, clients, readers int, duration time.Duration, payPct int) {
	probe, err := client.Dial(addr, client.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dial:", err)
		os.Exit(1)
	}
	stats := &tpcc.RemoteStats{}
	rp, err := tpcc.OpenRemote(context.Background(), probe, stats)
	if err != nil {
		fmt.Fprintln(os.Stderr, "resolve catalog (is shored running with -tpcc?):", err)
		os.Exit(1)
	}
	scale := rp.Scale
	fmt.Printf("remote %s: %d warehouses, %d districts, %d customers/district, %d items\n",
		addr, scale.Warehouses, scale.Districts, scale.Customers, scale.Items)

	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()
	var payments, newOrders, userAborts, payFailures, noFailures atomic.Uint64
	var errMu sync.Mutex
	errSamples := map[string]int{}
	sample := func(err error) {
		errMu.Lock()
		defer errMu.Unlock()
		if len(errSamples) < 16 || errSamples[err.Error()] > 0 {
			errSamples[err.Error()]++
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var cl *client.Client
			var r *tpcc.Remote
			// dial (re)establishes the connection; a transport error
			// poisons the client (the stream is desynchronized), so the
			// driver reconnects like any real database client would.
			dial := func() bool {
				if cl != nil {
					cl.Close()
				}
				for ctx.Err() == nil {
					var err error
					if cl, err = client.Dial(addr, client.Options{}); err == nil {
						if r, err = tpcc.OpenRemote(ctx, cl, stats); err == nil {
							return true
						}
						cl.Close()
					}
					select {
					case <-ctx.Done():
					case <-time.After(50 * time.Millisecond):
					}
				}
				return false
			}
			if !dial() {
				return
			}
			defer func() { cl.Close() }()
			rnd := tpcc.NewRand(int64(1000 + c))
			home := uint32(c%scale.Warehouses + 1)
			for ctx.Err() == nil {
				if cl.Closed() && !dial() {
					return
				}
				if rnd.Int(1, 100) <= payPct {
					in := tpcc.GenPayment(rnd, scale, home)
					switch err := r.Payment(ctx, in); {
					case err == nil:
						payments.Add(1)
					case ctx.Err() != nil:
						return // deadline: drain
					default:
						payFailures.Add(1)
						sample(err)
					}
				} else {
					in := tpcc.GenNewOrder(rnd, scale, home)
					switch err := r.NewOrder(ctx, in); {
					case err == nil:
						newOrders.Add(1)
					case errors.Is(err, tpcc.ErrUserAbort):
						userAborts.Add(1)
					case ctx.Err() != nil:
						return // deadline: drain
					default:
						noFailures.Add(1)
						sample(err)
					}
				}
			}
		}(c)
	}
	// Read-only connections: each dials its own session and drives the
	// server's View path with Stock-Level / Order-Status scan loops.
	var reads, readFailures atomic.Uint64
	for c := 0; c < readers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := client.Dial(addr, client.Options{})
			if err != nil {
				return
			}
			defer cl.Close()
			r, err := tpcc.OpenRemote(ctx, cl, stats)
			if err != nil {
				return
			}
			rnd := tpcc.NewRand(int64(9000 + c))
			home := uint32(c%scale.Warehouses + 1)
			for ctx.Err() == nil && !cl.Closed() {
				var err error
				if rnd.Int(1, 100) <= 50 {
					_, err = r.StockLevel(ctx, tpcc.GenStockLevel(rnd, scale, home))
				} else {
					_, err = r.OrderStatus(ctx, tpcc.GenOrderStatus(rnd, scale, home))
				}
				switch {
				case err == nil:
					reads.Add(1)
				case ctx.Err() != nil:
					return // deadline: drain
				default:
					readFailures.Add(1)
					sample(err)
				}
			}
		}(c)
	}
	fmt.Printf("running %d remote clients + %d readers for %v...\n", clients, readers, duration)
	wg.Wait()

	secs := duration.Seconds()
	total := payments.Load() + newOrders.Load()
	fmt.Printf("\nresults (tps by transaction type):\n")
	fmt.Printf("  payments:    %8d (%8.1f tps, %d failed)\n", payments.Load(), float64(payments.Load())/secs, payFailures.Load())
	fmt.Printf("  new orders:  %8d (%8.1f tps, %d failed)\n", newOrders.Load(), float64(newOrders.Load())/secs, noFailures.Load())
	fmt.Printf("  user aborts: %8d (the spec's 1%% intentional rollbacks)\n", userAborts.Load())
	fmt.Printf("  total:       %8d committed (%8.1f tps)\n", total, float64(total)/secs)
	if readers > 0 {
		fmt.Printf("  readers:     %8d read txns (%8.1f tps, %d failed)\n",
			reads.Load(), float64(reads.Load())/secs, readFailures.Load())
	}
	fmt.Printf("  retries:     %d shed (busy), %d deadlock victims, %d lock timeouts\n",
		stats.Sheds.Load(), stats.Deadlocks.Load(), stats.Timeouts.Load())
	errMu.Lock()
	for msg, n := range errSamples {
		fmt.Printf("  error:       %6d x %s\n", n, msg)
	}
	errMu.Unlock()

	if sst, ejson, err := probe.Stats(context.Background()); err == nil {
		fmt.Printf("\nserver statistics:\n")
		fmt.Printf("  sessions:    %d open, %d peak, %d total\n", sst.SessionsOpen, sst.SessionsPeak, sst.SessionsTotal)
		fmt.Printf("  requests:    %d (%d batches), queue high-water %d\n", sst.Requests, sst.Batches, sst.QueueHighWater)
		fmt.Printf("  shed:        %d busy refusals\n", sst.Sheds)
		fmt.Printf("  rollbacks:   %d on disconnect, %d idle closes\n", sst.DisconnectRollbacks, sst.IdleCloses)
		var es core.EngineStats
		if json.Unmarshal(ejson, &es) == nil && es.Mvcc.Snapshots > 0 {
			m := es.Mvcc
			fmt.Printf("  mvcc:        %d versions installed (%d live), %d chain walks, %d reclaimed\n",
				m.VersionsInstalled, m.LiveVersions, m.ChainWalks, m.GCReclaimed)
			fmt.Printf("               %d snapshots (%d active), %d reads, %d scans\n",
				m.Snapshots, m.ActiveSnapshots, m.SnapshotReads, m.SnapshotScans)
		}
	}
	probe.Close()
}
