package client

import "repro/internal/wire"

// Batch records data operations to be shipped in one frame and executed
// server-side in order — inside a managed transaction (Client.Update /
// View), or against the session's explicit transaction (Tx.Run /
// Tx.RunCommit, Client.BeginBatch). Reads return result handles that
// are populated once the batch executes successfully.
type Batch struct {
	ops     []wire.DataOp
	results []result
}

// result links a recorded op to its client-side handle.
type result struct {
	op     int
	lookup *Lookup
	rid    *InsertedRID
	old    *Deleted
	scan   *Scanned
}

// Lookup receives an IndexGet result.
type Lookup struct {
	Value []byte
	Found bool
}

// InsertedRID receives a HeapInsert result.
type InsertedRID struct{ RID RID }

// Deleted receives an IndexDelete result (the removed value).
type Deleted struct{ Old []byte }

// Scanned receives an IndexScan result.
type Scanned struct{ KVs []KV }

// NewBatch returns an empty batch.
func NewBatch() *Batch { return &Batch{} }

// Len reports the number of recorded ops.
func (b *Batch) Len() int { return len(b.ops) }

// Reset clears the batch for reuse (result handles from the previous
// run keep their values).
func (b *Batch) Reset() {
	b.ops = b.ops[:0]
	b.results = b.results[:0]
}

// IndexInsert records an index insert.
func (b *Batch) IndexInsert(store uint32, key, value []byte) {
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpIdxInsert, Store: store, Key: key, Val: value})
}

// IndexGet records an index lookup; the handle is filled on execution.
func (b *Batch) IndexGet(store uint32, key []byte) *Lookup {
	l := &Lookup{}
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpIdxGet, Store: store, Key: key})
	b.results = append(b.results, result{op: len(b.ops) - 1, lookup: l})
	return l
}

// IndexGetForUpdate records an index lookup under an exclusive lock —
// SELECT FOR UPDATE. Use it for every key the transaction will write
// back in a later frame: reading under a shared lock and upgrading at
// write time deadlocks against concurrent readers of the same key, and
// with the read and the write separated by a client round trip the
// collision is near-certain under contention.
func (b *Batch) IndexGetForUpdate(store uint32, key []byte) *Lookup {
	l := &Lookup{}
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpIdxGetU, Store: store, Key: key})
	b.results = append(b.results, result{op: len(b.ops) - 1, lookup: l})
	return l
}

// IndexUpdate records an index value replacement.
func (b *Batch) IndexUpdate(store uint32, key, value []byte) {
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpIdxUpdate, Store: store, Key: key, Val: value})
}

// IndexDelete records an index delete; the handle receives the old
// value.
func (b *Batch) IndexDelete(store uint32, key []byte) *Deleted {
	d := &Deleted{}
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpIdxDelete, Store: store, Key: key})
	b.results = append(b.results, result{op: len(b.ops) - 1, old: d})
	return d
}

// IndexScan records a range scan over [from, to) (nil = unbounded),
// returning up to limit pairs (0 = server default).
func (b *Batch) IndexScan(store uint32, from, to []byte, limit int) *Scanned {
	s := &Scanned{}
	b.ops = append(b.ops, wire.DataOp{
		Kind: wire.OpIdxScan, Store: store, Key: from, Val: to, Limit: uint32(limit),
	})
	b.results = append(b.results, result{op: len(b.ops) - 1, scan: s})
	return s
}

// HeapInsert records a heap append; the handle receives the RID.
func (b *Batch) HeapInsert(store uint32, data []byte) *InsertedRID {
	r := &InsertedRID{}
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpHeapInsert, Store: store, Val: data})
	b.results = append(b.results, result{op: len(b.ops) - 1, rid: r})
	return r
}

// HeapGet records a heap read; the handle is filled on execution.
func (b *Batch) HeapGet(store uint32, rid RID) *Lookup {
	l := &Lookup{}
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpHeapGet, Store: store, RID: rid})
	b.results = append(b.results, result{op: len(b.ops) - 1, lookup: l})
	return l
}

// HeapUpdate records a heap record replacement.
func (b *Batch) HeapUpdate(store uint32, rid RID, data []byte) {
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpHeapUpdate, Store: store, RID: rid, Val: data})
}

// HeapDelete records a heap record delete.
func (b *Batch) HeapDelete(store uint32, rid RID) {
	b.ops = append(b.ops, wire.DataOp{Kind: wire.OpHeapDelete, Store: store, RID: rid})
}

// decodeResults walks the response body in op order, filling handles.
func (b *Batch) decodeResults(body []byte) error {
	d := wire.NewDec(body)
	ri := 0
	for i := range b.ops {
		var res *result
		if ri < len(b.results) && b.results[ri].op == i {
			res = &b.results[ri]
			ri++
		}
		switch b.ops[i].Kind {
		case wire.OpIdxGet, wire.OpIdxGetU:
			found := d.U8() == 1
			val := append([]byte(nil), d.Bytes()...)
			if res != nil && res.lookup != nil {
				res.lookup.Found = found
				if found {
					res.lookup.Value = val
				} else {
					res.lookup.Value = nil
				}
			}
		case wire.OpHeapGet:
			val := append([]byte(nil), d.Bytes()...)
			if res != nil && res.lookup != nil {
				res.lookup.Found = true
				res.lookup.Value = val
			}
		case wire.OpHeapInsert:
			rid := RID{Page: d.U64(), Slot: d.U16()}
			if res != nil && res.rid != nil {
				res.rid.RID = rid
			}
		case wire.OpIdxDelete:
			old := append([]byte(nil), d.Bytes()...)
			if res != nil && res.old != nil {
				res.old.Old = old
			}
		case wire.OpIdxScan:
			n := int(d.U32())
			var kvs []KV
			for j := 0; j < n && d.Err == nil; j++ {
				k := append([]byte(nil), d.Bytes()...)
				v := append([]byte(nil), d.Bytes()...)
				kvs = append(kvs, KV{Key: k, Value: v})
			}
			if res != nil && res.scan != nil {
				res.scan.KVs = kvs
			}
		}
		if d.Err != nil {
			return d.Err
		}
	}
	return d.Done()
}
