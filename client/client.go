// Package client is the Go client for shored, the network front end of
// the shoremt storage engine. It speaks the length-prefixed binary
// protocol of internal/wire: one synchronous request/response exchange
// at a time per connection, with whole transactions batchable into a
// single round trip.
//
// Quick start:
//
//	c, err := client.Dial("localhost:4000", client.Options{})
//	defer c.Close()
//	// One round trip, server-managed transaction (deadlock retry
//	// included):
//	var got *client.Lookup
//	err = c.Update(ctx, func(b *client.Batch) {
//		b.IndexInsert(store, []byte("k"), []byte("v"))
//		got = b.IndexGet(store, []byte("k"))
//	})
//
// A Client is not safe for concurrent use; open one per goroutine
// (connections are cheap server-side — a blocked reader goroutine).
package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"time"

	"repro/internal/wire"
)

// Options configures Dial.
type Options struct {
	// Timeout bounds each round trip (0 = 30s). Per-call contexts with
	// earlier deadlines win.
	Timeout time.Duration
}

// Client is one connection — and therefore one server session.
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	sid     uint32
	timeout time.Duration
	buf     []byte // frame read scratch
	out     []byte // request build scratch
	closed  bool
}

// RID identifies a heap record on the wire.
type RID = wire.RID

// Dial connects and performs the session handshake.
func Dial(addr string, opts Options) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts)
}

// NewClient wraps an established connection (any net.Conn, e.g. an
// in-process pipe in tests) and performs the handshake.
func NewClient(conn net.Conn, opts Options) (*Client, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	c := &Client{
		conn:    conn,
		br:      bufio.NewReader(conn),
		bw:      bufio.NewWriter(conn),
		timeout: opts.Timeout,
	}
	resp, err := c.roundTrip(context.Background(), wire.OpHello, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	c.sid = d.U32()
	if err := d.Done(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Session returns the server-assigned session id.
func (c *Client) Session() uint32 { return c.sid }

// Close tears the connection down. A transaction still open on the
// session is rolled back by the server (rollback-on-disconnect).
func (c *Client) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}

// Closed reports whether the connection is gone — closed by the caller,
// or poisoned by a transport error. A closed client cannot be reused
// (every call returns ErrClosed wrapped in the original failure's
// context); dial a fresh one.
func (c *Client) Closed() bool { return c.closed }

// fail poisons the client after a transport or framing error: the
// request/response pairing on the stream is desynchronized (a reply to
// an abandoned request would be mistaken for the next request's), so
// the connection must not be reused. The server rolls back any open
// transaction when it sees the close.
func (c *Client) fail() {
	c.closed = true
	c.conn.Close()
}

// roundTrip sends one request and reads its response, translating
// non-OK statuses into errors.
func (c *Client) roundTrip(ctx context.Context, op wire.Op, body []byte) (wire.Response, error) {
	if c.closed {
		return wire.Response{}, ErrClosed
	}
	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.fail()
		return wire.Response{}, err
	}
	c.out = wire.AppendRequest(c.out[:0], op, c.sid, body)
	if err := wire.WriteFrame(c.bw, c.out); err != nil {
		c.fail()
		return wire.Response{}, fmt.Errorf("client: write %v: %w", op, err)
	}
	if err := c.bw.Flush(); err != nil {
		c.fail()
		return wire.Response{}, fmt.Errorf("client: flush %v: %w", op, err)
	}
	payload, err := wire.ReadFrame(c.br, &c.buf)
	if err != nil {
		c.fail()
		return wire.Response{}, fmt.Errorf("client: read %v response: %w", op, err)
	}
	resp, err := wire.ParseResponse(payload)
	if err != nil {
		c.fail()
		return wire.Response{}, err
	}
	if resp.Status != wire.StatusOK {
		return resp, statusError(resp.Status, resp.Flags, string(resp.Body))
	}
	return resp, nil
}

// Ping checks liveness.
func (c *Client) Ping(ctx context.Context) error {
	_, err := c.roundTrip(ctx, wire.OpPing, nil)
	return err
}

// Resolve looks a name up in the server's catalog, returning the store
// id (or out-of-band value) and its kind.
func (c *Client) Resolve(ctx context.Context, name string) (uint32, byte, error) {
	var e wire.Enc
	e.Str(name)
	resp, err := c.roundTrip(ctx, wire.OpResolve, e.B)
	if err != nil {
		return 0, 0, err
	}
	d := wire.NewDec(resp.Body)
	id := d.U32()
	kind := d.U8()
	return id, kind, d.Done()
}

// CreateTable creates a heap table (inside the open transaction if any,
// else in its own server-managed transaction) and returns its store id.
func (c *Client) CreateTable(ctx context.Context) (uint32, error) {
	return c.create(ctx, wire.OpCreateTable)
}

// CreateIndex creates a B-tree index and returns its store id.
func (c *Client) CreateIndex(ctx context.Context) (uint32, error) {
	return c.create(ctx, wire.OpCreateIndex)
}

func (c *Client) create(ctx context.Context, op wire.Op) (uint32, error) {
	resp, err := c.roundTrip(ctx, op, nil)
	if err != nil {
		return 0, err
	}
	d := wire.NewDec(resp.Body)
	id := d.U32()
	return id, d.Done()
}

// Stats fetches the server's counters plus the engine's statistics
// (raw JSON, matching core.EngineStats).
func (c *Client) Stats(ctx context.Context) (wire.ServerStats, json.RawMessage, error) {
	resp, err := c.roundTrip(ctx, wire.OpStats, nil)
	if err != nil {
		return wire.ServerStats{}, nil, err
	}
	var payload wire.StatsPayload
	if err := json.Unmarshal(resp.Body, &payload); err != nil {
		return wire.ServerStats{}, nil, err
	}
	return payload.Server, payload.Engine, nil
}

// Update runs fn's recorded batch inside a server-managed read-write
// transaction — one round trip, with the engine's deadlock retry on the
// server side. Result handles returned by the batch recorders are
// populated when Update returns nil.
func (c *Client) Update(ctx context.Context, fn func(b *Batch)) error {
	b := NewBatch()
	fn(b)
	return c.runBatch(ctx, b, wire.BatchUpdate)
}

// View is Update's read-only sibling (server-side DB.View).
func (c *Client) View(ctx context.Context, fn func(b *Batch)) error {
	b := NewBatch()
	fn(b)
	return c.runBatch(ctx, b, wire.BatchView)
}

// Begin opens the session's explicit transaction.
func (c *Client) Begin(ctx context.Context) (*Tx, error) {
	if _, err := c.roundTrip(ctx, wire.OpBegin, nil); err != nil {
		return nil, err
	}
	return &Tx{c: c}, nil
}

// BeginBatch opens the explicit transaction AND runs b inside it, in
// one round trip.
func (c *Client) BeginBatch(ctx context.Context, b *Batch) (*Tx, error) {
	if err := c.runBatch(ctx, b, wire.BatchSession|wire.BatchBegin); err != nil {
		return nil, err
	}
	return &Tx{c: c}, nil
}

// runBatch ships a recorded batch with the given flags and decodes the
// results back into the recorders.
func (c *Client) runBatch(ctx context.Context, b *Batch, flags uint8) error {
	var e wire.Enc
	if err := wire.AppendBatch(&e, flags, b.ops); err != nil {
		return err
	}
	resp, err := c.roundTrip(ctx, wire.OpBatch, e.B)
	if err != nil {
		return err
	}
	return b.decodeResults(resp.Body)
}

// Tx is a handle on the session's open explicit transaction. All its
// round trips go through the owning Client.
type Tx struct {
	c    *Client
	done bool
}

// Commit commits the transaction.
func (t *Tx) Commit(ctx context.Context) error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	_, err := t.c.roundTrip(ctx, wire.OpCommit, nil)
	return err
}

// Rollback rolls the transaction back. Calling it after an error that
// already carried the tx-aborted flag (see IsAborted) is unnecessary
// but harmless client-side; skip it to save the round trip.
func (t *Tx) Rollback(ctx context.Context) error {
	if t.done {
		return ErrTxDone
	}
	t.done = true
	_, err := t.c.roundTrip(ctx, wire.OpRollback, nil)
	return err
}

// abandon marks the handle finished without a round trip (server
// already rolled the transaction back).
func (t *Tx) abandon() { t.done = true }

// Run executes b's ops inside the transaction (one round trip, no
// commit). If the returned error carries the aborted flag the
// transaction is gone — see IsAborted.
func (t *Tx) Run(ctx context.Context, b *Batch) error {
	if t.done {
		return ErrTxDone
	}
	err := t.c.runBatch(ctx, b, wire.BatchSession)
	if IsAborted(err) {
		t.abandon()
	}
	return err
}

// RunCommit executes b's ops and commits, in one round trip. On ANY
// failure the server rolls the transaction back (the returned error
// reports IsAborted(err) == true) so the whole unit of work can simply
// be retried.
func (t *Tx) RunCommit(ctx context.Context, b *Batch) error {
	if t.done {
		return ErrTxDone
	}
	err := t.c.runBatch(ctx, b, wire.BatchSession|wire.BatchCommit)
	if err == nil || IsAborted(err) {
		t.done = true
	}
	return err
}

// Single-op convenience wrappers on the open transaction. Each is one
// round trip; batch them when latency matters.

func (t *Tx) single(ctx context.Context, op *wire.DataOp) (wire.Response, error) {
	if t.done {
		return wire.Response{}, ErrTxDone
	}
	var e wire.Enc
	wire.AppendDataOp(&e, op)
	resp, err := t.c.roundTrip(ctx, op.Kind, e.B)
	if IsAborted(err) {
		t.abandon()
	}
	return resp, err
}

// IndexInsert adds key→value to a B-tree store.
func (t *Tx) IndexInsert(ctx context.Context, store uint32, key, value []byte) error {
	_, err := t.single(ctx, &wire.DataOp{Kind: wire.OpIdxInsert, Store: store, Key: key, Val: value})
	return err
}

// IndexGet returns the value for key (copied) and whether it exists.
func (t *Tx) IndexGet(ctx context.Context, store uint32, key []byte) ([]byte, bool, error) {
	return t.indexGet(ctx, wire.OpIdxGet, store, key)
}

// IndexGetForUpdate is IndexGet under an exclusive lock — SELECT FOR
// UPDATE. Use it for keys the transaction will write back in a later
// round trip; see Batch.IndexGetForUpdate.
func (t *Tx) IndexGetForUpdate(ctx context.Context, store uint32, key []byte) ([]byte, bool, error) {
	return t.indexGet(ctx, wire.OpIdxGetU, store, key)
}

func (t *Tx) indexGet(ctx context.Context, kind wire.Op, store uint32, key []byte) ([]byte, bool, error) {
	resp, err := t.single(ctx, &wire.DataOp{Kind: kind, Store: store, Key: key})
	if err != nil {
		return nil, false, err
	}
	d := wire.NewDec(resp.Body)
	found := d.U8() == 1
	val := append([]byte(nil), d.Bytes()...)
	if err := d.Done(); err != nil {
		return nil, false, err
	}
	if !found {
		return nil, false, nil
	}
	return val, true, nil
}

// IndexUpdate replaces the value for key.
func (t *Tx) IndexUpdate(ctx context.Context, store uint32, key, value []byte) error {
	_, err := t.single(ctx, &wire.DataOp{Kind: wire.OpIdxUpdate, Store: store, Key: key, Val: value})
	return err
}

// IndexDelete removes key, returning the old value.
func (t *Tx) IndexDelete(ctx context.Context, store uint32, key []byte) ([]byte, error) {
	resp, err := t.single(ctx, &wire.DataOp{Kind: wire.OpIdxDelete, Store: store, Key: key})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	old := append([]byte(nil), d.Bytes()...)
	return old, d.Done()
}

// IndexScan returns up to limit (0 = server default) pairs in
// [from, to), nil meaning unbounded.
func (t *Tx) IndexScan(ctx context.Context, store uint32, from, to []byte, limit int) ([]KV, error) {
	resp, err := t.single(ctx, &wire.DataOp{
		Kind: wire.OpIdxScan, Store: store, Key: from, Val: to, Limit: uint32(limit),
	})
	if err != nil {
		return nil, err
	}
	return decodeScan(resp.Body)
}

// HeapInsert appends a record to a heap store, returning its RID.
func (t *Tx) HeapInsert(ctx context.Context, store uint32, data []byte) (RID, error) {
	resp, err := t.single(ctx, &wire.DataOp{Kind: wire.OpHeapInsert, Store: store, Val: data})
	if err != nil {
		return RID{}, err
	}
	d := wire.NewDec(resp.Body)
	rid := RID{Page: d.U64(), Slot: d.U16()}
	return rid, d.Done()
}

// HeapGet reads the record at rid.
func (t *Tx) HeapGet(ctx context.Context, store uint32, rid RID) ([]byte, error) {
	resp, err := t.single(ctx, &wire.DataOp{Kind: wire.OpHeapGet, Store: store, RID: rid})
	if err != nil {
		return nil, err
	}
	d := wire.NewDec(resp.Body)
	rec := append([]byte(nil), d.Bytes()...)
	return rec, d.Done()
}

// HeapUpdate replaces the record at rid.
func (t *Tx) HeapUpdate(ctx context.Context, store uint32, rid RID, data []byte) error {
	_, err := t.single(ctx, &wire.DataOp{Kind: wire.OpHeapUpdate, Store: store, RID: rid, Val: data})
	return err
}

// HeapDelete removes the record at rid.
func (t *Tx) HeapDelete(ctx context.Context, store uint32, rid RID) error {
	_, err := t.single(ctx, &wire.DataOp{Kind: wire.OpHeapDelete, Store: store, RID: rid})
	return err
}

// KV is one scan result pair.
type KV struct {
	Key   []byte
	Value []byte
}

// decodeScan parses a scan result body into copied pairs.
func decodeScan(body []byte) ([]KV, error) {
	d := wire.NewDec(body)
	n := int(d.U32())
	if d.Err != nil {
		return nil, d.Err
	}
	kvs := make([]KV, 0, min(n, 1024))
	for i := 0; i < n; i++ {
		k := append([]byte(nil), d.Bytes()...)
		v := append([]byte(nil), d.Bytes()...)
		if d.Err != nil {
			return nil, d.Err
		}
		kvs = append(kvs, KV{Key: k, Value: v})
	}
	return kvs, d.Done()
}
