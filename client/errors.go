package client

import (
	"errors"
	"fmt"

	"repro/internal/wire"
)

// Sentinel errors mapped from server response statuses. Test with
// errors.Is; the concrete error carries the server's message.
var (
	// ErrBusy: the admission queue was full and the server shed the
	// request instead of absorbing it. The unit of work was NOT
	// started; back off and retry.
	ErrBusy = errors.New("client: server busy")
	// ErrDeadlock: the transaction was chosen as a deadlock victim and
	// rolled back; retry the whole unit of work.
	ErrDeadlock = errors.New("client: deadlock victim")
	// ErrTimeout: a lock wait exceeded the server's bound; the
	// transaction was rolled back. Retryable.
	ErrTimeout = errors.New("client: lock wait timeout")
	// ErrCanceled: the operation was abandoned server-side (shutdown or
	// context cancellation).
	ErrCanceled = errors.New("client: canceled by server")
	// ErrDuplicate: index insert on an existing key.
	ErrDuplicate = errors.New("client: duplicate key")
	// ErrNotFound: index update/delete on a missing key, or an
	// unresolvable catalog name.
	ErrNotFound = errors.New("client: not found")
	// ErrNoRecord: heap access to a dead RID.
	ErrNoRecord = errors.New("client: no such record")
	// ErrReadOnly: write op inside a View batch.
	ErrReadOnly = errors.New("client: read-only transaction")
	// ErrTxOpen: Begin (or managed batch) while the session already has
	// an explicit transaction.
	ErrTxOpen = errors.New("client: transaction already open")
	// ErrNoTx: op or Commit/Rollback without an open transaction.
	ErrNoTx = errors.New("client: no open transaction")
	// ErrProto: the server rejected the request as malformed.
	ErrProto = errors.New("client: protocol error")
	// ErrTooLarge: a frame exceeded the protocol's size cap.
	ErrTooLarge = errors.New("client: frame too large")
	// ErrClosing: the server is draining and refuses new transactions.
	ErrClosing = errors.New("client: server shutting down")
	// ErrBadSession: session id mismatch (handshake skipped?).
	ErrBadSession = errors.New("client: bad session")
	// ErrTxDone: use of a finished Tx handle.
	ErrTxDone = errors.New("client: transaction already finished")
	// ErrClosed: use of a closed Client.
	ErrClosed = errors.New("client: connection closed")
)

// Error is the concrete error for non-OK responses.
type Error struct {
	Status   wire.Status
	Aborted  bool // server rolled the session transaction back
	Message  string
	sentinel error
}

// Error formats the server's report.
func (e *Error) Error() string {
	if e.Message == "" {
		return fmt.Sprintf("%v (status %v)", e.sentinel, e.Status)
	}
	return fmt.Sprintf("%v: %s", e.sentinel, e.Message)
}

// Unwrap exposes the sentinel for errors.Is.
func (e *Error) Unwrap() error { return e.sentinel }

// IsAborted reports whether err carries the server's tx-aborted flag:
// the session's open transaction was rolled back while producing the
// error (deadlock victim, timeout, failed commit-bound batch), so the
// client must not Rollback and can immediately retry the whole unit of
// work.
func IsAborted(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Aborted
}

// Retryable reports errors after which re-running the whole unit of
// work is the right move: deadlock victims, lock timeouts and shed
// (busy) requests.
func Retryable(err error) bool {
	return errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout) || errors.Is(err, ErrBusy)
}

// statusError maps a response status onto the sentinel taxonomy.
func statusError(status wire.Status, flags uint8, msg string) error {
	var sentinel error
	switch status {
	case wire.StatusBusy:
		sentinel = ErrBusy
	case wire.StatusDeadlock:
		sentinel = ErrDeadlock
	case wire.StatusTimeout:
		sentinel = ErrTimeout
	case wire.StatusCanceled:
		sentinel = ErrCanceled
	case wire.StatusDuplicate:
		sentinel = ErrDuplicate
	case wire.StatusNotFound:
		sentinel = ErrNotFound
	case wire.StatusNoRecord:
		sentinel = ErrNoRecord
	case wire.StatusReadOnly:
		sentinel = ErrReadOnly
	case wire.StatusTxOpen:
		sentinel = ErrTxOpen
	case wire.StatusNoTx:
		sentinel = ErrNoTx
	case wire.StatusProto:
		sentinel = ErrProto
	case wire.StatusTooLarge:
		sentinel = ErrTooLarge
	case wire.StatusClosing:
		sentinel = ErrClosing
	case wire.StatusBadSession:
		sentinel = ErrBadSession
	default:
		sentinel = errors.New("client: server error")
	}
	return &Error{
		Status:   status,
		Aborted:  flags&wire.FlagTxAborted != 0,
		Message:  msg,
		sentinel: sentinel,
	}
}
