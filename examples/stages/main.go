// Stages: run the same concurrent insert workload against the real engine
// at every Figure 7 optimization stage and print the contention counters
// that motivated each optimization — a miniature of the paper's §7
// methodology ("profile, fix the dominant bottleneck, repeat") on live
// code instead of the simulator.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/wal"
)

const (
	workers  = 4
	duration = 500 * time.Millisecond
)

func runStage(stage core.Stage) {
	cfg := core.StageConfig(stage)
	cfg.Frames = 1024
	engine, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	// One private table per worker — the paper's microbenchmark shape.
	stores := make([]uint32, workers)
	setup, err := engine.Begin()
	if err != nil {
		log.Fatal(err)
	}
	for i := range stores {
		s, err := engine.CreateTable(setup)
		if err != nil {
			log.Fatal(err)
		}
		stores[i] = s
	}
	if err := engine.Commit(setup); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	inserted := make([]int, workers)
	stop := time.Now().Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			payload := []byte("0123456789abcdef0123456789abcdef")
			for time.Now().Before(stop) {
				t, err := engine.Begin()
				if err != nil {
					log.Fatal(err)
				}
				for i := 0; i < 100; i++ {
					if _, err := engine.HeapInsert(t, stores[w], payload); err != nil {
						log.Fatal(err)
					}
				}
				if err := engine.Commit(t); err != nil {
					log.Fatal(err)
				}
				inserted[w] += 100
			}
		}(w)
	}
	wg.Wait()

	total := 0
	for _, n := range inserted {
		total += n
	}
	st := engine.Stats()
	fmt.Printf("%-9s %8.0f inserts/s", stage, float64(total)/duration.Seconds())
	fmt.Printf("  | bpool tableLock contended %5.1f%%  globalLock contended %5.1f%%",
		100*st.Buffer.TableLock.ContentionRatio(), 100*st.Buffer.GlobalLock.ContentionRatio())
	fmt.Printf("  | space lock contended %5.1f%%", 100*st.Space.Lock.ContentionRatio())
	fmt.Printf("  | log insertWaits %d", st.Log.InsertWaits)
	fmt.Printf("  | lock latch contended %5.1f%%\n", 100*st.Lock.Latch.ContentionRatio())
}

func main() {
	fmt.Printf("workload: %d workers, private tables, 100-record transactions, %v per stage\n\n",
		workers, duration)
	for _, stage := range core.Stages() {
		runStage(stage)
	}
	fmt.Println("\nNote: on a single-CPU host the absolute rates barely differ — that")
	fmt.Println("is precisely why DESIGN.md reproduces the paper's figures on the")
	fmt.Println("contention simulator (cmd/shorebench). The counters above still show")
	fmt.Println("each stage eliminating its bottleneck's contention.")
}
