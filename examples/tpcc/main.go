// TPC-C: load the paper's benchmark schema and run a Payment / New Order
// mix (88% of the TPC-C transaction mix, per §3.2 of the paper),
// demonstrating the workloads of Figure 5 on the context-aware API: the
// run is bounded by a context deadline, each transaction runs under the
// engine's managed retry (no hand-rolled deadlock loops), and cancellation
// drains the workers mid-wait instead of at the next iteration boundary.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/tpcc"
	"repro/internal/wal"
)

func main() {
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	engine, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer engine.Close()

	scale := tpcc.Scale{
		Warehouses: 2, Districts: 4, Customers: 50, Items: 200, StockPerItem: true,
	}
	fmt.Println("loading TPC-C data...")
	db, err := tpcc.Load(engine, scale, 7)
	if err != nil {
		log.Fatal(err)
	}

	const clients = 4
	const duration = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), duration)
	defer cancel()

	var payments, orders, rollbacks atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := tpcc.NewRand(int64(c))
			home := uint32(c%scale.Warehouses + 1)
			for ctx.Err() == nil {
				// The §3.2 mix: Payment and New Order alternating, each a
				// managed transaction — deadlock victims retry inside the
				// engine, and the context deadline unblocks any lock wait.
				err := db.PaymentCtx(ctx, tpcc.GenPayment(r, scale, home))
				switch {
				case err == nil:
					payments.Add(1)
				case errors.Is(err, lock.ErrCanceled):
					return // deadline: drain
				default:
					log.Fatal("payment: ", err)
				}
				err = db.NewOrderCtx(ctx, tpcc.GenNewOrder(r, scale, home))
				switch {
				case err == nil:
					orders.Add(1)
				case errors.Is(err, tpcc.ErrUserAbort):
					rollbacks.Add(1) // the spec's 1% intentional aborts
				case errors.Is(err, lock.ErrCanceled):
					return // deadline: drain
				default:
					log.Fatal("new order: ", err)
				}
			}
		}(c)
	}
	wg.Wait()

	secs := duration.Seconds()
	fmt.Printf("payments:   %6d (%7.1f tps)\n", payments.Load(), float64(payments.Load())/secs)
	fmt.Printf("new orders: %6d (%7.1f tps)\n", orders.Load(), float64(orders.Load())/secs)
	fmt.Printf("rollbacks:  %6d (intentional)\n", rollbacks.Load())

	// Consistency audit: district order counters vs ORDERS rows.
	t, _ := engine.Begin()
	totalOrders := 0
	if err := engine.IndexScan(t, db.Orders, nil, nil, func(k, v []byte) bool {
		totalOrders++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	if err := engine.Commit(t); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORDERS rows: %d (== committed new orders: %v)\n",
		totalOrders, uint64(totalOrders) == orders.Load())
	st := engine.Stats()
	fmt.Printf("engine: %d lock acquires, %d waits, %d deadlocks, %d canceled waits, %d log inserts\n",
		st.Lock.Acquires, st.Lock.Waits, st.Lock.Deadlocks, st.Lock.Cancels, st.Log.Inserts)
}
