// Quickstart: open an in-memory Shore-MT database, create a table and an
// index, insert and query records, and demonstrate commit vs abort.
//
// This example deliberately stays on the manual Begin/Commit/Abort path
// to show explicit lifecycle control; see examples/bank for the managed
// DB.Update/DB.View style with built-in deadlock retry.
package main

import (
	"fmt"
	"log"

	shoremt "repro"
)

func main() {
	db, err := shoremt.Open(shoremt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Create a table and an index, insert a few rows.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	users, err := db.CreateTable(tx)
	if err != nil {
		log.Fatal(err)
	}
	byName, err := db.CreateIndex(tx)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"ada", "grace", "edsger"} {
		rid, err := users.Insert(tx, []byte("user:"+name))
		if err != nil {
			log.Fatal(err)
		}
		// Index name → rid (encoded as its string form for simplicity).
		if err := byName.Insert(tx, []byte(name), []byte(rid.String())); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("inserted %s at %v\n", name, rid)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}

	// Point query through the index.
	tx2, _ := db.Begin()
	v, ok, err := byName.Get(tx2, []byte("grace"))
	if err != nil || !ok {
		log.Fatalf("lookup failed: %v %v", ok, err)
	}
	fmt.Printf("index lookup grace -> record at %s\n", v)

	// Range scan.
	fmt.Println("all names in order:")
	if err := byName.Scan(tx2, nil, nil, func(k, v []byte) bool {
		fmt.Printf("  %s -> %s\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		log.Fatal(err)
	}

	// Abort rolls everything back — even across B-tree splits.
	tx3, _ := db.Begin()
	if err := byName.Insert(tx3, []byte("zz-temporary"), []byte("x")); err != nil {
		log.Fatal(err)
	}
	if err := tx3.Abort(); err != nil {
		log.Fatal(err)
	}
	tx4, _ := db.Begin()
	if _, ok, _ := byName.Get(tx4, []byte("zz-temporary")); ok {
		log.Fatal("aborted insert is visible!")
	}
	fmt.Println("aborted insert correctly invisible")
	if err := tx4.Commit(); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("stats: %d log inserts, %d lock acquires, %d bpool hits\n",
		st.Log.Inserts, st.Lock.Acquires, st.Buffer.Hits+st.Buffer.HotHits)
}
