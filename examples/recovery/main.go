// Recovery: demonstrate ARIES crash recovery end to end — committed work
// survives a crash, in-flight work rolls back, and fuzzy checkpoints
// bound the log replayed at restart.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

func main() {
	// Shared "durable hardware": the volume and log store survive the
	// crash; the engine (buffer pool, lock tables, ...) does not.
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()

	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 256
	engine, err := core.Open(vol, logStore, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Committed work: 100 rows + an index.
	t1, _ := engine.Begin()
	table, err := engine.CreateTable(t1)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := engine.CreateIndex(t1)
	if err != nil {
		log.Fatal(err)
	}
	ixStore := ix.Store()
	var rids []page.RID
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%03d", i)
		rid, err := engine.HeapInsert(t1, table, []byte("value-"+key))
		if err != nil {
			log.Fatal(err)
		}
		rids = append(rids, rid)
		if err := engine.IndexInsert(t1, ix, []byte(key), []byte(rid.String())); err != nil {
			log.Fatal(err)
		}
	}
	if err := engine.Commit(t1); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 100 rows + index entries")

	// Fuzzy checkpoint (with a cleaner sweep so the §7.7 fast path fires).
	engine.Pool().CleanerSweep()
	if err := engine.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint taken")

	// In-flight transaction: must roll back at restart. Force its records
	// into the durable log so recovery has something to undo.
	t2, _ := engine.Begin()
	if err := engine.HeapUpdate(t2, table, rids[0], []byte("TAMPERED")); err != nil {
		log.Fatal(err)
	}
	if err := engine.IndexInsert(t2, ix, []byte("ghost"), []byte("boo")); err != nil {
		log.Fatal(err)
	}
	if err := engine.Log().Flush(engine.Log().CurLSN()); err != nil {
		log.Fatal(err)
	}
	fmt.Println("in-flight transaction wrote TAMPERED + ghost (flushed, uncommitted)")

	// CRASH: the volatile log tail and all engine state vanish.
	engine.CrashHard()
	fmt.Println("--- crash ---")

	// Restart: Open runs analysis / redo / undo.
	engine2, err := core.Open(vol, logStore, cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer engine2.Close()
	fmt.Println("restart recovery complete")

	t3, _ := engine2.Begin()
	got, err := engine2.HeapRead(t3, table, rids[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("row 0 after recovery: %q (tampering undone: %v)\n",
		got, string(got) == "value-key000")
	ix2, err := engine2.OpenIndex(ixStore)
	if err != nil {
		log.Fatal(err)
	}
	if _, ok, _ := engine2.IndexLookup(t3, ix2, []byte("ghost")); ok {
		log.Fatal("ghost key survived recovery!")
	}
	fmt.Println("ghost key correctly absent")
	count := 0
	if err := engine2.IndexScan(t3, ix2, nil, nil, func(k, v []byte) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index has %d committed keys (want 100)\n", count)
	if err := engine2.Commit(t3); err != nil {
		log.Fatal(err)
	}
	if count != 100 {
		log.Fatal("recovery lost committed data")
	}
	fmt.Println("recovery verified ✓")
}
