// Bank: concurrent transfers between accounts, demonstrating isolation
// (two-phase locking), the managed DB.Update transaction runner — which
// retries deadlock victims inside the engine, so the application never
// sees them — and read-only audits via DB.View.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	shoremt "repro"
)

const (
	accounts       = 64
	initialBalance = 1000
	transfers      = 400
	workers        = 4
)

func encode(balance int64) []byte { return []byte(strconv.FormatInt(balance, 10)) }

func decode(b []byte) int64 {
	v, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		panic(err)
	}
	return v
}

func accountKey(i int) []byte { return []byte(fmt.Sprintf("acct%04d", i)) }

// transfer moves amount between two accounts in one managed transaction.
// Deadlock-victim retry is the engine's job: the closure just does the
// work and may run several times.
func transfer(ctx context.Context, db *shoremt.DB, ix *shoremt.Index, from, to int, amount int64) error {
	return db.Update(ctx, func(tx *shoremt.Tx) error {
		fb, ok, err := ix.Get(tx, accountKey(from))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("account %d missing", from)
		}
		tb, ok, err := ix.Get(tx, accountKey(to))
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("account %d missing", to)
		}
		if err := ix.Update(tx, accountKey(from), encode(decode(fb)-amount)); err != nil {
			return err
		}
		return ix.Update(tx, accountKey(to), encode(decode(tb)+amount))
	})
}

// audit sums every balance in one read-only View transaction.
func audit(ctx context.Context, db *shoremt.DB, ix *shoremt.Index) (total int64, n int) {
	if err := db.View(ctx, func(tx *shoremt.Tx) error {
		total, n = 0, 0 // the closure may be retried; start fresh
		return ix.Scan(tx, nil, nil, func(k, v []byte) bool {
			total += decode(v)
			n++
			return true
		})
	}); err != nil {
		log.Fatal(err)
	}
	return total, n
}

func main() {
	ctx := context.Background()
	db, err := shoremt.Open(shoremt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load accounts.
	var ix *shoremt.Index
	if err := db.Update(ctx, func(tx *shoremt.Tx) error {
		var err error
		ix, err = db.CreateIndex(tx)
		if err != nil {
			return err
		}
		for i := 0; i < accounts; i++ {
			if err := ix.Insert(tx, accountKey(i), encode(initialBalance)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d accounts with balance %d each\n", accounts, initialBalance)

	// Concurrent random transfers (lock order is random → deadlocks occur;
	// the engine detects them and retries the closure under the hood).
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers/workers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				if err := transfer(ctx, db, ix, from, to, int64(rng.Intn(100))); err != nil {
					log.Fatal(err)
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	st := db.Stats()
	fmt.Printf("%d transfers done (%d deadlocks detected and retried inside Update)\n",
		done.Load(), st.Lock.Deadlocks)

	total, n := audit(ctx, db, ix)
	fmt.Printf("audit: %d accounts, total balance %d (expected %d)\n",
		n, total, int64(accounts*initialBalance))
	if total != accounts*initialBalance {
		log.Fatal("MONEY NOT CONSERVED")
	}
	fmt.Println("money conserved ✓")
}
