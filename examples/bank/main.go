// Bank: concurrent transfers between accounts, demonstrating isolation
// (two-phase locking), deadlock detection with retry, and crash recovery
// preserving the money-conservation invariant.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"

	shoremt "repro"
)

const (
	accounts       = 64
	initialBalance = 1000
	transfers      = 400
	workers        = 4
)

func encode(balance int64) []byte { return []byte(strconv.FormatInt(balance, 10)) }

func decode(b []byte) int64 {
	v, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		panic(err)
	}
	return v
}

func accountKey(i int) []byte { return []byte(fmt.Sprintf("acct%04d", i)) }

// transfer moves amount between two accounts in one transaction,
// retrying when chosen as a deadlock victim.
func transfer(db *shoremt.DB, ix *shoremt.Index, from, to int, amount int64) error {
	for attempt := 0; attempt < 20; attempt++ {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		err = func() error {
			fb, ok, err := ix.Get(tx, accountKey(from))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("account %d missing", from)
			}
			tb, ok, err := ix.Get(tx, accountKey(to))
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("account %d missing", to)
			}
			if err := ix.Update(tx, accountKey(from), encode(decode(fb)-amount)); err != nil {
				return err
			}
			return ix.Update(tx, accountKey(to), encode(decode(tb)+amount))
		}()
		if err != nil {
			_ = tx.Abort()
			if errors.Is(err, shoremt.ErrDeadlock) || errors.Is(err, shoremt.ErrTimeout) {
				continue // victim: retry
			}
			return err
		}
		return tx.Commit()
	}
	return fmt.Errorf("transfer %d->%d: too many deadlock retries", from, to)
}

func audit(db *shoremt.DB, ix *shoremt.Index) (total int64, n int) {
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	defer tx.Commit()
	if err := ix.Scan(tx, nil, nil, func(k, v []byte) bool {
		total += decode(v)
		n++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	return total, n
}

func main() {
	db, err := shoremt.Open(shoremt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Load accounts.
	tx, _ := db.Begin()
	ix, err := db.CreateIndex(tx)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < accounts; i++ {
		if err := ix.Insert(tx, accountKey(i), encode(initialBalance)); err != nil {
			log.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d accounts with balance %d each\n", accounts, initialBalance)

	// Concurrent random transfers (lock order is random → deadlocks occur
	// and must be detected and retried).
	var wg sync.WaitGroup
	var done atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < transfers/workers; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				if err := transfer(db, ix, from, to, int64(rng.Intn(100))); err != nil {
					log.Fatal(err)
				}
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	st := db.Stats()
	fmt.Printf("%d transfers done (%d deadlocks detected and retried)\n",
		done.Load(), st.Lock.Deadlocks)

	total, n := audit(db, ix)
	fmt.Printf("audit: %d accounts, total balance %d (expected %d)\n",
		n, total, int64(accounts*initialBalance))
	if total != accounts*initialBalance {
		log.Fatal("MONEY NOT CONSERVED")
	}
	fmt.Println("money conserved ✓")
}
