// Real-engine benchmarks, one family per paper figure. These drive the
// actual Go implementation (not the contention simulator): they validate
// the relative costs that calibrate the simulator's service times and let
// `go test -bench` compare component variants directly.
//
//	BenchmarkFigure1_* / BenchmarkFigure4_*  — record-insert microbenchmark
//	    per optimization stage (the figures' workload, on live code).
//	BenchmarkFigure5_*  — TPC-C Payment and New Order transactions.
//	BenchmarkFigure6_*  — free-space-manager mutex variants.
//	BenchmarkFigure7_*  — full stage ladder, end-to-end inserts.
//	BenchmarkPrimitive_* — the §6 synchronization primitives themselves.
//	BenchmarkLog_*       — the three log-manager designs.
//	BenchmarkBpool_*     — buffer-pool table variants.
package shoremt

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/lock"
	"repro/internal/page"
	"repro/internal/peers"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/tpcc"
	"repro/internal/tx"
	"repro/internal/wal"
)

// newBenchEngine builds a real engine at the given stage.
func newBenchEngine(b *testing.B, stage core.Stage) *core.Engine {
	b.Helper()
	return newBenchEngineStore(b, stage, wal.NewMemStore())
}

// benchCreateTable registers a heap store in a short committed setup
// transaction.
func benchCreateTable(b *testing.B, e *core.Engine) uint32 {
	b.Helper()
	ct, err := e.Begin()
	if err != nil {
		b.Fatal(err)
	}
	store, err := e.CreateTable(ct)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Commit(ct); err != nil {
		b.Fatal(err)
	}
	return store
}

// newBenchEngineStore builds a real engine over a caller-chosen log store.
func newBenchEngineStore(b *testing.B, stage core.Stage, store wal.Store) *core.Engine {
	b.Helper()
	cfg := core.StageConfig(stage)
	cfg.Frames = 4096
	e, err := core.Open(disk.NewMem(0), store, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// newBenchEngineCfg builds a real engine from an explicit config.
func newBenchEngineCfg(b *testing.B, cfg core.Config) *core.Engine {
	b.Helper()
	e, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// benchInsert measures the record-insert path (the §3.2 microbenchmark's
// inner loop) on the real engine.
func benchInsert(b *testing.B, stage core.Stage) {
	e := newBenchEngine(b, stage)
	store := benchCreateTable(b, e)
	payload := []byte("0123456789abcdef0123456789abcdef")
	t, err := e.Begin()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HeapInsert(t, store, payload); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 { // commit every 1000 records, per the paper
			if err := e.Commit(t); err != nil {
				b.Fatal(err)
			}
			if t, err = e.Begin(); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	if err := e.Commit(t); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFigure7_InsertByStage(b *testing.B) {
	for _, stage := range core.Stages() {
		stage := stage
		b.Run(stage.String(), func(b *testing.B) { benchInsert(b, stage) })
	}
}

func BenchmarkFigure1_InsertParallel(b *testing.B) {
	// The Figure 1/4 workload shape on the real engine: each worker gets a
	// private table (no logical contention); engine-internal contention
	// only. Run with -cpu to vary parallelism.
	for _, stage := range []core.Stage{core.StageBaseline, core.StageFinal} {
		stage := stage
		b.Run(stage.String(), func(b *testing.B) {
			e := newBenchEngine(b, stage)
			payload := []byte("0123456789abcdef0123456789abcdef")
			var mu sync2.TATASLock // protects table handout
			var tables []uint32
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				ct, err := e.Begin()
				if err != nil {
					mu.Unlock()
					b.Error(err)
					return
				}
				store, err := e.CreateTable(ct)
				if err == nil {
					err = e.Commit(ct)
				}
				if err != nil {
					mu.Unlock()
					b.Error(err)
					return
				}
				tables = append(tables, store)
				mu.Unlock()
				t, err := e.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				n := 0
				for pb.Next() {
					if _, err := e.HeapInsert(t, store, payload); err != nil {
						b.Error(err)
						return
					}
					if n++; n%1000 == 999 {
						if err := e.Commit(t); err != nil {
							b.Error(err)
							return
						}
						if t, err = e.Begin(); err != nil {
							b.Error(err)
							return
						}
					}
				}
				_ = e.Commit(t)
			})
		})
	}
}

func BenchmarkFigure4_SimulatedEngines(b *testing.B) {
	// One simulator evaluation per engine at 16 threads: regenerating a
	// Figure 4 column inside the bench harness.
	for _, m := range peers.Figure4Models() {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tps, _ := bench.RunInsert(m, 16, 50e6)
				if tps <= 0 {
					b.Fatal("no throughput")
				}
			}
		})
	}
}

// newFig5Engine builds the Figure 5 engine: StageFinal with the lock
// fast paths of the follow-up work enabled — the transaction-private
// lock cache is always on, SLI per the flag.
func newFig5Engine(b *testing.B, sli bool) *core.Engine {
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	cfg.SLI = sli
	return newBenchEngineCfg(b, cfg)
}

func BenchmarkFigure5_Payment(b *testing.B) {
	e := newFig5Engine(b, true)
	db, err := tpcc.Load(e, tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 50, Items: 200, StockPerItem: true}, 42)
	if err != nil {
		b.Fatal(err)
	}
	r := tpcc.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := db.PaymentWithRetry(tpcc.GenPayment(r, db.Scale, uint32(i%2+1)), 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5_NewOrder(b *testing.B) {
	e := newFig5Engine(b, true)
	db, err := tpcc.Load(e, tpcc.Scale{Warehouses: 2, Districts: 4, Customers: 50, Items: 200, StockPerItem: true}, 42)
	if err != nil {
		b.Fatal(err)
	}
	r := tpcc.NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := db.NewOrderWithRetry(tpcc.GenNewOrder(r, db.Scale, uint32(i%2+1)), 10)
		if err != nil && err != tpcc.ErrUserAbort {
			b.Fatal(err)
		}
	}
}

// benchFig5Parallel drives a TPC-C transaction from concurrent workers
// (run with -cpu=8 or more), comparing the lock path with and without
// speculative lock inheritance. One iteration is one committed
// transaction; retryable storms that exhaust the retry budget are
// counted, not fatal.
func benchFig5Parallel(b *testing.B, sli bool, run func(db *tpcc.DB, r *tpcc.Rand, home uint32) error) {
	const warehouses = 4
	e := newFig5Engine(b, sli)
	db, err := tpcc.Load(e, tpcc.Scale{Warehouses: warehouses, Districts: 4, Customers: 50, Items: 200, StockPerItem: true}, 42)
	if err != nil {
		b.Fatal(err)
	}
	var seq, giveUps atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := seq.Add(1)
		r := tpcc.NewRand(id)
		home := uint32(id%warehouses + 1)
		for pb.Next() {
			err := run(db, r, home)
			switch {
			case err == nil, errors.Is(err, tpcc.ErrUserAbort):
			case core.IsRetryable(err):
				giveUps.Add(1) // retry budget exhausted under contention
			default:
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	// Per-op rates, so runs with different b.N are comparable.
	b.ReportMetric(float64(giveUps.Load())/float64(b.N), "giveups/op")
	b.ReportMetric(float64(st.Lock.CacheHits)/float64(b.N), "cachehits/op")
	b.ReportMetric(float64(st.Lock.InheritedGrants)/float64(b.N), "inherited/op")
}

func BenchmarkFigure5_PaymentParallel(b *testing.B) {
	for _, sli := range []bool{false, true} {
		sli := sli
		b.Run(fmt.Sprintf("sli=%v", sli), func(b *testing.B) {
			benchFig5Parallel(b, sli, func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
				return db.PaymentWithRetry(tpcc.GenPayment(r, db.Scale, home), 100)
			})
		})
	}
}

func BenchmarkFigure5_NewOrderParallel(b *testing.B) {
	for _, sli := range []bool{false, true} {
		sli := sli
		b.Run(fmt.Sprintf("sli=%v", sli), func(b *testing.B) {
			benchFig5Parallel(b, sli, func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
				return db.NewOrderWithRetry(tpcc.GenNewOrder(r, db.Scale, home), 100)
			})
		})
	}
}

// benchDoraParallel drives one TPC-C transaction type from concurrent
// workers (run with -cpu=8), comparing the engine's best shared-lock
// configuration (SLI, PR 3's baseline) against data-oriented execution
// on the same mix. One iteration is one committed transaction.
func benchDoraParallel(b *testing.B, dora bool, run func(db *tpcc.DB, r *tpcc.Rand, home uint32) error) {
	const warehouses = 8
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	if dora {
		cfg.DORA = true
		cfg.DoraKeys = warehouses
	} else {
		cfg.SLI = true
	}
	e := newBenchEngineCfg(b, cfg)
	db, err := tpcc.Load(e, tpcc.Scale{Warehouses: warehouses, Districts: 4, Customers: 50, Items: 100, StockPerItem: true}, 42)
	if err != nil {
		b.Fatal(err)
	}
	var seq, giveUps atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := seq.Add(1)
		r := tpcc.NewRand(id)
		home := uint32(id%warehouses + 1)
		for pb.Next() {
			err := run(db, r, home)
			switch {
			case err == nil, errors.Is(err, tpcc.ErrUserAbort):
			case core.IsRetryable(err):
				giveUps.Add(1) // retry budget exhausted under contention
			default:
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(giveUps.Load())/float64(b.N), "giveups/op")
	if dora {
		st := e.Stats().Dora
		b.ReportMetric(float64(st.CrossTx)/float64(b.N), "crosstx/op")
		b.ReportMetric(float64(st.LocalAcquires)/float64(b.N), "localacq/op")
	}
}

// BenchmarkDoraParallel is the PR's headline comparison: the SLI
// configuration versus DORA-style partitioned execution, per
// transaction type. CI captures it as BENCH_dora.json.
func BenchmarkDoraParallel(b *testing.B) {
	payment := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.PaymentWithRetry(tpcc.GenPayment(r, db.Scale, home), 100)
	}
	newOrder := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.NewOrderWithRetry(tpcc.GenNewOrder(r, db.Scale, home), 100)
	}
	doraPayment := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.DoraPayment(context.Background(), tpcc.GenPayment(r, db.Scale, home))
	}
	doraNewOrder := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.DoraNewOrder(context.Background(), tpcc.GenNewOrder(r, db.Scale, home))
	}
	b.Run("payment/sli", func(b *testing.B) { benchDoraParallel(b, false, payment) })
	b.Run("payment/dora", func(b *testing.B) { benchDoraParallel(b, true, doraPayment) })
	b.Run("neworder/sli", func(b *testing.B) { benchDoraParallel(b, false, newOrder) })
	b.Run("neworder/dora", func(b *testing.B) { benchDoraParallel(b, true, doraNewOrder) })
}

// benchPlpParallel drives one TPC-C transaction type through the DORA
// executor from concurrent workers (run with -cpu=8), comparing
// shared-tree DORA (partition-local locks, shared B-trees) against PLP
// (per-partition segment forests with latch-free owner-path index
// operations plus the skew re-balancer). One iteration is one committed
// transaction. With zipf, each worker draws its home warehouse
// per-iteration from a Zipfian distribution, so the re-balancer has
// real skew to correct.
func benchPlpParallel(b *testing.B, plpOn, zipf bool, run func(db *tpcc.DB, r *tpcc.Rand, home uint32) error) {
	const warehouses = 8
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	cfg.DORA = true
	cfg.DoraKeys = warehouses
	if zipf {
		// Fewer partitions than routing keys, so partitions own multi-key
		// spans and the re-balancer has boundary keys to migrate; with one
		// partition per warehouse the map is born converged.
		cfg.DoraPartitions = warehouses / 2
	}
	if plpOn {
		cfg.PLP = true
		cfg.PlpRebalanceEvery = 5 * time.Millisecond
	}
	e := newBenchEngineCfg(b, cfg)
	db, err := tpcc.Load(e, tpcc.Scale{Warehouses: warehouses, Districts: 4, Customers: 50, Items: 100, StockPerItem: true}, 42)
	if err != nil {
		b.Fatal(err)
	}
	var seq, giveUps atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := seq.Add(1)
		r := tpcc.NewRand(id)
		home := uint32(id%warehouses + 1)
		var z *mrand.Zipf
		if zipf {
			z = mrand.NewZipf(mrand.New(mrand.NewSource(id)), 1.3, 1, warehouses-1)
		}
		for pb.Next() {
			if z != nil {
				home = uint32(z.Uint64() + 1)
			}
			err := run(db, r, home)
			switch {
			case err == nil, errors.Is(err, tpcc.ErrUserAbort):
			case core.IsRetryable(err):
				giveUps.Add(1) // retry budget exhausted under contention
			default:
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(giveUps.Load())/float64(b.N), "giveups/op")
	if zipf {
		b.ReportMetric(benchResidualSkew(b, db, warehouses), "skewratio")
	}
	if plpOn {
		st := e.Stats()
		b.ReportMetric(float64(st.Btree.OwnerDescents+st.Btree.OwnerReads)/float64(b.N), "ownerops/op")
		b.ReportMetric(float64(st.Plp.Migrations), "migrations")
	}
}

// benchResidualSkew measures the routing skew left over after the timed
// run (and, under PLP, after any migrations the re-balancer committed
// during it): it drives a short untimed burst of the same Zipfian
// Payment load and returns max/mean of the per-partition routing deltas
// over that burst. Shared-tree DORA cannot adapt, so its ratio stays at
// the distribution's intrinsic skew; PLP's converges toward uniform as
// boundary keys migrate off the hot partition.
func benchResidualSkew(b *testing.B, db *tpcc.DB, warehouses int) float64 {
	b.Helper()
	parts := db.Engine.Stats().Dora.Parts
	base := make([]uint64, len(parts))
	for i, p := range parts {
		base[i] = p.Routed
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := tpcc.NewRand(int64(7700 + w))
			z := mrand.NewZipf(mrand.New(mrand.NewSource(int64(8800+w))), 1.3, 1, uint64(warehouses-1))
			for ctx.Err() == nil {
				home := uint32(z.Uint64() + 1)
				_ = db.DoraPayment(ctx, tpcc.GenPayment(r, db.Scale, home))
			}
		}(w)
	}
	wg.Wait()
	var total, max uint64
	after := db.Engine.Stats().Dora.Parts
	for i, p := range after {
		d := p.Routed - base[i]
		total += d
		if d > max {
			max = d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) / (float64(total) / float64(len(after)))
}

// BenchmarkPlpParallel is this PR's headline comparison: shared-tree
// DORA versus physiologically partitioned trees, per transaction type,
// plus a Zipfian-skewed variant that exercises the re-balancer and
// reports the residual routing skew. CI captures it as BENCH_plp.json.
func BenchmarkPlpParallel(b *testing.B) {
	payment := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.DoraPayment(context.Background(), tpcc.GenPayment(r, db.Scale, home))
	}
	newOrder := func(db *tpcc.DB, r *tpcc.Rand, home uint32) error {
		return db.DoraNewOrder(context.Background(), tpcc.GenNewOrder(r, db.Scale, home))
	}
	b.Run("payment/dora", func(b *testing.B) { benchPlpParallel(b, false, false, payment) })
	b.Run("payment/plp", func(b *testing.B) { benchPlpParallel(b, true, false, payment) })
	b.Run("neworder/dora", func(b *testing.B) { benchPlpParallel(b, false, false, newOrder) })
	b.Run("neworder/plp", func(b *testing.B) { benchPlpParallel(b, true, false, newOrder) })
	b.Run("zipf-payment/dora", func(b *testing.B) { benchPlpParallel(b, false, true, payment) })
	b.Run("zipf-payment/plp", func(b *testing.B) { benchPlpParallel(b, true, true, payment) })
}

func BenchmarkFigure6_FreeSpaceMutex(b *testing.B) {
	// The Figure 6 variants on the real free-space manager.
	variants := []struct {
		name string
		opts space.Options
	}{
		{"pthread+latchInCS", space.Options{Mutex: sync2.KindBlocking, LatchInCS: true}},
		{"TATAS+latchInCS", space.Options{Mutex: sync2.KindTATAS, LatchInCS: true}},
		{"MCS+latchInCS", space.Options{Mutex: sync2.KindMCS, LatchInCS: true}},
		{"MCS+refactored", space.Options{Mutex: sync2.KindMCS, LatchInCS: false, LastPageCache: true, ExtentCache: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			vol := disk.NewMem(0)
			m := space.NewManager(vol, v.opts)
			store := m.CreateStore(space.KindHeap)
			b.RunParallel(func(pb *testing.PB) {
				var cache space.ExtentCache
				for pb.Next() {
					pid, err := m.AllocPage(store, nil)
					if err != nil {
						b.Error(err)
						return
					}
					// The post-allocation membership check (§6.2.2),
					// hitting the thread-local cache when enabled.
					if err := m.CheckPage(store, pid, &cache); err != nil {
						b.Error(err)
						return
					}
					m.FreePage(pid)
				}
			})
		})
	}
}

// slowStore wraps a log store with a fixed per-flush latency, modeling a
// real device's sync cost (a few tens of microseconds ≈ enterprise SSD).
// Without it an in-memory flush is nearly free and the commit path's
// flush-while-holding-locks serialization would be invisible.
type slowStore struct {
	wal.Store
	latency time.Duration
}

func (s *slowStore) Flush(upTo int64) error {
	time.Sleep(s.latency)
	return s.Store.Flush(upTo)
}

// benchCommit drives the commit path under logical contention: all
// workers update rows of one shared table and commit every `batch`
// updates. Each iteration is one committed transaction. StageFinal holds
// every lock across its commit flush; StagePipeline releases locks at
// pre-commit and lets the flush daemon batch the hardening — run with
// -cpu=8 (or more) to see the difference. Rows are locked in increasing
// order so no deadlocks occur.
func benchCommit(b *testing.B, stage core.Stage, batch int) {
	store := &slowStore{Store: wal.NewMemStore(), latency: 50 * time.Microsecond}
	e := newBenchEngineStore(b, stage, store)
	table := benchCreateTable(b, e)
	const rows = 256
	rids := make([]page.RID, rows)
	t0, err := e.Begin()
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte("0123456789abcdef0123456789abcdef")
	for i := range rids {
		if rids[i], err = e.HeapInsert(t0, table, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Commit(t0); err != nil {
		b.Fatal(err)
	}

	var seed, aborts atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := seed.Add(0x9e3779b97f4a7c15) // per-worker LCG state
		for pb.Next() {
			// Retry until this iteration commits, so every iteration is
			// exactly one committed transaction regardless of how many
			// lock timeouts scheduler noise induces per stage.
			for {
				t, err := e.Begin()
				if err != nil {
					b.Error(err)
					return
				}
				rng = rng*6364136223846793005 + 1442695040888963407
				start := int(rng>>33) % (rows - batch + 1)
				retry := false
				for j := 0; j < batch; j++ {
					if err := e.HeapUpdate(t, table, rids[start+j], payload); err != nil {
						if errors.Is(err, lock.ErrTimeout) || errors.Is(err, lock.ErrDeadlock) {
							_ = e.Abort(t)
							aborts.Add(1)
							retry = true
							break
						}
						b.Error(err)
						return
					}
				}
				if retry {
					continue
				}
				if err := e.Commit(t); err != nil {
					b.Error(err)
					return
				}
				break
			}
		}
	})
	b.StopTimer()
	st := e.Stats()
	b.ReportMetric(float64(st.Log.Flushes), "flushes")
	b.ReportMetric(float64(aborts.Load()), "aborts")
}

func BenchmarkCommitSync(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { benchCommit(b, core.StageFinal, batch) })
	}
}

func BenchmarkCommitPipeline(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		batch := batch
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) { benchCommit(b, core.StagePipeline, batch) })
	}
}

func BenchmarkPrimitive_Locks(b *testing.B) {
	for _, k := range []sync2.Kind{sync2.KindTAS, sync2.KindTATAS, sync2.KindTicket, sync2.KindMCS, sync2.KindCLH, sync2.KindHybrid, sync2.KindBlocking} {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			l := sync2.New(k)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					l.Unlock() //nolint:staticcheck // empty critical section is the point
				}
			})
		})
	}
}

func BenchmarkLog_Designs(b *testing.B) {
	for _, d := range []wal.Design{wal.DesignCoupled, wal.DesignDecoupled, wal.DesignConsolidated} {
		d := d
		b.Run(d.String(), func(b *testing.B) {
			m := wal.New(wal.NewMemStore(), wal.Options{Design: d})
			defer m.Close()
			payload := make([]byte, 64)
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := m.Insert(&wal.Record{Type: wal.RecUpdate, TxID: 1, Redo: payload}); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

func BenchmarkLock_Manager(b *testing.B) {
	for _, tm := range []lock.TableMode{lock.TableGlobal, lock.TablePerBucket} {
		for _, pk := range []lock.PoolKind{lock.PoolMutex, lock.PoolLockFree} {
			tm, pk := tm, pk
			b.Run(fmt.Sprintf("%v/%v", tm, pk), func(b *testing.B) {
				m := lock.NewManager(lock.Options{Table: tm, Pool: pk})
				var txSeq sync2.TATASLock
				next := uint64(1)
				b.RunParallel(func(pb *testing.PB) {
					txSeq.Lock()
					txID := next
					next++
					txSeq.Unlock()
					i := uint64(0)
					for pb.Next() {
						n := lock.StoreName(uint32(txID*1000 + i%100))
						if err := m.Lock(context.Background(), txID, n, lock.IX, 0); err != nil {
							b.Error(err)
							return
						}
						m.Unlock(txID, n)
						i++
					}
				})
			})
		}
	}
}

// BenchmarkLock_SLI isolates the speculative-lock-inheritance fast
// path on the hottest possible lock: every worker takes the single
// database intent lock per "transaction". The plain variant pays the
// bucket latch round trip twice per iteration (the §7.5 bottleneck,
// since one hot name means one hot bucket no matter how many buckets
// the table has); the inherit variant claims and parks the same grant
// with one CAS each way.
func BenchmarkLock_SLI(b *testing.B) {
	for _, inherit := range []bool{false, true} {
		inherit := inherit
		b.Run(fmt.Sprintf("inherit=%v", inherit), func(b *testing.B) {
			m := lock.NewManager(lock.Options{Table: lock.TablePerBucket, Pool: lock.PoolLockFree})
			n := lock.DatabaseName()
			var txSeq atomic.Uint64
			b.RunParallel(func(pb *testing.PB) {
				ag := m.NewAgent()
				for pb.Next() {
					txID := txSeq.Add(1)
					if inherit {
						if _, ok := ag.Claim(n, txID); !ok {
							if err := m.Lock(context.Background(), txID, n, lock.IX, 0); err != nil {
								b.Error(err)
								return
							}
						}
						if !m.ReleaseInherit(txID, n, ag) {
							m.Unlock(txID, n)
						}
						continue
					}
					if err := m.Lock(context.Background(), txID, n, lock.IX, 0); err != nil {
						b.Error(err)
						return
					}
					m.Unlock(txID, n)
				}
			})
		})
	}
}

// BenchmarkUpdateRetry measures transfer throughput under induced
// deadlocks — parallel workers update two hot rows in opposite orders —
// comparing the engine-managed DB.Update retry against the hand-rolled
// abort/retry loop it replaces (the examples' old idiom). One iteration
// is one successfully committed transfer, however many victim retries it
// took.
func BenchmarkUpdateRetry(b *testing.B) {
	setup := func(b *testing.B) (*DB, *Table, RID, RID) {
		b.Helper()
		// The managed policy's backoff envelope mirrors the manual loop's
		// fixed 500-1500µs sleeps so the comparison measures the retry
		// mechanism (jitter quality, abort placement), not cap tuning.
		db, err := Open(Options{
			CleanerInterval: -1,
			LockTimeout:     20 * time.Millisecond,
			Retry: RetryPolicy{
				MaxAttempts: 1000,
				BaseBackoff: 500 * time.Microsecond,
				MaxBackoff:  1500 * time.Microsecond,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { db.Close() })
		var (
			tb         *Table
			ridA, ridB RID
		)
		if err := db.Update(context.Background(), func(tx *Tx) error {
			if tb, err = db.CreateTable(tx); err != nil {
				return err
			}
			if ridA, err = tb.Insert(tx, []byte("A0")); err != nil {
				return err
			}
			ridB, err = tb.Insert(tx, []byte("B0"))
			return err
		}); err != nil {
			b.Fatal(err)
		}
		return db, tb, ridA, ridB
	}
	order := func(worker int64, a, c RID) (RID, RID) {
		if worker%2 == 0 {
			return a, c
		}
		return c, a
	}

	b.Run("managed", func(b *testing.B) {
		db, tb, ridA, ridB := setup(b)
		var seq atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			first, second := order(seq.Add(1), ridA, ridB)
			for pb.Next() {
				err := db.Update(context.Background(), func(tx *Tx) error {
					if err := tb.Update(tx, first, []byte("x")); err != nil {
						return err
					}
					return tb.Update(tx, second, []byte("y"))
				})
				if err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("manual", func(b *testing.B) {
		db, tb, ridA, ridB := setup(b)
		var seq atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			first, second := order(seq.Add(1), ridA, ridB)
			for pb.Next() {
				for attempt := 0; ; attempt++ {
					tx, err := db.Begin()
					if err != nil {
						b.Error(err)
						return
					}
					err = func() error {
						if err := tb.Update(tx, first, []byte("x")); err != nil {
							return err
						}
						return tb.Update(tx, second, []byte("y"))
					}()
					if err == nil {
						err = tx.Commit()
					} else {
						_ = tx.Abort()
					}
					if err == nil {
						break
					}
					if !(errors.Is(err, ErrDeadlock) || errors.Is(err, ErrTimeout)) || attempt >= 1000 {
						b.Error(err)
						return
					}
					// The old examples' backoff: fixed-ish randomized sleep.
					time.Sleep(time.Duration(500+attempt%1000) * time.Microsecond)
				}
			}
		})
	})
}

// benchViewWork measures read-only View transactions racing a background
// write mix, on the classic S-locked path versus the multiversion
// snapshot path. mode "scan" makes one iteration a full heap scan of the
// table (store-level S vs an as-of page sweep); mode "get" makes it a
// View of 64 random-order index point reads (per-key S locks vs pin-free
// leaf probes plus chain resolution). Writers keep committing 8-row
// transactions throughout: on the S-lock path they serialize against
// scans and can deadlock against random-order getters, on the snapshot
// path neither side ever waits for the other.
func benchViewWork(b *testing.B, snapshot bool, mode string) {
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	cfg.Snapshot = snapshot
	e := newBenchEngineCfg(b, cfg)
	store := benchCreateTable(b, e)
	const rows = 2000
	payload := make([]byte, 64)
	benchKey := func(i int) []byte { return []byte(fmt.Sprintf("key%05d", i)) }
	rids := make([]page.RID, rows)
	setup, err := e.Begin()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := e.CreateIndex(setup)
	if err != nil {
		b.Fatal(err)
	}
	for i := range rids {
		if rids[i], err = e.HeapInsert(setup, store, payload); err != nil {
			b.Fatal(err)
		}
		if err := e.IndexInsert(setup, ix, benchKey(i), payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Commit(setup); err != nil {
		b.Fatal(err)
	}

	ctx := context.Background()
	stop := make(chan struct{})
	var writes atomic.Uint64
	var wwg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			rng := uint64(w)*0x9e3779b97f4a7c15 + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Update 4 heap rows then 4 index keys per transaction, each
				// group in sorted order so writers never deadlock each
				// other — the X locks are held across the whole commit,
				// which is what the S-locked readers have to wait out.
				picks := make([]int, 0, 8)
				for len(picks) < 8 {
					rng = rng*6364136223846793005 + 1442695040888963407
					picks = append(picks, int(rng>>33)%rows)
				}
				sort.Ints(picks)
				err := e.RunCtx(ctx, core.RetryPolicy{}, func(t *tx.Tx) error {
					for _, i := range picks[:4] {
						if err := e.HeapUpdateCtx(ctx, t, store, rids[i], payload); err != nil {
							return err
						}
					}
					for _, i := range picks[4:] {
						if err := e.IndexUpdateCtx(ctx, t, ix, benchKey(i), payload); err != nil {
							return err
						}
					}
					return nil
				}, nil)
				if err == nil {
					writes.Add(1)
				}
			}
		}(w)
	}
	// Checkpoint ticker stands in for the cleaner daemon: it advances the
	// durable horizon and garbage-collects version chains, exactly as a
	// production deployment would in the background.
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				_ = e.Checkpoint()
			}
		}
	}()

	var seq, giveups atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := seq.Add(1) * 0x9e3779b97f4a7c15
		for pb.Next() {
			var err error
			switch mode {
			case "scan":
				count := 0
				err = e.RunViewCtx(ctx, core.RetryPolicy{}, func(t *tx.Tx) error {
					count = 0
					return e.HeapScanCtx(ctx, t, store, func(rid page.RID, rec []byte) bool {
						count++
						return true
					})
				})
				if err == nil && count != rows {
					b.Errorf("scan saw %d rows, want %d", count, rows)
					return
				}
			case "get":
				err = e.RunViewCtx(ctx, core.RetryPolicy{}, func(t *tx.Tx) error {
					for g := 0; g < 64; g++ {
						rng = rng*6364136223846793005 + 1442695040888963407
						_, found, gerr := e.IndexLookupCtx(ctx, t, ix, benchKey(int(rng>>33)%rows))
						if gerr != nil {
							return gerr
						}
						if !found {
							return fmt.Errorf("key missing")
						}
					}
					return nil
				})
			}
			if err != nil {
				// S-locked getters can lose deadlocks against writers even
				// after retries; that is part of what the baseline costs.
				if core.IsRetryable(err) {
					giveups.Add(1)
					continue
				}
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	close(stop)
	wwg.Wait()
	st := e.Stats()
	b.ReportMetric(float64(writes.Load())/float64(b.N), "writes/op")
	b.ReportMetric(float64(st.Lock.Acquires)/float64(b.N), "lockacq/op")
	b.ReportMetric(float64(giveups.Load())/float64(b.N), "giveups/op")
	if snapshot {
		b.ReportMetric(float64(st.Mvcc.ChainWalks)/float64(b.N), "chainwalks/op")
	}
}

// BenchmarkViewScanParallel is the PR's headline comparison: S-locked
// read-only transactions versus lock-free snapshot reads under a
// concurrent write mix. Run with -cpu=8; CI captures it as
// BENCH_view.json.
func BenchmarkViewScanParallel(b *testing.B) {
	b.Run("scan/slock", func(b *testing.B) { benchViewWork(b, false, "scan") })
	b.Run("scan/snapshot", func(b *testing.B) { benchViewWork(b, true, "scan") })
	b.Run("get/slock", func(b *testing.B) { benchViewWork(b, false, "get") })
	b.Run("get/snapshot", func(b *testing.B) { benchViewWork(b, true, "get") })
}

// BenchmarkHeapSlotChurn measures insert/delete churn on full heap
// pages: every insert must find a reusable tombstone slot. The frame's
// free-slot hint turns the per-insert tombstone scan from O(slots) — a
// full directory walk on a packed page — into first-fit from a cached
// low-water mark.
func BenchmarkHeapSlotChurn(b *testing.B) {
	e := newBenchEngine(b, core.StageFinal)
	store := benchCreateTable(b, e)
	payload := make([]byte, 40)

	// Pack one page with records.
	setup, err := e.Begin()
	if err != nil {
		b.Fatal(err)
	}
	var rids []page.RID
	for i := 0; i < 150; i++ {
		rid, err := e.HeapInsert(setup, store, payload)
		if err != nil {
			b.Fatal(err)
		}
		if i > 0 && rid.Page != rids[0].Page {
			break // page full; stay on a single packed page
		}
		rids = append(rids, rid)
	}
	if err := e.Commit(setup); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(rids)
		tx, err := e.Begin()
		if err != nil {
			b.Fatal(err)
		}
		if err := e.HeapDelete(tx, store, rids[k]); err != nil {
			b.Fatal(err)
		}
		rid, err := e.HeapInsert(tx, store, payload)
		if err != nil {
			b.Fatal(err)
		}
		rids[k] = rid
		if err := e.Commit(tx); err != nil {
			b.Fatal(err)
		}
	}
}
