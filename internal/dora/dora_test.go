package dora

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/tx"
)

// fakeEnv satisfies Env with a bare transaction manager: Begin hands out
// real *tx.Tx handles and Commit/Abort only count, which is all the
// executor's own invariants need.
type fakeEnv struct {
	m         *tx.Manager
	commits   atomic.Uint64
	roCommits atomic.Uint64
	aborts    atomic.Uint64
}

func newFakeEnv() *fakeEnv { return &fakeEnv{m: tx.NewManager(tx.Options{})} }

func (f *fakeEnv) Begin(ctx context.Context) (*tx.Tx, error) { return f.m.Begin(), nil }

func (f *fakeEnv) Commit(t *tx.Tx, readonly bool) error {
	if readonly {
		f.roCommits.Add(1)
	} else {
		f.commits.Add(1)
	}
	return nil
}

func (f *fakeEnv) Abort(t *tx.Tx) error {
	f.aborts.Add(1)
	return nil
}

func TestAutoScaleAndClamp(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{})
	if got, want := x.Partitions(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("auto-scaled partitions = %d, want GOMAXPROCS = %d", got, want)
	}
	x.Close()

	var warned atomic.Bool
	x = NewExecutor(env, Options{Partitions: 8, Keys: 3, Logf: func(string, ...any) { warned.Store(true) }})
	if got := x.Partitions(); got != 3 {
		t.Errorf("clamped partitions = %d, want 3", got)
	}
	if !warned.Load() {
		t.Error("clamping did not log a warning")
	}
	x.Close()
}

func TestSingleActionCommit(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 2})
	defer x.Close()

	var ran atomic.Bool
	txn := x.NewTxn(context.Background())
	txn.Add(ActionSpec{
		Partition: 1,
		Locks:     []LockReq{{Key: 7, Mode: lock.X}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			if sub == nil {
				return errors.New("nil sub-transaction")
			}
			ran.Store(true)
			return nil
		},
	})
	if err := x.Submit(txn); err != nil {
		t.Fatal(err)
	}
	if !ran.Load() {
		t.Fatal("body did not run")
	}
	if env.commits.Load() != 1 || env.aborts.Load() != 0 {
		t.Fatalf("commits=%d aborts=%d, want 1/0", env.commits.Load(), env.aborts.Load())
	}

	ro := x.NewTxn(context.Background())
	ro.Add(ActionSpec{
		Partition: 0,
		ReadOnly:  true,
		Run:       func(ctx context.Context, sub *tx.Tx, _ uint64) error { return nil },
	})
	if err := x.Submit(ro); err != nil {
		t.Fatal(err)
	}
	if env.roCommits.Load() != 1 {
		t.Fatalf("read-only commits = %d, want 1", env.roCommits.Load())
	}

	st := x.Stats()
	if st.LocalTx != 2 || st.CrossTx != 0 || st.LocalAcquires == 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 2})

	if err := x.Submit(x.NewTxn(context.Background())); !errors.Is(err, ErrNoActions) {
		t.Errorf("empty txn: %v, want ErrNoActions", err)
	}
	dep := x.NewTxn(context.Background())
	dep.Add(ActionSpec{Partition: 0, Dependent: true,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error { return nil }})
	if err := x.Submit(dep); !errors.Is(err, ErrNoProducer) {
		t.Errorf("dependent without producer: %v, want ErrNoProducer", err)
	}

	x.Close()
	closed := x.NewTxn(context.Background())
	closed.Add(ActionSpec{Partition: 0,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error { return nil }})
	if err := x.Submit(closed); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close: %v, want ErrClosed", err)
	}
}

func TestAbortPropagation(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 2})
	defer x.Close()

	boom := errors.New("boom")
	// The healthy action gates the failing one so both partitions have
	// begun their sub-transactions before the failure flag is raised —
	// otherwise the laggard legitimately skips Begin and has nothing to
	// roll back.
	healthyRan := make(chan struct{})
	txn := x.NewTxn(context.Background())
	txn.Add(ActionSpec{
		Partition: 0,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			close(healthyRan)
			return nil
		},
	})
	txn.Add(ActionSpec{
		Partition: 1,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			<-healthyRan
			return boom
		},
	})
	if err := x.Submit(txn); !errors.Is(err, boom) {
		t.Fatalf("Submit = %v, want boom", err)
	}
	if env.aborts.Load() != 2 || env.commits.Load() != 0 {
		t.Fatalf("aborts=%d commits=%d, want 2/0 (both partitions roll back)", env.aborts.Load(), env.commits.Load())
	}
	if st := x.Stats(); st.Aborts != 1 || st.CrossTx != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDependentReceivesInput(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 2})
	defer x.Close()

	var got atomic.Uint64
	txn := x.NewTxn(context.Background())
	txn.Add(ActionSpec{
		Partition: 0,
		Produces:  true,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			txn.PublishInput(42)
			return nil
		},
	})
	txn.Add(ActionSpec{
		Partition: 1,
		Dependent: true,
		Run: func(ctx context.Context, sub *tx.Tx, input uint64) error {
			got.Store(input)
			return nil
		},
	})
	if err := x.Submit(txn); err != nil {
		t.Fatal(err)
	}
	if got.Load() != 42 {
		t.Fatalf("dependent input = %d, want 42", got.Load())
	}
	if env.commits.Load() != 2 {
		t.Fatalf("commits = %d, want 2", env.commits.Load())
	}
}

// TestCrossPartitionLockHold pins the rendezvous contract: a
// multi-partition transaction's locks stay held on every partition until
// the decision, so a conflicting local transaction observes either all
// or none of it. Transaction A's partition-1 action finishes its body
// quickly but A's partition-0 action is gated; B conflicts with A on
// partition 1 and must therefore run after A's gate opens.
func TestCrossPartitionLockHold(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 2})
	defer x.Close()

	gate := make(chan struct{})
	var mu sync.Mutex
	var events []string
	record := func(ev string) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}

	a := x.NewTxn(context.Background())
	a.Add(ActionSpec{
		Partition: 0,
		Locks:     []LockReq{{Key: 100, Mode: lock.X}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			<-gate
			record("a0")
			return nil
		},
	})
	a.Add(ActionSpec{
		Partition: 1,
		Locks:     []LockReq{{Key: 200, Mode: lock.X}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			record("a1")
			return nil
		},
	})

	done := make(chan error, 2)
	go func() { done <- x.Submit(a) }()

	// Wait until A's partition-1 body has run (its lock on 200 is now
	// held pending the rendezvous), then submit the conflicting B.
	deadline := time.After(10 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("a1 never ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	b := x.NewTxn(context.Background())
	b.Add(ActionSpec{
		Partition: 1,
		Locks:     []LockReq{{Key: 200, Mode: lock.S}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			record("b")
			return nil
		},
	})
	go func() { done <- x.Submit(b) }()
	// Open the gate only once B is parked behind A's lock (or, if the
	// executor is broken, B's body already ran — caught below).
	for {
		if x.Stats().LocalWaits > 0 {
			break
		}
		mu.Lock()
		ran := len(events) > 1
		mu.Unlock()
		if ran {
			break
		}
		select {
		case <-deadline:
			t.Fatal("B neither parked nor ran")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}

	mu.Lock()
	defer mu.Unlock()
	idx := map[string]int{}
	for i, ev := range events {
		idx[ev] = i
	}
	if !(idx["b"] > idx["a0"]) {
		t.Fatalf("B ran before A's rendezvous completed: %v", events)
	}
	if st := x.Stats(); st.LocalWaits == 0 {
		t.Fatalf("expected B to park behind A's lock: %+v", st)
	}
}

// TestStressNoDeadlock hammers a small keyspace with conflicting single-
// and multi-partition transactions from many submitters; completion
// within the timeout is the deadlock-freedom assertion.
func TestStressNoDeadlock(t *testing.T) {
	env := newFakeEnv()
	x := NewExecutor(env, Options{Partitions: 4})
	defer x.Close()

	const (
		submitters = 8
		iters      = 200
	)
	finished := make(chan struct{})
	var failures atomic.Uint64
	go func() {
		var wg sync.WaitGroup
		for s := 0; s < submitters; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					txn := x.NewTxn(context.Background())
					// Conflict-heavy: every transaction touches key (i%3)
					// on two partitions chosen by submitter and iteration.
					p1 := s % 4
					p2 := (s + i) % 4
					key := uint64(i % 3)
					if p1 == p2 {
						txn.Add(ActionSpec{
							Partition: p1,
							Locks:     []LockReq{{Key: key, Mode: lock.X}},
							Run:       func(ctx context.Context, sub *tx.Tx, _ uint64) error { return nil },
						})
					} else {
						txn.Add(ActionSpec{
							Partition: p1,
							Locks:     []LockReq{{Key: key, Mode: lock.X}},
							Produces:  true,
							Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
								txn.PublishInput(uint64(i))
								return nil
							},
						})
						txn.Add(ActionSpec{
							Partition: p2,
							Locks:     []LockReq{{Key: key, Mode: lock.X}},
							Dependent: true,
							Run: func(ctx context.Context, sub *tx.Tx, input uint64) error {
								if input != uint64(i) {
									return fmt.Errorf("input %d, want %d", input, i)
								}
								return nil
							},
						})
					}
					if err := x.Submit(txn); err != nil {
						failures.Add(1)
					}
				}
			}(s)
		}
		wg.Wait()
		close(finished)
	}()

	select {
	case <-finished:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run did not finish: likely partition deadlock")
	}
	if failures.Load() != 0 {
		t.Fatalf("%d transactions failed", failures.Load())
	}
	st := x.Stats()
	if st.LocalTx+st.CrossTx != submitters*iters {
		t.Fatalf("tx count %d+%d, want %d", st.LocalTx, st.CrossTx, submitters*iters)
	}
	if env.commits.Load() != uint64(st.Routed) {
		t.Fatalf("commits %d != routed actions %d", env.commits.Load(), st.Routed)
	}
}
