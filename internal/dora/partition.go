package dora

import (
	"sync"
	"sync/atomic"

	"repro/internal/lock"
)

// message is one input-queue entry for a partition owner.
type message struct {
	kind   byte
	a      *action  // msgAction, msgFinish
	txn    *Txn     // msgInput
	commit bool     // msgFinish
	b      *barrier // msgBarrier
}

const (
	msgAction  = byte(iota + 1) // new action to admit
	msgInput                    // a producer published txn's input
	msgFinish                   // rendezvous decision for one local action
	msgBarrier                  // re-balancer rendezvous: report busy, hold at release
)

// barrier is one re-balancer rendezvous: the owner reports whether it
// has any work (queued, granted, or parked) on busy, then holds until
// release closes. busy is shared by all partitions of one Quiesce;
// release is closed exactly once by the quiescer.
type barrier struct {
	release chan struct{}
	busy    chan bool
}

// holder records one granted lock: which action holds the key and in
// what (supremum) mode. Holders are per action, not per transaction, so
// two actions of one transaction on the same partition release their
// own grants independently.
type holder struct {
	a    *action
	mode lock.Mode
}

// lockEntry is a thread-local lock table slot: granted holders only
// (waiters live in the parked list, in arrival order).
type lockEntry struct {
	holders []holder
}

// partition is one logical partition: an input queue fed by submitters
// and a single owner goroutine that runs everything else. The lock
// table, parked lists, and all action state are touched only by the
// owner — no CAS, no latches.
type partition struct {
	x  *Executor
	id int

	// Input queue. The only shared state; everything below mu's block
	// is owner-only.
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []message
	queueHW int64
	closed  bool

	// Owner-only state.
	locks         map[uint64]*lockEntry
	parked        []*action // arrival order (FIFO fairness)
	awaitingInput []*action // granted dependents parked for their input
	dispatching   bool
	redispatch    bool

	// Counters. routed is bumped by submitters; the rest by the owner —
	// atomics only so Stats() can read them from outside.
	routed     atomic.Uint64
	acquires   atomic.Uint64
	lockWaits  atomic.Uint64
	inputWaits atomic.Uint64
	commits    atomic.Uint64
	aborts     atomic.Uint64

	exited chan struct{}
}

// enqueue appends m to the input queue and wakes the owner.
func (p *partition) enqueue(m message) {
	p.mu.Lock()
	p.queue = append(p.queue, m)
	if n := int64(len(p.queue)); n > p.queueHW {
		p.queueHW = n
	}
	p.mu.Unlock()
	p.cond.Signal()
}

// loop is the owner goroutine: swap the queue out under the mutex, then
// process the batch with no shared state in sight.
func (p *partition) loop() {
	defer close(p.exited)
	var spare []message
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		batch := p.queue
		p.queue = spare[:0]
		p.mu.Unlock()
		for i := range batch {
			m := batch[i]
			batch[i] = message{}
			if m.kind == msgBarrier {
				// The unprocessed tail of the batch goes back to the
				// queue first, so the barrier's busy check counts it and
				// nothing is lost while the owner holds.
				p.holdAtBarrier(m.b, batch[i+1:])
				for j := i + 1; j < len(batch); j++ {
					batch[j] = message{}
				}
				break
			}
			p.handle(m)
		}
		spare = batch
	}
}

// holdAtBarrier re-queues the unprocessed batch tail, reports whether
// this partition has any work in flight (queued messages, granted
// locks, parked or input-waiting actions), and holds the owner at the
// barrier until the quiescer releases it. While held, submitters can
// still enqueue — the owner just won't process anything, which is
// exactly the stop-the-partition window the re-balancer needs.
func (p *partition) holdAtBarrier(b *barrier, rest []message) {
	p.mu.Lock()
	if len(rest) > 0 {
		merged := make([]message, 0, len(rest)+len(p.queue))
		merged = append(merged, rest...)
		merged = append(merged, p.queue...)
		p.queue = merged
	}
	busy := len(p.queue) > 0 || len(p.locks) > 0 || len(p.parked) > 0 || len(p.awaitingInput) > 0
	p.mu.Unlock()
	b.busy <- busy
	<-b.release
}

func (p *partition) handle(m message) {
	switch m.kind {
	case msgAction:
		p.parked = append(p.parked, m.a)
		p.dispatch()
	case msgInput:
		p.wakeDependents(m.txn)
		p.dispatch()
	case msgFinish:
		p.finish(m.a, m.commit)
		p.dispatch()
	}
}

// dispatch grants and runs parked actions until no further progress is
// possible. It is re-entrancy-guarded: an inline finish (from a
// rendezvous decided mid-dispatch) releases locks and merely flags
// redispatch instead of recursing into the parked list it is iterating.
func (p *partition) dispatch() {
	if p.dispatching {
		p.redispatch = true
		return
	}
	p.dispatching = true
	for {
		p.redispatch = false
		progress := p.scanParked()
		if !progress && !p.redispatch {
			break
		}
	}
	p.dispatching = false
}

// scanParked makes one granting pass over the parked list in arrival
// order, then starts every action it granted. Returns whether anything
// was granted.
func (p *partition) scanParked() bool {
	if len(p.parked) == 0 {
		return false
	}
	var granted, blocked []*action
	keep := p.parked[:0]
	for _, a := range p.parked {
		if p.grantable(a, blocked) {
			p.lockAll(a)
			granted = append(granted, a)
		} else {
			if !a.parkedOnce {
				a.parkedOnce = true
				p.lockWaits.Add(1)
			}
			keep = append(keep, a)
			blocked = append(blocked, a)
		}
	}
	for i := len(keep); i < len(p.parked); i++ {
		p.parked[i] = nil
	}
	p.parked = keep
	for _, a := range granted {
		p.start(a)
	}
	return len(granted) > 0
}

// grantable reports whether every lock of a is compatible with the
// current holders (all-or-nothing) and with every earlier-parked
// conflicting action (FIFO: no barging).
func (p *partition) grantable(a *action, blocked []*action) bool {
	for _, req := range a.locks {
		e := p.locks[req.Key]
		if e == nil {
			continue
		}
		for _, h := range e.holders {
			if h.a.txn != a.txn && !lock.Compatible(h.mode, req.Mode) {
				return false
			}
		}
	}
	for _, b := range blocked {
		if b.txn == a.txn {
			continue
		}
		for _, breq := range b.locks {
			for _, req := range a.locks {
				if breq.Key == req.Key &&
					(!lock.Compatible(breq.Mode, req.Mode) || !lock.Compatible(req.Mode, breq.Mode)) {
					return false
				}
			}
		}
	}
	return true
}

// lockAll records a's grants in the thread-local table (the request was
// already validated by grantable).
func (p *partition) lockAll(a *action) {
	for _, req := range a.locks {
		e := p.locks[req.Key]
		if e == nil {
			e = &lockEntry{}
			p.locks[req.Key] = e
		}
		merged := false
		for i := range e.holders {
			if e.holders[i].a == a {
				e.holders[i].mode = lock.Supremum(e.holders[i].mode, req.Mode)
				merged = true
				break
			}
		}
		if !merged {
			e.holders = append(e.holders, holder{a: a, mode: req.Mode})
		}
	}
	p.acquires.Add(uint64(len(a.locks)))
}

// start begins a's sub-transaction and runs its body — or parks it
// (granted) when its cross-partition input has not arrived yet.
func (p *partition) start(a *action) {
	t := a.txn
	if !t.failed.Load() {
		sub, err := p.x.env.Begin(t.ctx)
		if err != nil {
			a.err = err
			t.failed.Store(true)
		} else {
			a.sub = sub
			if a.dependent && !t.inputReady.Load() {
				// Park granted: the locks stay held, the body runs
				// when the producer's msgInput arrives. No lost
				// wakeup: the producer sets inputReady before
				// enqueueing msgInput, and this owner processes that
				// message strictly after the park.
				p.awaitingInput = append(p.awaitingInput, a)
				p.inputWaits.Add(1)
				return
			}
		}
	}
	p.execute(a)
}

// execute runs a's body (skipped once the transaction failed), notifies
// dependents if a produces the rendezvous input, and counts down.
func (p *partition) execute(a *action) {
	t := a.txn
	if !t.failed.Load() && a.run != nil && a.sub != nil {
		if err := a.run(t.ctx, a.sub, t.input.Load()); err != nil {
			a.err = err
			t.failed.Store(true)
		}
	}
	if a.produces {
		// Ready even on failure, so parked dependents wake, skip their
		// bodies, and keep the countdown honest.
		t.inputReady.Store(true)
		p.notifyInput(t)
	}
	if t.pending.Add(-1) == 0 {
		p.decide(t)
	}
}

// notifyInput posts msgInput to every other partition holding a
// dependent of t and wakes the local ones inline.
func (p *partition) notifyInput(t *Txn) {
	var seen []*partition
	for _, a := range t.actions {
		if !a.dependent || a.part == p {
			continue
		}
		dup := false
		for _, q := range seen {
			if q == a.part {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, a.part)
			a.part.enqueue(message{kind: msgInput, txn: t})
		}
	}
	p.wakeDependents(t)
}

// wakeDependents resumes every parked dependent of t on this partition.
func (p *partition) wakeDependents(t *Txn) {
	var wake []*action
	keep := p.awaitingInput[:0]
	for _, a := range p.awaitingInput {
		if a.txn == t {
			wake = append(wake, a)
		} else {
			keep = append(keep, a)
		}
	}
	for i := len(keep); i < len(p.awaitingInput); i++ {
		p.awaitingInput[i] = nil
	}
	p.awaitingInput = keep
	for _, a := range wake {
		p.execute(a)
	}
}

// decide is the rendezvous point: the last action to finish executing
// reads the collective decision and distributes it — inline for local
// actions, via msgFinish for remote ones.
func (p *partition) decide(t *Txn) {
	commit := !t.failed.Load()
	if !commit {
		p.x.abortedTx.Add(1)
	}
	for _, a := range t.actions {
		if a.part == p {
			p.finish(a, commit)
		} else {
			a.part.enqueue(message{kind: msgFinish, a: a, commit: commit})
		}
	}
}

// finish applies the decision to one local action: commit or roll back
// its sub-transaction, release its thread-local locks, and resolve the
// submitter when it is the last action standing.
func (p *partition) finish(a *action, commit bool) {
	if a.sub != nil {
		var err error
		if commit {
			err = p.x.env.Commit(a.sub, a.readonly)
			p.commits.Add(1)
		} else {
			err = p.x.env.Abort(a.sub)
			p.aborts.Add(1)
		}
		if err != nil && a.err == nil {
			a.err = err
		}
		a.sub = nil
	}
	p.release(a)
	if t := a.txn; t.finishPending.Add(-1) == 0 {
		t.done <- t.result()
	}
}

// release drops a's grants from the thread-local table and re-runs
// dispatch (deferred to the guard when called from inside it).
func (p *partition) release(a *action) {
	for _, req := range a.locks {
		e := p.locks[req.Key]
		if e == nil {
			continue
		}
		for i := range e.holders {
			if e.holders[i].a == a {
				last := len(e.holders) - 1
				e.holders[i] = e.holders[last]
				e.holders[last] = holder{}
				e.holders = e.holders[:last]
				break
			}
		}
		if len(e.holders) == 0 {
			delete(p.locks, req.Key)
		}
	}
	p.dispatch()
}

// stats snapshots the partition's counters.
func (p *partition) stats() PartitionStats {
	p.mu.Lock()
	hw := p.queueHW
	p.mu.Unlock()
	return PartitionStats{
		Routed:         p.routed.Load(),
		Acquires:       p.acquires.Load(),
		LockWaits:      p.lockWaits.Load(),
		InputWaits:     p.inputWaits.Load(),
		Commits:        p.commits.Load(),
		Aborts:         p.aborts.Load(),
		QueueHighWater: hw,
	}
}
