// Package dora implements data-oriented transaction execution (Pandis,
// Johnson, Hardavellas, Ailamaki: "Data-Oriented Transaction Execution",
// VLDB 2010 — the Shore-MT authors' follow-up): instead of assigning
// threads to transactions and letting them contend on a shared lock
// table, the keyspace is split into logical partitions, each owned by a
// dedicated worker goroutine, and transactions are decomposed into
// per-partition actions routed to the owners' input queues. Because only
// the owner touches a partition's data, its lock table is thread-local —
// a plain map with no CAS, no latches, and no interaction with the
// shared lock manager.
//
// Cross-partition transactions rendezvous at commit: every action
// decrements a shared countdown when its body finishes, the last one
// decides commit-or-abort from the transaction's failure flag, and each
// partition applies the decision to its own sub-transaction locally.
//
// # Deadlock freedom
//
// Partition-local waits cannot deadlock because four rules keep the
// waits-for relation acyclic:
//
//  1. All-or-nothing granting: an action acquires all of its partition's
//     locks at once or holds none (a parked action holds nothing
//     locally), declared up front in its ActionSpec.
//  2. FIFO conflict granting: within a partition, an action never barges
//     past an earlier-parked action it conflicts with.
//  3. Canonical atomic submission: a multi-partition transaction
//     enqueues all of its actions, sorted by partition id, under one
//     global submit mutex — every partition therefore observes
//     cross-partition transactions in the same global order, so two
//     transactions can never block each other in opposite orders on two
//     partitions.
//  4. Owners never block: a dependent action whose cross-partition
//     input has not arrived parks *granted* (holding its locks) and is
//     resumed by the producer's input message; the owner goroutine moves
//     on to other work, so no owner ever waits on another owner.
//
// Single-partition transactions skip the submit mutex entirely — the
// common case pays one queue append and no shared synchronization
// beyond it.
package dora

import (
	"context"
	"errors"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/tx"
)

// Errors returned by the executor.
var (
	ErrClosed     = errors.New("dora: executor closed")
	ErrNoActions  = errors.New("dora: transaction has no actions")
	ErrNoProducer = errors.New("dora: dependent action without a producer")
)

// Env is the storage engine seen by partition owners: each action runs
// inside its own engine sub-transaction, begun when the action's locks
// are granted and committed or rolled back when the transaction's
// rendezvous decides.
type Env interface {
	Begin(ctx context.Context) (*tx.Tx, error)
	Commit(t *tx.Tx, readonly bool) error
	Abort(t *tx.Tx) error
}

// Options configures an Executor.
type Options struct {
	// Partitions is the number of logical partitions (= owner
	// goroutines). 0 auto-scales to GOMAXPROCS, mirroring the buffer
	// pool's AutoShards.
	Partitions int
	// Keys, when positive, is the size of the routing keyspace (TPC-C:
	// the warehouse count). A partition count above it is clamped with a
	// logged warning — extra owners would never receive an action.
	Keys int
	// Logf receives warnings (nil means the standard logger).
	Logf func(format string, args ...any)
}

// LockReq names one partition-local lock an action needs. Keys are
// opaque to the executor; the workload layer defines the encoding.
type LockReq struct {
	Key  uint64
	Mode lock.Mode
}

// RunFunc is an action body. It runs on the owning partition's
// goroutine inside sub-transaction sub; input carries the transaction's
// cross-partition rendezvous value (zero until published).
type RunFunc func(ctx context.Context, sub *tx.Tx, input uint64) error

// ActionSpec declares one per-partition action of a transaction: the
// partition it routes to, every partition-local lock it will touch
// (all-or-nothing granting requires the full set up front), and its
// body.
type ActionSpec struct {
	Partition int
	// RouteKey, when non-zero, is the action's 1-based routing key
	// (TPC-C: warehouse id). Submit re-resolves the owning partition
	// from it under the routing lock, so a re-balancer that moves the
	// key between partitions mid-flight never splits one transaction
	// across map versions. Zero means Partition is used as-is.
	RouteKey uint32
	Locks    []LockReq
	Run      RunFunc
	// Produces marks the action whose body publishes the transaction's
	// input value (Txn.PublishInput); dependents are released when it
	// completes.
	Produces bool
	// Dependent parks the action — granted, holding its locks — until
	// the producer's partition posts the input message.
	Dependent bool
	// ReadOnly commits the sub-transaction through the engine's
	// read-only path (no durability wait).
	ReadOnly bool
}

// action is an ActionSpec bound to a transaction. The mutable fields
// (sub, err, parkedOnce) are owned by the partition's goroutine.
type action struct {
	txn       *Txn
	part      *partition
	routeKey  uint32
	locks     []LockReq
	run       RunFunc
	produces  bool
	dependent bool
	readonly  bool

	parkedOnce bool
	sub        *tx.Tx
	err        error
}

// Txn is a decomposed transaction: a set of actions plus the rendezvous
// state they synchronize on. Build it with NewTxn/Add, then Submit.
type Txn struct {
	exec    *Executor
	ctx     context.Context
	actions []*action
	multi   bool

	// pending counts actions whose bodies have not finished; the last
	// decrementer decides commit-or-abort. finishPending counts actions
	// not yet committed/rolled back; the last finisher resolves done.
	pending       atomic.Int32
	finishPending atomic.Int32
	failed        atomic.Bool
	input         atomic.Uint64
	inputReady    atomic.Bool
	done          chan error
}

// NewTxn starts building a transaction bound to ctx (bodies receive it).
func (x *Executor) NewTxn(ctx context.Context) *Txn {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Txn{exec: x, ctx: ctx, done: make(chan error, 1)}
}

// Add appends one action.
func (t *Txn) Add(spec ActionSpec) {
	part := spec.Partition
	if spec.RouteKey != 0 {
		part = t.exec.Route(spec.RouteKey)
	}
	t.actions = append(t.actions, &action{
		txn:       t,
		part:      t.exec.parts[part],
		routeKey:  spec.RouteKey,
		locks:     spec.Locks,
		run:       spec.Run,
		produces:  spec.Produces,
		dependent: spec.Dependent,
		readonly:  spec.ReadOnly,
	})
}

// PublishInput stores the transaction's rendezvous value. Call it from
// the producing action's body before it returns; dependent actions read
// it as their input argument.
func (t *Txn) PublishInput(v uint64) { t.input.Store(v) }

// result is the transaction's outcome: the first action error in
// canonical order (nil on a clean commit).
func (t *Txn) result() error {
	for _, a := range t.actions {
		if a.err != nil {
			return a.err
		}
	}
	return nil
}

// Executor routes decomposed transactions to partition owners.
type Executor struct {
	env   Env
	parts []*partition

	// submitMu makes a multi-partition enqueue atomic: all partitions
	// observe cross-partition transactions in one global submission
	// order (deadlock-freedom rule 3). Single-partition transactions
	// never take it.
	submitMu sync.Mutex
	closed   atomic.Bool

	// routeMu serializes routing-table changes against submissions:
	// Submit resolves every action's partition from its route key and
	// enqueues under the read side, so a re-balancer that takes the
	// write side (FreezeRouting) observes no in-flight transaction
	// straddling two routing-map versions.
	routeMu sync.RWMutex
	// router, when set, replaces the modulo default of Route. Installed
	// by the PLP layer so the executor and the partition map agree on
	// ownership.
	router atomic.Pointer[func(key uint32) int]

	localTx   atomic.Uint64
	crossTx   atomic.Uint64
	abortedTx atomic.Uint64
}

// NewExecutor builds an executor over env and starts its partition
// owners. Close must be called after all Submits returned.
func NewExecutor(env Env, opts Options) *Executor {
	n := opts.Partitions
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if opts.Keys > 0 && n > opts.Keys {
		logf := opts.Logf
		if logf == nil {
			logf = log.Printf
		}
		logf("dora: clamping %d partitions to %d routing keys (extra owners would idle)", n, opts.Keys)
		n = opts.Keys
	}
	x := &Executor{env: env, parts: make([]*partition, n)}
	for i := range x.parts {
		p := &partition{x: x, id: i, locks: make(map[uint64]*lockEntry), exited: make(chan struct{})}
		p.cond = sync.NewCond(&p.mu)
		x.parts[i] = p
		go p.loop()
	}
	return x
}

// Partitions returns the resolved partition count.
func (x *Executor) Partitions() int { return len(x.parts) }

// Route maps a 1-based routing key (TPC-C: warehouse id) to its
// partition: through the installed router when one is set (PLP's
// partition map), otherwise round-robin modulo.
func (x *Executor) Route(key uint32) int {
	if fn := x.router.Load(); fn != nil {
		if p := (*fn)(key); p >= 0 && p < len(x.parts) {
			return p
		}
		return 0
	}
	return int((key - 1) % uint32(len(x.parts)))
}

// SetRouter installs (or, with nil, removes) the routing function
// consulted by Route. Call it under FreezeRouting when transactions may
// be in flight.
func (x *Executor) SetRouter(fn func(key uint32) int) {
	if fn == nil {
		x.router.Store(nil)
		return
	}
	x.router.Store(&fn)
}

// FreezeRouting blocks new submissions (they wait at the routing lock's
// read side) until UnfreezeRouting. The re-balancer brackets its
// quiesce-and-flip with this pair.
func (x *Executor) FreezeRouting() { x.routeMu.Lock() }

// UnfreezeRouting releases FreezeRouting.
func (x *Executor) UnfreezeRouting() { x.routeMu.Unlock() }

// Submit enqueues t's actions and blocks until every partition applied
// the rendezvous decision, returning the transaction's outcome. A
// multi-partition transaction is enqueued atomically in canonical
// partition order; see the package comment's deadlock-freedom argument.
func (x *Executor) Submit(t *Txn) error {
	if x.closed.Load() {
		return ErrClosed
	}
	n := len(t.actions)
	if n == 0 {
		return ErrNoActions
	}
	hasProducer := false
	hasDependent := false
	for _, a := range t.actions {
		hasProducer = hasProducer || a.produces
		hasDependent = hasDependent || a.dependent
	}
	if hasDependent && !hasProducer {
		return ErrNoProducer
	}
	t.pending.Store(int32(n))
	t.finishPending.Store(int32(n))
	// Resolve partitions and enqueue under the routing read lock: every
	// route-keyed action binds to the current map version, and a
	// re-balancer holding the write side sees either none or all of this
	// transaction's actions enqueued.
	x.routeMu.RLock()
	for _, a := range t.actions {
		if a.routeKey != 0 {
			a.part = x.parts[x.Route(a.routeKey)]
		}
		a.part.routed.Add(1)
	}
	if n == 1 {
		x.localTx.Add(1)
		t.actions[0].part.enqueue(message{kind: msgAction, a: t.actions[0]})
	} else {
		t.multi = true
		x.crossTx.Add(1)
		sort.SliceStable(t.actions, func(i, j int) bool {
			return t.actions[i].part.id < t.actions[j].part.id
		})
		x.submitMu.Lock()
		for _, a := range t.actions {
			a.part.enqueue(message{kind: msgAction, a: a})
		}
		x.submitMu.Unlock()
	}
	x.routeMu.RUnlock()
	return <-t.done
}

// Quiesce posts a barrier to the listed partitions and, if every one of
// them reports idle (empty queue, no held locks, nothing parked), runs
// fn while all of them are stopped at the barrier, returning true. If
// any partition is busy the barrier is released without running fn and
// Quiesce returns false; the caller retries. Call with routing frozen,
// or new work will race the idleness check.
func (x *Executor) Quiesce(parts []int, fn func()) bool {
	release := make(chan struct{})
	busyCh := make(chan bool, len(parts))
	for _, id := range parts {
		x.parts[id].enqueue(message{kind: msgBarrier, b: &barrier{release: release, busy: busyCh}})
	}
	idle := true
	for range parts {
		if <-busyCh {
			idle = false
		}
	}
	if idle {
		fn()
	}
	close(release)
	return idle
}

// Close stops the partition owners after they drain their queues. The
// caller must have quiesced: no Submit may be in flight or issued
// afterwards.
func (x *Executor) Close() {
	if x.closed.Swap(true) {
		return
	}
	for _, p := range x.parts {
		p.mu.Lock()
		p.closed = true
		p.mu.Unlock()
		p.cond.Signal()
	}
	for _, p := range x.parts {
		<-p.exited
	}
}

// PartitionStats reports one partition owner's activity.
type PartitionStats struct {
	Routed         uint64 // actions routed to this partition
	Acquires       uint64 // thread-local lock grants (never the shared manager)
	LockWaits      uint64 // actions parked behind a local conflict
	InputWaits     uint64 // dependent actions parked for a cross-partition input
	Commits        uint64 // sub-transactions committed
	Aborts         uint64 // sub-transactions rolled back
	QueueHighWater int64  // deepest observed input-queue backlog
}

// Stats aggregates executor counters.
type Stats struct {
	Partitions      int
	Routed          uint64 // actions routed, all partitions
	LocalTx         uint64 // single-partition transactions
	CrossTx         uint64 // multi-partition transactions
	LocalAcquires   uint64 // thread-local lock grants, all partitions
	LocalWaits      uint64 // actions parked behind a local conflict
	RendezvousWaits uint64 // dependent actions parked for a cross-partition input
	Aborts          uint64 // transactions rolled back
	QueueHighWater  int64  // max over partitions
	// SkewRatio is max/mean of the per-partition Routed counters — 1.0
	// is perfectly uniform routing; the PLP re-balancer drives it down
	// on skewed workloads. Zero when nothing was routed yet.
	SkewRatio float64
	Parts     []PartitionStats
}

// Stats snapshots the executor's counters.
func (x *Executor) Stats() Stats {
	s := Stats{
		Partitions: len(x.parts),
		LocalTx:    x.localTx.Load(),
		CrossTx:    x.crossTx.Load(),
		Aborts:     x.abortedTx.Load(),
		Parts:      make([]PartitionStats, len(x.parts)),
	}
	var maxRouted uint64
	for i, p := range x.parts {
		ps := p.stats()
		s.Parts[i] = ps
		s.Routed += ps.Routed
		s.LocalAcquires += ps.Acquires
		s.LocalWaits += ps.LockWaits
		s.RendezvousWaits += ps.InputWaits
		if ps.Routed > maxRouted {
			maxRouted = ps.Routed
		}
		if ps.QueueHighWater > s.QueueHighWater {
			s.QueueHighWater = ps.QueueHighWater
		}
	}
	if s.Routed > 0 {
		mean := float64(s.Routed) / float64(len(x.parts))
		s.SkewRatio = float64(maxRouted) / mean
	}
	return s
}
