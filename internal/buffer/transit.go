package buffer

import (
	"sync"

	"repro/internal/page"
)

// transitSet tracks pages that are "in transit": being written out
// (in-transit-out) or read in (in-transit-in). The original Shore kept one
// global linked list; §6.2.3 describes breaking it into many small lists
// (128 in Shore-MT) and, with the bypass optimization, keeping only dirty
// evictions in it at all — so each list is nearly always empty.
type transitSet struct {
	parts []transitPart
	mask  uint64
}

type transitPart struct {
	mu sync.Mutex
	m  map[page.ID]*transitEntry
}

type transitEntry struct {
	done chan struct{} // closed when the transit completes
}

// newTransitSet builds a set with the given number of partitions (rounded
// up to a power of two; 1 reproduces the original single global list).
func newTransitSet(partitions int) *transitSet {
	n := 1
	for n < partitions {
		n <<= 1
	}
	t := &transitSet{parts: make([]transitPart, n), mask: uint64(n - 1)}
	for i := range t.parts {
		t.parts[i].m = make(map[page.ID]*transitEntry)
	}
	return t
}

func (t *transitSet) part(pid page.ID) *transitPart {
	h := uint64(pid) * 0x9e3779b97f4a7c15
	return &t.parts[(h>>32)&t.mask]
}

// begin registers pid as in transit. If it already is, begin returns the
// existing entry and false (the caller should wait on it instead).
func (t *transitSet) begin(pid page.ID) (*transitEntry, bool) {
	p := t.part(pid)
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.m[pid]; ok {
		return e, false
	}
	e := &transitEntry{done: make(chan struct{})}
	p.m[pid] = e
	return e, true
}

// end completes pid's transit and wakes all waiters.
func (t *transitSet) end(pid page.ID, e *transitEntry) {
	p := t.part(pid)
	p.mu.Lock()
	delete(p.m, pid)
	p.mu.Unlock()
	close(e.done)
}

// lookup returns the in-flight entry for pid, if any.
func (t *transitSet) lookup(pid page.ID) (*transitEntry, bool) {
	p := t.part(pid)
	p.mu.Lock()
	e, ok := p.m[pid]
	p.mu.Unlock()
	return e, ok
}

// wait blocks until e's transit completes.
func (e *transitEntry) wait() { <-e.done }
