//go:build race

package buffer

import "repro/internal/page"

// FixOpt under the race detector: a true optimistic read is a data race
// by construction (speculative reads concurrent with writer mutations,
// discarded on validation failure), which the detector would rightly
// flag. Race-instrumented builds therefore degrade to a conditional
// pinned SH fix — nothing blocks, the caller's optimistic control flow
// (validation, restarts, fallback) is exercised unchanged, but every
// read is synchronized. ok=false on any contention, exactly like the
// fast path.
func (p *Pool) FixOpt(pid page.ID) (OptRef, bool) {
	if p.closed.Load() || pid == page.InvalidID {
		return OptRef{}, false
	}
	idx, ok := p.lookupFrame(pid)
	if !ok {
		return OptRef{}, false
	}
	f := p.frames[idx]
	if !f.pin.pinIfPinned() && !f.pin.tryPin() {
		return OptRef{}, false // frozen by an evictor
	}
	if f.PID() != pid {
		f.pin.unpin()
		return OptRef{}, false
	}
	if !f.latch.TryLatchSH() {
		f.pin.unpin()
		return OptRef{}, false
	}
	if f.PID() != pid {
		// Dumped by a failed load between the pinned ID check and the
		// latch; the fast path catches this via version validation.
		f.latch.UnlatchSH()
		f.pin.unpin()
		return OptRef{}, false
	}
	return OptRef{f: f, ver: f.latch.Version(), pinned: true}, true
}
