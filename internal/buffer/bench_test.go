package buffer

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/sync2"
)

// BenchmarkFixParallel measures the replacement path under parallel
// misses: a working set 4x the pool so every ~4th Fix replaces a page,
// comparing the single global clock hand against sharded replacement
// (per-shard hands + cleaner-fed free lists). Run with -cpu=8 to see the
// hand serialize; the CI bench-smoke job captures it as
// BENCH_buffer.json.
func BenchmarkFixParallel(b *testing.B) {
	const (
		frames = 1024
		pages  = 4 * frames
	)
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"single-hand", 1},
		{"sharded", AutoShards},
	} {
		b.Run(bc.name, func(b *testing.B) {
			v := newVol(b, pages)
			opts := variants()["final"]
			opts.Frames = frames
			opts.HotArray = 1024
			opts.Shards = bc.shards
			p := New(v, opts)
			defer p.Close()
			p.StartCleaner(time.Millisecond)

			var seed atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				x := seed.Add(0x9e3779b97f4a7c15)
				for pb.Next() {
					x = x*6364136223846793005 + 1442695040888963407
					pid := page.ID(x%pages + 1)
					f, err := p.Fix(pid, sync2.LatchSH)
					if err != nil {
						b.Error(err)
						return
					}
					p.Unfix(f, sync2.LatchSH)
				}
			})
		})
	}
}
