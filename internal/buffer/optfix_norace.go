//go:build !race

package buffer

import "repro/internal/page"

// FixOpt returns an optimistic reference to pid if it is cached and not
// currently write-latched. It performs no shared-memory writes at all —
// no pin-count RMW, no latch RMW — which is the whole point: read-mostly
// inner-node traffic stops ping-ponging the frame's cache line.
//
// ok=false means "take the pinned path": the page is absent, mid-load,
// mid-eviction, or write-latched.
func (p *Pool) FixOpt(pid page.ID) (OptRef, bool) {
	if p.closed.Load() || pid == page.InvalidID {
		return OptRef{}, false
	}
	idx, ok := p.lookupFrame(pid)
	if !ok {
		return OptRef{}, false
	}
	f := p.frames[idx]
	ver, ok := f.latch.OptRead()
	if !ok {
		return OptRef{}, false
	}
	// The identity check runs after the version sample: if the frame is
	// recycled from here on, the EX latch the pool holds while recycling
	// bumps the version and Validate fails.
	if f.PID() != pid {
		return OptRef{}, false
	}
	return OptRef{f: f, ver: ver}, true
}
