package buffer

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/disk"
	"repro/internal/hash"
	"repro/internal/page"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// TableKind selects the buffer pool's page-table implementation, tracing
// the paper's evolution: one global mutex over an open-chaining table
// (original Shore), per-bucket mutexes (bpool1), and the 3-ary cuckoo hash
// (§6.2.3).
type TableKind int

// Page table kinds.
const (
	TableGlobalChain TableKind = iota
	TablePerBucketChain
	TableCuckoo
)

// String names the table kind.
func (k TableKind) String() string {
	switch k {
	case TableGlobalChain:
		return "globalChain"
	case TablePerBucketChain:
		return "perBucketChain"
	case TableCuckoo:
		return "cuckoo"
	default:
		return "unknown"
	}
}

// Options configures a Pool; each field maps to one optimization stage in
// §7 of the paper.
type Options struct {
	Frames            int       // buffer pool capacity in pages
	Table             TableKind // page-table implementation
	AtomicPin         bool      // §6.2.1 pin-if-pinned fast path
	HotArray          int       // entries in the hot-page array (§7.3), 0 = off
	TransitPartitions int       // in-transit list partitions (1 = original, 128 = §6.2.3)
	TransitBypass     bool      // in-transit-in pages visible in the table (§6.2.3)
	ClockHandRelease  bool      // release clock mutex before eviction I/O (§7.6); per shard
	// Shards partitions page replacement into independent clock regions,
	// each with its own hand, lock, and free list of pre-evicted frames.
	// 0 (AutoShards) scales with GOMAXPROCS; 1 restores the single global
	// clock hand of the original design exactly — no free lists, every
	// miss runs the clock, dirty victims write back inline.
	Shards int
	// FlushLog enforces the WAL rule before a dirty page is written; nil
	// disables (for tests without a log).
	FlushLog func(wal.LSN) error
	// CurLSN reports the current end of the log (for cleaner checkpoint
	// tracking); nil disables.
	CurLSN func() wal.LSN
	Seed   int64
}

// ShardStats counts one replacement shard's activity.
type ShardStats struct {
	Evictions    uint64 // victims evicted from this shard's region
	Scans        uint64 // frames the shard's clock hand examined
	Steals       uint64 // misses homed here that took a frame from another shard
	CleanerFrees uint64 // free-list frames supplied by the cleaner
	FreeListHits uint64 // misses served straight from the free list
	FreeFrames   int    // current free-list length
}

// Stats counts pool activity.
type Stats struct {
	Hits             uint64
	HotHits          uint64
	Misses           uint64
	Evictions        uint64
	Writebacks       uint64 // eviction write-backs
	CleanerIO        uint64 // cleaner write-backs
	TransitWait      uint64
	TransitConflicts uint64 // eviction retries against an in-flight transit
	PinRetries       uint64
	FreeListHits     uint64 // misses that allocated from a shard free list
	Steals           uint64 // misses that crossed into another shard
	CleanerFrees     uint64 // free frames the cleaner pre-evicted
	ScanFrames       uint64 // total frames examined by all clock hands
	Shards           []ShardStats
	TableLock        sync2.Stats // chain-table latch contention (zero for cuckoo)
	ClockLock        sync2.Stats // aggregated over every shard's hand lock
	GlobalLock       sync2.Stats // pin-discipline mutex (baseline only)
}

// Errors returned by the pool.
var (
	ErrNoFreeFrames = errors.New("buffer: no evictable frames")
	ErrPoolClosed   = errors.New("buffer: pool closed")

	// errShardExhausted is the internal "this region had no victim"
	// signal that drives stealing and the cleaner-kick retry loop.
	errShardExhausted = errors.New("buffer: shard exhausted")
)

// pageTable abstracts the pid → frame-index map.
type pageTable interface {
	get(pid page.ID) (uint32, bool)
	getOrInsert(pid page.ID, idx uint32) (uint32, bool, error)
	delete(pid page.ID) bool
	lockStats() sync2.Stats
}

type chainAdapter struct{ t *hash.ChainTable }

func (a chainAdapter) get(pid page.ID) (uint32, bool) { return a.t.Get(uint64(pid)) }
func (a chainAdapter) getOrInsert(pid page.ID, idx uint32) (uint32, bool, error) {
	v, ins := a.t.GetOrInsert(uint64(pid), idx)
	return v, ins, nil
}
func (a chainAdapter) delete(pid page.ID) bool { return a.t.Delete(uint64(pid)) }
func (a chainAdapter) lockStats() sync2.Stats  { return a.t.LockStats() }

type cuckooAdapter struct {
	t    *hash.Cuckoo
	pool *Pool
}

func (a cuckooAdapter) get(pid page.ID) (uint32, bool) { return a.t.Get(uint64(pid)) }
func (a cuckooAdapter) getOrInsert(pid page.ID, idx uint32) (uint32, bool, error) {
	v, ins, ev, err := a.t.GetOrInsert(uint64(pid), idx)
	if err != nil {
		return 0, false, err
	}
	if ev != nil {
		// A cascade overflow displaced another cached page's mapping. The
		// paper's remedy: evict the troublesome page to end the cascade.
		a.pool.dropOrphan(page.ID(ev.Key), ev.Value)
	}
	return v, ins, nil
}
func (a cuckooAdapter) delete(pid page.ID) bool { return a.t.Delete(uint64(pid)) }
func (a cuckooAdapter) lockStats() sync2.Stats  { return sync2.Stats{} }

// Pool is the buffer pool manager.
type Pool struct {
	opts   Options
	vol    disk.Volume
	frames []*Frame
	table  pageTable
	// pinMu is the baseline pin discipline: without AtomicPin, every
	// lookup+pin holds this single mutex (the original Shore global lock).
	pinMu sync2.Locker
	// shards partitions replacement into independent clock regions (see
	// shard.go); shardBase is the region size for index→shard mapping.
	// freeLists gates the pre-evicted free lists and cleaner refilling:
	// off with a single shard, which then reproduces the original global
	// clock hand (misses always run the clock, dirty victims write back
	// inline) for the paper's pre-bpool2 stages and benchmark baselines.
	shards    []*shard
	shardBase int
	freeLists bool
	transit   *transitSet
	hot       []atomic.Uint64 // packed pid<<24|idx hot-page array
	closed    atomic.Bool

	hits             atomic.Uint64
	hotHits          atomic.Uint64
	misses           atomic.Uint64
	evictions        atomic.Uint64
	writebacks       atomic.Uint64
	cleanerIO        atomic.Uint64
	transitWait      atomic.Uint64
	transitConflicts atomic.Uint64
	pinRetries       atomic.Uint64

	cleaner cleanerState
}

// New builds a buffer pool over vol.
func New(vol disk.Volume, opts Options) *Pool {
	if opts.Frames <= 0 {
		opts.Frames = 1024
	}
	if opts.TransitPartitions <= 0 {
		opts.TransitPartitions = 1
	}
	p := &Pool{
		opts:    opts,
		vol:     vol,
		frames:  make([]*Frame, opts.Frames),
		transit: newTransitSet(opts.TransitPartitions),
	}
	p.cleaner.kick = make(chan struct{}, 1)
	for i := range p.frames {
		p.frames[i] = newFrame(uint32(i))
	}
	n := shardCount(opts.Frames, opts.Shards)
	p.freeLists = n > 1
	p.shards = newShards(p.frames, n, p.freeLists)
	p.shardBase = opts.Frames / n
	switch opts.Table {
	case TableCuckoo:
		p.table = cuckooAdapter{t: hash.NewCuckoo(opts.Frames*4, opts.Seed), pool: p}
	case TablePerBucketChain:
		p.table = chainAdapter{t: hash.NewChainTable(opts.Frames*2, hash.PerBucketLock, opts.Seed,
			func() sync2.Locker { return new(sync2.HybridLock) })}
	default:
		p.pinMu = new(sync2.BlockingLock)
		p.table = chainAdapter{t: hash.NewChainTable(opts.Frames*2, hash.GlobalLock, opts.Seed,
			func() sync2.Locker { return new(sync2.BlockingLock) })}
	}
	if opts.HotArray > 0 {
		p.hot = make([]atomic.Uint64, opts.HotArray)
	}
	return p
}

// NumFrames returns the pool capacity.
func (p *Pool) NumFrames() int { return len(p.frames) }

// hot-page array ------------------------------------------------------------

func (p *Pool) hotSlot(pid page.ID) *atomic.Uint64 {
	h := uint64(pid) * 0x9e3779b97f4a7c15
	return &p.hot[(h>>33)%uint64(len(p.hot))]
}

func (p *Pool) hotRecord(pid page.ID, idx uint32) {
	if p.hot == nil {
		return
	}
	p.hotSlot(pid).Store(uint64(pid)<<24 | uint64(idx))
}

func (p *Pool) hotLookup(pid page.ID) (uint32, bool) {
	if p.hot == nil {
		return 0, false
	}
	v := p.hotSlot(pid).Load()
	if v>>24 != uint64(pid) || v == 0 {
		return 0, false
	}
	return uint32(v & 0xffffff), true
}

// Fix pins page pid into the pool and acquires its latch in mode. The
// caller must Unfix with the same mode when done.
func (p *Pool) Fix(pid page.ID, mode sync2.LatchMode) (*Frame, error) {
	if pid == page.InvalidID {
		return nil, fmt.Errorf("buffer: fix of invalid page id")
	}
	for attempt := 0; ; attempt++ {
		if p.closed.Load() {
			return nil, ErrPoolClosed
		}
		// Hot-page array: pin first, check the ID after (§7.3 — "we changed
		// the search to pin the page, then check its ID before acquiring
		// the latch; if a page eviction occurs before the pin completes the
		// IDs would not match"). The ID is re-checked after the latch too:
		// a failed load dumps its frame by clearing the pid under the EX
		// latch, so a visitor that pinned and passed the first check while
		// the load was in flight must not treat the dumped frame as pid.
		if idx, ok := p.hotLookup(pid); ok {
			f := p.frames[idx]
			if f.pin.pinIfPinned() {
				if f.PID() == pid {
					f.refbit.Store(true)
					f.Latch(mode)
					if f.PID() == pid {
						p.hotHits.Add(1)
						return f, nil
					}
					f.Unlatch(mode)
				}
				f.pin.unpin()
			}
		}
		if f := p.lookupAndPin(pid); f != nil {
			f.refbit.Store(true)
			f.Latch(mode)
			if f.PID() == pid {
				p.hits.Add(1)
				p.hotRecord(pid, p.frameIndex(f))
				return f, nil
			}
			// Dumped by a failed load between the pin's ID check and the
			// latch; fall through to miss (the mapping is gone).
			f.Unlatch(mode)
			f.pin.unpin()
		}
		f, err := p.miss(pid, mode)
		if err != nil {
			return nil, err
		}
		if f != nil {
			return f, nil
		}
		// Retry: someone else was loading or evicting this page.
		if attempt%16 == 15 {
			runtime.Gosched()
		}
	}
}

// lookupAndPin returns a pinned (not latched) frame holding pid, or nil.
func (p *Pool) lookupAndPin(pid page.ID) *Frame {
	if !p.opts.AtomicPin {
		// Baseline discipline: one global mutex across lookup + pin.
		p.pinMu.Lock()
		defer p.pinMu.Unlock()
		idx, ok := p.table.get(pid)
		if !ok {
			return nil
		}
		f := p.frames[idx]
		if f.pin.tryPin() {
			if f.PID() == pid {
				return f
			}
			f.pin.unpin()
		}
		return nil
	}
	// Atomic-pin discipline (§6.2.1): no table-side mutex for hits. Pin
	// first (conditionally), verify the ID afterwards.
	for {
		idx, ok := p.table.get(pid)
		if !ok {
			return nil
		}
		f := p.frames[idx]
		if f.pin.pinIfPinned() || f.pin.tryPin() {
			if f.PID() == pid {
				return f
			}
			f.pin.unpin()
			p.pinRetries.Add(1)
			continue // stale mapping; re-read the table
		}
		// Frame frozen by an evictor: the mapping will disappear shortly.
		p.pinRetries.Add(1)
		runtime.Gosched()
	}
}

func (p *Pool) frameIndex(f *Frame) uint32 { return f.idx }

// miss loads pid from disk. It returns a pinned, latched frame; nil frame
// (no error) means "retry Fix".
func (p *Pool) miss(pid page.ID, mode sync2.LatchMode) (*Frame, error) {
	if !p.opts.TransitBypass {
		// Original design: all transits (in and out) are invisible to the
		// table; a missing page may be mid-read by another thread.
		if e, ok := p.transit.lookup(pid); ok {
			p.transitWait.Add(1)
			e.wait()
			return nil, nil // retry: the loader has inserted the mapping
		}
		e, fresh := p.transit.begin(pid)
		if !fresh {
			p.transitWait.Add(1)
			e.wait()
			return nil, nil
		}
		f, err := p.load(pid, mode, e)
		if err != nil {
			p.transit.end(pid, e)
			return nil, err
		}
		if f == nil {
			p.transit.end(pid, e)
			return nil, nil
		}
		p.transit.end(pid, e)
		return f, nil
	}
	// Bypass design (§6.2.3): only dirty evictions live in the transit
	// lists; wait for any in-flight write-back of this page, then load.
	if e, ok := p.transit.lookup(pid); ok {
		p.transitWait.Add(1)
		e.wait()
	}
	return p.load(pid, mode, nil)
}

// load claims a victim frame, maps it to pid, and reads the page. With
// TransitBypass the mapping becomes visible before the read and the EX
// latch blocks other fixers; otherwise the mapping appears only after the
// read completes (transit waiters handle the rest). The frame arrives
// from allocFrame already EX-latched, so optimistic readers of the
// recycled frame fail validation for the whole load.
func (p *Pool) load(pid page.ID, mode sync2.LatchMode, transitIn *transitEntry) (*Frame, error) {
	f, idx, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	if p.opts.TransitBypass {
		// Publish first; hold EX during the read.
		f.pid.Store(uint64(pid))
		f.pin.unfreezeTo(1)
		got, inserted, err := p.table.getOrInsert(pid, idx)
		if err != nil || !inserted {
			// Lost the race (or table error): dump the claim. The identity
			// clears before the latch drops — a frame's pid may only change
			// under the EX latch, or an optimistic reader could validate
			// against the stale claim.
			p.retireFailedLoad(f, idx)
			_ = got
			if err != nil {
				return nil, err
			}
			return nil, nil
		}
		if err := p.vol.Read(pid, f.buf); err != nil {
			p.table.delete(pid)
			p.retireFailedLoad(f, idx)
			return nil, err
		}
		// Never-written pages read back zeroed; stamp the true id so the
		// in-memory header is always self-consistent (redo relies on it).
		f.pg.SetPID(pid)
		p.misses.Add(1)
		if mode == sync2.LatchSH {
			f.latch.Downgrade()
		}
		p.hotRecord(pid, idx)
		return f, nil
	}
	// Non-bypass: read first, publish after (still under the EX latch from
	// allocFrame, so optimistic readers cannot validate against the
	// half-loaded image).
	if err := p.vol.Read(pid, f.buf); err != nil {
		// Still frozen and unmapped: straight back to circulation.
		p.releaseFreeFrame(f, idx)
		return nil, err
	}
	f.pg.SetPID(pid)
	f.pid.Store(uint64(pid))
	f.pin.unfreezeTo(1)
	got, inserted, err := p.table.getOrInsert(pid, idx)
	if err != nil || !inserted {
		// Another loader won despite the transit list (possible only if
		// callers raced begin/end); fall back to retry.
		p.retireFailedLoad(f, idx)
		_ = got
		return nil, err
	}
	if mode == sync2.LatchSH {
		f.latch.Downgrade()
	}
	p.misses.Add(1)
	p.hotRecord(pid, idx)
	return f, nil
}

// FixNew claims a frame for a freshly allocated page without reading disk.
// The frame comes back EX-latched and pinned; the caller formats the page.
func (p *Pool) FixNew(pid page.ID) (*Frame, error) {
	if p.closed.Load() {
		return nil, ErrPoolClosed
	}
	f, idx, err := p.allocFrame(pid)
	if err != nil {
		return nil, err
	}
	f.pid.Store(uint64(pid))
	f.pin.unfreezeTo(1)
	_, inserted, err := p.table.getOrInsert(pid, idx)
	if err != nil || !inserted {
		p.retireFailedLoad(f, idx)
		if err != nil {
			return nil, err
		}
		// A concurrent last-page reader can fix a freshly allocated page
		// before its allocator gets here, caching the raw zeroed image.
		// The pid is still exclusively ours (readers never write a
		// non-heap page), so take the cached frame over: EX-latch it and
		// hand it back for formatting.
		g, ferr := p.Fix(pid, sync2.LatchEX)
		if ferr != nil {
			return nil, ferr
		}
		if g.Page().Type() != page.TypeFree {
			p.Unfix(g, sync2.LatchEX)
			return nil, fmt.Errorf("buffer: FixNew(%v): page already cached", pid)
		}
		g.pg.Init(pid, page.TypeFree, 0)
		return g, nil
	}
	f.pg.Init(pid, page.TypeFree, 0)
	return f, nil
}

// Unfix releases the latch (taken in mode) and unpins the frame.
func (p *Pool) Unfix(f *Frame, mode sync2.LatchMode) {
	f.Unlatch(mode)
	f.pin.unpin()
}

// Miss-path recovery bounds: a fully pinned pool kicks the cleaner and
// retries with backoff before ErrNoFreeFrames surfaces, and an eviction
// that keeps colliding with in-flight transits of its victim's pid gives
// up after a bounded number of waits.
const (
	allocRetries    = 5
	allocBackoff    = 50 * time.Microsecond
	maxTransitWaits = 8
)

// allocFrame claims a frame for pid: its home shard's free list first
// (no eviction work at all), then the home clock region, and only when
// that region is exhausted the other shards — free lists, then clocks
// (counted as steals). The returned frame is frozen (pin == -1),
// EX-latched, unmapped, and clean. The EX latch never blocks — a frozen
// frame has no pin holders and latch holders always pin first — but
// taking it bumps the frame's version so optimistic readers that sampled
// the previous occupant fail validation.
//
// When every shard is exhausted (all frames pinned), allocFrame kicks
// the cleaner and retries with backoff; only then does it surface
// ErrNoFreeFrames, decorated with the pool's occupancy.
func (p *Pool) allocFrame(pid page.ID) (*Frame, uint32, error) {
	home := p.homeShard(pid)
	for attempt := 0; ; attempt++ {
		f, idx, err := p.allocOnce(home)
		if err == nil {
			return f, idx, nil
		}
		if err != errShardExhausted {
			return nil, 0, err
		}
		if attempt >= allocRetries {
			pinned, free := p.occupancy()
			return nil, 0, fmt.Errorf("%w (%d/%d frames pinned, %d free-listed; %d retries)",
				ErrNoFreeFrames, pinned, len(p.frames), free, attempt)
		}
		p.kickCleaner()
		if attempt == 0 {
			runtime.Gosched() // a pin is often released within a scheduling quantum
		} else {
			time.Sleep(allocBackoff << attempt)
		}
	}
}

// allocOnce is one sweep of the allocation ladder for home.
func (p *Pool) allocOnce(home *shard) (*Frame, uint32, error) {
	if f, idx, ok := p.claimFree(home); ok {
		home.freeHits.Add(1)
		if int(home.nfree.Load()) < home.lowWater {
			p.kickCleaner() // demand is eating into the buffer: refill ahead
		}
		return f, idx, nil
	}
	if p.freeLists {
		p.kickCleaner() // the free list ran dry: replacement fell behind
	}
	f, idx, err := p.claimVictim(home)
	if err == nil || err != errShardExhausted {
		return f, idx, err
	}
	// Home region exhausted: steal. Neighbors' free lists first (cheap),
	// then their clock regions.
	n := len(p.shards)
	for off := 1; off < n; off++ {
		s := p.shards[(home.id+off)%n]
		if f, idx, ok := p.claimFree(s); ok {
			home.steals.Add(1)
			return f, idx, nil
		}
	}
	for off := 1; off < n; off++ {
		s := p.shards[(home.id+off)%n]
		f, idx, err := p.claimVictim(s)
		if err == nil {
			home.steals.Add(1)
			return f, idx, nil
		}
		if err != errShardExhausted {
			return nil, 0, err
		}
	}
	return nil, 0, errShardExhausted
}

// occupancy reports how many frames are pinned and how many sit on free
// lists (error-path diagnostics only; the scan is racy but indicative).
func (p *Pool) occupancy() (pinned, free int) {
	for _, f := range p.frames {
		if f.pin.get() > 0 {
			pinned++
		}
	}
	for _, s := range p.shards {
		free += int(s.nfree.Load())
	}
	return pinned, free
}

// evictContents writes back and unmaps whatever page the frozen frame
// holds. s, when non-nil, is the shard charged for the eviction.
func (p *Pool) evictContents(f *Frame, s *shard) error {
	oldPid := f.PID()
	if oldPid == 0 {
		return nil
	}
	p.evictions.Add(1)
	if s != nil {
		s.evictions.Add(1)
	}
	if f.Dirty() {
		// Register in-transit-out before unmapping so that concurrent
		// misses on oldPid wait for the write instead of reading a stale
		// disk image.
		e, fresh := p.transit.begin(oldPid)
		for tries := 1; !fresh; tries++ {
			// Another transit in flight for this pid (e.g. a cleaner
			// write-back or a cuckoo orphan drop). Wait it out — bounded,
			// so a wedged transit cannot hang the miss path forever.
			p.transitConflicts.Add(1)
			if tries > maxTransitWaits {
				return fmt.Errorf("buffer: persistent transit conflict on %v (%d waits)", oldPid, tries-1)
			}
			e.wait()
			e, fresh = p.transit.begin(oldPid)
		}
		p.table.delete(oldPid)
		err := p.writeBack(f)
		p.transit.end(oldPid, e)
		if err != nil {
			return err
		}
		p.writebacks.Add(1)
	} else {
		p.table.delete(oldPid)
	}
	f.pid.Store(0)
	return nil
}

// writeBack flushes the WAL up to the page LSN (the WAL rule), then writes
// the frame to the volume and clears its dirty bit.
func (p *Pool) writeBack(f *Frame) error {
	if p.opts.FlushLog != nil {
		if err := p.opts.FlushLog(wal.LSN(f.pg.LSN())); err != nil {
			return err
		}
	}
	if err := p.vol.Write(f.PID(), f.buf); err != nil {
		return err
	}
	f.dirty.Store(false)
	return nil
}

// dropOrphan handles a cuckoo cascade overflow: the mapping for pid was
// displaced from the table while its page may still occupy frame idx. Try
// to retire the frame; if it is pinned, restore the mapping instead.
func (p *Pool) dropOrphan(pid page.ID, idx uint32) {
	if int(idx) >= len(p.frames) {
		return
	}
	f := p.frames[idx]
	if f.PID() != pid {
		return // already recycled
	}
	if f.pin.tryFreeze() {
		f.latch.LatchEX() // never blocks (frozen); bumps the version for optimistic readers
		freed := false
		if f.PID() == pid {
			if f.Dirty() {
				_ = p.writeBack(f)
			}
			f.pid.Store(0)
			f.slotHint.Store(0)
			freed = !f.Dirty() // write-back failure keeps the frame out of reuse
		}
		f.latch.UnlatchEX()
		if freed {
			// Clean and unmapped: straight back to circulation (the shard
			// free list, still frozen) instead of waiting for the clock.
			p.freeFrozen(f, idx)
		} else {
			f.pin.unfreezeTo(0)
		}
		return
	}
	// Pinned: the page must stay reachable. Re-insert (may cascade again,
	// but geometry has changed).
	_, _, _ = p.table.getOrInsert(pid, idx)
}

// Drop removes pid from the pool without writing it back (used when a page
// is deallocated). The page must not be pinned by the caller.
func (p *Pool) Drop(pid page.ID) {
	idx, ok := p.table.get(pid)
	if !ok {
		return
	}
	f := p.frames[idx]
	if !f.pin.tryFreeze() {
		return // someone is using it; the clock will get it eventually
	}
	f.latch.LatchEX() // never blocks (frozen); bumps the version for optimistic readers
	freed := false
	if f.PID() == pid {
		p.table.delete(pid)
		f.dirty.Store(false)
		f.pid.Store(0)
		f.slotHint.Store(0)
		freed = true
	}
	f.latch.UnlatchEX()
	if freed {
		// The dropped page's frame is clean and unmapped: recycle it via
		// the shard free list (still frozen) rather than the clock.
		p.freeFrozen(f, idx)
	} else {
		f.pin.unfreezeTo(0)
	}
}

// FlushAll writes every dirty page to the volume (e.g. at clean shutdown).
func (p *Pool) FlushAll() error {
	var firstErr error
	for _, f := range p.frames {
		if !f.Dirty() {
			continue
		}
		if !f.pin.tryPin() {
			continue // being evicted; the evictor writes it
		}
		f.latch.LatchSH()
		if f.Dirty() {
			if err := p.writeBack(f); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		f.latch.UnlatchSH()
		f.pin.unpin()
	}
	return firstErr
}

// DirtyPageTable collects the (pid, recLSN) of every dirty frame — the
// checkpoint's dirty page table. beginLSN is the checkpoint-begin LSN used
// as a conservative recLSN for frames being modified during the scan.
func (p *Pool) DirtyPageTable(beginLSN wal.LSN) []wal.DirtyInfo {
	var out []wal.DirtyInfo
	for _, f := range p.frames {
		if !f.pin.tryPin() {
			continue // frozen: mid-eviction, will be clean on disk
		}
		if f.latch.TryLatchSH() {
			if f.Dirty() && f.PID() != 0 {
				out = append(out, wal.DirtyInfo{Page: f.PID(), RecLSN: f.RecLSN()})
			}
			f.latch.UnlatchSH()
		} else {
			// EX-held: being modified right now; include conservatively.
			pid := f.PID()
			if pid != 0 {
				rec := f.RecLSN()
				if rec == wal.NullLSN || rec > beginLSN {
					rec = beginLSN
				}
				out = append(out, wal.DirtyInfo{Page: pid, RecLSN: rec})
			}
		}
		f.pin.unpin()
	}
	return out
}

// Stats returns a snapshot of pool counters, including one ShardStats
// entry per replacement shard and their aggregates.
func (p *Pool) Stats() Stats {
	s := Stats{
		Hits:             p.hits.Load(),
		HotHits:          p.hotHits.Load(),
		Misses:           p.misses.Load(),
		Evictions:        p.evictions.Load(),
		Writebacks:       p.writebacks.Load(),
		CleanerIO:        p.cleanerIO.Load(),
		TransitWait:      p.transitWait.Load(),
		TransitConflicts: p.transitConflicts.Load(),
		PinRetries:       p.pinRetries.Load(),
		TableLock:        p.table.lockStats(),
	}
	s.Shards = make([]ShardStats, len(p.shards))
	for i, sh := range p.shards {
		ss := ShardStats{
			Evictions:    sh.evictions.Load(),
			Scans:        sh.scans.Load(),
			Steals:       sh.steals.Load(),
			CleanerFrees: sh.cleanerFrees.Load(),
			FreeListHits: sh.freeHits.Load(),
			FreeFrames:   int(sh.nfree.Load()),
		}
		s.Shards[i] = ss
		s.FreeListHits += ss.FreeListHits
		s.Steals += ss.Steals
		s.CleanerFrees += ss.CleanerFrees
		s.ScanFrames += ss.Scans
		cs := sh.mu.Stats()
		s.ClockLock.Acquisitions += cs.Acquisitions
		s.ClockLock.Contended += cs.Contended
		s.ClockLock.SpinIters += cs.SpinIters
	}
	if p.pinMu != nil {
		s.GlobalLock = p.pinMu.Stats()
	}
	return s
}

// Close stops the cleaner and flushes all dirty pages.
func (p *Pool) Close() error {
	if p.closed.Swap(true) {
		return nil
	}
	p.StopCleaner()
	return p.FlushAll()
}
