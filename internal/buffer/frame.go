// Package buffer implements the buffer pool manager whose step-by-step
// de-bottlenecking is the spine of the Shore-MT paper: pluggable hash
// index (global-mutex chain, per-bucket chain, 3-ary cuckoo), atomic
// pin-if-pinned, a hot-page array, CLOCK replacement sharded into
// independent per-region hands with free lists of pre-evicted frames
// (early hand release carried over per shard), partitioned in-transit
// lists with the transit-bypass optimization, and a shard-aware
// background cleaner that keeps the free lists ahead of demand and
// doubles as the checkpoint's oldest-dirty-LSN tracker.
package buffer

import (
	"runtime"
	"sync/atomic"

	"repro/internal/page"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// Frame is one buffer-pool slot: a page image plus its control state.
type Frame struct {
	buf []byte
	pg  *page.Page
	idx uint32        // position in the pool's frame array (immutable)
	pid atomic.Uint64 // current page id, 0 if free
	pin pinCount
	// latch is versioned so optimistic readers (FixOpt) can validate that
	// neither a writer nor a recycle touched the frame: every EX
	// acquisition bumps the version, and the pool EX-latches frames while
	// loading, evicting, and dropping their contents.
	latch sync2.VersionedLatch
	// slotHint is the heap layer's free-slot low-water mark: no slot below
	// it is a reusable tombstone. It is advisory — too low merely rescans,
	// and the pool resets it whenever the frame changes pages.
	slotHint atomic.Uint32
	dirty    atomic.Bool
	// recLSN is the LSN of the first update since the page was last clean
	// (the ARIES dirty-page-table entry).
	recLSN atomic.Uint64
	refbit atomic.Bool // CLOCK reference bit
}

// newFrame allocates frame idx and its page buffer.
func newFrame(idx uint32) *Frame {
	buf := make([]byte, page.Size)
	pg, err := page.Wrap(buf)
	if err != nil {
		panic(err) // buffer is page.Size by construction
	}
	return &Frame{buf: buf, pg: pg, idx: idx}
}

// Page returns the page image. Callers must hold the frame's latch.
func (f *Frame) Page() *page.Page { return f.pg }

// PID returns the page currently cached in this frame (0 if free).
func (f *Frame) PID() page.ID { return page.ID(f.pid.Load()) }

// Latch acquires the frame latch in mode.
func (f *Frame) Latch(mode sync2.LatchMode) { f.latch.Latch(mode) }

// Unlatch releases the frame latch taken in mode.
func (f *Frame) Unlatch(mode sync2.LatchMode) { f.latch.Unlatch(mode) }

// MarkDirty records that the holder (who must hold the EX latch) modified
// the page under log record lsn. The first dirtying since the page was
// clean establishes recLSN.
func (f *Frame) MarkDirty(lsn wal.LSN) {
	if !f.dirty.Swap(true) {
		f.recLSN.Store(uint64(lsn))
	}
}

// Dirty reports whether the frame holds unflushed modifications.
func (f *Frame) Dirty() bool { return f.dirty.Load() }

// RecLSN returns the frame's dirty-page-table recLSN (0 when clean).
func (f *Frame) RecLSN() wal.LSN {
	if !f.dirty.Load() {
		return wal.NullLSN
	}
	return wal.LSN(f.recLSN.Load())
}

// LatchStats exposes the frame latch's contention counters.
func (f *Frame) LatchStats() sync2.Stats { return f.latch.Stats() }

// SlotHint returns the heap free-slot hint: every slot below it is known
// occupied, so tombstone scans may start there.
func (f *Frame) SlotHint() uint16 { return uint16(f.slotHint.Load()) }

// SetSlotHint raises the hint after an insert claimed the slot below it.
func (f *Frame) SetSlotHint(s uint16) { f.slotHint.Store(uint32(s)) }

// LowerSlotHint drops the hint to s when a delete tombstones a slot below
// the current mark, restoring reuse of the freed slot.
func (f *Frame) LowerSlotHint(s uint16) {
	for {
		old := f.slotHint.Load()
		if uint32(s) >= old || f.slotHint.CompareAndSwap(old, uint32(s)) {
			return
		}
	}
}

// pinCount extends sync2.PinCount semantics with the transitions the
// buffer pool needs: pins from zero race against eviction freezes.
//
// n > 0: pinned; n == 0: unpinned, evictable; n == -1: frozen by an
// evictor.
type pinCount struct {
	n atomic.Int32
}

// tryPin increments the count unless the frame is frozen (-1).
func (p *pinCount) tryPin() bool {
	for {
		old := p.n.Load()
		if old < 0 {
			return false
		}
		if p.n.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// pinIfPinned increments only when already pinned (the §6.2.1 fast path).
func (p *pinCount) pinIfPinned() bool {
	for {
		old := p.n.Load()
		if old <= 0 {
			return false
		}
		if p.n.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// unpin decrements the count.
func (p *pinCount) unpin() { p.n.Add(-1) }

// tryFreeze claims an unpinned frame for eviction (0 → -1).
func (p *pinCount) tryFreeze() bool { return p.n.CompareAndSwap(0, -1) }

// unfreezeTo releases a frozen frame directly into the pinned state (the
// evictor hands the frame to the fixer) or back to free (count 0).
func (p *pinCount) unfreezeTo(count int32) { p.n.Store(count) }

// freezeFromOne retires a loader's single pin straight into the frozen
// state (1 → -1), waiting out transient pin-then-check visitors (stale
// hot-array entries, table lookups that raced the load's failure); they
// unpin as soon as an ID check fails. Only the pin's sole legitimate
// holder may call it, and NEVER while holding the frame's latch: a
// visitor that passed its pre-latch ID check parks its pin behind that
// latch, and waiting for the unpin would deadlock (see retireFailedLoad).
func (p *pinCount) freezeFromOne() {
	for !p.n.CompareAndSwap(1, -1) {
		runtime.Gosched()
	}
}

// get returns the raw count.
func (p *pinCount) get() int32 { return p.n.Load() }
