package buffer

import (
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// cleanerState holds the background dirty-page cleaner. Beyond keeping
// evictions cheap (clean victims need no write-back), the cleaner
// implements the paper's final checkpoint optimization (§7.7): because it
// already sweeps the whole pool asynchronously, it tracks the log position
// each sweep started at; once a sweep completes, every page dirtied before
// that position has been written, so the checkpoint can use the published
// value instead of serially scanning the buffer pool while blocking all
// transactions.
type cleanerState struct {
	stop    chan struct{}
	done    chan struct{}
	running atomic.Bool
	// ckptLSN is the published "oldest possible recLSN" from the last
	// completed sweep; NullLSN until one completes.
	ckptLSN atomic.Uint64
}

// StartCleaner launches the background cleaner sweeping every interval.
func (p *Pool) StartCleaner(interval time.Duration) {
	if p.cleaner.running.Swap(true) {
		return
	}
	p.cleaner.stop = make(chan struct{})
	p.cleaner.done = make(chan struct{})
	go p.cleanerLoop(interval)
}

// StopCleaner stops the background cleaner and waits for it to exit.
func (p *Pool) StopCleaner() {
	if !p.cleaner.running.Swap(false) {
		return
	}
	close(p.cleaner.stop)
	<-p.cleaner.done
}

func (p *Pool) cleanerLoop(interval time.Duration) {
	defer close(p.cleaner.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.cleaner.stop:
			return
		case <-ticker.C:
			p.CleanerSweep()
		}
	}
}

// CleanerSweep performs one full cleaning pass and publishes the
// checkpoint LSN. It is exported so tests and checkpoints can force a
// sweep synchronously.
func (p *Pool) CleanerSweep() {
	var sweepStart wal.LSN
	if p.opts.CurLSN != nil {
		sweepStart = p.opts.CurLSN()
	}
	// minSkipped tracks the recLSN of dirty frames the sweep could not
	// write (pinned/EX-latched); the published checkpoint LSN must not
	// pass them.
	minSkipped := wal.LSN(^uint64(0))
	for _, f := range p.frames {
		if !f.Dirty() {
			continue
		}
		if !f.pin.tryPin() {
			if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
			continue
		}
		if !f.latch.TryLatchSH() {
			if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
			f.pin.unpin()
			continue
		}
		if f.Dirty() && f.PID() != 0 {
			if err := p.writeBack(f); err == nil {
				p.cleanerIO.Add(1)
			} else if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
		}
		f.latch.UnlatchSH()
		f.pin.unpin()
	}
	ckpt := sweepStart
	if minSkipped < ckpt {
		ckpt = minSkipped
	}
	if ckpt != wal.NullLSN && ckpt != wal.LSN(^uint64(0)) {
		p.cleaner.ckptLSN.Store(uint64(ckpt))
	}
}

// CleanerCkptLSN returns the cleaner-published oldest-dirty bound for
// checkpoints, or NullLSN if no sweep has completed yet (callers fall back
// to scanning the pool).
func (p *Pool) CleanerCkptLSN() wal.LSN {
	return wal.LSN(p.cleaner.ckptLSN.Load())
}
