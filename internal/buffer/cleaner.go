package buffer

import (
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// cleanerState holds the background dirty-page cleaner. It has three
// jobs. First, replacement pacing: it keeps every shard's free list of
// pre-evicted frames above its low watermark, so a miss almost never
// performs eviction I/O itself — dirty victims are written back here,
// off the miss path. Second, keeping evictions cheap even when a clock
// must run (clean victims need no write-back). Third, the paper's final
// checkpoint optimization (§7.7): because it already sweeps the whole
// pool asynchronously, it tracks the log position each sweep started at;
// once a sweep completes, every page dirtied before that position has
// been written, so the checkpoint can use the published value instead of
// serially scanning the buffer pool while blocking all transactions.
type cleanerState struct {
	stop    chan struct{}
	done    chan struct{}
	running atomic.Bool
	// kick is the miss path's demand signal: a shard's free list ran low
	// (or dry), so refill ahead of the next ticker beat. Buffered to one
	// token; created at pool construction so kickCleaner never races
	// StartCleaner.
	kick chan struct{}
	// ckptLSN is the published "oldest possible recLSN" from the last
	// completed sweep; NullLSN until one completes.
	ckptLSN atomic.Uint64
}

// kickCleaner nudges the cleaner to refill shard free lists now. A no-op
// (one pending token at most) when the cleaner is busy or not running.
func (p *Pool) kickCleaner() {
	select {
	case p.cleaner.kick <- struct{}{}:
	default:
	}
}

// StartCleaner launches the background cleaner sweeping every interval.
func (p *Pool) StartCleaner(interval time.Duration) {
	if p.cleaner.running.Swap(true) {
		return
	}
	p.cleaner.stop = make(chan struct{})
	p.cleaner.done = make(chan struct{})
	go p.cleanerLoop(interval)
}

// StopCleaner stops the background cleaner and waits for it to exit.
func (p *Pool) StopCleaner() {
	if !p.cleaner.running.Swap(false) {
		return
	}
	close(p.cleaner.stop)
	<-p.cleaner.done
}

func (p *Pool) cleanerLoop(interval time.Duration) {
	defer close(p.cleaner.done)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.cleaner.stop:
			return
		case <-p.cleaner.kick:
			p.RefillFreeLists()
		case <-ticker.C:
			p.CleanerSweep()
			p.RefillFreeLists()
		}
	}
}

// RefillFreeLists tops up every shard free list that fell under its low
// watermark, evicting clock victims (clean ones preferred; dirty ones
// are written back here, off the miss path) until the high watermark is
// restored. Exported so tests and benchmarks can prime the lists
// synchronously; the background cleaner calls it on every kick and tick.
func (p *Pool) RefillFreeLists() {
	if !p.freeLists {
		return // single-hand mode: the clock is the only allocator
	}
	for _, s := range p.shards {
		if int(s.nfree.Load()) >= s.lowWater {
			continue
		}
		for int(s.nfree.Load()) < s.highWater {
			f, idx, err := p.claimVictim(s)
			if err != nil {
				break // region exhausted (all pinned) or I/O error; retry next pass
			}
			f.latch.UnlatchEX()
			s.pushFree(idx)
			s.cleanerFrees.Add(1)
		}
	}
}

// CleanerSweep performs one full cleaning pass and publishes the
// checkpoint LSN. It is exported so tests and checkpoints can force a
// sweep synchronously.
func (p *Pool) CleanerSweep() {
	var sweepStart wal.LSN
	if p.opts.CurLSN != nil {
		sweepStart = p.opts.CurLSN()
	}
	// minSkipped tracks the recLSN of dirty frames the sweep could not
	// write (pinned/EX-latched); the published checkpoint LSN must not
	// pass them.
	minSkipped := wal.LSN(^uint64(0))
	for _, f := range p.frames {
		if !f.Dirty() {
			continue
		}
		if !f.pin.tryPin() {
			if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
			continue
		}
		if !f.latch.TryLatchSH() {
			if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
			f.pin.unpin()
			continue
		}
		if f.Dirty() && f.PID() != 0 {
			if err := p.writeBack(f); err == nil {
				p.cleanerIO.Add(1)
			} else if rec := f.RecLSN(); rec != wal.NullLSN && rec < minSkipped {
				minSkipped = rec
			}
		}
		f.latch.UnlatchSH()
		f.pin.unpin()
	}
	ckpt := sweepStart
	if minSkipped < ckpt {
		ckpt = minSkipped
	}
	if ckpt != wal.NullLSN && ckpt != wal.LSN(^uint64(0)) {
		p.cleaner.ckptLSN.Store(uint64(ckpt))
	}
}

// CleanerCkptLSN returns the cleaner-published oldest-dirty bound for
// checkpoints, or NullLSN if no sweep has completed yet (callers fall back
// to scanning the pool).
func (p *Pool) CleanerCkptLSN() wal.LSN {
	return wal.LSN(p.cleaner.ckptLSN.Load())
}
