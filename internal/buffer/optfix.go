package buffer

import (
	"repro/internal/page"
)

// Optimistic fixing: FixOpt returns a pin-free, latch-free reference to a
// cached page. The caller performs speculative reads through OptRef.Page
// — copying out everything it needs, tolerating torn data — and then
// calls Validate; only on true were the reads consistent. ReleaseOpt must
// always be called (it is a no-op on the fast path and exists for the
// race-detector degradation, which holds a real SH latch + pin).
//
// Safety relies on three invariants the pool maintains:
//
//  1. Every in-place page write happens under the frame's EX latch, and
//     the latch version bumps on each EX acquire and release.
//  2. A frame changes pages (load, eviction, drop) only while EX-latched,
//     so recycling is indistinguishable from writing to a validator.
//  3. Page accessors bounds-check everything against the page size, so a
//     torn image yields errors, never panics.
//
// Under `go test -race`, speculative reads concurrent with writer
// mutations would be flagged as the data races they technically are, so
// race-instrumented builds degrade FixOpt to a conditional pinned SH fix:
// the optimistic control flow (descents, validation, restart, fallback)
// still executes, but reads are truly synchronized. See optfix_race.go.

// OptRef is an optimistic reference to a buffer frame. The zero value is
// invalid; obtain one from Pool.FixOpt.
type OptRef struct {
	f      *Frame
	ver    uint64
	pinned bool // race-build degradation: SH latch + pin held
}

// Page exposes the (speculatively readable) page image. Every value read
// through it must be treated as garbage until Validate returns true.
func (r OptRef) Page() *page.Page { return r.f.pg }

// Frame returns the underlying frame (advisory, e.g. for slot hints).
func (r OptRef) Frame() *Frame { return r.f }

// Validate reports whether all reads since FixOpt saw a consistent,
// current image of the page: no writer held the frame latch, no EX
// acquisition happened in between, and the frame still holds the same
// page. It may be called repeatedly; the reference stays usable until
// ReleaseOpt.
func (p *Pool) Validate(r OptRef) bool {
	if r.pinned {
		return true // degraded mode reads under a real SH latch
	}
	return r.f.latch.Validate(r.ver)
}

// ReleaseOpt ends an optimistic reference. On the fast path it is free;
// in degraded (race-build) mode it releases the SH latch and pin.
func (p *Pool) ReleaseOpt(r OptRef) {
	if r.pinned {
		r.f.latch.UnlatchSH()
		r.f.pin.unpin()
	}
}

// lookupFrame finds the frame index caching pid without pinning: hot
// array first, then the page table. Misses return false — FixOpt never
// triggers I/O; the caller falls back to a pinned Fix to load the page.
func (p *Pool) lookupFrame(pid page.ID) (uint32, bool) {
	if idx, ok := p.hotLookup(pid); ok {
		if p.frames[idx].PID() == pid {
			return idx, true
		}
	}
	return p.table.get(pid)
}
