package buffer

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// variant configurations spanning the paper's stages.
func variants() map[string]Options {
	return map[string]Options{
		"baseline": {
			Table: TableGlobalChain, AtomicPin: false, TransitPartitions: 1,
		},
		"bpool1": {
			Table: TablePerBucketChain, AtomicPin: true, TransitPartitions: 1,
		},
		"caching": {
			Table: TablePerBucketChain, AtomicPin: true, HotArray: 64, TransitPartitions: 1,
		},
		"final": {
			Table: TableCuckoo, AtomicPin: true, HotArray: 64,
			TransitPartitions: 128, TransitBypass: true, ClockHandRelease: true,
		},
	}
}

// newVol creates a volume with n initialized heap pages.
func newVol(t testing.TB, n int) *disk.MemVolume {
	t.Helper()
	v := disk.NewMem(0)
	if _, err := v.Grow(n); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, page.Size)
	pg, _ := page.Wrap(buf)
	for i := 1; i <= n; i++ {
		pg.Init(page.ID(i), page.TypeHeap, 1)
		if err := v.Write(page.ID(i), buf); err != nil {
			t.Fatal(err)
		}
	}
	return v
}

// stamp writes a recognizable value into a fixed page.
func stamp(f *Frame, val uint64) {
	binary.LittleEndian.PutUint64(f.Page().Bytes()[100:], val)
}

func readStamp(f *Frame) uint64 {
	return binary.LittleEndian.Uint64(f.Page().Bytes()[100:])
}

func TestFixUnfixRoundTrip(t *testing.T) {
	for name, opts := range variants() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			v := newVol(t, 10)
			opts.Frames = 8
			p := New(v, opts)
			defer p.Close()

			f, err := p.Fix(3, sync2.LatchEX)
			if err != nil {
				t.Fatal(err)
			}
			if f.PID() != 3 || f.Page().PID() != 3 {
				t.Fatalf("fixed wrong page: frame=%v page=%v", f.PID(), f.Page().PID())
			}
			stamp(f, 0xdead)
			f.Page().SetLSN(10)
			f.MarkDirty(10)
			p.Unfix(f, sync2.LatchEX)

			// Re-fix: cached value visible.
			f2, err := p.Fix(3, sync2.LatchSH)
			if err != nil {
				t.Fatal(err)
			}
			if readStamp(f2) != 0xdead {
				t.Fatal("modification lost on re-fix")
			}
			p.Unfix(f2, sync2.LatchSH)
			if st := p.Stats(); st.Hits+st.HotHits == 0 {
				t.Error("no hits recorded")
			}
		})
	}
}

func TestEvictionWritesBackAndReloads(t *testing.T) {
	for name, opts := range variants() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			v := newVol(t, 32)
			opts.Frames = 4 // tiny pool: forces evictions
			var flushedTo wal.LSN
			opts.FlushLog = func(l wal.LSN) error {
				if l > flushedTo {
					flushedTo = l
				}
				return nil
			}
			p := New(v, opts)
			defer p.Close()

			// Dirty page 1 with a known LSN.
			f, err := p.Fix(1, sync2.LatchEX)
			if err != nil {
				t.Fatal(err)
			}
			stamp(f, 42)
			f.Page().SetLSN(77)
			f.MarkDirty(77)
			p.Unfix(f, sync2.LatchEX)

			// Thrash the pool to evict page 1.
			for i := 2; i <= 32; i++ {
				g, err := p.Fix(page.ID(i), sync2.LatchSH)
				if err != nil {
					t.Fatal(err)
				}
				p.Unfix(g, sync2.LatchSH)
			}
			// Reload page 1: the stamp must have survived via write-back.
			f2, err := p.Fix(1, sync2.LatchSH)
			if err != nil {
				t.Fatal(err)
			}
			if readStamp(f2) != 42 {
				t.Fatal("eviction lost dirty data")
			}
			p.Unfix(f2, sync2.LatchSH)
			// WAL rule: the log must have been flushed through LSN 77
			// before the write-back.
			if flushedTo < 77 {
				t.Errorf("WAL rule violated: flushed only to %v", flushedTo)
			}
			if st := p.Stats(); st.Writebacks == 0 || st.Evictions == 0 {
				t.Errorf("stats = %+v; expected evictions and writebacks", st)
			}
		})
	}
}

func TestFixNew(t *testing.T) {
	v := newVol(t, 4)
	first, err := v.Grow(1) // page 5 allocated on disk but never written
	if err != nil {
		t.Fatal(err)
	}
	opts := variants()["final"]
	opts.Frames = 8
	p := New(v, opts)
	defer p.Close()

	f, err := p.FixNew(first)
	if err != nil {
		t.Fatal(err)
	}
	f.Page().Init(first, page.TypeHeap, 9)
	stamp(f, 1234)
	f.MarkDirty(5)
	p.Unfix(f, sync2.LatchEX)

	// FixNew of an already-cached page must fail.
	if _, err := p.FixNew(first); err == nil {
		t.Fatal("duplicate FixNew succeeded")
	}

	f2, err := p.Fix(first, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	if readStamp(f2) != 1234 || f2.Page().Store() != 9 {
		t.Fatal("FixNew page content lost")
	}
	p.Unfix(f2, sync2.LatchSH)
}

func TestConcurrentFixesDistinctPages(t *testing.T) {
	for name, opts := range variants() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			v := newVol(t, 64)
			opts.Frames = 16
			p := New(v, opts)
			defer p.Close()
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						pid := page.ID(i%64 + 1)
						f, err := p.Fix(pid, sync2.LatchSH)
						if err != nil {
							t.Error(err)
							return
						}
						if f.Page().PID() != pid {
							t.Errorf("fixed %v got page %v", pid, f.Page().PID())
							p.Unfix(f, sync2.LatchSH)
							return
						}
						p.Unfix(f, sync2.LatchSH)
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

func TestConcurrentWritersSamePage(t *testing.T) {
	for name, opts := range variants() {
		opts := opts
		t.Run(name, func(t *testing.T) {
			v := newVol(t, 12)
			opts.Frames = 4
			p := New(v, opts)
			defer p.Close()
			// All goroutines increment a counter on page 2 under EX latch,
			// with eviction pressure from other fixes.
			const g, n = 4, 100
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						f, err := p.Fix(2, sync2.LatchEX)
						if err != nil {
							t.Error(err)
							return
						}
						stamp(f, readStamp(f)+1)
						f.Page().SetLSN(uint64(i))
						f.MarkDirty(wal.LSN(i + 1))
						p.Unfix(f, sync2.LatchEX)
						// Pressure.
						pid := page.ID(w*2 + i%2 + 3)
						h, err := p.Fix(pid, sync2.LatchSH)
						if err != nil {
							t.Error(err)
							return
						}
						p.Unfix(h, sync2.LatchSH)
					}
				}(w)
			}
			wg.Wait()
			f, err := p.Fix(2, sync2.LatchSH)
			if err != nil {
				t.Fatal(err)
			}
			if got := readStamp(f); got != g*n {
				t.Fatalf("counter = %d, want %d (lost updates)", got, g*n)
			}
			p.Unfix(f, sync2.LatchSH)
		})
	}
}

func TestDirtyPageTable(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["final"]
	opts.Frames = 8
	p := New(v, opts)
	defer p.Close()
	for i := 1; i <= 3; i++ {
		f, err := p.Fix(page.ID(i), sync2.LatchEX)
		if err != nil {
			t.Fatal(err)
		}
		f.Page().SetLSN(uint64(i * 10))
		f.MarkDirty(wal.LSN(i * 10))
		p.Unfix(f, sync2.LatchEX)
	}
	dpt := p.DirtyPageTable(1000)
	if len(dpt) != 3 {
		t.Fatalf("dirty table has %d entries, want 3: %+v", len(dpt), dpt)
	}
	seen := map[page.ID]wal.LSN{}
	for _, d := range dpt {
		seen[d.Page] = d.RecLSN
	}
	for i := 1; i <= 3; i++ {
		if seen[page.ID(i)] != wal.LSN(i*10) {
			t.Errorf("page %d recLSN = %v, want %d", i, seen[page.ID(i)], i*10)
		}
	}
}

func TestCleanerSweepAndCkptLSN(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["final"]
	opts.Frames = 8
	cur := wal.LSN(500)
	opts.CurLSN = func() wal.LSN { return cur }
	p := New(v, opts)
	defer p.Close()

	f, err := p.Fix(1, sync2.LatchEX)
	if err != nil {
		t.Fatal(err)
	}
	stamp(f, 7)
	f.Page().SetLSN(100)
	f.MarkDirty(100)
	p.Unfix(f, sync2.LatchEX)

	if got := p.CleanerCkptLSN(); got != wal.NullLSN {
		t.Fatalf("ckpt LSN before any sweep = %v", got)
	}
	p.CleanerSweep()
	if got := p.CleanerCkptLSN(); got != 500 {
		t.Fatalf("ckpt LSN after sweep = %v, want 500", got)
	}
	// The page must now be clean and durable.
	if len(p.DirtyPageTable(1000)) != 0 {
		t.Fatal("sweep left dirty pages")
	}
	buf := make([]byte, page.Size)
	if err := v.Read(1, buf); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(buf[100:]) != 7 {
		t.Fatal("sweep did not write the page")
	}
	if p.Stats().CleanerIO == 0 {
		t.Error("cleaner IO not counted")
	}
}

func TestCleanerSkipsLatchedPages(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["final"]
	opts.Frames = 8
	opts.CurLSN = func() wal.LSN { return 900 }
	p := New(v, opts)
	defer p.Close()

	f, err := p.Fix(1, sync2.LatchEX)
	if err != nil {
		t.Fatal(err)
	}
	f.Page().SetLSN(50)
	f.MarkDirty(50)
	// Sweep while the page is EX-latched: it must be skipped and the
	// published LSN must not pass its recLSN.
	p.CleanerSweep()
	if got := p.CleanerCkptLSN(); got != 50 {
		t.Fatalf("ckpt LSN = %v, want 50 (bounded by skipped dirty page)", got)
	}
	p.Unfix(f, sync2.LatchEX)
}

func TestBackgroundCleaner(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["final"]
	opts.Frames = 8
	p := New(v, opts)
	defer p.Close()
	f, err := p.Fix(2, sync2.LatchEX)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty(5)
	p.Unfix(f, sync2.LatchEX)
	p.StartCleaner(time.Millisecond)
	deadline := time.After(2 * time.Second)
	for len(p.DirtyPageTable(100)) > 0 {
		select {
		case <-deadline:
			t.Fatal("cleaner never cleaned the page")
		default:
			time.Sleep(time.Millisecond)
		}
	}
	p.StopCleaner()
	// Idempotent start/stop.
	p.StartCleaner(time.Hour)
	p.StartCleaner(time.Hour)
	p.StopCleaner()
	p.StopCleaner()
}

func TestDrop(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["final"]
	opts.Frames = 8
	p := New(v, opts)
	defer p.Close()
	f, err := p.Fix(4, sync2.LatchEX)
	if err != nil {
		t.Fatal(err)
	}
	stamp(f, 99)
	f.MarkDirty(1)
	p.Unfix(f, sync2.LatchEX)
	p.Drop(4)
	// The dirty data must NOT have been written back.
	buf := make([]byte, page.Size)
	if err := v.Read(4, buf); err != nil {
		t.Fatal(err)
	}
	if binary.LittleEndian.Uint64(buf[100:]) == 99 {
		t.Fatal("Drop wrote the page back")
	}
	// Page is refetchable from disk (original zero stamp).
	f2, err := p.Fix(4, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	if readStamp(f2) == 99 {
		t.Fatal("dropped page still cached")
	}
	p.Unfix(f2, sync2.LatchSH)
}

func TestNoFreeFrames(t *testing.T) {
	v := newVol(t, 8)
	opts := variants()["bpool1"]
	opts.Frames = 2
	p := New(v, opts)
	defer p.Close()
	f1, err := p.Fix(1, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.Fix(2, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fix(3, sync2.LatchSH); err == nil {
		t.Fatal("fix with all frames pinned succeeded")
	}
	p.Unfix(f1, sync2.LatchSH)
	p.Unfix(f2, sync2.LatchSH)
	// Now it must succeed.
	f3, err := p.Fix(3, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(f3, sync2.LatchSH)
}

func TestFixInvalidAndClosed(t *testing.T) {
	v := newVol(t, 4)
	p := New(v, Options{Frames: 4, Table: TableCuckoo, AtomicPin: true})
	if _, err := p.Fix(page.InvalidID, sync2.LatchSH); err == nil {
		t.Error("fix of invalid pid succeeded")
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Fix(1, sync2.LatchSH); err != ErrPoolClosed {
		t.Errorf("fix after close = %v", err)
	}
	if _, err := p.FixNew(1); err != ErrPoolClosed {
		t.Errorf("FixNew after close = %v", err)
	}
	if err := p.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestTableKindString(t *testing.T) {
	if TableGlobalChain.String() != "globalChain" ||
		TablePerBucketChain.String() != "perBucketChain" ||
		TableCuckoo.String() != "cuckoo" || TableKind(9).String() != "unknown" {
		t.Error("TableKind strings")
	}
}
