package buffer

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// shardedOpts is the scalable configuration with an explicit shard count.
func shardedOpts(shards int) Options {
	o := variants()["final"]
	o.Shards = shards
	return o
}

func TestShardCount(t *testing.T) {
	cases := []struct {
		frames, requested, want int
	}{
		{16, 1, 1},      // explicit single hand
		{16, 4, 4},      // explicit sharding honored on tiny pools
		{16, 100, 8},    // clamped: every region holds >= 2 frames
		{16, 0, 1},      // auto on a tiny pool degrades to one shard
		{1, 0, 1},       // degenerate pool
		{1 << 20, 7, 7}, // odd explicit counts work (last region takes the remainder)
	}
	for _, c := range cases {
		if got := shardCount(c.frames, c.requested); got != c.want {
			t.Errorf("shardCount(%d, %d) = %d, want %d", c.frames, c.requested, got, c.want)
		}
	}
	// Auto sharding never exceeds GOMAXPROCS-scaled bounds or frames/64.
	if got := shardCount(4096, 0); got < 1 || got > 64 || got > 4096/minAutoShardFrames {
		t.Errorf("auto shardCount(4096) = %d out of bounds", got)
	}
}

func TestShardRegionsCoverFrames(t *testing.T) {
	v := newVol(t, 8)
	opts := shardedOpts(3)
	opts.Frames = 16
	p := New(v, opts)
	defer p.Close()
	if len(p.shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(p.shards))
	}
	covered := 0
	for i, s := range p.shards {
		if s.hi <= s.lo {
			t.Fatalf("shard %d empty region [%d,%d)", i, s.lo, s.hi)
		}
		covered += s.hi - s.lo
		for idx := s.lo; idx < s.hi; idx++ {
			if got := p.shardOfFrame(uint32(idx)); got != s {
				t.Fatalf("shardOfFrame(%d) = shard %d, want %d", idx, got.id, i)
			}
		}
	}
	if covered != 16 {
		t.Fatalf("regions cover %d frames, want 16", covered)
	}
	// A fresh pool starts fully free-listed.
	if _, free := p.occupancy(); free != 16 {
		t.Fatalf("fresh pool free-listed %d frames, want 16", free)
	}
}

// TestFreeListMissNoEvictionIO is the tentpole's acceptance check: with
// shards > 1, a miss that finds a free-list frame performs no eviction
// I/O and steals nothing from other shards.
func TestFreeListMissNoEvictionIO(t *testing.T) {
	v := newVol(t, 64)
	opts := shardedOpts(4)
	opts.Frames = 32
	p := New(v, opts)
	defer p.Close()

	before := p.Stats()
	for i := 1; i <= 16; i++ {
		f, err := p.Fix(page.ID(i), sync2.LatchSH)
		if err != nil {
			t.Fatal(err)
		}
		p.Unfix(f, sync2.LatchSH)
	}
	after := p.Stats()
	if after.FreeListHits-before.FreeListHits != 16 {
		t.Errorf("free-list hits = %d, want 16", after.FreeListHits-before.FreeListHits)
	}
	if after.Writebacks != before.Writebacks || after.Evictions != before.Evictions {
		t.Errorf("free-list misses performed eviction work: %+v -> %+v", before, after)
	}
	if after.Steals != 0 {
		t.Errorf("free-list misses stole from other shards: %d", after.Steals)
	}
	if after.ScanFrames != 0 {
		t.Errorf("free-list misses ran a clock hand: %d scans", after.ScanFrames)
	}
}

func TestCleanerRefillsWatermarks(t *testing.T) {
	v := newVol(t, 96)
	opts := shardedOpts(2)
	opts.Frames = 32
	p := New(v, opts)
	defer p.Close()

	// Drain every free list (3x overcommit makes every shard's home
	// traffic exceed its region) and leave the whole pool dirty.
	for i := 1; i <= 96; i++ {
		f, err := p.Fix(page.ID(i), sync2.LatchEX)
		if err != nil {
			t.Fatal(err)
		}
		stamp(f, uint64(i))
		f.Page().SetLSN(uint64(i))
		f.MarkDirty(wal.LSN(i))
		p.Unfix(f, sync2.LatchEX)
	}
	st := p.Stats()
	sumFree := 0
	for _, sh := range st.Shards {
		sumFree += sh.FreeFrames
	}
	if sumFree != 0 {
		t.Fatalf("free lists not drained: %d", sumFree)
	}

	p.RefillFreeLists()

	st = p.Stats()
	for i, sh := range st.Shards {
		if sh.FreeFrames < p.shards[i].lowWater {
			t.Errorf("shard %d refilled to %d, low watermark %d", i, sh.FreeFrames, p.shards[i].lowWater)
		}
	}
	if st.CleanerFrees == 0 {
		t.Error("no cleaner-supplied frames counted")
	}
	// Dirty victims were written back (off any miss path), not dropped.
	if st.Writebacks == 0 {
		t.Error("refill evicted dirty pages without write-back")
	}
	buf := make([]byte, page.Size)
	evicted := 0
	for i := 1; i <= 96; i++ {
		if err := v.Read(page.ID(i), buf); err != nil {
			t.Fatal(err)
		}
		if binary.LittleEndian.Uint64(buf[100:]) == uint64(i) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Error("no refill victim reached the volume")
	}
}

func TestDropFeedsFreeList(t *testing.T) {
	v := newVol(t, 16)
	opts := shardedOpts(2)
	opts.Frames = 8
	p := New(v, opts)
	defer p.Close()
	f, err := p.Fix(5, sync2.LatchEX)
	if err != nil {
		t.Fatal(err)
	}
	f.MarkDirty(1)
	p.Unfix(f, sync2.LatchEX)
	before := 0
	for _, sh := range p.Stats().Shards {
		before += sh.FreeFrames
	}
	p.Drop(5)
	after := 0
	for _, sh := range p.Stats().Shards {
		after += sh.FreeFrames
	}
	if after != before+1 {
		t.Errorf("Drop fed %d frames to free lists, want 1", after-before)
	}
	// The frame is immediately reusable without a clock scan.
	scans := p.Stats().ScanFrames
	g, err := p.Fix(9, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	p.Unfix(g, sync2.LatchSH)
	if got := p.Stats().ScanFrames; got != scans {
		t.Errorf("re-fix after Drop ran the clock (%d scans)", got-scans)
	}
}

func TestNoFreeFramesOccupancyError(t *testing.T) {
	v := newVol(t, 8)
	opts := shardedOpts(1)
	opts.Frames = 2
	p := New(v, opts)
	defer p.Close()
	f1, err := p.Fix(1, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := p.Fix(2, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Fix(3, sync2.LatchSH)
	if !errors.Is(err, ErrNoFreeFrames) {
		t.Fatalf("err = %v, want ErrNoFreeFrames", err)
	}
	if !strings.Contains(err.Error(), "2/2 frames pinned") {
		t.Errorf("error lacks occupancy: %v", err)
	}
	p.Unfix(f1, sync2.LatchSH)
	p.Unfix(f2, sync2.LatchSH)
}

// TestAllocRetryRecovers exercises the recoverable ErrNoFreeFrames path:
// a fully pinned pool whose pins release mid-backoff succeeds without
// surfacing an error.
func TestAllocRetryRecovers(t *testing.T) {
	v := newVol(t, 8)
	opts := shardedOpts(1)
	opts.Frames = 2
	p := New(v, opts)
	defer p.Close()
	f1, _ := p.Fix(1, sync2.LatchSH)
	f2, _ := p.Fix(2, sync2.LatchSH)
	go func() {
		time.Sleep(200 * time.Microsecond)
		p.Unfix(f1, sync2.LatchSH)
	}()
	f3, err := p.Fix(3, sync2.LatchSH)
	if err != nil {
		t.Fatalf("fix did not recover after pin release: %v", err)
	}
	p.Unfix(f3, sync2.LatchSH)
	p.Unfix(f2, sync2.LatchSH)
}

// TestShardedPoolStress drives a tiny sharded pool with concurrent
// Fix/FixOpt/Drop/FlushAll under -race: no lost updates, no
// double-mapped frames, and hot-array lookups never pin a recycled
// victim (every returned frame's identity matches the request).
func TestShardedPoolStress(t *testing.T) {
	const (
		frames   = 16
		shards   = 4
		hotPages = 8  // counters, never dropped
		allPages = 48 // pressure + drop targets beyond the hot set
		writers  = 4
		readers  = 4
		rounds   = 320 // multiple of hotPages: every counter gets rounds/hotPages hits per writer
	)
	v := newVol(t, allPages)
	opts := shardedOpts(shards)
	opts.Frames = frames
	p := New(v, opts)
	defer p.Close()
	p.StartCleaner(100 * time.Microsecond)

	var wg sync.WaitGroup
	// Writers increment per-page counters under EX latches.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pid := page.ID(i%hotPages + 1)
				f, err := p.Fix(pid, sync2.LatchEX)
				if err != nil {
					t.Error(err)
					return
				}
				if f.PID() != pid || f.Page().PID() != pid {
					t.Errorf("EX fix of %v returned frame holding %v/%v", pid, f.PID(), f.Page().PID())
					p.Unfix(f, sync2.LatchEX)
					return
				}
				stamp(f, readStamp(f)+1)
				f.Page().SetLSN(uint64(i + 1))
				f.MarkDirty(1)
				p.Unfix(f, sync2.LatchEX)
			}
		}(w)
	}
	// Readers mix pinned and optimistic fixes across the whole range,
	// checking identity on every success.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				pid := page.ID((r*31+i)%allPages + 1)
				if i%3 == 0 {
					if ref, ok := p.FixOpt(pid); ok {
						got := ref.Frame().PID()
						if p.Validate(ref) && got != pid {
							t.Errorf("validated optimistic ref of %v on frame holding %v", pid, got)
						}
						p.ReleaseOpt(ref)
					}
					continue
				}
				f, err := p.Fix(pid, sync2.LatchSH)
				if err != nil {
					t.Error(err)
					return
				}
				if f.PID() != pid || f.Page().PID() != pid {
					t.Errorf("SH fix of %v returned frame holding %v/%v", pid, f.PID(), f.Page().PID())
				}
				p.Unfix(f, sync2.LatchSH)
			}
		}(r)
	}
	// Droppers retire scratch pages (never the counter pages).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			p.Drop(page.ID(hotPages + 1 + i%(allPages-hotPages)))
		}
	}()
	// A flusher sweeps everything repeatedly.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds/10; i++ {
			if err := p.FlushAll(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	p.StopCleaner()

	// No double-mapped frames at quiescence.
	seen := map[page.ID]int{}
	for _, f := range p.frames {
		if pid := f.PID(); pid != 0 {
			seen[pid]++
		}
	}
	for pid, n := range seen {
		if n > 1 {
			t.Errorf("page %v cached in %d frames", pid, n)
		}
	}
	// No lost updates: every counter page reads writers*rounds/hotPages...
	// each writer hits each hot page rounds/hotPages times.
	want := uint64(writers * (rounds / hotPages))
	for i := 1; i <= hotPages; i++ {
		f, err := p.Fix(page.ID(i), sync2.LatchSH)
		if err != nil {
			t.Fatal(err)
		}
		if got := readStamp(f); got != want {
			t.Errorf("page %d counter = %d, want %d (lost updates)", i, got, want)
		}
		p.Unfix(f, sync2.LatchSH)
	}
}
