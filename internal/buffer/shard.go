package buffer

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/page"
	"repro/internal/sync2"
)

// Replacement sharding: the frame array is partitioned into independent
// clock regions, each with its own hand, hybrid lock, free list of
// pre-evicted frames, and counters. A miss hashes its page id to a home
// shard and touches only that shard's state; it reaches into a neighbor
// (a "steal") only when the home region is completely exhausted. This
// removes the last pool-wide critical section — the paper's single clock
// hand — the same way §6.2.3 partitioned the in-transit lists.

// AutoShards selects the GOMAXPROCS-scaled default shard count.
const AutoShards = 0

const (
	// minAutoShardFrames keeps auto-sharded regions large enough that a
	// clock pass still sees a meaningful population.
	minAutoShardFrames = 64
	// maxShardCount bounds the auto default on very wide machines.
	maxShardCount = 64
)

// shardCount resolves the configured shard count against the pool size:
// requested <= 0 means the GOMAXPROCS-scaled default, and every region
// must hold at least two frames.
func shardCount(frames, requested int) int {
	n := requested
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if max := frames / minAutoShardFrames; n > max {
			n = max
		}
		if n > maxShardCount {
			n = maxShardCount
		}
	}
	if max := frames / 2; n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	return n
}

// shard is one independent replacement region over frames [lo, hi).
type shard struct {
	id int
	mu sync2.Locker // guards hand and clock traversal of the region
	lo int
	hi int

	hand int // next clock position, guarded by mu

	// free is a LIFO of pre-evicted frame indexes. Frames on it are
	// frozen (pin == -1), clean, unmapped, and unlatched, so nothing can
	// reach them except a pop. nfree mirrors len(free) for lock-free
	// watermark checks.
	freeMu sync.Mutex
	free   []uint32
	nfree  atomic.Int32

	// Watermarks pace the cleaner: it refills a shard whose free list
	// fell under lowWater back up to highWater.
	lowWater  int
	highWater int

	evictions    atomic.Uint64 // victims evicted from this region
	scans        atomic.Uint64 // frames examined by this region's hand
	steals       atomic.Uint64 // misses homed here that took a frame elsewhere
	cleanerFrees atomic.Uint64 // free-list frames supplied by the cleaner
	freeHits     atomic.Uint64 // misses served straight from the free list
}

// newShards partitions frames into n contiguous regions. With free
// lists enabled (n > 1), every frame starts on its region's free list —
// a fresh pool is all pre-evicted frames, so initial misses never run a
// clock hand. In single-hand mode the lists stay empty forever and the
// region is the whole pool, reproducing the original design.
func newShards(frames []*Frame, n int, freeLists bool) []*shard {
	base := len(frames) / n
	shards := make([]*shard, n)
	for i := range shards {
		lo := i * base
		hi := lo + base
		if i == n-1 {
			hi = len(frames)
		}
		region := hi - lo
		s := &shard{
			id:        i,
			mu:        new(sync2.HybridLock),
			lo:        lo,
			hi:        hi,
			hand:      lo,
			lowWater:  max(1, region/16),
			highWater: max(2, region/8),
		}
		if freeLists {
			for idx := hi - 1; idx >= lo; idx-- {
				frames[idx].pin.tryFreeze()
				s.free = append(s.free, uint32(idx))
			}
			s.nfree.Store(int32(len(s.free)))
		}
		shards[i] = s
	}
	return shards
}

// popFree removes one pre-evicted frame from s's free list. The frame
// comes back frozen, clean, unmapped, and unlatched.
func (s *shard) popFree() (uint32, bool) {
	if s.nfree.Load() == 0 {
		return 0, false
	}
	s.freeMu.Lock()
	n := len(s.free)
	if n == 0 {
		s.freeMu.Unlock()
		return 0, false
	}
	idx := s.free[n-1]
	s.free = s.free[:n-1]
	s.nfree.Store(int32(n - 1))
	s.freeMu.Unlock()
	return idx, true
}

// pushFree returns a frozen, clean, unmapped, unlatched frame to s's
// free list.
func (s *shard) pushFree(idx uint32) {
	s.freeMu.Lock()
	s.free = append(s.free, idx)
	s.nfree.Store(int32(len(s.free)))
	s.freeMu.Unlock()
}

// homeShard hashes pid to its replacement shard.
func (p *Pool) homeShard(pid page.ID) *shard {
	if len(p.shards) == 1 {
		return p.shards[0]
	}
	h := uint64(pid) * 0x9e3779b97f4a7c15
	return p.shards[(h>>40)%uint64(len(p.shards))]
}

// shardOfFrame maps a frame index back to the shard owning its region.
func (p *Pool) shardOfFrame(idx uint32) *shard {
	i := int(idx) / p.shardBase
	if i >= len(p.shards) {
		i = len(p.shards) - 1
	}
	return p.shards[i]
}

// claimVictim runs s's clock hand until it claims one victim, returned
// frozen, EX-latched, unmapped, and clean. While the cleaner is running
// the first pass considers only clean frames — dirty victims are the
// cleaner's job, keeping write-back I/O off the miss path — and a second
// pass accepts dirty frames and writes them back inline, which keeps the
// pool correct when the cleaner is off or behind. errShardExhausted
// means every frame in the region is pinned or mid-transition.
func (p *Pool) claimVictim(s *shard) (*Frame, uint32, error) {
	s.mu.Lock()
	released := false
	unlock := func() {
		if !released {
			s.mu.Unlock()
			released = true
		}
	}
	defer unlock()
	region := s.hi - s.lo
	firstPass := 0
	if !p.freeLists || !p.cleaner.running.Load() {
		// Nobody to hand dirty frames to (or single-hand mode, where the
		// original design writes back inline): single pass, any victim.
		firstPass = 1
	}
	sawDirty := false
	for pass := firstPass; pass < 2; pass++ {
		for i := 0; i < 2*region; i++ {
			s.hand++
			if s.hand >= s.hi {
				s.hand = s.lo
			}
			f := p.frames[s.hand]
			s.scans.Add(1)
			if f.refbit.Swap(false) {
				continue // second chance
			}
			if f.pin.get() != 0 {
				continue // pinned, or frozen (free-listed / mid-eviction)
			}
			if pass == 0 && f.Dirty() {
				sawDirty = true
				continue
			}
			if !f.pin.tryFreeze() {
				continue
			}
			f.latch.LatchEX()
			f.slotHint.Store(0)
			idx := uint32(s.hand)
			if p.opts.ClockHandRelease {
				// §7.6 carried over per shard: drop this region's hand
				// before any eviction I/O so sibling misses proceed.
				unlock()
			}
			if err := p.evictContents(f, s); err != nil {
				f.latch.UnlatchEX()
				f.pin.unfreezeTo(0)
				return nil, 0, err
			}
			unlock()
			return f, idx, nil
		}
		if pass == 0 {
			if !sawDirty {
				break // no dirty frames either; the region is pinned out
			}
			p.kickCleaner() // dirty backlog: get the cleaner onto this region
		}
	}
	return nil, 0, errShardExhausted
}

// claimFree pops a frame from s's free list and EX-latches it (never
// blocks: the frame is frozen, and taking the latch bumps the version so
// optimistic readers of the previous occupant fail validation).
func (p *Pool) claimFree(s *shard) (*Frame, uint32, bool) {
	idx, ok := s.popFree()
	if !ok {
		return nil, 0, false
	}
	f := p.frames[idx]
	f.latch.LatchEX()
	return f, idx, true
}

// freeFrozen returns a frozen, clean, unmapped, unlatched frame to
// circulation: the shard free list, or — single-hand mode — the clock.
func (p *Pool) freeFrozen(f *Frame, idx uint32) {
	if p.freeLists {
		p.shardOfFrame(idx).pushFree(idx)
	} else {
		f.pin.unfreezeTo(0)
	}
}

// releaseFreeFrame returns a claimed-but-unused frame (frozen,
// EX-latched, clean, unmapped) to circulation.
func (p *Pool) releaseFreeFrame(f *Frame, idx uint32) {
	f.latch.UnlatchEX()
	p.freeFrozen(f, idx)
}

// retireFailedLoad dumps a frame whose load failed after its pin was
// published (pin == 1, EX latch held, pid possibly visible): the
// identity clears under the EX latch, the latch drops so any visitor
// blocked on it can run its post-latch ID re-check and leave, the
// loader's pin waits out those transient visitors into the frozen
// state, and the frame returns to circulation. The latch MUST drop
// before the pin wait: a visitor that pinned and passed the pre-latch
// ID check is blocked on this very latch, and waiting for its unpin
// while holding the latch would deadlock.
func (p *Pool) retireFailedLoad(f *Frame, idx uint32) {
	f.pid.Store(0)
	f.latch.UnlatchEX()
	f.pin.freezeFromOne()
	p.freeFrozen(f, idx)
}
