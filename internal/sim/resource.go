package sim

// Synchronization resources with per-primitive waiting and hand-off
// models. All costs are virtual nanoseconds, chosen to match the relative
// magnitudes the paper's era reports (and the qualitative behaviour its
// Figure 6 demonstrates):
//
//   - uncontended atomic RMW ≈ 50ns on Niagara-class hardware;
//   - TATAS hand-off suffers a coherence storm: every spinner's cache line
//     invalidation costs ~60ns, so hand-off grows linearly with spinners —
//     "fail[s] miserably on high contention" (§4);
//   - T&T&S spins on a read-shared line, so only the winner pays the RMW
//     storm (smaller per-spinner coefficient);
//   - MCS hands off through a private cache line: constant ~200ns
//     regardless of queue depth, but a higher uncontended overhead — "the
//     most scalable synchronization primitives tend to also have the
//     highest overhead" (§6.1);
//   - pthread-style blocking mutexes deschedule waiters (freeing the
//     hardware context) but pay a ~8µs context-switch on wake-up.
type MutexKind int

// Mutex kinds.
const (
	KindTAS MutexKind = iota
	KindTATAS
	KindMCS
	KindTicket
	KindBlocking
	KindHybrid // spin briefly, then block (used for the tuned engine)
)

// String names the kind.
func (k MutexKind) String() string {
	switch k {
	case KindTAS:
		return "tas"
	case KindTATAS:
		return "tatas"
	case KindMCS:
		return "mcs"
	case KindTicket:
		return "ticket"
	case KindBlocking:
		return "blocking"
	case KindHybrid:
		return "hybrid"
	default:
		return "unknown"
	}
}

// Cost model (virtual ns).
const (
	costAtomicRMW     = 50.0
	costTASHandPer    = 300.0 // per-spinner hand-off penalty (storm)
	costTATASHandPer  = 120.0 // reduced storm: spinners read a shared line
	costMCSHandoff    = 200.0
	costMCSOverhead   = 120.0 // uncontended MCS is pricier than TAS
	costTicketHandPer = 25.0
	costCtxSwitch     = 8000.0
	costFutexWake     = 1500.0
	hybridSpinBudget  = 2000.0 // ns of spinning before a hybrid blocks
)

// Mutex is a simulated mutual-exclusion resource.
type Mutex struct {
	kind    MutexKind
	holder  *vthread
	queue   []*vthread // waiters, FIFO arrival order
	heldAt  float64
	stats   WaitStats
	blocked map[int]bool // waiter id → descheduled (vs spinning)
}

// NewMutex registers a named mutex of the given kind.
func (s *Sim) NewMutex(name string, kind MutexKind) *Mutex {
	m := &Mutex{kind: kind, blocked: make(map[int]bool)}
	m.stats.Name = name
	s.mutexes = append(s.mutexes, m)
	return m
}

// spins reports whether a waiter of this kind burns CPU while waiting.
func (m *Mutex) spins(t *vthread, s *Sim) bool {
	switch m.kind {
	case KindBlocking:
		return false
	case KindHybrid:
		// Spin-then-block: model as spinning while the expected wait is
		// short (few waiters), blocking otherwise.
		return len(m.queue) == 0
	default:
		return true
	}
}

// acquireCost returns the CPU cost charged to the new owner at hand-off,
// given how many other threads were spin-waiting.
func (m *Mutex) acquireCost(spinners int, wasContended bool) float64 {
	switch m.kind {
	case KindTAS:
		if wasContended {
			return costAtomicRMW + costTASHandPer*float64(spinners)
		}
		return costAtomicRMW
	case KindTATAS:
		if wasContended {
			return costAtomicRMW + costTATASHandPer*float64(spinners)
		}
		return costAtomicRMW
	case KindTicket:
		if wasContended {
			return costAtomicRMW + costTicketHandPer*float64(spinners)
		}
		return costAtomicRMW
	case KindMCS:
		if wasContended {
			return costMCSOverhead + costMCSHandoff
		}
		return costMCSOverhead
	case KindBlocking:
		if wasContended {
			return costCtxSwitch
		}
		return costAtomicRMW * 2 // futex fast path
	case KindHybrid:
		if wasContended {
			return costAtomicRMW + costTATASHandPer*float64(spinners)
		}
		return costAtomicRMW
	default:
		return costAtomicRMW
	}
}

// Lock acquires m, waiting per the primitive's discipline.
func (c *Ctx) Lock(m *Mutex) {
	c.t.req <- request{kind: opLock, res: m}
	<-c.t.resume
}

// Unlock releases m.
func (c *Ctx) Unlock(m *Mutex) {
	c.t.req <- request{kind: opUnlock, res: m}
	<-c.t.resume
}

// lockAcquire processes a lock request; returns false when the thread
// must wait (its op completes later at hand-off).
func (s *Sim) lockAcquire(t *vthread, m *Mutex) bool {
	m.stats.Acquires++
	if m.holder == nil && len(m.queue) == 0 {
		m.holder = t
		m.heldAt = s.now
		s.grantWork(t, m.acquireCost(0, false))
		return false // completes when the (tiny) acquire work finishes
	}
	m.stats.Contended++
	t.waitMutex = m
	t.waitStart = s.now
	m.queue = append(m.queue, t)
	if m.spins(t, s) {
		t.state = stateSpinning
		m.blocked[t.id] = false
	} else {
		t.state = stateBlocked
		m.blocked[t.id] = true
	}
	return false
}

// lockRelease hands the mutex to the next waiter.
func (s *Sim) lockRelease(t *vthread, m *Mutex) {
	if m.holder != t {
		panic("sim: unlock by non-holder")
	}
	m.stats.HoldNs += s.now - m.heldAt
	m.holder = nil
	if len(m.queue) == 0 {
		return
	}
	// FIFO hand-off (even TAS is roughly fair over time; modelling random
	// victory would break determinism for no shape benefit).
	next := m.queue[0]
	m.queue = m.queue[1:]
	wasBlocked := m.blocked[next.id]
	delete(m.blocked, next.id)
	spinners := 0
	for _, w := range m.queue {
		if !m.blocked[w.id] {
			spinners++
		}
	}
	wait := s.now - next.waitStart
	m.stats.WaitNs += wait
	if !wasBlocked {
		m.stats.SpinWasted += wait
	}
	next.waitMutex = nil
	m.holder = next
	m.heldAt = s.now
	cost := m.acquireCost(spinners, true)
	if wasBlocked {
		cost = costCtxSwitch
		// The releaser pays to wake the sleeper — and heavily-contended
		// pthread-style mutexes additionally thrash the scheduler in
		// proportion to the wait queue (futex herd / convoy behaviour):
		// this is what makes the paper's baseline *lose* throughput as
		// threads are added rather than merely plateau.
		blockedWaiters := 0
		for _, w := range m.queue {
			if m.blocked[w.id] {
				blockedWaiters++
			}
		}
		t.remaining += costFutexWake * float64(1+blockedWaiters)
	}
	s.grantWork(next, cost)
}

// Latch -----------------------------------------------------------------

// LatchMode mirrors the storage manager's SH/EX latch modes.
type LatchMode int

// Latch modes.
const (
	SH LatchMode = iota
	EX
)

// Latch is a reader-writer latch (spinning waiters, writer-preferring).
type Latch struct {
	readers int
	writer  *vthread
	queue   []latchWaiter // FIFO
	stats   WaitStats
	heldAt  float64
}

type latchWaiter struct {
	t    *vthread
	mode LatchMode
}

// NewLatch registers a named reader-writer latch.
func (s *Sim) NewLatch(name string) *Latch {
	l := &Latch{}
	l.stats.Name = name
	s.latches = append(s.latches, l)
	return l
}

// Latch acquires l in mode.
func (c *Ctx) Latch(l *Latch, mode LatchMode) {
	c.t.req <- request{kind: opLatch, latch: l, mode: mode}
	<-c.t.resume
}

// Unlatch releases l from mode.
func (c *Ctx) Unlatch(l *Latch, mode LatchMode) {
	c.t.req <- request{kind: opUnlatch, latch: l, mode: mode}
	<-c.t.resume
}

func (l *Latch) grantable(mode LatchMode) bool {
	if mode == SH {
		return l.writer == nil && len(l.queue) == 0
	}
	return l.writer == nil && l.readers == 0
}

func (s *Sim) latchAcquire(t *vthread, l *Latch, mode LatchMode) bool {
	l.stats.Acquires++
	if l.grantable(mode) {
		if mode == SH {
			l.readers++
		} else {
			l.writer = t
		}
		if l.readers+boolToInt(l.writer != nil) == 1 {
			l.heldAt = s.now
		}
		s.grantWork(t, costAtomicRMW)
		return false
	}
	l.stats.Contended++
	t.waitLatch = l
	t.waitMode = mode
	t.waitStart = s.now
	t.state = stateSpinning // latches spin
	l.queue = append(l.queue, latchWaiter{t: t, mode: mode})
	return false
}

func (s *Sim) latchRelease(t *vthread, l *Latch, mode LatchMode) {
	if mode == SH {
		l.readers--
	} else {
		if l.writer != t {
			panic("sim: unlatch EX by non-writer")
		}
		l.writer = nil
	}
	if l.readers == 0 && l.writer == nil {
		l.stats.HoldNs += s.now - l.heldAt
	}
	// Grant from the queue head: a writer alone, or a run of readers.
	for len(l.queue) > 0 {
		w := l.queue[0]
		if w.mode == EX {
			if l.readers != 0 || l.writer != nil {
				break
			}
			l.queue = l.queue[1:]
			l.writer = w.t
			l.heldAt = s.now
			l.stats.WaitNs += s.now - w.t.waitStart
			l.stats.SpinWasted += s.now - w.t.waitStart
			w.t.waitLatch = nil
			s.grantWork(w.t, costAtomicRMW+costTATASHandPer)
			break
		}
		if l.writer != nil {
			break
		}
		l.queue = l.queue[1:]
		l.readers++
		if l.readers == 1 && l.writer == nil {
			l.heldAt = s.now
		}
		l.stats.WaitNs += s.now - w.t.waitStart
		l.stats.SpinWasted += s.now - w.t.waitStart
		w.t.waitLatch = nil
		s.grantWork(w.t, costAtomicRMW+costTATASHandPer)
	}
}

// Semaphore ---------------------------------------------------------------

// Semaphore is a counting admission gate with blocking waiters — the
// model of InnoDB's srv_conc_enter_innodb throttle.
type Semaphore struct {
	capacity int
	inUse    int
	queue    []*vthread
	stats    WaitStats
}

// NewSemaphore registers a named counting semaphore.
func (s *Sim) NewSemaphore(name string, capacity int) *Semaphore {
	sem := &Semaphore{capacity: capacity}
	sem.stats.Name = name
	s.sems = append(s.sems, sem)
	return sem
}

// Acquire takes one slot, blocking (descheduled) when full.
func (c *Ctx) Acquire(sem *Semaphore) {
	c.t.req <- request{kind: opSemAcquire, sem: sem}
	<-c.t.resume
}

// TryAcquire takes a slot only if one is free, reporting success. It
// models sleep-and-retry admission gates (InnoDB's srv_conc_enter with
// innodb_thread_sleep_delay), whose slots sit idle while rejected threads
// sleep — the mechanism behind MySQL's throughput *drop* under
// oversubscription rather than a mere plateau.
func (c *Ctx) TryAcquire(sem *Semaphore) bool {
	c.t.req <- request{kind: opSemTry, sem: sem}
	ok := <-c.t.nowOut // 1 = acquired
	<-c.t.resume
	return ok != 0
}

// Release returns one slot.
func (c *Ctx) Release(sem *Semaphore) {
	c.t.req <- request{kind: opSemRelease, sem: sem}
	<-c.t.resume
}

func (s *Sim) semAcquire(t *vthread, sem *Semaphore) bool {
	sem.stats.Acquires++
	if sem.inUse < sem.capacity && len(sem.queue) == 0 {
		sem.inUse++
		s.grantWork(t, costAtomicRMW*2)
		return false
	}
	sem.stats.Contended++
	t.waitSem = sem
	t.waitStart = s.now
	t.state = stateBlocked
	sem.queue = append(sem.queue, t)
	return false
}

func (s *Sim) semRelease(t *vthread, sem *Semaphore) {
	sem.inUse--
	if len(sem.queue) == 0 {
		return
	}
	next := sem.queue[0]
	sem.queue = sem.queue[1:]
	sem.inUse++
	sem.stats.WaitNs += s.now - next.waitStart
	next.waitSem = nil
	// Admission costs a context switch plus scheduler thrash proportional
	// to the run queue it wades through — the oversubscription overhead
	// that turns an admission-gated engine's curve from a plateau into a
	// decline (MySQL in Figures 1 and 4).
	s.grantWork(next, costCtxSwitch+1.5*costFutexWake*float64(len(sem.queue)))
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
