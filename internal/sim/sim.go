// Package sim is a deterministic discrete-event simulator of threads
// contending for synchronization resources on a Niagara-like chip
// (8 in-order cores × 4 hardware threads). It exists because the paper's
// figures are *queueing* claims — how throughput scales when 1..32
// hardware contexts hammer the storage manager's critical sections — and
// this host has a single CPU whose Go runtime (GC, preemption, no thread
// pinning) obscures latch-level behaviour (see DESIGN.md's substitution
// table).
//
// Virtual threads are goroutines executing arbitrary Go scripts against a
// virtual clock; only one runs at a time and hand-off is synchronous, so
// results are bit-for-bit deterministic. The processor model captures the
// two effects the figures depend on:
//
//   - hardware-context sharing: k active threads on one core each run at
//     rate min(1, C/k), with C ≈ 3.2 thread-equivalents modelling the
//     latency-hiding of fine-grained multithreading (the paper's "threads
//     contend for hardware resources within the processor itself");
//   - waiting discipline: spinning waiters stay *active* (stealing issue
//     slots from their core-mates) while blocked waiters sleep, and lock
//     hand-off costs differ per primitive (TATAS pays a coherence storm
//     proportional to the number of spinners; MCS pays a constant local
//     hand-off; pthread-style mutexes pay a context-switch wakeup).
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Chip describes the simulated processor.
type Chip struct {
	Cores          int
	ThreadsPerCore int
	// IssueCapacity is per-core capacity in thread-equivalents: with k
	// active threads on a core each runs at min(1, IssueCapacity/k).
	IssueCapacity float64
}

// Niagara returns the Sun T2000 model used throughout the paper.
func Niagara() Chip {
	return Chip{Cores: 8, ThreadsPerCore: 4, IssueCapacity: 3.2}
}

// threadState is a virtual thread's scheduling state.
type threadState int

const (
	stateRunning  threadState = iota // consuming CPU, finishing a work quantum
	stateSpinning                    // busy-waiting on a resource (consumes CPU)
	stateBlocked                     // descheduled (lock queue or sleep)
	stateDone                        // script finished
)

// opKind tags script → scheduler requests.
type opKind int

const (
	opWork opKind = iota
	opSleep
	opLock
	opUnlock
	opLatch
	opUnlatch
	opSemAcquire
	opSemTry
	opSemRelease
	opNowRead
)

type request struct {
	kind  opKind
	ns    float64
	res   *Mutex
	latch *Latch
	mode  LatchMode
	sem   *Semaphore
}

// vthread is one simulated thread.
type vthread struct {
	id    int
	core  int
	state threadState

	remaining float64 // work left at rate 1 (running)
	wakeAt    float64 // absolute deadline (sleeping timers)
	sleeping  bool

	waitMutex *Mutex
	waitLatch *Latch
	waitMode  LatchMode
	waitSem   *Semaphore
	waitStart float64

	req    chan request
	resume chan struct{}
	nowOut chan float64
}

// Ctx is the script-facing API of a virtual thread.
type Ctx struct {
	t *vthread
	s *Sim
}

// ID returns the virtual thread id (0-based).
func (c *Ctx) ID() int { return c.t.id }

// Work consumes ns nanoseconds of CPU at full rate (longer if the core is
// shared).
func (c *Ctx) Work(ns float64) {
	if ns <= 0 {
		return
	}
	c.t.req <- request{kind: opWork, ns: ns}
	<-c.t.resume
}

// Sleep deschedules the thread for ns nanoseconds of wall-clock (virtual)
// time — e.g. an I/O wait. It does not consume CPU.
func (c *Ctx) Sleep(ns float64) {
	if ns <= 0 {
		return
	}
	c.t.req <- request{kind: opSleep, ns: ns}
	<-c.t.resume
}

// Now returns the current virtual time in nanoseconds.
func (c *Ctx) Now() float64 {
	c.t.req <- request{kind: opNowRead}
	now := <-c.t.nowOut
	<-c.t.resume
	return now
}

// Sim is the simulator.
type Sim struct {
	chip    Chip
	now     float64
	threads []*vthread
	timeUp  float64
	mutexes []*Mutex
	latches []*Latch
	sems    []*Semaphore
}

// New creates a simulator for the given chip.
func New(chip Chip) *Sim {
	if chip.Cores <= 0 {
		chip = Niagara()
	}
	return &Sim{chip: chip}
}

// Script is a virtual thread body. It runs until it returns; use
// ctx.Now() against the deadline passed to Run for time-bounded loops.
type Script func(ctx *Ctx)

// Spawn adds a virtual thread running script. Threads are assigned to
// cores round-robin (thread i → core i%Cores), as an OS would spread
// runnable threads.
func (s *Sim) Spawn(script Script) {
	t := &vthread{
		id:     len(s.threads),
		core:   len(s.threads) % s.chip.Cores,
		req:    make(chan request),
		resume: make(chan struct{}),
		nowOut: make(chan float64),
	}
	s.threads = append(s.threads, t)
	go func() {
		ctx := &Ctx{t: t, s: s}
		script(ctx)
		close(t.req)
	}()
}

// rate returns thread t's current execution rate (0..1).
func (s *Sim) rate(t *vthread) float64 {
	active := 0
	for _, u := range s.threads {
		if u.core == t.core && (u.state == stateRunning || u.state == stateSpinning) {
			active++
		}
	}
	if active == 0 {
		return 1
	}
	return math.Min(1, s.chip.IssueCapacity/float64(active))
}

// Run executes the simulation until virtual time reaches horizon (ns).
// It must be called once, after all Spawns.
func (s *Sim) Run(horizon float64) {
	s.timeUp = horizon
	// Collect each thread's first request.
	for _, t := range s.threads {
		s.receive(t)
	}
	for s.now < horizon {
		// Find the next completion among running threads and timers.
		bestT := -1
		bestTime := math.Inf(1)
		for _, t := range s.threads {
			var at float64
			switch {
			case t.state == stateRunning && t.sleeping:
				at = t.wakeAt
			case t.state == stateRunning:
				r := s.rate(t)
				at = s.now + t.remaining/r
			case t.state == stateBlocked && t.sleeping:
				at = t.wakeAt
			default:
				continue
			}
			if at < bestTime {
				bestTime = at
				bestT = t.id
			}
		}
		if bestT < 0 {
			// Everything is done or deadlocked-in-model; stop.
			return
		}
		if bestTime > horizon {
			s.now = horizon
			return
		}
		// Advance work of all running threads to bestTime.
		for _, t := range s.threads {
			if t.state == stateRunning && !t.sleeping {
				t.remaining -= (bestTime - s.now) * s.rate(t)
				if t.remaining < 1e-9 {
					t.remaining = 0
				}
			}
		}
		s.now = bestTime
		t := s.threads[bestT]
		t.sleeping = false
		// The thread's current quantum is complete: resume its script and
		// accept its next request.
		t.state = stateRunning
		t.remaining = 0
		t.resume <- struct{}{}
		s.receive(t)
	}
}

// receive accepts and processes thread t's next request; t stays parked
// until the request completes.
func (s *Sim) receive(t *vthread) {
	for {
		req, ok := <-t.req
		if !ok {
			t.state = stateDone
			return
		}
		switch req.kind {
		case opNowRead:
			t.nowOut <- s.now
			t.resume <- struct{}{}
			continue // script continues synchronously; take its next op
		case opWork:
			t.state = stateRunning
			t.remaining = req.ns
			return
		case opSleep:
			t.state = stateBlocked
			t.sleeping = true
			t.wakeAt = s.now + req.ns
			return
		case opLock:
			if s.lockAcquire(t, req.res) {
				continue // granted synchronously with injected cost? no: cost injected as running
			}
			return
		case opUnlock:
			s.lockRelease(t, req.res)
			t.resume <- struct{}{}
			continue
		case opLatch:
			if s.latchAcquire(t, req.latch, req.mode) {
				continue
			}
			return
		case opUnlatch:
			s.latchRelease(t, req.latch, req.mode)
			t.resume <- struct{}{}
			continue
		case opSemAcquire:
			if s.semAcquire(t, req.sem) {
				continue
			}
			return
		case opSemTry:
			sem := req.sem
			sem.stats.Acquires++
			if sem.inUse < sem.capacity && len(sem.queue) == 0 {
				sem.inUse++
				t.nowOut <- 1
			} else {
				sem.stats.Contended++
				t.nowOut <- 0
			}
			t.resume <- struct{}{}
			continue
		case opSemRelease:
			s.semRelease(t, req.sem)
			t.resume <- struct{}{}
			continue
		default:
			panic(fmt.Sprintf("sim: unknown op %d", req.kind))
		}
	}
}

// grantWork injects ns of CPU work into t representing acquisition cost;
// when it completes, t's pending op finishes and its script resumes.
func (s *Sim) grantWork(t *vthread, ns float64) {
	t.state = stateRunning
	t.remaining = ns
	if ns <= 0 {
		t.remaining = 1 // epsilon to keep event ordering strict
	}
}

// Results ------------------------------------------------------------------

// WaitStats describes one resource's observed contention.
type WaitStats struct {
	Name       string
	Acquires   uint64
	Contended  uint64
	WaitNs     float64 // total time threads spent waiting
	HoldNs     float64 // total time the resource was held
	SpinWasted float64 // CPU-time burned spinning
}

// Profile returns per-resource wait statistics sorted by total wait time —
// the simulator's analogue of the paper's `collect` profiles in §4.
func (s *Sim) Profile() []WaitStats {
	var out []WaitStats
	for _, m := range s.mutexes {
		out = append(out, m.stats)
	}
	for _, l := range s.latches {
		out = append(out, l.stats)
	}
	for _, sem := range s.sems {
		out = append(out, sem.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WaitNs > out[j].WaitNs })
	return out
}

// Now returns the final virtual time after Run.
func (s *Sim) Now() float64 { return s.now }
