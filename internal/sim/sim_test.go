package sim

import (
	"testing"
)

const ms = 1e6 // virtual nanoseconds per millisecond

// countTx runs n threads of script for horizon and returns committed
// counts per thread (scripts increment their own slot).
func runCounting(chip Chip, n int, horizon float64, body func(ctx *Ctx, commit func())) []int {
	s := New(chip)
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		s.Spawn(func(ctx *Ctx) {
			commit := func() { counts[i]++ }
			body(ctx, commit)
		})
	}
	s.Run(horizon)
	return counts
}

func total(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

// pureComputeScript: no shared resources at all.
func pureCompute(ctx *Ctx, commit func()) {
	for ctx.Now() < 10*ms {
		ctx.Work(1000)
		commit()
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ([]int, float64) {
		s := New(Niagara())
		m := s.NewMutex("m", KindTATAS)
		counts := make([]int, 8)
		for i := 0; i < 8; i++ {
			i := i
			s.Spawn(func(ctx *Ctx) {
				for ctx.Now() < 5*ms {
					ctx.Work(500)
					ctx.Lock(m)
					ctx.Work(200)
					ctx.Unlock(m)
					counts[i]++
				}
			})
		}
		s.Run(5 * ms)
		return counts, s.Profile()[0].WaitNs
	}
	a, aw := run()
	b, bw := run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic counts: %v vs %v", a, b)
		}
	}
	if aw != bw {
		t.Fatalf("nondeterministic wait stats: %v vs %v", aw, bw)
	}
}

func TestPureComputeScalesLinearlyToCores(t *testing.T) {
	t1 := total(runCounting(Niagara(), 1, 10*ms, pureCompute))
	t8 := total(runCounting(Niagara(), 8, 10*ms, pureCompute))
	if t1 == 0 {
		t.Fatal("no work completed")
	}
	sp := float64(t8) / float64(t1)
	if sp < 7.5 || sp > 8.5 {
		t.Fatalf("8-thread speedup = %.2f, want ~8 (one thread per core)", sp)
	}
}

func TestSMTSharingSlowsCoResidents(t *testing.T) {
	// 32 threads on 8 cores with capacity 3.2: aggregate ≈ 8*3.2 = 25.6x.
	t1 := total(runCounting(Niagara(), 1, 10*ms, pureCompute))
	t32 := total(runCounting(Niagara(), 32, 10*ms, pureCompute))
	sp := float64(t32) / float64(t1)
	if sp < 23 || sp > 28 {
		t.Fatalf("32-thread speedup = %.2f, want ~25.6 (SMT sharing)", sp)
	}
}

func TestSerialSectionLimitsThroughput(t *testing.T) {
	// 50% of each transaction inside one mutex: Amdahl caps speedup at ~2.
	script := func(m *Mutex) func(ctx *Ctx, commit func()) {
		return func(ctx *Ctx, commit func()) {
			for ctx.Now() < 10*ms {
				ctx.Work(1000)
				ctx.Lock(m)
				ctx.Work(1000)
				ctx.Unlock(m)
				commit()
			}
		}
	}
	run := func(n int) int {
		s := New(Niagara())
		m := s.NewMutex("serial", KindMCS)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			body := script(m)
			s.Spawn(func(ctx *Ctx) { body(ctx, func() { counts[i]++ }) })
		}
		s.Run(10 * ms)
		return total(counts)
	}
	t1 := run(1)
	t16 := run(16)
	sp := float64(t16) / float64(t1)
	if sp > 2.5 {
		t.Fatalf("speedup %.2f exceeds Amdahl bound ~2 for 50%% serial fraction", sp)
	}
	if sp < 1.2 {
		t.Fatalf("speedup %.2f shows no benefit at all", sp)
	}
}

func TestTATASCollapsesVsMCSScales(t *testing.T) {
	// Short critical section, high contention: TATAS hand-off cost grows
	// with spinner count; MCS stays constant. At 32 threads MCS must beat
	// TATAS.
	run := func(kind MutexKind, n int) int {
		s := New(Niagara())
		m := s.NewMutex("hot", kind)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(func(ctx *Ctx) {
				for ctx.Now() < 10*ms {
					ctx.Work(2000)
					ctx.Lock(m)
					ctx.Work(300)
					ctx.Unlock(m)
					counts[i]++
				}
			})
		}
		s.Run(10 * ms)
		return total(counts)
	}
	tatas32 := run(KindTATAS, 32)
	mcs32 := run(KindMCS, 32)
	if mcs32 <= tatas32 {
		t.Fatalf("MCS (%d) should beat TATAS (%d) at 32 threads on a hot lock", mcs32, tatas32)
	}
	// And at 1 thread, the cheap lock should win (lower overhead).
	tatas1 := run(KindTATAS, 1)
	mcs1 := run(KindMCS, 1)
	if tatas1 < mcs1 {
		t.Fatalf("TATAS (%d) should beat MCS (%d) single-threaded", tatas1, mcs1)
	}
}

func TestBlockingFreesCPUForOthers(t *testing.T) {
	// Two groups on the same cores: group A fights over one mutex, group B
	// computes independently. With a blocking mutex, A's waiters free the
	// core for B; with spinning TAS they steal it. B must do more work
	// under the blocking variant.
	run := func(kind MutexKind) int {
		s := New(Chip{Cores: 1, ThreadsPerCore: 4, IssueCapacity: 1})
		m := s.NewMutex("gate", kind)
		bCount := 0
		for i := 0; i < 3; i++ {
			s.Spawn(func(ctx *Ctx) {
				for ctx.Now() < 10*ms {
					ctx.Lock(m)
					ctx.Work(20000)
					ctx.Unlock(m)
				}
			})
		}
		s.Spawn(func(ctx *Ctx) {
			for ctx.Now() < 10*ms {
				ctx.Work(1000)
				bCount++
			}
		})
		s.Run(10 * ms)
		return bCount
	}
	spin := run(KindTAS)
	block := run(KindBlocking)
	if block <= spin {
		t.Fatalf("independent thread did %d work with blocking vs %d with spinning; blocking should free the core", block, spin)
	}
}

func TestLatchSharedReadersParallel(t *testing.T) {
	// SH holders proceed together; EX serializes.
	run := func(mode LatchMode, n int) int {
		s := New(Niagara())
		l := s.NewLatch("page")
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(func(ctx *Ctx) {
				for ctx.Now() < 10*ms {
					ctx.Latch(l, mode)
					ctx.Work(1000)
					ctx.Unlatch(l, mode)
					counts[i]++
				}
			})
		}
		s.Run(10 * ms)
		return total(counts)
	}
	sh := run(SH, 8)
	ex := run(EX, 8)
	if sh < 3*ex {
		t.Fatalf("8 SH readers (%d) should far outpace 8 EX writers (%d)", sh, ex)
	}
}

func TestSemaphoreAdmissionGate(t *testing.T) {
	// Capacity 2 gate: >2 threads gain nothing.
	run := func(n int) int {
		s := New(Niagara())
		sem := s.NewSemaphore("admission", 2)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			s.Spawn(func(ctx *Ctx) {
				for ctx.Now() < 10*ms {
					ctx.Acquire(sem)
					ctx.Work(5000)
					ctx.Release(sem)
					counts[i]++
				}
			})
		}
		s.Run(10 * ms)
		return total(counts)
	}
	t2 := run(2)
	t16 := run(16)
	if float64(t16) > float64(t2)*1.25 {
		t.Fatalf("gate capacity 2 but 16 threads did %d vs %d at 2 threads", t16, t2)
	}
}

func TestSleepDoesNotConsumeCPU(t *testing.T) {
	// A sleeping thread must not slow a computing core-mate.
	s := New(Chip{Cores: 1, ThreadsPerCore: 2, IssueCapacity: 1})
	count := 0
	s.Spawn(func(ctx *Ctx) {
		for ctx.Now() < 10*ms {
			ctx.Sleep(1000)
		}
	})
	s.Spawn(func(ctx *Ctx) {
		for ctx.Now() < 10*ms {
			ctx.Work(1000)
			count++
		}
	})
	s.Run(10 * ms)
	// Full-rate compute: ~10000 iterations minus scheduling epsilon.
	if count < 9000 {
		t.Fatalf("computing thread did %d iterations; sleeper stole CPU", count)
	}
}

func TestProfileReportsContention(t *testing.T) {
	s := New(Niagara())
	hot := s.NewMutex("hot", KindTATAS)
	cold := s.NewMutex("cold", KindTATAS)
	for i := 0; i < 8; i++ {
		s.Spawn(func(ctx *Ctx) {
			for ctx.Now() < 5*ms {
				ctx.Lock(hot)
				ctx.Work(500)
				ctx.Unlock(hot)
				ctx.Lock(cold)
				ctx.Unlock(cold)
				ctx.Work(100)
			}
		})
	}
	s.Run(5 * ms)
	prof := s.Profile()
	if len(prof) != 2 {
		t.Fatalf("profile has %d entries", len(prof))
	}
	if prof[0].Name != "hot" {
		t.Fatalf("hottest resource = %s, want hot", prof[0].Name)
	}
	if prof[0].WaitNs == 0 || prof[0].Contended == 0 {
		t.Fatalf("hot mutex shows no contention: %+v", prof[0])
	}
	if prof[0].HoldNs == 0 {
		t.Fatal("hold time not recorded")
	}
}
