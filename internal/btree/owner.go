package btree

import (
	"bytes"
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/sync2"
)

// Partition-owner operations (PLP). A physiologically partitioned index
// gives each DORA partition its own segment tree, and the owning
// partition goroutine is the only writer that ever mutates it. The
// Owner* entry points exploit that: reads and scans run entirely on
// speculative page images — no pin, no latch, no shared-memory write —
// and write descents cross the inner levels the same way, fixing only
// the target leaf in EX. That single-leaf EX "write fence" is the one
// latch a mutation keeps, and it exists for the engine's other
// contracts, not for tree consistency: the page cleaner reads page
// bytes under SH while flushing, and snapshot readers validate their
// optimistic copies against the frame's latch version word, so an
// unfenced in-place write would tear both.
//
// Validation on the owner path cannot fail while the single-writer
// discipline holds (nobody else bumps the segment's frame versions),
// so the optimistic reads complete first try; it is kept anyway so the
// operations stay correct even when a non-owner thread writes the
// segment (recovery undo, cross-partition inserts routed through the
// logical lock protocol) — such writers are fenced by the same EX
// latch the owner's own mutations use. Fallbacks to the classic
// latched path (cold pages, bounded validation failures) are counted
// in OwnerFallbacks rather than hidden.

// SearchOwner is the owner-path point read: the whole probe runs on
// validated speculative images with no pin and no latch. Without an
// OptEnv it degrades to the latched Search.
func (t *Tree) SearchOwner(key []byte) ([]byte, bool, error) {
	if t.opt == nil {
		return t.Search(key)
	}
	if err := checkKV(key, nil); err != nil {
		return nil, false, err
	}
	for attempt := 0; attempt < maxOptRestarts; attempt++ {
		val, found, ok, err := t.searchOptOnce(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			t.stats.OwnerReads.Add(1)
			return val, found, nil
		}
	}
	t.stats.OwnerFallbacks.Add(1)
	return t.Search(key)
}

// InsertOwner is Insert on the owner path: latch-free descent, single
// leaf EX write fence, logical undo.
func (t *Tree) InsertOwner(txID uint64, key, value []byte) error {
	return t.insert(txID, key, value, true, true)
}

// UpdateOwner is Update on the owner path.
func (t *Tree) UpdateOwner(txID uint64, key, value []byte) error {
	return t.update(txID, key, value, true, true)
}

// DeleteOwner is Delete on the owner path.
func (t *Tree) DeleteOwner(txID uint64, key []byte) ([]byte, error) {
	return t.delete(txID, key, true, true)
}

// descendForWrite picks the descent for a mutation: the shared-tree
// path counts in descendToLeaf as usual; the owner path crosses inner
// levels on speculative images (counted separately so the latch-bypass
// invariant is observable) and only the leaf is fixed EX.
func (t *Tree) descendForWrite(owner bool, key []byte) (*buffer.Frame, nodeHeader, []page.ID, error) {
	if !owner {
		return t.descendToLeaf(key, sync2.LatchEX)
	}
	if t.opt != nil {
		for attempt := 0; attempt < maxOptRestarts; attempt++ {
			f, hdr, path, ok, err := t.descendOpt(key, sync2.LatchEX)
			if err != nil {
				return nil, nodeHeader{}, nil, err
			}
			if ok {
				t.stats.OwnerDescents.Add(1)
				t.stats.OwnerWrites.Add(1)
				return f, hdr, path, nil
			}
		}
		t.stats.OwnerFallbacks.Add(1)
	}
	return t.descendLatched(key, sync2.LatchEX)
}

// ScanOwner iterates [from, to) like Scan, but each leaf is read as a
// validated speculative copy instead of under an SH latch: the entries
// in range are copied out, the image is validated, and only then are
// they emitted. A leaf that fails validation (or is not resident) is
// retried by re-descending to the first unemitted key; bounded
// failures per position fall back to the latched Scan for the
// remainder. Splits between leaf reads are benign: a validated copy is
// a consistent pre- or post-split image, and entries that moved right
// were either in the copy already or are reached through the (copied)
// right pointer. fn receives copies it may retain.
func (t *Tree) ScanOwner(from, to []byte, fn func(key, value []byte) bool) error {
	if t.opt == nil {
		return t.Scan(from, to, fn)
	}
	t.stats.OwnerScans.Add(1)
	lo := from
	if lo == nil {
		lo = []byte{0}
	}
	fails := 0
	for fails <= maxOptRestarts {
		pid, ok := t.leafPidOpt(lo)
		if !ok {
			fails++
			continue
		}
		// Walk the leaf chain from pid, emitting validated copies; a
		// failed leaf read breaks out to re-descend (the position in lo
		// is preserved, so nothing is skipped or re-emitted).
		for hop := 0; hop < maxOptHops; hop++ {
			pairs, right, done, ok, err := t.leafRangeOpt(pid, lo, to)
			if err != nil {
				return err
			}
			if !ok {
				fails++
				break
			}
			fails = 0
			for _, kv := range pairs {
				if !fn(kv[0], kv[1]) {
					return nil
				}
				// Next position: the emitted key's immediate successor.
				lo = append(append([]byte(nil), kv[0]...), 0)
			}
			if done || right == 0 {
				return nil
			}
			pid = right
		}
	}
	// Too much churn (a non-owner writer is active, or pages keep
	// leaving the pool): finish under latches from the last position.
	t.stats.OwnerFallbacks.Add(1)
	return t.Scan(lo, to, fn)
}

// leafPidOpt optimistically locates the leaf responsible for key,
// returning its page id. ok=false means a validation failed or a node
// was not cleanly readable.
func (t *Tree) leafPidOpt(key []byte) (page.ID, bool) {
	pid := t.root
	for hop := 0; hop < maxOptHops; hop++ {
		ref, got := t.opt.FixOpt(pid)
		if !got {
			return 0, false
		}
		next, _, leaf, _, err := nodeStep(ref.Page(), key)
		valid := t.opt.Validate(ref)
		t.opt.ReleaseOpt(ref)
		if !valid || err != nil {
			return 0, false
		}
		if leaf {
			return pid, true
		}
		pid = next
	}
	return 0, false
}

// leafRangeOpt copies every entry of leaf pid in [lo, hi) from a
// speculative image, returning the pairs, the right sibling, and done
// when hi was reached within the leaf. ok=false means the image failed
// validation (retry); errors were observed on validated reads.
func (t *Tree) leafRangeOpt(pid page.ID, lo, hi []byte) (pairs [][2][]byte, right page.ID, done, ok bool, err error) {
	ref, got := t.opt.FixOpt(pid)
	if !got {
		return nil, 0, false, false, nil
	}
	p := ref.Page()
	h, serr := peekHeader(p)
	if serr == nil && !h.isLeaf() {
		serr = fmt.Errorf("%w: scan reached a branch node", ErrCorruptNode)
	}
	if serr == nil && needsMoveRight(h, lo) {
		// The leaf split since we located it; chase the right pointer.
		right = h.right
		valid := t.opt.Validate(ref)
		t.opt.ReleaseOpt(ref)
		if !valid {
			return nil, 0, false, false, nil
		}
		if right == 0 {
			return nil, 0, false, false, fmt.Errorf("%w: high key without right sibling", ErrCorruptNode)
		}
		return nil, right, false, true, nil
	}
	if serr == nil {
		right = h.right
		var slot int
		slot, _, serr = searchEntries(p, lo)
		if serr == nil {
			n := numEntries(p)
			for ; slot <= n; slot++ {
				rec, rerr := p.Record(slot)
				if rerr != nil {
					serr = rerr
					break
				}
				k, v, derr := decodeLeafEntry(rec)
				if derr != nil {
					serr = derr
					break
				}
				if hi != nil && bytes.Compare(k, hi) >= 0 {
					done = true
					break
				}
				pairs = append(pairs, [2][]byte{
					append([]byte(nil), k...),
					append([]byte(nil), v...),
				})
			}
		}
	}
	valid := t.opt.Validate(ref)
	t.opt.ReleaseOpt(ref)
	if !valid {
		return nil, 0, false, false, nil
	}
	if serr != nil {
		return nil, 0, false, false, serr
	}
	return pairs, right, done, true, nil
}
