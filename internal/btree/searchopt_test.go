package btree

import (
	"bytes"
	"sync"
	"testing"
)

// TestSearchOptBasic: the pin-free probe returns exactly what the
// latched Search does, over a multi-level tree, and records its hits.
func TestSearchOptBasic(t *testing.T) {
	tr, _, stats := newOLCTree(t, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.SearchOpt(key(i))
		if err != nil || !ok {
			t.Fatalf("SearchOpt(%s) = %v, %v", key(i), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("SearchOpt(%s) = %q, want %q", key(i), v, val(i))
		}
	}
	for _, miss := range []string{"key", "zzz", "key99999999x"} {
		if _, ok, err := tr.SearchOpt([]byte(miss)); err != nil || ok {
			t.Fatalf("SearchOpt(%q) = %v, %v; want miss", miss, ok, err)
		}
	}
	s := stats.Snapshot()
	if s.OptLeafReads == 0 {
		t.Fatal("no pin-free leaf reads recorded")
	}
	t.Logf("searchopt: %d pin-free leaf reads, %d restarts, %d fallbacks",
		s.OptLeafReads, s.Restarts, s.Fallbacks)
}

// TestSearchOptWithoutOLC: with no optimistic environment the probe
// degrades to the plain latched Search.
func TestSearchOptWithoutOLC(t *testing.T) {
	tr, _ := newTestTree(t, 128)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := tr.SearchOpt(key(7))
	if err != nil || !ok || !bytes.Equal(v, val(7)) {
		t.Fatalf("SearchOpt without OLC = %q, %v, %v", v, ok, err)
	}
}

// TestSearchOptConcurrentInserts races pin-free probes against inserts
// that split leaves and inner nodes; every present key must be found
// with its exact value (values here are immutable once inserted, so a
// torn read would surface as a mismatch). Run with -race.
func TestSearchOptConcurrentInserts(t *testing.T) {
	tr, _, stats := newOLCTree(t, 512)
	const warm = 500
	const extra = 1500
	for i := 0; i < warm; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := warm; i < warm+extra; i++ {
			if err := tr.Insert(1, key(i), val(i)); err != nil {
				t.Errorf("insert %d: %v", i, err)
				return
			}
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := (r*31 + i) % warm // always-present keys
				v, ok, err := tr.SearchOpt(key(k))
				if err != nil {
					t.Errorf("SearchOpt(%s): %v", key(k), err)
					return
				}
				if !ok || !bytes.Equal(v, val(k)) {
					t.Errorf("SearchOpt(%s) = %q, %v; want %q", key(k), v, ok, val(k))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for i := 0; i < warm+extra; i++ {
		v, ok, err := tr.SearchOpt(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("after inserts SearchOpt(%s) = %q, %v, %v", key(i), v, ok, err)
		}
	}
	s := stats.Snapshot()
	t.Logf("searchopt under churn: %d pin-free, %d restarts, %d fallbacks",
		s.OptLeafReads, s.Restarts, s.Fallbacks)
}
