package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/buffer"
	"repro/internal/space"
)

// newOLCTree builds a tree with optimistic descents enabled over the
// fake env's real buffer pool.
func newOLCTree(tb testing.TB, frames int) (*Tree, *fakeEnv, *OLCStats) {
	tb.Helper()
	tr, env := newTestTree(tb, frames)
	stats := new(OLCStats)
	tr.EnableOLC(env.pool, stats)
	return tr, env, stats
}

func TestOLCInsertSearchScan(t *testing.T) {
	tr, _, stats := newOLCTree(t, 256)
	const n = 2000 // forces a multi-level tree: inner nodes descend optimistically
	for i := 0; i < n; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok {
			t.Fatalf("Search(%s) = %v, %v", key(i), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%s) = %q, want %q", key(i), v, val(i))
		}
	}
	var got int
	err := tr.Scan(nil, nil, func(k, v []byte) bool { got++; return true })
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("Scan saw %d keys, want %d", got, n)
	}
	if count, err := tr.Verify(); err != nil || count != n {
		t.Fatalf("Verify = %d, %v; want %d", count, err, n)
	}
	s := stats.Snapshot()
	if s.OptDescents == 0 {
		t.Fatal("no optimistic descents recorded")
	}
	t.Logf("olc: %d optimistic, %d restarts, %d fallbacks", s.OptDescents, s.Restarts, s.Fallbacks)
}

// TestOLCEvictionChurn probes through a pool far smaller than the tree,
// so optimistic references constantly race frame recycling: every
// validation failure must restart or fall back, never return stale data.
func TestOLCEvictionChurn(t *testing.T) {
	tr, _, stats := newOLCTree(t, 32) // tree below will span hundreds of pages
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	r := rand.New(rand.NewSource(7))
	for probe := 0; probe < 5000; probe++ {
		i := r.Intn(n)
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok {
			t.Fatalf("Search(%s) = %v, %v", key(i), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%s) = %q, want %q", key(i), v, val(i))
		}
	}
	s := stats.Snapshot()
	t.Logf("olc under churn: %d optimistic, %d restarts, %d fallbacks", s.OptDescents, s.Restarts, s.Fallbacks)
}

// TestOLCConcurrentSplitProbe hammers inserts (splitting constantly)
// against optimistic searches and scans; run with -race this exercises
// the degraded pinned path, without it the true speculative path.
func TestOLCConcurrentSplitProbe(t *testing.T) {
	tr, _, stats := newOLCTree(t, 512)
	const (
		writers = 4
		readers = 4
		perW    = 800
	)
	// Seed enough keys that readers have something to find immediately.
	for i := 0; i < 100; i++ {
		if err := tr.Insert(1, seqKey(99, i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var writeWG, readWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perW; i++ {
				if err := tr.Insert(1, seqKey(w, i), val(i)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func(r int) {
			defer readWG.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(100)
				v, ok, err := tr.Search(seqKey(99, i))
				if err != nil || !ok || !bytes.Equal(v, val(i)) {
					t.Errorf("reader %d: Search(%s) = %q, %v, %v", r, seqKey(99, i), v, ok, err)
					return
				}
				if rng.Intn(64) == 0 {
					if err := tr.Scan(seqKey(99, 0), seqKey(99, 100), func(k, v []byte) bool { return true }); err != nil {
						t.Errorf("reader %d: Scan: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()

	// Every inserted key must be findable and the structure sound.
	for w := 0; w < writers; w++ {
		for i := 0; i < perW; i++ {
			if _, ok, err := tr.Search(seqKey(w, i)); err != nil || !ok {
				t.Fatalf("lost key %s: %v %v", seqKey(w, i), ok, err)
			}
		}
	}
	want := writers*perW + 100
	if count, err := tr.Verify(); err != nil || count != want {
		t.Fatalf("Verify = %d, %v; want %d", count, err, want)
	}
	s := stats.Snapshot()
	t.Logf("olc concurrent: %d optimistic, %d restarts, %d fallbacks", s.OptDescents, s.Restarts, s.Fallbacks)
}

func seqKey(w, i int) []byte { return []byte(fmt.Sprintf("w%02d-%08d", w, i)) }

// flakyOpt wraps an OptEnv and fails the first failN validations,
// deterministically driving the restart and fallback paths.
type flakyOpt struct {
	OptEnv
	mu    sync.Mutex
	failN int
}

func (f *flakyOpt) Validate(r buffer.OptRef) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failN > 0 {
		f.failN--
		return false
	}
	return f.OptEnv.Validate(r)
}

func TestOLCRestartAndFallback(t *testing.T) {
	tr, env := newTestTree(t, 256)
	const n = 2000
	for i := 0; i < n; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	stats := new(OLCStats)
	flaky := &flakyOpt{OptEnv: env.pool, failN: 1 << 30} // every validation fails
	tr.EnableOLC(flaky, stats)

	// With validation always failing, every descent must exhaust its
	// restarts, fall back to the latched path, and still answer correctly.
	for i := 0; i < 50; i++ {
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%s) under permanent validation failure = %q, %v, %v", key(i), v, ok, err)
		}
	}
	s := stats.Snapshot()
	if s.Fallbacks != 50 {
		t.Fatalf("Fallbacks = %d, want 50", s.Fallbacks)
	}
	if s.Restarts != 50*maxOptRestarts {
		t.Fatalf("Restarts = %d, want %d", s.Restarts, 50*maxOptRestarts)
	}
	if s.OptDescents != 0 {
		t.Fatalf("OptDescents = %d, want 0", s.OptDescents)
	}

	// A single transient failure restarts once and then completes
	// optimistically.
	flaky.mu.Lock()
	flaky.failN = 1
	flaky.mu.Unlock()
	if _, ok, err := tr.Search(key(60)); err != nil || !ok {
		t.Fatalf("Search after transient failure: %v, %v", ok, err)
	}
	s2 := stats.Snapshot()
	if s2.Restarts != s.Restarts+1 {
		t.Fatalf("transient failure: Restarts = %d, want %d", s2.Restarts, s.Restarts+1)
	}
	if s2.OptDescents != 1 {
		t.Fatalf("transient failure: OptDescents = %d, want 1", s2.OptDescents)
	}
	if s2.Fallbacks != s.Fallbacks {
		t.Fatalf("transient failure: Fallbacks = %d, want %d", s2.Fallbacks, s.Fallbacks)
	}
}

// BenchmarkIndexProbeParallel measures point probes through the real
// buffer pool with and without optimistic latch coupling. The latched
// variant pays pin + latch RMWs on the root and every inner node, so all
// cores ping-pong the same frame cache lines; the OLC variant's inner
// descent writes no shared memory at all. Run with -cpu=8 to see the
// contention difference.
func BenchmarkIndexProbeParallel(b *testing.B) {
	for _, olc := range []bool{false, true} {
		name := "latched"
		if olc {
			name = "olc"
		}
		b.Run(name, func(b *testing.B) {
			env := newFakeEnv(b, 4096)
			store := env.sm.CreateStore(space.KindBTree)
			tr, err := Create(env, 1, store)
			if err != nil {
				b.Fatal(err)
			}
			stats := new(OLCStats)
			if olc {
				tr.EnableOLC(env.pool, stats)
			}
			const n = 20000
			for i := 0; i < n; i++ {
				if err := tr.Insert(1, key(i), val(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(rand.Int63()))
				for pb.Next() {
					i := rng.Intn(n)
					_, ok, err := tr.Search(key(i))
					if err != nil || !ok {
						b.Fatalf("Search(%s) = %v, %v", key(i), ok, err)
					}
				}
			})
			b.StopTimer()
			if olc {
				s := stats.Snapshot()
				b.ReportMetric(float64(s.OptDescents), "optDescents")
				b.ReportMetric(float64(s.Restarts), "restarts")
				b.ReportMetric(float64(s.Fallbacks), "fallbacks")
			}
		})
	}
}
