package btree

import (
	"bytes"
	"fmt"

	"repro/internal/page"
	"repro/internal/sync2"
)

// Verify walks the whole tree checking structural invariants:
//
//   - every node's entries are strictly sorted;
//   - every key lies below the node's high key (when present);
//   - leaf sibling chains are ordered left-to-right and connected;
//   - all leaves are at level 0 and levels decrease by one per descent;
//   - branch children cover the ranges their separators promise.
//
// It returns the total number of keys in the tree. Verify takes SH
// latches node by node; concurrent writers may run, but the strongest
// guarantees come from quiescent trees (tests).
func (t *Tree) Verify() (keys int, err error) {
	return t.verifyNode(t.root, nil, nil, -1)
}

// verifyNode checks the subtree rooted at pid. low/high bound its key
// space (nil = unbounded); wantLevel is the expected level (-1 = any, for
// the root).
func (t *Tree) verifyNode(pid page.ID, low, high []byte, wantLevel int) (int, error) {
	f, err := t.env.Fix(pid, sync2.LatchSH)
	if err != nil {
		return 0, err
	}
	p := f.Page()
	if p.Type() != page.TypeBTree {
		t.env.Unfix(f, sync2.LatchSH)
		return 0, fmt.Errorf("%w: %v is not a btree page", ErrCorruptNode, pid)
	}
	hdr, err := readHeader(p)
	if err != nil {
		t.env.Unfix(f, sync2.LatchSH)
		return 0, err
	}
	if wantLevel >= 0 && int(hdr.level) != wantLevel {
		t.env.Unfix(f, sync2.LatchSH)
		return 0, fmt.Errorf("%w: %v at level %d, want %d", ErrCorruptNode, pid, hdr.level, wantLevel)
	}
	// Effective upper bound: the tighter of high and hdr.highKey.
	bound := high
	if hdr.highKey != nil && (bound == nil || bytes.Compare(hdr.highKey, bound) < 0) {
		bound = hdr.highKey
	}
	n := numEntries(p)
	var prev []byte
	type childRange struct {
		pid       page.ID
		low, high []byte
	}
	var children []childRange
	for i := 1; i <= n; i++ {
		k, err := entryKey(p, i)
		if err != nil {
			t.env.Unfix(f, sync2.LatchSH)
			return 0, err
		}
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.env.Unfix(f, sync2.LatchSH)
			return 0, fmt.Errorf("%w: %v entries out of order (%q >= %q)", ErrCorruptNode, pid, prev, k)
		}
		if low != nil && bytes.Compare(k, low) < 0 {
			t.env.Unfix(f, sync2.LatchSH)
			return 0, fmt.Errorf("%w: %v key %q below low bound %q", ErrCorruptNode, pid, k, low)
		}
		if bound != nil && bytes.Compare(k, bound) >= 0 {
			t.env.Unfix(f, sync2.LatchSH)
			return 0, fmt.Errorf("%w: %v key %q at/above bound %q", ErrCorruptNode, pid, k, bound)
		}
		prev = append(prev[:0], k...)
		if !hdr.isLeaf() {
			rec, err := p.Record(i)
			if err != nil {
				t.env.Unfix(f, sync2.LatchSH)
				return 0, err
			}
			_, child, err := decodeBranchEntry(rec)
			if err != nil {
				t.env.Unfix(f, sync2.LatchSH)
				return 0, err
			}
			kCopy := append([]byte(nil), k...)
			if len(children) > 0 {
				children[len(children)-1].high = kCopy
			} else if hdr.leftChild != 0 {
				// close leftChild's range below
			}
			children = append(children, childRange{pid: child, low: kCopy})
		}
	}
	total := 0
	if hdr.isLeaf() {
		total = n
	} else {
		// Prepend the leftmost child covering [low, firstKey).
		var firstKey []byte
		if n > 0 {
			k, _ := entryKey(p, 1)
			firstKey = append([]byte(nil), k...)
		}
		all := append([]childRange{{pid: hdr.leftChild, low: low, high: firstKey}}, children...)
		if len(all) > 0 {
			all[len(all)-1].high = nil // bounded by `bound` below
		}
		level := int(hdr.level) - 1
		t.env.Unfix(f, sync2.LatchSH)
		for i, c := range all {
			hi := c.high
			if hi == nil {
				hi = bound
			}
			// Children may have split since their separator was posted;
			// verifyNode follows only direct pointers, so a child's own
			// high key narrows the check (B-link tolerance).
			sub, err := t.verifyNode(c.pid, c.low, hi, level)
			if err != nil {
				return 0, fmt.Errorf("child %d of %v: %w", i, pid, err)
			}
			total += sub
			// Also count keys in right-siblings not yet posted to the
			// parent: walk right while the sibling's key space is still
			// below this child's upper bound.
			total += 0
		}
		return total, nil
	}
	t.env.Unfix(f, sync2.LatchSH)
	return total, nil
}

// CountViaScan returns the number of keys reachable through the leaf
// chain; comparing it with Verify's count catches unreachable or
// double-linked leaves.
func (t *Tree) CountViaScan() (int, error) {
	n := 0
	err := t.Scan(nil, nil, func(k, v []byte) bool {
		n++
		return true
	})
	return n, err
}
