package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/buffer"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/space"
	"repro/internal/sync2"
)

// fakeEnv implements Env over a real buffer pool and space manager, with
// logging replaced by direct application (LSN = counter).
type fakeEnv struct {
	pool *buffer.Pool
	sm   *space.Manager
	lsn  atomic.Uint64
}

func newFakeEnv(tb testing.TB, frames int) *fakeEnv {
	tb.Helper()
	vol := disk.NewMem(0)
	sm := space.NewManager(vol, space.Options{
		Mutex: sync2.KindMCS, ExtentCache: true, LastPageCache: true,
	})
	pool := buffer.New(vol, buffer.Options{
		Frames: frames, Table: buffer.TableCuckoo, AtomicPin: true,
		TransitPartitions: 128, TransitBypass: true, ClockHandRelease: true,
	})
	tb.Cleanup(func() { pool.Close() })
	return &fakeEnv{pool: pool, sm: sm}
}

func (e *fakeEnv) Fix(pid page.ID, mode sync2.LatchMode) (*buffer.Frame, error) {
	return e.pool.Fix(pid, mode)
}
func (e *fakeEnv) FixNew(pid page.ID) (*buffer.Frame, error) { return e.pool.FixNew(pid) }
func (e *fakeEnv) Unfix(f *buffer.Frame, mode sync2.LatchMode) {
	e.pool.Unfix(f, mode)
}
func (e *fakeEnv) AllocPage(store uint32) (page.ID, error) {
	return e.sm.AllocPage(store, nil)
}
func (e *fakeEnv) Log(txID uint64, f *buffer.Frame, op pageop.Op, undo []byte) error {
	if err := pageop.Apply(f.Page(), op); err != nil {
		return fmt.Errorf("apply %v: %w", op.Kind, err)
	}
	lsn := e.lsn.Add(1)
	f.Page().SetLSN(lsn)
	f.MarkDirty(1) // wal.LSN not needed for fake
	return nil
}

func newTestTree(tb testing.TB, frames int) (*Tree, *fakeEnv) {
	tb.Helper()
	env := newFakeEnv(tb, frames)
	store := env.sm.CreateStore(space.KindBTree)
	tr, err := Create(env, 1, store)
	if err != nil {
		tb.Fatal(err)
	}
	return tr, env
}

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	for i := 0; i < 50; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok {
			t.Fatalf("Search(%s) = %v, %v", key(i), ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%s) = %q, want %q", key(i), v, val(i))
		}
	}
	if _, ok, err := tr.Search([]byte("missing")); err != nil || ok {
		t.Fatalf("missing key found: %v %v", ok, err)
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	if err := tr.Insert(1, key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(1, key(1), val(2)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert = %v", err)
	}
}

func TestKeyValueLimits(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	if err := tr.Insert(1, nil, val(1)); !errors.Is(err, ErrKeyTooLarge) {
		t.Errorf("empty key = %v", err)
	}
	if err := tr.Insert(1, make([]byte, MaxKeySize+1), val(1)); !errors.Is(err, ErrKeyTooLarge) {
		t.Errorf("big key = %v", err)
	}
	if err := tr.Insert(1, key(1), make([]byte, MaxValueSize+1)); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("big value = %v", err)
	}
	// Max-size boundary accepted.
	if err := tr.Insert(1, bytes.Repeat([]byte("k"), MaxKeySize), make([]byte, MaxValueSize)); err != nil {
		t.Errorf("boundary KV = %v", err)
	}
}

func TestSplitsManyKeysSequential(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
	// The tree must have grown beyond one level: root is a branch.
	f, err := tr.env.Fix(tr.Root(), sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := readHeader(f.Page())
	tr.env.Unfix(f, sync2.LatchSH)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.isLeaf() || hdr.level == 0 {
		t.Fatal("root still a leaf after 5000 inserts")
	}
}

func TestSplitsRandomOrder(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(3000)
	for _, i := range perm {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for i := 0; i < 3000; i++ {
		v, ok, err := tr.Search(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("Search(%d) = %q,%v,%v", i, v, ok, err)
		}
	}
}

func TestScanOrderedAndBounded(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(7))
	for _, i := range rng.Perm(2000) {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Full scan: ordered, complete.
	var prev []byte
	count := 0
	err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("scan out of order: %q then %q", prev, k)
		}
		prev = append(prev[:0], k...)
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2000 {
		t.Fatalf("full scan visited %d, want 2000", count)
	}
	// Bounded scan [key100, key200).
	count = 0
	err = tr.Scan(key(100), key(200), func(k, v []byte) bool {
		count++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("bounded scan visited %d, want 100", count)
	}
	// Early termination.
	count = 0
	if err := tr.Scan(nil, nil, func(k, v []byte) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early-stop scan visited %d", count)
	}
}

func TestUpdateValues(t *testing.T) {
	tr, _ := newTestTree(t, 64)
	if err := tr.Insert(1, key(1), val(1)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Update(1, key(1), []byte("new-value")); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Search(key(1))
	if !ok || string(v) != "new-value" {
		t.Fatalf("after update: %q, %v", v, ok)
	}
	if err := tr.Update(1, key(2), val(2)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("update missing = %v", err)
	}
	// Grow the value beyond the original size repeatedly.
	for size := 10; size <= 1000; size *= 10 {
		nv := bytes.Repeat([]byte("x"), size)
		if err := tr.Update(1, key(1), nv); err != nil {
			t.Fatalf("grow to %d: %v", size, err)
		}
		v, _, _ := tr.Search(key(1))
		if !bytes.Equal(v, nv) {
			t.Fatalf("grow to %d lost data", size)
		}
	}
}

func TestDeleteAndReinsert(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for i := 0; i < 500; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete the even keys.
	for i := 0; i < 500; i += 2 {
		old, err := tr.Delete(1, key(i))
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !bytes.Equal(old, val(i)) {
			t.Fatalf("delete %d returned %q", i, old)
		}
	}
	if _, err := tr.Delete(1, key(0)); !errors.Is(err, ErrKeyNotFound) {
		t.Fatalf("double delete = %v", err)
	}
	for i := 0; i < 500; i++ {
		_, ok, err := tr.Search(key(i))
		if err != nil {
			t.Fatal(err)
		}
		if want := i%2 == 1; ok != want {
			t.Fatalf("after deletes Search(%d) = %v, want %v", i, ok, want)
		}
	}
	// Re-insert the deleted keys.
	for i := 0; i < 500; i += 2 {
		if err := tr.Insert(1, key(i), val(i+1000)); err != nil {
			t.Fatalf("reinsert %d: %v", i, err)
		}
	}
	for i := 0; i < 500; i += 2 {
		v, ok, _ := tr.Search(key(i))
		if !ok || !bytes.Equal(v, val(i+1000)) {
			t.Fatalf("reinserted %d = %q,%v", i, v, ok)
		}
	}
}

func TestConcurrentInsertDisjointRanges(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	const g, n = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				if err := tr.Insert(1, key(w*n+i), val(w*n+i)); err != nil {
					t.Errorf("insert %d: %v", w*n+i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	count := 0
	var prev []byte
	if err := tr.Scan(nil, nil, func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Errorf("out of order after concurrent inserts")
			return false
		}
		prev = append(prev[:0], k...)
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != g*n {
		t.Fatalf("scan found %d keys, want %d", count, g*n)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	tr, _ := newTestTree(t, 512)
	// Preload.
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers extend the key space (forcing splits).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1000; i < 2500; i++ {
			if err := tr.Insert(1, key(i), val(i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers hammer the stable prefix.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				i := rng.Intn(1000)
				v, ok, err := tr.Search(key(i))
				if err != nil || !ok || !bytes.Equal(v, val(i)) {
					t.Errorf("reader: Search(%d) = %q,%v,%v", i, v, ok, err)
					return
				}
			}
		}(r)
	}
	// Stop readers once the writer finishes.
	go func() {
		wg.Wait()
	}()
	// Wait for writer only, then release readers.
	for i := 0; i < 1; i++ {
	}
	// Let the writer finish by polling for the last key.
	for {
		_, ok, err := tr.Search(key(2499))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestQuickTreeMatchesMap property-tests the tree against a map reference
// under random operation sequences.
func TestQuickTreeMatchesMap(t *testing.T) {
	f := func(ops []uint16) bool {
		tr, _ := newTestTree(t, 256)
		ref := map[string]string{}
		for _, op := range ops {
			k := string(key(int(op % 200)))
			v := string(val(int(op)))
			switch op % 3 {
			case 0:
				err := tr.Insert(1, []byte(k), []byte(v))
				if _, dup := ref[k]; dup {
					if !errors.Is(err, ErrDuplicateKey) {
						return false
					}
				} else if err != nil {
					return false
				} else {
					ref[k] = v
				}
			case 1:
				_, err := tr.Delete(1, []byte(k))
				if _, present := ref[k]; present {
					if err != nil {
						return false
					}
					delete(ref, k)
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			case 2:
				err := tr.Update(1, []byte(k), []byte(v))
				if _, present := ref[k]; present {
					if err != nil {
						return false
					}
					ref[k] = v
				} else if !errors.Is(err, ErrKeyNotFound) {
					return false
				}
			}
		}
		for k, v := range ref {
			got, ok, err := tr.Search([]byte(k))
			if err != nil || !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := nodeHeader{flags: flagLeaf | flagRoot, level: 3, right: 77, leftChild: 88, highKey: []byte("hk")}
	got, err := decodeHeader(h.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.flags != h.flags || got.level != 3 || got.right != 77 || got.leftChild != 88 || !bytes.Equal(got.highKey, []byte("hk")) {
		t.Fatalf("header round trip: %+v", got)
	}
	if _, err := decodeHeader([]byte{1}); err == nil {
		t.Error("short header decoded")
	}
	// nil high key survives.
	h2 := nodeHeader{flags: flagLeaf}
	got2, _ := decodeHeader(h2.encode())
	if got2.highKey != nil {
		t.Error("nil high key became non-nil")
	}
}
