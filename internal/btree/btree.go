package btree

import (
	"bytes"
	"fmt"
	"sync/atomic"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/sync2"
)

// Env is the tree's view of the storage manager: page access through the
// buffer pool, page allocation through the free-space manager, and
// physiological logging. The core package implements it; tests use a
// lightweight fake.
type Env interface {
	// Fix pins+latches a page.
	Fix(pid page.ID, mode sync2.LatchMode) (*buffer.Frame, error)
	// FixNew claims a frame for a freshly allocated page (EX-latched).
	FixNew(pid page.ID) (*buffer.Frame, error)
	// Unfix releases latch and pin.
	Unfix(f *buffer.Frame, mode sync2.LatchMode)
	// AllocPage allocates a page for store.
	AllocPage(store uint32) (page.ID, error)
	// Log records op against f's page (with optional logical undo payload;
	// nil undo = redo-only), applies it, stamps the page LSN and marks the
	// frame dirty. The frame must be EX-latched by the caller.
	Log(txID uint64, f *buffer.Frame, op pageop.Op, undo []byte) error
}

// OptEnv is the optional optimistic extension of Env: pin-free,
// latch-free page references validated after the fact. buffer.Pool
// implements it directly. Trees with an OptEnv descend inner levels
// without writing any shared memory (optimistic latch coupling); leaves
// keep classic SH/EX latching and the Lehman-Yao move-right rules.
type OptEnv interface {
	// FixOpt returns an optimistic reference to pid; ok=false when the
	// page is absent, mid-load/eviction, or write-latched.
	FixOpt(pid page.ID) (buffer.OptRef, bool)
	// Validate reports whether all reads through the reference saw a
	// consistent, current image.
	Validate(buffer.OptRef) bool
	// ReleaseOpt ends the reference (must always be called).
	ReleaseOpt(buffer.OptRef)
}

// OLCStats counts optimistic-descent outcomes. One instance is typically
// shared by every tree an engine opens, so the counters are engine-wide.
type OLCStats struct {
	OptDescents  atomic.Uint64 // descents whose inner levels completed optimistically
	Restarts     atomic.Uint64 // descents restarted from the root after failed validation
	Fallbacks    atomic.Uint64 // descents that exhausted retries and went fully latched
	OptLeafReads atomic.Uint64 // SearchOpt probes completed without any pin or latch

	// Latched-descent and partition-owner (PLP) counters. LatchedDescents
	// counts classic pinned descents — the latch traffic PLP exists to
	// avoid; the Owner* counters count operations served on the
	// partition-owner path (pin-free validated reads, single-leaf EX write
	// fence, no latch coupling).
	LatchedDescents atomic.Uint64 // classic SH-coupled descents (fallbacks included)
	OwnerDescents   atomic.Uint64 // owner-path write descents completed without inner latches
	OwnerReads      atomic.Uint64 // owner-path point reads completed with no pin and no latch
	OwnerWrites     atomic.Uint64 // owner-path mutations (insert/update/delete)
	OwnerScans      atomic.Uint64 // owner-path range scans completed on validated leaf images
	OwnerFallbacks  atomic.Uint64 // owner-path operations that fell back to the latched path
}

// OLCSnapshot is a point-in-time copy of OLCStats.
type OLCSnapshot struct {
	OptDescents  uint64
	Restarts     uint64
	Fallbacks    uint64
	OptLeafReads uint64

	LatchedDescents uint64
	OwnerDescents   uint64
	OwnerReads      uint64
	OwnerWrites     uint64
	OwnerScans      uint64
	OwnerFallbacks  uint64
}

// Snapshot copies the counters.
func (s *OLCStats) Snapshot() OLCSnapshot {
	return OLCSnapshot{
		OptDescents:  s.OptDescents.Load(),
		Restarts:     s.Restarts.Load(),
		Fallbacks:    s.Fallbacks.Load(),
		OptLeafReads: s.OptLeafReads.Load(),

		LatchedDescents: s.LatchedDescents.Load(),
		OwnerDescents:   s.OwnerDescents.Load(),
		OwnerReads:      s.OwnerReads.Load(),
		OwnerWrites:     s.OwnerWrites.Load(),
		OwnerScans:      s.OwnerScans.Load(),
		OwnerFallbacks:  s.OwnerFallbacks.Load(),
	}
}

// maxOptRestarts bounds how often a descent restarts from the root after
// a failed validation before falling back to the latched descent.
const maxOptRestarts = 3

// Tree is a B-link tree rooted at a fixed page.
type Tree struct {
	env   Env
	opt   OptEnv // nil: every descent is latched
	stats *OLCStats
	store uint32
	root  page.ID
}

// EnableOLC switches the tree to optimistic descents through opt,
// recording outcomes in stats (allocated internally when nil). It must be
// called before the tree is shared across goroutines.
func (t *Tree) EnableOLC(opt OptEnv, stats *OLCStats) {
	if stats == nil {
		stats = new(OLCStats)
	}
	t.opt, t.stats = opt, stats
}

// SetStats points the tree's counters at stats without enabling
// optimistic descents (EnableOLC does both). Useful for trees that stay
// on the latched path but should still feed engine-wide counters.
func (t *Tree) SetStats(stats *OLCStats) {
	if stats != nil {
		t.stats = stats
	}
}

// Create allocates and initializes an empty tree for store, returning the
// tree and its root page id.
func Create(env Env, txID uint64, store uint32) (*Tree, error) {
	rootPid, err := env.AllocPage(store)
	if err != nil {
		return nil, err
	}
	f, err := env.FixNew(rootPid)
	if err != nil {
		return nil, err
	}
	defer env.Unfix(f, sync2.LatchEX)
	if err := env.Log(txID, f, pageop.Op{Kind: pageop.KindFormat, PType: page.TypeBTree, Store: store}, nil); err != nil {
		return nil, err
	}
	hdr := nodeHeader{flags: flagLeaf | flagRoot, level: 0}
	if err := env.Log(txID, f, pageop.Op{Kind: pageop.KindInsertAt, Slot: 0, Data: hdr.encode()}, nil); err != nil {
		return nil, err
	}
	return &Tree{env: env, store: store, root: rootPid}, nil
}

// Open attaches to an existing tree.
func Open(env Env, store uint32, root page.ID) *Tree {
	return &Tree{env: env, store: store, root: root}
}

// Root returns the root page id (stable for the life of the tree).
func (t *Tree) Root() page.ID { return t.root }

// Store returns the owning store id.
func (t *Tree) Store() uint32 { return t.store }

func checkKV(key, value []byte) error {
	if len(key) == 0 || len(key) > MaxKeySize {
		return fmt.Errorf("%w: %d bytes", ErrKeyTooLarge, len(key))
	}
	if len(value) > MaxValueSize {
		return fmt.Errorf("%w: %d bytes", ErrValueTooLarge, len(value))
	}
	return nil
}

// moveRight advances from a latched node to its right sibling while key is
// beyond the node's high key; it returns the (possibly new) latched frame
// and header.
func (t *Tree) moveRight(f *buffer.Frame, hdr nodeHeader, key []byte, mode sync2.LatchMode) (*buffer.Frame, nodeHeader, error) {
	for needsMoveRight(hdr, key) {
		right := hdr.right
		if right == 0 {
			return f, hdr, fmt.Errorf("%w: high key without right sibling", ErrCorruptNode)
		}
		rf, err := t.env.Fix(right, mode)
		if err != nil {
			t.env.Unfix(f, mode)
			return nil, nodeHeader{}, err
		}
		t.env.Unfix(f, mode)
		f = rf
		hdr, err = readHeader(f.Page())
		if err != nil {
			t.env.Unfix(f, mode)
			return nil, nodeHeader{}, err
		}
	}
	return f, hdr, nil
}

// descendToLeaf walks from the root to the leaf responsible for key; the
// leaf is returned latched in leafMode. The returned path holds the page
// id of the parent at each level above the leaf (for split propagation).
//
// With an OptEnv the inner levels descend optimistically: separator keys
// and child pointers are copied out of unlatched pages and validated
// against the frame's latch version; a failed validation restarts from
// the root (bounded), then the latched descent takes over. The leaf is
// always latched for real.
func (t *Tree) descendToLeaf(key []byte, leafMode sync2.LatchMode) (*buffer.Frame, nodeHeader, []page.ID, error) {
	if t.opt != nil {
		for attempt := 0; attempt < maxOptRestarts; attempt++ {
			f, hdr, path, ok, err := t.descendOpt(key, leafMode)
			if err != nil {
				return nil, nodeHeader{}, nil, err
			}
			if ok {
				t.stats.OptDescents.Add(1)
				return f, hdr, path, nil
			}
			t.stats.Restarts.Add(1)
		}
		t.stats.Fallbacks.Add(1)
	}
	return t.descendLatched(key, leafMode)
}

// descendOpt is one optimistic descent attempt. ok=false (with nil error)
// means a validation failed or the tree shifted under us: restart.
// Returned errors were observed on validated (consistent) reads or the
// latched leaf, so they are real.
func (t *Tree) descendOpt(key []byte, leafMode sync2.LatchMode) (*buffer.Frame, nodeHeader, []page.ID, bool, error) {
	var path []page.ID
	pid := t.root
	for {
		var next page.ID
		var level uint8
		var leaf, sideways bool
		if ref, got := t.opt.FixOpt(pid); got {
			// Speculative read: everything extracted from the page before
			// Validate is potentially torn and must be plain values or byte
			// comparisons over bounds-checked accessors — never retained
			// aliases. Only after Validate do the results mean anything.
			var err error
			next, level, leaf, sideways, err = nodeStep(ref.Page(), key)
			valid := t.opt.Validate(ref)
			t.opt.ReleaseOpt(ref)
			if !valid {
				return nil, nodeHeader{}, nil, false, nil
			}
			if err != nil {
				// Validated, so the error is real corruption, not tearing.
				return nil, nodeHeader{}, nil, false, err
			}
		} else {
			// Not resident (or in flux): read this one node under a pinned
			// SH latch — forcing a load if needed — then continue
			// optimistically below it.
			f, err := t.env.Fix(pid, sync2.LatchSH)
			if err != nil {
				return nil, nodeHeader{}, nil, false, err
			}
			next, level, leaf, sideways, err = nodeStep(f.Page(), key)
			t.env.Unfix(f, sync2.LatchSH)
			if err != nil {
				return nil, nodeHeader{}, nil, false, err
			}
		}
		if leaf {
			return t.latchLeaf(pid, key, leafMode, path)
		}
		if !sideways {
			path = append(path, pid)
			if level == 1 {
				// The child of a level-1 branch is a leaf, permanently
				// (only the root ever changes level, and the root is
				// nobody's child): latch it directly, skipping a wasted
				// optimistic peek.
				return t.latchLeaf(next, key, leafMode, path)
			}
		}
		pid = next
	}
}

// latchLeaf finishes a descent: pin+latch the leaf in leafMode, verify it
// still is a leaf (the root may have grown a level — then restart), and
// move right per Lehman-Yao.
func (t *Tree) latchLeaf(pid page.ID, key []byte, leafMode sync2.LatchMode, path []page.ID) (*buffer.Frame, nodeHeader, []page.ID, bool, error) {
	f, err := t.env.Fix(pid, leafMode)
	if err != nil {
		return nil, nodeHeader{}, nil, false, err
	}
	lh, err := readHeader(f.Page())
	if err != nil {
		t.env.Unfix(f, leafMode)
		return nil, nodeHeader{}, nil, false, err
	}
	if !lh.isLeaf() {
		t.env.Unfix(f, leafMode)
		return nil, nodeHeader{}, nil, false, nil
	}
	f, lh, err = t.moveRight(f, lh, key, leafMode)
	if err != nil {
		return nil, nodeHeader{}, nil, false, err
	}
	return f, lh, path, true, nil
}

// nodeStep computes one descent step from a node image: leaf reports
// arrival, sideways a Lehman-Yao move-right, otherwise next is the child
// covering key (with level telling the caller what next is). All
// extracted data is by-value, so a speculative caller may discard it
// after a failed validation; on such reads an error usually just means
// the image was torn.
func nodeStep(p *page.Page, key []byte) (next page.ID, level uint8, leaf, sideways bool, err error) {
	h, err := peekHeader(p)
	if err != nil {
		return 0, 0, false, false, err
	}
	switch {
	case h.isLeaf():
		return 0, h.level, true, false, nil
	case needsMoveRight(h, key):
		if h.right == 0 {
			return 0, 0, false, false, fmt.Errorf("%w: high key without right sibling", ErrCorruptNode)
		}
		return h.right, h.level, false, true, nil
	default:
		next, err = branchChildFor(p, h, key)
		if err != nil {
			return 0, 0, false, false, err
		}
		return next, h.level, false, false, nil
	}
}

// descendLatched is the classic pinned descent: SH latches level by
// level, releasing each node before fixing the next (B-link move-right
// repairs any split that slips in between).
func (t *Tree) descendLatched(key []byte, leafMode sync2.LatchMode) (*buffer.Frame, nodeHeader, []page.ID, error) {
	if t.stats != nil {
		t.stats.LatchedDescents.Add(1)
	}
	var path []page.ID
	pid := t.root
	for {
		mode := sync2.LatchSH
		f, err := t.env.Fix(pid, mode)
		if err != nil {
			return nil, nodeHeader{}, nil, err
		}
		hdr, err := readHeader(f.Page())
		if err != nil {
			t.env.Unfix(f, mode)
			return nil, nodeHeader{}, nil, err
		}
		f, hdr, err = t.moveRight(f, hdr, key, mode)
		if err != nil {
			return nil, nodeHeader{}, nil, err
		}
		if hdr.isLeaf() {
			leafPid := f.Page().PID()
			if leafMode == sync2.LatchEX {
				// Re-take in EX; the node may split in between, so re-verify
				// with move-right afterwards.
				t.env.Unfix(f, mode)
				f, err = t.env.Fix(leafPid, sync2.LatchEX)
				if err != nil {
					return nil, nodeHeader{}, nil, err
				}
				hdr, err = readHeader(f.Page())
				if err != nil {
					t.env.Unfix(f, sync2.LatchEX)
					return nil, nodeHeader{}, nil, err
				}
				f, hdr, err = t.moveRight(f, hdr, key, sync2.LatchEX)
				if err != nil {
					return nil, nodeHeader{}, nil, err
				}
			}
			return f, hdr, path, nil
		}
		child, err := branchChildFor(f.Page(), hdr, key)
		if err != nil {
			t.env.Unfix(f, mode)
			return nil, nodeHeader{}, nil, err
		}
		path = append(path, f.Page().PID())
		t.env.Unfix(f, mode)
		pid = child
	}
}

// Search returns the value stored for key.
func (t *Tree) Search(key []byte) ([]byte, bool, error) {
	if err := checkKV(key, nil); err != nil {
		return nil, false, err
	}
	f, _, _, err := t.descendToLeaf(key, sync2.LatchSH)
	if err != nil {
		return nil, false, err
	}
	defer t.env.Unfix(f, sync2.LatchSH)
	slot, exact, err := searchEntries(f.Page(), key)
	if err != nil {
		return nil, false, err
	}
	if !exact {
		return nil, false, nil
	}
	rec, err := f.Page().Record(slot)
	if err != nil {
		return nil, false, err
	}
	_, v, err := decodeLeafEntry(rec)
	if err != nil {
		return nil, false, err
	}
	return append([]byte(nil), v...), true, nil
}

// SearchOpt is Search extended to the leaf level of the optimistic
// protocol: the entire probe — inner descent, Lehman-Yao leaf
// move-right, and the entry read itself — runs on speculative page
// images with no pin and no latch, validated after the value is copied
// out. A concurrent writer on the leaf fails the validation (it holds
// the frame EX, bumping the latch version), so a successful probe read
// either a pre-writer or post-writer image, never a torn one. Bounded
// restarts, then fall back to the classic latched Search. Without an
// OptEnv it IS Search.
func (t *Tree) SearchOpt(key []byte) ([]byte, bool, error) {
	if t.opt == nil {
		return t.Search(key)
	}
	if err := checkKV(key, nil); err != nil {
		return nil, false, err
	}
	for attempt := 0; attempt < maxOptRestarts; attempt++ {
		val, found, ok, err := t.searchOptOnce(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			t.stats.OptLeafReads.Add(1)
			return val, found, nil
		}
		t.stats.Restarts.Add(1)
	}
	t.stats.Fallbacks.Add(1)
	return t.Search(key)
}

// maxOptHops bounds one SearchOpt attempt's node visits (descent plus
// sideways moves); exceeding it restarts rather than chasing a cycle on
// speculative images.
const maxOptHops = 64

// searchOptOnce is one pin-free probe attempt. ok=false (with nil error)
// means a validation failed or a node was not cleanly readable: restart.
func (t *Tree) searchOptOnce(key []byte) (val []byte, found, ok bool, err error) {
	pid := t.root
	for hop := 0; hop < maxOptHops; hop++ {
		ref, got := t.opt.FixOpt(pid)
		if !got {
			// Not resident or in flux; let the fallback path load it.
			return nil, false, false, nil
		}
		p := ref.Page()
		h, herr := peekHeader(p)
		if herr != nil {
			valid := t.opt.Validate(ref)
			t.opt.ReleaseOpt(ref)
			if !valid {
				return nil, false, false, nil
			}
			return nil, false, false, herr
		}
		if !h.isLeaf() {
			next, _, _, _, serr := nodeStep(p, key)
			valid := t.opt.Validate(ref)
			t.opt.ReleaseOpt(ref)
			if !valid {
				return nil, false, false, nil
			}
			if serr != nil {
				return nil, false, false, serr
			}
			pid = next
			continue
		}
		// Leaf: move right past a concurrent split's high key, then read
		// the entry. Everything is copied before Validate decides whether
		// any of it was real.
		if needsMoveRight(h, key) {
			right := h.right
			valid := t.opt.Validate(ref)
			t.opt.ReleaseOpt(ref)
			if !valid {
				return nil, false, false, nil
			}
			if right == 0 {
				return nil, false, false, fmt.Errorf("%w: high key without right sibling", ErrCorruptNode)
			}
			pid = right
			continue
		}
		var v []byte
		exact := false
		slot, ex, serr := searchEntries(p, key)
		if serr == nil && ex {
			if rec, rerr := p.Record(slot); rerr == nil {
				if _, vv, derr := decodeLeafEntry(rec); derr == nil {
					v = append([]byte(nil), vv...)
					exact = true
				} else {
					serr = derr
				}
			} else {
				serr = rerr
			}
		}
		valid := t.opt.Validate(ref)
		t.opt.ReleaseOpt(ref)
		if !valid {
			return nil, false, false, nil
		}
		if serr != nil {
			return nil, false, false, serr
		}
		return v, exact, true, nil
	}
	return nil, false, false, nil
}

// Insert adds key→value; ErrDuplicateKey if present. The operation is
// logged with a logical undo (delete key), so aborting the transaction
// removes the key even if splits moved it.
func (t *Tree) Insert(txID uint64, key, value []byte) error {
	return t.insert(txID, key, value, true, false)
}

// InsertNoUndo adds key→value with redo-only logging. Recovery's logical
// undo path uses it (a CLR-covered action must not generate further undo).
func (t *Tree) InsertNoUndo(txID uint64, key, value []byte) error {
	return t.insert(txID, key, value, false, false)
}

func (t *Tree) insert(txID uint64, key, value []byte, withUndo, owner bool) error {
	if err := checkKV(key, value); err != nil {
		return err
	}
	entry := encodeLeafEntry(key, value)
	for {
		f, hdr, path, err := t.descendForWrite(owner, key)
		if err != nil {
			return err
		}
		slot, exact, err := searchEntries(f.Page(), key)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		if exact {
			t.env.Unfix(f, sync2.LatchEX)
			return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
		}
		if f.Page().CanFit(len(entry)) {
			var undo []byte
			if withUndo {
				undo = pageop.Logical{Kind: pageop.LogicalBTreeDelete, Store: t.store, Key: key}.Encode()
			}
			err := t.env.Log(txID, f, pageop.Op{Kind: pageop.KindInsertAt, Slot: uint16(slot), Data: entry}, undo)
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		// Leaf full: split, then retry the insert (the retry re-descends,
		// which is simple and correct; splits are rare).
		if err := t.splitNode(txID, f, hdr, path); err != nil {
			return err
		}
	}
}

// Update replaces the value for key. Logged with logical undo restoring
// the old value.
func (t *Tree) Update(txID uint64, key, value []byte) error {
	return t.update(txID, key, value, true, false)
}

// UpdateNoUndo is Update with redo-only logging (for recovery undo).
func (t *Tree) UpdateNoUndo(txID uint64, key, value []byte) error {
	return t.update(txID, key, value, false, false)
}

func (t *Tree) update(txID uint64, key, value []byte, withUndo, owner bool) error {
	if err := checkKV(key, value); err != nil {
		return err
	}
	entry := encodeLeafEntry(key, value)
	for {
		f, hdr, path, err := t.descendForWrite(owner, key)
		if err != nil {
			return err
		}
		slot, exact, err := searchEntries(f.Page(), key)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		if !exact {
			t.env.Unfix(f, sync2.LatchEX)
			return fmt.Errorf("%w: %q", ErrKeyNotFound, key)
		}
		rec, err := f.Page().Record(slot)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		_, oldVal, err := decodeLeafEntry(rec)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		oldCopy := append([]byte(nil), oldVal...)
		// The new entry may be larger than the old; ensure it fits.
		if len(entry) > len(rec) && !f.Page().CanFit(len(entry)-len(rec)) {
			if err := t.splitNode(txID, f, hdr, path); err != nil {
				return err
			}
			continue
		}
		var undo []byte
		if withUndo {
			undo = pageop.Logical{Kind: pageop.LogicalBTreeUpdate, Store: t.store, Key: key, Value: oldCopy}.Encode()
		}
		err = t.env.Log(txID, f, pageop.Op{Kind: pageop.KindUpdateAt, Slot: uint16(slot), Data: entry, Old: rec}, undo)
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
}

// Delete removes key, returning its old value. Logged with logical undo
// re-inserting the key. Underflowed leaves are left in place (lazy
// deletion; no merges), which keeps sibling pointers stable.
func (t *Tree) Delete(txID uint64, key []byte) ([]byte, error) {
	return t.delete(txID, key, true, false)
}

// DeleteNoUndo is Delete with redo-only logging (for recovery undo).
func (t *Tree) DeleteNoUndo(txID uint64, key []byte) ([]byte, error) {
	return t.delete(txID, key, false, false)
}

func (t *Tree) delete(txID uint64, key []byte, withUndo, owner bool) ([]byte, error) {
	if err := checkKV(key, nil); err != nil {
		return nil, err
	}
	f, _, _, err := t.descendForWrite(owner, key)
	if err != nil {
		return nil, err
	}
	slot, exact, err := searchEntries(f.Page(), key)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return nil, err
	}
	if !exact {
		t.env.Unfix(f, sync2.LatchEX)
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	rec, err := f.Page().Record(slot)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return nil, err
	}
	recCopy := append([]byte(nil), rec...)
	_, oldVal, err := decodeLeafEntry(recCopy)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return nil, err
	}
	var undo []byte
	if withUndo {
		undo = pageop.Logical{Kind: pageop.LogicalBTreeInsert, Store: t.store, Key: key, Value: oldVal}.Encode()
	}
	err = t.env.Log(txID, f, pageop.Op{Kind: pageop.KindRemoveAt, Slot: uint16(slot), Data: recCopy}, undo)
	t.env.Unfix(f, sync2.LatchEX)
	if err != nil {
		return nil, err
	}
	return oldVal, nil
}

// Scan calls fn for each key in [from, to) in ascending order until fn
// returns false. nil from starts at the smallest key; nil to means no
// upper bound. fn must not re-enter the tree.
func (t *Tree) Scan(from, to []byte, fn func(key, value []byte) bool) error {
	start := from
	if start == nil {
		start = []byte{0}
	}
	f, _, _, err := t.descendToLeaf(start, sync2.LatchSH)
	if err != nil {
		return err
	}
	for {
		p := f.Page()
		slot := 1
		if from != nil {
			s, _, err := searchEntries(p, from)
			if err != nil {
				t.env.Unfix(f, sync2.LatchSH)
				return err
			}
			slot = s
			from = nil // only applies to the first leaf
		}
		n := numEntries(p)
		for ; slot <= n; slot++ {
			rec, err := p.Record(slot)
			if err != nil {
				t.env.Unfix(f, sync2.LatchSH)
				return err
			}
			k, v, err := decodeLeafEntry(rec)
			if err != nil {
				t.env.Unfix(f, sync2.LatchSH)
				return err
			}
			if to != nil && bytes.Compare(k, to) >= 0 {
				t.env.Unfix(f, sync2.LatchSH)
				return nil
			}
			if !fn(k, v) {
				t.env.Unfix(f, sync2.LatchSH)
				return nil
			}
		}
		hdr, err := readHeader(p)
		if err != nil {
			t.env.Unfix(f, sync2.LatchSH)
			return err
		}
		right := hdr.right
		if right == 0 {
			t.env.Unfix(f, sync2.LatchSH)
			return nil
		}
		rf, err := t.env.Fix(right, sync2.LatchSH)
		if err != nil {
			t.env.Unfix(f, sync2.LatchSH)
			return err
		}
		t.env.Unfix(f, sync2.LatchSH)
		f = rf
	}
}
