// Package btree implements the storage manager's B+Tree index as a
// Lehman-Yao B-link tree (the paper's reference [22]): every node carries a
// right-sibling pointer and a high key, so readers recover from concurrent
// splits by "moving right" instead of holding multi-node latch chains, and
// structure modifications become crash-consistent with a single atomic
// page-image log record per modified existing page.
//
// Node layout on a slotted page (page.TypeBTree):
//
//	slot 0:   node header — flags, level, right sibling, leftmost child,
//	          high key (variable length)
//	slot 1..: entries sorted by key
//	          leaf:     keyLen u16 | key | value
//	          internal: keyLen u16 | key | child u64
//
// Leaves are level 0. An internal node's leftmost child covers keys below
// its first separator; entry i covers [key_i, key_{i+1}).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/page"
)

// Size limits for keys and values so any two entries plus the header fit a
// page.
const (
	MaxKeySize   = 1024
	MaxValueSize = 2048
)

// Errors returned by tree operations.
var (
	ErrKeyTooLarge   = errors.New("btree: key too large")
	ErrValueTooLarge = errors.New("btree: value too large")
	ErrDuplicateKey  = errors.New("btree: duplicate key")
	ErrKeyNotFound   = errors.New("btree: key not found")
	ErrCorruptNode   = errors.New("btree: corrupt node")
)

// header flags.
const (
	flagLeaf = 1 << 0
	flagRoot = 1 << 1
)

// nodeHeader is the decoded slot-0 record.
type nodeHeader struct {
	flags     uint8
	level     uint8
	right     page.ID // right sibling (0 = rightmost)
	leftChild page.ID // internal nodes: child for keys < first separator
	highKey   []byte  // upper bound (exclusive); nil = +infinity (rightmost)
}

func (h nodeHeader) isLeaf() bool { return h.flags&flagLeaf != 0 }
func (h nodeHeader) isRoot() bool { return h.flags&flagRoot != 0 }

// encode serializes the header record.
func (h nodeHeader) encode() []byte {
	b := make([]byte, 18+len(h.highKey))
	b[0] = h.flags
	b[1] = h.level
	binary.LittleEndian.PutUint64(b[2:], uint64(h.right))
	binary.LittleEndian.PutUint64(b[10:], uint64(h.leftChild))
	copy(b[18:], h.highKey)
	return b
}

// decodeHeaderAlias decodes the header with highKey aliasing b — the one
// place the layout (flags, level, right, leftChild, highKey) is read.
func decodeHeaderAlias(b []byte) (nodeHeader, error) {
	if len(b) < 18 {
		return nodeHeader{}, fmt.Errorf("%w: short header", ErrCorruptNode)
	}
	h := nodeHeader{
		flags:     b[0],
		level:     b[1],
		right:     page.ID(binary.LittleEndian.Uint64(b[2:])),
		leftChild: page.ID(binary.LittleEndian.Uint64(b[10:])),
	}
	if len(b) > 18 {
		h.highKey = b[18:]
	}
	return h, nil
}

func decodeHeader(b []byte) (nodeHeader, error) {
	h, err := decodeHeaderAlias(b)
	if err != nil {
		return nodeHeader{}, err
	}
	if h.highKey != nil {
		h.highKey = append([]byte(nil), h.highKey...)
	}
	return h, nil
}

// readHeader loads the header from a node page.
func readHeader(p *page.Page) (nodeHeader, error) {
	rec, err := p.Record(0)
	if err != nil {
		return nodeHeader{}, fmt.Errorf("%w: missing header record", ErrCorruptNode)
	}
	return decodeHeader(rec)
}

// peekHeader is readHeader without the high-key copy: highKey aliases
// page memory. For hot paths that only compare against it and extract
// scalars before the page can change (under a latch, or before an
// optimistic validation whose failure discards every result).
func peekHeader(p *page.Page) (nodeHeader, error) {
	rec, err := p.Record(0)
	if err != nil {
		return nodeHeader{}, fmt.Errorf("%w: missing header record", ErrCorruptNode)
	}
	return decodeHeaderAlias(rec)
}

// entry encoding --------------------------------------------------------

// encodeLeafEntry builds a leaf entry record.
func encodeLeafEntry(key, value []byte) []byte {
	b := make([]byte, 2+len(key)+len(value))
	binary.LittleEndian.PutUint16(b, uint16(len(key)))
	copy(b[2:], key)
	copy(b[2+len(key):], value)
	return b
}

// decodeLeafEntry splits a leaf record into key and value (both aliased).
func decodeLeafEntry(rec []byte) (key, value []byte, err error) {
	if len(rec) < 2 {
		return nil, nil, fmt.Errorf("%w: short leaf entry", ErrCorruptNode)
	}
	kl := int(binary.LittleEndian.Uint16(rec))
	if len(rec) < 2+kl {
		return nil, nil, fmt.Errorf("%w: truncated leaf key", ErrCorruptNode)
	}
	return rec[2 : 2+kl], rec[2+kl:], nil
}

// encodeBranchEntry builds an internal (branch) entry record.
func encodeBranchEntry(key []byte, child page.ID) []byte {
	b := make([]byte, 2+len(key)+8)
	binary.LittleEndian.PutUint16(b, uint16(len(key)))
	copy(b[2:], key)
	binary.LittleEndian.PutUint64(b[2+len(key):], uint64(child))
	return b
}

// decodeBranchEntry splits a branch record into separator key and child.
func decodeBranchEntry(rec []byte) (key []byte, child page.ID, err error) {
	if len(rec) < 10 {
		return nil, 0, fmt.Errorf("%w: short branch entry", ErrCorruptNode)
	}
	kl := int(binary.LittleEndian.Uint16(rec))
	if len(rec) < 2+kl+8 {
		return nil, 0, fmt.Errorf("%w: truncated branch key", ErrCorruptNode)
	}
	return rec[2 : 2+kl], page.ID(binary.LittleEndian.Uint64(rec[2+kl:])), nil
}

// entryKey extracts the key of entry slot i (1-based entries).
func entryKey(p *page.Page, i int) ([]byte, error) {
	rec, err := p.Record(i)
	if err != nil {
		return nil, err
	}
	if len(rec) < 2 {
		return nil, fmt.Errorf("%w: short entry", ErrCorruptNode)
	}
	kl := int(binary.LittleEndian.Uint16(rec))
	if len(rec) < 2+kl {
		return nil, fmt.Errorf("%w: truncated entry", ErrCorruptNode)
	}
	return rec[2 : 2+kl], nil
}

// numEntries returns the number of key entries on the node (slots beyond
// the header).
func numEntries(p *page.Page) int {
	n := p.NumSlots() - 1
	if n < 0 {
		return 0
	}
	return n
}

// searchEntries binary-searches entries for key. It returns the slot of
// the first entry with entryKey >= key (possibly numEntries+1 == one past
// the last slot) and whether an exact match was found at that slot.
func searchEntries(p *page.Page, key []byte) (slot int, exact bool, err error) {
	lo, hi := 1, numEntries(p)+1 // slot range [1, n+1)
	for lo < hi {
		mid := (lo + hi) / 2
		k, err := entryKey(p, mid)
		if err != nil {
			return 0, false, err
		}
		switch bytes.Compare(k, key) {
		case -1:
			lo = mid + 1
		case 0:
			return mid, true, nil
		default:
			hi = mid
		}
	}
	return lo, false, nil
}

// branchChildFor returns the child covering key within this internal node
// (not consulting the right sibling — callers handle move-right first).
func branchChildFor(p *page.Page, hdr nodeHeader, key []byte) (page.ID, error) {
	slot, exact, err := searchEntries(p, key)
	if err != nil {
		return 0, err
	}
	if exact {
		rec, err := p.Record(slot)
		if err != nil {
			return 0, err
		}
		_, child, err := decodeBranchEntry(rec)
		return child, err
	}
	if slot == 1 {
		if hdr.leftChild == 0 {
			return 0, fmt.Errorf("%w: branch without left child", ErrCorruptNode)
		}
		return hdr.leftChild, nil
	}
	rec, err := p.Record(slot - 1)
	if err != nil {
		return 0, err
	}
	_, child, err := decodeBranchEntry(rec)
	return child, err
}

// PageIsRoot reports whether a page.TypeBTree page holds a root node. The
// recovery pass uses it to rediscover index roots from page contents.
func PageIsRoot(p *page.Page) bool {
	hdr, err := readHeader(p)
	return err == nil && hdr.isRoot()
}

// needsMoveRight reports whether key lies beyond this node's key space.
func needsMoveRight(hdr nodeHeader, key []byte) bool {
	return hdr.highKey != nil && bytes.Compare(key, hdr.highKey) >= 0
}
