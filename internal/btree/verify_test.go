package btree

import (
	"math/rand"
	"testing"
)

func TestVerifyHealthyTree(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	rng := rand.New(rand.NewSource(3))
	const n = 3000
	for _, i := range rng.Perm(n) {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := tr.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if keys != n {
		t.Fatalf("Verify counted %d keys, want %d", keys, n)
	}
	scanned, err := tr.CountViaScan()
	if err != nil {
		t.Fatal(err)
	}
	if scanned != n {
		t.Fatalf("leaf chain has %d keys, want %d", scanned, n)
	}
}

func TestVerifyAfterDeletes(t *testing.T) {
	tr, _ := newTestTree(t, 256)
	for i := 0; i < 1000; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i += 3 {
		if _, err := tr.Delete(1, key(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := 1000 - 334 // ceil(1000/3) deleted
	keys, err := tr.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if keys != want {
		t.Fatalf("Verify counted %d, want %d", keys, want)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	tr, env := newTestTree(t, 64)
	for i := 0; i < 10; i++ {
		if err := tr.Insert(1, key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the root leaf: swap two entries' order by rewriting slot 1
	// with a key larger than slot 2's.
	f, err := env.Fix(tr.Root(), 2 /* EX */)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Page().Update(1, encodeLeafEntry([]byte("zzzz"), []byte("v"))); err != nil {
		t.Fatal(err)
	}
	env.Unfix(f, 2)
	if _, err := tr.Verify(); err == nil {
		t.Fatal("Verify accepted an out-of-order node")
	}
}
