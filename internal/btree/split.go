package btree

import (
	"fmt"

	"repro/internal/buffer"
	"repro/internal/page"
	"repro/internal/pageop"
	"repro/internal/sync2"
)

// Structure modification (split) logic. Splits follow the Lehman-Yao
// recipe, ordered so that the log is crash-consistent at every prefix:
//
//  1. The new right node is built on a freshly allocated page with
//     redo-only records. Until step 2 it is unreachable, so a crash here
//     leaks at most one page.
//  2. The (existing) left node is rewritten with ONE atomic page-image
//     record: entries above the split point removed, right pointer and
//     high key set. After this instant every reader finds moved keys by
//     following the right link.
//  3. The separator is inserted into the parent (itself a plain,
//     independently crash-safe insert; if it is missing after a crash,
//     B-link searches still succeed via move-right).
//
// All split records are redo-only: structure modifications are never
// undone (aborting transactions undo their *keys* logically instead).

// splitNode splits the EX-latched full node f (consuming its latch) and
// propagates the separator to the parent. path holds the page ids of the
// ancestors visited during the descent, deepest last.
func (t *Tree) splitNode(txID uint64, f *buffer.Frame, hdr nodeHeader, path []page.ID) error {
	p := f.Page()
	n := numEntries(p)
	if n < 2 {
		t.env.Unfix(f, sync2.LatchEX)
		return fmt.Errorf("%w: split of node with %d entries", ErrCorruptNode, n)
	}
	if hdr.isRoot() {
		return t.splitRoot(txID, f, hdr)
	}

	// Snapshot the entries (they alias page memory we are about to
	// rewrite).
	entries := make([][]byte, 0, n)
	for i := 1; i <= n; i++ {
		rec, err := p.Record(i)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		entries = append(entries, append([]byte(nil), rec...))
	}
	mid := n / 2
	sepKey, err := entryKeyFromRecord(entries[mid])
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	sepKey = append([]byte(nil), sepKey...)

	// Step 1: build the new right node.
	newPid, err := t.env.AllocPage(t.store)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	rightHdr := nodeHeader{
		flags:   hdr.flags &^ flagRoot,
		level:   hdr.level,
		right:   hdr.right,
		highKey: hdr.highKey,
	}
	var rightEntries [][]byte
	if hdr.isLeaf() {
		rightEntries = entries[mid:]
	} else {
		// Branch split: the separator moves up; its child becomes the new
		// node's leftmost child.
		_, sepChild, err := decodeBranchEntry(entries[mid])
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		rightHdr.leftChild = sepChild
		rightEntries = entries[mid+1:]
	}
	if err := t.writeFreshNode(txID, newPid, rightHdr, rightEntries); err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}

	// Step 2: atomically rewrite the left node.
	leftHdr := nodeHeader{
		flags:     hdr.flags,
		level:     hdr.level,
		right:     newPid,
		leftChild: hdr.leftChild,
		highKey:   sepKey,
	}
	img := buildNodeImage(p.PID(), t.store, leftHdr, entries[:mid])
	err = t.env.Log(txID, f, pageop.Op{Kind: pageop.KindPageImage, Data: img}, nil)
	t.env.Unfix(f, sync2.LatchEX)
	if err != nil {
		return err
	}

	// Step 3: propagate the separator to the level above the split node.
	parent := t.root
	var parentPath []page.ID
	if len(path) > 0 {
		parent = path[len(path)-1]
		parentPath = path[:len(path)-1]
	}
	return t.insertIntoBranch(txID, parent, parentPath, hdr.level+1, sepKey, newPid)
}

// entryKeyFromRecord extracts the key from a raw entry record.
func entryKeyFromRecord(rec []byte) ([]byte, error) {
	if len(rec) < 2 {
		return nil, fmt.Errorf("%w: short entry", ErrCorruptNode)
	}
	kl := int(rec[0]) | int(rec[1])<<8
	if len(rec) < 2+kl {
		return nil, fmt.Errorf("%w: truncated entry", ErrCorruptNode)
	}
	return rec[2 : 2+kl], nil
}

// writeFreshNode formats a new page as a node with hdr and entries,
// logging redo-only records.
func (t *Tree) writeFreshNode(txID uint64, pid page.ID, hdr nodeHeader, entries [][]byte) error {
	f, err := t.env.FixNew(pid)
	if err != nil {
		return err
	}
	defer t.env.Unfix(f, sync2.LatchEX)
	img := buildNodeImage(pid, t.store, hdr, entries)
	// One image record covers format + header + all entries atomically.
	return t.env.Log(txID, f, pageop.Op{Kind: pageop.KindPageImage, Data: img}, nil)
}

// buildNodeImage constructs the full page bytes of a node.
func buildNodeImage(pid page.ID, store uint32, hdr nodeHeader, entries [][]byte) []byte {
	buf := make([]byte, page.Size)
	p, err := page.Wrap(buf)
	if err != nil {
		panic(err) // buf is page.Size by construction
	}
	p.Init(pid, page.TypeBTree, store)
	if err := p.InsertAt(0, hdr.encode()); err != nil {
		panic(fmt.Sprintf("btree: node image header: %v", err))
	}
	for i, e := range entries {
		if err := p.InsertAt(i+1, e); err != nil {
			panic(fmt.Sprintf("btree: node image entry %d: %v", i, err))
		}
	}
	return buf
}

// splitRoot splits the EX-latched full root (consuming the latch). The
// root page id stays stable: its contents move into two fresh children and
// the root becomes (or stays) a branch one level up.
func (t *Tree) splitRoot(txID uint64, f *buffer.Frame, hdr nodeHeader) error {
	p := f.Page()
	n := numEntries(p)
	entries := make([][]byte, 0, n)
	for i := 1; i <= n; i++ {
		rec, err := p.Record(i)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		entries = append(entries, append([]byte(nil), rec...))
	}
	mid := n / 2
	sepKey, err := entryKeyFromRecord(entries[mid])
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	sepKey = append([]byte(nil), sepKey...)

	leftPid, err := t.env.AllocPage(t.store)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	rightPid, err := t.env.AllocPage(t.store)
	if err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}

	childFlags := hdr.flags &^ flagRoot
	rightHdr := nodeHeader{flags: childFlags, level: hdr.level, right: 0, highKey: nil}
	var rightEntries [][]byte
	if hdr.isLeaf() {
		rightEntries = entries[mid:]
	} else {
		_, sepChild, err := decodeBranchEntry(entries[mid])
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		rightHdr.leftChild = sepChild
		rightEntries = entries[mid+1:]
	}
	leftHdr := nodeHeader{
		flags:     childFlags,
		level:     hdr.level,
		right:     rightPid,
		leftChild: hdr.leftChild,
		highKey:   sepKey,
	}
	// Children are unreachable until the root image lands; order between
	// them is irrelevant.
	if err := t.writeFreshNode(txID, leftPid, leftHdr, entries[:mid]); err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	if err := t.writeFreshNode(txID, rightPid, rightHdr, rightEntries); err != nil {
		t.env.Unfix(f, sync2.LatchEX)
		return err
	}
	// Atomic root rewrite: one level up, pointing at the two children.
	rootHdr := nodeHeader{
		flags:     flagRoot,
		level:     hdr.level + 1,
		leftChild: leftPid,
	}
	img := buildNodeImage(p.PID(), t.store, rootHdr, [][]byte{encodeBranchEntry(sepKey, rightPid)})
	err = t.env.Log(txID, f, pageop.Op{Kind: pageop.KindPageImage, Data: img}, nil)
	t.env.Unfix(f, sync2.LatchEX)
	return err
}

// insertIntoBranch inserts a separator (sepKey → child) into the branch at
// level targetLevel responsible for sepKey, starting the walk at pid
// (usually the parent recorded during descent). It moves right past
// concurrent splits, descends if the hint is too high (e.g. the root after
// it grew levels), restarts from the root if the hint is stale-low, and
// splits the branch itself if full.
func (t *Tree) insertIntoBranch(txID uint64, pid page.ID, path []page.ID, targetLevel uint8, sepKey []byte, child page.ID) error {
	entry := encodeBranchEntry(sepKey, child)
	for {
		f, err := t.env.Fix(pid, sync2.LatchEX)
		if err != nil {
			return err
		}
		hdr, err := readHeader(f.Page())
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		f, hdr, err = t.moveRight(f, hdr, sepKey, sync2.LatchEX)
		if err != nil {
			return err
		}
		if hdr.level < targetLevel {
			// Stale hint below the target level: restart from the root.
			t.env.Unfix(f, sync2.LatchEX)
			pid = t.root
			path = nil
			continue
		}
		if hdr.level > targetLevel {
			// Too high (e.g. the root grew): descend one level.
			next, err := branchChildFor(f.Page(), hdr, sepKey)
			if err != nil {
				t.env.Unfix(f, sync2.LatchEX)
				return err
			}
			path = append(path, f.Page().PID())
			t.env.Unfix(f, sync2.LatchEX)
			pid = next
			continue
		}
		slot, exact, err := searchEntries(f.Page(), sepKey)
		if err != nil {
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		if exact {
			// Separator already present (retry after partial failure).
			t.env.Unfix(f, sync2.LatchEX)
			return nil
		}
		if f.Page().CanFit(len(entry)) {
			err := t.env.Log(txID, f, pageop.Op{Kind: pageop.KindInsertAt, Slot: uint16(slot), Data: entry}, nil)
			t.env.Unfix(f, sync2.LatchEX)
			return err
		}
		// Branch full: split it (consumes the latch), then retry.
		if err := t.splitNode(txID, f, hdr, path); err != nil {
			return err
		}
	}
}
