package peers

import (
	"repro/internal/sim"
)

// Peer-engine archetypes, each reduced to the bottleneck structure §4
// reports from profiling:
//
//   - Shore: cooperative user-level threads on ONE OS thread — effectively
//     a single giant lock around the whole engine. Throughput plateaus at
//     its single-thread rate (Figure 1's flat "shore" line).
//   - BerkeleyDB: "spends over 80% of its processing time in _db_tas_lock
//     and _lock_try" — test-and-set spinning on page-level tree latches
//     (_bam_search/_bam_get_root). Fast at 1–4 threads (low overhead),
//     collapses under spinner storms (Figure 1/4's precipitous drop).
//   - MySQL/InnoDB: the srv_conc_enter_innodb admission gate blocks ~39%
//     of execution, and log_preflush_pool_modified_pages another ~20%;
//     plus malloc-related mutexes.
//   - PostgreSQL: XLogInsert serialization, malloc in transaction
//     setup/teardown, and index-metadata locking — "only 10-15% of total
//     thread time, but that is enough to limit scalability".
//   - DBMS "X": a well-tuned engine that scales to 32 with a looming
//     log-insert bottleneck (§5: "both face looming bottlenecks (both in
//     log inserts, as it happens)").

// ShoreSingle is the original, cooperatively-threaded Shore.
func ShoreSingle() InsertModel {
	return InsertModel{
		Name: "shore",
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			engine := s.NewMutex("engine(single-threaded)", sim.KindBlocking)
			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						// The entire insert runs inside the engine lock:
						// cooperative threading permits no parallelism.
						ctx.Lock(engine)
						ctx.Work(420000) // unoptimized Shore path (~2.4 tx/s)
						n++
						commits[i]++ // commits[] counts record inserts
						if n >= InsertsPerTx {
							n = 0
							ctx.Sleep(120000)
						}
						ctx.Unlock(engine)
					}
				}
			}
		},
	}
}

// BerkeleyDB models page-level TAS locking.
func BerkeleyDB() InsertModel {
	return InsertModel{
		Name: "bdb",
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			// The root and upper-level tree pages: a handful of hot
			// test-and-set latches every insert must take.
			root := s.NewMutex("_bam_get_root", sim.KindTAS)
			upper := s.NewMutex("_bam_search", sim.KindTAS)
			logMu := s.NewMutex("log", sim.KindTATAS)
			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						// Very lean single-thread path: BDB is the fastest
						// engine at low thread counts (§5 footnote 6).
						ctx.Work(33000)
						ctx.Lock(root)
						ctx.Work(4000)
						ctx.Unlock(root)
						ctx.Work(15000)
						// Page-level locking (the paper: BDB is "the only
						// storage engine without row-level locking; its
						// page-level locks can severely limit concurrency"):
						// the lock is held across the whole leaf update.
						ctx.Lock(upper)
						ctx.Work(20000)
						ctx.Unlock(upper)
						ctx.Lock(logMu)
						ctx.Work(4000)
						ctx.Unlock(logMu)
						ctx.Work(14000)
						n++
						commits[i]++ // commits[] counts record inserts
						if n >= InsertsPerTx {
							n = 0
							ctx.Sleep(120000)
						}
					}
				}
			}
		},
	}
}

// MySQL models InnoDB's admission gate and log preflush stalls.
func MySQL() InsertModel {
	return InsertModel{
		Name: "mysql",
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			// srv_conc_enter_innodb: a fixed-capacity admission gate
			// (default innodb_thread_concurrency era: 8). Rejected threads
			// SLEEP for innodb_thread_sleep_delay (10ms) and retry — slots
			// idle while everyone sleeps, so oversubscription *drops*
			// throughput instead of flattening it.
			gate := s.NewSemaphore("srv_conc_enter_innodb", 8)
			preflush := s.NewMutex("log_preflush_pool", sim.KindBlocking)
			malloc := s.NewMutex("malloc", sim.KindBlocking)
			// log_sys is a spin mutex: its hand-off storm grows with the
			// number of spinners, which is what turns MySQL's curve from a
			// plateau into the paper's "significant drop".
			logMu := s.NewMutex("log_sys", sim.KindTAS)
			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						ctx.Acquire(gate)
						ctx.Work(50000)
						ctx.Lock(malloc)
						ctx.Work(2000)
						ctx.Unlock(malloc)
						ctx.Work(48000)
						ctx.Release(gate)
						// The log write happens outside the admission gate
						// (commit path), so ALL clients spin on it — the
						// storm grows with the client count, not the gate
						// capacity.
						ctx.Lock(logMu)
						ctx.Work(8000)
						ctx.Unlock(logMu)
						n++
						if n%256 == 255 {
							// log_preflush_pool_modified_pages: a global
							// stall flushing dirty pages ahead of the log.
							ctx.Lock(preflush)
							ctx.Sleep(2500000)
							ctx.Unlock(preflush)
						}
						// MySQL's benchmark commits every 10000 records
						// (§3.2 modified it to allow meaningful comparison);
						// count in 1000-insert units for comparability.
						commits[i]++ // commits[] counts record inserts
						if n >= 10*InsertsPerTx {
							n = 0
							ctx.Sleep(150000)
						}
					}
				}
			}
		},
	}
}

// Postgres models the XLogInsert / malloc / index-metadata trio.
func Postgres() InsertModel {
	return InsertModel{
		Name: "postgres",
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			xlog := s.NewMutex("XLogInsert", sim.KindBlocking)
			malloc := s.NewMutex("malloc", sim.KindBlocking)
			meta := s.NewMutex("ExecOpenIndices", sim.KindBlocking)
			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						// CreateExecutorState: malloc under a process-shared
						// arena lock.
						ctx.Lock(malloc)
						ctx.Work(3000)
						ctx.Unlock(malloc)
						// Index metadata lock, even though tables are
						// private ("no two transactions ever access the
						// same table").
						ctx.Lock(meta)
						ctx.Work(2500)
						ctx.Unlock(meta)
						ctx.Work(60000)
						ctx.Lock(xlog)
						ctx.Work(7000)
						ctx.Unlock(xlog)
						// ExecutorEnd: more malloc.
						ctx.Lock(malloc)
						ctx.Work(2000)
						ctx.Unlock(malloc)
						ctx.Work(60000)
						n++
						commits[i]++ // commits[] counts record inserts
						if n >= InsertsPerTx {
							n = 0
							ctx.Sleep(150000)
						}
					}
				}
			}
		},
	}
}

// DBMSX models the commercial engine: well partitioned, scaling to 32
// clients with a small but growing log-insert serialization.
func DBMSX() InsertModel {
	return InsertModel{
		Name: "dbms-x",
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			logMu := s.NewMutex("log-insert", sim.KindMCS)
			local := make([]*sim.Mutex, threads)
			for i := range local {
				local[i] = s.NewMutex("partitioned", sim.KindHybrid)
			}
			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						ctx.Work(60000)
						ctx.Lock(local[i])
						ctx.Work(5000)
						ctx.Unlock(local[i])
						ctx.Lock(logMu)
						ctx.Work(1800)
						ctx.Unlock(logMu)
						ctx.Work(60000)
						n++
						commits[i]++ // commits[] counts record inserts
						if n >= InsertsPerTx {
							n = 0
							ctx.Sleep(120000)
						}
					}
				}
			}
		},
	}
}

// Figure4Models returns the engines of Figure 4 in its legend order.
func Figure4Models() []InsertModel {
	return []InsertModel{
		ShoreSingle(), BerkeleyDB(), MySQL(), Postgres(), DBMSX(), ShoreMT(),
	}
}

// Figure1Models returns the four open-source engines of Figure 1.
func Figure1Models() []InsertModel {
	return []InsertModel{Postgres(), MySQL(), ShoreSingle(), BerkeleyDB()}
}
