package peers

import (
	"testing"

	"repro/internal/sim"
)

const ms = 1e6

// runModel executes an insert model and returns total inserts.
func runModel(t *testing.T, m InsertModel, threads int, horizon float64) int {
	t.Helper()
	s := sim.New(sim.Niagara())
	commits := make([]int, threads)
	factory := m.Setup(s, threads, horizon, commits)
	for i := 0; i < threads; i++ {
		s.Spawn(factory(i))
	}
	s.Run(horizon)
	total := 0
	for _, c := range commits {
		total += c
	}
	return total
}

func TestAllInsertModelsProduceWork(t *testing.T) {
	models := append(Figure4Models(), Figure6Variants()...)
	for _, name := range StageNames() {
		models = append(models, ShoreStage(name))
	}
	for _, m := range models {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			if got := runModel(t, m, 4, 30*ms); got <= 0 {
				t.Fatalf("%s produced %d inserts", m.Name, got)
			}
		})
	}
}

func TestStageLadderSingleThreadImproves(t *testing.T) {
	// Single-thread performance must not regress along the ladder (§7: it
	// improved ~3x overall as a side effect).
	prev := 0
	for _, name := range StageNames() {
		got := runModel(t, ShoreStage(name), 1, 50*ms)
		if got < prev {
			t.Errorf("stage %q single-thread regressed: %d after %d", name, got, prev)
		}
		prev = got
	}
}

func TestStageNamesMatchFigure7(t *testing.T) {
	want := []string{"baseline", "bpool 1", "caching", "log", "lock mgr", "bpool 2", "final"}
	got := StageNames()
	if len(got) != len(want) {
		t.Fatalf("StageNames = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StageNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	for _, name := range got {
		if ShoreStage(name).Name != name {
			t.Errorf("ShoreStage(%q).Name = %q", name, ShoreStage(name).Name)
		}
	}
	if ShoreMT().Name != "shore-mt" {
		t.Error("ShoreMT name")
	}
	// Unknown stage falls back to baseline parameters but keeps the name.
	if runModel(t, ShoreStage("nonsense"), 1, 20*ms) <= 0 {
		t.Error("unknown stage should still run (baseline params)")
	}
}

func TestFigureModelRosters(t *testing.T) {
	f1 := Figure1Models()
	if len(f1) != 4 {
		t.Fatalf("figure 1 has %d engines, want 4", len(f1))
	}
	f4 := Figure4Models()
	if len(f4) != 6 {
		t.Fatalf("figure 4 has %d engines, want 6", len(f4))
	}
	if f4[len(f4)-1].Name != "shore-mt" {
		t.Error("figure 4 must end with shore-mt")
	}
	f6 := Figure6Variants()
	if len(f6) != 4 {
		t.Fatalf("figure 6 has %d variants, want 4", len(f6))
	}
	if f6[0].Name != "bpool 1" || f6[3].Name != "Refactor" {
		t.Errorf("figure 6 variant order wrong: %s..%s", f6[0].Name, f6[3].Name)
	}
	f5 := Figure5Models()
	if len(f5) != 3 {
		t.Fatalf("figure 5 has %d engines, want 3", len(f5))
	}
}

func TestTpccModelsProduceWork(t *testing.T) {
	for _, m := range Figure5Models() {
		m := m
		for _, kind := range []string{"payment", "neworder"} {
			kind := kind
			t.Run(m.Name+"/"+kind, func(t *testing.T) {
				s := sim.New(sim.Niagara())
				commits := make([]int, 4)
				payment, newOrder := m.Setup(s, 4, 30*ms, commits)
				for i := 0; i < 4; i++ {
					if kind == "payment" {
						s.Spawn(payment(i))
					} else {
						s.Spawn(newOrder(i))
					}
				}
				s.Run(30 * ms)
				total := 0
				for _, c := range commits {
					total += c
				}
				if total <= 0 {
					t.Fatalf("%s/%s produced no transactions", m.Name, kind)
				}
			})
		}
	}
}

func TestModelDeterminism(t *testing.T) {
	a := runModel(t, MySQL(), 12, 30*ms)
	b := runModel(t, MySQL(), 12, 30*ms)
	if a != b {
		t.Fatalf("mysql model nondeterministic: %d vs %d", a, b)
	}
}
