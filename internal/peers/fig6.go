package peers

import (
	"repro/internal/sim"
)

// Figure 6 — the free-space-manager case study of §6.1. Four variants of
// ONE critical section, everything else held fixed at the "bpool 1" stage:
//
//   - "bpool 1":     pthread (blocking) mutex, page latch acquired inside
//     the critical section;
//   - "T&T&S mutex": same structure, test-and-test-and-set mutex — ~90%
//     faster single-threaded (no futex overhead) but scalability drops;
//   - "MCS mutex":   scalable queue lock, critical section still contended;
//   - "Refactor":    latch acquire moved outside the mutex — ~30% slower
//     single-threaded (extra hand-off) but ~200% faster at 32 threads.
func Figure6Variants() []InsertModel {
	type variant struct {
		name      string
		kind      sim.MutexKind
		latchIn   bool
		extraWork float64 // refactor's re-validation overhead
	}
	variants := []variant{
		{"bpool 1", sim.KindBlocking, true, 0},
		{"T&T&S mutex", sim.KindTATAS, true, 0},
		{"MCS mutex", sim.KindMCS, true, 0},
		{"Refactor", sim.KindMCS, false, 30000},
	}
	out := make([]InsertModel, 0, len(variants))
	for _, v := range variants {
		v := v
		out = append(out, InsertModel{
			Name: v.name,
			Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
				fsmMu := s.NewMutex("fsm", v.kind)
				// Page latches are per-page: each thread appends to its own
				// private table, so the latched pages differ per thread.
				// With the latch inside the global critical section that
				// privacy is wasted — everything serializes through the
				// mutex anyway; moving the latch outside (the refactor)
				// lets the latch work proceed in parallel.
				latches := make([]*sim.Latch, threads)
				local := make([]*sim.Mutex, threads)
				for i := range local {
					latches[i] = s.NewLatch("fsm-page")
					local[i] = s.NewMutex("bucket", sim.KindHybrid)
				}
				return func(i int) sim.Script {
					return func(ctx *sim.Ctx) {
						n := 0
						for ctx.Now() < horizon {
							ctx.Work(60000 + v.extraWork)
							ctx.Lock(local[i])
							ctx.Work(8000)
							ctx.Unlock(local[i])
							// The pthread mutex pays its heavy futex entry
							// path on the caller's side, before the critical
							// section proper ("the reduced overhead improved
							// single-thread performance by 90%").
							if v.kind == sim.KindBlocking {
								ctx.Work(60000)
							}
							// The §6.1 critical section.
							ctx.Lock(fsmMu)
							ctx.Work(4000)
							if v.latchIn {
								ctx.Latch(latches[i], sim.EX)
								ctx.Work(20000)
								ctx.Unlatch(latches[i], sim.EX)
							}
							ctx.Unlock(fsmMu)
							if !v.latchIn {
								ctx.Latch(latches[i], sim.EX)
								ctx.Work(20000)
								ctx.Unlatch(latches[i], sim.EX)
							}
							ctx.Work(60000)
							n++
							commits[i]++ // commits[] counts record inserts
							if n >= InsertsPerTx {
								n = 0
								ctx.Sleep(120000)
							}
						}
					}
				}
			},
		})
	}
	return out
}
