package peers

import (
	"math/rand"

	"repro/internal/sim"
)

// Figure 5 — TPC-C New Order (left) and Payment (right), per-client
// throughput for the three fastest engines: Shore-MT, DBMS "X" and
// PostgreSQL.
//
// The defining shapes (§5): all three engines dip around 16 clients on New
// Order because of application-level contention in the shared STOCK and
// ITEM tables; Payment "imposes no application-level contention, allowing
// Shore-MT to scale all the way to 32 threads" (warehouses scale with
// clients, so each client's hot WAREHOUSE row is private here — contention
// is engine-internal only).

// TpccModel produces Payment and New Order scripts for one engine.
type TpccModel struct {
	Name string
	// Setup registers resources; returned factories build per-client
	// Payment and New Order scripts.
	Setup func(s *sim.Sim, threads int, horizon float64, commits []int) (payment, newOrder func(i int) sim.Script)
}

// tpccEngineParams reduces an engine to its TPC-C-relevant structure.
type tpccEngineParams struct {
	name        string
	logKind     sim.MutexKind
	logHold     float64
	perOpWork   float64 // per row-access engine work
	lockMgrKind sim.MutexKind
	lockGlobal  bool
	lockHold    float64
	commitSleep float64
	gateCap     int // >0: admission gate (mysql-style); unused for fig5 engines
}

func shoreMTTpcc() tpccEngineParams {
	return tpccEngineParams{
		name: "shore-mt", logKind: sim.KindTicket, logHold: 900,
		perOpWork: 9000, lockMgrKind: sim.KindHybrid, lockGlobal: false,
		lockHold: 1500, commitSleep: 120000,
	}
}

func dbmsxTpcc() tpccEngineParams {
	return tpccEngineParams{
		name: "dbms-x", logKind: sim.KindMCS, logHold: 1800,
		perOpWork: 11000, lockMgrKind: sim.KindHybrid, lockGlobal: false,
		lockHold: 1800, commitSleep: 120000,
	}
}

func postgresTpcc() tpccEngineParams {
	return tpccEngineParams{
		name: "postgres", logKind: sim.KindBlocking, logHold: 7000,
		perOpWork: 22000, lockMgrKind: sim.KindBlocking, lockGlobal: true,
		lockHold: 2500, commitSleep: 150000,
	}
}

// Figure5Models returns the three engines of Figure 5.
func Figure5Models() []TpccModel {
	params := []tpccEngineParams{postgresTpcc(), dbmsxTpcc(), shoreMTTpcc()}
	out := make([]TpccModel, 0, len(params))
	for _, p := range params {
		p := p
		out = append(out, TpccModel{Name: p.name, Setup: buildTpcc(p)})
	}
	return out
}

// Shared-table contention geometry: the paper's setup scales warehouses
// with clients, but ITEM is one shared table and STOCK rows for popular
// items collide across warehouses through NURand skew. A fixed pool of hot
// item/stock page latches models this: collisions are rare below ~8
// clients and bite hard past ~16.
const (
	hotItemLatches  = 12
	hotStockLatches = 24
	linesPerOrder   = 10
)

func buildTpcc(p tpccEngineParams) func(s *sim.Sim, threads int, horizon float64, commits []int) (func(i int) sim.Script, func(i int) sim.Script) {
	return func(s *sim.Sim, threads int, horizon float64, commits []int) (func(i int) sim.Script, func(i int) sim.Script) {
		logMu := s.NewMutex("log-insert", p.logKind)
		lockMu := s.NewMutex("lockmgr", p.lockMgrKind)
		lockLocal := make([]*sim.Mutex, threads)
		for i := range lockLocal {
			lockLocal[i] = s.NewMutex("lock-bucket", p.lockMgrKind)
		}
		itemLatch := make([]*sim.Latch, hotItemLatches)
		for i := range itemLatch {
			itemLatch[i] = s.NewLatch("item-page")
		}
		stockLatch := make([]*sim.Latch, hotStockLatches)
		for i := range stockLatch {
			stockLatch[i] = s.NewLatch("stock-page")
		}

		lockOp := func(ctx *sim.Ctx, i int) {
			if p.lockGlobal {
				ctx.Lock(lockMu)
				ctx.Work(p.lockHold)
				ctx.Unlock(lockMu)
			} else {
				ctx.Lock(lockLocal[i])
				ctx.Work(p.lockHold)
				ctx.Unlock(lockLocal[i])
			}
		}
		logOp := func(ctx *sim.Ctx) {
			ctx.Lock(logMu)
			ctx.Work(p.logHold)
			ctx.Unlock(logMu)
		}

		payment := func(i int) sim.Script {
			return func(ctx *sim.Ctx) {
				for ctx.Now() < horizon {
					// Read 1-3 rows, update 4 (warehouse, district,
					// customer, history insert) — all in this client's own
					// warehouse: engine-internal contention only.
					for op := 0; op < 3; op++ {
						lockOp(ctx, i)
						ctx.Work(p.perOpWork)
					}
					for op := 0; op < 4; op++ {
						lockOp(ctx, i)
						ctx.Work(p.perOpWork)
						logOp(ctx)
					}
					ctx.Sleep(p.commitSleep)
					commits[i]++
				}
			}
		}
		newOrder := func(i int) sim.Script {
			return func(ctx *sim.Ctx) {
				rng := rand.New(rand.NewSource(int64(1000 + i)))
				for ctx.Now() < horizon {
					// Customer/district/warehouse reads + order insert.
					for op := 0; op < 3; op++ {
						lockOp(ctx, i)
						ctx.Work(p.perOpWork)
					}
					lockOp(ctx, i)
					ctx.Work(p.perOpWork)
					logOp(ctx)
					// ~10 lines: item probe (SH on a hot shared page),
					// stock update (EX on a semi-shared page), line insert.
					for l := 0; l < linesPerOrder; l++ {
						it := itemLatch[rng.Intn(hotItemLatches)]
						ctx.Latch(it, sim.SH)
						ctx.Work(2500)
						ctx.Unlatch(it, sim.SH)

						st := stockLatch[rng.Intn(hotStockLatches)]
						lockOp(ctx, i)
						ctx.Latch(st, sim.EX)
						ctx.Work(4000)
						ctx.Unlatch(st, sim.EX)
						logOp(ctx)

						lockOp(ctx, i)
						ctx.Work(p.perOpWork / 2)
						logOp(ctx)
					}
					ctx.Sleep(p.commitSleep)
					commits[i]++
				}
			}
		}
		return payment, newOrder
	}
}
