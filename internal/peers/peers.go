// Package peers models the storage engines of the paper's evaluation as
// critical-section scripts over the contention simulator: the four
// open-source engines of §4 (Shore, BerkeleyDB, MySQL/InnoDB, PostgreSQL),
// the commercial "DBMS X", and every Shore→Shore-MT optimization stage of
// §7. Each model reduces an engine to the synchronization structure the
// paper's profiles identified — which is exactly the level at which the
// figures' shapes are determined.
//
// Service times are virtual nanoseconds. They are calibrated to two
// anchors from the paper: Figure 7's baseline Shore runs ~2.4 tx/s
// single-threaded (transactions of 1000 record inserts ⇒ ~420µs per
// insert), and final Shore-MT is ~3× faster single-threaded; everything
// else is relative structure. Absolute values are not claims — shapes are.
package peers

import (
	"repro/internal/sim"
)

// Transaction commit boundary of the insert microbenchmark (§3.2:
// "transactions commit every 1000 records").
const InsertsPerTx = 1000

// InsertModel is one engine's record-insert microbenchmark behaviour.
type InsertModel struct {
	Name string
	// Setup registers the engine's shared resources on s and returns the
	// per-thread script factory. commits[i] counts record inserts; the
	// harness divides by InsertsPerTx for transactions.
	Setup func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script
}

// shoreStageParams captures a Figure 7 stage's critical-section structure.
type shoreStageParams struct {
	name string
	// per-insert CPU outside any critical section
	baseWork float64
	// buffer pool: 3 page fixes per insert
	bpoolGlobal bool
	bpoolKind   sim.MutexKind
	bpoolHold   float64
	// clock hand + in-transit lists: serialized on page misses until §7.6
	clockHold  float64
	clockEvery int // one miss every N inserts (0 = never)
	// free space manager: one allocation-check per insert
	fsmKind       sim.MutexKind
	fsmHold       float64
	fsmLatchInCS  bool    // the Figure 6 pathology
	fsmLatchHold  float64 // metadata page latch
	fsmLatchEvery int     // latch taken every N inserts (caches make it rare)
	// log manager
	logKind    sim.MutexKind
	logHold    float64
	logCoupled bool // synchronous flush inside the insert mutex
	// lock manager
	lockGlobal bool
	lockKind   sim.MutexKind
	lockHold   float64
	// commit-time group-commit latency (I/O wait, no CPU)
	commitSleep float64
}

// stageParams maps each Figure 7 stage to its structure. The progression
// mirrors §7: every stage changes exactly what the paper changed.
func stageParams(stage string) shoreStageParams {
	p := shoreStageParams{
		name:     stage,
		baseWork: 110000, // unoptimized single-thread code path
		// §7.1 baseline: one global pthread mutex in every component; the
		// buffer pool's is held across whole chain searches.
		bpoolGlobal: true, bpoolKind: sim.KindBlocking, bpoolHold: 50000,
		clockHold: 50000, clockEvery: 6,
		fsmKind: sim.KindBlocking, fsmHold: 12000,
		fsmLatchInCS: true, fsmLatchHold: 25000, fsmLatchEvery: 1,
		logKind: sim.KindBlocking, logHold: 25000, logCoupled: true,
		lockGlobal: true, lockKind: sim.KindBlocking, lockHold: 15000,
		commitSleep: 120000,
	}
	switch stage {
	case "baseline":
		return p
	case "bpool 1":
		// §7.2: per-bucket bpool locks + atomic pin + spin-then-block
		// fast paths; single-thread performance doubles as a side effect.
		p.name = stage
		p.bpoolGlobal = false
		p.bpoolKind = sim.KindHybrid
		p.bpoolHold = 6000
		p.baseWork = 120000
		return p
	case "caching":
		// §7.3: free-space refactor (MCS, latch outside the critical
		// section), extent/oldest-tx caches make metadata latching rare.
		q := stageParams("bpool 1")
		q.name = stage
		q.fsmKind = sim.KindMCS
		q.fsmHold = 3000
		q.fsmLatchInCS = false
		q.fsmLatchHold = 12000
		q.fsmLatchEvery = 16
		return q
	case "log":
		// §7.4: decoupled log (separate insert mutex, background flush),
		// cuckoo bpool table, thread-local malloc.
		q := stageParams("caching")
		q.name = stage
		q.logKind = sim.KindMCS
		q.logHold = 5000
		q.logCoupled = false
		q.bpoolHold = 3500
		q.baseWork = 100000
		q.fsmLatchEvery = 64 // extent-id cache (§7.4): hottest accesses skip metadata
		return q
	case "lock mgr":
		// §7.5: per-bucket lock table + lock-free request pool.
		q := stageParams("log")
		q.name = stage
		q.lockGlobal = false
		q.lockKind = sim.KindHybrid
		q.lockHold = 4000
		return q
	case "bpool 2":
		// §7.6: clock-hand release + partitioned in-transit lists: misses
		// stop serializing on the replacement machinery.
		q := stageParams("lock mgr")
		q.name = stage
		q.clockHold = 0
		q.clockEvery = 0
		q.bpoolHold = 2500
		return q
	case "final":
		// §7.7: consolidated log buffer (insert CS shrinks to a hand-off),
		// no lock-table probe on B-tree search, cleaner-fed checkpoints.
		q := stageParams("bpool 2")
		q.name = stage
		q.logKind = sim.KindTicket
		q.logHold = 900
		q.baseWork = 90000
		return q
	default:
		return p
	}
}

// StageNames lists the Figure 7 stages in order.
func StageNames() []string {
	return []string{"baseline", "bpool 1", "caching", "log", "lock mgr", "bpool 2", "final"}
}

// ShoreStage returns the insert model of one Figure 7 stage.
func ShoreStage(stage string) InsertModel {
	p := stageParams(stage)
	return shoreModel(p)
}

// ShoreMT is the finished system (Figure 4's "shore-mt").
func ShoreMT() InsertModel {
	m := shoreModel(stageParams("final"))
	m.Name = "shore-mt"
	return m
}

// shoreModel builds the microbenchmark script from stage parameters.
func shoreModel(p shoreStageParams) InsertModel {
	return InsertModel{
		Name: p.name,
		Setup: func(s *sim.Sim, threads int, horizon float64, commits []int) func(i int) sim.Script {
			bpoolMu := s.NewMutex("bpool", p.bpoolKind)
			clockMu := s.NewMutex("clock+transit", sim.KindBlocking)
			// Per-thread bucket mutexes model per-bucket locking with
			// private tables (no cross-thread bucket collisions).
			bpoolLocal := make([]*sim.Mutex, threads)
			lockLocal := make([]*sim.Mutex, threads)
			for i := range bpoolLocal {
				bpoolLocal[i] = s.NewMutex("bpool-bucket", p.bpoolKind)
				lockLocal[i] = s.NewMutex("lock-bucket", p.lockKind)
			}
			fsmMu := s.NewMutex("fsm", p.fsmKind)
			fsmLatch := s.NewLatch("fsm-page")
			logMu := s.NewMutex("log", p.logKind)
			lockMu := s.NewMutex("lockmgr", p.lockKind)

			return func(i int) sim.Script {
				return func(ctx *sim.Ctx) {
					n := 0
					for ctx.Now() < horizon {
						// Useful work of the insert (B-tree descent, record
						// copy): spread so critical sections interleave.
						ctx.Work(p.baseWork / 2)

						// Buffer pool: three page fixes per insert (§6.2.1).
						for k := 0; k < 3; k++ {
							if p.bpoolGlobal {
								ctx.Lock(bpoolMu)
								ctx.Work(p.bpoolHold)
								ctx.Unlock(bpoolMu)
							} else {
								ctx.Lock(bpoolLocal[i])
								ctx.Work(p.bpoolHold)
								ctx.Unlock(bpoolLocal[i])
							}
						}
						// Page miss: clock hand + in-transit list, one
						// global critical section until §7.6.
						if p.clockEvery > 0 && n%p.clockEvery == p.clockEvery-1 {
							ctx.Lock(clockMu)
							ctx.Work(p.clockHold)
							ctx.Unlock(clockMu)
						}

						// Free space manager: the Figure 6 critical section.
						takeLatch := p.fsmLatchEvery > 0 && n%p.fsmLatchEvery == 0
						ctx.Lock(fsmMu)
						ctx.Work(p.fsmHold)
						if p.fsmLatchInCS && takeLatch {
							ctx.Latch(fsmLatch, sim.EX)
							ctx.Work(p.fsmLatchHold)
							ctx.Unlatch(fsmLatch, sim.EX)
						}
						ctx.Unlock(fsmMu)
						if !p.fsmLatchInCS && takeLatch {
							ctx.Latch(fsmLatch, sim.EX)
							ctx.Work(p.fsmLatchHold)
							ctx.Unlatch(fsmLatch, sim.EX)
						}

						// Lock manager.
						if p.lockGlobal {
							ctx.Lock(lockMu)
							ctx.Work(p.lockHold)
							ctx.Unlock(lockMu)
						} else {
							ctx.Lock(lockLocal[i])
							ctx.Work(p.lockHold)
							ctx.Unlock(lockLocal[i])
						}

						// Log insert.
						ctx.Lock(logMu)
						ctx.Work(p.logHold)
						if p.logCoupled && n%128 == 127 {
							// Non-circular buffer fills: synchronous flush
							// while holding the log mutex (§6.2.2 problem 2).
							ctx.Sleep(p.commitSleep)
						}
						ctx.Unlock(logMu)

						ctx.Work(p.baseWork / 2)

						n++
						commits[i]++ // commits[] counts record inserts
						if n >= InsertsPerTx {
							n = 0
							ctx.Sleep(p.commitSleep) // group-commit wait
						}
					}
				}
			}
		},
	}
}
