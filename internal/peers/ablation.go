package peers

import "repro/internal/sim"

// Ablation models: the finished Shore-MT with exactly ONE optimization
// reverted, quantifying how much each design choice contributes to the
// final system's 32-thread throughput (DESIGN.md's ablation index). This
// goes beyond the paper's cumulative ladder (Figure 7), which never
// isolates individual optimizations.
func AblationModels() []InsertModel {
	final := stageParams("final")

	revert := func(name string, mutate func(*shoreStageParams)) InsertModel {
		p := final
		p.name = name
		mutate(&p)
		return shoreModel(p)
	}

	return []InsertModel{
		shoreModelNamed(final, "final (all optimizations)"),
		revert("- consolidated log", func(p *shoreStageParams) {
			// Back to the decoupled log's longer insert critical section.
			p.logKind = sim.KindMCS
			p.logHold = 5000
		}),
		revert("- decoupled log", func(p *shoreStageParams) {
			// All the way back to the coupled design: one blocking mutex,
			// synchronous flushes on the insert path.
			p.logKind = sim.KindBlocking
			p.logHold = 25000
			p.logCoupled = true
		}),
		revert("- cuckoo bpool table", func(p *shoreStageParams) {
			// Per-bucket chain table: bucket latching returns on hits.
			p.bpoolHold = 6000
		}),
		revert("- bpool partitioning", func(p *shoreStageParams) {
			// The original global buffer-pool mutex.
			p.bpoolGlobal = true
			p.bpoolKind = sim.KindBlocking
			p.bpoolHold = 30000
		}),
		revert("- fsm refactor", func(p *shoreStageParams) {
			// Page latch back inside the allocation critical section, on
			// every insert.
			p.fsmKind = sim.KindBlocking
			p.fsmHold = 12000
			p.fsmLatchInCS = true
			p.fsmLatchEvery = 1
			p.fsmLatchHold = 25000
		}),
		revert("- lock mgr partitioning", func(p *shoreStageParams) {
			p.lockGlobal = true
			p.lockKind = sim.KindBlocking
			p.lockHold = 15000
		}),
		revert("- transit/clock fix", func(p *shoreStageParams) {
			p.clockHold = 50000
			p.clockEvery = 6
		}),
	}
}

// shoreModelNamed builds a model with an explicit display name.
func shoreModelNamed(p shoreStageParams, name string) InsertModel {
	p.name = name
	return shoreModel(p)
}
