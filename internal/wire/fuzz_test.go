package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary byte streams to the frame reader: torn
// headers, torn bodies, oversized announcements and garbage must all
// surface as errors — never a panic, and never an allocation larger
// than MaxFrame.
func FuzzReadFrame(f *testing.F) {
	good := AppendRequest(nil, OpPing, 1, nil)
	var framed bytes.Buffer
	_ = WriteFrame(&framed, good)
	f.Add(framed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0, 0})                   // torn header
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized announcement
	f.Add([]byte{0, 0, 0, 10, 1, 2, 3})   // torn body
	f.Add(binary.BigEndian.AppendUint32(nil, MaxFrame+1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var buf []byte
		r := bytes.NewReader(data)
		for {
			p, err := ReadFrame(r, &buf)
			if err != nil {
				break
			}
			if len(p) > MaxFrame {
				t.Fatalf("frame larger than cap: %d", len(p))
			}
			// Whatever decoded must re-encode losslessly when valid.
			if req, err := ParseRequest(p); err == nil {
				re := AppendRequest(nil, req.Op, req.Session, req.Body)
				if !bytes.Equal(re, p) {
					t.Fatalf("request re-encode mismatch")
				}
			}
		}
		if cap(buf) > MaxFrame {
			t.Fatalf("reader allocated %d > MaxFrame", cap(buf))
		}
	})
}

// FuzzParseRequest hammers the payload parser directly.
func FuzzParseRequest(f *testing.F) {
	f.Add(AppendRequest(nil, OpIdxGet, 3, []byte("key")))
	f.Add([]byte{Version, byte(OpBatch), 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		if !req.Op.Valid() {
			t.Fatalf("parser accepted invalid opcode %d", req.Op)
		}
	})
}

// FuzzDecodeBatch hammers the batch decoder: a hostile count or length
// prefix must not panic or drive allocations past the frame it arrived
// in (lengths are bounded by the remaining input).
func FuzzDecodeBatch(f *testing.F) {
	var e Enc
	_ = AppendBatch(&e, BatchSession|BatchBegin|BatchCommit, []DataOp{
		{Kind: OpIdxGet, Store: 1, Key: []byte("k")},
		{Kind: OpIdxInsert, Store: 1, Key: []byte("k"), Val: []byte("v")},
		{Kind: OpHeapUpdate, Store: 2, RID: RID{Page: 9, Slot: 1}, Val: []byte("row")},
		{Kind: OpIdxScan, Store: 3, Key: []byte("a"), Val: []byte("b"), Limit: 4},
	})
	f.Add(e.B)
	f.Add([]byte{BatchUpdate, 0xff, 0xff})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBatch(data)
		if err != nil {
			return
		}
		if len(b.Ops) > MaxBatchOps {
			t.Fatalf("decoder accepted %d ops", len(b.Ops))
		}
		// A successfully decoded batch must re-encode and re-decode to
		// the same op list.
		var re Enc
		if err := AppendBatch(&re, b.Flags, b.Ops); err != nil {
			t.Fatalf("re-encode of decoded batch failed: %v", err)
		}
		b2, err := DecodeBatch(re.B)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(b2.Ops) != len(b.Ops) || b2.Flags != b.Flags {
			t.Fatalf("re-decode mismatch")
		}
	})
}
