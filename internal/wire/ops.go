package wire

import (
	"encoding/json"
	"fmt"
)

// RID mirrors page.RID on the wire without importing the engine: the
// client package stays decoupled from internal storage types.
type RID struct {
	Page uint64
	Slot uint16
}

// DataOp is one data operation: a single-op request body, or one entry
// of a batch. Field use by kind:
//
//	OpHeapInsert: Store, Val
//	OpHeapGet/OpHeapDelete: Store, RID
//	OpHeapUpdate: Store, RID, Val
//	OpIdxInsert/OpIdxUpdate: Store, Key, Val
//	OpIdxGet/OpIdxGetU/OpIdxDelete: Store, Key
//	OpIdxScan: Store, Key (from), Val (to; empty = unbounded), Limit
type DataOp struct {
	Kind  Op
	Store uint32
	Key   []byte
	Val   []byte
	RID   RID
	Limit uint32
}

// DataOpKind reports whether op names a data operation that may appear
// in a batch (or as a single request with an implied kind).
func DataOpKind(op Op) bool {
	switch op {
	case OpHeapInsert, OpHeapGet, OpHeapUpdate, OpHeapDelete,
		OpIdxInsert, OpIdxGet, OpIdxGetU, OpIdxUpdate, OpIdxDelete, OpIdxScan:
		return true
	}
	return false
}

// AppendDataOp appends op's body (kind excluded) to e.
func AppendDataOp(e *Enc, op *DataOp) {
	e.U32(op.Store)
	switch op.Kind {
	case OpHeapInsert:
		e.Bytes(op.Val)
	case OpHeapGet, OpHeapDelete:
		e.U64(op.RID.Page)
		e.U16(op.RID.Slot)
	case OpHeapUpdate:
		e.U64(op.RID.Page)
		e.U16(op.RID.Slot)
		e.Bytes(op.Val)
	case OpIdxInsert, OpIdxUpdate:
		e.Bytes(op.Key)
		e.Bytes(op.Val)
	case OpIdxGet, OpIdxGetU, OpIdxDelete:
		e.Bytes(op.Key)
	case OpIdxScan:
		e.Bytes(op.Key)
		e.Bytes(op.Val)
		e.U32(op.Limit)
	}
}

// DecodeDataOp decodes an op body of the given kind from d. Key/Val
// alias the frame buffer.
func DecodeDataOp(d *Dec, kind Op, op *DataOp) error {
	if !DataOpKind(kind) {
		return fmt.Errorf("%w: op %v is not a data op", ErrMalformed, kind)
	}
	op.Kind = kind
	op.Store = d.U32()
	switch kind {
	case OpHeapInsert:
		op.Val = d.Bytes()
	case OpHeapGet, OpHeapDelete:
		op.RID.Page = d.U64()
		op.RID.Slot = d.U16()
	case OpHeapUpdate:
		op.RID.Page = d.U64()
		op.RID.Slot = d.U16()
		op.Val = d.Bytes()
	case OpIdxInsert, OpIdxUpdate:
		op.Key = d.Bytes()
		op.Val = d.Bytes()
	case OpIdxGet, OpIdxGetU, OpIdxDelete:
		op.Key = d.Bytes()
	case OpIdxScan:
		op.Key = d.Bytes()
		op.Val = d.Bytes()
		op.Limit = d.U32()
	}
	return d.Err
}

// Batch execution modes and flags (first body byte of OpBatch).
const (
	// BatchModeMask selects the execution mode from the flag byte.
	BatchModeMask uint8 = 0x03
	// BatchSession runs the ops against the session's explicit
	// transaction (see BatchBegin/BatchCommit).
	BatchSession uint8 = 0
	// BatchUpdate runs the ops inside a server-managed read-write
	// transaction (DB.Update): the engine aborts and retries deadlock
	// victims transparently, and commits when every op succeeded.
	BatchUpdate uint8 = 1
	// BatchView is BatchUpdate's read-only sibling (DB.View).
	BatchView uint8 = 2

	// BatchBegin (session mode) begins the session transaction before
	// the first op; an already-open transaction is a StatusTxOpen error.
	BatchBegin uint8 = 1 << 2
	// BatchCommit (session mode) commits the session transaction after
	// the last op; any failure rolls it back (FlagTxAborted).
	BatchCommit uint8 = 1 << 3
)

// MaxBatchOps bounds the ops in one batch frame.
const MaxBatchOps = 4096

// Batch is a decoded OpBatch body.
type Batch struct {
	Flags uint8
	Ops   []DataOp
}

// AppendBatch appends a batch body to e.
func AppendBatch(e *Enc, flags uint8, ops []DataOp) error {
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("%w: %d batch ops", ErrTooLarge, len(ops))
	}
	e.U8(flags)
	e.U16(uint16(len(ops)))
	for i := range ops {
		e.U8(uint8(ops[i].Kind))
		AppendDataOp(e, &ops[i])
	}
	return nil
}

// DecodeBatch decodes a batch body. Op keys/values alias the buffer.
func DecodeBatch(body []byte) (Batch, error) {
	d := NewDec(body)
	b := Batch{Flags: d.U8()}
	n := int(d.U16())
	if n > MaxBatchOps {
		return b, fmt.Errorf("%w: %d batch ops", ErrTooLarge, n)
	}
	if d.Err != nil {
		return b, d.Err
	}
	// n is bounded by MaxBatchOps and each op consumes at least one
	// byte, so this allocation is capped independently of the header.
	b.Ops = make([]DataOp, 0, n)
	for i := 0; i < n; i++ {
		kind := Op(d.U8())
		var op DataOp
		if err := DecodeDataOp(d, kind, &op); err != nil {
			return b, err
		}
		b.Ops = append(b.Ops, op)
	}
	return b, d.Done()
}

// ServerStats is the server's counter snapshot, shipped as JSON inside
// OpStats responses (alongside the engine's own stats) and printed by
// shored on shutdown.
type ServerStats struct {
	SessionsOpen        int64  // currently connected sessions
	SessionsPeak        int64  // high-water mark of SessionsOpen
	SessionsTotal       uint64 // sessions ever opened
	Requests            uint64 // frames executed (Hello/Ping excluded)
	Batches             uint64 // OpBatch frames among Requests
	Sheds               uint64 // requests refused with StatusBusy
	DisconnectRollbacks uint64 // open transactions rolled back on disconnect
	IdleCloses          uint64 // sessions closed by the idle janitor
	QueueHighWater      int64  // deepest admission-queue backlog observed
}

// StatsPayload is the OpStats response body.
type StatsPayload struct {
	Server ServerStats
	Engine json.RawMessage // core.EngineStats, JSON-encoded by the server
}
