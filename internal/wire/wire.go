// Package wire defines shored's binary wire protocol: length-prefixed
// frames carrying versioned request/response payloads. Both the server
// (internal/server) and the Go client (client) speak it.
//
// Frame layout (all integers big-endian):
//
//	| u32 length | payload (length bytes) |
//
// length counts the payload only and is capped at MaxFrame; a peer that
// announces a larger frame is protocol-broken and the connection must be
// dropped (the stream cannot be resynchronized).
//
// Request payload:
//
//	| u8 version | u8 opcode | u32 session | body |
//
// Response payload:
//
//	| u8 version | u8 status | u8 flags | u32 session | body |
//
// A zero status is success and the body is the op's result; a non-zero
// status is an error code, and the body is a UTF-8 message (possibly
// empty). FlagTxAborted reports that the session's open transaction was
// rolled back as a side effect of the error (deadlock victims, lock
// timeouts and failed commits), so the client knows not to send Rollback.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version spoken by this package.
const Version = 1

// MaxFrame caps a frame's payload size (1 MiB). ReadFrame checks the
// announced length against it before allocating, so a hostile header
// cannot make the receiver allocate unbounded memory.
const MaxFrame = 1 << 20

// Fixed header sizes inside the payload.
const (
	reqFixed  = 1 + 1 + 4     // version, opcode, session
	respFixed = 1 + 1 + 1 + 4 // version, status, flags, session
)

// Protocol-level errors.
var (
	// ErrTooLarge reports a frame whose announced payload exceeds
	// MaxFrame (or an attempt to write one).
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrMalformed reports a payload that cannot be decoded.
	ErrMalformed = errors.New("wire: malformed payload")
	// ErrVersion reports a payload with an unknown protocol version.
	ErrVersion = errors.New("wire: unsupported protocol version")
)

// Op identifies a request type.
type Op uint8

// Request opcodes.
const (
	OpInvalid  Op = iota
	OpHello       // open a session; response body: u32 session id
	OpPing        // liveness probe; empty body
	OpBegin       // begin the session's explicit transaction
	OpCommit      // commit it
	OpRollback    // roll it back
	OpCreateTable
	OpCreateIndex
	OpResolve // catalog lookup: str name -> u32 id, u8 kind
	OpHeapInsert
	OpHeapGet
	OpHeapUpdate
	OpHeapDelete
	OpIdxInsert
	OpIdxGet
	OpIdxUpdate
	OpIdxDelete
	OpIdxScan
	OpBatch // a whole transaction (or fragment) in one frame
	OpStats // server + engine counters as JSON
	// OpIdxGetU is OpIdxGet under an exclusive lock (SELECT FOR
	// UPDATE). Read-modify-write cycles split across frames MUST use it
	// for the keys they will write back: S-then-upgrade-to-X across a
	// round trip deadlocks against any concurrent reader of the key.
	OpIdxGetU
	opMax
)

// String names the opcode.
func (o Op) String() string {
	names := [...]string{"invalid", "hello", "ping", "begin", "commit", "rollback",
		"createTable", "createIndex", "resolve", "heapInsert", "heapGet",
		"heapUpdate", "heapDelete", "idxInsert", "idxGet", "idxUpdate",
		"idxDelete", "idxScan", "batch", "stats", "idxGetU"}
	if int(o) < len(names) {
		return names[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Valid reports whether o is a known opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// Status encodes a response outcome.
type Status uint8

// Response status codes. StatusOK is success; everything else is an
// error, mapped onto client sentinels on the other side.
const (
	StatusOK         Status = 0
	StatusErr        Status = 1 // uncategorized; message in body
	StatusBusy       Status = 2 // admission queue full: shed, retry later
	StatusDeadlock   Status = 3
	StatusTimeout    Status = 4
	StatusCanceled   Status = 5
	StatusDuplicate  Status = 6
	StatusNotFound   Status = 7
	StatusNoRecord   Status = 8
	StatusReadOnly   Status = 9
	StatusTxOpen     Status = 10 // Begin with a transaction already open
	StatusNoTx       Status = 11 // Commit/Rollback/op with no transaction
	StatusProto      Status = 12 // malformed request
	StatusTooLarge   Status = 13 // request or response exceeded MaxFrame
	StatusClosing    Status = 14 // server is draining; no new transactions
	StatusBadSession Status = 15 // session id does not match the connection
)

// String names the status.
func (s Status) String() string {
	names := [...]string{"ok", "error", "busy", "deadlock", "timeout",
		"canceled", "duplicate", "notFound", "noRecord", "readOnly",
		"txOpen", "noTx", "proto", "tooLarge", "closing", "badSession"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("status%d", uint8(s))
}

// Response flag bits.
const (
	// FlagTxAborted: the session's open transaction was rolled back as
	// part of producing this (error) response.
	FlagTxAborted uint8 = 1 << 0
)

// Catalog entry kinds (OpResolve responses).
const (
	KindIndex byte = 1 // id is a B-tree store
	KindHeap  byte = 2 // id is a heap-table store
	KindMeta  byte = 3 // id is an out-of-band value (e.g. a scale axis)
)

// ReadFrame reads one length-prefixed frame from r into *buf (growing it
// as needed) and returns the payload slice, which aliases *buf and is
// only valid until the next call with the same buffer. The length header
// is validated against MaxFrame before any allocation.
func ReadFrame(r io.Reader, buf *[]byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes announced", ErrTooLarge, n)
	}
	if cap(*buf) < int(n) {
		*buf = make([]byte, n)
	}
	p := (*buf)[:n]
	if _, err := io.ReadFull(r, p); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return p, nil
}

// WriteFrame writes payload as one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Request is a decoded request payload. Body aliases the frame buffer.
type Request struct {
	Op      Op
	Session uint32
	Body    []byte
}

// AppendRequest appends a request payload (no frame header) to dst.
func AppendRequest(dst []byte, op Op, session uint32, body []byte) []byte {
	dst = append(dst, Version, byte(op))
	dst = binary.BigEndian.AppendUint32(dst, session)
	return append(dst, body...)
}

// ParseRequest decodes a request payload.
func ParseRequest(p []byte) (Request, error) {
	if len(p) < reqFixed {
		return Request{}, fmt.Errorf("%w: request payload %d bytes", ErrMalformed, len(p))
	}
	if p[0] != Version {
		return Request{}, fmt.Errorf("%w: %d", ErrVersion, p[0])
	}
	op := Op(p[1])
	if !op.Valid() {
		return Request{}, fmt.Errorf("%w: opcode %d", ErrMalformed, p[1])
	}
	return Request{Op: op, Session: binary.BigEndian.Uint32(p[2:6]), Body: p[reqFixed:]}, nil
}

// Response is a decoded response payload. Body aliases the frame buffer.
type Response struct {
	Status  Status
	Flags   uint8
	Session uint32
	Body    []byte
}

// AppendResponse appends a response payload (no frame header) to dst.
func AppendResponse(dst []byte, status Status, flags uint8, session uint32, body []byte) []byte {
	dst = append(dst, Version, byte(status), flags)
	dst = binary.BigEndian.AppendUint32(dst, session)
	return append(dst, body...)
}

// ParseResponse decodes a response payload.
func ParseResponse(p []byte) (Response, error) {
	if len(p) < respFixed {
		return Response{}, fmt.Errorf("%w: response payload %d bytes", ErrMalformed, len(p))
	}
	if p[0] != Version {
		return Response{}, fmt.Errorf("%w: %d", ErrVersion, p[0])
	}
	return Response{
		Status:  Status(p[1]),
		Flags:   p[2],
		Session: binary.BigEndian.Uint32(p[3:7]),
		Body:    p[respFixed:],
	}, nil
}

// Enc is a tiny append-only payload encoder shared by both peers.
type Enc struct{ B []byte }

// U8 appends a byte.
func (e *Enc) U8(v uint8) { e.B = append(e.B, v) }

// U16 appends a big-endian uint16.
func (e *Enc) U16(v uint16) { e.B = binary.BigEndian.AppendUint16(e.B, v) }

// U32 appends a big-endian uint32.
func (e *Enc) U32(v uint32) { e.B = binary.BigEndian.AppendUint32(e.B, v) }

// U64 appends a big-endian uint64.
func (e *Enc) U64(v uint64) { e.B = binary.BigEndian.AppendUint64(e.B, v) }

// Bytes appends a u32 length prefix and the bytes.
func (e *Enc) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.B = append(e.B, b...)
}

// Str appends a string like Bytes.
func (e *Enc) Str(s string) {
	e.U32(uint32(len(s)))
	e.B = append(e.B, s...)
}

// Dec is the matching sticky-error decoder. All getters return zero
// values once an underrun is hit; check Err (or Done) at the end.
// Byte-slice results alias the input buffer.
type Dec struct {
	B   []byte
	Off int
	Err error
}

// NewDec wraps b for decoding.
func NewDec(b []byte) *Dec { return &Dec{B: b} }

func (d *Dec) need(n int) bool {
	if d.Err != nil {
		return false
	}
	if n < 0 || len(d.B)-d.Off < n {
		d.Err = fmt.Errorf("%w: truncated at offset %d", ErrMalformed, d.Off)
		return false
	}
	return true
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.B[d.Off]
	d.Off++
	return v
}

// U16 reads a big-endian uint16.
func (d *Dec) U16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(d.B[d.Off:])
	d.Off += 2
	return v
}

// U32 reads a big-endian uint32.
func (d *Dec) U32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.B[d.Off:])
	d.Off += 4
	return v
}

// U64 reads a big-endian uint64.
func (d *Dec) U64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.B[d.Off:])
	d.Off += 8
	return v
}

// Bytes reads a u32-length-prefixed byte string. The length is bounded
// by the remaining input, so a lying prefix cannot trigger a huge
// allocation — the result always aliases the frame buffer.
func (d *Dec) Bytes() []byte {
	n := int(d.U32())
	if !d.need(n) {
		return nil
	}
	b := d.B[d.Off : d.Off+n : d.Off+n]
	d.Off += n
	return b
}

// Str reads a length-prefixed string (copied).
func (d *Dec) Str() string { return string(d.Bytes()) }

// Done reports a fully-consumed, error-free decode.
func (d *Dec) Done() error {
	if d.Err != nil {
		return d.Err
	}
	if d.Off != len(d.B) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.B)-d.Off)
	}
	return nil
}
