package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendRequest(nil, OpIdxGet, 7, []byte{1, 2, 3})
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	got, err := ReadFrame(&buf, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	req, err := ParseRequest(got)
	if err != nil {
		t.Fatal(err)
	}
	if req.Op != OpIdxGet || req.Session != 7 || !bytes.Equal(req.Body, []byte{1, 2, 3}) {
		t.Fatalf("round trip mismatch: %+v", req)
	}
}

func TestFrameOversizedHeaderRejectedBeforeAlloc(t *testing.T) {
	// A 4 GiB announcement must fail with ErrTooLarge without reading
	// (or allocating) the body.
	hdr := []byte{0xff, 0xff, 0xff, 0xff}
	var scratch []byte
	_, err := ReadFrame(bytes.NewReader(hdr), &scratch)
	if !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
	if scratch != nil {
		t.Fatalf("buffer allocated for oversized frame: %d bytes", cap(scratch))
	}
}

func TestFrameTornBody(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	var scratch []byte
	_, err := ReadFrame(bytes.NewReader(torn), &scratch)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF, got %v", err)
	}
}

func TestWriteFrameTooLarge(t *testing.T) {
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestParseRequestRejects(t *testing.T) {
	cases := [][]byte{
		nil,                                // empty
		{Version, byte(OpPing)},            // short header
		{99, byte(OpPing), 0, 0, 0, 0},     // bad version
		{Version, 0, 0, 0, 0, 0},           // invalid opcode 0
		{Version, byte(opMax), 0, 0, 0, 0}, // invalid opcode high
	}
	for i, p := range cases {
		if _, err := ParseRequest(p); err == nil {
			t.Errorf("case %d: malformed request accepted", i)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	p := AppendResponse(nil, StatusDeadlock, FlagTxAborted, 42, []byte("victim"))
	resp, err := ParseResponse(p)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDeadlock || resp.Flags != FlagTxAborted || resp.Session != 42 || string(resp.Body) != "victim" {
		t.Fatalf("round trip mismatch: %+v", resp)
	}
}

func TestBatchRoundTrip(t *testing.T) {
	ops := []DataOp{
		{Kind: OpIdxGet, Store: 3, Key: []byte("k1")},
		{Kind: OpIdxInsert, Store: 3, Key: []byte("k2"), Val: []byte("v2")},
		{Kind: OpIdxUpdate, Store: 4, Key: []byte("k3"), Val: []byte("v3")},
		{Kind: OpIdxDelete, Store: 4, Key: []byte("k4")},
		{Kind: OpIdxScan, Store: 5, Key: []byte("a"), Val: []byte("z"), Limit: 10},
		{Kind: OpHeapInsert, Store: 6, Val: []byte("row")},
		{Kind: OpHeapGet, Store: 6, RID: RID{Page: 77, Slot: 3}},
		{Kind: OpHeapUpdate, Store: 6, RID: RID{Page: 77, Slot: 3}, Val: []byte("row2")},
		{Kind: OpHeapDelete, Store: 6, RID: RID{Page: 77, Slot: 4}},
	}
	var e Enc
	if err := AppendBatch(&e, BatchSession|BatchBegin|BatchCommit, ops); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeBatch(e.B)
	if err != nil {
		t.Fatal(err)
	}
	if b.Flags != BatchSession|BatchBegin|BatchCommit || len(b.Ops) != len(ops) {
		t.Fatalf("flags/count mismatch: %+v", b)
	}
	for i := range ops {
		got, want := b.Ops[i], ops[i]
		if got.Kind != want.Kind || got.Store != want.Store ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Val, want.Val) ||
			got.RID != want.RID || got.Limit != want.Limit {
			t.Errorf("op %d mismatch: got %+v want %+v", i, got, want)
		}
	}
}

func TestDecodeBatchRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                      // missing count
		{0, 0xff, 0xff},          // count 65535 > MaxBatchOps
		{0, 0, 1},                // one op, no kind
		{0, 0, 1, byte(OpBegin)}, // non-data op in a batch
		{0, 0, 1, byte(OpIdxGet), 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff}, // lying length prefix
	}
	for i, body := range cases {
		if _, err := DecodeBatch(body); err == nil {
			t.Errorf("case %d: garbage batch accepted", i)
		}
	}
}

func TestDecBytesBoundedByInput(t *testing.T) {
	// A length prefix claiming 4 GiB with a 3-byte remainder must fail,
	// not allocate.
	var e Enc
	e.U32(0xffffffff)
	e.B = append(e.B, 1, 2, 3)
	d := NewDec(e.B)
	if b := d.Bytes(); b != nil || d.Err == nil {
		t.Fatalf("lying prefix decoded: %v err=%v", b, d.Err)
	}
}
