// Package tx implements transaction management (§2.2.5): the active
// transaction table, ID assignment, per-transaction log chains, 2PL lock
// bookkeeping with escalation counters, and the two oldest-transaction
// disciplines the paper contrasts in §7.3 — scanning the transaction list
// under its mutex versus reading a cached atomic ID maintained by
// committing transactions.
package tx

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/space"
	"repro/internal/sync2"
	"repro/internal/wal"
)

// State is a transaction's lifecycle state.
type State int

// Transaction states.
const (
	StateActive State = iota
	StateCommitted
	StateAborted
	// StateCommitting is the staged-commit pipeline's pre-committed state:
	// the commit record is in the log (not necessarily durable) and all
	// locks have been released early. The transaction can no longer abort
	// voluntarily; it either hardens to StateCommitted or, if the system
	// crashes before its commit record reaches the disk, is rolled back by
	// restart recovery like any other loser.
	StateCommitting
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCommitting:
		return "committing"
	case StateCommitted:
		return "committed"
	case StateAborted:
		return "aborted"
	default:
		return fmt.Sprintf("state%d", int(s))
	}
}

// ErrNotActive is returned when finishing a transaction twice.
var ErrNotActive = errors.New("tx: transaction not active")

// Tx is one transaction's bookkeeping. A Tx is owned by a single worker
// goroutine; only the transaction-table links are shared.
type Tx struct {
	id uint64
	// state is atomic because the owner goroutine moves it to
	// StateCommitting while checkpoints concurrently inspect it.
	state atomic.Int32

	// Log chain. All three are atomic because checkpoint snapshots (and
	// the log-archive safe-point computation) read them concurrently with
	// the owner's RecordLog.
	firstLSN atomic.Uint64
	lastLSN  atomic.Uint64
	undoNext atomic.Uint64

	// commitLSN is the transaction's commit record (pipeline commits).
	commitLSN wal.LSN
	// hardenTarget is the log position whose durability completes this
	// transaction's commit (set at commit-record insertion; used to retry
	// hardening after a failed flush).
	hardenTarget wal.LSN
	// elrHorizon is the highest early-release horizon observed while
	// acquiring locks: the log position that must be durable before this
	// transaction's own commit may be acknowledged, because data it read
	// could come from a pre-committed-but-not-yet-hardened transaction.
	elrHorizon wal.LSN

	// 2PL bookkeeping: every distinct lock name acquired, released only
	// at commit/abort.
	locks []lock.Name
	// held is the transaction-private lock cache: the supremum mode
	// granted per name. It both answers the engine's covered-request
	// fast path without a lock-table trip and dedupes the release list
	// (the same name re-granted used to be replayed through Unlock once
	// per grant).
	held lock.Cache
	// cacheHits counts lock requests answered by the private cache; a
	// plain field (not atomic) because only the owner increments it —
	// the engine folds it into the lock manager's stats at release.
	cacheHits uint64
	// agent, when non-nil, carries speculatively inherited intent locks
	// between the transactions of one worker (SLI).
	agent *lock.Agent
	// rowLocks counts row locks per store for escalation. A transaction
	// touches a handful of stores, so a linear-scanned slice beats a
	// map (no allocation, no hashing).
	rowLocks []rowLockCount
	// escalated marks stores where the transaction holds a full-store lock.
	escalated []storeEscalation
	// noLock marks a DORA partition-local sub-transaction: the owning
	// partition's thread-local lock table already serialized every
	// conflicting action, so the engine skips lock-manager acquisition
	// for it entirely (logging, latching, and rollback are unchanged).
	noLock bool
	// snapshot marks a multiversion read-only transaction: it never logs,
	// never locks, and reads as of snapLSN by resolving version chains.
	// Checkpoints and the log-archive safe point skip it (it has no log
	// chain and must not block archiving). Set before the Tx is published
	// in the transaction table, never mutated after.
	snapshot bool
	// snapLSN is the pinned snapshot LSN (owner-only).
	snapLSN uint64
	// stamp, on a writing transaction, is the commit stamp shared by every
	// version entry it installed; nil until the first install (owner-only).
	stamp *mvcc.Stamp

	// ExtentCache is the per-transaction (conceptually thread-local)
	// extent-membership cache of §6.2.2.
	ExtentCache space.ExtentCache
}

// ID returns the transaction id.
func (t *Tx) ID() uint64 { return t.id }

// State returns the lifecycle state.
func (t *Tx) State() State { return State(t.state.Load()) }

// SetCommitLSN records the transaction's commit-record LSN (pipeline
// pre-commit stage).
func (t *Tx) SetCommitLSN(lsn wal.LSN) { t.commitLSN = lsn }

// CommitLSN returns the commit-record LSN (NullLSN before pre-commit).
func (t *Tx) CommitLSN() wal.LSN { return t.commitLSN }

// SetHardenTarget records the log position whose durability completes
// this transaction's commit.
func (t *Tx) SetHardenTarget(l wal.LSN) { t.hardenTarget = l }

// HardenTarget returns the commit's durability target (NullLSN before
// the commit record is inserted).
func (t *Tx) HardenTarget() wal.LSN { return t.hardenTarget }

// ObserveELR folds an early-lock-release horizon into the transaction's
// durability dependency: its commit must not be acknowledged before the
// log is durable past every observed horizon.
func (t *Tx) ObserveELR(h wal.LSN) {
	if h > t.elrHorizon {
		t.elrHorizon = h
	}
}

// ELRHorizon returns the highest observed early-release horizon.
func (t *Tx) ELRHorizon() wal.LSN { return t.elrHorizon }

// LastLSN returns the most recent log record of this transaction.
func (t *Tx) LastLSN() wal.LSN { return wal.LSN(t.lastLSN.Load()) }

// UndoNext returns the next record to undo during rollback.
func (t *Tx) UndoNext() wal.LSN { return wal.LSN(t.undoNext.Load()) }

// FirstLSN returns the transaction's first log record (NullLSN before
// anything was logged).
func (t *Tx) FirstLSN() wal.LSN { return wal.LSN(t.firstLSN.Load()) }

// RecordLog links a freshly inserted log record into the chain.
func (t *Tx) RecordLog(lsn wal.LSN) {
	if t.firstLSN.Load() == uint64(wal.NullLSN) {
		t.firstLSN.Store(uint64(lsn))
	}
	t.lastLSN.Store(uint64(lsn))
	t.undoNext.Store(uint64(lsn))
}

// SetUndoNext moves the undo cursor (used when CLRs skip records).
func (t *Tx) SetUndoNext(lsn wal.LSN) { t.undoNext.Store(uint64(lsn)) }

type rowLockCount struct {
	store uint32
	n     int
}

type storeEscalation struct {
	store uint32
	mode  lock.Mode
}

// AddLock records a grant of mode m on n: the private cache folds m
// into any mode already held (Supremum, mirroring the manager's
// conversion rule), and the name joins the release list only on its
// first grant — releaseLocks releases each held name exactly once.
func (t *Tx) AddLock(n lock.Name, m lock.Mode) {
	if t.held.Put(n, m) {
		t.locks = append(t.locks, n)
	}
}

// HeldMode returns the supremum mode this transaction holds on n (NL if
// none) from the private cache, without touching the lock table.
func (t *Tx) HeldMode(n lock.Name) lock.Mode { return t.held.Get(n) }

// HitLockCache counts one lock request answered by the private cache.
func (t *Tx) HitLockCache() { t.cacheHits++ }

// LockCacheHits returns the number of cache-answered lock requests.
func (t *Tx) LockCacheHits() uint64 { return t.cacheHits }

// SetNoLock marks t as lock-free: the caller guarantees an external
// serialization of conflicting accesses (DORA's partition-local lock
// tables), and the engine skips every lock-manager trip for t.
func (t *Tx) SetNoLock() { t.noLock = true }

// NoLock reports whether the engine should skip lock acquisition for t.
func (t *Tx) NoLock() bool { return t.noLock }

// IsSnapshot reports whether t is a multiversion read-only transaction.
func (t *Tx) IsSnapshot() bool { return t.snapshot }

// SetSnapshotLSN pins the LSN this snapshot transaction reads as of.
func (t *Tx) SetSnapshotLSN(lsn uint64) { t.snapLSN = lsn }

// SnapshotLSN returns the pinned snapshot LSN.
func (t *Tx) SnapshotLSN() uint64 { return t.snapLSN }

// Stamp returns the commit stamp shared by every version this writing
// transaction installed, or nil if it installed none.
func (t *Tx) Stamp() *mvcc.Stamp { return t.stamp }

// EnsureStamp returns the transaction's commit stamp, creating it on the
// first version install.
func (t *Tx) EnsureStamp() *mvcc.Stamp {
	if t.stamp == nil {
		t.stamp = mvcc.NewStamp()
	}
	return t.stamp
}

// SetAgent binds the worker agent whose inherited locks this
// transaction may claim (nil detaches it).
func (t *Tx) SetAgent(a *lock.Agent) { t.agent = a }

// Agent returns the bound worker agent, if any.
func (t *Tx) Agent() *lock.Agent { return t.agent }

// Locks returns the held-lock list (most recent last), one entry per
// distinct name.
func (t *Tx) Locks() []lock.Name { return t.locks }

// CountRowLock bumps the per-store row-lock counter and returns the new
// count (for escalation decisions).
func (t *Tx) CountRowLock(store uint32) int {
	for i := range t.rowLocks {
		if t.rowLocks[i].store == store {
			t.rowLocks[i].n++
			return t.rowLocks[i].n
		}
	}
	t.rowLocks = append(t.rowLocks, rowLockCount{store: store, n: 1})
	return 1
}

// MarkEscalated records that the transaction escalated to a store-level
// lock in mode.
func (t *Tx) MarkEscalated(store uint32, m lock.Mode) {
	for i := range t.escalated {
		if t.escalated[i].store == store {
			t.escalated[i].mode = m
			return
		}
	}
	t.escalated = append(t.escalated, storeEscalation{store: store, mode: m})
}

// Escalated returns the store-level mode the transaction escalated to, if
// any.
func (t *Tx) Escalated(store uint32) (lock.Mode, bool) {
	for i := range t.escalated {
		if t.escalated[i].store == store {
			return t.escalated[i].mode, true
		}
	}
	return lock.NL, false
}

// Options configures the transaction manager.
type Options struct {
	// CachedOldest enables the §7.3 optimization: committing transactions
	// maintain an atomically readable oldest-active ID, so readers avoid
	// the transaction-list mutex entirely.
	CachedOldest bool
}

// Stats reports transaction-manager activity.
type Stats struct {
	Begins      uint64
	Commits     uint64
	Aborts      uint64
	OldestScans uint64 // list scans taken to answer Oldest()
	Lock        sync2.Stats
}

// Manager is the transaction manager.
type Manager struct {
	opts   Options
	mu     sync2.BlockingLock
	active map[uint64]*Tx
	nextID atomic.Uint64
	oldest atomic.Uint64 // cached oldest active id (CachedOldest)

	begins      atomic.Uint64
	commits     atomic.Uint64
	aborts      atomic.Uint64
	oldestScans atomic.Uint64
}

// NewManager builds a transaction manager.
func NewManager(opts Options) *Manager {
	m := &Manager{opts: opts, active: make(map[uint64]*Tx)}
	m.nextID.Store(1)
	return m
}

// Begin starts a transaction.
func (m *Manager) Begin() *Tx { return m.begin(false) }

// BeginSnapshot starts a multiversion read-only transaction. It lives in
// the active table (so ActiveCount and stats see it) but is skipped by
// checkpoint snapshots and the archive safe point: it has no log chain.
func (m *Manager) BeginSnapshot() *Tx { return m.begin(true) }

func (m *Manager) begin(snapshot bool) *Tx {
	id := m.nextID.Add(1) - 1
	t := &Tx{id: id, snapshot: snapshot} // zero state == StateActive
	m.mu.Lock()
	m.active[id] = t
	if m.opts.CachedOldest && len(m.active) == 1 {
		m.oldest.Store(id)
	}
	m.mu.Unlock()
	m.begins.Add(1)
	return t
}

// finish removes t from the table and maintains the cached oldest ID.
func (m *Manager) finish(t *Tx, s State) error {
	m.mu.Lock()
	if _, ok := m.active[t.id]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNotActive, t.id)
	}
	delete(m.active, t.id)
	if m.opts.CachedOldest && m.oldest.Load() == t.id {
		// "Committing transactions would update the ID when they removed
		// themselves from the list" (§7.3).
		m.oldest.Store(m.scanOldestLocked())
	}
	m.mu.Unlock()
	t.state.Store(int32(s))
	if s == StateCommitted {
		m.commits.Add(1)
	} else {
		m.aborts.Add(1)
	}
	return nil
}

// Commit marks t committed and removes it from the table. Log flushing and
// lock release are the storage manager's responsibility.
func (m *Manager) Commit(t *Tx) error { return m.finish(t, StateCommitted) }

// BeginCommit moves t to StateCommitting (the pipeline pre-commit stage)
// while keeping it in the active table until the commit hardens. It must
// be called only after t's commit record has been inserted into the log:
// checkpoints skip committing transactions on the strength of that
// ordering (the commit record provably precedes the checkpoint-end record,
// so the checkpoint's own flush hardens it).
func (m *Manager) BeginCommit(t *Tx) error {
	m.mu.Lock()
	if _, ok := m.active[t.id]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrNotActive, t.id)
	}
	t.state.Store(int32(StateCommitting))
	m.mu.Unlock()
	return nil
}

// Abort marks t aborted and removes it from the table.
func (m *Manager) Abort(t *Tx) error { return m.finish(t, StateAborted) }

// scanOldestLocked returns the smallest active id (0 when none). Caller
// holds mu.
func (m *Manager) scanOldestLocked() uint64 {
	var oldest uint64
	for id := range m.active {
		if oldest == 0 || id < oldest {
			oldest = id
		}
	}
	return oldest
}

// Oldest returns the oldest active transaction id, or 0 if none. With
// CachedOldest it is a single atomic load ("callers could read it
// atomically because IDs are 64-bit integers"); otherwise it scans the
// list under the table mutex — the §7.3 bottleneck.
func (m *Manager) Oldest() uint64 {
	if m.opts.CachedOldest {
		return m.oldest.Load()
	}
	m.oldestScans.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.scanOldestLocked()
}

// Lookup returns the active transaction with id, or nil. The returned Tx
// must only be used by its owning goroutine.
func (m *Manager) Lookup(id uint64) *Tx {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active[id]
}

// Restore re-registers a loser transaction during restart recovery with
// its chain state reconstructed by the analysis pass.
func (m *Manager) Restore(id uint64, lastLSN, undoNext wal.LSN) *Tx {
	t := &Tx{id: id} // zero state == StateActive
	t.lastLSN.Store(uint64(lastLSN))
	t.undoNext.Store(uint64(undoNext))
	m.mu.Lock()
	m.active[id] = t
	if m.opts.CachedOldest {
		old := m.oldest.Load()
		if old == 0 || id < old {
			m.oldest.Store(id)
		}
	}
	m.mu.Unlock()
	return t
}

// ActiveCount returns the number of active transactions.
func (m *Manager) ActiveCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.active)
}

// Snapshot returns checkpoint records for every active transaction.
func (m *Manager) Snapshot() []wal.TxInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]wal.TxInfo, 0, len(m.active))
	for _, t := range m.active {
		if t.snapshot {
			// Snapshot readers never log; there is nothing to recover.
			continue
		}
		if t.State() == StateCommitting {
			// Pre-committed: its commit record is already in the log below
			// the checkpoint-end record, so the checkpoint flush hardens it
			// and analysis will see it as a winner. Listing it here would
			// make recovery roll back a durably committed transaction.
			continue
		}
		out = append(out, wal.TxInfo{TxID: t.id, LastLSN: t.LastLSN(), UndoNext: t.UndoNext()})
	}
	return out
}

// MinFirstLSN returns the oldest first-record LSN across every
// transaction in the table — the floor below which no live undo chain
// reaches, used to compute the log-archive safe point. ok is false when
// some transaction's extent is unknown (it registered but has not linked
// its begin record yet, or was restored by recovery without chain
// history); callers must then skip archiving rather than guess.
// Pre-committed transactions are included: should the crash beat their
// commit record to disk, restart will roll them back through their full
// chain.
func (m *Manager) MinFirstLSN() (min wal.LSN, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	min = wal.NullLSN
	for _, t := range m.active {
		if t.snapshot {
			// Snapshot readers never log: a permanently-Null FirstLSN must
			// not block log archiving.
			continue
		}
		first := t.FirstLSN()
		if first == wal.NullLSN {
			return wal.NullLSN, false
		}
		if min == wal.NullLSN || first < min {
			min = first
		}
	}
	return min, true
}

// NextIDFloor raises the ID generator above floor (used after recovery so
// new transactions do not reuse logged ids).
func (m *Manager) NextIDFloor(floor uint64) {
	for {
		cur := m.nextID.Load()
		if cur > floor {
			return
		}
		if m.nextID.CompareAndSwap(cur, floor+1) {
			return
		}
	}
}

// Stats returns a counter snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Begins:      m.begins.Load(),
		Commits:     m.commits.Load(),
		Aborts:      m.aborts.Load(),
		OldestScans: m.oldestScans.Load(),
		Lock:        m.mu.Stats(),
	}
}

var _ sync.Locker = (*sync2.BlockingLock)(nil)
