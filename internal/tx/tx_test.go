package tx

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/lock"
	"repro/internal/page"
)

func TestBeginCommitAbortLifecycle(t *testing.T) {
	m := NewManager(Options{})
	t1 := m.Begin()
	t2 := m.Begin()
	if t1.ID() == t2.ID() {
		t.Fatal("duplicate transaction ids")
	}
	if t1.State() != StateActive {
		t.Fatalf("state = %v", t1.State())
	}
	if m.ActiveCount() != 2 {
		t.Fatalf("active = %d", m.ActiveCount())
	}
	if err := m.Commit(t1); err != nil {
		t.Fatal(err)
	}
	if t1.State() != StateCommitted {
		t.Fatalf("state after commit = %v", t1.State())
	}
	if err := m.Abort(t2); err != nil {
		t.Fatal(err)
	}
	if t2.State() != StateAborted {
		t.Fatalf("state after abort = %v", t2.State())
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active = %d", m.ActiveCount())
	}
	// Finishing twice errors.
	if err := m.Commit(t1); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit = %v", err)
	}
	st := m.Stats()
	if st.Begins != 2 || st.Commits != 1 || st.Aborts != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOldestVariants(t *testing.T) {
	for _, cached := range []bool{false, true} {
		name := "scan"
		if cached {
			name = "cached"
		}
		t.Run(name, func(t *testing.T) {
			m := NewManager(Options{CachedOldest: cached})
			if m.Oldest() != 0 {
				t.Fatalf("Oldest on empty = %d", m.Oldest())
			}
			t1 := m.Begin()
			t2 := m.Begin()
			t3 := m.Begin()
			if got := m.Oldest(); got != t1.ID() {
				t.Fatalf("Oldest = %d, want %d", got, t1.ID())
			}
			// Removing the middle does not change the oldest.
			if err := m.Commit(t2); err != nil {
				t.Fatal(err)
			}
			if got := m.Oldest(); got != t1.ID() {
				t.Fatalf("Oldest after middle commit = %d", got)
			}
			// Removing the oldest advances it.
			if err := m.Commit(t1); err != nil {
				t.Fatal(err)
			}
			if got := m.Oldest(); got != t3.ID() {
				t.Fatalf("Oldest after oldest commit = %d, want %d", got, t3.ID())
			}
			if err := m.Commit(t3); err != nil {
				t.Fatal(err)
			}
			if m.Oldest() != 0 {
				t.Fatalf("Oldest after all done = %d", m.Oldest())
			}
			st := m.Stats()
			if cached && st.OldestScans != 0 {
				t.Errorf("cached variant scanned the list %d times", st.OldestScans)
			}
			if !cached && st.OldestScans == 0 {
				t.Error("scan variant recorded no scans")
			}
		})
	}
}

func TestLogChain(t *testing.T) {
	m := NewManager(Options{})
	tx := m.Begin()
	if tx.LastLSN() != 0 || tx.UndoNext() != 0 {
		t.Fatal("fresh tx has log state")
	}
	tx.RecordLog(100)
	tx.RecordLog(200)
	if tx.LastLSN() != 200 || tx.UndoNext() != 200 {
		t.Fatalf("chain: last=%v undoNext=%v", tx.LastLSN(), tx.UndoNext())
	}
	tx.SetUndoNext(100)
	if tx.UndoNext() != 100 || tx.LastLSN() != 200 {
		t.Fatal("SetUndoNext changed lastLSN")
	}
	_ = m.Commit(tx)
}

func TestLockBookkeeping(t *testing.T) {
	m := NewManager(Options{})
	tx := m.Begin()
	n1 := lock.StoreName(1)
	n2 := lock.RowName(1, page.RID{Page: 2, Slot: 3})
	tx.AddLock(n1, lock.IX)
	tx.AddLock(n2, lock.X)
	locks := tx.Locks()
	if len(locks) != 2 || locks[0] != n1 || locks[1] != n2 {
		t.Fatalf("locks = %v", locks)
	}
	// Re-granting a held name must not duplicate the release entry; the
	// cached mode converges on the supremum of every grant.
	tx.AddLock(n1, lock.S)
	if got := tx.Locks(); len(got) != 2 {
		t.Fatalf("re-grant duplicated release entry: %v", got)
	}
	if m := tx.HeldMode(n1); m != lock.SIX {
		t.Fatalf("HeldMode(n1) = %v, want SIX (sup of IX and S)", m)
	}
	if m := tx.HeldMode(lock.StoreName(99)); m != lock.NL {
		t.Fatalf("HeldMode(unheld) = %v, want NL", m)
	}
	if tx.CountRowLock(1) != 1 || tx.CountRowLock(1) != 2 {
		t.Fatal("row lock counting wrong")
	}
	if tx.CountRowLock(2) != 1 {
		t.Fatal("per-store counting not isolated")
	}
	if _, ok := tx.Escalated(1); ok {
		t.Fatal("escalated before marking")
	}
	tx.MarkEscalated(1, lock.X)
	if mode, ok := tx.Escalated(1); !ok || mode != lock.X {
		t.Fatalf("escalated = %v, %v", mode, ok)
	}
	_ = m.Commit(tx)
}

func TestSnapshot(t *testing.T) {
	m := NewManager(Options{})
	t1 := m.Begin()
	t1.RecordLog(10)
	t2 := m.Begin()
	t2.RecordLog(20)
	t2.SetUndoNext(15)
	snap := m.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d entries", len(snap))
	}
	byID := map[uint64]struct {
		last, undo uint64
	}{}
	for _, s := range snap {
		byID[s.TxID] = struct{ last, undo uint64 }{uint64(s.LastLSN), uint64(s.UndoNext)}
	}
	if got := byID[t1.ID()]; got.last != 10 || got.undo != 10 {
		t.Fatalf("t1 snapshot = %+v", got)
	}
	if got := byID[t2.ID()]; got.last != 20 || got.undo != 15 {
		t.Fatalf("t2 snapshot = %+v", got)
	}
	_ = m.Commit(t1)
	_ = m.Commit(t2)
}

func TestLookupAndRestore(t *testing.T) {
	m := NewManager(Options{CachedOldest: true})
	t1 := m.Begin()
	if m.Lookup(t1.ID()) != t1 {
		t.Fatal("Lookup missed active tx")
	}
	if m.Lookup(9999) != nil {
		t.Fatal("Lookup found ghost")
	}
	// Restore (recovery path).
	loser := m.Restore(500, 77, 66)
	if loser.ID() != 500 || loser.LastLSN() != 77 || loser.UndoNext() != 66 {
		t.Fatalf("restored = %+v", loser)
	}
	if m.Lookup(500) != loser {
		t.Fatal("restored tx not in table")
	}
	// ID floor prevents reuse.
	m.NextIDFloor(500)
	t2 := m.Begin()
	if t2.ID() <= 500 {
		t.Fatalf("new id %d not above floor", t2.ID())
	}
	_ = m.Commit(t1)
	_ = m.Commit(t2)
	_ = m.Abort(loser)
}

func TestConcurrentBeginCommit(t *testing.T) {
	m := NewManager(Options{CachedOldest: true})
	var wg sync.WaitGroup
	ids := make(chan uint64, 8*200)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tx := m.Begin()
				ids <- tx.ID()
				_ = m.Oldest()
				if err := m.Commit(tx); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := map[uint64]bool{}
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if m.ActiveCount() != 0 {
		t.Fatalf("active = %d after all commits", m.ActiveCount())
	}
	if m.Oldest() != 0 {
		t.Fatalf("oldest = %d after all commits", m.Oldest())
	}
}

func TestStateString(t *testing.T) {
	if StateActive.String() != "active" || StateCommitted.String() != "committed" ||
		StateAborted.String() != "aborted" || State(9).String() == "" {
		t.Error("state strings")
	}
}
