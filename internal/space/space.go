// Package space implements the free-space and metadata manager (§2.2.6):
// 8-page extents, a store directory, and page allocation — along with the
// exact critical-section variants the paper's Figure 6 studies (pthread
// mutex → T&T&S → MCS → refactored latch-outside-critical-section) and the
// caches §6.2.2/§7.4/§7.6 add (thread-local extent-membership cache,
// extent-id cache, last-page cache).
//
// Allocation metadata is fully derivable from page headers (every page
// records its owning store and type, and B-tree roots carry a header
// flag), so crash recovery rebuilds this manager by scanning the volume
// after redo instead of logging allocation operations.
package space

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/sync2"
)

// ExtentSize is the number of consecutive pages per extent ("Shore
// allocates extents of 8 pages", §6.2.2).
const ExtentSize = 8

// Errors returned by the manager.
var (
	ErrNoSuchStore = errors.New("space: no such store")
	ErrNotOwned    = errors.New("space: page not owned by store")
)

// StoreKind tags what a store holds.
type StoreKind uint8

// Store kinds.
const (
	KindHeap StoreKind = iota
	KindBTree
)

// String names the kind.
func (k StoreKind) String() string {
	if k == KindBTree {
		return "btree"
	}
	return "heap"
}

// Options configures the manager; each knob is one Figure 6 / §7 variant.
type Options struct {
	// Mutex is the primitive protecting the allocation tables: the Figure 6
	// sweep uses Blocking (pthread), TATAS (T&T&S) and MCS.
	Mutex sync2.Kind
	// LatchInCS reproduces the pre-refactor bug: the page fix (latch
	// acquire, possibly blocking on I/O) happens inside the allocation
	// critical section. The §6.1 refactor moves it outside.
	LatchInCS bool
	// ExtentCache enables the extent-id → store cache consulted before the
	// critical section (§7.4).
	ExtentCache bool
	// LastPageCache enables O(1) last-page lookup instead of walking the
	// extent list (§7.6's O(n²) fix).
	LastPageCache bool
}

// storeInfo is the in-memory directory entry for one store.
type storeInfo struct {
	id      uint32
	kind    StoreKind
	extents []uint32 // extent numbers owned, ascending
	root    page.ID  // B-tree root (KindBTree only)
	// lastHint caches the last page with insert space (LastPageCache).
	lastHint page.ID
}

// extentInfo records ownership and allocation of one extent.
type extentInfo struct {
	store  uint32 // owning store id, 0 = free extent
	bitmap uint8  // bit i set = page i of the extent is allocated
}

// Stats reports allocation activity and critical-section contention.
type Stats struct {
	Allocs        uint64
	Frees         uint64
	ExtentsGrown  uint64
	CacheHits     uint64 // thread-local extent-cache hits (checks avoided)
	CacheMisses   uint64
	LastPageWalks uint64 // O(n) walks taken because the cache is off/cold
	Lock          sync2.Stats
}

// Manager is the free-space and metadata manager.
type Manager struct {
	opts Options
	vol  disk.Volume
	mu   sync2.Locker
	// guarded by mu:
	stores  map[uint32]*storeInfo
	extents []extentInfo
	nextID  uint32

	allocs        atomic.Uint64
	frees         atomic.Uint64
	extentsGrown  atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	lastPageWalks atomic.Uint64
}

// NewManager creates a manager over vol.
func NewManager(vol disk.Volume, opts Options) *Manager {
	return &Manager{
		opts:   opts,
		vol:    vol,
		mu:     sync2.New(opts.Mutex),
		stores: make(map[uint32]*storeInfo),
		nextID: 1,
	}
}

// extentFirstPage returns the first page ID of extent e (extent 0 covers
// pages 1..8).
func extentFirstPage(e uint32) page.ID { return page.ID(uint64(e)*ExtentSize + 1) }

// extentOf returns the extent number holding pid.
func extentOf(pid page.ID) uint32 { return uint32((uint64(pid) - 1) / ExtentSize) }

// CreateStore registers a new store and returns its id.
func (m *Manager) CreateStore(kind StoreKind) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.stores[id] = &storeInfo{id: id, kind: kind}
	return id
}

// StoreKindOf returns the kind of store id.
func (m *Manager) StoreKindOf(id uint32) (StoreKind, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stores[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchStore, id)
	}
	return s.kind, nil
}

// Stores returns all store ids, ascending.
func (m *Manager) Stores() []uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint32, 0, len(m.stores))
	for id := range m.stores {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetRoot records the B-tree root page of store id.
func (m *Manager) SetRoot(id uint32, root page.ID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stores[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoSuchStore, id)
	}
	s.root = root
	return nil
}

// Root returns the B-tree root page of store id (0 if unset).
func (m *Manager) Root(id uint32) (page.ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stores[id]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchStore, id)
	}
	return s.root, nil
}

// AllocPage allocates one page for store. If fixInCS is non-nil and the
// manager was built with LatchInCS, the callback (typically a buffer-pool
// FixNew, which can block on latches and I/O) runs while the allocation
// mutex is held — the pre-refactor behaviour of Figure 6; otherwise the
// caller is expected to fix the page after AllocPage returns.
func (m *Manager) AllocPage(store uint32, fixInCS func(page.ID) error) (page.ID, error) {
	m.mu.Lock()
	s, ok := m.stores[store]
	if !ok {
		m.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrNoSuchStore, store)
	}
	pid, err := m.allocLocked(s)
	if err != nil {
		m.mu.Unlock()
		return 0, err
	}
	if m.opts.LastPageCache && (m.opts.LatchInCS || fixInCS == nil) {
		// Publishing the hint here is only safe when the page is fixed
		// before mu is released (or not fixed through us at all): with the
		// refactored fix-outside-CS protocol a concurrent LastPage reader
		// could otherwise fix the page before the allocator does. Those
		// callers publish via SetLastPage once the page is formatted.
		s.lastHint = pid
	}
	if m.opts.LatchInCS && fixInCS != nil {
		// The infamous pattern: page latch acquired inside the allocation
		// critical section.
		err := fixInCS(pid)
		m.mu.Unlock()
		if err != nil {
			m.freePage(pid)
			return 0, err
		}
		m.allocs.Add(1)
		return pid, nil
	}
	m.mu.Unlock()
	if fixInCS != nil {
		if err := fixInCS(pid); err != nil {
			m.freePage(pid)
			return 0, err
		}
	}
	m.allocs.Add(1)
	return pid, nil
}

// allocLocked finds a free slot in the store's extents or grows the
// volume by one extent. Caller holds mu.
func (m *Manager) allocLocked(s *storeInfo) (page.ID, error) {
	// Shore "tends to fill one extent completely before moving on": scan
	// the store's extents from the back.
	for i := len(s.extents) - 1; i >= 0; i-- {
		e := s.extents[i]
		if m.extents[e].bitmap != 0xff {
			return m.claimInExtent(e), nil
		}
	}
	// No room: grab a free extent or grow the volume.
	for e := range m.extents {
		if m.extents[e].store == 0 {
			m.extents[e].store = s.id
			s.extents = append(s.extents, uint32(e))
			sort.Slice(s.extents, func(i, j int) bool { return s.extents[i] < s.extents[j] })
			return m.claimInExtent(uint32(e)), nil
		}
	}
	first, err := m.vol.Grow(ExtentSize)
	if err != nil {
		return 0, err
	}
	e := extentOf(first)
	for uint32(len(m.extents)) <= e {
		m.extents = append(m.extents, extentInfo{})
	}
	m.extents[e].store = s.id
	s.extents = append(s.extents, e)
	m.extentsGrown.Add(1)
	return m.claimInExtent(e), nil
}

// claimInExtent marks the first free page of extent e allocated.
func (m *Manager) claimInExtent(e uint32) page.ID {
	for bit := 0; bit < ExtentSize; bit++ {
		if m.extents[e].bitmap&(1<<bit) == 0 {
			m.extents[e].bitmap |= 1 << bit
			return extentFirstPage(e) + page.ID(bit)
		}
	}
	panic("space: claimInExtent on full extent")
}

// FreePage returns pid to the free pool.
func (m *Manager) FreePage(pid page.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.freePageLocked(pid)
	m.frees.Add(1)
}

func (m *Manager) freePage(pid page.ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.freePageLocked(pid)
}

func (m *Manager) freePageLocked(pid page.ID) {
	e := extentOf(pid)
	if uint64(e) >= uint64(len(m.extents)) {
		return
	}
	bit := (uint64(pid) - 1) % ExtentSize
	m.extents[e].bitmap &^= 1 << bit
	if s, ok := m.stores[m.extents[e].store]; ok && s.lastHint == pid {
		s.lastHint = 0
	}
	// A fully free extent returns to the pool.
	if m.extents[e].bitmap == 0 {
		if s, ok := m.stores[m.extents[e].store]; ok {
			for i, se := range s.extents {
				if se == e {
					s.extents = append(s.extents[:i], s.extents[i+1:]...)
					break
				}
			}
		}
		m.extents[e].store = 0
	}
}

// ExtentCache is a caller-owned (conceptually thread-local) cache of the
// most recent extent-membership lookups — the §6.2.2 fix that "cut the
// number of page checks by over 95%". The zero value is ready to use.
type ExtentCache struct {
	extent uint32
	store  uint32
	valid  bool
}

// StoreOf returns the store owning pid, consulting cache (if enabled and
// non-nil) before entering the critical section.
func (m *Manager) StoreOf(pid page.ID, cache *ExtentCache) (uint32, error) {
	e := extentOf(pid)
	if m.opts.ExtentCache && cache != nil && cache.valid && cache.extent == e {
		m.cacheHits.Add(1)
		return cache.store, nil
	}
	m.cacheMisses.Add(1)
	m.mu.Lock()
	defer m.mu.Unlock()
	if uint64(e) >= uint64(len(m.extents)) || m.extents[e].store == 0 {
		return 0, fmt.Errorf("%w: %v", ErrNotOwned, pid)
	}
	st := m.extents[e].store
	if m.opts.ExtentCache && cache != nil {
		*cache = ExtentCache{extent: e, store: st, valid: true}
	}
	return st, nil
}

// CheckPage verifies pid belongs to store — the per-insert membership
// check of §6.2.2 problem 1.
func (m *Manager) CheckPage(store uint32, pid page.ID, cache *ExtentCache) error {
	got, err := m.StoreOf(pid, cache)
	if err != nil {
		return err
	}
	if got != store {
		return fmt.Errorf("%w: %v belongs to store %d, not %d", ErrNotOwned, pid, got, store)
	}
	return nil
}

// LastPage returns the store's most recently allocated page (the target
// for appends). Without LastPageCache it walks the extent list every call
// — the O(n) step that made page allocation O(n²) before §7.6.
func (m *Manager) LastPage(store uint32) (page.ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stores[store]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoSuchStore, store)
	}
	if m.opts.LastPageCache && s.lastHint != 0 {
		return s.lastHint, nil
	}
	m.lastPageWalks.Add(1)
	var last page.ID
	for _, e := range s.extents {
		bm := m.extents[e].bitmap
		for bit := 0; bit < ExtentSize; bit++ {
			if bm&(1<<bit) != 0 {
				p := extentFirstPage(e) + page.ID(bit)
				if p > last {
					last = p
				}
			}
		}
	}
	if m.opts.LastPageCache {
		s.lastHint = last
	}
	return last, nil
}

// SetLastPage updates the last-page hint after the caller appended a page.
func (m *Manager) SetLastPage(store uint32, pid page.ID) {
	if !m.opts.LastPageCache {
		return
	}
	m.mu.Lock()
	if s, ok := m.stores[store]; ok {
		s.lastHint = pid
	}
	m.mu.Unlock()
}

// Pages returns the allocated pages of store in ascending order (heap scan
// order: extents are allocated sequentially for locality).
func (m *Manager) Pages(store uint32) ([]page.ID, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.stores[store]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoSuchStore, store)
	}
	var out []page.ID
	for _, e := range s.extents {
		bm := m.extents[e].bitmap
		for bit := 0; bit < ExtentSize; bit++ {
			if bm&(1<<bit) != 0 {
				out = append(out, extentFirstPage(e)+page.ID(bit))
			}
		}
	}
	return out, nil
}

// RestoreStore re-registers a store with a known id during recovery (the
// directory is rebuilt by scanning page headers after redo). It keeps the
// id generator above every restored id.
func (m *Manager) RestoreStore(id uint32, kind StoreKind) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.stores[id]; !ok {
		m.stores[id] = &storeInfo{id: id, kind: kind}
	} else {
		m.stores[id].kind = kind
	}
	if id >= m.nextID {
		m.nextID = id + 1
	}
}

// RestorePage marks pid allocated to store during recovery.
func (m *Manager) RestorePage(pid page.ID, store uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e := extentOf(pid)
	for uint32(len(m.extents)) <= e {
		m.extents = append(m.extents, extentInfo{})
	}
	if m.extents[e].store == 0 {
		m.extents[e].store = store
		if s, ok := m.stores[store]; ok {
			s.extents = append(s.extents, e)
			sort.Slice(s.extents, func(i, j int) bool { return s.extents[i] < s.extents[j] })
		}
	}
	bit := (uint64(pid) - 1) % ExtentSize
	m.extents[e].bitmap |= 1 << bit
}

// CoverVolume extends the extent table to cover the whole volume so that
// extents holding only free pages are still tracked after recovery.
func (m *Manager) CoverVolume() {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.vol.NumPages()
	if n == 0 {
		return
	}
	last := extentOf(page.ID(n))
	for uint32(len(m.extents)) <= last {
		m.extents = append(m.extents, extentInfo{})
	}
}

// Stats returns a counter snapshot.
func (m *Manager) Stats() Stats {
	return Stats{
		Allocs:        m.allocs.Load(),
		Frees:         m.frees.Load(),
		ExtentsGrown:  m.extentsGrown.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		LastPageWalks: m.lastPageWalks.Load(),
		Lock:          m.mu.Stats(),
	}
}
