package space

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/sync2"
)

func newMgr(opts Options) (*Manager, *disk.MemVolume) {
	v := disk.NewMem(0)
	return NewManager(v, opts), v
}

func fullOpts() Options {
	return Options{
		Mutex: sync2.KindMCS, ExtentCache: true, LastPageCache: true,
	}
}

func TestCreateStoreAndAlloc(t *testing.T) {
	m, v := newMgr(fullOpts())
	s1 := m.CreateStore(KindHeap)
	s2 := m.CreateStore(KindBTree)
	if s1 == s2 {
		t.Fatal("duplicate store ids")
	}
	if k, err := m.StoreKindOf(s2); err != nil || k != KindBTree {
		t.Fatalf("StoreKindOf = %v, %v", k, err)
	}
	if _, err := m.StoreKindOf(999); !errors.Is(err, ErrNoSuchStore) {
		t.Errorf("unknown store err = %v", err)
	}
	pid, err := m.AllocPage(s1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pid != 1 {
		t.Fatalf("first page = %v, want 1", pid)
	}
	if v.NumPages() != ExtentSize {
		t.Fatalf("volume grew to %d pages, want one extent (%d)", v.NumPages(), ExtentSize)
	}
	// Fill the extent: pages 2..8 come from the same extent without growth.
	for i := 2; i <= ExtentSize; i++ {
		p, err := m.AllocPage(s1, nil)
		if err != nil {
			t.Fatal(err)
		}
		if p != page.ID(i) {
			t.Fatalf("page %d = %v", i, p)
		}
	}
	if v.NumPages() != ExtentSize {
		t.Fatal("volume grew before extent was full")
	}
	// Ninth page: new extent.
	p9, err := m.AllocPage(s1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p9 != ExtentSize+1 {
		t.Fatalf("ninth page = %v", p9)
	}
	if got := m.Stats().ExtentsGrown; got != 2 {
		t.Errorf("ExtentsGrown = %d, want 2", got)
	}
}

func TestSeparateStoresSeparateExtents(t *testing.T) {
	m, _ := newMgr(fullOpts())
	s1 := m.CreateStore(KindHeap)
	s2 := m.CreateStore(KindHeap)
	p1, _ := m.AllocPage(s1, nil)
	p2, _ := m.AllocPage(s2, nil)
	if extentOf(p1) == extentOf(p2) {
		t.Fatal("two stores share an extent")
	}
	if err := m.CheckPage(s1, p1, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckPage(s1, p2, nil); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("cross-store CheckPage = %v", err)
	}
	if _, err := m.StoreOf(page.ID(999), nil); !errors.Is(err, ErrNotOwned) {
		t.Fatalf("unallocated StoreOf = %v", err)
	}
}

func TestExtentCache(t *testing.T) {
	m, _ := newMgr(fullOpts())
	s := m.CreateStore(KindHeap)
	pid, _ := m.AllocPage(s, nil)
	var cache ExtentCache
	if err := m.CheckPage(s, pid, &cache); err != nil {
		t.Fatal(err)
	}
	misses := m.Stats().CacheMisses
	// Repeated checks on the same extent must hit the cache.
	for i := 0; i < 100; i++ {
		if err := m.CheckPage(s, pid, &cache); err != nil {
			t.Fatal(err)
		}
	}
	st := m.Stats()
	if st.CacheMisses != misses {
		t.Errorf("cache misses grew: %d -> %d", misses, st.CacheMisses)
	}
	if st.CacheHits < 100 {
		t.Errorf("cache hits = %d, want >= 100", st.CacheHits)
	}
	// Disabled cache: every check is a miss.
	m2, _ := newMgr(Options{Mutex: sync2.KindBlocking})
	s2 := m2.CreateStore(KindHeap)
	pid2, _ := m2.AllocPage(s2, nil)
	var c2 ExtentCache
	for i := 0; i < 10; i++ {
		if err := m2.CheckPage(s2, pid2, &c2); err != nil {
			t.Fatal(err)
		}
	}
	if m2.Stats().CacheHits != 0 {
		t.Error("disabled cache recorded hits")
	}
}

func TestFreePageAndExtentReuse(t *testing.T) {
	m, v := newMgr(fullOpts())
	s := m.CreateStore(KindHeap)
	var pids []page.ID
	for i := 0; i < ExtentSize; i++ {
		p, err := m.AllocPage(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		pids = append(pids, p)
	}
	for _, p := range pids {
		m.FreePage(p)
	}
	// The fully-freed extent must be reusable by another store without
	// growing the volume.
	grown := v.NumPages()
	s2 := m.CreateStore(KindHeap)
	p, err := m.AllocPage(s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.NumPages() != grown {
		t.Fatal("volume grew despite a free extent")
	}
	if err := m.CheckPage(s2, p, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Frees; got != ExtentSize {
		t.Errorf("frees = %d", got)
	}
}

func TestLastPageCacheVsWalk(t *testing.T) {
	// With the cache: no walks after warm-up.
	m, _ := newMgr(fullOpts())
	s := m.CreateStore(KindHeap)
	var last page.ID
	for i := 0; i < 20; i++ {
		last, _ = m.AllocPage(s, nil)
	}
	got, err := m.LastPage(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != last {
		t.Fatalf("LastPage = %v, want %v", got, last)
	}
	if m.Stats().LastPageWalks != 0 {
		t.Errorf("walks with cache on = %d", m.Stats().LastPageWalks)
	}
	// Without the cache: every call walks.
	m2, _ := newMgr(Options{Mutex: sync2.KindBlocking})
	s2 := m2.CreateStore(KindHeap)
	var last2 page.ID
	for i := 0; i < 20; i++ {
		last2, _ = m2.AllocPage(s2, nil)
	}
	for i := 0; i < 5; i++ {
		got, err := m2.LastPage(s2)
		if err != nil {
			t.Fatal(err)
		}
		if got != last2 {
			t.Fatalf("LastPage = %v, want %v", got, last2)
		}
	}
	if m2.Stats().LastPageWalks != 5 {
		t.Errorf("walks with cache off = %d, want 5", m2.Stats().LastPageWalks)
	}
	// SetLastPage hint.
	m.SetLastPage(s, 3)
	if got, _ := m.LastPage(s); got != 3 {
		t.Errorf("hinted LastPage = %v, want 3", got)
	}
	if _, err := m.LastPage(999); !errors.Is(err, ErrNoSuchStore) {
		t.Errorf("LastPage unknown store = %v", err)
	}
}

func TestPagesEnumeration(t *testing.T) {
	m, _ := newMgr(fullOpts())
	s := m.CreateStore(KindHeap)
	want := map[page.ID]bool{}
	for i := 0; i < 20; i++ {
		p, err := m.AllocPage(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[p] = true
	}
	pages, err := m.Pages(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 20 {
		t.Fatalf("Pages returned %d, want 20", len(pages))
	}
	for i := 1; i < len(pages); i++ {
		if pages[i] <= pages[i-1] {
			t.Fatal("Pages not ascending")
		}
	}
	for _, p := range pages {
		if !want[p] {
			t.Fatalf("unexpected page %v", p)
		}
	}
	if _, err := m.Pages(12345); !errors.Is(err, ErrNoSuchStore) {
		t.Errorf("Pages unknown store = %v", err)
	}
}

func TestRootAccessors(t *testing.T) {
	m, _ := newMgr(fullOpts())
	s := m.CreateStore(KindBTree)
	if r, err := m.Root(s); err != nil || r != 0 {
		t.Fatalf("fresh root = %v, %v", r, err)
	}
	if err := m.SetRoot(s, 42); err != nil {
		t.Fatal(err)
	}
	if r, _ := m.Root(s); r != 42 {
		t.Fatalf("root = %v", r)
	}
	if err := m.SetRoot(999, 1); !errors.Is(err, ErrNoSuchStore) {
		t.Errorf("SetRoot unknown = %v", err)
	}
	if _, err := m.Root(999); !errors.Is(err, ErrNoSuchStore) {
		t.Errorf("Root unknown = %v", err)
	}
}

func TestLatchInCSCallback(t *testing.T) {
	for _, inCS := range []bool{true, false} {
		opts := fullOpts()
		opts.LatchInCS = inCS
		m, _ := newMgr(opts)
		s := m.CreateStore(KindHeap)
		called := false
		pid, err := m.AllocPage(s, func(p page.ID) error {
			called = true
			if p == 0 {
				t.Error("callback got zero pid")
			}
			return nil
		})
		if err != nil || !called {
			t.Fatalf("inCS=%v: err=%v called=%v", inCS, err, called)
		}
		if err := m.CheckPage(s, pid, nil); err != nil {
			t.Fatal(err)
		}
		// Callback failure frees the page again.
		failErr := errors.New("fix failed")
		_, err = m.AllocPage(s, func(page.ID) error { return failErr })
		if !errors.Is(err, failErr) {
			t.Fatalf("inCS=%v: error not propagated: %v", inCS, err)
		}
	}
}

func TestConcurrentAllocation(t *testing.T) {
	for _, kind := range []sync2.Kind{sync2.KindBlocking, sync2.KindTATAS, sync2.KindMCS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			opts := fullOpts()
			opts.Mutex = kind
			m, _ := newMgr(opts)
			s := m.CreateStore(KindHeap)
			const g, n = 8, 50
			var mu sync.Mutex
			seen := map[page.ID]bool{}
			var wg sync.WaitGroup
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < n; i++ {
						p, err := m.AllocPage(s, nil)
						if err != nil {
							t.Error(err)
							return
						}
						mu.Lock()
						if seen[p] {
							t.Errorf("page %v allocated twice", p)
						}
						seen[p] = true
						mu.Unlock()
					}
				}()
			}
			wg.Wait()
			if len(seen) != g*n {
				t.Fatalf("allocated %d distinct pages, want %d", len(seen), g*n)
			}
			if m.Stats().Allocs != g*n {
				t.Errorf("alloc counter = %d", m.Stats().Allocs)
			}
		})
	}
}

func TestStoresList(t *testing.T) {
	m, _ := newMgr(fullOpts())
	a := m.CreateStore(KindHeap)
	b := m.CreateStore(KindBTree)
	ids := m.Stores()
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Fatalf("Stores = %v", ids)
	}
	if KindHeap.String() != "heap" || KindBTree.String() != "btree" {
		t.Error("kind strings")
	}
}
