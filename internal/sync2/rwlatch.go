package sync2

import "sync/atomic"

// LatchMode is the mode in which a latch is requested.
type LatchMode int

// Latch modes.
const (
	LatchNone LatchMode = iota
	LatchSH             // shared: concurrent readers
	LatchEX             // exclusive: single writer
)

// String returns "SH", "EX" or "none".
func (m LatchMode) String() string {
	switch m {
	case LatchSH:
		return "SH"
	case LatchEX:
		return "EX"
	default:
		return "none"
	}
}

// RWLatch is a reader-writer latch of the kind protecting every buffer-pool
// page (§2.2.2). It is writer-preferring to bound writer starvation: once a
// writer announces intent, new readers wait.
//
// State word layout: bit 31 = writer-held, bits 30..16 = writers waiting,
// bits 15..0 = reader count.
type RWLatch struct {
	statCounters
	state atomic.Uint32
}

const (
	latchWriterBit   = 1 << 31
	latchWaiterUnit  = 1 << 16
	latchWaiterMask  = 0x7fff0000
	latchReaderMask  = 0x0000ffff
	latchReaderLimit = latchReaderMask - 1
)

// LatchSH acquires the latch in shared mode.
func (l *RWLatch) LatchSH() {
	if s := l.state.Load(); s&(latchWriterBit|latchWaiterMask) == 0 &&
		s&latchReaderMask < latchReaderLimit &&
		l.state.CompareAndSwap(s, s+1) {
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	for {
		s := l.state.Load()
		if s&(latchWriterBit|latchWaiterMask) == 0 && s&latchReaderMask < latchReaderLimit {
			if l.state.CompareAndSwap(s, s+1) {
				l.recordAcquire(true, uint64(b.Iterations()))
				return
			}
		}
		b.Spin()
	}
}

// TryLatchSH attempts a shared acquisition without waiting.
func (l *RWLatch) TryLatchSH() bool {
	s := l.state.Load()
	if s&(latchWriterBit|latchWaiterMask) != 0 || s&latchReaderMask >= latchReaderLimit {
		return false
	}
	if l.state.CompareAndSwap(s, s+1) {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// UnlatchSH releases a shared hold.
func (l *RWLatch) UnlatchSH() {
	l.state.Add(^uint32(0)) // -1
}

// LatchEX acquires the latch in exclusive mode.
func (l *RWLatch) LatchEX() {
	// Fast path: completely free.
	if l.state.CompareAndSwap(0, latchWriterBit) {
		l.recordAcquire(false, 0)
		return
	}
	// Announce intent so new readers back off.
	l.state.Add(latchWaiterUnit)
	var b Backoff
	for {
		s := l.state.Load()
		if s&latchWriterBit == 0 && s&latchReaderMask == 0 {
			if l.state.CompareAndSwap(s, (s-latchWaiterUnit)|latchWriterBit) {
				l.recordAcquire(true, uint64(b.Iterations()))
				return
			}
		}
		b.Spin()
	}
}

// TryLatchEX attempts an exclusive acquisition without waiting.
func (l *RWLatch) TryLatchEX() bool {
	if l.state.CompareAndSwap(0, latchWriterBit) {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// UnlatchEX releases an exclusive hold.
func (l *RWLatch) UnlatchEX() {
	s := l.state.Load()
	for !l.state.CompareAndSwap(s, s&^uint32(latchWriterBit)) {
		s = l.state.Load()
	}
}

// Latch acquires the latch in the given mode.
func (l *RWLatch) Latch(m LatchMode) {
	switch m {
	case LatchSH:
		l.LatchSH()
	case LatchEX:
		l.LatchEX()
	}
}

// TryLatch attempts acquisition in the given mode without waiting.
func (l *RWLatch) TryLatch(m LatchMode) bool {
	switch m {
	case LatchSH:
		return l.TryLatchSH()
	case LatchEX:
		return l.TryLatchEX()
	default:
		return true
	}
}

// Unlatch releases a hold taken in the given mode.
func (l *RWLatch) Unlatch(m LatchMode) {
	switch m {
	case LatchSH:
		l.UnlatchSH()
	case LatchEX:
		l.UnlatchEX()
	}
}

// TryUpgrade attempts to convert a shared hold into an exclusive hold. It
// succeeds only when the caller is the sole reader and no writer holds or
// has claimed the latch; on failure the caller still holds SH.
func (l *RWLatch) TryUpgrade() bool {
	return l.state.CompareAndSwap(1, latchWriterBit)
}

// Downgrade converts an exclusive hold into a shared hold without releasing.
func (l *RWLatch) Downgrade() {
	for {
		s := l.state.Load()
		if l.state.CompareAndSwap(s, (s&^uint32(latchWriterBit))+1) {
			return
		}
	}
}

// HeldEX reports whether the latch is currently writer-held (advisory).
func (l *RWLatch) HeldEX() bool { return l.state.Load()&latchWriterBit != 0 }

// Readers reports the current shared-holder count (advisory).
func (l *RWLatch) Readers() int { return int(l.state.Load() & latchReaderMask) }
