// Package sync2 provides the synchronization primitives studied in the
// Shore-MT paper (EDBT 2009): test-and-set and test-and-test-and-set
// spinlocks, MCS queue locks, ticket locks, reader-writer latches, hybrid
// spin-then-block mutexes, and a lock-free Treiber stack.
//
// Every primitive records contention statistics (acquisitions, contended
// acquisitions, spin iterations) so that higher layers can produce the
// profiler-style breakdowns the paper uses to locate bottlenecks.
//
// All spin loops yield to the Go scheduler after a bounded number of
// iterations, so the primitives are safe (if slow) even at GOMAXPROCS=1.
package sync2

import (
	"runtime"
	"sync/atomic"
)

// spinBudget is the number of busy-wait iterations performed before the
// spinner yields the processor. Kept small because on a single-CPU host the
// lock holder cannot make progress while we spin.
const spinBudget = 32

// Backoff implements bounded exponential backoff for spin loops.
// The zero value is ready to use.
type Backoff struct {
	i uint
}

// Spin performs one backoff step: it busy-waits briefly and, once the
// budget is exhausted, yields to the scheduler.
func (b *Backoff) Spin() {
	b.i++
	if b.i%spinBudget == 0 {
		runtime.Gosched()
		return
	}
	// A handful of no-op loop iterations approximates a PAUSE instruction.
	for j := uint(0); j < b.i%spinBudget; j++ {
		_ = j
	}
}

// Iterations reports how many backoff steps have been taken.
func (b *Backoff) Iterations() uint { return b.i }

// Reset clears the backoff state.
func (b *Backoff) Reset() { b.i = 0 }

// Stats holds contention counters for a synchronization primitive.
// All fields are updated atomically and may be read concurrently.
type Stats struct {
	Acquisitions uint64 // total successful acquisitions
	Contended    uint64 // acquisitions that observed the lock held
	SpinIters    uint64 // total spin-loop iterations across all acquirers
}

// statCounters is embedded by primitives to collect Stats.
type statCounters struct {
	acquisitions atomic.Uint64
	contended    atomic.Uint64
	spinIters    atomic.Uint64
}

func (c *statCounters) recordAcquire(contended bool, spins uint64) {
	c.acquisitions.Add(1)
	if contended {
		c.contended.Add(1)
	}
	if spins > 0 {
		c.spinIters.Add(spins)
	}
}

// Stats returns a snapshot of the counters.
func (c *statCounters) Stats() Stats {
	return Stats{
		Acquisitions: c.acquisitions.Load(),
		Contended:    c.contended.Load(),
		SpinIters:    c.spinIters.Load(),
	}
}

// ContentionRatio returns the fraction of acquisitions that were contended,
// or 0 if there have been none.
func (s Stats) ContentionRatio() float64 {
	if s.Acquisitions == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquisitions)
}

// Locker is the minimal mutual-exclusion interface shared by the lock
// variants in this package; it matches sync.Locker and adds TryLock and
// contention statistics, letting callers swap primitives per the paper's
// "use the right synchronization primitive" principle.
type Locker interface {
	Lock()
	Unlock()
	TryLock() bool
	Stats() Stats
}
