package sync2

import "sync/atomic"

// StackNode is embedded (or pointed to) by values stored in a Stack.
// Callers own allocation of nodes; the stack only links them. The link is
// atomic because a losing Pop reads a node's next pointer concurrently
// with the winning Pop clearing it (and with the owner re-Pushing it).
type StackNode struct {
	next atomic.Pointer[StackNode]
	val  any
}

// NewStackNode returns a node carrying val.
func NewStackNode(val any) *StackNode {
	n := &StackNode{}
	n.val = val
	return n
}

// Init sets the payload of an embedded zero-value node. It must happen
// before the node's first Push and never again afterwards.
func (n *StackNode) Init(val any) { n.val = val }

// Value returns the payload the node carries.
func (n *StackNode) Value() any { return n.val }

// Stack is a lock-free Treiber stack: push and pop are single
// compare-and-swap operations. Shore-MT uses exactly this structure for the
// lock manager's request pool (§7.5: "we reimplemented it as a lock-free
// stack where threads can push or pop requests using a single
// compare-and-swap operation").
//
// ABA safety: in Go, nodes are garbage-collected and a node address is never
// reused while any goroutine still holds a reference to it, so the classic
// ABA hazard of Treiber stacks cannot corrupt the list. Callers must not
// push the same node twice concurrently.
type Stack struct {
	head atomic.Pointer[StackNode]
	size atomic.Int64
}

// Push adds n to the top of the stack.
func (s *Stack) Push(n *StackNode) {
	for {
		old := s.head.Load()
		n.next.Store(old)
		if s.head.CompareAndSwap(old, n) {
			s.size.Add(1)
			return
		}
	}
}

// Pop removes and returns the top node, or nil if the stack is empty.
func (s *Stack) Pop() *StackNode {
	for {
		old := s.head.Load()
		if old == nil {
			return nil
		}
		next := old.next.Load()
		if s.head.CompareAndSwap(old, next) {
			s.size.Add(-1)
			old.next.Store(nil)
			return old
		}
	}
}

// Len returns the approximate number of nodes on the stack.
func (s *Stack) Len() int { return int(s.size.Load()) }

// PinCount implements the atomic "pin-if-pinned" operation from §6.2.1: a
// page's pin count can be incremented without holding the bucket lock
// provided it is already non-zero, because a pinned page cannot be evicted.
type PinCount struct {
	n atomic.Int32
}

// PinIfPinned atomically increments the count only if it is currently
// non-zero and reports whether it did. This is the lock-free fast path of a
// buffer-pool hit on a hot page.
func (p *PinCount) PinIfPinned() bool {
	for {
		old := p.n.Load()
		if old <= 0 {
			return false
		}
		if p.n.CompareAndSwap(old, old+1) {
			return true
		}
	}
}

// Pin unconditionally increments the count. Callers must hold whatever lock
// protects the page's residency (the bucket latch) when pinning from zero.
func (p *PinCount) Pin() { p.n.Add(1) }

// Unpin decrements the count and returns the new value.
func (p *PinCount) Unpin() int32 { return p.n.Add(-1) }

// Get returns the current count.
func (p *PinCount) Get() int32 { return p.n.Load() }

// TryFreeze transitions the count from 0 to -1, claiming the page for
// eviction; it fails if the page is pinned or already frozen.
func (p *PinCount) TryFreeze() bool { return p.n.CompareAndSwap(0, -1) }

// Unfreeze returns a frozen count to 0.
func (p *PinCount) Unfreeze() { p.n.CompareAndSwap(-1, 0) }
