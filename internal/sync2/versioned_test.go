package sync2

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestVersionedLatchOptReadValidate(t *testing.T) {
	var l VersionedLatch
	v, ok := l.OptRead()
	if !ok {
		t.Fatal("OptRead on free latch failed")
	}
	if !l.Validate(v) {
		t.Fatal("Validate with no writer activity failed")
	}

	// A completed EX round trip must invalidate the sample.
	l.LatchEX()
	l.UnlatchEX()
	if l.Validate(v) {
		t.Fatal("Validate succeeded across an EX acquire/release")
	}

	// A fresh sample validates again.
	v, ok = l.OptRead()
	if !ok || !l.Validate(v) {
		t.Fatal("fresh sample did not validate")
	}
}

func TestVersionedLatchOptReadFailsUnderWriter(t *testing.T) {
	var l VersionedLatch
	v, _ := l.OptRead()
	l.LatchEX()
	if _, ok := l.OptRead(); ok {
		t.Fatal("OptRead succeeded while EX held")
	}
	if l.Validate(v) {
		t.Fatal("Validate succeeded while EX held")
	}
	l.UnlatchEX()
}

func TestVersionedLatchSHDoesNotInvalidate(t *testing.T) {
	var l VersionedLatch
	v, _ := l.OptRead()
	l.LatchSH()
	if !l.Validate(v) {
		t.Fatal("SH hold invalidated an optimistic read")
	}
	l.UnlatchSH()
	if !l.Validate(v) {
		t.Fatal("SH release invalidated an optimistic read")
	}
}

func TestVersionedLatchUpgradeDowngradeBump(t *testing.T) {
	var l VersionedLatch
	v, _ := l.OptRead()
	l.LatchSH()
	if !l.TryUpgrade() {
		t.Fatal("TryUpgrade as sole reader failed")
	}
	l.Downgrade()
	l.UnlatchSH()
	if l.Validate(v) {
		t.Fatal("Validate survived an upgrade/downgrade write window")
	}
}

// TestVersionedLatchSeqlock drives the full protocol: a writer repeatedly
// publishes two counters that must stay equal; optimistic readers accept
// a pair only when Validate passes, so every accepted pair must match.
// The shared data is atomic, keeping the test race-detector clean while
// still proving the version protocol orders speculative reads.
func TestVersionedLatchSeqlock(t *testing.T) {
	var l VersionedLatch
	var a, b atomic.Uint64
	stop := make(chan struct{})
	var writer, readers sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := uint64(1); ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			l.LatchEX()
			a.Store(i)
			b.Store(i)
			l.UnlatchEX()
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			accepted := 0
			for accepted < 1000 {
				v, ok := l.OptRead()
				if !ok {
					continue
				}
				x, y := a.Load(), b.Load()
				if !l.Validate(v) {
					continue
				}
				if x != y {
					t.Errorf("validated torn read: %d != %d", x, y)
					return
				}
				accepted++
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}
