package sync2

import "sync/atomic"

// VersionedLatch is an RWLatch extended with an epoch counter for
// optimistic latch coupling (Cha et al.'s OLFIT / LeanStore-style
// versioned latches): every exclusive acquisition and release bumps the
// version, so a reader can sample the version, perform speculative reads
// with no shared-memory writes at all, and then Validate that no writer
// ran in between. Shared acquisitions do not bump the version — SH
// holders never modify the protected data, so optimistic readers may
// overlap them freely.
//
// Protocol:
//
//	v, ok := l.OptRead()        // sample; ok=false while a writer holds
//	... speculative reads ...   // must tolerate torn data (copy out,
//	                            // bounds-check, never dereference)
//	if !l.Validate(v) { retry or fall back to LatchSH }
//
// The EX path bumps the version once on acquire and once on release, so
// a sample taken at any point relative to a writer either observes the
// writer bit (acquire precedes release's clearing of it) or a version
// change; in both cases Validate fails. Callers must route every
// exclusive acquisition through this type's methods — taking the
// embedded RWLatch's EX path directly would skip the bump and break
// optimistic readers.
type VersionedLatch struct {
	RWLatch
	ver atomic.Uint64
}

// LatchEX acquires exclusively and bumps the version so that optimistic
// readers sampled before the acquisition fail validation.
func (l *VersionedLatch) LatchEX() {
	l.RWLatch.LatchEX()
	l.ver.Add(1)
}

// TryLatchEX attempts an exclusive acquisition without waiting.
func (l *VersionedLatch) TryLatchEX() bool {
	if l.RWLatch.TryLatchEX() {
		l.ver.Add(1)
		return true
	}
	return false
}

// UnlatchEX bumps the version, then releases: a reader sampling between
// the two steps still sees the writer bit and fails.
func (l *VersionedLatch) UnlatchEX() {
	l.ver.Add(1)
	l.RWLatch.UnlatchEX()
}

// TryUpgrade converts SH to EX (sole-reader only), bumping the version.
func (l *VersionedLatch) TryUpgrade() bool {
	if l.RWLatch.TryUpgrade() {
		l.ver.Add(1)
		return true
	}
	return false
}

// Downgrade converts EX to SH. The version bumps first: the writer's
// modifications are complete, but readers that sampled during the EX
// hold must still fail validation.
func (l *VersionedLatch) Downgrade() {
	l.ver.Add(1)
	l.RWLatch.Downgrade()
}

// Latch acquires in mode, routing EX through the versioned path.
func (l *VersionedLatch) Latch(m LatchMode) {
	switch m {
	case LatchSH:
		l.LatchSH()
	case LatchEX:
		l.LatchEX()
	}
}

// TryLatch attempts acquisition in mode without waiting.
func (l *VersionedLatch) TryLatch(m LatchMode) bool {
	switch m {
	case LatchSH:
		return l.TryLatchSH()
	case LatchEX:
		return l.TryLatchEX()
	default:
		return true
	}
}

// Unlatch releases a hold taken in mode.
func (l *VersionedLatch) Unlatch(m LatchMode) {
	switch m {
	case LatchSH:
		l.UnlatchSH()
	case LatchEX:
		l.UnlatchEX()
	}
}

// OptRead begins an optimistic read: it samples the version and reports
// ok=false when a writer currently holds the latch. No shared cache line
// is written.
func (l *VersionedLatch) OptRead() (uint64, bool) {
	v := l.ver.Load()
	if l.HeldEX() {
		return 0, false
	}
	return v, true
}

// Validate ends an optimistic read begun at version v: it reports whether
// no writer held or acquired the latch since the sample, i.e. whether the
// speculative reads in between observed a consistent snapshot.
func (l *VersionedLatch) Validate(v uint64) bool {
	if l.HeldEX() {
		return false
	}
	return l.ver.Load() == v
}

// Version returns the current version (advisory; for tests and stats).
func (l *VersionedLatch) Version() uint64 { return l.ver.Load() }
