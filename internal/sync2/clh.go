package sync2

import (
	"sync"
	"sync/atomic"
)

// CLHLock is the Craig / Landin-Hagersten queue lock (the paper's
// reference [9]): like MCS, waiters form a queue and each spins locally,
// but on the *predecessor's* node rather than their own, which removes the
// hand-off store MCS needs. On cache-coherent machines the two perform
// similarly; CLH is included to complete the queue-lock family the paper's
// related work surveys.
type CLHLock struct {
	statCounters
	tail  atomic.Pointer[clhNode]
	owner *clhNode // current holder's node; guarded by the lock itself
	pred  *clhNode // holder's predecessor node (recycled on unlock)
}

type clhNode struct {
	locked atomic.Bool
	_      [56]byte // cache-line padding
}

var clhNodePool = sync.Pool{New: func() any { return new(clhNode) }}

// Lock acquires the lock, enqueueing behind current waiters.
func (l *CLHLock) Lock() {
	n := clhNodePool.Get().(*clhNode)
	n.locked.Store(true)
	pred := l.tail.Swap(n)
	if pred == nil {
		l.owner = n
		l.pred = nil
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	contended := pred.locked.Load()
	for pred.locked.Load() {
		b.Spin()
	}
	l.owner = n
	l.pred = pred // recycle the predecessor's node after our critical section
	l.recordAcquire(contended, uint64(b.Iterations()))
}

// TryLock acquires the lock only if the queue is empty.
func (l *CLHLock) TryLock() bool {
	n := clhNodePool.Get().(*clhNode)
	n.locked.Store(true)
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.pred = nil
		l.recordAcquire(false, 0)
		return true
	}
	clhNodePool.Put(n)
	return false
}

// Unlock releases the lock, letting the successor (spinning on our node)
// proceed.
func (l *CLHLock) Unlock() {
	n := l.owner
	pred := l.pred
	l.owner = nil
	l.pred = nil
	// If no successor has enqueued, try to reset the tail so the node can
	// be recycled immediately.
	if l.tail.CompareAndSwap(n, nil) {
		n.locked.Store(false)
		clhNodePool.Put(n)
	} else {
		// A successor spins on n: release it. n is recycled by the
		// successor (it becomes their pred), not by us.
		n.locked.Store(false)
	}
	if pred != nil {
		clhNodePool.Put(pred)
	}
}

var _ Locker = (*CLHLock)(nil)
