package sync2

import (
	"sync"
	"sync/atomic"
)

// HybridLock is a spin-then-block mutex: a test-and-set fast path that
// falls back to a blocking mutex + condition variable only under contention.
// This mirrors the Shore-MT change in §7.2 ("we replaced several key
// pthread mutex instances with test-and-set spinlocks that acquire a
// pthread mutex and cond var only under contention"), which makes the
// common uncontended case nearly free while still descheduling long waits.
type HybridLock struct {
	statCounters
	state   atomic.Int32 // 0 free, 1 held, 2 held with waiters
	mu      sync.Mutex
	cond    *sync.Cond
	condSet atomic.Bool
}

func (l *HybridLock) lazyCond() *sync.Cond {
	if !l.condSet.Load() {
		l.mu.Lock()
		if l.cond == nil {
			l.cond = sync.NewCond(&l.mu)
			l.condSet.Store(true)
		}
		l.mu.Unlock()
	}
	return l.cond
}

// Lock acquires the lock, spinning briefly before blocking.
func (l *HybridLock) Lock() {
	if l.state.CompareAndSwap(0, 1) {
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	// Brief optimistic spin.
	for i := 0; i < spinBudget; i++ {
		if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
			l.recordAcquire(true, uint64(b.Iterations()))
			return
		}
		b.Spin()
	}
	// Slow path: mark "held with waiters" and block on the cond var.
	cond := l.lazyCond()
	l.mu.Lock()
	for {
		old := l.state.Load()
		switch old {
		case 0:
			if l.state.CompareAndSwap(0, 2) {
				l.mu.Unlock()
				l.recordAcquire(true, uint64(b.Iterations()))
				return
			}
		case 1:
			if !l.state.CompareAndSwap(1, 2) {
				continue
			}
			cond.Wait()
		case 2:
			cond.Wait()
		}
	}
}

// TryLock attempts to acquire the lock without waiting.
func (l *HybridLock) TryLock() bool {
	if l.state.CompareAndSwap(0, 1) {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// Unlock releases the lock, waking one blocked waiter if any.
func (l *HybridLock) Unlock() {
	old := l.state.Swap(0)
	if old == 2 {
		cond := l.lazyCond()
		l.mu.Lock()
		cond.Signal()
		l.mu.Unlock()
	}
}

// BlockingLock wraps sync.Mutex with the package's Locker interface and
// contention stats. It plays the role of the "pthread mutex" in the paper's
// experiments: correct and fair-ish, but with wake-up latency on every
// contended handoff.
type BlockingLock struct {
	statCounters
	mu sync.Mutex
}

// Lock acquires the lock, blocking if necessary.
func (l *BlockingLock) Lock() {
	if l.mu.TryLock() {
		l.recordAcquire(false, 0)
		return
	}
	l.mu.Lock()
	l.recordAcquire(true, 0)
}

// TryLock attempts to acquire the lock without blocking.
func (l *BlockingLock) TryLock() bool {
	if l.mu.TryLock() {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// Unlock releases the lock.
func (l *BlockingLock) Unlock() { l.mu.Unlock() }

var (
	_ Locker = (*HybridLock)(nil)
	_ Locker = (*BlockingLock)(nil)
)

// Kind names a lock implementation; used by config layers to choose
// primitives per component ("use the right synchronization primitive").
type Kind int

// Lock kinds, from least to most scalable under contention.
const (
	KindTAS Kind = iota
	KindTATAS
	KindTicket
	KindMCS
	KindCLH
	KindHybrid
	KindBlocking
)

// String returns the primitive's conventional name.
func (k Kind) String() string {
	switch k {
	case KindTAS:
		return "tas"
	case KindTATAS:
		return "tatas"
	case KindTicket:
		return "ticket"
	case KindMCS:
		return "mcs"
	case KindCLH:
		return "clh"
	case KindHybrid:
		return "hybrid"
	case KindBlocking:
		return "blocking"
	default:
		return "unknown"
	}
}

// New constructs a Locker of the given kind.
func New(k Kind) Locker {
	switch k {
	case KindTAS:
		return new(TASLock)
	case KindTATAS:
		return new(TATASLock)
	case KindTicket:
		return new(TicketLock)
	case KindMCS:
		return new(MCSLock)
	case KindCLH:
		return new(CLHLock)
	case KindHybrid:
		return new(HybridLock)
	case KindBlocking:
		return new(BlockingLock)
	default:
		return new(BlockingLock)
	}
}
