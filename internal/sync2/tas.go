package sync2

import "sync/atomic"

// TASLock is a plain test-and-set spinlock: every acquisition attempt
// performs an atomic exchange, generating coherence traffic even while the
// lock is held. It is the least scalable primitive in the paper's taxonomy
// and exists mainly as a baseline and as the BerkeleyDB archetype's
// `_db_tas_lock`.
type TASLock struct {
	statCounters
	state atomic.Uint32
}

// Lock acquires the lock, spinning with test-and-set until it succeeds.
func (l *TASLock) Lock() {
	if l.state.Swap(1) == 0 {
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	for l.state.Swap(1) != 0 {
		b.Spin()
	}
	l.recordAcquire(true, uint64(b.Iterations()))
}

// TryLock attempts a single test-and-set and reports whether it acquired
// the lock.
func (l *TASLock) TryLock() bool {
	if l.state.Swap(1) == 0 {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// Unlock releases the lock. It must only be called by the current holder.
func (l *TASLock) Unlock() {
	l.state.Store(0)
}

// Locked reports whether the lock is currently held (advisory only).
func (l *TASLock) Locked() bool { return l.state.Load() != 0 }

// TATASLock is a test-and-test-and-set spinlock: waiters spin on a read of
// the lock word and attempt the atomic exchange only when they observe it
// free. Cheap under low contention — which is exactly why the paper warns
// that it "fails miserably on high contention" (§4, BerkeleyDB; §6.1, the
// free-space manager experiment where it doubled single-thread speed but
// halved scalability).
type TATASLock struct {
	statCounters
	state atomic.Uint32
}

// Lock acquires the lock.
func (l *TATASLock) Lock() {
	// Fast path: uncontended CAS.
	if l.state.CompareAndSwap(0, 1) {
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	for {
		// Test: spin on a plain load until the lock looks free.
		for l.state.Load() != 0 {
			b.Spin()
		}
		// Test-and-set: race to grab it.
		if l.state.CompareAndSwap(0, 1) {
			l.recordAcquire(true, uint64(b.Iterations()))
			return
		}
		b.Spin()
	}
}

// TryLock attempts to acquire the lock without spinning.
func (l *TATASLock) TryLock() bool {
	if l.state.Load() == 0 && l.state.CompareAndSwap(0, 1) {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// Unlock releases the lock. It must only be called by the current holder.
func (l *TATASLock) Unlock() {
	l.state.Store(0)
}

// Locked reports whether the lock is currently held (advisory only).
func (l *TATASLock) Locked() bool { return l.state.Load() != 0 }

var (
	_ Locker = (*TASLock)(nil)
	_ Locker = (*TATASLock)(nil)
)
