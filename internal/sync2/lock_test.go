package sync2

import (
	"runtime"
	"sync"
	"testing"
)

// exerciseMutex hammers a Locker with g goroutines incrementing a shared
// counter n times each and verifies mutual exclusion.
func exerciseMutex(t *testing.T, l Locker, g, n int) {
	t.Helper()
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < n; j++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != g*n {
		t.Fatalf("counter = %d, want %d", counter, g*n)
	}
	st := l.Stats()
	if st.Acquisitions < uint64(g*n) {
		t.Fatalf("acquisitions = %d, want >= %d", st.Acquisitions, g*n)
	}
}

func TestMutualExclusion(t *testing.T) {
	kinds := []Kind{KindTAS, KindTATAS, KindTicket, KindMCS, KindCLH, KindHybrid, KindBlocking}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			exerciseMutex(t, New(k), 8, 2000)
		})
	}
}

func TestTryLock(t *testing.T) {
	for _, k := range []Kind{KindTAS, KindTATAS, KindTicket, KindMCS, KindCLH, KindHybrid, KindBlocking} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			l := New(k)
			if !l.TryLock() {
				t.Fatal("TryLock on free lock failed")
			}
			if l.TryLock() {
				t.Fatal("TryLock on held lock succeeded")
			}
			l.Unlock()
			if !l.TryLock() {
				t.Fatal("TryLock after Unlock failed")
			}
			l.Unlock()
		})
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindTAS: "tas", KindTATAS: "tatas", KindTicket: "ticket",
		KindMCS: "mcs", KindCLH: "clh", KindHybrid: "hybrid", KindBlocking: "blocking",
		Kind(99): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), s)
		}
	}
}

func TestMCSFIFOHandoff(t *testing.T) {
	// A held MCS lock must hand off to a queued waiter on Unlock.
	var l MCSLock
	l.Lock()
	acquired := make(chan struct{})
	go func() {
		l.Lock()
		close(acquired)
		l.Unlock()
	}()
	// Give the waiter time to enqueue.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	select {
	case <-acquired:
		t.Fatal("waiter acquired lock while held")
	default:
	}
	l.Unlock()
	<-acquired
}

func TestTicketLockFairnessCounter(t *testing.T) {
	var l TicketLock
	l.Lock()
	l.Unlock()
	l.Lock()
	l.Unlock()
	st := l.Stats()
	if st.Acquisitions != 2 {
		t.Fatalf("acquisitions = %d, want 2", st.Acquisitions)
	}
}

func TestStatsContention(t *testing.T) {
	var l TATASLock
	l.Lock()
	done := make(chan struct{})
	go func() {
		l.Lock() // must contend
		l.Unlock()
		close(done)
	}()
	for i := 0; i < 200; i++ {
		runtime.Gosched()
	}
	l.Unlock()
	<-done
	st := l.Stats()
	if st.Contended == 0 {
		t.Error("expected at least one contended acquisition")
	}
	if r := st.ContentionRatio(); r <= 0 || r > 1 {
		t.Errorf("contention ratio = %v, want (0,1]", r)
	}
	if (Stats{}).ContentionRatio() != 0 {
		t.Error("zero stats should have ratio 0")
	}
}

func TestRWLatchSharedReaders(t *testing.T) {
	var l RWLatch
	l.LatchSH()
	l.LatchSH()
	if got := l.Readers(); got != 2 {
		t.Fatalf("Readers() = %d, want 2", got)
	}
	if l.TryLatchEX() {
		t.Fatal("TryLatchEX succeeded with readers present")
	}
	l.UnlatchSH()
	l.UnlatchSH()
	if !l.TryLatchEX() {
		t.Fatal("TryLatchEX failed on free latch")
	}
	if l.TryLatchSH() {
		t.Fatal("TryLatchSH succeeded with writer present")
	}
	l.UnlatchEX()
}

func TestRWLatchWriterExclusion(t *testing.T) {
	var l RWLatch
	var x, writers int
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.LatchEX()
				writers++
				if writers != 1 {
					panic("two writers inside latch")
				}
				x++
				writers--
				l.UnlatchEX()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.LatchSH()
				_ = x
				l.UnlatchSH()
			}
		}()
	}
	wg.Wait()
	if x != 2000 {
		t.Fatalf("x = %d, want 2000", x)
	}
}

func TestRWLatchUpgradeDowngrade(t *testing.T) {
	var l RWLatch
	l.LatchSH()
	if !l.TryUpgrade() {
		t.Fatal("TryUpgrade as sole reader failed")
	}
	if !l.HeldEX() {
		t.Fatal("latch not EX after upgrade")
	}
	l.Downgrade()
	if l.HeldEX() || l.Readers() != 1 {
		t.Fatalf("after downgrade: heldEX=%v readers=%d", l.HeldEX(), l.Readers())
	}
	// Upgrade must fail with two readers.
	l.LatchSH()
	if l.TryUpgrade() {
		t.Fatal("TryUpgrade succeeded with two readers")
	}
	l.UnlatchSH()
	l.UnlatchSH()
}

func TestRWLatchModeHelpers(t *testing.T) {
	var l RWLatch
	for _, m := range []LatchMode{LatchSH, LatchEX} {
		l.Latch(m)
		l.Unlatch(m)
		if !l.TryLatch(m) {
			t.Fatalf("TryLatch(%v) on free latch failed", m)
		}
		l.Unlatch(m)
	}
	if LatchSH.String() != "SH" || LatchEX.String() != "EX" || LatchNone.String() != "none" {
		t.Error("LatchMode.String mismatch")
	}
}

func TestRWLatchWriterPreference(t *testing.T) {
	var l RWLatch
	l.LatchSH()
	exDone := make(chan struct{})
	go func() {
		l.LatchEX() // waits, announcing intent
		l.UnlatchEX()
		close(exDone)
	}()
	// Wait for the writer to announce.
	for i := 0; i < 1000 && l.state.Load()&latchWaiterMask == 0; i++ {
		runtime.Gosched()
	}
	if l.state.Load()&latchWaiterMask == 0 {
		t.Skip("writer never announced; scheduler starvation")
	}
	if l.TryLatchSH() {
		t.Fatal("new reader admitted while writer waiting")
	}
	l.UnlatchSH()
	<-exDone
}

func TestTreiberStack(t *testing.T) {
	var s Stack
	if s.Pop() != nil {
		t.Fatal("Pop on empty stack != nil")
	}
	s.Push(NewStackNode(1))
	s.Push(NewStackNode(2))
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if v := s.Pop().Value(); v != 2 {
		t.Fatalf("Pop = %v, want 2 (LIFO)", v)
	}
	if v := s.Pop().Value(); v != 1 {
		t.Fatalf("Pop = %v, want 1", v)
	}
	if s.Pop() != nil {
		t.Fatal("Pop on drained stack != nil")
	}
}

func TestTreiberStackConcurrent(t *testing.T) {
	var s Stack
	const g, n = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				s.Push(NewStackNode(base*n + j))
			}
		}(i)
	}
	wg.Wait()
	seen := make(map[int]bool, g*n)
	var mu sync.Mutex
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				nd := s.Pop()
				if nd == nil {
					return
				}
				mu.Lock()
				v := nd.Value().(int)
				if seen[v] {
					t.Errorf("value %d popped twice", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != g*n {
		t.Fatalf("popped %d distinct values, want %d", len(seen), g*n)
	}
}

func TestPinCount(t *testing.T) {
	var p PinCount
	if p.PinIfPinned() {
		t.Fatal("PinIfPinned succeeded on zero count")
	}
	p.Pin()
	if !p.PinIfPinned() {
		t.Fatal("PinIfPinned failed on pinned page")
	}
	if p.Get() != 2 {
		t.Fatalf("Get = %d, want 2", p.Get())
	}
	p.Unpin()
	if p.Unpin() != 0 {
		t.Fatal("Unpin did not return to 0")
	}
	if !p.TryFreeze() {
		t.Fatal("TryFreeze on unpinned page failed")
	}
	if p.PinIfPinned() {
		t.Fatal("PinIfPinned succeeded on frozen page")
	}
	if p.TryFreeze() {
		t.Fatal("double TryFreeze succeeded")
	}
	p.Unfreeze()
	if p.Get() != 0 {
		t.Fatalf("Get after Unfreeze = %d, want 0", p.Get())
	}
}

func TestBackoff(t *testing.T) {
	var b Backoff
	for i := 0; i < 100; i++ {
		b.Spin()
	}
	if b.Iterations() != 100 {
		t.Fatalf("Iterations = %d, want 100", b.Iterations())
	}
	b.Reset()
	if b.Iterations() != 0 {
		t.Fatal("Reset did not clear iterations")
	}
}
