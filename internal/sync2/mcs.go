package sync2

import (
	"sync"
	"sync/atomic"
)

// mcsNode is a queue node in an MCS lock. Each waiter spins on its own
// node's ready flag, so under contention each thread busy-waits on a
// distinct cache line instead of hammering a shared lock word.
type mcsNode struct {
	next  atomic.Pointer[mcsNode]
	ready atomic.Bool
	_     [40]byte // pad to a cache line to avoid false sharing
}

var mcsNodePool = sync.Pool{New: func() any { return new(mcsNode) }}

// MCSLock is the queue-based spinlock of Mellor-Crummey & Scott, the
// primitive the paper reaches for when a critical section stays contended
// after cheaper locks fail (§6.1): FIFO, starvation-free, and each waiter
// spins locally.
//
// Because Go forbids passing the qnode through the public sync.Locker
// interface, MCSLock keeps the owner's node internally; Lock/Unlock pairs
// must come from the same conceptual owner, as with any mutex.
type MCSLock struct {
	statCounters
	tail  atomic.Pointer[mcsNode]
	owner *mcsNode // node of the current holder; guarded by the lock itself
}

// Lock acquires the lock, enqueueing behind any existing waiters.
func (l *MCSLock) Lock() {
	n := mcsNodePool.Get().(*mcsNode)
	n.next.Store(nil)
	n.ready.Store(false)

	pred := l.tail.Swap(n)
	if pred == nil {
		l.owner = n
		l.recordAcquire(false, 0)
		return
	}
	// Enqueue behind pred and spin on our own flag.
	pred.next.Store(n)
	var b Backoff
	for !n.ready.Load() {
		b.Spin()
	}
	l.owner = n
	l.recordAcquire(true, uint64(b.Iterations()))
}

// TryLock acquires the lock only if no one holds or waits for it.
func (l *MCSLock) TryLock() bool {
	n := mcsNodePool.Get().(*mcsNode)
	n.next.Store(nil)
	n.ready.Store(false)
	if l.tail.CompareAndSwap(nil, n) {
		l.owner = n
		l.recordAcquire(false, 0)
		return true
	}
	mcsNodePool.Put(n)
	return false
}

// Unlock releases the lock, handing it to the next queued waiter if any.
func (l *MCSLock) Unlock() {
	n := l.owner
	l.owner = nil
	next := n.next.Load()
	if next == nil {
		// No known successor: try to swing tail back to nil.
		if l.tail.CompareAndSwap(n, nil) {
			mcsNodePool.Put(n)
			return
		}
		// A successor is in the middle of enqueueing; wait for the link.
		var b Backoff
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			b.Spin()
		}
	}
	next.ready.Store(true)
	mcsNodePool.Put(n)
}

// TicketLock is a FIFO spinlock built from two counters. It shares MCS's
// fairness but all waiters spin on the shared now-serving word, making it a
// useful middle point in the primitive taxonomy.
type TicketLock struct {
	statCounters
	next    atomic.Uint64
	serving atomic.Uint64
}

// Lock takes a ticket and waits until it is served.
func (l *TicketLock) Lock() {
	t := l.next.Add(1) - 1
	if l.serving.Load() == t {
		l.recordAcquire(false, 0)
		return
	}
	var b Backoff
	for l.serving.Load() != t {
		b.Spin()
	}
	l.recordAcquire(true, uint64(b.Iterations()))
}

// TryLock acquires the lock only if it is free with no waiters.
func (l *TicketLock) TryLock() bool {
	s := l.serving.Load()
	if l.next.Load() != s {
		return false
	}
	if l.next.CompareAndSwap(s, s+1) {
		l.recordAcquire(false, 0)
		return true
	}
	return false
}

// Unlock releases the lock to the next ticket holder.
func (l *TicketLock) Unlock() {
	l.serving.Add(1)
}

var (
	_ Locker = (*MCSLock)(nil)
	_ Locker = (*TicketLock)(nil)
)
