package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// Store is the durable backing of the log: an append-mostly byte store
// with an explicit durability boundary, so tests can crash the system and
// observe exactly the flushed prefix surviving.
type Store interface {
	// WriteAt stores b at off in the volatile layer.
	WriteAt(b []byte, off int64) error
	// Flush makes everything below upTo durable.
	Flush(upTo int64) error
	// ReadAt reads from the store (volatile layer included, as a live
	// system reading its own tail would). Returns io.EOF semantics like
	// io.ReaderAt.
	ReadAt(b []byte, off int64) (int, error)
	// DurableSize returns the durability boundary.
	DurableSize() int64
	// Size returns the volatile high-water mark.
	Size() int64
	// Horizon returns the conservative durable floor that is provable
	// after a crash: every byte below it was certainly made durable (by
	// the last checkpoint's master record, a sealed segment header, or —
	// for memory stores — exact durability bookkeeping). A record that
	// fails its CRC below Horizon is corruption; at or above it, an
	// expected torn tail.
	Horizon() LSN
	// Truncate discards everything at and beyond size, clipping a torn
	// tail so subsequent inserts extend a fully valid log.
	Truncate(size int64) error
	// SetMaster durably records the master LSN (last completed checkpoint).
	SetMaster(l LSN) error
	// Master returns the master LSN.
	Master() (LSN, error)
	// Crash drops all volatile state, simulating power loss.
	Crash()
	// Close releases resources.
	Close() error
}

// MemStore is a memory-backed log store with an explicit durable boundary.
type MemStore struct {
	mu      sync.RWMutex
	buf     []byte
	durable int64
	master  LSN
}

// NewMemStore returns an empty memory log store with the log preamble in
// place.
func NewMemStore() *MemStore {
	s := &MemStore{}
	s.buf = append(s.buf, logMagic[:]...)
	s.durable = logHeaderSize
	return s
}

// WriteAt implements Store.
func (s *MemStore) WriteAt(b []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := off + int64(len(b))
	for int64(len(s.buf)) < end {
		s.buf = append(s.buf, 0)
	}
	copy(s.buf[off:end], b)
	return nil
}

// Flush implements Store.
func (s *MemStore) Flush(upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if upTo > int64(len(s.buf)) {
		upTo = int64(len(s.buf))
	}
	if upTo > s.durable {
		s.durable = upTo
	}
	return nil
}

// ReadAt implements Store.
func (s *MemStore) ReadAt(b []byte, off int64) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off >= int64(len(s.buf)) {
		return 0, io.EOF
	}
	n := copy(b, s.buf[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

// DurableSize implements Store.
func (s *MemStore) DurableSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.durable
}

// Size implements Store.
func (s *MemStore) Size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(len(s.buf))
}

// SetMaster implements Store.
func (s *MemStore) SetMaster(l LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.master = l
	return nil
}

// Master implements Store.
func (s *MemStore) Master() (LSN, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.master, nil
}

// Horizon implements Store. A memory store tracks durability exactly, so
// the horizon is the durable boundary itself.
func (s *MemStore) Horizon() LSN {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return LSN(s.durable)
}

// Truncate implements Store.
func (s *MemStore) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < logHeaderSize {
		return fmt.Errorf("%w: truncate to %d inside preamble", ErrInvalidLSN, size)
	}
	if size < int64(len(s.buf)) {
		s.buf = s.buf[:size]
	}
	if s.durable > size {
		s.durable = size
	}
	return nil
}

// Crash implements Store: everything beyond the durable boundary vanishes.
func (s *MemStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = s.buf[:s.durable]
}

// CrashTorn simulates power loss mid-write: up to keep bytes beyond the
// durable boundary survive — typically the prefix of a record the OS had
// pushed to disk before the cord was pulled — leaving a torn tail for
// recovery to clip.
func (s *MemStore) CrashTorn(keep int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	end := s.durable + keep
	if end > int64(len(s.buf)) {
		end = int64(len(s.buf))
	}
	s.buf = s.buf[:end]
}

// Clone returns an independent deep copy (for recovery equivalence tests).
func (s *MemStore) Clone() *MemStore {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return &MemStore{
		buf:     append([]byte(nil), s.buf...),
		durable: s.durable,
		master:  s.master,
	}
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// FileStore is a file-backed log store. The durable boundary advances on
// fsync; Crash truncates to it (approximating what a real crash preserves).
type FileStore struct {
	mu      sync.Mutex
	f       *os.File
	master  *os.File
	durable int64
	size    int64
	// synced is the prefix proven durable by a Sync this process issued.
	// Unlike durable — which reopen optimistically seeds with the file
	// size — it never includes bytes merely found on disk, so it is safe
	// to fold into Horizon.
	synced int64
}

// OpenFileStore opens (or creates) a file-backed log at path; the master
// LSN lives in path+".master".
func OpenFileStore(path string) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	m, err := os.OpenFile(path+".master", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		f.Close()
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		m.Close()
		return nil, err
	}
	s := &FileStore{f: f, master: m, durable: st.Size(), size: st.Size()}
	if st.Size() == 0 {
		if _, err := f.WriteAt(logMagic[:], 0); err != nil {
			f.Close()
			m.Close()
			return nil, err
		}
		s.size = logHeaderSize
		s.durable = logHeaderSize
	}
	return s, nil
}

// WriteAt implements Store.
func (s *FileStore) WriteAt(b []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.WriteAt(b, off); err != nil {
		return err
	}
	if end := off + int64(len(b)); end > s.size {
		s.size = end
	}
	return nil
}

// Flush implements Store.
func (s *FileStore) Flush(upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		return err
	}
	if upTo > s.size {
		upTo = s.size
	}
	if upTo > s.durable {
		s.durable = upTo
	}
	if upTo > s.synced {
		s.synced = upTo
	}
	return nil
}

// ReadAt implements Store.
func (s *FileStore) ReadAt(b []byte, off int64) (int, error) {
	return s.f.ReadAt(b, off)
}

// DurableSize implements Store.
func (s *FileStore) DurableSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Size implements Store.
func (s *FileStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// SetMaster implements Store.
func (s *FileStore) SetMaster(l LSN) error {
	var b [8]byte
	putLSN(b[:], l)
	if _, err := s.master.WriteAt(b[:], 0); err != nil {
		return err
	}
	return s.master.Sync()
}

// Master implements Store.
func (s *FileStore) Master() (LSN, error) {
	var b [8]byte
	n, err := s.master.ReadAt(b[:], 0)
	if err != nil && n == 0 {
		return NullLSN, nil // fresh master file
	}
	return getLSN(b[:]), nil
}

// Horizon implements Store. After reopening a plain log file nothing
// records how much of it was fsynced, so the only provable floor is the
// master LSN: the checkpoint protocol flushes the log through the
// checkpoint before durably writing master, so every byte below it was
// synced. Within one process lifetime the tracked durable boundary can be
// stronger; take the max.
func (s *FileStore) Horizon() LSN {
	m, err := s.Master()
	if err != nil {
		m = NullLSN
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h := int64(m)
	if s.synced > h {
		h = s.synced
	}
	if h < logHeaderSize {
		h = logHeaderSize
	}
	return LSN(h)
}

// Truncate implements Store.
func (s *FileStore) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < logHeaderSize {
		return fmt.Errorf("%w: truncate to %d inside preamble", ErrInvalidLSN, size)
	}
	if size < s.size {
		if err := s.f.Truncate(size); err != nil {
			return err
		}
		s.size = size
	}
	if s.durable > size {
		s.durable = size
	}
	if s.synced > size {
		s.synced = size
	}
	return nil
}

// Crash implements Store: truncate the file to the durable boundary.
func (s *FileStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.f.Truncate(s.durable)
	s.size = s.durable
}

// Close implements Store.
func (s *FileStore) Close() error {
	err1 := s.f.Close()
	err2 := s.master.Close()
	return errors.Join(err1, err2)
}

func putLSN(b []byte, l LSN) {
	for i := 0; i < 8; i++ {
		b[i] = byte(l >> (8 * i))
	}
}

func getLSN(b []byte) LSN {
	var l LSN
	for i := 0; i < 8; i++ {
		l |= LSN(b[i]) << (8 * i)
	}
	return l
}

var (
	_ Store = (*MemStore)(nil)
	_ Store = (*FileStore)(nil)
)
