package wal

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestQuickRingCopyRoundTrip property-tests the circular-buffer copy used
// by the decoupled and consolidated logs: any record written at any offset
// (including wrap-around) must read back intact.
func TestQuickRingCopyRoundTrip(t *testing.T) {
	ring := make([]byte, 256)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 || len(data) > len(ring) {
			return true
		}
		copyToRing(ring, LSN(off), data)
		// Read back with the same modular arithmetic.
		got := make([]byte, len(data))
		pos := int(uint64(off) % uint64(len(ring)))
		n := copy(got, ring[pos:])
		if n < len(data) {
			copy(got[n:], ring)
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestRingWrapExactBoundary pins the exact-wrap case (record ends at the
// ring's end) and the full-wrap case (record starts at the last byte).
func TestRingWrapExactBoundary(t *testing.T) {
	ring := make([]byte, 64)
	data := []byte("0123456789")
	// Ends exactly at the boundary.
	copyToRing(ring, LSN(64-10), data)
	if !bytes.Equal(ring[54:64], data) {
		t.Fatal("exact-boundary write corrupted")
	}
	// Starts at the last byte: 1 byte at the end, 9 at the start.
	copyToRing(ring, 63, data)
	if ring[63] != '0' || !bytes.Equal(ring[0:9], data[1:]) {
		t.Fatal("wrap-around write corrupted")
	}
}

// TestInsertWaitsWhenBufferFull forces the decoupled log's buffer-full
// path: a tiny ring with many inserts must record insert waits yet lose
// nothing.
func TestInsertWaitsWhenBufferFull(t *testing.T) {
	store := NewMemStore()
	m := New(store, Options{Design: DesignDecoupled, BufferSize: 2048})
	payload := make([]byte, 128)
	for i := 0; i < 200; i++ {
		if _, err := m.Insert(&Record{Type: RecUpdate, TxID: uint64(i), Redo: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(m.CurLSN()); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Inserts != 200 {
		t.Fatalf("inserts = %d", st.Inserts)
	}
	if st.InsertWaits == 0 {
		t.Error("tiny buffer never filled — buffer-full path untested")
	}
	// All records intact.
	sc := NewScanner(store, NullLSN)
	count := 0
	for {
		rec, err := sc.Next()
		if err != nil {
			break
		}
		if rec.TxID != uint64(count) {
			t.Fatalf("record %d has txid %d", count, rec.TxID)
		}
		count++
	}
	if count != 200 {
		t.Fatalf("scanned %d records, want 200", count)
	}
	m.Close()
}
