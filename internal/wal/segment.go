package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// SegmentStore rotates the log across fixed-size segments while keeping
// the flat LSN address space every manager and recovery path already
// speaks: segment k holds logical bytes [k*segBytes, (k+1)*segBytes), at
// physical offset segHeaderSize past its header. Because it implements
// Store, all three log-manager designs get segmentation for free.
//
// Durability discipline:
//
//   - When Flush makes a segment fully durable it is *sealed*: its
//     successor segment is created and synced first, then the sealed flag
//     is written into the header and synced. "Sealed ⇒ successor exists
//     on disk" therefore holds across any crash, which is what lets
//     reopen distinguish a legitimately short log from one whose tail
//     segment was deleted.
//   - Horizon() is max(master LSN, end of the sealed prefix): everything
//     below is provably durable, so a CRC failure there is corruption,
//     not a torn tail.
//   - ArchiveBelow removes sealed segments wholly below the caller's
//     safe point (checkpoint redo floor and oldest active-transaction
//     first LSN), bounding both disk usage and restart scan length.
type SegmentStore struct {
	mu       sync.Mutex
	be       segBackend
	segBytes int64
	segs     map[uint64]*logSegment
	first    uint64 // lowest retained segment index
	last     uint64 // highest segment index
	size     int64  // logical volatile high-water mark
	durable  int64  // logical durability boundary
	sealFrom uint64 // lowest segment that might still need sealing
	sealed   int64  // logical end of the contiguous sealed prefix
	master   LSN    // cached copy of the backend's master LSN

	tornKeep   int64 // bytes past durable the next Crash preserves
	failFlush  int64 // <0: disabled; else successful flushes remaining
	archiveCnt uint64
}

// logSegment is one open segment.
type logSegment struct {
	f      segFile
	base   int64
	sealed bool
}

// Archiver is implemented by stores that can discard old log segments.
// The engine type-asserts for it at checkpoint time.
type Archiver interface {
	// ArchiveBelow removes sealed segments wholly below lsn and returns
	// how many were removed.
	ArchiveBelow(lsn LSN) (int, error)
}

// ErrInjectedFlush is returned by Flush after FailFlushes arms fsync
// failure injection.
var ErrInjectedFlush = errors.New("wal: injected flush failure")

// Segment header layout (48 bytes at the front of every segment file):
//
//	[0:8)   magic "SHORESEG"
//	[8:12)  u32 format version
//	[12:16) u32 flags (bit 0: sealed)
//	[16:24) u64 segment index
//	[24:32) u64 base LSN (index * segment size)
//	[32:40) u64 sealed end LSN (0 while the segment is active)
//	[40:44) u32 crc32 over bytes [0:40)
//	[44:48) padding
const (
	segHeaderSize = 48
	segVersion    = 1
	segFlagSealed = 1 << 0
	// MinSegmentBytes floors the configurable segment size.
	MinSegmentBytes = 4096
	// DefaultSegmentBytes is a sensible production segment size.
	DefaultSegmentBytes = 64 << 20
)

var segMagic = [8]byte{'S', 'H', 'O', 'R', 'E', 'S', 'E', 'G'}

func encodeSegHeader(idx uint64, base int64, sealed bool, end int64) [segHeaderSize]byte {
	var b [segHeaderSize]byte
	copy(b[0:8], segMagic[:])
	binary.LittleEndian.PutUint32(b[8:], segVersion)
	var flags uint32
	if sealed {
		flags |= segFlagSealed
	}
	binary.LittleEndian.PutUint32(b[12:], flags)
	binary.LittleEndian.PutUint64(b[16:], idx)
	binary.LittleEndian.PutUint64(b[24:], uint64(base))
	binary.LittleEndian.PutUint64(b[32:], uint64(end))
	binary.LittleEndian.PutUint32(b[40:], crc32.ChecksumIEEE(b[:40]))
	return b
}

func decodeSegHeader(b []byte) (idx uint64, base int64, sealed bool, end int64, err error) {
	if len(b) < segHeaderSize {
		return 0, 0, false, 0, fmt.Errorf("%w: segment header truncated", ErrCorrupt)
	}
	if [8]byte(b[0:8]) != segMagic {
		return 0, 0, false, 0, fmt.Errorf("%w: bad segment magic", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(b[:40]) != binary.LittleEndian.Uint32(b[40:]) {
		return 0, 0, false, 0, fmt.Errorf("%w: segment header crc mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != segVersion {
		return 0, 0, false, 0, fmt.Errorf("%w: segment version %d (want %d)", ErrCorrupt, v, segVersion)
	}
	flags := binary.LittleEndian.Uint32(b[12:])
	idx = binary.LittleEndian.Uint64(b[16:])
	base = int64(binary.LittleEndian.Uint64(b[24:]))
	end = int64(binary.LittleEndian.Uint64(b[32:]))
	return idx, base, flags&segFlagSealed != 0, end, nil
}

// NewMemSegmentStore returns an empty memory-backed segmented log store.
func NewMemSegmentStore(segBytes int64) *SegmentStore {
	s, err := newSegmentStore(newMemSegBackend(), segBytes)
	if err != nil {
		// A fresh memory backend cannot fail validation.
		panic(err)
	}
	return s
}

// OpenSegmentStore opens (or creates) a file-backed segmented log in dir.
// Reopening validates every segment header and the chain structure; any
// inconsistency below the durable horizon refuses with ErrCorrupt.
func OpenSegmentStore(dir string, segBytes int64) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	be, err := newFileSegBackend(dir)
	if err != nil {
		return nil, err
	}
	s, err := newSegmentStore(be, segBytes)
	if err != nil {
		be.close()
		return nil, err
	}
	return s, nil
}

func newSegmentStore(be segBackend, segBytes int64) (*SegmentStore, error) {
	if segBytes < MinSegmentBytes {
		segBytes = MinSegmentBytes
	}
	s := &SegmentStore{
		be:        be,
		segBytes:  segBytes,
		segs:      make(map[uint64]*logSegment),
		failFlush: -1,
	}
	idxs, err := be.list()
	if err != nil {
		return nil, err
	}
	if len(idxs) == 0 {
		if _, err := s.createLocked(0); err != nil {
			return nil, err
		}
		if err := s.writeAtLocked(logMagic[:], 0); err != nil {
			return nil, err
		}
		if err := s.segs[0].f.sync(); err != nil {
			return nil, err
		}
		s.durable = logHeaderSize
		return s, nil
	}
	if err := s.loadLocked(idxs); err != nil {
		return nil, err
	}
	return s, nil
}

// loadLocked opens and validates an existing segment chain.
func (s *SegmentStore) loadLocked(idxs []uint64) error {
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	s.first, s.last = idxs[0], idxs[len(idxs)-1]
	for i, k := range idxs {
		if k != s.first+uint64(i) {
			return fmt.Errorf("%w: log segment %d missing (have %v)", ErrCorrupt, s.first+uint64(i), idxs)
		}
	}
	// A segment file too short to hold a header can only be the one being
	// created when the crash hit: its creation was never made durable, so
	// nothing in it (or after it) was either. Drop it. Anywhere else it is
	// corruption, caught by the contiguity and seal checks below.
	for i := len(idxs) - 1; i >= 0; i-- {
		k := idxs[i]
		f, err := s.be.open(k)
		if err != nil {
			return err
		}
		if f.size() < segHeaderSize && k == s.last && k > s.first {
			f.close()
			if err := s.be.remove(k); err != nil {
				return err
			}
			s.last--
			idxs = idxs[:i]
			continue
		}
		hdr := make([]byte, segHeaderSize)
		if _, err := f.readAt(hdr, 0); err != nil {
			f.close()
			return fmt.Errorf("%w: segment %d header unreadable: %v", ErrCorrupt, k, err)
		}
		idx, base, sealed, _, err := decodeSegHeader(hdr)
		if err != nil {
			f.close()
			return fmt.Errorf("segment %d: %w", k, err)
		}
		if idx != k || base != int64(k)*s.segBytes {
			f.close()
			return fmt.Errorf("%w: segment %d header claims index %d base %d (segment size mismatch?)",
				ErrCorrupt, k, idx, base)
		}
		s.segs[k] = &logSegment{f: f, base: base, sealed: sealed}
	}
	// Seals happen strictly in order, and a sealed segment always has a
	// durable successor. Violations mean the tail (or a middle piece) of
	// the log was lost.
	s.sealFrom = s.first
	for k := s.first; k <= s.last; k++ {
		seg := s.segs[k]
		if seg.sealed {
			if k != s.sealFrom {
				return fmt.Errorf("%w: segment %d sealed after unsealed segment %d", ErrCorrupt, k, s.sealFrom)
			}
			s.sealFrom = k + 1
			s.sealed = seg.base + s.segBytes
		}
	}
	if s.segs[s.last].sealed {
		return fmt.Errorf("%w: tail segment %d is sealed — later log segment(s) are missing", ErrCorrupt, s.last)
	}
	tail := s.segs[s.last]
	s.size = tail.base + (tail.f.size() - segHeaderSize)
	m, err := s.be.master()
	if err != nil {
		return err
	}
	s.master = m
	if int64(m) > s.size {
		return fmt.Errorf("%w: master checkpoint %v beyond log end %d — log tail missing", ErrCorrupt, m, s.size)
	}
	if first := s.segs[s.first]; first.base > 0 && int64(m) < first.base {
		return fmt.Errorf("%w: master checkpoint %v below first retained segment (base %d)", ErrCorrupt, m, first.base)
	}
	if s.first == 0 {
		var pre [logHeaderSize]byte
		if _, err := s.readAtLocked(pre[:], 0); err != nil || pre != logMagic {
			return fmt.Errorf("%w: bad log preamble", ErrCorrupt)
		}
	}
	// Like a reopened flat file, optimistically treat the whole extent as
	// durable; CheckTail + Truncate clip whatever fails validation above
	// the horizon.
	s.durable = s.size
	return nil
}

// createLocked creates segment k (header written and synced immediately,
// so a crash can never leave a durable successor without its own header).
func (s *SegmentStore) createLocked(k uint64) (*logSegment, error) {
	f, err := s.be.create(k)
	if err != nil {
		return nil, err
	}
	base := int64(k) * s.segBytes
	hdr := encodeSegHeader(k, base, false, 0)
	if err := f.writeAt(hdr[:], 0); err != nil {
		f.close()
		return nil, err
	}
	if err := f.sync(); err != nil {
		f.close()
		return nil, err
	}
	seg := &logSegment{f: f, base: base}
	if len(s.segs) == 0 {
		s.first, s.last = k, k
	} else if k > s.last {
		s.last = k
	}
	s.segs[k] = seg
	return seg, nil
}

// WriteAt implements Store, chunking across segment boundaries and
// creating tail segments on demand.
func (s *SegmentStore) WriteAt(b []byte, off int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeAtLocked(b, off)
}

func (s *SegmentStore) writeAtLocked(b []byte, off int64) error {
	for len(b) > 0 {
		k := uint64(off / s.segBytes)
		if k < s.first {
			return fmt.Errorf("%w: write at %d below archived log boundary", ErrInvalidLSN, off)
		}
		seg := s.segs[k]
		for seg == nil {
			ns, err := s.createLocked(s.last + 1)
			if err != nil {
				return err
			}
			if ns.base == int64(k)*s.segBytes {
				seg = ns
			}
		}
		n := int64(len(b))
		if room := seg.base + s.segBytes - off; n > room {
			n = room
		}
		if err := seg.f.writeAt(b[:n], segHeaderSize+off-seg.base); err != nil {
			return err
		}
		off += n
		b = b[n:]
		if off > s.size {
			s.size = off
		}
	}
	return nil
}

// ReadAt implements Store. Reads past the end of written data (or into a
// crash-created hole) return io.EOF like io.ReaderAt.
func (s *SegmentStore) ReadAt(b []byte, off int64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readAtLocked(b, off)
}

func (s *SegmentStore) readAtLocked(b []byte, off int64) (int, error) {
	total := 0
	for len(b) > 0 {
		k := uint64(off / s.segBytes)
		if k < s.first {
			return total, fmt.Errorf("%w: read at %d below archived log boundary", ErrInvalidLSN, off)
		}
		seg := s.segs[k]
		if seg == nil {
			return total, io.EOF
		}
		n := int64(len(b))
		if room := seg.base + s.segBytes - off; n > room {
			n = room
		}
		got, err := seg.f.readAt(b[:n], segHeaderSize+off-seg.base)
		total += got
		if err != nil {
			return total, err
		}
		if int64(got) < n {
			return total, io.EOF
		}
		off += n
		b = b[n:]
	}
	return total, nil
}

// Flush implements Store: sync the segments covering (durable, upTo],
// advance the boundary, and seal any segment that became fully durable.
func (s *SegmentStore) Flush(upTo int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failFlush >= 0 {
		if s.failFlush == 0 {
			return ErrInjectedFlush
		}
		s.failFlush--
	}
	if upTo > s.size {
		upTo = s.size
	}
	if upTo > s.durable {
		for k := uint64(s.durable / s.segBytes); k <= uint64((upTo-1)/s.segBytes); k++ {
			if seg := s.segs[k]; seg != nil {
				if err := seg.f.sync(); err != nil {
					return err
				}
			}
		}
		s.durable = upTo
	}
	for {
		seg := s.segs[s.sealFrom]
		if seg == nil || seg.sealed {
			break
		}
		end := seg.base + s.segBytes
		if end > s.durable {
			break
		}
		if err := s.sealLocked(s.sealFrom, seg); err != nil {
			return err
		}
		s.sealFrom++
	}
	return nil
}

// sealLocked marks a fully-durable segment sealed. The successor is
// created (and its header synced) first so the sealed⇒successor invariant
// holds even if the crash lands between the two syncs.
func (s *SegmentStore) sealLocked(k uint64, seg *logSegment) error {
	if s.segs[k+1] == nil {
		if _, err := s.createLocked(k + 1); err != nil {
			return err
		}
	}
	end := seg.base + s.segBytes
	hdr := encodeSegHeader(k, seg.base, true, end)
	if err := seg.f.writeAt(hdr[:], 0); err != nil {
		return err
	}
	if err := seg.f.sync(); err != nil {
		return err
	}
	seg.sealed = true
	if end > s.sealed {
		s.sealed = end
	}
	return nil
}

// DurableSize implements Store.
func (s *SegmentStore) DurableSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durable
}

// Size implements Store.
func (s *SegmentStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Horizon implements Store: the durable floor provable after a crash is
// whatever the master checkpoint covers plus every sealed segment.
func (s *SegmentStore) Horizon() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := int64(s.master)
	if s.sealed > h {
		h = s.sealed
	}
	if h < logHeaderSize {
		h = logHeaderSize
	}
	return LSN(h)
}

// Truncate implements Store: clip a torn tail, dropping any segments that
// lie entirely beyond the new end.
func (s *SegmentStore) Truncate(size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if size < logHeaderSize {
		return fmt.Errorf("%w: truncate to %d inside preamble", ErrInvalidLSN, size)
	}
	if size < s.sealed {
		return fmt.Errorf("%w: refusing to truncate to %d below sealed boundary %d", ErrCorrupt, size, s.sealed)
	}
	for s.last > s.first && s.segs[s.last].base >= size {
		if s.segs[s.last-1].sealed {
			break // sealed predecessor keeps its (now empty) successor
		}
		seg := s.segs[s.last]
		seg.f.close()
		if err := s.be.remove(s.last); err != nil {
			return err
		}
		delete(s.segs, s.last)
		s.last--
	}
	tail := s.segs[s.last]
	phys := segHeaderSize + size - tail.base
	if phys < segHeaderSize {
		phys = segHeaderSize
	}
	if err := tail.f.truncate(phys); err != nil {
		return err
	}
	if size < s.size {
		s.size = size
	}
	if s.durable > size {
		s.durable = size
	}
	return nil
}

// SetMaster implements Store.
func (s *SegmentStore) SetMaster(l LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.be.setMaster(l); err != nil {
		return err
	}
	s.master = l
	return nil
}

// Master implements Store.
func (s *SegmentStore) Master() (LSN, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.master, nil
}

// Crash implements Store: everything beyond the durable boundary vanishes
// — except, after ArmTornCrash, a prefix of the in-flight bytes, modeling
// a write the disk had partially retired when power failed. Segment
// headers survive (they are synced at creation and seal).
func (s *SegmentStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	target := s.durable + s.tornKeep
	s.tornKeep = 0
	if target > s.size {
		target = s.size
	}
	for k := s.first; k <= s.last; k++ {
		seg := s.segs[k]
		phys := segHeaderSize + target - seg.base
		if phys < segHeaderSize {
			phys = segHeaderSize
		}
		if phys > segHeaderSize+s.segBytes {
			continue
		}
		_ = seg.f.truncate(phys)
	}
	s.size = target
}

// ArmTornCrash makes the next Crash preserve up to keep bytes beyond the
// durable boundary — a torn tail for recovery to detect and clip.
func (s *SegmentStore) ArmTornCrash(keep int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tornKeep = keep
}

// FailFlushes arms fsync-failure injection: after n more successful
// flushes every Flush returns ErrInjectedFlush. n < 0 disarms.
func (s *SegmentStore) FailFlushes(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failFlush = n
}

// ArchiveBelow implements Archiver.
func (s *SegmentStore) ArchiveBelow(lsn LSN) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for s.first < s.last {
		seg := s.segs[s.first]
		if !seg.sealed || seg.base+s.segBytes > int64(lsn) {
			break
		}
		seg.f.close()
		if err := s.be.remove(s.first); err != nil {
			return n, err
		}
		delete(s.segs, s.first)
		s.first++
		n++
		s.archiveCnt++
	}
	return n, nil
}

// SegmentBytes returns the configured segment size.
func (s *SegmentStore) SegmentBytes() int64 { return s.segBytes }

// Segments returns the retained segment index range [first, last].
func (s *SegmentStore) Segments() (first, last uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.first, s.last
}

// Archived returns how many segments have been archived over the store's
// lifetime.
func (s *SegmentStore) Archived() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.archiveCnt
}

// Clone deep-copies a memory-backed store (for recovery equivalence
// tests); it panics on a file-backed one.
func (s *SegmentStore) Clone() *SegmentStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	mb, ok := s.be.(*memSegBackend)
	if !ok {
		panic("wal: Clone requires a memory-backed SegmentStore")
	}
	nbe := mb.clone()
	ns := &SegmentStore{
		be:        nbe,
		segBytes:  s.segBytes,
		segs:      make(map[uint64]*logSegment, len(s.segs)),
		first:     s.first,
		last:      s.last,
		size:      s.size,
		durable:   s.durable,
		sealFrom:  s.sealFrom,
		sealed:    s.sealed,
		master:    s.master,
		failFlush: -1,
	}
	for k, seg := range s.segs {
		ns.segs[k] = &logSegment{f: nbe.files[k], base: seg.base, sealed: seg.sealed}
	}
	return ns
}

// Close implements Store.
func (s *SegmentStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for _, seg := range s.segs {
		err = errors.Join(err, seg.f.close())
	}
	return errors.Join(err, s.be.close())
}

// segBackend abstracts where segments live (memory or a directory).
type segBackend interface {
	list() ([]uint64, error)
	create(idx uint64) (segFile, error)
	open(idx uint64) (segFile, error)
	remove(idx uint64) error
	setMaster(l LSN) error
	master() (LSN, error)
	close() error
}

// segFile is one segment's backing file.
type segFile interface {
	writeAt(b []byte, off int64) error
	readAt(b []byte, off int64) (int, error)
	sync() error
	truncate(n int64) error
	size() int64
	close() error
}

// --- memory backend ---

type memSegBackend struct {
	files     map[uint64]*memSegFile
	masterLSN LSN
}

func newMemSegBackend() *memSegBackend {
	return &memSegBackend{files: make(map[uint64]*memSegFile)}
}

func (b *memSegBackend) list() ([]uint64, error) {
	var idxs []uint64
	for k := range b.files {
		idxs = append(idxs, k)
	}
	return idxs, nil
}

func (b *memSegBackend) create(idx uint64) (segFile, error) {
	f := &memSegFile{}
	b.files[idx] = f
	return f, nil
}

func (b *memSegBackend) open(idx uint64) (segFile, error) {
	f, ok := b.files[idx]
	if !ok {
		return nil, fmt.Errorf("wal: segment %d not found", idx)
	}
	return f, nil
}

func (b *memSegBackend) remove(idx uint64) error {
	delete(b.files, idx)
	return nil
}

func (b *memSegBackend) setMaster(l LSN) error { b.masterLSN = l; return nil }
func (b *memSegBackend) master() (LSN, error)  { return b.masterLSN, nil }
func (b *memSegBackend) close() error          { return nil }

func (b *memSegBackend) clone() *memSegBackend {
	nb := &memSegBackend{files: make(map[uint64]*memSegFile, len(b.files)), masterLSN: b.masterLSN}
	for k, f := range b.files {
		nb.files[k] = &memSegFile{data: append([]byte(nil), f.data...)}
	}
	return nb
}

type memSegFile struct{ data []byte }

func (f *memSegFile) writeAt(b []byte, off int64) error {
	end := off + int64(len(b))
	for int64(len(f.data)) < end {
		f.data = append(f.data, 0)
	}
	copy(f.data[off:end], b)
	return nil
}

func (f *memSegFile) readAt(b []byte, off int64) (int, error) {
	if off >= int64(len(f.data)) {
		return 0, io.EOF
	}
	n := copy(b, f.data[off:])
	if n < len(b) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memSegFile) sync() error { return nil }

func (f *memSegFile) truncate(n int64) error {
	if n < int64(len(f.data)) {
		f.data = f.data[:n]
	}
	return nil
}

func (f *memSegFile) size() int64  { return int64(len(f.data)) }
func (f *memSegFile) close() error { return nil }

// --- file backend ---

type fileSegBackend struct {
	dir string
	mf  *os.File // master LSN side file
}

func newFileSegBackend(dir string) (*fileSegBackend, error) {
	m, err := os.OpenFile(filepath.Join(dir, "MASTER"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileSegBackend{dir: dir, mf: m}, nil
}

func segFileName(idx uint64) string { return fmt.Sprintf("%012d.seg", idx) }

func (b *fileSegBackend) list() ([]uint64, error) {
	ents, err := os.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var idxs []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasSuffix(name, ".seg") {
			continue
		}
		idx, err := strconv.ParseUint(strings.TrimSuffix(name, ".seg"), 10, 64)
		if err != nil {
			continue
		}
		idxs = append(idxs, idx)
	}
	return idxs, nil
}

func (b *fileSegBackend) create(idx uint64) (segFile, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, segFileName(idx)), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return &fileSegFile{f: f}, nil
}

func (b *fileSegBackend) open(idx uint64) (segFile, error) {
	f, err := os.OpenFile(filepath.Join(b.dir, segFileName(idx)), os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileSegFile{f: f, sz: st.Size()}, nil
}

func (b *fileSegBackend) remove(idx uint64) error {
	return os.Remove(filepath.Join(b.dir, segFileName(idx)))
}

func (b *fileSegBackend) setMaster(l LSN) error {
	var buf [8]byte
	putLSN(buf[:], l)
	if _, err := b.mf.WriteAt(buf[:], 0); err != nil {
		return err
	}
	return b.mf.Sync()
}

func (b *fileSegBackend) master() (LSN, error) {
	var buf [8]byte
	n, err := b.mf.ReadAt(buf[:], 0)
	if err != nil && n == 0 {
		return NullLSN, nil // fresh master file
	}
	return getLSN(buf[:]), nil
}

func (b *fileSegBackend) close() error { return b.mf.Close() }

type fileSegFile struct {
	f  *os.File
	sz int64
}

func (f *fileSegFile) writeAt(b []byte, off int64) error {
	if _, err := f.f.WriteAt(b, off); err != nil {
		return err
	}
	if end := off + int64(len(b)); end > f.sz {
		f.sz = end
	}
	return nil
}

func (f *fileSegFile) readAt(b []byte, off int64) (int, error) {
	return f.f.ReadAt(b, off)
}

func (f *fileSegFile) sync() error { return f.f.Sync() }

func (f *fileSegFile) truncate(n int64) error {
	if err := f.f.Truncate(n); err != nil {
		return err
	}
	if n < f.sz {
		f.sz = n
	}
	return nil
}

func (f *fileSegFile) size() int64  { return f.sz }
func (f *fileSegFile) close() error { return f.f.Close() }

var (
	_ Store    = (*SegmentStore)(nil)
	_ Archiver = (*SegmentStore)(nil)
)
