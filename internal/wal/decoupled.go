package wal

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sync2"
)

// decoupledLog is the §6.2.2 redesign: a circular buffer where insert,
// compensate and flush are protected by different mutexes, so unrelated
// operations proceed in parallel and fast inserts never wait on slow
// flushes.
//
//   - Inserts own the buffer head. They hold a light-weight queueing mutex
//     (MCS) just long enough to reserve space and copy the record.
//   - Compensations (CLR inserts during rollback) own a marker between
//     head and tail; they take the compensation mutex and then the insert
//     mutex, always in that order.
//   - The flush daemon owns the tail and runs under a blocking mutex; it
//     drains completed bytes to the store in the background.
//
// Inserts keep a cached copy of the tail; only when an insert would
// overrun the cached tail does it refresh from the authoritative value and
// potentially block until the flusher catches up.
type decoupledLog struct {
	store Store
	ring  []byte

	insertMu sync2.MCSLock
	compMu   sync2.MCSLock
	flushMu  sync2.BlockingLock

	head       LSN // next byte to reserve; guarded by insertMu
	cachedTail LSN // insert-side cache of the durable tail; guarded by insertMu
	copied     atomic.Uint64
	gc         *groupCommit

	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	inserts       atomic.Uint64
	insertedBytes atomic.Uint64
	flushes       atomic.Uint64
	flushedBytes  atomic.Uint64
	insertWaits   atomic.Uint64
}

func newDecoupled(store Store, bufSize int) *decoupledLog {
	start := LSN(store.Size())
	if start < logHeaderSize {
		start = logHeaderSize
	}
	l := &decoupledLog{
		store: store,
		ring:  make([]byte, bufSize),
		head:  start,
		gc:    newGroupCommit(),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.copied.Store(uint64(start))
	l.cachedTail = LSN(store.DurableSize())
	l.gc.advance(LSN(store.DurableSize()))
	go l.flusher()
	return l
}

// kickFlusher nudges the flush daemon without blocking.
func (l *decoupledLog) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// copyToRing copies b into the circular buffer at absolute offset off.
func copyToRing(ring []byte, off LSN, b []byte) {
	n := len(ring)
	pos := int(uint64(off) % uint64(n))
	c := copy(ring[pos:], b)
	if c < len(b) {
		copy(ring, b[c:])
	}
}

func (l *decoupledLog) insert(rec *Record) (LSN, error) {
	if l.closed.Load() {
		return NullLSN, ErrLogClosed
	}
	size := rec.EncodedSize()
	if size > len(l.ring) {
		return NullLSN, ErrRecordTooLarge
	}
	var scratch [512]byte
	buf := scratch[:]
	if size > len(buf) {
		buf = make([]byte, size)
	}

	l.insertMu.Lock()
	// Check the cached tail first; refresh from the authoritative durable
	// boundary only when the cache says the buffer is full.
	if l.head+LSN(size)-l.cachedTail > LSN(len(l.ring)) {
		l.cachedTail = l.gc.get()
		for l.head+LSN(size)-l.cachedTail > LSN(len(l.ring)) {
			// Buffer genuinely full: wait for the flusher.
			l.insertWaits.Add(1)
			target := l.head + LSN(size) - LSN(len(l.ring))
			l.kickFlusher()
			l.gc.wait(target, func() bool { return l.closed.Load() })
			if l.closed.Load() {
				l.insertMu.Unlock()
				return NullLSN, ErrLogClosed
			}
			if err := l.gc.failed(); err != nil {
				l.insertMu.Unlock()
				return NullLSN, err
			}
			l.cachedTail = l.gc.get()
		}
	}
	rec.LSN = l.head
	n, err := rec.Encode(buf)
	if err != nil {
		l.insertMu.Unlock()
		return NullLSN, err
	}
	copyToRing(l.ring, l.head, buf[:n])
	l.head += LSN(n)
	head := l.head
	l.copied.Store(uint64(head))
	l.insertMu.Unlock()

	l.inserts.Add(1)
	l.insertedBytes.Add(uint64(n))
	if head-l.gc.get() > LSN(len(l.ring)/2) {
		l.kickFlusher()
	}
	return rec.LSN, nil
}

// Insert implements Manager.
func (l *decoupledLog) Insert(rec *Record) (LSN, error) { return l.insert(rec) }

// InsertCLR implements Manager: compensations serialize on their own mutex
// before entering the insert path, so they never contend with each other
// inside the insert critical section and never wait on flushes.
func (l *decoupledLog) InsertCLR(rec *Record) (LSN, error) {
	l.compMu.Lock()
	defer l.compMu.Unlock()
	return l.insert(rec)
}

// flusher is the background flush daemon; it owns the tail.
func (l *decoupledLog) flusher() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.drain()
			return
		case <-l.kick:
			l.drain()
		}
	}
}

// drain writes completed bytes [tail, copied) to the store and advances
// the durable boundary.
func (l *decoupledLog) drain() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	tail := l.gc.get()
	copied := LSN(l.copied.Load())
	if copied <= tail {
		return
	}
	n := len(l.ring)
	for off := tail; off < copied; {
		pos := int(uint64(off) % uint64(n))
		chunk := n - pos
		if rem := int(copied - off); rem < chunk {
			chunk = rem
		}
		if err := l.store.WriteAt(l.ring[pos:pos+chunk], int64(off)); err != nil {
			// A log device that cannot take bytes is terminal: fail the
			// waiters rather than strand them on a boundary that will
			// never advance.
			l.gc.fail(fmt.Errorf("wal: log write failed: %w", err))
			return
		}
		off += LSN(chunk)
	}
	if err := l.store.Flush(int64(copied)); err != nil {
		l.gc.fail(fmt.Errorf("wal: log flush failed: %w", err))
		return
	}
	l.flushes.Add(1)
	l.flushedBytes.Add(uint64(copied - tail))
	l.gc.advance(copied)
}

// Flush implements Manager.
func (l *decoupledLog) Flush(upTo LSN) error {
	if l.gc.get() >= upTo {
		return nil
	}
	if l.closed.Load() {
		return ErrLogClosed
	}
	l.kickFlusher()
	l.gc.wait(upTo, func() bool { return l.closed.Load() })
	if l.gc.get() < upTo {
		if err := l.gc.failed(); err != nil {
			return err
		}
		return ErrLogClosed
	}
	return nil
}

// CurLSN implements Manager.
func (l *decoupledLog) CurLSN() LSN { return LSN(l.copied.Load()) }

// DurableLSN implements Manager.
func (l *decoupledLog) DurableLSN() LSN { return l.gc.get() }

// Subscribe implements Manager.
func (l *decoupledLog) Subscribe(upTo LSN) <-chan error { return l.gc.subscribe(upTo) }

// Stats implements Manager.
func (l *decoupledLog) Stats() ManagerStats {
	s := ManagerStats{
		Inserts:       l.inserts.Load(),
		InsertedBytes: l.insertedBytes.Load(),
		Flushes:       l.flushes.Load(),
		FlushedBytes:  l.flushedBytes.Load(),
		InsertWaits:   l.insertWaits.Load(),
		Lock:          l.insertMu.Stats(),
	}
	return s
}

// Close implements Manager.
func (l *decoupledLog) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.stop)
	<-l.done
	l.gc.fail(ErrLogClosed) // resolve subscriptions the final drain missed
	return nil
}

var _ Manager = (*decoupledLog)(nil)
