package wal

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// fillSegments pushes records through a manager until the store has
// rotated past wantLast segments, then flushes everything. Returns the
// inserted record count.
func fillSegments(t *testing.T, m Manager, s *SegmentStore, wantLast uint64) int {
	t.Helper()
	n := 0
	for {
		rec := &Record{Type: RecUpdate, TxID: uint64(n), Page: 7, Redo: bytes.Repeat([]byte{0xAB}, 64)}
		lsn, err := m.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		n++
		if err := m.Flush(lsn + 1); err != nil {
			t.Fatal(err)
		}
		if _, last := s.Segments(); last >= wantLast {
			return n
		}
	}
}

func TestSegmentRotationAndSealing(t *testing.T) {
	for _, d := range allDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			s := NewMemSegmentStore(MinSegmentBytes)
			m := New(s, Options{Design: d})
			n := fillSegments(t, m, s, 3)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			first, last := s.Segments()
			if first != 0 || last < 3 {
				t.Fatalf("segments = [%d, %d], want [0, >=3]", first, last)
			}
			// Every segment before the tail must be sealed, and the sealed
			// prefix is the durable horizon floor.
			if h := s.Horizon(); int64(h) != int64(last)*MinSegmentBytes {
				t.Fatalf("horizon = %v, want sealed prefix end %d", h, int64(last)*MinSegmentBytes)
			}
			// Scan everything back across the boundaries.
			sc := NewScanner(s, NullLSN)
			count := 0
			for {
				rec, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				if rec.TxID != uint64(count) {
					t.Fatalf("record %d has txid %d", count, rec.TxID)
				}
				count++
			}
			if count != n {
				t.Fatalf("scanned %d records, want %d", count, n)
			}
			if sc.TornBytes() != 0 {
				t.Fatalf("torn bytes = %d on a clean log", sc.TornBytes())
			}
		})
	}
}

func TestSegmentStoreFileReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := OpenSegmentStore(dir, MinSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	m := New(s, Options{Design: DesignConsolidated})
	n := fillSegments(t, m, s, 2)
	if err := s.SetMaster(logHeaderSize); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := OpenSegmentStore(dir, MinSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if mstr, _ := s2.Master(); mstr != logHeaderSize {
		t.Fatalf("master after reopen = %v", mstr)
	}
	end, torn, err := CheckTail(s2)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("clean reopen reports %d torn bytes", torn)
	}
	if end != s2.Size() {
		t.Fatalf("CheckTail end %d != size %d", end, s2.Size())
	}
	// The log keeps growing where it left off.
	m2 := New(s2, Options{Design: DesignConsolidated})
	lsn, err := m2.Insert(&Record{Type: RecUpdate, TxID: 999, Redo: []byte("after")})
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Flush(lsn + 1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Close(); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(s2, NullLSN)
	count, sawNew := 0, false
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.TxID == 999 {
			sawNew = true
		}
		count++
	}
	if count != n+1 || !sawNew {
		t.Fatalf("scanned %d records (new record seen: %v), want %d", count, sawNew, n+1)
	}
}

func TestSegmentTornTailClipped(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	m := New(s, Options{Design: DesignCoupled})
	fillSegments(t, m, s, 1)
	durable := s.DurableSize()

	// Write a record past the durable boundary without flushing, then
	// crash with a torn tail: part of the in-flight bytes hit the disk.
	rec := &Record{Type: RecUpdate, TxID: 5000, Redo: bytes.Repeat([]byte{1}, 64)}
	buf := make([]byte, rec.EncodedSize())
	if _, err := rec.Encode(buf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteAt(buf, durable); err != nil {
		t.Fatal(err)
	}
	// Crash without closing the manager: the unflushed tail is lost.
	s.ArmTornCrash(37)
	s.Crash()
	if got := s.Size(); got != durable+37 {
		t.Fatalf("post-crash size = %d, want %d", got, durable+37)
	}

	end, torn, err := CheckTail(s)
	if err != nil {
		t.Fatalf("CheckTail on a torn tail must clip, not fail: %v", err)
	}
	if end != durable {
		t.Fatalf("valid end = %d, want durable boundary %d", end, durable)
	}
	if torn != 37 {
		t.Fatalf("torn = %d, want 37", torn)
	}
	if err := s.Truncate(end); err != nil {
		t.Fatal(err)
	}
	if s.Size() != durable {
		t.Fatalf("size after clip = %d, want %d", s.Size(), durable)
	}
	// The clipped log scans cleanly.
	sc := NewScanner(s, NullLSN)
	for {
		if _, err := sc.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentCorruptionBelowHorizonRefused(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	m := New(s, Options{Design: DesignCoupled})
	fillSegments(t, m, s, 2)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// Segment 0 is sealed, so everything in it is below the horizon.
	if h := s.Horizon(); int64(h) < MinSegmentBytes {
		t.Fatalf("horizon %v below first segment end", h)
	}
	// Flip a byte in the middle of a record inside segment 0.
	if err := s.WriteAt([]byte{0xFF}, logHeaderSize+recHeaderSize/2); err != nil {
		t.Fatal(err)
	}
	_, _, err := CheckTail(s)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("CheckTail = %v, want ErrCorrupt", err)
	}
}

func TestSegmentArchive(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	m := New(s, Options{Design: DesignDecoupled})
	// Fill past three rotations, remembering the first record boundary in
	// segment 2 — archive points are always real record LSNs in practice.
	var bound LSN
	for i := 0; ; i++ {
		rec := &Record{Type: RecUpdate, TxID: uint64(i), Redo: bytes.Repeat([]byte{0xAB}, 64)}
		lsn, err := m.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Flush(lsn + 1); err != nil {
			t.Fatal(err)
		}
		if bound == NullLSN && int64(lsn) >= 2*MinSegmentBytes {
			bound = lsn
		}
		if _, last := s.Segments(); last >= 3 {
			break
		}
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := s.ArchiveBelow(bound)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("archived %d segments, want 2", n)
	}
	if first, _ := s.Segments(); first != 2 {
		t.Fatalf("first retained segment = %d, want 2", first)
	}
	if s.Archived() != 2 {
		t.Fatalf("Archived() = %d, want 2", s.Archived())
	}
	// Reads below the archive boundary fail loudly.
	var b [8]byte
	if _, err := s.ReadAt(b[:], logHeaderSize); !errors.Is(err, ErrInvalidLSN) {
		t.Fatalf("read below boundary = %v, want ErrInvalidLSN", err)
	}
	// Scanning from the archive point still works.
	sc := NewScanner(s, bound)
	found := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		found++
	}
	if found == 0 {
		t.Fatal("no records scanned above the archive boundary")
	}
	// The tail segment itself can never be archived.
	if _, err := s.ArchiveBelow(LSN(1 << 60)); err != nil {
		t.Fatal(err)
	}
	if first, last := s.Segments(); first != last {
		t.Fatalf("archive-everything left [%d, %d], want the tail only", first, last)
	}
}

func TestSegmentMissingTailRefused(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	s, err := OpenSegmentStore(dir, MinSegmentBytes)
	if err != nil {
		t.Fatal(err)
	}
	m := New(s, Options{Design: DesignCoupled})
	fillSegments(t, m, s, 2)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Deleting the highest segment removes durable log: the predecessor is
	// sealed, and a sealed segment always has a durable successor, so
	// reopen must refuse rather than silently shorten history.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".seg" {
			names = append(names, e.Name())
		}
	}
	if len(names) < 3 {
		t.Fatalf("want >=3 segment files, have %v", names)
	}
	if err := os.Remove(filepath.Join(dir, names[len(names)-1])); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentStore(dir, MinSegmentBytes); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen with deleted tail segment = %v, want ErrCorrupt", err)
	}

	// A missing middle segment breaks the chain the same way.
	if err := os.Remove(filepath.Join(dir, names[1])); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSegmentStore(dir, MinSegmentBytes); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("reopen with deleted middle segment = %v, want ErrCorrupt", err)
	}
}

func TestSegmentTruncateLimits(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	m := New(s, Options{Design: DesignCoupled})
	fillSegments(t, m, s, 1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(4); !errors.Is(err, ErrInvalidLSN) {
		t.Fatalf("truncate into preamble = %v, want ErrInvalidLSN", err)
	}
	// Segment 0 is sealed; clipping into it would discard durable log.
	if err := s.Truncate(MinSegmentBytes - 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncate below sealed boundary = %v, want ErrCorrupt", err)
	}
	// Clipping within the unsealed tail is fine.
	want := int64(MinSegmentBytes)
	if err := s.Truncate(want); err != nil {
		t.Fatal(err)
	}
	if s.Size() != want {
		t.Fatalf("size = %d, want %d", s.Size(), want)
	}
	// The sealed predecessor keeps its empty successor: reopen semantics
	// depend on the tail being unsealed.
	if first, last := s.Segments(); first != 0 || last != 1 {
		t.Fatalf("segments after clip = [%d, %d], want [0, 1]", first, last)
	}
}

func TestSegmentFailFlushes(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	s.FailFlushes(0)
	if err := s.WriteAt([]byte("xxxx"), logHeaderSize); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(s.Size()); !errors.Is(err, ErrInjectedFlush) {
		t.Fatalf("flush = %v, want ErrInjectedFlush", err)
	}
	if err := s.Flush(s.Size()); !errors.Is(err, ErrInjectedFlush) {
		t.Fatalf("second flush = %v, want ErrInjectedFlush", err)
	}
	s.FailFlushes(-1)
	if err := s.Flush(s.Size()); err != nil {
		t.Fatal(err)
	}
	if s.DurableSize() != s.Size() {
		t.Fatalf("durable %d != size %d after healed flush", s.DurableSize(), s.Size())
	}
}

func TestSegmentStoreClone(t *testing.T) {
	s := NewMemSegmentStore(MinSegmentBytes)
	m := New(s, Options{Design: DesignCoupled})
	fillSegments(t, m, s, 1)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	if c.Size() != s.Size() || c.DurableSize() != s.DurableSize() {
		t.Fatalf("clone size/durable mismatch: %d/%d vs %d/%d",
			c.Size(), c.DurableSize(), s.Size(), s.DurableSize())
	}
	// Writes to the original do not leak into the clone.
	before := c.Size()
	if err := s.WriteAt(bytes.Repeat([]byte{9}, 100), s.Size()); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(s.Size()); err != nil {
		t.Fatal(err)
	}
	if c.Size() != before {
		t.Fatalf("clone grew with the original: %d -> %d", before, c.Size())
	}
	var a, b [64]byte
	if _, err := s.ReadAt(a[:], logHeaderSize); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(b[:], logHeaderSize); err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("clone data diverged at the log start")
	}
}
