package wal

import (
	"fmt"
	"sync/atomic"

	"repro/internal/sync2"
)

// consolidatedLog is the §6.2.4 design: the log buffer is merged with the
// mechanism that protects it. A thread serializes only long enough to
// claim its buffer region and LSN; the record copy happens outside any
// mutex, in parallel with other threads' copies, and completions are
// published to the flush daemon in LSN order — the "extended queuing lock"
// whose queue hand-off passes the insert offset from thread to thread.
//
// Concretely:
//
//   - reservation: a CAS loop on the head offset (the hand-off of the
//     contended state, offset and LSN, with no further critical section);
//   - copy: into the circular buffer, unlatched;
//   - publication: each thread waits until the ordered completion cursor
//     reaches its own start offset, then advances it past its record —
//     exactly the successor hand-off of an MCS queue, applied to buffer
//     state instead of a lock word;
//   - the flush daemon "follows behind, dequeuing all threads' left-over
//     nodes": it flushes [tail, completionCursor).
type consolidatedLog struct {
	store Store
	ring  []byte

	head    atomic.Uint64 // next byte to reserve (= next LSN)
	copied  atomic.Uint64 // ordered completion cursor
	gc      *groupCommit
	flushMu sync2.BlockingLock
	// flushWaiters counts callers blocked in Flush. A flush target can
	// exceed the completion cursor (CurLSN returns the reservation head),
	// so a drain triggered by the waiter's kick may run before the copy
	// publishes; publishers re-kick while anyone waits, closing the
	// lost-wakeup window.
	flushWaiters atomic.Int64

	kick   chan struct{}
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool

	inserts       atomic.Uint64
	insertedBytes atomic.Uint64
	flushes       atomic.Uint64
	flushedBytes  atomic.Uint64
	insertWaits   atomic.Uint64
	reserveRetry  atomic.Uint64
	publishSpins  atomic.Uint64
}

func newConsolidated(store Store, bufSize int) *consolidatedLog {
	start := uint64(store.Size())
	if start < logHeaderSize {
		start = logHeaderSize
	}
	l := &consolidatedLog{
		store: store,
		ring:  make([]byte, bufSize),
		gc:    newGroupCommit(),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	l.head.Store(start)
	l.copied.Store(start)
	l.gc.advance(LSN(store.DurableSize()))
	go l.flusher()
	return l
}

func (l *consolidatedLog) kickFlusher() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

func (l *consolidatedLog) insert(rec *Record) (LSN, error) {
	if l.closed.Load() {
		return NullLSN, ErrLogClosed
	}
	size := uint64(rec.EncodedSize())
	if size > uint64(len(l.ring)) {
		return NullLSN, ErrRecordTooLarge
	}
	// Encode outside every critical section.
	var scratch [512]byte
	buf := scratch[:]
	if int(size) > len(buf) {
		buf = make([]byte, size)
	}

	// Phase 1: reserve [r, r+size). The only shared state touched is the
	// head word; this is the entire "critical section" of an insert.
	var r uint64
	for {
		r = l.head.Load()
		// Respect the buffer bound against the durable tail.
		if r+size-uint64(l.gc.get()) > uint64(len(l.ring)) {
			l.insertWaits.Add(1)
			l.kickFlusher()
			l.gc.wait(LSN(r+size-uint64(len(l.ring))), func() bool { return l.closed.Load() })
			if l.closed.Load() {
				return NullLSN, ErrLogClosed
			}
			if err := l.gc.failed(); err != nil {
				return NullLSN, err
			}
			continue
		}
		if l.head.CompareAndSwap(r, r+size) {
			break
		}
		l.reserveRetry.Add(1)
	}

	// Phase 2: copy in parallel with other inserters.
	rec.LSN = LSN(r)
	n, err := rec.Encode(buf)
	if err != nil {
		// The reservation cannot be returned; fill it with a padding
		// record so the stream stays parseable. Encode errors are only
		// possible for oversized payloads, which were checked above, so
		// this is defensive.
		for i := uint64(0); i < size; i++ {
			l.ring[(r+i)%uint64(len(l.ring))] = 0
		}
		l.publish(r, size)
		return NullLSN, err
	}
	copyToRing(l.ring, LSN(r), buf[:n])

	// Phase 3: ordered publication — hand the completion cursor forward.
	l.publish(r, size)

	l.inserts.Add(1)
	l.insertedBytes.Add(size)
	if LSN(r+size)-l.gc.get() > LSN(len(l.ring)/2) {
		l.kickFlusher()
	}
	return rec.LSN, nil
}

// publish advances the ordered completion cursor from r to r+size,
// waiting for all earlier reservations to publish first.
func (l *consolidatedLog) publish(r, size uint64) {
	var b sync2.Backoff
	for l.copied.Load() != r {
		b.Spin()
	}
	if it := b.Iterations(); it > 0 {
		l.publishSpins.Add(uint64(it))
	}
	l.copied.Store(r + size)
	if l.flushWaiters.Load() > 0 {
		l.kickFlusher()
	}
}

// Insert implements Manager.
func (l *consolidatedLog) Insert(rec *Record) (LSN, error) { return l.insert(rec) }

// InsertCLR implements Manager. The consolidated design needs no separate
// compensation path: the insert critical section is already minimal.
func (l *consolidatedLog) InsertCLR(rec *Record) (LSN, error) { return l.insert(rec) }

func (l *consolidatedLog) flusher() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			l.drain()
			return
		case <-l.kick:
			l.drain()
		}
	}
}

func (l *consolidatedLog) drain() {
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	tail := l.gc.get()
	copied := LSN(l.copied.Load())
	if copied <= tail {
		return
	}
	n := len(l.ring)
	for off := tail; off < copied; {
		pos := int(uint64(off) % uint64(n))
		chunk := n - pos
		if rem := int(copied - off); rem < chunk {
			chunk = rem
		}
		if err := l.store.WriteAt(l.ring[pos:pos+chunk], int64(off)); err != nil {
			// A log device that cannot take bytes is terminal: fail the
			// waiters rather than strand them on a boundary that will
			// never advance.
			l.gc.fail(fmt.Errorf("wal: log write failed: %w", err))
			return
		}
		off += LSN(chunk)
	}
	if err := l.store.Flush(int64(copied)); err != nil {
		l.gc.fail(fmt.Errorf("wal: log flush failed: %w", err))
		return
	}
	l.flushes.Add(1)
	l.flushedBytes.Add(uint64(copied - tail))
	l.gc.advance(copied)
}

// Flush implements Manager.
func (l *consolidatedLog) Flush(upTo LSN) error {
	if l.gc.get() >= upTo {
		return nil
	}
	if l.closed.Load() {
		return ErrLogClosed
	}
	l.flushWaiters.Add(1)
	l.kickFlusher()
	l.gc.wait(upTo, func() bool { return l.closed.Load() })
	l.flushWaiters.Add(-1)
	if l.gc.get() < upTo {
		if err := l.gc.failed(); err != nil {
			return err
		}
		return ErrLogClosed
	}
	return nil
}

// CurLSN implements Manager.
func (l *consolidatedLog) CurLSN() LSN { return LSN(l.head.Load()) }

// DurableLSN implements Manager.
func (l *consolidatedLog) DurableLSN() LSN { return l.gc.get() }

// Subscribe implements Manager.
func (l *consolidatedLog) Subscribe(upTo LSN) <-chan error { return l.gc.subscribe(upTo) }

// Stats implements Manager.
func (l *consolidatedLog) Stats() ManagerStats {
	return ManagerStats{
		Inserts:       l.inserts.Load(),
		InsertedBytes: l.insertedBytes.Load(),
		Flushes:       l.flushes.Load(),
		FlushedBytes:  l.flushedBytes.Load(),
		InsertWaits:   l.insertWaits.Load(),
		Lock: sync2.Stats{
			Acquisitions: l.inserts.Load(),
			Contended:    l.reserveRetry.Load(),
			SpinIters:    l.publishSpins.Load(),
		},
	}
}

// Close implements Manager.
func (l *consolidatedLog) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	close(l.stop)
	<-l.done
	l.gc.fail(ErrLogClosed) // resolve subscriptions the final drain missed
	return nil
}

var _ Manager = (*consolidatedLog)(nil)
