package wal

import (
	"sync/atomic"

	"repro/internal/sync2"
)

// coupledLog reproduces the original Shore log manager: a single blocking
// mutex protects every operation, the buffer is non-circular (inserts fill
// it until a flush drains it), and flushes are synchronous — an insert that
// finds the buffer full performs the flush itself while every other thread
// queues behind the mutex. This is the design whose contention Figure 7's
// "baseline" suffers from.
type coupledLog struct {
	mu     sync2.BlockingLock
	store  Store
	buf    []byte // non-circular staging buffer
	used   int    // bytes staged
	bufLSN LSN    // LSN of buf[0]
	next   LSN    // next LSN to assign
	gc     *groupCommit
	closed atomic.Bool

	inserts       atomic.Uint64
	insertedBytes atomic.Uint64
	flushes       atomic.Uint64
	flushedBytes  atomic.Uint64
	insertWaits   atomic.Uint64
}

func newCoupled(store Store, bufSize int) *coupledLog {
	start := LSN(store.Size())
	if start < logHeaderSize {
		start = logHeaderSize
	}
	l := &coupledLog{
		store:  store,
		buf:    make([]byte, bufSize),
		bufLSN: start,
		next:   start,
		gc:     newGroupCommit(),
	}
	l.gc.advance(LSN(store.DurableSize()))
	return l
}

// flushLocked drains the staging buffer to the store. Caller holds mu.
func (l *coupledLog) flushLocked() error {
	if l.used == 0 {
		if want := l.next; l.gc.get() < want {
			// Nothing staged but the store may lag on durability.
			if err := l.store.Flush(int64(want)); err != nil {
				return err
			}
			l.gc.advance(want)
		}
		return nil
	}
	if err := l.store.WriteAt(l.buf[:l.used], int64(l.bufLSN)); err != nil {
		return err
	}
	if err := l.store.Flush(int64(l.bufLSN) + int64(l.used)); err != nil {
		return err
	}
	l.flushes.Add(1)
	l.flushedBytes.Add(uint64(l.used))
	l.gc.advance(l.bufLSN + LSN(l.used))
	l.bufLSN += LSN(l.used)
	l.used = 0
	return nil
}

func (l *coupledLog) insert(rec *Record) (LSN, error) {
	if l.closed.Load() {
		return NullLSN, ErrLogClosed
	}
	size := rec.EncodedSize()
	l.mu.Lock()
	defer l.mu.Unlock()
	if size > len(l.buf) {
		return NullLSN, ErrRecordTooLarge
	}
	if l.used+size > len(l.buf) {
		// Synchronous flush on the insert path — the defining flaw.
		l.insertWaits.Add(1)
		if err := l.flushLocked(); err != nil {
			return NullLSN, err
		}
	}
	rec.LSN = l.next
	n, err := rec.Encode(l.buf[l.used:])
	if err != nil {
		return NullLSN, err
	}
	l.used += n
	l.next += LSN(n)
	l.inserts.Add(1)
	l.insertedBytes.Add(uint64(n))
	return rec.LSN, nil
}

// Insert implements Manager.
func (l *coupledLog) Insert(rec *Record) (LSN, error) { return l.insert(rec) }

// InsertCLR implements Manager; the coupled design has no separate
// compensation path — everything shares the global mutex.
func (l *coupledLog) InsertCLR(rec *Record) (LSN, error) { return l.insert(rec) }

// Flush implements Manager.
func (l *coupledLog) Flush(upTo LSN) error {
	if l.closed.Load() {
		return ErrLogClosed
	}
	if l.gc.get() >= upTo {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// CurLSN implements Manager.
func (l *coupledLog) CurLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// DurableLSN implements Manager.
func (l *coupledLog) DurableLSN() LSN { return l.gc.get() }

// Subscribe implements Manager. The coupled design has no background
// flusher, so a subscription resolves only when some caller (typically a
// flush daemon) invokes Flush.
func (l *coupledLog) Subscribe(upTo LSN) <-chan error { return l.gc.subscribe(upTo) }

// Stats implements Manager.
func (l *coupledLog) Stats() ManagerStats {
	return ManagerStats{
		Inserts:       l.inserts.Load(),
		InsertedBytes: l.insertedBytes.Load(),
		Flushes:       l.flushes.Load(),
		FlushedBytes:  l.flushedBytes.Load(),
		InsertWaits:   l.insertWaits.Load(),
		Lock:          l.mu.Stats(),
	}
}

// Close implements Manager.
func (l *coupledLog) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	l.mu.Lock()
	err := l.flushLocked()
	l.mu.Unlock()
	l.gc.fail(ErrLogClosed) // resolve subscriptions the final flush missed
	return err
}

var _ Manager = (*coupledLog)(nil)
