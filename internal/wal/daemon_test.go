package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func designs() []Design {
	return []Design{DesignCoupled, DesignDecoupled, DesignConsolidated}
}

func TestSubscribeResolvesOnFlush(t *testing.T) {
	for _, d := range designs() {
		t.Run(d.String(), func(t *testing.T) {
			m := New(NewMemStore(), Options{Design: d})
			defer m.Close()
			lsn, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1})
			if err != nil {
				t.Fatal(err)
			}
			target := m.CurLSN()
			ch := m.Subscribe(target)
			select {
			case <-ch:
				t.Fatal("subscription resolved before flush")
			case <-time.After(10 * time.Millisecond):
			}
			if err := m.Flush(target); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-ch:
				if err != nil {
					t.Fatalf("subscription error: %v", err)
				}
			case <-time.After(time.Second):
				t.Fatal("subscription never resolved after flush")
			}
			if m.DurableLSN() < lsn {
				t.Fatalf("durable %v < commit %v", m.DurableLSN(), lsn)
			}
		})
	}
}

func TestSubscribeAlreadyDurable(t *testing.T) {
	for _, d := range designs() {
		t.Run(d.String(), func(t *testing.T) {
			m := New(NewMemStore(), Options{Design: d})
			defer m.Close()
			if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1}); err != nil {
				t.Fatal(err)
			}
			target := m.CurLSN()
			if err := m.Flush(target); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-m.Subscribe(target):
				if err != nil {
					t.Fatalf("subscription error: %v", err)
				}
			case <-time.After(time.Second):
				t.Fatal("already-durable subscription did not resolve")
			}
		})
	}
}

func TestSubscribeFailsOnClose(t *testing.T) {
	for _, d := range designs() {
		t.Run(d.String(), func(t *testing.T) {
			m := New(NewMemStore(), Options{Design: d})
			if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1}); err != nil {
				t.Fatal(err)
			}
			// Subscribe far past anything that will ever be written.
			ch := m.Subscribe(m.CurLSN() + 1<<20)
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			select {
			case err := <-ch:
				if err != ErrLogClosed {
					t.Fatalf("got %v, want ErrLogClosed", err)
				}
			case <-time.After(time.Second):
				t.Fatal("subscription not failed at close")
			}
			// Post-close subscriptions past the durable boundary fail fast.
			if err := <-m.Subscribe(m.DurableLSN() + 1); err != ErrLogClosed {
				t.Fatalf("post-close subscribe: %v", err)
			}
		})
	}
}

func TestFlushDaemonHardensBatches(t *testing.T) {
	for _, d := range designs() {
		t.Run(d.String(), func(t *testing.T) {
			m := New(NewMemStore(), Options{Design: d})
			defer m.Close()
			fd := NewFlushDaemon(m, DaemonOptions{})
			defer fd.Close()

			const writers = 16
			const commits = 50
			var wg sync.WaitGroup
			errs := make(chan error, writers*commits)
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < commits; i++ {
						if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: uint64(w + 1)}); err != nil {
							errs <- err
							return
						}
						if err := <-fd.Harden(m.CurLSN()); err != nil {
							errs <- err
							return
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			st := fd.Stats()
			if st.Requests != writers*commits {
				t.Fatalf("requests = %d, want %d", st.Requests, writers*commits)
			}
			if st.Batches == 0 || st.Batches > st.Requests {
				t.Fatalf("batches = %d for %d requests", st.Batches, st.Requests)
			}
			if m.DurableLSN() < m.CurLSN() {
				t.Fatalf("durable %v < cur %v after all hardens", m.DurableLSN(), m.CurLSN())
			}
		})
	}
}

func TestFlushDaemonCloseHardensQueue(t *testing.T) {
	m := New(NewMemStore(), Options{Design: DesignCoupled})
	defer m.Close()
	fd := NewFlushDaemon(m, DaemonOptions{Interval: 50 * time.Millisecond})
	if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	target := m.CurLSN()
	ch := fd.Harden(target)
	if err := fd.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ch:
		if err != nil {
			t.Fatalf("harden after close: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("close did not harden the queue")
	}
	if m.DurableLSN() < target {
		t.Fatalf("durable %v < target %v", m.DurableLSN(), target)
	}
}

// failingStore wraps a store whose Flush always errors once armed.
type failingStore struct {
	*MemStore
	fail atomic.Bool
}

func (s *failingStore) Flush(upTo int64) error {
	if s.fail.Load() {
		return errors.New("injected flush failure")
	}
	return s.MemStore.Flush(upTo)
}

func TestFlushDaemonSurfacesPersistentFlushFailure(t *testing.T) {
	store := &failingStore{MemStore: NewMemStore()}
	m := New(store, Options{Design: DesignCoupled})
	fd := NewFlushDaemon(m, DaemonOptions{})
	defer fd.Close()
	if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	store.fail.Store(true)
	ch := fd.Harden(m.CurLSN())
	select {
	case err := <-ch:
		if err != ErrLogClosed {
			t.Fatalf("got %v, want ErrLogClosed after persistent flush failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("committer left hanging on a dead log")
	}
}

func TestFlushDaemonKillAbandonsQueue(t *testing.T) {
	store := NewMemStore()
	m := New(store, Options{Design: DesignCoupled})
	fd := NewFlushDaemon(m, DaemonOptions{Interval: time.Hour}) // never flush on its own
	if _, err := m.Insert(&Record{Type: RecTxCommit, TxID: 1}); err != nil {
		t.Fatal(err)
	}
	target := m.CurLSN()
	before := m.DurableLSN()
	ch := fd.Harden(target)
	time.Sleep(10 * time.Millisecond) // let the daemon pick the target up
	fd.Kill()
	if got := m.DurableLSN(); got != before {
		t.Fatalf("kill advanced durable boundary: %v -> %v", before, got)
	}
	// The subscription must not leak: manager close resolves it one way or
	// the other (nil if the close-time flush hardened it, ErrLogClosed
	// otherwise).
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("subscription leaked past kill + close")
	}
	_ = store
}
