// Package wal implements ARIES-style write-ahead logging with the three
// log-manager designs whose evolution the Shore-MT paper traces:
//
//   - Coupled: the original Shore design — one global mutex, a
//     non-circular buffer, and synchronous flushes that block inserts.
//   - Decoupled (§6.2.2 problem 2): a circular buffer with separate insert,
//     compensate and flush mutexes and a cached tail pointer, so unrelated
//     operations proceed in parallel.
//   - Consolidated (§6.2.4): the extended-queuing-lock buffer — threads
//     serialize only long enough to claim buffer space and an LSN, copy
//     their record in parallel, and publish completion in order, with the
//     flush daemon following behind.
//
// LSNs are byte offsets into the log stream, so a reservation counter
// doubles as the LSN generator and recovery can seek directly to any
// record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/page"
)

// LSN is a log sequence number: a byte offset into the log stream.
type LSN uint64

// NullLSN marks "no LSN" (e.g. a page never touched since format).
const NullLSN LSN = 0

// logHeaderSize is the size of the log file preamble; the first record
// begins here so that no valid record has LSN 0.
const logHeaderSize = 8

// logMagic is the log file preamble.
var logMagic = [logHeaderSize]byte{'S', 'H', 'O', 'R', 'E', 'L', 'O', 'G'}

// String formats the LSN.
func (l LSN) String() string { return fmt.Sprintf("lsn:%d", uint64(l)) }

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	RecInvalid   RecType = iota
	RecUpdate            // page update: redo + undo payloads
	RecCLR               // compensation log record (redo-only)
	RecTxBegin           // transaction begin
	RecTxCommit          // transaction commit
	RecTxAbort           // transaction abort decision
	RecTxEnd             // transaction fully finished (after rollback)
	RecCkptBegin         // fuzzy checkpoint begin
	RecCkptEnd           // fuzzy checkpoint end (carries tables)
	RecFormat            // page format (redo-only)
)

// String names the record type.
func (t RecType) String() string {
	switch t {
	case RecUpdate:
		return "update"
	case RecCLR:
		return "clr"
	case RecTxBegin:
		return "begin"
	case RecTxCommit:
		return "commit"
	case RecTxAbort:
		return "abort"
	case RecTxEnd:
		return "end"
	case RecCkptBegin:
		return "ckpt-begin"
	case RecCkptEnd:
		return "ckpt-end"
	case RecFormat:
		return "format"
	default:
		return fmt.Sprintf("rec%d", uint8(t))
	}
}

// Record is a log record. Redo and Undo payloads are opaque to the log
// manager; the storage manager's codec interprets them.
type Record struct {
	LSN      LSN     // assigned at insert
	Type     RecType //
	TxID     uint64  // owning transaction, 0 for checkpoints
	PrevLSN  LSN     // previous record of the same transaction
	Page     page.ID // affected page, 0 if none
	UndoNext LSN     // for CLRs: next record to undo
	Redo     []byte  // redo payload
	Undo     []byte  // undo payload
}

// Wire format:
//
//	u32 totalLen  (header + payloads + crc)
//	u8  type
//	u8  flags (reserved)
//	u16 reserved
//	u64 txid
//	u64 prevLSN
//	u64 page
//	u64 undoNext
//	u32 redoLen
//	u32 undoLen
//	... redo bytes, undo bytes
//	u32 crc32 (over everything before the crc)
const (
	recHeaderSize  = 4 + 1 + 1 + 2 + 8 + 8 + 8 + 8 + 4 + 4
	recTrailerSize = 4
	// MaxPayload bounds redo+undo so a record always fits in any buffer.
	MaxPayload = 1 << 20
)

// Errors from encoding/decoding and from the store layer. ErrBadRecord
// classifies a single undecodable record; the sentinels below classify
// what that means for the log as a whole: a bad record above the durable
// horizon is a torn tail (expected after a crash, clipped), while one
// below it is ErrCorrupt — committed work is damaged and startup must
// refuse rather than silently truncate.
var (
	ErrRecordTooLarge = errors.New("wal: record payload too large")
	ErrBadRecord      = errors.New("wal: malformed or corrupt record")
	ErrCorrupt        = errors.New("wal: log corrupt below durable horizon")
	ErrShortWrite     = errors.New("wal: short write")
	ErrInvalidLSN     = errors.New("wal: invalid LSN")
)

// EncodedSize returns the on-log size of r.
func (r *Record) EncodedSize() int {
	return recHeaderSize + len(r.Redo) + len(r.Undo) + recTrailerSize
}

// Encode serializes r into buf, which must be at least EncodedSize bytes,
// and returns the number of bytes written.
func (r *Record) Encode(buf []byte) (int, error) {
	if len(r.Redo)+len(r.Undo) > MaxPayload {
		return 0, ErrRecordTooLarge
	}
	total := r.EncodedSize()
	if len(buf) < total {
		return 0, fmt.Errorf("wal: encode buffer too small: %d < %d", len(buf), total)
	}
	b := buf[:total]
	binary.LittleEndian.PutUint32(b[0:], uint32(total))
	b[4] = byte(r.Type)
	b[5] = 0
	binary.LittleEndian.PutUint16(b[6:], 0)
	binary.LittleEndian.PutUint64(b[8:], r.TxID)
	binary.LittleEndian.PutUint64(b[16:], uint64(r.PrevLSN))
	binary.LittleEndian.PutUint64(b[24:], uint64(r.Page))
	binary.LittleEndian.PutUint64(b[32:], uint64(r.UndoNext))
	binary.LittleEndian.PutUint32(b[40:], uint32(len(r.Redo)))
	binary.LittleEndian.PutUint32(b[44:], uint32(len(r.Undo)))
	copy(b[recHeaderSize:], r.Redo)
	copy(b[recHeaderSize+len(r.Redo):], r.Undo)
	crc := crc32.ChecksumIEEE(b[:total-recTrailerSize])
	binary.LittleEndian.PutUint32(b[total-recTrailerSize:], crc)
	return total, nil
}

// DecodeRecord parses a record from the front of buf. It returns the
// record and its encoded length. ErrBadRecord is returned for truncated or
// corrupt input — recovery uses this to find the end of the log. Decoding
// is strict: any accepted record re-encodes to exactly the input bytes, so
// the CRC the encoder would produce always agrees with the one on the log.
func DecodeRecord(buf []byte) (*Record, int, error) {
	if len(buf) < recHeaderSize+recTrailerSize {
		return nil, 0, fmt.Errorf("%w: truncated header", ErrBadRecord)
	}
	total := int(binary.LittleEndian.Uint32(buf[0:]))
	if total < recHeaderSize+recTrailerSize || total > recHeaderSize+MaxPayload+recTrailerSize {
		return nil, 0, fmt.Errorf("%w: bad length %d", ErrBadRecord, total)
	}
	if len(buf) < total {
		return nil, 0, fmt.Errorf("%w: truncated body", ErrBadRecord)
	}
	b := buf[:total]
	want := binary.LittleEndian.Uint32(b[total-recTrailerSize:])
	if crc32.ChecksumIEEE(b[:total-recTrailerSize]) != want {
		return nil, 0, fmt.Errorf("%w: crc mismatch", ErrBadRecord)
	}
	if t := RecType(b[4]); t == RecInvalid || t > RecFormat {
		return nil, 0, fmt.Errorf("%w: unknown record type %d", ErrBadRecord, b[4])
	}
	if b[5] != 0 || binary.LittleEndian.Uint16(b[6:]) != 0 {
		return nil, 0, fmt.Errorf("%w: nonzero reserved bytes", ErrBadRecord)
	}
	redoLen := int(binary.LittleEndian.Uint32(b[40:]))
	undoLen := int(binary.LittleEndian.Uint32(b[44:]))
	if recHeaderSize+redoLen+undoLen+recTrailerSize != total {
		return nil, 0, fmt.Errorf("%w: inconsistent payload lengths", ErrBadRecord)
	}
	r := &Record{
		Type:     RecType(b[4]),
		TxID:     binary.LittleEndian.Uint64(b[8:]),
		PrevLSN:  LSN(binary.LittleEndian.Uint64(b[16:])),
		Page:     page.ID(binary.LittleEndian.Uint64(b[24:])),
		UndoNext: LSN(binary.LittleEndian.Uint64(b[32:])),
	}
	if redoLen > 0 {
		r.Redo = append([]byte(nil), b[recHeaderSize:recHeaderSize+redoLen]...)
	}
	if undoLen > 0 {
		r.Undo = append([]byte(nil), b[recHeaderSize+redoLen:recHeaderSize+redoLen+undoLen]...)
	}
	return r, total, nil
}
