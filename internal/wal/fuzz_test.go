package wal

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord feeds arbitrary bytes to the log-record decoder: this
// is the exact surface recovery exposes to whatever survived a crash.
// Hostile length fields, flipped type bytes, and truncations must all
// surface as errors — never a panic — and anything the decoder accepts
// must re-encode byte-identically, since recovery trusts accepted
// records enough to replay them.
func FuzzDecodeRecord(f *testing.F) {
	seed := func(r *Record) {
		buf := make([]byte, r.EncodedSize())
		if _, err := r.Encode(buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(&Record{Type: RecUpdate, TxID: 7, PrevLSN: 99, Page: 3, Redo: []byte("redo"), Undo: []byte("undo")})
	seed(&Record{Type: RecTxCommit, TxID: 1})
	seed(&Record{Type: RecCLR, TxID: 2, UndoNext: 55, Page: 9, Redo: []byte("compensate")})
	seed(&Record{Type: RecCkptEnd, Redo: (&CheckpointData{BeginLSN: 8}).Encode()})
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, recHeaderSize+recTrailerSize))
	f.Add(bytes.Repeat([]byte{0x00}, recHeaderSize+recTrailerSize))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if n < recHeaderSize+recTrailerSize || n > len(data) {
			t.Fatalf("decoder consumed %d of %d bytes", n, len(data))
		}
		if rec.Type == RecInvalid || rec.Type > RecFormat {
			t.Fatalf("decoder accepted invalid record type %d", rec.Type)
		}
		if len(rec.Redo) > MaxPayload || len(rec.Undo) > MaxPayload {
			t.Fatalf("decoder accepted oversized payload (%d redo, %d undo)", len(rec.Redo), len(rec.Undo))
		}
		// An accepted record must re-encode to the exact bytes it was
		// decoded from: recovery re-reads records by offset and length,
		// so any drift would shift every LSN after it.
		re := make([]byte, rec.EncodedSize())
		m, err := rec.Encode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed: %v", err)
		}
		if m != n || !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch: %d bytes vs %d accepted", m, n)
		}
	})
}
