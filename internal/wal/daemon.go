package wal

import (
	"sync/atomic"
	"time"
)

// FlushDaemon is the harden stage of the staged commit pipeline: a
// dedicated goroutine that batches outstanding commit LSNs and advances
// the durable horizon with as few Flush calls as possible. Committers
// hand it their commit LSN via Harden and learn about durability through
// the manager's Subscribe channel; they never issue a Flush themselves,
// so lock release does not have to wait behind log I/O.
//
// The daemon coalesces naturally: every Harden target that arrives while
// a Flush is in progress is absorbed into the next Flush, which covers
// the maximum of the batch in one store round trip (group commit, made
// asynchronous).
type FlushDaemon struct {
	mgr Manager

	req  chan LSN
	stop chan struct{}
	done chan struct{}

	interval time.Duration
	closed   atomic.Bool
	killed   atomic.Bool

	batches  atomic.Uint64
	requests atomic.Uint64
	maxBatch atomic.Uint64
}

// DaemonOptions configures a FlushDaemon.
type DaemonOptions struct {
	// Interval is an optional batching window: after the first pending
	// target arrives the daemon waits up to Interval for more before
	// flushing, trading commit latency for bigger batches. Zero flushes
	// as soon as the daemon is free (latency-optimal; batching still
	// happens whenever a flush is already in flight).
	Interval time.Duration
	// QueueDepth bounds pending Harden targets (default 1024). Harden
	// blocks when the queue is full, which back-pressures committers.
	QueueDepth int
}

// DaemonStats reports flush-daemon activity.
type DaemonStats struct {
	Batches   uint64 // flushes issued
	Requests  uint64 // harden targets received
	MaxBatch  uint64 // largest number of targets covered by one flush
	DurableTo LSN    // manager's durable boundary at snapshot time
}

// NewFlushDaemon starts a flush daemon over mgr.
func NewFlushDaemon(mgr Manager, opts DaemonOptions) *FlushDaemon {
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = 1024
	}
	d := &FlushDaemon{
		mgr:      mgr,
		req:      make(chan LSN, depth),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		interval: opts.Interval,
	}
	go d.run()
	return d
}

// Harden asks the daemon to make every record with LSN < upTo durable and
// returns a channel that fires exactly once: nil when durable, or
// ErrLogClosed when the daemon can no longer guarantee it. The flush
// itself is batched with other callers'.
func (d *FlushDaemon) Harden(upTo LSN) <-chan error {
	ch := d.mgr.Subscribe(upTo)
	if d.closed.Load() {
		// Usually the subscription resolved synchronously (durable, or
		// the manager failed it at close). But after Kill — crash
		// semantics without a manager close — it can still be pending
		// with nobody left to ever flush; resolve it as closed rather
		// than hand back a channel that never fires.
		return resolveOrClosed(ch)
	}
	d.requests.Add(1)
	select {
	case d.req <- upTo:
	case <-d.stop:
		// Lost the race with Close/Kill: the target never entered the
		// queue, so the final drain won't cover it either.
		return resolveOrClosed(ch)
	}
	return ch
}

// resolveOrClosed returns ch if it already holds a verdict, else a
// channel that fails immediately with ErrLogClosed (the daemon is gone;
// durability cannot be promised — the transaction stays in doubt for the
// caller, exactly as a crash would leave it).
func resolveOrClosed(ch <-chan error) <-chan error {
	select {
	case err := <-ch:
		out := make(chan error, 1)
		out <- err
		return out
	default:
		out := make(chan error, 1)
		out <- ErrLogClosed
		return out
	}
}

// run is the daemon loop: gather a batch, flush its maximum, repeat.
func (d *FlushDaemon) run() {
	defer close(d.done)
	for {
		var target LSN
		select {
		case <-d.stop:
			d.finalFlush()
			return
		case target = <-d.req:
		}
		n := uint64(1)
		if d.interval > 0 {
			// Batching window: absorb targets arriving within interval.
			timer := time.NewTimer(d.interval)
		window:
			for {
				select {
				case t := <-d.req:
					n++
					if t > target {
						target = t
					}
				case <-timer.C:
					break window
				case <-d.stop:
					timer.Stop()
					d.flush(target, n)
					d.finalFlush()
					return
				}
			}
		}
		// Drain whatever else is already queued — this is where batching
		// comes from when no window is configured: targets that arrived
		// during the previous flush coalesce here.
	drain:
		for {
			select {
			case t := <-d.req:
				n++
				if t > target {
					target = t
				}
			default:
				break drain
			}
		}
		d.flush(target, n)
	}
}

// flush covers target and records batch stats. A flush failure is
// retried a few times (transient store hiccups); if it persists the log
// cannot guarantee durability anymore, so the daemon closes the manager —
// failing every outstanding and future subscription with ErrLogClosed
// rather than leaving committers blocked forever on a horizon that will
// never advance.
func (d *FlushDaemon) flush(target LSN, n uint64) {
	if d.killed.Load() {
		return // crash semantics: no flush on the way down
	}
	d.batches.Add(1)
	for {
		old := d.maxBatch.Load()
		if n <= old || d.maxBatch.CompareAndSwap(old, n) {
			break
		}
	}
	for attempt := 0; ; attempt++ {
		err := d.mgr.Flush(target)
		if err == nil || err == ErrLogClosed {
			return
		}
		if attempt >= flushRetries {
			_ = d.mgr.Close()
			return
		}
		time.Sleep(time.Millisecond << attempt)
	}
}

// flushRetries bounds re-attempts of a failing store flush before the
// daemon gives the log up for dead.
const flushRetries = 3

// finalFlush hardens everything still queued at close.
func (d *FlushDaemon) finalFlush() {
	if d.killed.Load() {
		return // crash semantics: abandon the queue
	}
	var target LSN
	n := uint64(0)
	for {
		select {
		case t := <-d.req:
			n++
			if t > target {
				target = t
			}
		default:
			if n > 0 {
				d.flush(target, n)
			}
			return
		}
	}
}

// Close stops the daemon after hardening everything already queued.
func (d *FlushDaemon) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	close(d.stop)
	<-d.done
	return nil
}

// Kill stops the daemon without flushing, simulating a crash: queued
// commit LSNs are abandoned and their transactions must be resolved by
// restart recovery.
func (d *FlushDaemon) Kill() {
	if d.closed.Swap(true) {
		return
	}
	d.killed.Store(true)
	close(d.stop)
	<-d.done
}

// Stats returns a counter snapshot.
func (d *FlushDaemon) Stats() DaemonStats {
	return DaemonStats{
		Batches:   d.batches.Load(),
		Requests:  d.requests.Load(),
		MaxBatch:  d.maxBatch.Load(),
		DurableTo: d.mgr.DurableLSN(),
	}
}
