package wal

import (
	"bytes"
	"errors"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func allDesigns() []Design {
	return []Design{DesignCoupled, DesignDecoupled, DesignConsolidated}
}

func TestRecordRoundTrip(t *testing.T) {
	r := &Record{
		Type:     RecUpdate,
		TxID:     77,
		PrevLSN:  123,
		Page:     9,
		UndoNext: 456,
		Redo:     []byte("redo-bytes"),
		Undo:     []byte("undo"),
	}
	buf := make([]byte, r.EncodedSize())
	n, err := r.Encode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != r.EncodedSize() {
		t.Fatalf("encoded %d bytes, want %d", n, r.EncodedSize())
	}
	got, m, err := DecodeRecord(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("decoded length %d, want %d", m, n)
	}
	if got.Type != r.Type || got.TxID != r.TxID || got.PrevLSN != r.PrevLSN ||
		got.Page != r.Page || got.UndoNext != r.UndoNext ||
		!bytes.Equal(got.Redo, r.Redo) || !bytes.Equal(got.Undo, r.Undo) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
}

func TestRecordDecodeErrors(t *testing.T) {
	r := &Record{Type: RecTxCommit, TxID: 1}
	buf := make([]byte, r.EncodedSize())
	if _, err := r.Encode(buf); err != nil {
		t.Fatal(err)
	}
	// Truncated.
	if _, _, err := DecodeRecord(buf[:10]); !errors.Is(err, ErrBadRecord) {
		t.Errorf("truncated decode = %v", err)
	}
	// Corrupted byte.
	bad := append([]byte(nil), buf...)
	bad[recHeaderSize-1] ^= 0xff
	if _, _, err := DecodeRecord(bad); !errors.Is(err, ErrBadRecord) {
		t.Errorf("corrupt decode = %v", err)
	}
	// Oversized payload rejected at encode.
	huge := &Record{Type: RecUpdate, Redo: make([]byte, MaxPayload+1)}
	if _, err := huge.Encode(make([]byte, MaxPayload+1024)); err != ErrRecordTooLarge {
		t.Errorf("oversized encode = %v", err)
	}
	// Short buffer at encode.
	if _, err := r.Encode(make([]byte, 4)); err == nil {
		t.Error("short-buffer encode succeeded")
	}
}

func TestRecordQuickRoundTrip(t *testing.T) {
	f := func(txid uint64, prev, undoNext uint64, pid uint64, redo, undo []byte, typ uint8) bool {
		if len(redo)+len(undo) > MaxPayload {
			return true
		}
		r := &Record{
			Type: RecType(typ%9 + 1), TxID: txid, PrevLSN: LSN(prev),
			Page: 0, UndoNext: LSN(undoNext), Redo: redo, Undo: undo,
		}
		_ = pid
		buf := make([]byte, r.EncodedSize())
		if _, err := r.Encode(buf); err != nil {
			return false
		}
		got, _, err := DecodeRecord(buf)
		if err != nil {
			return false
		}
		return got.TxID == r.TxID && bytes.Equal(got.Redo, r.Redo) && bytes.Equal(got.Undo, r.Undo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func testManagerBasics(t *testing.T, d Design) {
	store := NewMemStore()
	m := New(store, Options{Design: d, BufferSize: 1 << 16})
	defer m.Close()

	var lsns []LSN
	for i := 0; i < 100; i++ {
		rec := &Record{Type: RecUpdate, TxID: uint64(i), Redo: []byte("payload")}
		lsn, err := m.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn == NullLSN {
			t.Fatal("got null LSN")
		}
		if len(lsns) > 0 && lsn <= lsns[len(lsns)-1] {
			t.Fatalf("LSNs not increasing: %v then %v", lsns[len(lsns)-1], lsn)
		}
		lsns = append(lsns, lsn)
	}
	// Nothing necessarily durable yet; flush all.
	if err := m.Flush(m.CurLSN()); err != nil {
		t.Fatal(err)
	}
	if m.DurableLSN() < lsns[len(lsns)-1] {
		t.Fatalf("durable %v < last insert %v", m.DurableLSN(), lsns[len(lsns)-1])
	}
	// Scan back.
	sc := NewScanner(store, NullLSN)
	i := 0
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.LSN != lsns[i] {
			t.Fatalf("record %d LSN = %v, want %v", i, rec.LSN, lsns[i])
		}
		if rec.TxID != uint64(i) || string(rec.Redo) != "payload" {
			t.Fatalf("record %d content mismatch: %+v", i, rec)
		}
		i++
	}
	if i != 100 {
		t.Fatalf("scanned %d records, want 100", i)
	}
	// Stats sane.
	st := m.Stats()
	if st.Inserts != 100 || st.InsertedBytes == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestManagerBasics(t *testing.T) {
	for _, d := range allDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) { testManagerBasics(t, d) })
	}
}

func testManagerConcurrent(t *testing.T, d Design) {
	store := NewMemStore()
	m := New(store, Options{Design: d, BufferSize: 1 << 14}) // small: forces wrap + waits
	defer m.Close()

	const g, n = 8, 300
	var wg sync.WaitGroup
	var mu sync.Mutex
	all := make(map[LSN]uint64)
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				id := uint64(w*n + i)
				rec := &Record{Type: RecUpdate, TxID: id, Redo: bytes.Repeat([]byte{byte(w)}, 16+i%64)}
				lsn, err := m.Insert(rec)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if _, dup := all[lsn]; dup {
					t.Errorf("duplicate LSN %v", lsn)
				}
				all[lsn] = id
				mu.Unlock()
				if i%50 == 0 {
					if err := m.Flush(lsn + 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := m.Flush(m.CurLSN()); err != nil {
		t.Fatal(err)
	}
	// Scan: every record must be intact and match what we inserted.
	sc := NewScanner(store, NullLSN)
	count := 0
	for {
		rec, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		want, ok := all[rec.LSN]
		if !ok {
			t.Fatalf("scanned unknown LSN %v", rec.LSN)
		}
		if rec.TxID != want {
			t.Fatalf("LSN %v txid = %d, want %d", rec.LSN, rec.TxID, want)
		}
		count++
	}
	if count != g*n {
		t.Fatalf("scanned %d records, want %d", count, g*n)
	}
}

func TestManagerConcurrent(t *testing.T) {
	for _, d := range allDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) { testManagerConcurrent(t, d) })
	}
}

func TestCrashLosesUnflushedTail(t *testing.T) {
	for _, d := range allDesigns() {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			store := NewMemStore()
			m := New(store, Options{Design: d, BufferSize: 1 << 16})
			var durableLSN LSN
			for i := 0; i < 50; i++ {
				rec := &Record{Type: RecUpdate, TxID: uint64(i), Redo: []byte("x")}
				lsn, err := m.Insert(rec)
				if err != nil {
					t.Fatal(err)
				}
				if i == 29 {
					if err := m.Flush(lsn + LSN(rec.EncodedSize())); err != nil {
						t.Fatal(err)
					}
					durableLSN = m.DurableLSN()
				}
			}
			// Crash without closing: drop the volatile tail.
			store.Crash()
			sc := NewScanner(store, NullLSN)
			var got []uint64
			for {
				rec, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, rec.TxID)
			}
			if len(got) < 30 {
				t.Fatalf("only %d records survived; at least 30 were durable (durable=%v)", len(got), durableLSN)
			}
			for i, id := range got {
				if id != uint64(i) {
					t.Fatalf("record %d has txid %d", i, id)
				}
			}
			m.Close()
		})
	}
}

func TestReadRecordAt(t *testing.T) {
	store := NewMemStore()
	m := New(store, Options{Design: DesignConsolidated})
	defer m.Close()
	rec := &Record{Type: RecUpdate, TxID: 5, Redo: []byte("abc")}
	lsn, err := m.Insert(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(m.CurLSN()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecordAt(store, lsn)
	if err != nil {
		t.Fatal(err)
	}
	if got.TxID != 5 || string(got.Redo) != "abc" || got.LSN != lsn {
		t.Fatalf("ReadRecordAt = %+v", got)
	}
	if _, err := ReadRecordAt(store, 3); err == nil {
		t.Error("ReadRecordAt before log start succeeded")
	}
}

func TestInsertAfterClose(t *testing.T) {
	for _, d := range allDesigns() {
		m := New(NewMemStore(), Options{Design: d})
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := m.Insert(&Record{Type: RecUpdate}); err != ErrLogClosed {
			t.Errorf("%v: insert after close = %v", d, err)
		}
		// Double close is fine.
		if err := m.Close(); err != nil {
			t.Errorf("%v: double close = %v", d, err)
		}
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	for _, d := range allDesigns() {
		m := New(NewMemStore(), Options{Design: d, BufferSize: 4096})
		rec := &Record{Type: RecUpdate, Redo: make([]byte, 8192)}
		if _, err := m.Insert(rec); err != ErrRecordTooLarge {
			t.Errorf("%v: oversized insert = %v", d, err)
		}
		m.Close()
	}
}

func TestCheckpointDataRoundTrip(t *testing.T) {
	c := &CheckpointData{
		BeginLSN: 99,
		Txs: []TxInfo{
			{TxID: 1, LastLSN: 10, UndoNext: 5},
			{TxID: 2, LastLSN: 20, UndoNext: 20},
		},
		Dirty: []DirtyInfo{{Page: 7, RecLSN: 3}, {Page: 8, RecLSN: 4}},
	}
	got, err := DecodeCheckpoint(c.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.BeginLSN != 99 || len(got.Txs) != 2 || len(got.Dirty) != 2 {
		t.Fatalf("decoded %+v", got)
	}
	if got.Txs[1].TxID != 2 || got.Txs[1].LastLSN != 20 {
		t.Fatalf("tx mismatch: %+v", got.Txs)
	}
	if got.Dirty[0].Page != 7 || got.Dirty[0].RecLSN != 3 {
		t.Fatalf("dirty mismatch: %+v", got.Dirty)
	}
	// Truncated payloads.
	if _, err := DecodeCheckpoint(nil); err == nil {
		t.Error("nil payload decoded")
	}
	if _, err := DecodeCheckpoint(c.Encode()[:30]); err == nil {
		t.Error("truncated payload decoded")
	}
	// Empty checkpoint.
	empty := &CheckpointData{}
	got2, err := DecodeCheckpoint(empty.Encode())
	if err != nil || len(got2.Txs) != 0 || len(got2.Dirty) != 0 {
		t.Errorf("empty checkpoint round trip: %+v, %v", got2, err)
	}
}

func TestFileStorePersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log")
	store, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	m := New(store, Options{Design: DesignDecoupled})
	var lastLSN LSN
	for i := 0; i < 10; i++ {
		lsn, err := m.Insert(&Record{Type: RecUpdate, TxID: uint64(i), Redo: []byte("p")})
		if err != nil {
			t.Fatal(err)
		}
		lastLSN = lsn
	}
	if err := m.Flush(m.CurLSN()); err != nil {
		t.Fatal(err)
	}
	if err := store.SetMaster(lastLSN); err != nil {
		t.Fatal(err)
	}
	m.Close()
	store.Close()

	store2, err := OpenFileStore(path)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	master, err := store2.Master()
	if err != nil || master != lastLSN {
		t.Fatalf("master = %v, %v; want %v", master, err, lastLSN)
	}
	sc := NewScanner(store2, NullLSN)
	count := 0
	for {
		_, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 10 {
		t.Fatalf("reopened log has %d records, want 10", count)
	}
	// A new manager must continue appending after the existing tail.
	m2 := New(store2, Options{Design: DesignCoupled})
	lsn, err := m2.Insert(&Record{Type: RecTxCommit, TxID: 42})
	if err != nil {
		t.Fatal(err)
	}
	if lsn <= lastLSN {
		t.Fatalf("appended LSN %v not beyond old tail %v", lsn, lastLSN)
	}
	m2.Close()
}

func TestMemStoreMaster(t *testing.T) {
	s := NewMemStore()
	if master, _ := s.Master(); master != NullLSN {
		t.Fatalf("fresh master = %v", master)
	}
	if err := s.SetMaster(88); err != nil {
		t.Fatal(err)
	}
	if master, _ := s.Master(); master != 88 {
		t.Fatalf("master = %v, want 88", master)
	}
}

func TestGroupCommitSharedFlush(t *testing.T) {
	store := NewMemStore()
	m := New(store, Options{Design: DesignConsolidated})
	defer m.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lsn, err := m.Insert(&Record{Type: RecTxCommit, TxID: uint64(w)})
			if err != nil {
				t.Error(err)
				return
			}
			if err := m.Flush(lsn + 1); err != nil {
				t.Error(err)
				return
			}
			if m.DurableLSN() <= lsn {
				t.Errorf("flush returned but durable %v <= %v", m.DurableLSN(), lsn)
			}
		}(w)
	}
	wg.Wait()
	// Group commit should have needed far fewer store flushes than commits,
	// but at minimum it must have flushed at least once.
	if m.Stats().Flushes == 0 {
		t.Error("no flushes recorded")
	}
}

func TestDesignString(t *testing.T) {
	if DesignCoupled.String() != "coupled" || DesignDecoupled.String() != "decoupled" ||
		DesignConsolidated.String() != "consolidated" || Design(9).String() != "unknown" {
		t.Error("Design.String mismatch")
	}
	for _, rt := range []RecType{RecUpdate, RecCLR, RecTxBegin, RecTxCommit, RecTxAbort, RecTxEnd, RecCkptBegin, RecCkptEnd, RecFormat} {
		if rt.String() == "" {
			t.Error("empty RecType string")
		}
	}
	if LSN(5).String() != "lsn:5" {
		t.Error("LSN.String mismatch")
	}
}
