package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/page"
)

// Scanner iterates log records in LSN order directly from a Store. It is
// the read path of recovery: it stops cleanly (io.EOF) at the end of the
// valid log — whether that end comes from the durable boundary, a zeroed
// region, or a torn record whose checksum fails.
type Scanner struct {
	store Store
	off   int64
	limit int64
}

// NewScanner scans from LSN `from` (NullLSN means the start of the log) up
// to the durable boundary of store.
func NewScanner(store Store, from LSN) *Scanner {
	off := int64(from)
	if off < logHeaderSize {
		off = logHeaderSize
	}
	return &Scanner{store: store, off: off, limit: store.DurableSize()}
}

// Next returns the next record and its LSN. It returns io.EOF at the end
// of the valid log.
func (s *Scanner) Next() (*Record, error) {
	if s.off+recHeaderSize+recTrailerSize > s.limit {
		return nil, io.EOF
	}
	var lenBuf [4]byte
	if _, err := s.store.ReadAt(lenBuf[:], s.off); err != nil {
		return nil, io.EOF
	}
	total := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if total < recHeaderSize+recTrailerSize || total > recHeaderSize+MaxPayload+recTrailerSize {
		return nil, io.EOF // zeroed or garbage region: end of log
	}
	if s.off+int64(total) > s.limit {
		return nil, io.EOF // torn tail
	}
	buf := make([]byte, total)
	if _, err := s.store.ReadAt(buf, s.off); err != nil {
		return nil, io.EOF
	}
	rec, n, err := DecodeRecord(buf)
	if err != nil {
		if errors.Is(err, ErrBadRecord) {
			return nil, io.EOF // corrupt tail: end of log
		}
		return nil, err
	}
	rec.LSN = LSN(s.off)
	s.off += int64(n)
	return rec, nil
}

// ReadRecordAt reads the single record at lsn. Unlike Scanner, corruption
// here is a hard error: undo follows PrevLSN chains and a broken link is
// unrecoverable.
func ReadRecordAt(store Store, lsn LSN) (*Record, error) {
	if lsn < logHeaderSize {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): before log start", lsn)
	}
	var lenBuf [4]byte
	if _, err := store.ReadAt(lenBuf[:], int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	total := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if total < recHeaderSize+recTrailerSize || total > recHeaderSize+MaxPayload+recTrailerSize {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, ErrBadRecord)
	}
	buf := make([]byte, total)
	if _, err := store.ReadAt(buf, int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	rec, _, err := DecodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	rec.LSN = lsn
	return rec, nil
}

// TxInfo describes an active transaction inside a checkpoint.
type TxInfo struct {
	TxID     uint64
	LastLSN  LSN
	UndoNext LSN
}

// DirtyInfo describes a dirty page inside a checkpoint: RecLSN is the LSN
// of the earliest record that may not yet be reflected on disk.
type DirtyInfo struct {
	Page   page.ID
	RecLSN LSN
}

// CheckpointData is the payload of a RecCkptEnd record: the active
// transaction table and the dirty page table at checkpoint time.
type CheckpointData struct {
	BeginLSN LSN // LSN of the matching RecCkptBegin
	Txs      []TxInfo
	Dirty    []DirtyInfo
}

// Encode serializes the checkpoint payload.
func (c *CheckpointData) Encode() []byte {
	b := make([]byte, 0, 24+len(c.Txs)*24+len(c.Dirty)*16)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	put(uint64(c.BeginLSN))
	put(uint64(len(c.Txs)))
	put(uint64(len(c.Dirty)))
	for _, t := range c.Txs {
		put(t.TxID)
		put(uint64(t.LastLSN))
		put(uint64(t.UndoNext))
	}
	for _, d := range c.Dirty {
		put(uint64(d.Page))
		put(uint64(d.RecLSN))
	}
	return b
}

// DecodeCheckpoint parses a checkpoint payload.
func DecodeCheckpoint(b []byte) (*CheckpointData, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("%w: checkpoint payload too short", ErrBadRecord)
	}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	c := &CheckpointData{BeginLSN: LSN(get(0))}
	nTx := int(get(8))
	nDirty := int(get(16))
	want := 24 + nTx*24 + nDirty*16
	if len(b) < want {
		return nil, fmt.Errorf("%w: checkpoint payload truncated", ErrBadRecord)
	}
	off := 24
	for i := 0; i < nTx; i++ {
		c.Txs = append(c.Txs, TxInfo{
			TxID:     get(off),
			LastLSN:  LSN(get(off + 8)),
			UndoNext: LSN(get(off + 16)),
		})
		off += 24
	}
	for i := 0; i < nDirty; i++ {
		c.Dirty = append(c.Dirty, DirtyInfo{
			Page:   page.ID(get(off)),
			RecLSN: LSN(get(off + 8)),
		})
		off += 16
	}
	return c, nil
}
