package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/page"
)

// Scanner iterates log records in LSN order directly from a Store. It is
// the read path of recovery, and it renders one of two verdicts at the
// end of the written log:
//
//   - A bad record at or above the store's durable horizon is an expected
//     torn tail — the crash interrupted an in-flight write — so the scan
//     ends cleanly (io.EOF) and TornBytes reports what must be clipped.
//   - A bad record *below* the horizon means provably-durable log bytes
//     were damaged: the scan fails with a wrapped ErrCorrupt carrying
//     segment/offset context, and startup must refuse rather than
//     silently truncate committed work.
type Scanner struct {
	store   Store
	off     int64
	limit   int64
	horizon int64
	torn    int64
}

// NewScanner scans from LSN `from` (NullLSN means the start of the log)
// to the end of the written log.
func NewScanner(store Store, from LSN) *Scanner {
	off := int64(from)
	if off < logHeaderSize {
		off = logHeaderSize
	}
	return &Scanner{store: store, off: off, limit: store.Size(), horizon: int64(store.Horizon())}
}

// End returns the offset where the scan stopped: the end of the valid log
// once Next has returned io.EOF.
func (s *Scanner) End() int64 { return s.off }

// TornBytes returns how many trailing bytes were classified as a torn
// tail (valid only after Next returned io.EOF).
func (s *Scanner) TornBytes() int64 { return s.torn }

// verdict classifies a bad record at the scan position: torn tail above
// the horizon (clean EOF), corruption below it.
func (s *Scanner) verdict(cause error) (*Record, error) {
	if s.off < s.horizon {
		return nil, corruptAt(s.store, s.off, cause)
	}
	s.torn = s.limit - s.off
	return nil, io.EOF
}

// corruptAt wraps cause in ErrCorrupt with segment/offset context.
func corruptAt(store Store, off int64, cause error) error {
	if sb, ok := store.(interface{ SegmentBytes() int64 }); ok {
		segBytes := sb.SegmentBytes()
		return fmt.Errorf("%w: segment %d offset %d (lsn %d): %v",
			ErrCorrupt, off/segBytes, off%segBytes, off, cause)
	}
	return fmt.Errorf("%w: offset %d: %v", ErrCorrupt, off, cause)
}

// Next returns the next record and its LSN. It returns io.EOF at the end
// of the valid log and ErrCorrupt for damage below the durable horizon.
func (s *Scanner) Next() (*Record, error) {
	if s.off >= s.limit {
		return nil, io.EOF
	}
	if s.off+recHeaderSize+recTrailerSize > s.limit {
		return s.verdict(fmt.Errorf("%w: truncated header", ErrBadRecord))
	}
	var lenBuf [4]byte
	if _, err := s.store.ReadAt(lenBuf[:], s.off); err != nil {
		return s.verdict(err)
	}
	total := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if total < recHeaderSize+recTrailerSize || total > recHeaderSize+MaxPayload+recTrailerSize {
		return s.verdict(fmt.Errorf("%w: bad length %d", ErrBadRecord, total))
	}
	if s.off+int64(total) > s.limit {
		return s.verdict(fmt.Errorf("%w: truncated body", ErrBadRecord))
	}
	buf := make([]byte, total)
	if _, err := s.store.ReadAt(buf, s.off); err != nil {
		return s.verdict(err)
	}
	rec, n, err := DecodeRecord(buf)
	if err != nil {
		if errors.Is(err, ErrBadRecord) {
			return s.verdict(err)
		}
		return nil, err
	}
	rec.LSN = LSN(s.off)
	s.off += int64(n)
	return rec, nil
}

// CheckTail validates the log suffix from the last checkpoint and
// classifies its end: the offset of the last valid record boundary, the
// number of torn trailing bytes to clip, or an ErrCorrupt if damage lies
// below the durable horizon. It must run (and the tail be clipped via
// Truncate) before any log manager captures the store's size.
func CheckTail(store Store) (end int64, torn int64, err error) {
	master, err := store.Master()
	if err != nil {
		return 0, 0, err
	}
	if int64(master) > store.Size() {
		return 0, 0, fmt.Errorf("%w: master checkpoint %v beyond log end %d — log tail missing",
			ErrCorrupt, master, store.Size())
	}
	sc := NewScanner(store, master)
	for {
		_, e := sc.Next()
		if errors.Is(e, io.EOF) {
			break
		}
		if e != nil {
			return 0, 0, e
		}
	}
	return sc.End(), sc.TornBytes(), nil
}

// ReadRecordAt reads the single record at lsn. Unlike Scanner, corruption
// here is a hard error: undo follows PrevLSN chains and a broken link is
// unrecoverable.
func ReadRecordAt(store Store, lsn LSN) (*Record, error) {
	if lsn < logHeaderSize {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w: before log start", lsn, ErrInvalidLSN)
	}
	var lenBuf [4]byte
	if _, err := store.ReadAt(lenBuf[:], int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	total := int(binary.LittleEndian.Uint32(lenBuf[:]))
	if total < recHeaderSize+recTrailerSize || total > recHeaderSize+MaxPayload+recTrailerSize {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, ErrBadRecord)
	}
	buf := make([]byte, total)
	if _, err := store.ReadAt(buf, int64(lsn)); err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	rec, _, err := DecodeRecord(buf)
	if err != nil {
		return nil, fmt.Errorf("wal: ReadRecordAt(%v): %w", lsn, err)
	}
	rec.LSN = lsn
	return rec, nil
}

// TxInfo describes an active transaction inside a checkpoint.
type TxInfo struct {
	TxID     uint64
	LastLSN  LSN
	UndoNext LSN
}

// DirtyInfo describes a dirty page inside a checkpoint: RecLSN is the LSN
// of the earliest record that may not yet be reflected on disk.
type DirtyInfo struct {
	Page   page.ID
	RecLSN LSN
}

// CheckpointData is the payload of a RecCkptEnd record: the active
// transaction table and the dirty page table at checkpoint time.
type CheckpointData struct {
	BeginLSN LSN // LSN of the matching RecCkptBegin
	Txs      []TxInfo
	Dirty    []DirtyInfo
}

// Encode serializes the checkpoint payload.
func (c *CheckpointData) Encode() []byte {
	b := make([]byte, 0, 24+len(c.Txs)*24+len(c.Dirty)*16)
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		b = append(b, tmp[:]...)
	}
	put(uint64(c.BeginLSN))
	put(uint64(len(c.Txs)))
	put(uint64(len(c.Dirty)))
	for _, t := range c.Txs {
		put(t.TxID)
		put(uint64(t.LastLSN))
		put(uint64(t.UndoNext))
	}
	for _, d := range c.Dirty {
		put(uint64(d.Page))
		put(uint64(d.RecLSN))
	}
	return b
}

// DecodeCheckpoint parses a checkpoint payload.
func DecodeCheckpoint(b []byte) (*CheckpointData, error) {
	if len(b) < 24 {
		return nil, fmt.Errorf("%w: checkpoint payload too short", ErrBadRecord)
	}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
	c := &CheckpointData{BeginLSN: LSN(get(0))}
	nTx := int(get(8))
	nDirty := int(get(16))
	want := 24 + nTx*24 + nDirty*16
	if len(b) < want {
		return nil, fmt.Errorf("%w: checkpoint payload truncated", ErrBadRecord)
	}
	off := 24
	for i := 0; i < nTx; i++ {
		c.Txs = append(c.Txs, TxInfo{
			TxID:     get(off),
			LastLSN:  LSN(get(off + 8)),
			UndoNext: LSN(get(off + 16)),
		})
		off += 24
	}
	for i := 0; i < nDirty; i++ {
		c.Dirty = append(c.Dirty, DirtyInfo{
			Page:   page.ID(get(off)),
			RecLSN: LSN(get(off + 8)),
		})
		off += 16
	}
	return c, nil
}
