package wal

import (
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/sync2"
)

// Design selects a log-manager implementation.
type Design int

// Log manager designs, in the order Shore-MT's development produced them.
const (
	DesignCoupled      Design = iota // original Shore: global mutex, sync flush
	DesignDecoupled                  // §6.2.2: circular buffer, split mutexes
	DesignConsolidated               // §6.2.4: queuing-lock buffer, parallel copy
)

// String names the design.
func (d Design) String() string {
	switch d {
	case DesignCoupled:
		return "coupled"
	case DesignDecoupled:
		return "decoupled"
	case DesignConsolidated:
		return "consolidated"
	default:
		return "unknown"
	}
}

// Manager is the log manager interface shared by all three designs.
type Manager interface {
	// Insert appends rec to the log, assigning and returning its LSN.
	// Durability is NOT guaranteed until Flush covers the LSN.
	Insert(rec *Record) (LSN, error)
	// InsertCLR appends a compensation record; same contract as Insert but,
	// in the decoupled design, uses the dedicated compensation mutex.
	InsertCLR(rec *Record) (LSN, error)
	// Flush blocks until every record with LSN < upTo is durable
	// (group commit: concurrent callers share flushes).
	Flush(upTo LSN) error
	// CurLSN returns the LSN that the next inserted record would receive.
	CurLSN() LSN
	// DurableLSN returns the boundary below which all records are durable.
	DurableLSN() LSN
	// Subscribe returns a channel that receives nil once every record with
	// LSN < upTo is durable, or ErrLogClosed if the manager closes first.
	// Subscribe is passive: it never triggers a flush, so a subscription
	// completes only when Flush (or a flush daemon) advances the boundary
	// past upTo. The channel is buffered; the manager never blocks on it.
	Subscribe(upTo LSN) <-chan error
	// Stats returns contention and traffic counters.
	Stats() ManagerStats
	// Close stops background daemons and flushes everything.
	Close() error
}

// ManagerStats aggregates log-manager activity.
type ManagerStats struct {
	Inserts       uint64
	InsertedBytes uint64
	Flushes       uint64
	FlushedBytes  uint64
	InsertWaits   uint64 // times an insert waited on buffer space
	Lock          sync2.Stats
}

// ErrLogClosed is returned by operations on a closed manager.
var ErrLogClosed = errors.New("wal: log manager closed")

// Options configures log-manager construction.
type Options struct {
	Design     Design
	BufferSize int // log buffer bytes; 0 selects a default
}

// DefaultBufferSize is used when Options.BufferSize is zero.
const DefaultBufferSize = 1 << 20

// New constructs a Manager of the requested design over store.
func New(store Store, opts Options) Manager {
	size := opts.BufferSize
	if size <= 0 {
		size = DefaultBufferSize
	}
	switch opts.Design {
	case DesignDecoupled:
		return newDecoupled(store, size)
	case DesignConsolidated:
		return newConsolidated(store, size)
	default:
		return newCoupled(store, size)
	}
}

// groupCommit implements shared flush waiting: callers block until the
// durable LSN passes their target, and a single flusher satisfies many
// waiters at once. It also carries the asynchronous side of the same
// contract: durable-LSN subscriptions, resolved by whoever advances the
// boundary (the commit pipeline's notify stage rides on this).
type groupCommit struct {
	mu      sync.Mutex
	cond    *sync.Cond
	durable atomic.Uint64
	subs    []gcSub // outstanding subscriptions, unordered
	failErr error   // once set, new subscriptions fail immediately
}

// gcSub is one durable-LSN subscription.
type gcSub struct {
	upTo LSN
	ch   chan error
}

func newGroupCommit() *groupCommit {
	g := &groupCommit{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// advance publishes a new durable boundary, wakes waiters, and resolves
// satisfied subscriptions.
func (g *groupCommit) advance(to LSN) {
	for {
		old := g.durable.Load()
		if uint64(to) <= old {
			return
		}
		if g.durable.CompareAndSwap(old, uint64(to)) {
			break
		}
	}
	g.mu.Lock()
	g.cond.Broadcast()
	if len(g.subs) > 0 {
		durable := g.get()
		kept := g.subs[:0]
		for _, s := range g.subs {
			if s.upTo <= durable {
				s.ch <- nil // buffered: never blocks
			} else {
				kept = append(kept, s)
			}
		}
		g.subs = kept
	}
	g.mu.Unlock()
}

// subscribe registers a durable-LSN subscription. The returned channel is
// buffered and receives exactly one value.
func (g *groupCommit) subscribe(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	if g.get() >= upTo {
		ch <- nil
		return ch
	}
	g.mu.Lock()
	switch {
	case g.get() >= upTo: // raced with advance
		ch <- nil
	case g.failErr != nil:
		ch <- g.failErr
	default:
		g.subs = append(g.subs, gcSub{upTo: upTo, ch: ch})
	}
	g.mu.Unlock()
	return ch
}

// fail resolves every outstanding subscription with err and makes future
// subscriptions fail fast. Called at manager close (after the final drain
// has resolved everything it could) and when the flush daemon hits a
// store failure — a log device that cannot harden bytes must fail
// waiters, not strand them. The first error wins; close-time ErrLogClosed
// never masks a real device error.
func (g *groupCommit) fail(err error) {
	g.mu.Lock()
	if g.failErr == nil {
		g.failErr = err
	}
	for _, s := range g.subs {
		s.ch <- g.failErr
	}
	g.subs = nil
	g.cond.Broadcast()
	g.mu.Unlock()
}

// failed returns the terminal error, if any.
func (g *groupCommit) failed() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.failErr
}

// get returns the durable boundary.
func (g *groupCommit) get() LSN { return LSN(g.durable.Load()) }

// wait blocks until the durable boundary reaches at least upTo, the
// manager fails terminally, or closed returns true.
func (g *groupCommit) wait(upTo LSN, closed func() bool) {
	if g.get() >= upTo {
		return
	}
	g.mu.Lock()
	for g.get() < upTo && g.failErr == nil && !closed() {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// wakeAll wakes every waiter (used at close).
func (g *groupCommit) wakeAll() {
	g.mu.Lock()
	g.cond.Broadcast()
	g.mu.Unlock()
}
