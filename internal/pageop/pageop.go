// Package pageop defines the physiological log payloads of the storage
// manager: small, typed, slot-level page operations that are deterministic
// to redo (guarded by the page LSN) and mechanically invertible for
// physical undo. B-tree record inserts additionally carry *logical* undo
// (key-level), because a structure modification may move a key to another
// page between do and undo (the ARIES/IM approach).
package pageop

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/page"
)

// Kind identifies a physical page operation.
type Kind uint8

// Physical operation kinds.
const (
	KindInvalid    Kind = iota
	KindFormat          // initialize a page: type + store
	KindInsertAt        // index page: insert record at slot index
	KindRemoveAt        // index page: remove record at slot index
	KindUpdateAt        // overwrite record in a slot
	KindHeapInsert      // heap page: place record into a specific slot
	KindHeapDelete      // heap page: tombstone a slot
	KindPageImage       // overwrite the whole page with an after-image
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindFormat:
		return "format"
	case KindInsertAt:
		return "insertAt"
	case KindRemoveAt:
		return "removeAt"
	case KindUpdateAt:
		return "updateAt"
	case KindHeapInsert:
		return "heapInsert"
	case KindHeapDelete:
		return "heapDelete"
	case KindPageImage:
		return "pageImage"
	default:
		return fmt.Sprintf("op%d", uint8(k))
	}
}

// Op is one physical page operation.
type Op struct {
	Kind  Kind
	Slot  uint16    // slot / index position
	PType page.Type // for Format
	Store uint32    // for Format
	Data  []byte    // record bytes (new value for UpdateAt)
	Old   []byte    // previous record bytes (UpdateAt / deletes)
}

// ErrBadOp reports a malformed encoded operation.
var ErrBadOp = errors.New("pageop: malformed operation")

// Encode serializes op.
//
// Layout: kind u8 | slot u16 | ptype u16 | store u32 | dataLen u32 |
// oldLen u32 | data | old.
func (op Op) Encode() []byte {
	b := make([]byte, 17+len(op.Data)+len(op.Old))
	b[0] = byte(op.Kind)
	binary.LittleEndian.PutUint16(b[1:], op.Slot)
	binary.LittleEndian.PutUint16(b[3:], uint16(op.PType))
	binary.LittleEndian.PutUint32(b[5:], op.Store)
	binary.LittleEndian.PutUint32(b[9:], uint32(len(op.Data)))
	binary.LittleEndian.PutUint32(b[13:], uint32(len(op.Old)))
	copy(b[17:], op.Data)
	copy(b[17+len(op.Data):], op.Old)
	return b
}

// Decode parses an encoded operation.
func Decode(b []byte) (Op, error) {
	if len(b) < 17 {
		return Op{}, fmt.Errorf("%w: short header", ErrBadOp)
	}
	dataLen := int(binary.LittleEndian.Uint32(b[9:]))
	oldLen := int(binary.LittleEndian.Uint32(b[13:]))
	if len(b) < 17+dataLen+oldLen {
		return Op{}, fmt.Errorf("%w: truncated payload", ErrBadOp)
	}
	op := Op{
		Kind:  Kind(b[0]),
		Slot:  binary.LittleEndian.Uint16(b[1:]),
		PType: page.Type(binary.LittleEndian.Uint16(b[3:])),
		Store: binary.LittleEndian.Uint32(b[5:]),
	}
	if dataLen > 0 {
		op.Data = append([]byte(nil), b[17:17+dataLen]...)
	}
	if oldLen > 0 {
		op.Old = append([]byte(nil), b[17+dataLen:17+dataLen+oldLen]...)
	}
	return op, nil
}

// Apply executes op against p. Redo idempotence is the caller's job (the
// page-LSN gate); Apply itself assumes the page is in the pre-op state.
func Apply(p *page.Page, op Op) error {
	switch op.Kind {
	case KindFormat:
		p.Init(p.PID(), op.PType, op.Store)
		return nil
	case KindInsertAt:
		return p.InsertAt(int(op.Slot), op.Data)
	case KindRemoveAt:
		return p.RemoveAt(int(op.Slot))
	case KindUpdateAt:
		return p.Update(int(op.Slot), op.Data)
	case KindHeapInsert:
		return p.PlaceAt(int(op.Slot), op.Data)
	case KindHeapDelete:
		return p.Delete(int(op.Slot))
	case KindPageImage:
		if len(op.Data) != page.Size {
			return fmt.Errorf("%w: page image is %d bytes", ErrBadOp, len(op.Data))
		}
		copy(p.Bytes(), op.Data)
		return nil
	default:
		return fmt.Errorf("%w: kind %d", ErrBadOp, op.Kind)
	}
}

// Invert returns the physical inverse of op, or ok=false for operations
// that have no physical inverse (Format) or that require logical undo.
func Invert(op Op) (Op, bool) {
	switch op.Kind {
	case KindInsertAt:
		return Op{Kind: KindRemoveAt, Slot: op.Slot, Data: op.Data}, true
	case KindRemoveAt:
		return Op{Kind: KindInsertAt, Slot: op.Slot, Data: op.Data}, true
	case KindUpdateAt:
		return Op{Kind: KindUpdateAt, Slot: op.Slot, Data: op.Old, Old: op.Data}, true
	case KindHeapInsert:
		return Op{Kind: KindHeapDelete, Slot: op.Slot, Old: op.Data}, true
	case KindHeapDelete:
		return Op{Kind: KindHeapInsert, Slot: op.Slot, Data: op.Old}, true
	default:
		return Op{}, false
	}
}

// Logical undo descriptors -------------------------------------------------

// LogicalKind identifies a logical (re-traversing) undo action.
type LogicalKind uint8

// Logical undo kinds.
const (
	LogicalNone        LogicalKind = iota
	LogicalBTreeDelete             // undo of a B-tree insert: delete the key
	LogicalBTreeInsert             // undo of a B-tree delete: re-insert key→value
	LogicalBTreeUpdate             // undo of a B-tree update: restore key→old value
)

// Logical is a logical undo descriptor.
type Logical struct {
	Kind  LogicalKind
	Store uint32
	Key   []byte
	Value []byte
}

// logicalTag distinguishes logical undo payloads from physical ones in the
// undo field of a log record (physical ops start with a Kind < 0x80).
const logicalTag = 0xf0

// Encode serializes l.
func (l Logical) Encode() []byte {
	b := make([]byte, 14+len(l.Key)+len(l.Value))
	b[0] = logicalTag
	b[1] = byte(l.Kind)
	binary.LittleEndian.PutUint32(b[2:], l.Store)
	binary.LittleEndian.PutUint32(b[6:], uint32(len(l.Key)))
	binary.LittleEndian.PutUint32(b[10:], uint32(len(l.Value)))
	copy(b[14:], l.Key)
	copy(b[14+len(l.Key):], l.Value)
	return b
}

// IsLogical reports whether an undo payload is a logical descriptor.
func IsLogical(b []byte) bool { return len(b) > 0 && b[0] == logicalTag }

// DecodeLogical parses a logical undo descriptor.
func DecodeLogical(b []byte) (Logical, error) {
	if len(b) < 14 || b[0] != logicalTag {
		return Logical{}, fmt.Errorf("%w: not a logical undo", ErrBadOp)
	}
	keyLen := int(binary.LittleEndian.Uint32(b[6:]))
	valLen := int(binary.LittleEndian.Uint32(b[10:]))
	if len(b) < 14+keyLen+valLen {
		return Logical{}, fmt.Errorf("%w: truncated logical undo", ErrBadOp)
	}
	l := Logical{
		Kind:  LogicalKind(b[1]),
		Store: binary.LittleEndian.Uint32(b[2:]),
	}
	if keyLen > 0 {
		l.Key = append([]byte(nil), b[14:14+keyLen]...)
	}
	if valLen > 0 {
		l.Value = append([]byte(nil), b[14+keyLen:14+keyLen+valLen]...)
	}
	return l, nil
}
