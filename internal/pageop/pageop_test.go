package pageop

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/page"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: KindFormat, PType: page.TypeHeap, Store: 7},
		{Kind: KindInsertAt, Slot: 3, Data: []byte("abc")},
		{Kind: KindRemoveAt, Slot: 1, Data: []byte("xyz")},
		{Kind: KindUpdateAt, Slot: 2, Data: []byte("new"), Old: []byte("older")},
		{Kind: KindHeapInsert, Slot: 9, Data: []byte("rec")},
		{Kind: KindHeapDelete, Slot: 4, Old: []byte("gone")},
	}
	for _, op := range ops {
		got, err := Decode(op.Encode())
		if err != nil {
			t.Fatalf("%v: %v", op.Kind, err)
		}
		if got.Kind != op.Kind || got.Slot != op.Slot || got.PType != op.PType ||
			got.Store != op.Store || !bytes.Equal(got.Data, op.Data) || !bytes.Equal(got.Old, op.Old) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, op)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(nil); err == nil {
		t.Error("nil decode succeeded")
	}
	op := Op{Kind: KindInsertAt, Data: []byte("hello")}
	enc := op.Encode()
	if _, err := Decode(enc[:len(enc)-2]); err == nil {
		t.Error("truncated decode succeeded")
	}
}

func TestApplyAndInvertHeap(t *testing.T) {
	p := page.New(1, page.TypeHeap, 5)
	ins := Op{Kind: KindHeapInsert, Slot: 0, Data: []byte("record-a")}
	if err := Apply(p, ins); err != nil {
		t.Fatal(err)
	}
	r, err := p.Record(0)
	if err != nil || string(r) != "record-a" {
		t.Fatalf("after heap insert: %q, %v", r, err)
	}
	inv, ok := Invert(ins)
	if !ok {
		t.Fatal("heap insert has no inverse")
	}
	if err := Apply(p, inv); err != nil {
		t.Fatal(err)
	}
	if p.LiveRecords() != 0 {
		t.Fatal("inverse did not delete the record")
	}
	// Inverse of the inverse re-inserts.
	inv2, ok := Invert(inv)
	if !ok {
		t.Fatal("heap delete has no inverse")
	}
	if err := Apply(p, inv2); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(0); string(r) != "record-a" {
		t.Fatal("double inverse lost the record")
	}
}

func TestApplyAndInvertIndex(t *testing.T) {
	p := page.New(1, page.TypeBTree, 5)
	a := Op{Kind: KindInsertAt, Slot: 0, Data: []byte("k1")}
	b := Op{Kind: KindInsertAt, Slot: 1, Data: []byte("k2")}
	for _, op := range []Op{a, b} {
		if err := Apply(p, op); err != nil {
			t.Fatal(err)
		}
	}
	upd := Op{Kind: KindUpdateAt, Slot: 0, Data: []byte("k1-new"), Old: []byte("k1")}
	if err := Apply(p, upd); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(0); string(r) != "k1-new" {
		t.Fatalf("after update: %q", r)
	}
	inv, _ := Invert(upd)
	if err := Apply(p, inv); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(0); string(r) != "k1" {
		t.Fatalf("after update undo: %q", r)
	}
	rm := Op{Kind: KindRemoveAt, Slot: 0, Data: []byte("k1")}
	if err := Apply(p, rm); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(0); string(r) != "k2" {
		t.Fatalf("after remove: %q", r)
	}
	rmInv, _ := Invert(rm)
	if err := Apply(p, rmInv); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(0); string(r) != "k1" {
		t.Fatal("remove undo failed")
	}
}

func TestApplyFormat(t *testing.T) {
	p := page.New(9, page.TypeFree, 0)
	if err := Apply(p, Op{Kind: KindFormat, PType: page.TypeBTree, Store: 3}); err != nil {
		t.Fatal(err)
	}
	if p.Type() != page.TypeBTree || p.Store() != 3 || p.PID() != 9 {
		t.Fatalf("after format: type=%v store=%d pid=%v", p.Type(), p.Store(), p.PID())
	}
	if _, ok := Invert(Op{Kind: KindFormat}); ok {
		t.Error("format should have no physical inverse")
	}
	if err := Apply(p, Op{Kind: KindInvalid}); err == nil {
		t.Error("invalid op applied")
	}
}

func TestPlaceAtSemantics(t *testing.T) {
	p := page.New(1, page.TypeHeap, 0)
	// Place into slot 3 directly: directory extends with tombstones.
	if err := p.PlaceAt(3, []byte("late")); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 4 {
		t.Fatalf("NumSlots = %d, want 4", p.NumSlots())
	}
	if r, _ := p.Record(3); string(r) != "late" {
		t.Fatal("PlaceAt record wrong")
	}
	// Occupied slot rejected.
	if err := p.PlaceAt(3, []byte("x")); err != page.ErrBadSlot {
		t.Errorf("PlaceAt occupied = %v", err)
	}
	// Tombstone slot acceptable.
	if err := p.PlaceAt(1, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	// Subsequent Insert must reuse remaining tombstones, not clobber.
	s, err := p.Insert([]byte("next"))
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 && s != 2 {
		t.Fatalf("Insert landed in slot %d", s)
	}
}

func TestLogicalRoundTrip(t *testing.T) {
	l := Logical{Kind: LogicalBTreeDelete, Store: 12, Key: []byte("key"), Value: []byte("val")}
	enc := l.Encode()
	if !IsLogical(enc) {
		t.Fatal("IsLogical(enc) = false")
	}
	got, err := DecodeLogical(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != l.Kind || got.Store != 12 || !bytes.Equal(got.Key, l.Key) || !bytes.Equal(got.Value, l.Value) {
		t.Fatalf("logical round trip: %+v", got)
	}
	// Physical payloads are not logical.
	if IsLogical(Op{Kind: KindHeapInsert}.Encode()) {
		t.Error("physical op classified as logical")
	}
	if _, err := DecodeLogical([]byte{1, 2, 3}); err == nil {
		t.Error("bad logical decoded")
	}
}

// TestQuickApplyInvertIsIdentity: applying an op then its inverse restores
// the record content of the touched slot.
func TestQuickApplyInvertIsIdentity(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 || len(data) > 1000 {
			return true
		}
		p := page.New(1, page.TypeHeap, 0)
		op := Op{Kind: KindHeapInsert, Slot: 0, Data: data}
		if err := Apply(p, op); err != nil {
			return false
		}
		inv, ok := Invert(op)
		if !ok || Apply(p, inv) != nil {
			return false
		}
		return p.LiveRecords() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
