//go:build race

package server

// raceEnabled reports a race-instrumented test binary; timing-based
// throughput assertions use a looser tolerance there, since the
// instrumentation overhead of many shedding clients steals CPU from
// the worker pool on small machines.
const raceEnabled = true
