package server

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	shoremt "repro"
	"repro/client"
)

// newSnapshotServer serves a database with multiversion snapshot reads
// enabled, so wire.BatchView batches ride the lock-free View path.
func newSnapshotServer(t testing.TB) *testServer {
	t.Helper()
	db, err := shoremt.Open(shoremt.Options{CleanerInterval: -1, Snapshot: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Options{})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
	})
	return &testServer{db: db, srv: srv, addr: l.Addr().String()}
}

// TestServerViewRidesSnapshotPath: remote View batches on a snapshot
// server acquire no locks at all — the engine's lock counter stays flat
// across them while the mvcc counters climb — and still read correct,
// committed data before and after a concurrent update.
func TestServerViewRidesSnapshotPath(t *testing.T) {
	ts := newSnapshotServer(t)
	c := ts.dial(t)
	ctx := context.Background()

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	if err := c.Update(ctx, func(b *client.Batch) {
		for i := 0; i < n; i++ {
			b.IndexInsert(store, []byte(fmt.Sprintf("k%02d", i)), []byte("v1"))
		}
	}); err != nil {
		t.Fatal(err)
	}

	base := ts.db.Stats()

	const views = 5
	for v := 0; v < views; v++ {
		var g *client.Lookup
		var sc *client.Scanned
		if err := c.View(ctx, func(b *client.Batch) {
			g = b.IndexGet(store, []byte("k00"))
			sc = b.IndexScan(store, nil, nil, 0)
		}); err != nil {
			t.Fatalf("view %d: %v", v, err)
		}
		if !g.Found || string(g.Value) != "v1" {
			t.Fatalf("view get k00 = %q, %v; want v1", g.Value, g.Found)
		}
		if len(sc.KVs) != n {
			t.Fatalf("view scan saw %d keys, want %d", len(sc.KVs), n)
		}
	}

	st := ts.db.Stats()
	if st.Lock.Acquires != base.Lock.Acquires {
		t.Fatalf("remote views acquired locks: %d -> %d", base.Lock.Acquires, st.Lock.Acquires)
	}
	m := st.Mvcc
	if m.Snapshots-base.Mvcc.Snapshots != views {
		t.Fatalf("snapshots begun = %d, want %d", m.Snapshots-base.Mvcc.Snapshots, views)
	}
	if m.SnapshotReads == base.Mvcc.SnapshotReads || m.SnapshotScans == base.Mvcc.SnapshotScans {
		t.Fatalf("mvcc read counters flat: %+v", m)
	}

	// A committed update is visible to the next (fresh) snapshot.
	if err := c.Update(ctx, func(b *client.Batch) {
		b.IndexUpdate(store, []byte("k00"), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
	var g *client.Lookup
	if err := c.View(ctx, func(b *client.Batch) {
		g = b.IndexGet(store, []byte("k00"))
	}); err != nil {
		t.Fatal(err)
	}
	if !g.Found || string(g.Value) != "v2" {
		t.Fatalf("post-update view get k00 = %q, %v; want v2", g.Value, g.Found)
	}
	if got := ts.db.Stats().Mvcc.VersionsInstalled; got == 0 {
		t.Fatal("update installed no versions")
	}
}
