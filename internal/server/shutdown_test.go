package server

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// TestServerForcedShutdownRollsBack closes the server with no drain
// window while a transaction is open: the force phase must tear the
// session down, roll the transaction back and leave no live locks.
func TestServerForcedShutdownRollsBack(t *testing.T) {
	ts := newTestServer(t, Options{})
	ctx := context.Background()
	c := ts.dial(t)

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	if err := ts.srv.Close(); err != nil { // Shutdown with an expired context
		t.Fatal(err)
	}
	if got := ts.db.Stats().Lock.LiveRequests; got != 0 {
		t.Fatalf("%d live lock requests after forced shutdown", got)
	}
	st := ts.db.Stats()
	if st.Tx.Begins != st.Tx.Commits+st.Tx.Aborts {
		t.Fatalf("transaction leaked: begins=%d commits=%d aborts=%d",
			st.Tx.Begins, st.Tx.Commits, st.Tx.Aborts)
	}
	// The client's next request fails: the connection is gone.
	if err := tx.Commit(ctx); err == nil {
		t.Fatal("commit succeeded after forced shutdown")
	}
}

// TestServerServeAfterShutdown verifies Serve refuses listeners once the
// server is shut down, and that Shutdown is idempotent.
func TestServerServeAfterShutdown(t *testing.T) {
	ts := newTestServer(t, Options{})
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ts.srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := ts.srv.Shutdown(sctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.srv.Serve(l); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Serve after shutdown: got %v, want ErrShutdown", err)
	}
}
