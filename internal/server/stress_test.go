package server

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	shoremt "repro"
	"repro/client"
)

// TestServerDisconnectStress hammers the server with waves of clients
// that open transactions and then leave in every possible way — commit,
// rollback, or an abrupt connection teardown mid-transaction — and
// checks the engine comes back to a clean steady state: no live lock
// requests, every begun transaction finished, no goroutine leaks.
// Designed to run under -race.
func TestServerDisconnectStress(t *testing.T) {
	baseGoroutines := runtime.NumGoroutine()

	db, err := shoremt.Open(shoremt.Options{CleanerInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, Options{Workers: 4, QueueDepth: 64, MaxTx: 256, IdleTimeout: -1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	addr := l.Addr().String()
	ctx := context.Background()

	setup, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	store, err := setup.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	setup.Close()

	clients, rounds := 48, 5
	if testing.Short() {
		clients, rounds = 16, 2
	}
	errCh := make(chan error, clients*rounds)
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(r, i int) {
				defer wg.Done()
				c, err := client.Dial(addr, client.Options{Timeout: 30 * time.Second})
				if err != nil {
					errCh <- err
					return
				}
				defer c.Close()
				tx, err := c.Begin(ctx)
				if err != nil {
					if client.Retryable(err) {
						return // shed under load: acceptable, client went away
					}
					errCh <- err
					return
				}
				key := []byte(fmt.Sprintf("k-%03d-%03d", r, i))
				if err := tx.IndexInsert(ctx, store, key, []byte("v")); err != nil {
					errCh <- err
					return
				}
				switch i % 3 {
				case 0:
					// Abrupt disconnect mid-transaction: the server must
					// roll back and free the locks.
					c.Close()
				case 1:
					if err := tx.Commit(ctx); err != nil {
						errCh <- err
					}
				case 2:
					if err := tx.Rollback(ctx); err != nil {
						errCh <- err
					}
				}
			}(r, i)
		}
		wg.Wait()
	}
	close(errCh)
	for err := range errCh {
		t.Errorf("client: %v", err)
	}

	// Every session eventually deregisters, every disconnected
	// transaction is rolled back, and the lock table drains to zero.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sst := srv.Stats()
		est := db.Stats()
		if sst.SessionsOpen == 0 &&
			est.Lock.LiveRequests == 0 && est.Lock.LiveHeads == 0 &&
			est.Tx.Begins == est.Tx.Commits+est.Tx.Aborts {
			if sst.DisconnectRollbacks == 0 {
				t.Fatal("no disconnect rollback recorded despite abrupt closes")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine did not quiesce: sessions=%d liveReq=%d liveHeads=%d begins=%d commits=%d aborts=%d",
				sst.SessionsOpen, est.Lock.LiveRequests, est.Lock.LiveHeads,
				est.Tx.Begins, est.Tx.Commits, est.Tx.Aborts)
		}
		time.Sleep(10 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// All reader/worker/janitor goroutines must be gone.
	deadline = time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseGoroutines+4 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				baseGoroutines, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
