package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"

	shoremt "repro"
	"repro/internal/page"
	"repro/internal/wire"
)

// task is one admitted request awaiting a worker.
type task struct {
	sess *session
	req  wire.Request
	done chan struct{}
}

// worker executes admitted tasks until the queue closes.
func (s *Server) worker() {
	defer s.workerWg.Done()
	for t := range s.tasks {
		s.serve(t)
		close(t.done)
	}
}

// scanBudget bounds an OpIdxScan response body so it (plus headers)
// always fits a frame.
const scanBudget = wire.MaxFrame - 64*1024

// defaultScanLimit applies when a scan request passes Limit 0.
const defaultScanLimit = 1024

// serve executes one request and writes its response.
func (s *Server) serve(t *task) {
	sess := t.sess
	s.st.requests.Add(1)
	sess.body.B = sess.body.B[:0]
	status, flags := s.exec(sess, t.req)
	// On success the body holds the result; on error, the message.
	sess.reply(status, flags, sess.body.B)
}

// exec dispatches the request; on error the message is left in
// sess.body and the status/flags describe it.
func (s *Server) exec(sess *session, req wire.Request) (wire.Status, uint8) {
	fail := func(status wire.Status, flags uint8, err error) (wire.Status, uint8) {
		sess.body.B = append(sess.body.B[:0], err.Error()...)
		return status, flags
	}
	switch req.Op {
	case wire.OpBegin:
		if len(req.Body) != 0 {
			return fail(wire.StatusProto, 0, fmt.Errorf("begin: non-empty body"))
		}
		if sess.tx != nil {
			return fail(wire.StatusTxOpen, 0, errors.New("transaction already open"))
		}
		if !s.acquireTxToken() {
			s.st.sheds.Add(1)
			return fail(wire.StatusBusy, 0, errors.New("open-transaction limit reached"))
		}
		tx, err := s.db.BeginCtx(s.baseCtx)
		if err != nil {
			s.releaseTxToken()
			return fail(statusOf(err), 0, err)
		}
		sess.setTx(tx)
		return wire.StatusOK, 0

	case wire.OpCommit:
		if sess.tx == nil {
			return fail(wire.StatusNoTx, 0, errors.New("no open transaction"))
		}
		err := sess.tx.Commit()
		if err != nil {
			flags := sess.abortTx()
			return fail(statusOf(err), flags, err)
		}
		sess.setTx(nil)
		return wire.StatusOK, 0

	case wire.OpRollback:
		if sess.tx == nil {
			return fail(wire.StatusNoTx, 0, errors.New("no open transaction"))
		}
		sess.abortTx()
		return wire.StatusOK, 0

	case wire.OpCreateTable, wire.OpCreateIndex:
		return s.execCreate(sess, req.Op)

	case wire.OpResolve:
		d := wire.NewDec(req.Body)
		name := d.Str()
		if err := d.Done(); err != nil {
			return fail(wire.StatusProto, 0, err)
		}
		e, ok := s.resolve(name)
		if !ok {
			return fail(wire.StatusNotFound, 0, fmt.Errorf("catalog: %q not registered", name))
		}
		sess.body.U32(e.id)
		sess.body.U8(e.kind)
		return wire.StatusOK, 0

	case wire.OpStats:
		payload := wire.StatsPayload{Server: s.Stats()}
		if eng, err := json.Marshal(s.db.Stats()); err == nil {
			payload.Engine = eng
		}
		b, err := json.Marshal(payload)
		if err != nil {
			return fail(wire.StatusErr, 0, err)
		}
		sess.body.B = append(sess.body.B, b...)
		return wire.StatusOK, 0

	case wire.OpBatch:
		return s.execBatch(sess, req.Body)

	default: // single data op on the session transaction
		var op wire.DataOp
		d := wire.NewDec(req.Body)
		if err := wire.DecodeDataOp(d, req.Op, &op); err != nil {
			return fail(wire.StatusProto, 0, err)
		}
		if err := d.Done(); err != nil {
			return fail(wire.StatusProto, 0, err)
		}
		if sess.tx == nil {
			return fail(wire.StatusNoTx, 0, errors.New("no open transaction (use Begin or a managed batch)"))
		}
		if err := s.execDataOp(sess.tx, &op, &sess.body); err != nil {
			var flags uint8
			if abortWorthy(err) {
				flags = sess.abortTx()
			}
			return fail(statusOf(err), flags, err)
		}
		return wire.StatusOK, 0
	}
}

// execCreate runs DDL: inside the session transaction when one is
// open, otherwise as its own managed transaction.
func (s *Server) execCreate(sess *session, op wire.Op) (wire.Status, uint8) {
	create := func(t *shoremt.Tx) (uint32, error) {
		if op == wire.OpCreateTable {
			tb, err := s.db.CreateTable(t)
			if err != nil {
				return 0, err
			}
			return tb.ID(), nil
		}
		ix, err := s.db.CreateIndex(t)
		if err != nil {
			return 0, err
		}
		return ix.ID(), nil
	}
	var id uint32
	var err error
	if sess.tx != nil {
		id, err = create(sess.tx)
	} else {
		err = s.db.Update(s.baseCtx, func(t *shoremt.Tx) error {
			id, err = create(t)
			return err
		})
	}
	if err != nil {
		var flags uint8
		if sess.tx != nil && abortWorthy(err) {
			flags = sess.abortTx()
		}
		sess.body.B = append(sess.body.B[:0], err.Error()...)
		return statusOf(err), flags
	}
	sess.body.U32(id)
	return wire.StatusOK, 0
}

// execBatch runs an OpBatch body: a whole transaction (or fragment) in
// one frame.
func (s *Server) execBatch(sess *session, body []byte) (wire.Status, uint8) {
	s.st.batches.Add(1)
	fail := func(status wire.Status, flags uint8, err error) (wire.Status, uint8) {
		sess.body.B = append(sess.body.B[:0], err.Error()...)
		return status, flags
	}
	batch, err := wire.DecodeBatch(body)
	if err != nil {
		return fail(wire.StatusProto, 0, err)
	}
	run := func(t *shoremt.Tx) error {
		sess.body.B = sess.body.B[:0] // managed retry re-runs the ops
		for i := range batch.Ops {
			if err := s.execDataOp(t, &batch.Ops[i], &sess.body); err != nil {
				return fmt.Errorf("batch op %d (%v): %w", i, batch.Ops[i].Kind, err)
			}
		}
		return nil
	}
	switch batch.Flags & wire.BatchModeMask {
	case wire.BatchUpdate, wire.BatchView:
		if sess.tx != nil {
			return fail(wire.StatusTxOpen, 0, errors.New("managed batch with an explicit transaction open"))
		}
		if batch.Flags&wire.BatchModeMask == wire.BatchView {
			err = s.db.View(s.baseCtx, run)
		} else {
			err = s.db.Update(s.baseCtx, run)
		}
		if err != nil {
			return fail(statusOf(err), 0, err)
		}
		return wire.StatusOK, 0

	default: // session mode
		if batch.Flags&wire.BatchBegin != 0 {
			if sess.tx != nil {
				return fail(wire.StatusTxOpen, 0, errors.New("batch Begin with a transaction already open"))
			}
			if !s.acquireTxToken() {
				s.st.sheds.Add(1)
				return fail(wire.StatusBusy, 0, errors.New("open-transaction limit reached"))
			}
			tx, err := s.db.BeginCtx(s.baseCtx)
			if err != nil {
				s.releaseTxToken()
				return fail(statusOf(err), 0, err)
			}
			sess.setTx(tx)
		}
		if sess.tx == nil {
			return fail(wire.StatusNoTx, 0, errors.New("batch with no open transaction"))
		}
		if err := run(sess.tx); err != nil {
			var flags uint8
			// A commit-bound batch rolls back on ANY failure so the
			// client can always retry the whole unit of work; a
			// fragment only rolls back when the engine already killed
			// the transaction (deadlock victim, timeout, cancellation).
			if abortWorthy(err) || batch.Flags&wire.BatchCommit != 0 {
				flags = sess.abortTx()
			}
			return fail(statusOf(err), flags, err)
		}
		if batch.Flags&wire.BatchCommit != 0 {
			result := append([]byte(nil), sess.body.B...)
			if err := sess.tx.Commit(); err != nil {
				flags := sess.abortTx()
				return fail(statusOf(err), flags, err)
			}
			sess.setTx(nil)
			sess.body.B = append(sess.body.B[:0], result...)
		}
		return wire.StatusOK, 0
	}
}

// execDataOp runs one data op inside t, appending its result encoding
// to out.
func (s *Server) execDataOp(t *shoremt.Tx, op *wire.DataOp, out *wire.Enc) error {
	switch op.Kind {
	case wire.OpHeapInsert:
		rid, err := s.db.OpenTable(op.Store).Insert(t, op.Val)
		if err != nil {
			return err
		}
		out.U64(uint64(rid.Page))
		out.U16(rid.Slot)
	case wire.OpHeapGet:
		rec, err := s.db.OpenTable(op.Store).Get(t, ridOf(op))
		if err != nil {
			return err
		}
		out.Bytes(rec)
	case wire.OpHeapUpdate:
		return s.db.OpenTable(op.Store).Update(t, ridOf(op), op.Val)
	case wire.OpHeapDelete:
		return s.db.OpenTable(op.Store).Delete(t, ridOf(op))
	case wire.OpIdxInsert:
		ix, err := s.index(op.Store)
		if err != nil {
			return err
		}
		return ix.Insert(t, op.Key, op.Val)
	case wire.OpIdxGet, wire.OpIdxGetU:
		ix, err := s.index(op.Store)
		if err != nil {
			return err
		}
		var val []byte
		var found bool
		if op.Kind == wire.OpIdxGetU {
			val, found, err = ix.GetForUpdate(t, op.Key)
		} else {
			val, found, err = ix.Get(t, op.Key)
		}
		if err != nil {
			return err
		}
		if found {
			out.U8(1)
		} else {
			out.U8(0)
		}
		out.Bytes(val)
	case wire.OpIdxUpdate:
		ix, err := s.index(op.Store)
		if err != nil {
			return err
		}
		return ix.Update(t, op.Key, op.Val)
	case wire.OpIdxDelete:
		ix, err := s.index(op.Store)
		if err != nil {
			return err
		}
		old, err := ix.Delete(t, op.Key)
		if err != nil {
			return err
		}
		out.Bytes(old)
	case wire.OpIdxScan:
		ix, err := s.index(op.Store)
		if err != nil {
			return err
		}
		limit := int(op.Limit)
		if limit <= 0 {
			limit = defaultScanLimit
		}
		from, to := op.Key, op.Val
		if len(from) == 0 {
			from = nil
		}
		if len(to) == 0 {
			to = nil
		}
		countAt := len(out.B)
		out.U32(0)
		n := 0
		err = ix.Scan(t, from, to, func(k, v []byte) bool {
			out.Bytes(k)
			out.Bytes(v)
			n++
			return n < limit && len(out.B) < scanBudget
		})
		if err != nil {
			return err
		}
		binary.BigEndian.PutUint32(out.B[countAt:], uint32(n))
	default:
		return fmt.Errorf("%w: op %v", wire.ErrMalformed, op.Kind)
	}
	return nil
}

// ridOf converts a wire RID to the engine's.
func ridOf(op *wire.DataOp) shoremt.RID {
	return shoremt.RID{Page: page.ID(op.RID.Page), Slot: op.RID.Slot}
}

// setTx updates the session transaction and its shutdown/janitor
// mirror, returning the open-transaction token when the transaction
// ends (the matching acquire happened before BeginCtx).
func (sess *session) setTx(t *shoremt.Tx) {
	if t == nil && sess.tx != nil {
		sess.srv.releaseTxToken()
	}
	sess.tx = t
	sess.hasTx.Store(t != nil)
}

// abortTx best-effort rolls the session transaction back and reports
// the FlagTxAborted bit. An in-doubt commit (interrupted durability
// wait) refuses to abort; the handle is dropped either way and restart
// recovery or the flush daemon settles it.
func (sess *session) abortTx() uint8 {
	if sess.tx == nil {
		return 0
	}
	_ = sess.tx.Abort()
	sess.setTx(nil)
	return wire.FlagTxAborted
}

// statusOf maps an engine error onto a wire status.
func statusOf(err error) wire.Status {
	switch {
	case errors.Is(err, shoremt.ErrDeadlock):
		return wire.StatusDeadlock
	case errors.Is(err, shoremt.ErrTimeout):
		return wire.StatusTimeout
	case errors.Is(err, shoremt.ErrCanceled):
		return wire.StatusCanceled
	case errors.Is(err, shoremt.ErrDuplicate):
		return wire.StatusDuplicate
	case errors.Is(err, shoremt.ErrNotFound):
		return wire.StatusNotFound
	case errors.Is(err, shoremt.ErrNoRecord):
		return wire.StatusNoRecord
	case errors.Is(err, shoremt.ErrReadOnly):
		return wire.StatusReadOnly
	case errors.Is(err, shoremt.ErrTxDone):
		return wire.StatusNoTx
	default:
		return wire.StatusErr
	}
}

// abortWorthy reports errors after which the engine requires the
// transaction to be rolled back (its locks may already be gone and
// retrying inside it is meaningless).
func abortWorthy(err error) bool {
	return errors.Is(err, shoremt.ErrDeadlock) ||
		errors.Is(err, shoremt.ErrTimeout) ||
		errors.Is(err, shoremt.ErrCanceled)
}
