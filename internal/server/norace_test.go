//go:build !race

package server

// raceEnabled reports a race-instrumented test binary; see race_test.go.
const raceEnabled = false
