package server

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"time"

	shoremt "repro"
	"repro/client"
	"repro/internal/wire"
)

// testServer is a served in-memory database on a loopback listener.
type testServer struct {
	db   *shoremt.DB
	srv  *Server
	addr string
}

func newTestServer(t testing.TB, opts Options) *testServer {
	t.Helper()
	db, err := shoremt.Open(shoremt.Options{CleanerInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(db, opts)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
	})
	return &testServer{db: db, srv: srv, addr: l.Addr().String()}
}

func (ts *testServer) dial(t testing.TB) *client.Client {
	t.Helper()
	c, err := client.Dial(ts.addr, client.Options{Timeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServerIndexCRUD(t *testing.T) {
	ts := newTestServer(t, Options{})
	c := ts.dial(t)
	ctx := context.Background()

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}

	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("alpha"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("beta"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	// A duplicate insert fails but does not kill the transaction.
	if err := tx.IndexInsert(ctx, store, []byte("alpha"), []byte("x")); !errors.Is(err, client.ErrDuplicate) {
		t.Fatalf("duplicate insert: got %v, want ErrDuplicate", err)
	}
	val, ok, err := tx.IndexGet(ctx, store, []byte("alpha"))
	if err != nil || !ok || string(val) != "1" {
		t.Fatalf("get alpha = %q %v %v", val, ok, err)
	}
	val, ok, err = tx.IndexGetForUpdate(ctx, store, []byte("beta"))
	if err != nil || !ok || string(val) != "2" {
		t.Fatalf("get-for-update beta = %q %v %v", val, ok, err)
	}
	if _, ok, err := tx.IndexGet(ctx, store, []byte("nope")); err != nil || ok {
		t.Fatalf("get missing = %v %v", ok, err)
	}
	if err := tx.IndexUpdate(ctx, store, []byte("beta"), []byte("22")); err != nil {
		t.Fatal(err)
	}
	kvs, err := tx.IndexScan(ctx, store, nil, nil, 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("scan = %d kvs, %v", len(kvs), err)
	}
	if string(kvs[0].Key) != "alpha" || string(kvs[1].Value) != "22" {
		t.Fatalf("scan contents wrong: %q %q", kvs[0].Key, kvs[1].Value)
	}
	old, err := tx.IndexDelete(ctx, store, []byte("alpha"))
	if err != nil || string(old) != "1" {
		t.Fatalf("delete = %q %v", old, err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}

	// A fresh transaction sees the committed state.
	tx2, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tx2.IndexGet(ctx, store, []byte("alpha")); ok {
		t.Fatal("deleted key visible after commit")
	}
	val, ok, err = tx2.IndexGet(ctx, store, []byte("beta"))
	if err != nil || !ok || string(val) != "22" {
		t.Fatalf("beta after commit = %q %v %v", val, ok, err)
	}
	if err := tx2.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServerHeapCRUD(t *testing.T) {
	ts := newTestServer(t, Options{})
	c := ts.dial(t)
	ctx := context.Background()

	store, err := c.CreateTable(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tx.HeapInsert(ctx, store, []byte("record one"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := tx.HeapGet(ctx, store, rid)
	if err != nil || string(rec) != "record one" {
		t.Fatalf("heap get = %q %v", rec, err)
	}
	if err := tx.HeapUpdate(ctx, store, rid, []byte("record two")); err != nil {
		t.Fatal(err)
	}
	if err := tx.HeapDelete(ctx, store, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.HeapGet(ctx, store, rid); !errors.Is(err, client.ErrNoRecord) {
		t.Fatalf("get deleted rid: got %v, want ErrNoRecord", err)
	}
	if err := tx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServerManagedBatches(t *testing.T) {
	ts := newTestServer(t, Options{})
	c := ts.dial(t)
	ctx := context.Background()

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Update: inserts plus a read-back in one frame.
	var look *client.Lookup
	err = c.Update(ctx, func(b *client.Batch) {
		b.IndexInsert(store, []byte("k1"), []byte("v1"))
		b.IndexInsert(store, []byte("k2"), []byte("v2"))
		look = b.IndexGet(store, []byte("k1"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if !look.Found || string(look.Value) != "v1" {
		t.Fatalf("batch lookup = %q %v", look.Value, look.Found)
	}

	// View: reads work, writes are refused.
	var scan *client.Scanned
	err = c.View(ctx, func(b *client.Batch) {
		scan = b.IndexScan(store, nil, nil, 10)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.KVs) != 2 {
		t.Fatalf("view scan = %d kvs", len(scan.KVs))
	}
	err = c.View(ctx, func(b *client.Batch) {
		b.IndexInsert(store, []byte("k3"), []byte("v3"))
	})
	if !errors.Is(err, client.ErrReadOnly) {
		t.Fatalf("write in View: got %v, want ErrReadOnly", err)
	}
	// The refused write must not have committed.
	var k3 *client.Lookup
	if err := c.View(ctx, func(b *client.Batch) {
		k3 = b.IndexGet(store, []byte("k3"))
	}); err != nil {
		t.Fatal(err)
	}
	if k3.Found {
		t.Fatal("write inside View committed")
	}

	// Session batches: begin+reads, then writes+commit — the remote
	// TPC-C shape (two round trips per transaction).
	b := client.NewBatch()
	g1 := b.IndexGetForUpdate(store, []byte("k1"))
	tx, err := c.BeginBatch(ctx, b)
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Found {
		t.Fatal("k1 not found in begin batch")
	}
	wb := client.NewBatch()
	wb.IndexUpdate(store, []byte("k1"), []byte("v1-new"))
	if err := tx.RunCommit(ctx, wb); err != nil {
		t.Fatal(err)
	}
	var check *client.Lookup
	if err := c.View(ctx, func(b *client.Batch) {
		check = b.IndexGet(store, []byte("k1"))
	}); err != nil {
		t.Fatal(err)
	}
	if string(check.Value) != "v1-new" {
		t.Fatalf("after session batch commit: %q", check.Value)
	}
}

func TestServerResolveAndStats(t *testing.T) {
	ts := newTestServer(t, Options{})
	ts.srv.RegisterStore("my.index", 42, wire.KindIndex)
	ts.srv.RegisterStore("my.meta", 7, wire.KindMeta)
	c := ts.dial(t)
	ctx := context.Background()

	id, kind, err := c.Resolve(ctx, "my.index")
	if err != nil || id != 42 || kind != wire.KindIndex {
		t.Fatalf("resolve = %d %d %v", id, kind, err)
	}
	if _, _, err := c.Resolve(ctx, "nope"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("resolve missing: got %v, want ErrNotFound", err)
	}
	st, engine, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SessionsOpen < 1 || st.Requests == 0 {
		t.Fatalf("stats implausible: %+v", st)
	}
	if !bytes.Contains(engine, []byte("Lock")) {
		t.Fatalf("engine stats JSON missing Lock section: %.120s", engine)
	}
}

func TestServerShedsOnTxLimit(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, MaxTx: 1})
	ctx := context.Background()

	c1 := ts.dial(t)
	tx1, err := c1.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// The only transaction slot is taken: a second Begin is shed.
	c2 := ts.dial(t)
	if _, err := c2.Begin(ctx); !errors.Is(err, client.ErrBusy) {
		t.Fatalf("second Begin: got %v, want ErrBusy", err)
	}
	if st := ts.srv.Stats(); st.Sheds == 0 {
		t.Fatal("shed not counted")
	}
	// Finishing the first transaction frees the slot.
	if err := tx1.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
	tx2, err := c2.Begin(ctx)
	if err != nil {
		t.Fatalf("Begin after slot freed: %v", err)
	}
	if err := tx2.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServerShedsOnQueueOverflow(t *testing.T) {
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1, MaxTx: 16})
	ctx := context.Background()

	setup := ts.dial(t)
	store, err := setup.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Update(ctx, func(b *client.Batch) {
		b.IndexInsert(store, []byte("hot"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	// Pin the hot key under an explicit transaction: the single worker
	// will block behind this lock.
	holder := ts.dial(t)
	htx, err := holder.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := htx.IndexGetForUpdate(ctx, store, []byte("hot")); err != nil {
		t.Fatal(err)
	}

	// A managed batch on the hot key occupies the only worker (blocked
	// in the lock wait), and a second one fills the one-slot queue.
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			c, err := client.Dial(ts.addr, client.Options{Timeout: 30 * time.Second})
			if err != nil {
				results <- err
				return
			}
			defer c.Close()
			results <- c.Update(ctx, func(b *client.Batch) {
				b.IndexUpdate(store, []byte("hot"), []byte("w"))
			})
		}()
	}
	// Wait until worker and queue are both occupied.
	deadline := time.Now().Add(10 * time.Second)
	for ts.srv.Stats().QueueHighWater < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // let the first batch reach its lock wait

	// The next entry request must be shed immediately, not absorbed.
	shedder := ts.dial(t)
	start := time.Now()
	err = shedder.Update(ctx, func(b *client.Batch) {
		b.IndexUpdate(store, []byte("hot"), []byte("x"))
	})
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("overflow entry: got %v, want ErrBusy", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v; must be immediate", d)
	}
	if st := ts.srv.Stats(); st.Sheds == 0 {
		t.Fatal("shed not counted")
	}

	// The lock holder's commit is a continuation: it runs inline even
	// though the pool is wedged, unblocking the queued batches.
	if err := htx.Commit(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		select {
		case err := <-results:
			if err != nil {
				t.Fatalf("queued batch: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("queued batches never drained")
		}
	}
}

func TestServerIdleReap(t *testing.T) {
	ts := newTestServer(t, Options{IdleTimeout: 60 * time.Millisecond})
	c := ts.dial(t)
	ctx := context.Background()

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Go quiet: the janitor must close the session and roll the
	// transaction back, freeing its locks.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := ts.db.Stats()
		if ts.srv.Stats().IdleCloses > 0 && st.Lock.LiveRequests == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("idle session not reaped: server=%+v live=%d",
				ts.srv.Stats(), st.Lock.LiveRequests)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The reaped session's locks are gone: another client can take the
	// same key immediately.
	c2 := ts.dial(t)
	if err := c2.Update(ctx, func(b *client.Batch) {
		b.IndexInsert(store, []byte("k"), []byte("v2"))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestServerRollbackOnDisconnect(t *testing.T) {
	ts := newTestServer(t, Options{})
	ctx := context.Background()

	setup := ts.dial(t)
	store, err := setup.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}

	c := ts.dial(t)
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("mine"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Tear the connection down without Commit/Rollback.
	c.Close()

	deadline := time.Now().Add(10 * time.Second)
	for ts.srv.Stats().DisconnectRollbacks == 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect rollback never happened")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The insert was rolled back and its locks are free.
	var look *client.Lookup
	if err := setup.View(ctx, func(b *client.Batch) {
		look = b.IndexGet(store, []byte("mine"))
	}); err != nil {
		t.Fatal(err)
	}
	if look.Found {
		t.Fatal("uncommitted insert survived the disconnect")
	}
	if live := ts.db.Stats().Lock.LiveRequests; live != 0 {
		t.Fatalf("%d locks leaked by the dead session", live)
	}
}

func TestServerDrainingRefusesEntries(t *testing.T) {
	ts := newTestServer(t, Options{})
	ctx := context.Background()
	c := ts.dial(t)
	c2 := ts.dial(t) // dialed before shutdown: listeners close once draining starts

	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.IndexInsert(ctx, store, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		ts.srv.Shutdown(sctx)
	}()

	// Shutdown cannot finish while c's transaction is open, so c2's
	// reader is still alive: its Begin must be refused with ErrClosing.
	deadline := time.Now().Add(10 * time.Second)
	for !ts.srv.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c2.Begin(ctx); !errors.Is(err, client.ErrClosing) {
		t.Fatalf("Begin while draining: got %v, want ErrClosing", err)
	}
	// The in-flight transaction may run to completion during the drain.
	if err := tx.Commit(ctx); err != nil {
		t.Fatalf("in-flight commit during drain: %v", err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("shutdown hung")
	}
	if got := ts.db.Stats().Lock.LiveRequests; got != 0 {
		t.Fatalf("%d live lock requests after shutdown", got)
	}
}

func TestServerFrameTooLarge(t *testing.T) {
	ts := newTestServer(t, Options{})
	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// An oversized frame announcement gets a TooLarge reply, then the
	// server hangs up (the stream cannot be resynchronized).
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var buf []byte
	payload, err := wire.ReadFrame(conn, &buf)
	if err != nil {
		t.Fatalf("expected TooLarge reply, read failed: %v", err)
	}
	resp, err := wire.ParseResponse(payload)
	if err != nil || resp.Status != wire.StatusTooLarge {
		t.Fatalf("reply = %+v, %v; want StatusTooLarge", resp, err)
	}
	// The connection is then closed server-side.
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server kept a protocol-broken connection open")
	}
}

func TestServerBadSession(t *testing.T) {
	ts := newTestServer(t, Options{})
	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// An op before Hello is refused with StatusBadSession.
	payload := wire.AppendRequest(nil, wire.OpBegin, 999, nil)
	if err := wire.WriteFrame(conn, payload); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var buf []byte
	respPayload, err := wire.ReadFrame(conn, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ParseResponse(respPayload)
	if err != nil || resp.Status != wire.StatusBadSession {
		t.Fatalf("reply = %+v, %v; want StatusBadSession", resp, err)
	}
}

func TestServerTxStateErrors(t *testing.T) {
	ts := newTestServer(t, Options{})
	ctx := context.Background()

	// Commit with no open transaction: speak raw frames so the client's
	// own Tx state tracking cannot get in the way.
	conn, err := net.Dial("tcp", ts.addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	var buf []byte
	roundTrip := func(op wire.Op, sid uint32, body []byte) wire.Response {
		t.Helper()
		if err := wire.WriteFrame(conn, wire.AppendRequest(nil, op, sid, body)); err != nil {
			t.Fatal(err)
		}
		payload, err := wire.ReadFrame(conn, &buf)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := wire.ParseResponse(payload)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	hello := roundTrip(wire.OpHello, 0, nil)
	if hello.Status != wire.StatusOK {
		t.Fatalf("hello: %+v", hello)
	}
	sid := wire.NewDec(hello.Body).U32()
	if resp := roundTrip(wire.OpCommit, sid, nil); resp.Status != wire.StatusNoTx {
		t.Fatalf("commit without tx: %+v, want StatusNoTx", resp)
	}

	// Double Begin and managed-batch-with-open-tx via the client.
	c := ts.dial(t)
	store, err := c.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := c.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Begin(ctx); !errors.Is(err, client.ErrTxOpen) {
		t.Fatalf("double Begin: got %v, want ErrTxOpen", err)
	}
	err = c.Update(ctx, func(b *client.Batch) {
		b.IndexInsert(store, []byte("x"), []byte("y"))
	})
	if !errors.Is(err, client.ErrTxOpen) {
		t.Fatalf("managed batch with open tx: got %v, want ErrTxOpen", err)
	}
	if err := tx.Rollback(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServerSessionCounters(t *testing.T) {
	ts := newTestServer(t, Options{})
	ctx := context.Background()
	var clients []*client.Client
	for i := 0; i < 5; i++ {
		clients = append(clients, ts.dial(t))
	}
	for _, c := range clients {
		if err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}
	st := ts.srv.Stats()
	if st.SessionsOpen != 5 || st.SessionsPeak < 5 || st.SessionsTotal != 5 {
		t.Fatalf("session counters: %+v", st)
	}
	for _, c := range clients {
		c.Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for ts.srv.Stats().SessionsOpen != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sessions not closed: %+v", ts.srv.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
