// Package server is shored's network front end: it serves a shoremt.DB
// over the length-prefixed binary protocol of internal/wire, turning the
// embedded engine into a served system.
//
// The layering mirrors classic network database servers:
//
//   - a reader goroutine per connection parses frames (cheap: it spends
//     its life blocked in Read, so connection counts can far exceed
//     GOMAXPROCS);
//   - a bounded admission queue in front of a GOMAXPROCS-scaled worker
//     pool executes requests that START new work (Begin, managed
//     batches, DDL). When the queue — or the open-transaction budget
//     (Options.MaxTx) — is full, those are refused immediately with
//     StatusBusy: load is shed at the transaction boundary instead of
//     being absorbed until the server collapses;
//   - requests that CONTINUE an admitted transaction are never shed or
//     queued — they execute inline on the connection's reader
//     goroutine. This is load-bearing, not just a latency trick:
//     pushing continuations through the shared pool deadlocks under
//     contention (every worker blocks in a lock wait while the lock
//     holders' commit frames sit unserved behind them). Inline
//     execution guarantees lock holders always progress, so admitted
//     work drains no matter what the pool is doing;
//   - a session binds the connection to the engine's transactions. A
//     disconnect — graceful or torn — rolls back the session's open
//     transaction, and an idle janitor reaps abandoned sessions, so a
//     dead client can never leak locks.
package server

import (
	"context"
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	shoremt "repro"
	"repro/internal/wire"
)

// Options configures a Server.
type Options struct {
	// Workers sizes the execution pool (0 = GOMAXPROCS). The pool, not
	// the connection count, bounds engine concurrency.
	Workers int
	// QueueDepth bounds the admission queue (0 = 4×Workers). Entry
	// requests arriving with the queue full are shed with StatusBusy.
	QueueDepth int
	// MaxTx bounds concurrently open explicit transactions (0 =
	// 4×QueueDepth). A Begin past the bound is shed with StatusBusy:
	// the lock footprint of admitted-but-unfinished transactions stays
	// bounded no matter how many connections are parked on open
	// transactions.
	MaxTx int
	// IdleTimeout reaps sessions with no traffic for this long,
	// rolling back their open transaction (0 = 5 minutes; negative
	// disables the janitor).
	IdleTimeout time.Duration
	// Logf, when non-nil, receives server diagnostics.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Workers
	}
	if o.MaxTx <= 0 {
		o.MaxTx = 4 * o.QueueDepth
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 5 * time.Minute
	}
	return o
}

// catalogEntry is a named store (or out-of-band value) for OpResolve.
type catalogEntry struct {
	id   uint32
	kind byte
}

// Server serves a shoremt.DB over the wire protocol. It does not own
// the DB: the caller closes it after Shutdown returns (DB.Close is
// idempotent, so belt-and-braces double closes in error paths are
// harmless).
type Server struct {
	db   *shoremt.DB
	opts Options

	baseCtx context.Context // parent of all session work
	cancel  context.CancelFunc

	tasks    chan *task
	txTokens chan struct{} // open-transaction tokens (see Options.MaxTx)
	stopped  chan struct{} // closed when the force phase of Shutdown begins

	mu        sync.Mutex
	sessions  map[uint32]*session
	listeners map[net.Listener]struct{}
	catalog   map[string]catalogEntry

	indexes sync.Map // uint32 -> *shoremt.Index (decoded handle cache)

	nextSID  atomic.Uint32
	draining atomic.Bool
	shutdown atomic.Bool

	readerWg  sync.WaitGroup
	workerWg  sync.WaitGroup
	janitorWg sync.WaitGroup

	st counters
}

// ErrShutdown is returned by Serve when the server was shut down.
var ErrShutdown = errors.New("server: shut down")

// New builds a server for db and starts its worker pool (and idle
// janitor). Call Serve with one or more listeners, then Shutdown.
func New(db *shoremt.DB, opts Options) *Server {
	opts = opts.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		db:        db,
		opts:      opts,
		baseCtx:   ctx,
		cancel:    cancel,
		tasks:     make(chan *task, opts.QueueDepth),
		txTokens:  make(chan struct{}, opts.MaxTx),
		stopped:   make(chan struct{}),
		sessions:  make(map[uint32]*session),
		listeners: make(map[net.Listener]struct{}),
		catalog:   make(map[string]catalogEntry),
	}
	for i := 0; i < opts.Workers; i++ {
		s.workerWg.Add(1)
		go s.worker()
	}
	if opts.IdleTimeout > 0 {
		s.janitorWg.Add(1)
		go s.janitor()
	}
	return s
}

// RegisterStore publishes a named store in the catalog so clients can
// resolve it (kind wire.KindIndex / KindHeap), or an out-of-band value
// (kind wire.KindMeta, id carries the value).
func (s *Server) RegisterStore(name string, id uint32, kind byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.catalog[name] = catalogEntry{id: id, kind: kind}
}

// resolve looks a catalog name up.
func (s *Server) resolve(name string) (catalogEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.catalog[name]
	return e, ok
}

// index returns a cached handle for a B-tree store.
func (s *Server) index(store uint32) (*shoremt.Index, error) {
	if v, ok := s.indexes.Load(store); ok {
		return v.(*shoremt.Index), nil
	}
	ix, err := s.db.OpenIndex(store)
	if err != nil {
		return nil, err
	}
	v, _ := s.indexes.LoadOrStore(store, ix)
	return v.(*shoremt.Index), nil
}

// Serve accepts connections on l until Shutdown (returns nil) or a
// listener error. It may be called concurrently with multiple
// listeners.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.shutdown.Load() {
		s.mu.Unlock()
		l.Close()
		return ErrShutdown
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() || s.shutdown.Load() {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

// logf emits a diagnostic when a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// idleLocked reports whether every session is quiescent (no open
// transaction, no request in flight) and the queue is empty.
func (s *Server) idle() bool {
	if len(s.tasks) > 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sess := range s.sessions {
		if sess.inflight.Load() || sess.hasTx.Load() {
			return false
		}
	}
	return true
}

// Shutdown drains and stops the server: it stops accepting, refuses new
// transactions (StatusClosing), lets in-flight sessions finish until
// every session is quiescent or ctx expires, then cancels outstanding
// engine waits, closes every connection (rolling back the transactions
// that didn't finish draining) and waits for readers and workers to
// exit. It does NOT close the DB — that is the caller's job, exactly
// once, after Shutdown returns. Shutdown is idempotent; concurrent
// calls beyond the first return immediately.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.shutdown.Swap(true) {
		return nil
	}
	s.draining.Store(true)
	s.mu.Lock()
	for l := range s.listeners {
		l.Close()
	}
	s.mu.Unlock()

	// Drain phase: in-flight transactions may run to completion.
	drained := false
	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
drain:
	for {
		if s.idle() {
			drained = true
			break
		}
		select {
		case <-ctx.Done():
			break drain
		case <-tick.C:
		}
	}

	// Force phase: unblock any engine wait, tear down connections (the
	// per-session cleanup rolls back whatever is still open).
	s.cancel()
	close(s.stopped)
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	s.readerWg.Wait()
	close(s.tasks) // safe: readers are the only senders and have exited
	s.workerWg.Wait()
	s.janitorWg.Wait()
	if !drained {
		s.logf("server: drain window expired; forced rollback of remaining sessions")
	}
	return nil
}

// Close is Shutdown with no drain window.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return s.Shutdown(ctx)
}

// acquireTxToken claims an open-transaction slot without blocking.
func (s *Server) acquireTxToken() bool {
	select {
	case s.txTokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// releaseTxToken returns a slot claimed by acquireTxToken.
func (s *Server) releaseTxToken() {
	select {
	case <-s.txTokens:
	default: // unbalanced release: tolerate rather than deadlock
	}
}

// Stats snapshots the server's counters.
func (s *Server) Stats() wire.ServerStats { return s.st.snapshot() }
