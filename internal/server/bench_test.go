package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	shoremt "repro"
	"repro/client"
	"repro/internal/tpcc"
)

// newBenchServer serves a freshly loaded TPC-C database on loopback.
func newBenchServer(b testing.TB, opts Options, warehouses int) (*testServer, tpcc.Scale) {
	b.Helper()
	db, err := shoremt.Open(shoremt.Options{CleanerInterval: -1})
	if err != nil {
		b.Fatal(err)
	}
	scale := tpcc.DefaultScale(warehouses)
	tdb, err := tpcc.Load(db.Engine(), scale, 42)
	if err != nil {
		b.Fatal(err)
	}
	srv := New(db, opts)
	for _, e := range tdb.Catalog() {
		srv.RegisterStore(e.Name, e.ID, e.Kind)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(l)
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		db.Close()
	})
	return &testServer{db: db, srv: srv, addr: l.Addr().String()}, scale
}

// BenchmarkServerRemote drives the TPC-C mix over the wire: every
// transaction is two round trips (read batch, then write batch with
// commit) through admission control, with client-side retry absorbing
// deadlock victims, lock timeouts and shed requests. The clients=256
// variant exercises connection counts far above GOMAXPROCS; overload
// points many clients at a deliberately tiny pool and reports how much
// load is shed while throughput holds.
func BenchmarkServerRemote(b *testing.B) {
	for _, nc := range []int{16, 256} {
		b.Run(fmt.Sprintf("clients=%d", nc), func(b *testing.B) {
			benchRemoteTPCC(b, Options{}, nc)
		})
	}
	b.Run("overload", func(b *testing.B) {
		benchRemoteTPCC(b, Options{Workers: 2, QueueDepth: 2, MaxTx: 8}, 64)
	})
}

func benchRemoteTPCC(b *testing.B, opts Options, clients int) {
	ts, scale := newBenchServer(b, opts, 2)
	ctx := context.Background()
	stats := &tpcc.RemoteStats{}

	var remaining atomic.Int64
	remaining.Store(int64(b.N))
	var failures, aborts atomic.Uint64
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(ts.addr, client.Options{Timeout: 60 * time.Second})
			if err != nil {
				b.Error(err)
				return
			}
			defer func() { c.Close() }()
			r, err := tpcc.OpenRemote(ctx, c, stats)
			if err != nil {
				b.Error(err)
				return
			}
			r.Scale = scale
			rng := tpcc.NewRand(7919*int64(i) + 1)
			home := uint32(i%scale.Warehouses) + 1
			<-start
			for j := 0; remaining.Add(-1) >= 0; j++ {
				if c.Closed() { // transport error poisoned the conn: redial
					if c, err = client.Dial(ts.addr, client.Options{Timeout: 60 * time.Second}); err != nil {
						b.Error(err)
						return
					}
					if r, err = tpcc.OpenRemote(ctx, c, stats); err != nil {
						b.Error(err)
						return
					}
					r.Scale = scale
				}
				if j%2 == 0 {
					err = r.Payment(ctx, tpcc.GenPayment(rng, scale, home))
				} else {
					err = r.NewOrder(ctx, tpcc.GenNewOrder(rng, scale, home))
				}
				switch {
				case err == nil:
				case errors.Is(err, tpcc.ErrUserAbort):
					aborts.Add(1) // the spec's 1% rollback: a success
				default:
					failures.Add(1)
				}
			}
		}(i)
	}
	b.ResetTimer()
	close(start)
	wg.Wait()
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "tx/s")
	}
	n := float64(b.N)
	b.ReportMetric(float64(stats.Sheds.Load())/n, "sheds/op")
	b.ReportMetric(float64(stats.Deadlocks.Load()+stats.Timeouts.Load())/n, "retries/op")
	b.ReportMetric(float64(failures.Load())/n, "failures/op")
	if f := failures.Load(); f > uint64(b.N/5) {
		b.Fatalf("%d of %d transactions failed hard", f, b.N)
	}
	if peak := ts.srv.Stats().SessionsPeak; int(peak) < clients {
		b.Fatalf("sessions peak %d < %d clients", peak, clients)
	}
}

// TestServerOverloadThroughput demonstrates graceful degradation: when
// offered load far exceeds the pool, excess entry requests are refused
// with ErrBusy while committed throughput does not collapse. Baseline
// and overload run the same op against the same tiny server; overload
// adds 8× the clients, none of which retry.
func TestServerOverloadThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based")
	}
	ts := newTestServer(t, Options{Workers: 1, QueueDepth: 2, MaxTx: 4})
	ctx := context.Background()

	setup := ts.dial(t)
	store, err := setup.CreateIndex(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Update(ctx, func(b *client.Batch) {
		for i := 0; i < 16; i++ {
			b.IndexInsert(store, []byte(fmt.Sprintf("k%02d", i)), []byte("0"))
		}
	}); err != nil {
		t.Fatal(err)
	}

	// run offers load from n clients for the window and returns the
	// number of committed ops and of shed (ErrBusy) replies.
	run := func(n int, window time.Duration) (committed, busy uint64) {
		var c64, b64 atomic.Uint64
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c, err := client.Dial(ts.addr, client.Options{Timeout: 30 * time.Second})
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				key := []byte(fmt.Sprintf("k%02d", i%16))
				for {
					select {
					case <-stop:
						return
					default:
					}
					err := c.Update(ctx, func(b *client.Batch) {
						b.IndexUpdate(store, key, []byte("1"))
					})
					switch {
					case err == nil:
						c64.Add(1)
					case errors.Is(err, client.ErrBusy):
						b64.Add(1)
					case client.Retryable(err):
					default:
						t.Error(err)
						return
					}
				}
			}(i)
		}
		time.Sleep(window)
		close(stop)
		wg.Wait()
		return c64.Load(), b64.Load()
	}

	window := 500 * time.Millisecond
	tolerance := 0.8
	if raceEnabled {
		// The detector's per-access overhead on 16 spinning shedders
		// steals real CPU from the single worker on small machines; the
		// uninstrumented build is where the 20% bound is held.
		tolerance = 0.4
	}
	// Up to 3 attempts: wall-clock throughput comparisons on a loaded
	// machine need the benefit of the doubt before failing the build.
	for attempt := 1; ; attempt++ {
		base, _ := run(2, window)
		over, busy := run(16, window)
		t.Logf("baseline=%d committed, overload=%d committed, %d shed", base, over, busy)
		if busy > 0 && float64(over) >= tolerance*float64(base) {
			break
		}
		if attempt == 3 {
			t.Fatalf("overload degraded: baseline=%d overload=%d shed=%d", base, over, busy)
		}
	}
}
