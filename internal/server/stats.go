package server

import (
	"sync/atomic"

	"repro/internal/wire"
)

// counters holds the server's atomically-updated statistics.
type counters struct {
	sessionsOpen        atomic.Int64
	sessionsPeak        atomic.Int64
	sessionsTotal       atomic.Uint64
	requests            atomic.Uint64
	batches             atomic.Uint64
	sheds               atomic.Uint64
	disconnectRollbacks atomic.Uint64
	idleCloses          atomic.Uint64
	queueHighWater      atomic.Int64
}

// maxInt64 raises a high-water mark.
func maxInt64(m *atomic.Int64, v int64) {
	for {
		cur := m.Load()
		if v <= cur || m.CompareAndSwap(cur, v) {
			return
		}
	}
}

func (c *counters) snapshot() wire.ServerStats {
	return wire.ServerStats{
		SessionsOpen:        c.sessionsOpen.Load(),
		SessionsPeak:        c.sessionsPeak.Load(),
		SessionsTotal:       c.sessionsTotal.Load(),
		Requests:            c.requests.Load(),
		Batches:             c.batches.Load(),
		Sheds:               c.sheds.Load(),
		DisconnectRollbacks: c.disconnectRollbacks.Load(),
		IdleCloses:          c.idleCloses.Load(),
		QueueHighWater:      c.queueHighWater.Load(),
	}
}
