package server

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	shoremt "repro"
	"repro/internal/wire"
)

// session binds one connection to the engine: the wire session id, the
// explicit transaction (if any), and the write half of the connection.
// Request execution is serialized per session — the reader does not
// parse the next frame until the worker finished the current one — so
// tx and the scratch buffers need no lock of their own.
type session struct {
	id   uint32
	srv  *Server
	conn net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	tx    *shoremt.Tx // open explicit transaction, nil otherwise
	hasTx atomic.Bool // mirrors tx != nil for janitor/shutdown peeks

	inflight   atomic.Bool
	lastActive atomic.Int64 // unix nanos of the last frame

	// Scratch buffers, reused across requests (safe: serialized).
	body wire.Enc // response body under construction
	out  []byte   // full response payload
}

// startSession registers conn and spawns its reader.
func (s *Server) startSession(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true) // request/response protocol: don't nagle
	}
	sess := &session{
		id:   s.nextSID.Add(1),
		srv:  s,
		conn: conn,
		bw:   bufio.NewWriter(conn),
	}
	sess.lastActive.Store(time.Now().UnixNano())
	s.mu.Lock()
	if s.shutdown.Load() {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.sessions[sess.id] = sess
	s.mu.Unlock()
	s.st.sessionsTotal.Add(1)
	maxInt64(&s.st.sessionsPeak, s.st.sessionsOpen.Add(1))
	s.readerWg.Add(1)
	go func() {
		defer s.readerWg.Done()
		sess.readLoop()
		sess.cleanup()
	}()
}

// reply writes one response frame; write errors are left to the read
// side to discover (the connection is torn either way).
func (sess *session) reply(status wire.Status, flags uint8, body []byte) {
	sess.out = wire.AppendResponse(sess.out[:0], status, flags, sess.id, body)
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if err := wire.WriteFrame(sess.bw, sess.out); err != nil {
		return
	}
	_ = sess.bw.Flush()
}

// replyErr writes an error response with a message body.
func (sess *session) replyErr(status wire.Status, flags uint8, msg string) {
	sess.reply(status, flags, []byte(msg))
}

// readLoop parses frames and pushes them through admission until the
// connection dies or turns protocol-broken.
func (sess *session) readLoop() {
	s := sess.srv
	br := bufio.NewReader(sess.conn)
	var buf []byte
	hello := false
	for {
		payload, err := wire.ReadFrame(br, &buf)
		if err != nil {
			if errors.Is(err, wire.ErrTooLarge) {
				// The stream cannot be resynchronized past an oversized
				// frame: report and hang up.
				sess.replyErr(wire.StatusTooLarge, 0, err.Error())
			}
			return
		}
		sess.lastActive.Store(time.Now().UnixNano())
		req, err := wire.ParseRequest(payload)
		if err != nil {
			// In-frame garbage: the framing is still synchronized, so
			// report and keep the connection.
			sess.replyErr(wire.StatusProto, 0, err.Error())
			continue
		}
		switch req.Op {
		case wire.OpHello:
			hello = true
			var e wire.Enc
			e.U32(sess.id)
			sess.reply(wire.StatusOK, 0, e.B)
			continue
		case wire.OpPing:
			sess.reply(wire.StatusOK, 0, nil)
			continue
		}
		if !hello || req.Session != sess.id {
			sess.replyErr(wire.StatusBadSession, 0, "session id mismatch (Hello first)")
			continue
		}

		// Admission control. Entry requests — the ones that would start
		// new work — go through the bounded queue to the worker pool and
		// are shed immediately when it is full. Continuation requests
		// (the session already holds an admitted transaction's locks)
		// run INLINE on this reader goroutine: routing them through the
		// same pool deadlocks under contention — every worker blocks in
		// a lock wait while the lock holders' commit frames sit
		// unserved behind them in the queue. Inline execution
		// guarantees lock holders always make progress, and the
		// per-session serialization (one frame at a time) still holds.
		if entryRequest(req) {
			if s.draining.Load() {
				sess.replyErr(wire.StatusClosing, 0, "server draining")
				continue
			}
			t := &task{sess: sess, req: req, done: make(chan struct{})}
			sess.inflight.Store(true)
			select {
			case s.tasks <- t:
			default:
				sess.inflight.Store(false)
				s.st.sheds.Add(1)
				sess.replyErr(wire.StatusBusy, 0, "admission queue full")
				continue
			}
			maxInt64(&s.st.queueHighWater, int64(len(s.tasks)))
			<-t.done // frame buffer and scratch are reusable again
			sess.inflight.Store(false)
		} else {
			sess.inflight.Store(true)
			s.serve(&task{sess: sess, req: req})
			sess.inflight.Store(false)
		}
	}
}

// entryRequest reports whether req starts new work (and is therefore
// sheddable), as opposed to continuing an already-admitted transaction.
func entryRequest(req wire.Request) bool {
	switch req.Op {
	case wire.OpBegin, wire.OpCreateTable, wire.OpCreateIndex:
		return true
	case wire.OpBatch:
		if len(req.Body) == 0 {
			return true // malformed; classify as entry, handler rejects
		}
		flags := req.Body[0]
		return flags&wire.BatchModeMask != wire.BatchSession ||
			flags&wire.BatchBegin != 0
	}
	return false
}

// cleanup runs when the reader exits: roll back whatever the session
// left open (rollback-on-disconnect) and deregister. No worker can be
// executing for this session here — the reader never exits between
// enqueue and done.
func (sess *session) cleanup() {
	s := sess.srv
	sess.conn.Close()
	if sess.tx != nil {
		_ = sess.tx.Abort()
		sess.setTx(nil) // also returns the open-transaction token
		s.st.disconnectRollbacks.Add(1)
	}
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.mu.Unlock()
	s.st.sessionsOpen.Add(-1)
}

// janitor reaps idle sessions: a connection with no traffic for
// IdleTimeout is closed, which funnels it through cleanup and rolls
// back its open transaction — an abandoned client cannot leak locks.
func (s *Server) janitor() {
	defer s.janitorWg.Done()
	interval := s.opts.IdleTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stopped:
			return
		case <-tick.C:
		}
		deadline := time.Now().Add(-s.opts.IdleTimeout).UnixNano()
		s.mu.Lock()
		var victims []*session
		for _, sess := range s.sessions {
			if !sess.inflight.Load() && sess.lastActive.Load() < deadline {
				victims = append(victims, sess)
			}
		}
		s.mu.Unlock()
		for _, sess := range victims {
			s.st.idleCloses.Add(1)
			s.logf("server: closing idle session %d", sess.id)
			sess.conn.Close()
		}
	}
}
