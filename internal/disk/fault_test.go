package disk

import (
	"errors"
	"testing"

	"repro/internal/page"
)

func TestFaultVolumeWrites(t *testing.T) {
	v := NewFault(NewMem(4))
	buf := make([]byte, page.Size)
	// Disabled by default.
	for i := 0; i < 3; i++ {
		if err := v.Write(1, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Fail after 2 more writes.
	v.FailWritesAfter(2)
	if err := v.Write(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(2, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(3, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write = %v, want injected", err)
	}
	// Stays failed until healed.
	if err := v.Write(3, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("fault did not persist")
	}
	v.HealWrites()
	if err := v.Write(3, buf); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFaultVolumeReads(t *testing.T) {
	v := NewFault(NewMem(4))
	buf := make([]byte, page.Size)
	v.FailReadsOf(2)
	if err := v.Read(1, buf); err != nil {
		t.Fatalf("unaffected page read failed: %v", err)
	}
	if err := v.Read(2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted read = %v, want injected", err)
	}
	v.HealReads()
	if err := v.Read(2, buf); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	// Pass-through of the rest of the interface.
	if v.NumPages() != 4 {
		t.Fatalf("NumPages = %d", v.NumPages())
	}
	if _, err := v.Grow(1); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}
