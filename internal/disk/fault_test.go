package disk

import (
	"errors"
	"testing"

	"repro/internal/page"
)

func TestFaultVolumeWrites(t *testing.T) {
	v := NewFault(NewMem(4))
	buf := make([]byte, page.Size)
	// Disabled by default.
	for i := 0; i < 3; i++ {
		if err := v.Write(1, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Fail after 2 more writes.
	v.FailWritesAfter(2)
	if err := v.Write(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(2, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(3, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write = %v, want injected", err)
	}
	// Stays failed until healed.
	if err := v.Write(3, buf); !errors.Is(err, ErrInjected) {
		t.Fatal("fault did not persist")
	}
	v.HealWrites()
	if err := v.Write(3, buf); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFaultVolumeReads(t *testing.T) {
	v := NewFault(NewMem(4))
	buf := make([]byte, page.Size)
	v.FailReadsOf(2)
	if err := v.Read(1, buf); err != nil {
		t.Fatalf("unaffected page read failed: %v", err)
	}
	if err := v.Read(2, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("targeted read = %v, want injected", err)
	}
	v.HealReads()
	if err := v.Read(2, buf); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	// Pass-through of the rest of the interface.
	if v.NumPages() != 4 {
		t.Fatalf("NumPages = %d", v.NumPages())
	}
	if _, err := v.Grow(1); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultVolumeTornWrites(t *testing.T) {
	v := NewFault(NewMem(2))
	old := make([]byte, page.Size)
	for i := range old {
		old[i] = 0x11
	}
	if err := v.Write(1, old); err != nil {
		t.Fatal(err)
	}

	// Arm: the second write from now tears after 100 bytes.
	v.TornWritesAfter(1, 100)
	full := make([]byte, page.Size)
	for i := range full {
		full[i] = 0x22
	}
	if err := v.Write(2, full); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(1, full); !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write = %v, want ErrInjected", err)
	}
	if v.TornWrites() != 1 {
		t.Fatalf("TornWrites = %d, want 1", v.TornWrites())
	}

	// The page now holds a mixed image: new prefix, old suffix.
	got := make([]byte, page.Size)
	if err := v.Read(1, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		want := byte(0x11)
		if i < 100 {
			want = 0x22
		}
		if b != want {
			t.Fatalf("byte %d = %#x, want %#x (torn boundary 100)", i, b, want)
		}
	}

	// One-shot: the next write goes through whole, repairing the page —
	// the recovery path for a surfaced torn write is a full rewrite of
	// the (still dirty) in-memory page.
	if err := v.Write(1, full); err != nil {
		t.Fatalf("write after torn fault: %v", err)
	}
	if err := v.Read(1, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0x22 {
			t.Fatalf("byte %d = %#x after repair rewrite", i, b)
		}
	}

	// Re-arm then heal: disarmed faults never fire.
	v.TornWritesAfter(0, 8)
	v.HealTornWrites()
	if err := v.Write(1, old); err != nil {
		t.Fatalf("healed write = %v", err)
	}
}

func TestFaultVolumeSyncs(t *testing.T) {
	v := NewFault(NewMem(1))
	if err := v.Sync(); err != nil {
		t.Fatalf("unarmed sync = %v", err)
	}
	v.FailSyncsAfter(1)
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed sync = %v, want ErrInjected", err)
	}
	if err := v.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("sync fault did not persist")
	}
	v.HealSyncs()
	if err := v.Sync(); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}
