package disk

import (
	"bytes"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/page"
)

func fill(b byte) []byte {
	buf := make([]byte, page.Size)
	for i := range buf {
		buf[i] = b
	}
	return buf
}

func testVolume(t *testing.T, v Volume) {
	t.Helper()
	if v.NumPages() != 0 {
		t.Fatalf("fresh volume has %d pages", v.NumPages())
	}
	first, err := v.Grow(4)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Fatalf("first grown page = %v, want 1", first)
	}
	if v.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", v.NumPages())
	}
	// Fresh pages read as zero.
	buf := make([]byte, page.Size)
	if err := v.Read(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, page.Size)) {
		t.Fatal("fresh page not zeroed")
	}
	// Round-trip.
	if err := v.Write(3, fill(0xab)); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xab)) {
		t.Fatal("round-trip mismatch")
	}
	// Bounds.
	if err := v.Read(0, buf); err == nil {
		t.Error("Read(0) did not fail")
	}
	if err := v.Read(5, buf); err == nil {
		t.Error("Read beyond end did not fail")
	}
	if err := v.Write(9, buf); err == nil {
		t.Error("Write beyond end did not fail")
	}
	// Size checks.
	if err := v.Read(1, make([]byte, 7)); err != page.ErrWrongSize {
		t.Errorf("short buffer Read err = %v", err)
	}
	if err := v.Write(1, make([]byte, 7)); err != page.ErrWrongSize {
		t.Errorf("short buffer Write err = %v", err)
	}
	// Grow again from existing size.
	next, err := v.Grow(2)
	if err != nil {
		t.Fatal(err)
	}
	if next != 5 {
		t.Fatalf("second Grow first page = %v, want 5", next)
	}
	if err := v.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(1, buf); err == nil {
		t.Error("Read after Close did not fail")
	}
}

func TestMemVolume(t *testing.T) {
	testVolume(t, NewMem(0))
}

func TestFileVolume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vol.db")
	v, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	testVolume(t, v)
	// Reopen: data persists.
	v2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	if v2.NumPages() != 6 {
		t.Fatalf("reopened NumPages = %d, want 6", v2.NumPages())
	}
	buf := make([]byte, page.Size)
	if err := v2.Read(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fill(0xab)) {
		t.Fatal("persisted page mismatch")
	}
}

func TestMemVolumeInitialSize(t *testing.T) {
	v := NewMem(10)
	if v.NumPages() != 10 {
		t.Fatalf("NumPages = %d, want 10", v.NumPages())
	}
	if st := v.Stats(); st.Reads != 0 || st.Writes != 0 {
		t.Error("fresh volume has nonzero stats")
	}
	buf := make([]byte, page.Size)
	if err := v.Write(10, fill(1)); err != nil {
		t.Fatal(err)
	}
	if err := v.Read(10, buf); err != nil {
		t.Fatal(err)
	}
	if st := v.Stats(); st.Reads != 1 || st.Writes != 1 {
		t.Errorf("stats = %+v, want 1/1", st)
	}
}

func TestMemVolumeConcurrent(t *testing.T) {
	v := NewMem(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]byte, page.Size)
			for i := 0; i < 200; i++ {
				pid := page.ID(g*8 + i%8 + 1) // disjoint pages per goroutine
				if err := v.Write(pid, fill(byte(g))); err != nil {
					t.Error(err)
					return
				}
				if err := v.Read(pid, buf); err != nil {
					t.Error(err)
					return
				}
				if buf[0] != byte(g) {
					t.Errorf("goroutine %d read %d", g, buf[0])
					return
				}
			}
		}(g)
	}
	// Concurrent growth.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := v.Grow(1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	if v.NumPages() != 84 {
		t.Fatalf("NumPages = %d, want 84", v.NumPages())
	}
}

func TestLatentAddsDelay(t *testing.T) {
	base := NewMem(1)
	v := NewLatent(base, 5*time.Millisecond, 5*time.Millisecond)
	buf := make([]byte, page.Size)
	start := time.Now()
	if err := v.Read(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(1, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Errorf("latent ops took %v, want >= 10ms", d)
	}
	// Zero-latency wrapper passes through.
	fast := NewLatent(base, 0, 0)
	if err := fast.Read(1, buf); err != nil {
		t.Fatal(err)
	}
}
