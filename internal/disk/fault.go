package disk

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/page"
)

// ErrInjected is the error produced by FaultVolume failures.
var ErrInjected = errors.New("disk: injected fault")

// FaultVolume wraps a Volume with programmable failure injection, for
// testing that the storage manager surfaces (rather than swallows) I/O
// errors and keeps its invariants when the disk misbehaves.
type FaultVolume struct {
	Volume
	// FailWritesAfter fails every Write once the counter reaches zero
	// (negative = disabled).
	failWritesAfter atomic.Int64
	// failReadPID fails reads of one specific page (0 = disabled).
	failReadPID atomic.Uint64
	// tornWritesAfter arms a one-shot torn write: when the counter
	// reaches zero, the write stores only tornPrefix bytes of the buffer
	// (the rest of the page keeps its old content) and then fails.
	tornWritesAfter atomic.Int64
	tornPrefix      atomic.Int64
	// failSyncsAfter fails every Sync once the counter reaches zero
	// (negative = disabled).
	failSyncsAfter atomic.Int64
	reads          atomic.Uint64
	writes         atomic.Uint64
	torn           atomic.Uint64
}

// NewFault wraps v with fault injection disabled.
func NewFault(v Volume) *FaultVolume {
	f := &FaultVolume{Volume: v}
	f.failWritesAfter.Store(-1)
	f.tornWritesAfter.Store(-1)
	f.failSyncsAfter.Store(-1)
	return f
}

// FailWritesAfter arms write failure after n more successful writes.
func (f *FaultVolume) FailWritesAfter(n int64) { f.failWritesAfter.Store(n) }

// HealWrites disarms write failures.
func (f *FaultVolume) HealWrites() { f.failWritesAfter.Store(-1) }

// FailReadsOf arms read failure for page pid.
func (f *FaultVolume) FailReadsOf(pid page.ID) { f.failReadPID.Store(uint64(pid)) }

// HealReads disarms read failures.
func (f *FaultVolume) HealReads() { f.failReadPID.Store(0) }

// TornWritesAfter arms a one-shot torn write after n more successful
// writes: the victim write persists only the first prefix bytes of its
// buffer — the partial sector train a dying disk leaves behind — and
// returns ErrInjected. The caller keeps its dirty in-memory copy, so a
// later successful full-page write repairs the image.
func (f *FaultVolume) TornWritesAfter(n, prefix int64) {
	if prefix < 0 {
		prefix = 0
	}
	if prefix > int64(page.Size) {
		prefix = int64(page.Size)
	}
	f.tornPrefix.Store(prefix)
	f.tornWritesAfter.Store(n)
}

// HealTornWrites disarms torn-write injection.
func (f *FaultVolume) HealTornWrites() { f.tornWritesAfter.Store(-1) }

// FailSyncsAfter arms sync failure after n more successful syncs.
func (f *FaultVolume) FailSyncsAfter(n int64) { f.failSyncsAfter.Store(n) }

// HealSyncs disarms sync failures.
func (f *FaultVolume) HealSyncs() { f.failSyncsAfter.Store(-1) }

// TornWrites reports how many torn writes have been injected.
func (f *FaultVolume) TornWrites() uint64 { return f.torn.Load() }

// Read implements Volume.
func (f *FaultVolume) Read(pid page.ID, buf []byte) error {
	if f.failReadPID.Load() == uint64(pid) && pid != 0 {
		return ErrInjected
	}
	f.reads.Add(1)
	return f.Volume.Read(pid, buf)
}

// Write implements Volume.
func (f *FaultVolume) Write(pid page.ID, buf []byte) error {
	for {
		n := f.failWritesAfter.Load()
		if n < 0 {
			break
		}
		if n == 0 {
			return ErrInjected
		}
		if f.failWritesAfter.CompareAndSwap(n, n-1) {
			break
		}
	}
	for {
		n := f.tornWritesAfter.Load()
		if n < 0 {
			break
		}
		if !f.tornWritesAfter.CompareAndSwap(n, n-1) {
			continue
		}
		if n > 0 {
			break
		}
		// One-shot: persist a prefix of the buffer over the old page
		// image, then report failure.
		f.tornWritesAfter.Store(-1)
		f.torn.Add(1)
		prefix := f.tornPrefix.Load()
		old := make([]byte, page.Size)
		if err := f.Volume.Read(pid, old); err == nil {
			copy(old[:prefix], buf[:prefix])
			_ = f.Volume.Write(pid, old)
		}
		return fmt.Errorf("%w: torn write of %v (%d of %d bytes)", ErrInjected, pid, prefix, len(buf))
	}
	f.writes.Add(1)
	return f.Volume.Write(pid, buf)
}

// Sync implements Volume.
func (f *FaultVolume) Sync() error {
	for {
		n := f.failSyncsAfter.Load()
		if n < 0 {
			break
		}
		if n == 0 {
			return ErrInjected
		}
		if f.failSyncsAfter.CompareAndSwap(n, n-1) {
			break
		}
	}
	return f.Volume.Sync()
}

var _ Volume = (*FaultVolume)(nil)
