package disk

import (
	"errors"
	"sync/atomic"

	"repro/internal/page"
)

// ErrInjected is the error produced by FaultVolume failures.
var ErrInjected = errors.New("disk: injected fault")

// FaultVolume wraps a Volume with programmable failure injection, for
// testing that the storage manager surfaces (rather than swallows) I/O
// errors and keeps its invariants when the disk misbehaves.
type FaultVolume struct {
	Volume
	// FailWritesAfter fails every Write once the counter reaches zero
	// (negative = disabled).
	failWritesAfter atomic.Int64
	// failReadPID fails reads of one specific page (0 = disabled).
	failReadPID atomic.Uint64
	reads       atomic.Uint64
	writes      atomic.Uint64
}

// NewFault wraps v with fault injection disabled.
func NewFault(v Volume) *FaultVolume {
	f := &FaultVolume{Volume: v}
	f.failWritesAfter.Store(-1)
	return f
}

// FailWritesAfter arms write failure after n more successful writes.
func (f *FaultVolume) FailWritesAfter(n int64) { f.failWritesAfter.Store(n) }

// HealWrites disarms write failures.
func (f *FaultVolume) HealWrites() { f.failWritesAfter.Store(-1) }

// FailReadsOf arms read failure for page pid.
func (f *FaultVolume) FailReadsOf(pid page.ID) { f.failReadPID.Store(uint64(pid)) }

// HealReads disarms read failures.
func (f *FaultVolume) HealReads() { f.failReadPID.Store(0) }

// Read implements Volume.
func (f *FaultVolume) Read(pid page.ID, buf []byte) error {
	if f.failReadPID.Load() == uint64(pid) && pid != 0 {
		return ErrInjected
	}
	f.reads.Add(1)
	return f.Volume.Read(pid, buf)
}

// Write implements Volume.
func (f *FaultVolume) Write(pid page.ID, buf []byte) error {
	for {
		n := f.failWritesAfter.Load()
		if n < 0 {
			break
		}
		if n == 0 {
			return ErrInjected
		}
		if f.failWritesAfter.CompareAndSwap(n, n-1) {
			break
		}
	}
	f.writes.Add(1)
	return f.Volume.Write(pid, buf)
}

var _ Volume = (*FaultVolume)(nil)
