// Package disk provides the volume substrate: a flat, page-addressed store
// with memory and file backends and an optional latency model.
//
// The paper's experimental setup keeps I/O off the critical path (4 GB
// buffer pools, log on an in-memory file system); accordingly the default
// backend is memory with zero latency, and the latency wrapper exists for
// tests that need "transaction blocks on I/O while holding a latch"
// behaviour (§2.2.2).
package disk

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/page"
)

// Errors returned by volumes.
var (
	ErrOutOfRange = errors.New("disk: page id beyond volume size")
	ErrClosed     = errors.New("disk: volume closed")
)

// Volume is a page-addressed store. Page IDs start at 1; page 0 is invalid.
// Concurrent Read/Write calls on distinct pages are safe; callers must
// serialize access to the same page (the buffer pool's latches do).
type Volume interface {
	// Read copies page pid into buf (page.Size bytes).
	Read(pid page.ID, buf []byte) error
	// Write copies buf (page.Size bytes) into page pid.
	Write(pid page.ID, buf []byte) error
	// NumPages returns the current size of the volume in pages.
	NumPages() uint64
	// Grow extends the volume by n zeroed pages and returns the ID of the
	// first new page.
	Grow(n int) (page.ID, error)
	// Sync flushes the backend (no-op for memory).
	Sync() error
	// Close releases resources.
	Close() error
}

// Stats counts volume traffic.
type Stats struct {
	Reads, Writes uint64
}

// MemVolume is a memory-backed volume.
type MemVolume struct {
	mu     sync.RWMutex
	pages  [][]byte
	closed bool
	reads  atomic.Uint64
	writes atomic.Uint64
}

// NewMem creates a memory volume with n initial pages.
func NewMem(n int) *MemVolume {
	v := &MemVolume{}
	if n > 0 {
		if _, err := v.Grow(n); err != nil {
			panic(err) // cannot happen on a fresh open volume
		}
	}
	return v
}

// Read implements Volume.
func (v *MemVolume) Read(pid page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return page.ErrWrongSize
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	i := int(pid) - 1
	if pid == page.InvalidID || i >= len(v.pages) {
		return fmt.Errorf("%w: %v (size %d)", ErrOutOfRange, pid, len(v.pages))
	}
	copy(buf, v.pages[i])
	v.reads.Add(1)
	return nil
}

// Write implements Volume.
func (v *MemVolume) Write(pid page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return page.ErrWrongSize
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	i := int(pid) - 1
	if pid == page.InvalidID || i >= len(v.pages) {
		return fmt.Errorf("%w: %v (size %d)", ErrOutOfRange, pid, len(v.pages))
	}
	copy(v.pages[i], buf)
	v.writes.Add(1)
	return nil
}

// NumPages implements Volume.
func (v *MemVolume) NumPages() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return uint64(len(v.pages))
}

// Grow implements Volume.
func (v *MemVolume) Grow(n int) (page.ID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, ErrClosed
	}
	first := page.ID(len(v.pages) + 1)
	for i := 0; i < n; i++ {
		v.pages = append(v.pages, make([]byte, page.Size))
	}
	return first, nil
}

// Sync implements Volume (no-op).
func (v *MemVolume) Sync() error { return nil }

// Clone returns an independent deep copy of the volume (for recovery
// equivalence tests).
func (v *MemVolume) Clone() *MemVolume {
	v.mu.RLock()
	defer v.mu.RUnlock()
	nv := &MemVolume{pages: make([][]byte, len(v.pages))}
	for i, p := range v.pages {
		nv.pages[i] = append([]byte(nil), p...)
	}
	return nv
}

// Close implements Volume.
func (v *MemVolume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.closed = true
	return nil
}

// Stats returns traffic counters.
func (v *MemVolume) Stats() Stats {
	return Stats{Reads: v.reads.Load(), Writes: v.writes.Load()}
}

// FileVolume is a file-backed volume using positional reads and writes.
type FileVolume struct {
	mu     sync.RWMutex
	f      *os.File
	npages uint64
	closed bool
	reads  atomic.Uint64
	writes atomic.Uint64
}

// OpenFile opens (or creates) a file-backed volume.
func OpenFile(path string) (*FileVolume, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileVolume{f: f, npages: uint64(st.Size()) / page.Size}, nil
}

// Read implements Volume.
func (v *FileVolume) Read(pid page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return page.ErrWrongSize
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	if pid == page.InvalidID || uint64(pid) > v.npages {
		return fmt.Errorf("%w: %v (size %d)", ErrOutOfRange, pid, v.npages)
	}
	if _, err := v.f.ReadAt(buf, int64(pid-1)*page.Size); err != nil {
		return err
	}
	v.reads.Add(1)
	return nil
}

// Write implements Volume.
func (v *FileVolume) Write(pid page.ID, buf []byte) error {
	if len(buf) != page.Size {
		return page.ErrWrongSize
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	if pid == page.InvalidID || uint64(pid) > v.npages {
		return fmt.Errorf("%w: %v (size %d)", ErrOutOfRange, pid, v.npages)
	}
	if _, err := v.f.WriteAt(buf, int64(pid-1)*page.Size); err != nil {
		return err
	}
	v.writes.Add(1)
	return nil
}

// NumPages implements Volume.
func (v *FileVolume) NumPages() uint64 {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.npages
}

// Grow implements Volume.
func (v *FileVolume) Grow(n int) (page.ID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return 0, ErrClosed
	}
	first := page.ID(v.npages + 1)
	newSize := int64(v.npages+uint64(n)) * page.Size
	if err := v.f.Truncate(newSize); err != nil {
		return 0, err
	}
	v.npages += uint64(n)
	return first, nil
}

// Sync implements Volume.
func (v *FileVolume) Sync() error {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if v.closed {
		return ErrClosed
	}
	return v.f.Sync()
}

// Close implements Volume.
func (v *FileVolume) Close() error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.closed {
		return nil
	}
	v.closed = true
	return v.f.Close()
}

// Stats returns traffic counters.
func (v *FileVolume) Stats() Stats {
	return Stats{Reads: v.reads.Load(), Writes: v.writes.Load()}
}

// Latent wraps a Volume and adds a fixed service time per operation,
// simulating disk latency for tests that need blocking I/O on the critical
// path.
type Latent struct {
	Volume
	ReadLatency  time.Duration
	WriteLatency time.Duration
}

// NewLatent wraps v with per-op latencies.
func NewLatent(v Volume, read, write time.Duration) *Latent {
	return &Latent{Volume: v, ReadLatency: read, WriteLatency: write}
}

// Read sleeps for the read latency, then delegates.
func (l *Latent) Read(pid page.ID, buf []byte) error {
	if l.ReadLatency > 0 {
		time.Sleep(l.ReadLatency)
	}
	return l.Volume.Read(pid, buf)
}

// Write sleeps for the write latency, then delegates.
func (l *Latent) Write(pid page.ID, buf []byte) error {
	if l.WriteLatency > 0 {
		time.Sleep(l.WriteLatency)
	}
	return l.Volume.Write(pid, buf)
}

var (
	_ Volume = (*MemVolume)(nil)
	_ Volume = (*FileVolume)(nil)
	_ Volume = (*Latent)(nil)
)
