package tpcc

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/tx"
	"repro/internal/wal"
)

// newPlpDB opens a PLP engine (physiologically partitioned B-trees over
// DORA) and loads TPC-C into it: the warehouse-prefixed indexes become
// per-partition segment forests. rebalance < 0 disables the skew
// re-balancer for deterministic tests.
func newPlpDB(t testing.TB, scale Scale, partitions int, rebalance time.Duration) *DB {
	t.Helper()
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	cfg.PLP = true
	cfg.DoraPartitions = partitions
	cfg.DoraKeys = scale.Warehouses
	cfg.PlpRebalanceEvery = rebalance
	e, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	db, err := Load(e, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// verifyForests checks structural integrity and segment routing of every
// partitioned index (and the shared ITEM tree).
func verifyForests(t *testing.T, db *DB) {
	t.Helper()
	for _, ix := range []struct {
		name string
		ix   *core.Index
	}{
		{"warehouse", db.Warehouse}, {"district", db.District},
		{"customer", db.Customer}, {"orders", db.Orders},
		{"neworder", db.NewOrderTab}, {"orderline", db.OrderLine},
		{"stock", db.Stock}, {"item", db.Item},
	} {
		if _, err := ix.ix.Verify(); err != nil {
			t.Errorf("%s: Verify: %v", ix.name, err)
		}
	}
}

// TestPlpLatchBypass drives partition-local Payments and Order-Status
// reads through the executor and asserts the latch-free contract: every
// index operation lands on the Owner* counters while the shared-tree
// descent counters (optimistic and latched alike) stay flat — partition
// owners never take a B-tree latch beyond the single-leaf write fence.
func TestPlpLatchBypass(t *testing.T) {
	scale := Scale{Warehouses: 4, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newPlpDB(t, scale, 2, -1)
	ctx := context.Background()

	if db.Engine.PlpMap() == nil {
		t.Fatal("no partition map")
	}
	before := db.Engine.Stats().Btree

	r := NewRand(11)
	for i := 0; i < 200; i++ {
		w := uint32(i%scale.Warehouses + 1)
		d := uint8(r.Int(1, scale.Districts))
		c := uint32(r.Int(1, scale.Customers))
		in := PaymentInput{
			WID: w, DID: d, CWID: w, CDID: d, CID: c,
			Amount: float64(r.Int(1, 500)),
		}
		if err := db.DoraPayment(ctx, in); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if _, err := db.DoraOrderStatus(ctx, OrderStatusInput{WID: w, DID: d, CID: c}); err != nil {
				t.Fatal(err)
			}
		}
	}

	after := db.Engine.Stats().Btree
	if after.OwnerDescents <= before.OwnerDescents {
		t.Error("owner write descents did not climb")
	}
	if after.OwnerWrites <= before.OwnerWrites {
		t.Error("owner writes did not climb")
	}
	if after.OwnerReads <= before.OwnerReads {
		t.Error("owner point reads did not climb")
	}
	if after.OwnerScans <= before.OwnerScans {
		t.Error("owner scans did not climb")
	}
	if after.OptDescents != before.OptDescents {
		t.Errorf("shared optimistic descents moved: %d -> %d", before.OptDescents, after.OptDescents)
	}
	if after.LatchedDescents != before.LatchedDescents {
		t.Errorf("latched descents moved: %d -> %d", before.LatchedDescents, after.LatchedDescents)
	}
	if after.OwnerFallbacks != before.OwnerFallbacks {
		t.Errorf("owner fallbacks moved: %d -> %d", before.OwnerFallbacks, after.OwnerFallbacks)
	}
}

// TestPlpCrossPartitionStress is the DORA cross-partition stress shaped
// for PLP (run under -race in CI): forced-remote Payments and New Orders
// from many goroutines, then a money/order audit and a full forest
// Verify — segment routing intact, every key in its owner's sub-range.
func TestPlpCrossPartitionStress(t *testing.T) {
	scale := Scale{Warehouses: 4, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newPlpDB(t, scale, 2, -1)
	ctx := context.Background()

	const (
		workers = 8
		iters   = 40
	)
	var whYTD [5]atomic.Int64
	var orders [5][3]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRand(int64(7100 + w))
			home := uint32(w%scale.Warehouses + 1)
			remote := home%uint32(scale.Warehouses) + 1
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					amount := float64(r.Int(1, 500))
					in := PaymentInput{
						WID: home, DID: uint8(r.Int(1, scale.Districts)),
						CWID: remote, CDID: uint8(r.Int(1, scale.Districts)),
						CID: uint32(r.Int(1, scale.Customers)), Amount: amount,
					}
					if err := db.DoraPayment(ctx, in); err != nil {
						t.Error(err)
						return
					}
					whYTD[home].Add(int64(amount))
				} else {
					did := uint8(r.Int(1, scale.Districts))
					in := NewOrderInput{
						WID: home, DID: did, CID: uint32(r.Int(1, scale.Customers)),
						Lines: []NewOrderLine{
							{ItemID: uint32(r.Int(1, scale.Items)), SupplyWID: home, Quantity: 1 + uint8(i%5)},
							{ItemID: uint32(r.Int(1, scale.Items)), SupplyWID: remote, Quantity: 1 + uint8(w%5)},
						},
					}
					if err := db.DoraNewOrder(ctx, in); err != nil {
						t.Error(err)
						return
					}
					orders[home][did].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	rd, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Engine.Abort(rd)
	for w := 1; w <= scale.Warehouses; w++ {
		wh, err := db.readWarehouse(ctx, rd, uint32(w))
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(whYTD[w].Load()); wh.YTD != want {
			t.Errorf("warehouse %d YTD = %v, want %v (lost update)", w, wh.YTD, want)
		}
		for d := 1; d <= scale.Districts; d++ {
			dist, err := db.readDistrict(ctx, rd, uint32(w), uint8(d))
			if err != nil {
				t.Fatal(err)
			}
			want := uint32(scale.InitialOrders) + 1 + uint32(orders[w][d].Load())
			if dist.NextOID != want {
				t.Errorf("district (%d,%d) NextOID = %d, want %d", w, d, dist.NextOID, want)
			}
		}
	}

	verifyForests(t, db)

	st := db.Engine.Stats()
	if st.Dora.CrossTx == 0 {
		t.Error("no cross-partition transactions ran")
	}
	if st.Btree.OwnerWrites == 0 {
		t.Error("no owner-path writes recorded")
	}
	if st.Plp.Tables == 0 {
		t.Error("no partitioned indexes registered")
	}
}

// TestPlpSnapshotCoexistence runs lock-free View readers scanning a
// partitioned forest while partition-local writers commit through the
// executor (run under -race in CI): every snapshot scan must see a
// stable, fully stitched customer count in global key order, and the
// version-memory gauges must account for the writers' installs.
func TestPlpSnapshotCoexistence(t *testing.T) {
	scale := Scale{Warehouses: 4, Districts: 2, Customers: 20, Items: 50, StockPerItem: true}
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 4096
	cfg.PLP = true
	cfg.DoraPartitions = 2
	cfg.DoraKeys = scale.Warehouses
	cfg.PlpRebalanceEvery = -1
	cfg.Snapshot = true
	e, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	db, err := Load(e, scale, 42)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	wantCustomers := scale.Warehouses * scale.Districts * scale.Customers
	done := make(chan struct{})

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRand(int64(8200 + w))
			home := uint32(w%scale.Warehouses + 1)
			remote := home%uint32(scale.Warehouses) + 1
			for i := 0; i < 60; i++ {
				cw := home
				if i%3 == 0 {
					cw = remote
				}
				in := PaymentInput{
					WID: home, DID: uint8(r.Int(1, scale.Districts)),
					CWID: cw, CDID: uint8(r.Int(1, scale.Districts)),
					CID: uint32(r.Int(1, scale.Customers)), Amount: float64(r.Int(1, 500)),
				}
				if err := db.DoraPayment(ctx, in); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	go func() { wg.Wait(); close(done) }()

	var rg sync.WaitGroup
	for c := 0; c < 2; c++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for scans := 0; ; scans++ {
				select {
				case <-done:
					if scans == 0 {
						t.Error("reader finished without a single scan")
					}
					return
				default:
				}
				n := 0
				var prev []byte
				err := db.Engine.RunViewCtx(ctx, core.RetryPolicy{}, func(vt *tx.Tx) error {
					return db.Engine.IndexScanCtx(ctx, vt, db.Customer, nil, nil, func(k, v []byte) bool {
						if prev != nil && bytes.Compare(prev, k) >= 0 {
							t.Errorf("stitched scan out of order: %x after %x", k, prev)
							return false
						}
						prev = append(prev[:0], k...)
						if _, err := decodeCustomer(v); err != nil {
							t.Errorf("torn customer row: %v", err)
							return false
						}
						n++
						return true
					})
				})
				if err != nil {
					t.Error(err)
					return
				}
				if n != wantCustomers {
					t.Errorf("snapshot scan saw %d customers, want %d", n, wantCustomers)
					return
				}
			}
		}()
	}
	rg.Wait()
	wg.Wait()
	verifyForests(t, db)

	m := db.Engine.Stats().Mvcc
	if m.VersionsInstalled == 0 {
		t.Error("no versions installed by partition-local writers")
	}
	if m.LiveBytes <= 0 {
		t.Errorf("LiveBytes gauge = %d, want > 0", m.LiveBytes)
	}
	if m.ChainLenHW < 1 {
		t.Errorf("ChainLenHW = %d, want >= 1", m.ChainLenHW)
	}
	if m.Snapshots == 0 {
		t.Error("no snapshot transactions recorded")
	}
}

// TestPlpRebalanceSkew aims the whole write mix at the two warehouses of
// one partition and waits for the re-balancer to migrate the boundary
// key to its neighbor, then audits correctness: migrations are pure
// metadata flips, so the money sums and forest structure must be exactly
// as if the load had never moved.
func TestPlpRebalanceSkew(t *testing.T) {
	scale := Scale{Warehouses: 8, Districts: 1, Customers: 5, Items: 20, StockPerItem: true}
	// Ticks long enough that even a race-detector-throttled run clears
	// the re-balancer's minimum per-tick sample (plpMinSample).
	db := newPlpDB(t, scale, 4, 50*time.Millisecond)
	v0 := db.Engine.Stats().Plp.MapVersion

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var whYTD [9]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRand(int64(9300 + w))
			// All load on warehouses 1 and 2 — both initially owned by
			// partition 0 (even bounds over 8 keys, 4 partitions).
			home := uint32(w%2 + 1)
			for ctx.Err() == nil {
				amount := float64(r.Int(1, 100))
				in := PaymentInput{
					WID: home, DID: 1, CWID: home, CDID: 1,
					CID: uint32(r.Int(1, scale.Customers)), Amount: amount,
				}
				if err := db.DoraPayment(ctx, in); err != nil {
					if ctx.Err() != nil {
						return
					}
					t.Error(err)
					return
				}
				whYTD[home].Add(int64(amount))
			}
		}(w)
	}

	// Wait for the re-balancer's stable terminal state under this load:
	// each hot warehouse alone in a singleton partition. Intermediate
	// states can oscillate (a quiet tick on one hot warehouse lets its
	// neighbor shed the boundary key back), but once both spans hit 1
	// neither partition is eligible as a migration source again, so the
	// separation is permanent and safe to assert after cancel.
	deadline := time.After(20 * time.Second)
	for separated := false; !separated; {
		select {
		case <-deadline:
			cancel()
			wg.Wait()
			t.Fatalf("hot warehouses not separated after 20s: stats %+v, bounds %v",
				db.Engine.Stats().Plp, db.Engine.PlpMap().Bounds())
		case <-time.After(10 * time.Millisecond):
			m := db.Engine.PlpMap()
			b := m.Bounds()
			o1, o2 := m.Owner(1), m.Owner(2)
			separated = o1 != o2 && b[o1+1]-b[o1] == 1 && b[o2+1]-b[o2] == 1
		}
	}
	cancel()
	wg.Wait()
	if t.Failed() {
		return
	}

	st := db.Engine.Stats().Plp
	if st.MapVersion <= v0 {
		t.Errorf("map version did not advance: %d -> %d", v0, st.MapVersion)
	}
	if st.Migrations < 1 {
		t.Errorf("migrations = %d, want >= 1", st.Migrations)
	}
	m := db.Engine.PlpMap()
	if m.Owner(1) == m.Owner(2) {
		t.Errorf("hot warehouses still share partition %d (bounds %v)", m.Owner(1), m.Bounds())
	}

	// Correctness audit: a migration must not lose or duplicate a cent.
	// (Fresh context: ctx was canceled to stop the workers.)
	actx := context.Background()
	rd, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Engine.Abort(rd)
	for w := 1; w <= scale.Warehouses; w++ {
		wh, err := db.readWarehouse(actx, rd, uint32(w))
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(whYTD[w].Load()); wh.YTD != want {
			t.Errorf("warehouse %d YTD = %v, want %v", w, wh.YTD, want)
		}
	}
	verifyForests(t, db)
}
