package tpcc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dora"
	"repro/internal/lock"
	"repro/internal/tx"
)

// Data-oriented decompositions of the five TPC-C transactions. The
// keyspace is partitioned by warehouse (Executor.Route), and each
// transaction becomes one action per partition it touches. Partition-
// local lock keys form a small hierarchy anchored on the warehouse:
// fine-grained actions take an intent mode on the warehouse anchor plus
// absolute modes on the rows they touch; coarse transactions (Delivery,
// Stock-Level) take an absolute mode on the anchor alone. The ITEM
// table is read-only after load and needs no lock at all.
//
// Cross-partition writes stay logically consistent without cross-
// partition lock names: a remote New Order action inserts ORDER_LINE
// rows keyed by the home district, but the same transaction's home
// action holds that district's X lock until the rendezvous releases
// both actions together, so no reader can observe a torn order.
// Physical safety is the B-tree latches', as everywhere else.
//
// Commit visibility across partitions follows the engine's early-lock-
// release precedent (StagePipeline): each partition commits its sub-
// transaction independently after the unanimous decision, so a reader
// on one partition can see a decided transaction's writes a moment
// before a sibling partition's commit record lands. A crash inside
// that window rolls the laggard back — the same contract CommitAsync
// already documents.

// ErrDoraDisabled is returned by the Dora* entrypoints when the engine
// was opened without Config.DORA.
var ErrDoraDisabled = errors.New("tpcc: engine has no DORA executor")

// Partition-local lock key encoding: kind in the top byte, warehouse /
// district / row ids packed below (districts < 2^8, customers < 2^24,
// items and warehouses < 2^32).
const (
	dkWarehouse = uint64(iota+1) << 56 // per-warehouse hierarchy anchor
	dkWRow                             // the warehouse row itself
	dkDistrict
	dkCustomer
	dkStock
)

func kWh(w uint32) uint64            { return dkWarehouse | uint64(w) }
func kWRow(w uint32) uint64          { return dkWRow | uint64(w) }
func kDist(w uint32, d uint8) uint64 { return dkDistrict | uint64(w)<<8 | uint64(d) }
func kCust(w uint32, d uint8, c uint32) uint64 {
	return dkCustomer | uint64(w)<<32 | uint64(d)<<24 | uint64(c)
}
func kStock(w, i uint32) uint64 { return dkStock | uint64(w)<<32 | uint64(i) }

// lockList builds a deduplicated lock set (same key twice folds modes
// via Supremum, like the lock manager's conversion rule).
type lockList []dora.LockReq

func (l *lockList) add(key uint64, m lock.Mode) {
	for i := range *l {
		if (*l)[i].Key == key {
			(*l)[i].Mode = lock.Supremum((*l)[i].Mode, m)
			return
		}
	}
	*l = append(*l, dora.LockReq{Key: key, Mode: m})
}

// DoraPayment runs one Payment through the partition executor: a single
// home-partition action for local customers; for remote customers, the
// home (warehouse + district + history) and customer updates run as
// independent actions on their partitions and rendezvous at commit.
func (db *DB) DoraPayment(ctx context.Context, in PaymentInput) error {
	x := db.Engine.Dora()
	if x == nil {
		return ErrDoraDisabled
	}
	t := x.NewTxn(ctx)
	var home lockList
	home.add(kWh(in.WID), lock.IX)
	home.add(kWRow(in.WID), lock.X)
	home.add(kDist(in.WID, in.DID), lock.X)
	homeP := x.Route(in.WID)
	custP := x.Route(in.CWID)
	// With a static router, any customer warehouse that routes home can be
	// folded into the home action. Under PLP the router can change between
	// planning and Submit (a migration), so actions are merged only when
	// they name the same warehouse — every action's lock set must live in
	// the table of the partition that owns its route key at Submit time.
	merged := in.CWID == in.WID || (db.Engine.PlpMap() == nil && custP == homeP)
	if merged {
		// One partition owns both sides: a single action, no rendezvous.
		home.add(kWh(in.CWID), lock.IX)
		home.add(kCust(in.CWID, in.CDID, in.CID), lock.X)
		t.Add(dora.ActionSpec{
			Partition: homeP,
			RouteKey:  in.WID,
			Locks:     home,
			Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
				if err := db.paymentHome(ctx, sub, in); err != nil {
					return err
				}
				return db.paymentCustomer(ctx, sub, in)
			},
		})
	} else {
		t.Add(dora.ActionSpec{
			Partition: homeP,
			RouteKey:  in.WID,
			Locks:     home,
			Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
				return db.paymentHome(ctx, sub, in)
			},
		})
		var cust lockList
		cust.add(kWh(in.CWID), lock.IX)
		cust.add(kCust(in.CWID, in.CDID, in.CID), lock.X)
		t.Add(dora.ActionSpec{
			Partition: custP,
			RouteKey:  in.CWID,
			Locks:     cust,
			Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
				return db.paymentCustomer(ctx, sub, in)
			},
		})
	}
	return x.Submit(t)
}

// paymentHome is Payment's home-partition half: warehouse and district
// YTD plus the history append (which needs both names).
func (db *DB) paymentHome(ctx context.Context, t *tx.Tx, in PaymentInput) error {
	e := db.Engine
	wh, err := db.readWarehouse(ctx, t, in.WID)
	if err != nil {
		return err
	}
	wh.YTD += in.Amount
	if err := e.IndexUpdateCtx(ctx, t, db.Warehouse, wKey(in.WID), wh.encode()); err != nil {
		return err
	}
	dist, err := db.readDistrict(ctx, t, in.WID, in.DID)
	if err != nil {
		return err
	}
	dist.YTD += in.Amount
	if err := e.IndexUpdateCtx(ctx, t, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
		return err
	}
	h := History{
		CID: in.CID, CDID: in.CDID, CWID: in.CWID,
		DID: in.DID, WID: in.WID,
		Date: time.Now().UnixNano(), Amount: in.Amount,
		Data: wh.Name + "    " + dist.Name,
	}
	_, err = e.HeapInsertCtx(ctx, t, db.History, h.encode())
	return err
}

// paymentCustomer is Payment's customer half: balance and payment stats
// on the (possibly remote) customer warehouse.
func (db *DB) paymentCustomer(ctx context.Context, t *tx.Tx, in PaymentInput) error {
	cust, err := db.readCustomer(ctx, t, in.CWID, in.CDID, in.CID)
	if err != nil {
		return err
	}
	cust.Balance -= in.Amount
	cust.YTDPayment += in.Amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		info := fmt.Sprintf("%d %d %d %d %d %.2f|", in.CID, in.CDID, in.CWID, in.DID, in.WID, in.Amount)
		cust.Data = info + cust.Data
		if len(cust.Data) > 500 {
			cust.Data = cust.Data[:500]
		}
	}
	return db.Engine.IndexUpdateCtx(ctx, t, db.Customer, cKey(in.CWID, in.CDID, in.CID), cust.encode())
}

// DoraNewOrder runs one New Order through the partition executor. The
// home action allocates the order id (publishing it as the rendezvous
// input), inserts the ORDERS/NEW_ORDER rows, and processes every line
// whose supply warehouse routes to the home partition; lines for other
// partitions become dependent actions that park until the order id
// arrives. The spec's 1% rollback surfaces as ErrUserAbort with every
// partition rolled back.
func (db *DB) DoraNewOrder(ctx context.Context, in NewOrderInput) error {
	x := db.Engine.Dora()
	if x == nil {
		return ErrDoraDisabled
	}
	homeP := x.Route(in.WID)

	type lineRef struct {
		idx  int
		line NewOrderLine
	}
	// Lines are grouped into one action per partition. With a static
	// router the planning-time Route is authoritative; under PLP a
	// migration can re-route between planning and Submit, so lines are
	// grouped by supply warehouse instead — each group's lock set then
	// names only that warehouse's resources, and Submit places it on
	// whichever partition owns the warehouse at that instant.
	plp := db.Engine.PlpMap() != nil
	var homeLines []lineRef
	remote := make(map[uint32][]lineRef) // keyed by warehouse (PLP) or partition (static)
	for i, l := range in.Lines {
		ref := lineRef{idx: i, line: l}
		if plp {
			if l.SupplyWID == in.WID {
				homeLines = append(homeLines, ref)
			} else {
				remote[l.SupplyWID] = append(remote[l.SupplyWID], ref)
			}
		} else if p := x.Route(l.SupplyWID); p == homeP {
			homeLines = append(homeLines, ref)
		} else {
			remote[uint32(p)] = append(remote[uint32(p)], ref)
		}
	}

	t := x.NewTxn(ctx)
	var home lockList
	home.add(kWh(in.WID), lock.IX)
	home.add(kWRow(in.WID), lock.S)
	home.add(kDist(in.WID, in.DID), lock.X)
	home.add(kCust(in.WID, in.DID, in.CID), lock.S)
	for _, ref := range homeLines {
		home.add(kWh(ref.line.SupplyWID), lock.IX)
		home.add(kStock(ref.line.SupplyWID, ref.line.ItemID), lock.X)
	}
	t.Add(dora.ActionSpec{
		Partition: homeP,
		RouteKey:  in.WID,
		Locks:     home,
		Produces:  len(remote) > 0,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			e := db.Engine
			if _, err := db.readWarehouse(ctx, sub, in.WID); err != nil {
				return err
			}
			if _, err := db.readCustomer(ctx, sub, in.WID, in.DID, in.CID); err != nil {
				return err
			}
			dist, err := db.readDistrict(ctx, sub, in.WID, in.DID)
			if err != nil {
				return err
			}
			oid := dist.NextOID
			dist.NextOID++
			if err := e.IndexUpdateCtx(ctx, sub, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
				return err
			}
			t.PublishInput(uint64(oid))
			allLocal := true
			for _, l := range in.Lines {
				if l.SupplyWID != in.WID {
					allLocal = false
				}
			}
			ord := Order{
				WID: in.WID, DID: in.DID, ID: oid, CID: in.CID,
				EntryDate: time.Now().UnixNano(),
				OLCount:   uint8(len(in.Lines)), AllLocal: allLocal,
			}
			if err := e.IndexInsertCtx(ctx, sub, db.Orders, oKey(in.WID, in.DID, oid), ord.encode()); err != nil {
				return err
			}
			no := NewOrderRow{WID: in.WID, DID: in.DID, OID: oid}
			if err := e.IndexInsertCtx(ctx, sub, db.NewOrderTab, oKey(in.WID, in.DID, oid), no.encode()); err != nil {
				return err
			}
			for _, ref := range homeLines {
				if err := db.newOrderLine(ctx, sub, in, oid, ref.idx, ref.line); err != nil {
					return err
				}
			}
			if in.Rollback {
				// The spec's intentional rollback: the decision flag
				// aborts every partition's sub-transaction.
				return ErrUserAbort
			}
			return nil
		},
	})
	for k, group := range remote {
		var locks lockList
		for _, ref := range group {
			locks.add(kWh(ref.line.SupplyWID), lock.IX)
			locks.add(kStock(ref.line.SupplyWID, ref.line.ItemID), lock.X)
		}
		spec := dora.ActionSpec{
			Locks:     locks,
			Dependent: true,
			Run: func(ctx context.Context, sub *tx.Tx, input uint64) error {
				oid := uint32(input)
				for _, ref := range group {
					if err := db.newOrderLine(ctx, sub, in, oid, ref.idx, ref.line); err != nil {
						return err
					}
				}
				return nil
			},
		}
		if plp {
			spec.RouteKey = k
		} else {
			spec.Partition = int(k)
		}
		t.Add(spec)
	}
	return x.Submit(t)
}

// newOrderLine processes one order line — item probe, stock update,
// ORDER_LINE insert — inside sub-transaction t. Shared by the home and
// remote New Order actions.
func (db *DB) newOrderLine(ctx context.Context, t *tx.Tx, in NewOrderInput, oid uint32, idx int, l NewOrderLine) error {
	e := db.Engine
	item, ok, err := db.readItem(ctx, t, l.ItemID)
	if err != nil {
		return err
	}
	if !ok {
		return ErrUserAbort
	}
	st, err := db.readStock(ctx, t, l.SupplyWID, l.ItemID)
	if err != nil {
		return err
	}
	if st.Quantity >= int32(l.Quantity)+10 {
		st.Quantity -= int32(l.Quantity)
	} else {
		st.Quantity += 91 - int32(l.Quantity)
	}
	st.YTD += float64(l.Quantity)
	st.OrderCnt++
	if l.SupplyWID != in.WID {
		st.RemoteCnt++
	}
	if err := e.IndexUpdateCtx(ctx, t, db.Stock, sKey(l.SupplyWID, l.ItemID), st.encode()); err != nil {
		return err
	}
	ol := OrderLine{
		WID: in.WID, DID: in.DID, OID: oid, Number: uint8(idx + 1),
		ItemID: l.ItemID, SupplyWID: l.SupplyWID, Quantity: l.Quantity,
		Amount:   float64(l.Quantity) * item.Price,
		DistInfo: st.DistInfo,
	}
	return e.IndexInsertCtx(ctx, t, db.OrderLine, olKey(in.WID, in.DID, oid, uint8(idx+1)), ol.encode())
}

// DoraDelivery runs one Delivery through the partition executor. It
// touches every district and unknown customers of its warehouse, so it
// takes the coarse warehouse X anchor — the partition-local analogue of
// lock escalation.
func (db *DB) DoraDelivery(ctx context.Context, in DeliveryInput) (int, error) {
	x := db.Engine.Dora()
	if x == nil {
		return 0, ErrDoraDisabled
	}
	t := x.NewTxn(ctx)
	var delivered int
	t.Add(dora.ActionSpec{
		Partition: x.Route(in.WID),
		RouteKey:  in.WID,
		Locks:     []dora.LockReq{{Key: kWh(in.WID), Mode: lock.X}},
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			n, err := db.delivery(ctx, sub, in)
			delivered = n
			return err
		},
	})
	if err := x.Submit(t); err != nil {
		return 0, err
	}
	if delivered == 0 {
		return 0, ErrNothingToDeliver
	}
	return delivered, nil
}

// DoraOrderStatus runs one Order-Status (read-only) through the
// partition executor: district S covers the order scan against New
// Order's district X, customer S against Payment's customer X.
func (db *DB) DoraOrderStatus(ctx context.Context, in OrderStatusInput) (OrderStatusResult, error) {
	x := db.Engine.Dora()
	if x == nil {
		return OrderStatusResult{}, ErrDoraDisabled
	}
	t := x.NewTxn(ctx)
	var locks lockList
	locks.add(kWh(in.WID), lock.IS)
	locks.add(kDist(in.WID, in.DID), lock.S)
	locks.add(kCust(in.WID, in.DID, in.CID), lock.S)
	var res OrderStatusResult
	t.Add(dora.ActionSpec{
		Partition: x.Route(in.WID),
		RouteKey:  in.WID,
		Locks:     locks,
		ReadOnly:  true,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			var err error
			res, err = db.orderStatus(ctx, sub, in)
			return err
		},
	})
	if err := x.Submit(t); err != nil {
		return OrderStatusResult{}, err
	}
	return res, nil
}

// DoraStockLevel runs one Stock-Level (read-only) through the partition
// executor. Its stock read set is unknown until the order-line scan, so
// it takes the coarse warehouse S anchor against writers' IX.
func (db *DB) DoraStockLevel(ctx context.Context, in StockLevelInput) (int, error) {
	x := db.Engine.Dora()
	if x == nil {
		return 0, ErrDoraDisabled
	}
	t := x.NewTxn(ctx)
	var low int
	t.Add(dora.ActionSpec{
		Partition: x.Route(in.WID),
		RouteKey:  in.WID,
		Locks:     []dora.LockReq{{Key: kWh(in.WID), Mode: lock.S}},
		ReadOnly:  true,
		Run: func(ctx context.Context, sub *tx.Tx, _ uint64) error {
			var err error
			low, err = db.stockLevel(ctx, sub, in)
			return err
		},
	})
	if err := x.Submit(t); err != nil {
		return 0, err
	}
	return low, nil
}
