package tpcc

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/tx"
)

// Scale configures database size. The TPC-C defaults (10 districts per
// warehouse, 3000 customers per district, 100k items) are far larger than
// unit tests need, so every axis is adjustable.
type Scale struct {
	Warehouses    int
	Districts     int // per warehouse
	Customers     int // per district
	Items         int
	StockPerItem  bool // load stock for every (warehouse, item) pair
	InitialOrders int  // pre-loaded orders per district
}

// DefaultScale returns a small-but-realistic scale for benchmarks.
func DefaultScale(warehouses int) Scale {
	return Scale{
		Warehouses:   warehouses,
		Districts:    10,
		Customers:    120,
		Items:        1000,
		StockPerItem: true,
	}
}

// TinyScale returns a minimal scale for unit tests.
func TinyScale() Scale {
	return Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
}

// DB holds the engine plus the store handles of the nine TPC-C tables.
type DB struct {
	Engine *core.Engine
	Scale  Scale

	Warehouse   *core.Index
	District    *core.Index
	Customer    *core.Index
	Orders      *core.Index
	NewOrderTab *core.Index
	OrderLine   *core.Index
	Item        *core.Index
	Stock       *core.Index
	History     uint32 // heap store (no primary key)
}

// readWarehouse fetches and decodes a warehouse row.
func (db *DB) readWarehouse(ctx context.Context, t *tx.Tx, w uint32) (Warehouse, error) {
	b, ok, err := db.Engine.IndexLookupCtx(ctx, t, db.Warehouse, wKey(w))
	if err != nil {
		return Warehouse{}, err
	}
	if !ok {
		return Warehouse{}, fmt.Errorf("tpcc: warehouse %d missing", w)
	}
	return decodeWarehouse(b)
}

func (db *DB) readDistrict(ctx context.Context, t *tx.Tx, w uint32, d uint8) (District, error) {
	b, ok, err := db.Engine.IndexLookupCtx(ctx, t, db.District, dKey(w, d))
	if err != nil {
		return District{}, err
	}
	if !ok {
		return District{}, fmt.Errorf("tpcc: district %d/%d missing", w, d)
	}
	return decodeDistrict(b)
}

func (db *DB) readCustomer(ctx context.Context, t *tx.Tx, w uint32, d uint8, c uint32) (Customer, error) {
	b, ok, err := db.Engine.IndexLookupCtx(ctx, t, db.Customer, cKey(w, d, c))
	if err != nil {
		return Customer{}, err
	}
	if !ok {
		return Customer{}, fmt.Errorf("tpcc: customer %d/%d/%d missing", w, d, c)
	}
	return decodeCustomer(b)
}

func (db *DB) readItem(ctx context.Context, t *tx.Tx, i uint32) (Item, bool, error) {
	b, ok, err := db.Engine.IndexLookupCtx(ctx, t, db.Item, iKey(i))
	if err != nil || !ok {
		return Item{}, ok, err
	}
	it, err := decodeItem(b)
	return it, true, err
}

func (db *DB) readStock(ctx context.Context, t *tx.Tx, w, i uint32) (Stock, error) {
	b, ok, err := db.Engine.IndexLookupCtx(ctx, t, db.Stock, sKey(w, i))
	if err != nil {
		return Stock{}, err
	}
	if !ok {
		return Stock{}, fmt.Errorf("tpcc: stock %d/%d missing", w, i)
	}
	return decodeStock(b)
}

// Load builds and populates a TPC-C database on engine at the given scale.
func Load(engine *core.Engine, scale Scale, seed int64) (*DB, error) {
	db := &DB{Engine: engine, Scale: scale}
	r := NewRand(seed)

	t, err := engine.Begin()
	if err != nil {
		return nil, err
	}
	mk := func() (*core.Index, error) { return engine.CreateIndex(t) }
	// Warehouse-prefixed indexes become PLP forests when the engine runs
	// physiological partitioning: every key's first four bytes are the
	// warehouse id, which is exactly the DORA routing key. ITEM is shared
	// across warehouses and stays a single tree.
	mkPart := mk
	if engine.PlpMap() != nil {
		mkPart = func() (*core.Index, error) { return engine.CreatePartitionedIndex(t) }
	}
	if db.Warehouse, err = mkPart(); err != nil {
		return nil, err
	}
	if db.District, err = mkPart(); err != nil {
		return nil, err
	}
	if db.Customer, err = mkPart(); err != nil {
		return nil, err
	}
	if db.Orders, err = mkPart(); err != nil {
		return nil, err
	}
	if db.NewOrderTab, err = mkPart(); err != nil {
		return nil, err
	}
	if db.OrderLine, err = mkPart(); err != nil {
		return nil, err
	}
	if db.Item, err = mk(); err != nil {
		return nil, err
	}
	if db.Stock, err = mkPart(); err != nil {
		return nil, err
	}
	if db.History, err = engine.CreateTable(t); err != nil {
		return nil, err
	}
	if err := engine.Commit(t); err != nil {
		return nil, err
	}

	// Items (shared across warehouses).
	if err := db.loadBatch(func(t *tx.Tx) error {
		for i := 1; i <= scale.Items; i++ {
			item := Item{
				ID:    uint32(i),
				ImID:  uint32(r.Int(1, 10000)),
				Name:  r.AString(14, 24),
				Price: r.Float(1, 100),
				Data:  r.AString(26, 50),
			}
			if err := engine.IndexInsert(t, db.Item, iKey(item.ID), item.encode()); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	for w := 1; w <= scale.Warehouses; w++ {
		w := uint32(w)
		if err := db.loadWarehouse(r, w); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// loadBatch runs fn inside one committed transaction.
func (db *DB) loadBatch(fn func(t *tx.Tx) error) error {
	t, err := db.Engine.Begin()
	if err != nil {
		return err
	}
	if err := fn(t); err != nil {
		_ = db.Engine.Abort(t)
		return err
	}
	return db.Engine.Commit(t)
}

func (db *DB) loadWarehouse(r *Rand, w uint32) error {
	e := db.Engine
	scale := db.Scale
	// Warehouse row + stock.
	if err := db.loadBatch(func(t *tx.Tx) error {
		wh := Warehouse{
			ID: w, Name: r.AString(6, 10), Street: r.AString(10, 20),
			City: r.AString(10, 20), State: r.AString(2, 2), Zip: r.NString(9, 9),
			Tax: r.Float(0, 0.2),
		}
		if err := e.IndexInsert(t, db.Warehouse, wKey(w), wh.encode()); err != nil {
			return err
		}
		if scale.StockPerItem {
			for i := 1; i <= scale.Items; i++ {
				s := Stock{
					WID: w, ItemID: uint32(i),
					Quantity: int32(r.Int(10, 100)),
					DistInfo: r.AString(24, 24),
					Data:     r.AString(26, 50),
				}
				if err := e.IndexInsert(t, db.Stock, sKey(w, uint32(i)), s.encode()); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	// Districts and customers.
	for d := 1; d <= scale.Districts; d++ {
		d := uint8(d)
		if err := db.loadBatch(func(t *tx.Tx) error {
			dist := District{
				WID: w, ID: d, Name: r.AString(6, 10), Street: r.AString(10, 20),
				City: r.AString(10, 20), Tax: r.Float(0, 0.2), NextOID: uint32(scale.InitialOrders + 1),
			}
			if err := e.IndexInsert(t, db.District, dKey(w, d), dist.encode()); err != nil {
				return err
			}
			for c := 1; c <= scale.Customers; c++ {
				credit := "GC"
				if r.Int(1, 10) == 1 {
					credit = "BC"
				}
				cust := Customer{
					WID: w, DID: d, ID: uint32(c),
					First: r.AString(8, 16), Middle: "OE", Last: LastName(c - 1),
					Credit: credit, CreditLim: 50000, Discount: r.Float(0, 0.5),
					Balance: -10, YTDPayment: 10, Data: r.AString(100, 200),
				}
				if err := e.IndexInsert(t, db.Customer, cKey(w, d, uint32(c)), cust.encode()); err != nil {
					return err
				}
			}
			for o := 1; o <= scale.InitialOrders; o++ {
				ord := Order{
					WID: w, DID: d, ID: uint32(o),
					CID: uint32(r.Int(1, scale.Customers)), OLCount: 5, AllLocal: true,
				}
				if err := e.IndexInsert(t, db.Orders, oKey(w, d, uint32(o)), ord.encode()); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
