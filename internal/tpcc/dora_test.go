package tpcc

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/wal"
)

func newDoraDB(t testing.TB, scale Scale, partitions int) *DB {
	t.Helper()
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 2048
	cfg.DORA = true
	cfg.DoraPartitions = partitions
	cfg.DoraKeys = scale.Warehouses
	e, err := core.Open(disk.NewMem(0), wal.NewMemStore(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	db, err := Load(e, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestDoraCrossPartitionStress drives forced-remote Payments and New
// Orders from many goroutines (run under -race in CI) and then audits
// the money and order counters: lost updates on either side of a
// rendezvous would break the per-warehouse YTD sums or the district
// order sequence.
func TestDoraCrossPartitionStress(t *testing.T) {
	scale := Scale{Warehouses: 4, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newDoraDB(t, scale, 2)
	ctx := context.Background()

	const (
		workers = 8
		iters   = 40
	)
	// Per-warehouse expected YTD deltas (integer amounts, exact in
	// float64) and per-(warehouse,district) expected order counts.
	var whYTD [5]atomic.Int64
	var orders [5][3]atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRand(int64(7000 + w))
			home := uint32(w%scale.Warehouses + 1)
			// remote: a warehouse on the other partition (2 partitions,
			// route = (wid-1)%2, so +1 flips the partition).
			remote := home%uint32(scale.Warehouses) + 1
			for i := 0; i < iters; i++ {
				if i%2 == 0 {
					amount := float64(r.Int(1, 500))
					in := PaymentInput{
						WID: home, DID: uint8(r.Int(1, scale.Districts)),
						CWID: remote, CDID: uint8(r.Int(1, scale.Districts)),
						CID: uint32(r.Int(1, scale.Customers)), Amount: amount,
					}
					if err := db.DoraPayment(ctx, in); err != nil {
						t.Error(err)
						return
					}
					whYTD[home].Add(int64(amount))
				} else {
					did := uint8(r.Int(1, scale.Districts))
					in := NewOrderInput{
						WID: home, DID: did, CID: uint32(r.Int(1, scale.Customers)),
						Lines: []NewOrderLine{
							{ItemID: uint32(r.Int(1, scale.Items)), SupplyWID: home, Quantity: 1 + uint8(i%5)},
							{ItemID: uint32(r.Int(1, scale.Items)), SupplyWID: remote, Quantity: 1 + uint8(w%5)},
						},
					}
					if err := db.DoraNewOrder(ctx, in); err != nil {
						t.Error(err)
						return
					}
					orders[home][did].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Audit through a regular locking transaction.
	rd, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Engine.Abort(rd)
	for w := 1; w <= scale.Warehouses; w++ {
		wh, err := db.readWarehouse(ctx, rd, uint32(w))
		if err != nil {
			t.Fatal(err)
		}
		if want := float64(whYTD[w].Load()); wh.YTD != want {
			t.Errorf("warehouse %d YTD = %v, want %v (lost update)", w, wh.YTD, want)
		}
		for d := 1; d <= scale.Districts; d++ {
			dist, err := db.readDistrict(ctx, rd, uint32(w), uint8(d))
			if err != nil {
				t.Fatal(err)
			}
			want := uint32(scale.InitialOrders) + 1 + uint32(orders[w][d].Load())
			if dist.NextOID != want {
				t.Errorf("district (%d,%d) NextOID = %d, want %d", w, d, dist.NextOID, want)
			}
		}
	}

	// Structural integrity plus row counts: one ORDERS and one NEW_ORDER
	// row per committed New Order, two ORDER_LINE rows each.
	var totalOrders int64
	for w := 1; w <= scale.Warehouses; w++ {
		for d := 1; d <= scale.Districts; d++ {
			totalOrders += orders[w][d].Load()
		}
	}
	for _, ix := range []struct {
		name string
		ix   *core.Index
		want int
	}{
		{"orders", db.Orders, int(totalOrders)},
		{"neworder", db.NewOrderTab, int(totalOrders)},
		{"orderline", db.OrderLine, int(2 * totalOrders)},
	} {
		n, err := ix.ix.Verify()
		if err != nil {
			t.Fatalf("%s: Verify: %v", ix.name, err)
		}
		if n != ix.want {
			t.Errorf("%s: %d rows, want %d", ix.name, n, ix.want)
		}
	}

	st := db.Engine.Stats().Dora
	if st.CrossTx == 0 {
		t.Error("no cross-partition transactions ran")
	}
	if st.LocalAcquires == 0 {
		t.Error("no thread-local lock acquires recorded")
	}
	if st.Aborts != 0 {
		t.Errorf("unexpected aborts: %d", st.Aborts)
	}
}

// TestDoraRendezvousAbort forces a remote action to fail (unknown item
// on the remote partition) after the home action has already allocated
// the order id and inserted rows, and checks every partition rolled
// back: the district sequence, the stock row, and the order tables are
// untouched.
func TestDoraRendezvousAbort(t *testing.T) {
	scale := Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newDoraDB(t, scale, 2)
	ctx := context.Background()

	rd, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	distBefore, err := db.readDistrict(ctx, rd, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	stockBefore, err := db.readStock(ctx, rd, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ordersBefore, err := db.Orders.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Engine.Commit(rd); err != nil {
		t.Fatal(err)
	}

	in := NewOrderInput{
		WID: 1, DID: 1, CID: 1,
		Lines: []NewOrderLine{
			{ItemID: 1, SupplyWID: 1, Quantity: 3},                        // home, valid
			{ItemID: uint32(scale.Items) + 99, SupplyWID: 2, Quantity: 1}, // remote, unknown item
		},
	}
	if err := db.DoraNewOrder(ctx, in); !errors.Is(err, ErrUserAbort) {
		t.Fatalf("DoraNewOrder = %v, want ErrUserAbort", err)
	}

	rd2, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Engine.Abort(rd2)
	distAfter, err := db.readDistrict(ctx, rd2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if distAfter.NextOID != distBefore.NextOID {
		t.Errorf("NextOID %d -> %d: home partition did not roll back", distBefore.NextOID, distAfter.NextOID)
	}
	stockAfter, err := db.readStock(ctx, rd2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stockAfter != stockBefore {
		t.Errorf("stock (1,1) changed across aborted order: %+v -> %+v", stockBefore, stockAfter)
	}
	ordersAfter, err := db.Orders.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if ordersAfter != ordersBefore {
		t.Errorf("orders rows %d -> %d: insert survived the abort", ordersBefore, ordersAfter)
	}
	if st := db.Engine.Stats().Dora; st.Aborts != 1 {
		t.Errorf("Dora.Aborts = %d, want 1", st.Aborts)
	}
}

// TestDoraRollbackFlag checks the spec's intentional 1% rollback aborts
// every partition even when all actions succeed operationally.
func TestDoraRollbackFlag(t *testing.T) {
	scale := Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newDoraDB(t, scale, 2)
	ctx := context.Background()

	in := NewOrderInput{
		WID: 1, DID: 1, CID: 1, Rollback: true,
		Lines: []NewOrderLine{
			{ItemID: 1, SupplyWID: 1, Quantity: 1},
			{ItemID: 2, SupplyWID: 2, Quantity: 1},
		},
	}
	if err := db.DoraNewOrder(ctx, in); !errors.Is(err, ErrUserAbort) {
		t.Fatalf("DoraNewOrder = %v, want ErrUserAbort", err)
	}
	rd, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Engine.Abort(rd)
	dist, err := db.readDistrict(ctx, rd, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint32(scale.InitialOrders) + 1; dist.NextOID != want {
		t.Errorf("NextOID = %d, want %d after rollback", dist.NextOID, want)
	}
}

// TestDoraDisabled checks the entrypoints fail cleanly without DORA.
func TestDoraDisabled(t *testing.T) {
	db := newDB(t, TinyScale())
	if err := db.DoraPayment(context.Background(), PaymentInput{WID: 1, DID: 1, CWID: 1, CDID: 1, CID: 1, Amount: 1}); !errors.Is(err, ErrDoraDisabled) {
		t.Fatalf("DoraPayment = %v, want ErrDoraDisabled", err)
	}
}

// TestDoraReadOnlyTransactions exercises the Order-Status and
// Stock-Level decompositions against orders created through DORA.
func TestDoraReadOnlyTransactions(t *testing.T) {
	scale := Scale{Warehouses: 2, Districts: 2, Customers: 10, Items: 50, StockPerItem: true}
	db := newDoraDB(t, scale, 2)
	ctx := context.Background()

	in := NewOrderInput{
		WID: 1, DID: 1, CID: 3,
		Lines: []NewOrderLine{
			{ItemID: 5, SupplyWID: 1, Quantity: 2},
			{ItemID: 7, SupplyWID: 2, Quantity: 4},
		},
	}
	if err := db.DoraNewOrder(ctx, in); err != nil {
		t.Fatal(err)
	}

	res, err := db.DoraOrderStatus(ctx, OrderStatusInput{WID: 1, DID: 1, CID: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 2 {
		t.Fatalf("order status lines = %d, want 2", len(res.Lines))
	}
	if _, err := db.DoraStockLevel(ctx, StockLevelInput{WID: 1, DID: 1, Threshold: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.DoraDelivery(ctx, DeliveryInput{WID: 1, CarrierID: 3}); err != nil {
		t.Fatal(err)
	}
}
