package tpcc

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/tx"
)

// The remaining three TPC-C transactions. The paper benchmarks only
// Payment and New Order (88% of the mix, §3.2); Delivery, Order-Status and
// Stock-Level complete the specification's mix and exercise range scans
// and read-only paths the two write-heavy transactions do not.

// ErrNothingToDeliver is returned when a district has no undelivered
// orders (the spec treats this as a skipped delivery, not a failure).
var ErrNothingToDeliver = errors.New("tpcc: no undelivered orders")

// DeliveryInput parameterizes one Delivery transaction.
type DeliveryInput struct {
	WID       uint32
	CarrierID uint8
}

// GenDelivery draws Delivery parameters per the spec.
func GenDelivery(r *Rand, scale Scale, homeW uint32) DeliveryInput {
	return DeliveryInput{WID: homeW, CarrierID: uint8(r.Int(1, 10))}
}

// Delivery processes the oldest undelivered order in every district of the
// warehouse: deletes its NEW_ORDER row, stamps the carrier on ORDERS, sums
// the order's lines, and credits the customer's balance. Deadlock victims
// are surfaced, not retried — use DeliveryCtx.
func (db *DB) Delivery(in DeliveryInput) (int, error) {
	return db.deliveryRun(context.Background(), onceOnly, in)
}

// DeliveryCtx is Delivery under the engine's managed-transaction runner:
// deadlock/timeout victims are retried and lock waits observe ctx.
func (db *DB) DeliveryCtx(ctx context.Context, in DeliveryInput) (int, error) {
	return db.deliveryRun(ctx, retryPolicy, in)
}

func (db *DB) deliveryRun(ctx context.Context, policy core.RetryPolicy, in DeliveryInput) (int, error) {
	var delivered int
	err := db.Engine.RunCtx(ctx, policy, func(t *tx.Tx) error {
		n, err := db.delivery(ctx, t, in)
		delivered = n
		return err
	}, nil)
	if err != nil {
		return 0, err
	}
	if delivered == 0 {
		return 0, ErrNothingToDeliver
	}
	return delivered, nil
}

// delivery is the transaction body, run inside a managed transaction.
func (db *DB) delivery(ctx context.Context, t *tx.Tx, in DeliveryInput) (delivered int, err error) {
	e := db.Engine
	for d := 1; d <= db.Scale.Districts; d++ {
		d := uint8(d)
		oid, ok, err := db.oldestNewOrder(ctx, t, in.WID, d)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue // district fully delivered
		}
		if _, err := e.IndexDeleteCtx(ctx, t, db.NewOrderTab, oKey(in.WID, d, oid)); err != nil {
			return 0, err
		}
		// Stamp the carrier on the order.
		ob, ok, err := e.IndexLookupCtx(ctx, t, db.Orders, oKey(in.WID, d, oid))
		if err != nil || !ok {
			return 0, errors.Join(err, errors.New("tpcc: NEW_ORDER without ORDERS row"))
		}
		ord, err := decodeOrder(ob)
		if err != nil {
			return 0, err
		}
		ord.CarrierID = in.CarrierID
		if err := e.IndexUpdateCtx(ctx, t, db.Orders, oKey(in.WID, d, oid), ord.encode()); err != nil {
			return 0, err
		}
		// Sum the order lines and stamp delivery dates.
		var total float64
		now := time.Now().UnixNano()
		for l := uint8(1); l <= ord.OLCount; l++ {
			lb, ok, err := e.IndexLookupCtx(ctx, t, db.OrderLine, olKey(in.WID, d, oid, l))
			if err != nil {
				return 0, err
			}
			if !ok {
				continue // rolled-back line counts were conservative
			}
			ol, err := decodeOrderLine(lb)
			if err != nil {
				return 0, err
			}
			total += ol.Amount
			_ = now // delivery date is carried in the order row's carrier stamp
		}
		// Credit the customer.
		cust, err := db.readCustomer(ctx, t, in.WID, d, ord.CID)
		if err != nil {
			return 0, err
		}
		cust.Balance += total
		cust.DeliveryCt++
		if err := e.IndexUpdateCtx(ctx, t, db.Customer, cKey(in.WID, d, ord.CID), cust.encode()); err != nil {
			return 0, err
		}
		delivered++
	}
	return delivered, nil
}

// oldestNewOrder returns the smallest order id with a NEW_ORDER row in
// (w, d).
func (db *DB) oldestNewOrder(ctx context.Context, t *tx.Tx, w uint32, d uint8) (uint32, bool, error) {
	var oid uint32
	found := false
	from := oKey(w, d, 0)
	to := oKey(w, d+1, 0) // districts are small; d+1 never wraps in practice
	err := db.Engine.IndexScanCtx(ctx, t, db.NewOrderTab, from, to, func(k, v []byte) bool {
		row, err := decodeNewOrderRow(v)
		if err != nil {
			return false
		}
		oid = row.OID
		found = true
		return false // first key in range = oldest
	})
	return oid, found, err
}

// OrderStatusInput parameterizes one Order-Status transaction.
type OrderStatusInput struct {
	WID uint32
	DID uint8
	CID uint32
}

// GenOrderStatus draws Order-Status parameters.
func GenOrderStatus(r *Rand, scale Scale, homeW uint32) OrderStatusInput {
	return OrderStatusInput{
		WID: homeW,
		DID: uint8(r.Int(1, scale.Districts)),
		CID: uint32(r.CustomerID(scale.Customers)),
	}
}

// OrderStatusResult is the read-only answer.
type OrderStatusResult struct {
	Customer Customer
	Order    Order
	Lines    []OrderLine
	HasOrder bool
}

// OrderStatus reports a customer's balance and their most recent order
// with its lines. Read-only: it commits through CommitReadOnly, which
// never waits on log durability.
func (db *DB) OrderStatus(in OrderStatusInput) (OrderStatusResult, error) {
	return db.OrderStatusCtx(context.Background(), in)
}

// OrderStatusCtx is OrderStatus with managed retry and ctx-aware waits.
func (db *DB) OrderStatusCtx(ctx context.Context, in OrderStatusInput) (OrderStatusResult, error) {
	var res OrderStatusResult
	err := db.Engine.RunViewCtx(ctx, retryPolicy, func(t *tx.Tx) error {
		var err error
		res, err = db.orderStatus(ctx, t, in)
		return err
	})
	if err != nil {
		return OrderStatusResult{}, err
	}
	return res, nil
}

// orderStatus is the read-only transaction body.
func (db *DB) orderStatus(ctx context.Context, t *tx.Tx, in OrderStatusInput) (OrderStatusResult, error) {
	e := db.Engine
	var res OrderStatusResult
	var err error
	res.Customer, err = db.readCustomer(ctx, t, in.WID, in.DID, in.CID)
	if err != nil {
		return OrderStatusResult{}, err
	}
	// Find the customer's most recent order: scan the district's orders
	// and keep the last match (order ids ascend with time).
	from := oKey(in.WID, in.DID, 0)
	to := oKey(in.WID, in.DID+1, 0)
	err = e.IndexScanCtx(ctx, t, db.Orders, from, to, func(k, v []byte) bool {
		ord, err := decodeOrder(v)
		if err != nil {
			return false
		}
		if ord.CID == in.CID {
			res.Order = ord
			res.HasOrder = true
		}
		return true
	})
	if err != nil {
		return OrderStatusResult{}, err
	}
	if res.HasOrder {
		for l := uint8(1); l <= res.Order.OLCount; l++ {
			lb, ok, err := e.IndexLookupCtx(ctx, t, db.OrderLine, olKey(in.WID, in.DID, res.Order.ID, l))
			if err != nil {
				return OrderStatusResult{}, err
			}
			if !ok {
				continue
			}
			ol, err := decodeOrderLine(lb)
			if err != nil {
				return OrderStatusResult{}, err
			}
			res.Lines = append(res.Lines, ol)
		}
	}
	return res, nil
}

// StockLevelInput parameterizes one Stock-Level transaction.
type StockLevelInput struct {
	WID       uint32
	DID       uint8
	Threshold int32
}

// GenStockLevel draws Stock-Level parameters (threshold 10-20 per spec).
func GenStockLevel(r *Rand, scale Scale, homeW uint32) StockLevelInput {
	return StockLevelInput{
		WID:       homeW,
		DID:       uint8(r.Int(1, scale.Districts)),
		Threshold: int32(r.Int(10, 20)),
	}
}

// StockLevel counts distinct items from the district's last 20 orders
// whose stock is below the threshold. Read-only; the heaviest scanner of
// the mix. Commits through CommitReadOnly (no durability wait).
func (db *DB) StockLevel(in StockLevelInput) (int, error) {
	return db.StockLevelCtx(context.Background(), in)
}

// StockLevelCtx is StockLevel with managed retry and ctx-aware waits.
func (db *DB) StockLevelCtx(ctx context.Context, in StockLevelInput) (int, error) {
	var low int
	err := db.Engine.RunViewCtx(ctx, retryPolicy, func(t *tx.Tx) error {
		var err error
		low, err = db.stockLevel(ctx, t, in)
		return err
	})
	if err != nil {
		return 0, err
	}
	return low, nil
}

// stockLevel is the read-only transaction body.
func (db *DB) stockLevel(ctx context.Context, t *tx.Tx, in StockLevelInput) (low int, err error) {
	e := db.Engine
	dist, err := db.readDistrict(ctx, t, in.WID, in.DID)
	if err != nil {
		return 0, err
	}
	firstOID := uint32(1)
	if dist.NextOID > 20 {
		firstOID = dist.NextOID - 20
	}
	// Collect distinct item ids from those orders' lines.
	items := map[uint32]struct{}{}
	from := olKey(in.WID, in.DID, firstOID, 0)
	to := oKey(in.WID, in.DID+1, 0)
	err = e.IndexScanCtx(ctx, t, db.OrderLine, from, to, func(k, v []byte) bool {
		ol, err := decodeOrderLine(v)
		if err != nil {
			return false
		}
		items[ol.ItemID] = struct{}{}
		return true
	})
	if err != nil {
		return 0, err
	}
	for item := range items {
		st, err := db.readStock(ctx, t, in.WID, item)
		if err != nil {
			return 0, err
		}
		if st.Quantity < in.Threshold {
			low++
		}
	}
	return low, nil
}
