package tpcc

import (
	"errors"
	"time"

	"repro/internal/tx"
)

// The remaining three TPC-C transactions. The paper benchmarks only
// Payment and New Order (88% of the mix, §3.2); Delivery, Order-Status and
// Stock-Level complete the specification's mix and exercise range scans
// and read-only paths the two write-heavy transactions do not.

// ErrNothingToDeliver is returned when a district has no undelivered
// orders (the spec treats this as a skipped delivery, not a failure).
var ErrNothingToDeliver = errors.New("tpcc: no undelivered orders")

// DeliveryInput parameterizes one Delivery transaction.
type DeliveryInput struct {
	WID       uint32
	CarrierID uint8
}

// GenDelivery draws Delivery parameters per the spec.
func GenDelivery(r *Rand, scale Scale, homeW uint32) DeliveryInput {
	return DeliveryInput{WID: homeW, CarrierID: uint8(r.Int(1, 10))}
}

// Delivery processes the oldest undelivered order in every district of the
// warehouse: deletes its NEW_ORDER row, stamps the carrier on ORDERS, sums
// the order's lines, and credits the customer's balance.
func (db *DB) Delivery(in DeliveryInput) (delivered int, err error) {
	e := db.Engine
	t, err := e.Begin()
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int, error) {
		_ = e.Abort(t)
		return 0, err
	}
	for d := 1; d <= db.Scale.Districts; d++ {
		d := uint8(d)
		oid, ok, err := db.oldestNewOrder(t, in.WID, d)
		if err != nil {
			return fail(err)
		}
		if !ok {
			continue // district fully delivered
		}
		if _, err := e.IndexDelete(t, db.NewOrderTab, oKey(in.WID, d, oid)); err != nil {
			return fail(err)
		}
		// Stamp the carrier on the order.
		ob, ok, err := e.IndexLookup(t, db.Orders, oKey(in.WID, d, oid))
		if err != nil || !ok {
			return fail(errors.Join(err, errors.New("tpcc: NEW_ORDER without ORDERS row")))
		}
		ord, err := decodeOrder(ob)
		if err != nil {
			return fail(err)
		}
		ord.CarrierID = in.CarrierID
		if err := e.IndexUpdate(t, db.Orders, oKey(in.WID, d, oid), ord.encode()); err != nil {
			return fail(err)
		}
		// Sum the order lines and stamp delivery dates.
		var total float64
		now := time.Now().UnixNano()
		for l := uint8(1); l <= ord.OLCount; l++ {
			lb, ok, err := e.IndexLookup(t, db.OrderLine, olKey(in.WID, d, oid, l))
			if err != nil {
				return fail(err)
			}
			if !ok {
				continue // rolled-back line counts were conservative
			}
			ol, err := decodeOrderLine(lb)
			if err != nil {
				return fail(err)
			}
			total += ol.Amount
			_ = now // delivery date is carried in the order row's carrier stamp
		}
		// Credit the customer.
		cust, err := db.readCustomer(t, in.WID, d, ord.CID)
		if err != nil {
			return fail(err)
		}
		cust.Balance += total
		cust.DeliveryCt++
		if err := e.IndexUpdate(t, db.Customer, cKey(in.WID, d, ord.CID), cust.encode()); err != nil {
			return fail(err)
		}
		delivered++
	}
	if err := e.Commit(t); err != nil {
		return 0, err
	}
	if delivered == 0 {
		return 0, ErrNothingToDeliver
	}
	return delivered, nil
}

// oldestNewOrder returns the smallest order id with a NEW_ORDER row in
// (w, d).
func (db *DB) oldestNewOrder(t *tx.Tx, w uint32, d uint8) (uint32, bool, error) {
	var oid uint32
	found := false
	from := oKey(w, d, 0)
	to := oKey(w, d+1, 0) // districts are small; d+1 never wraps in practice
	err := db.Engine.IndexScan(t, db.NewOrderTab, from, to, func(k, v []byte) bool {
		row, err := decodeNewOrderRow(v)
		if err != nil {
			return false
		}
		oid = row.OID
		found = true
		return false // first key in range = oldest
	})
	return oid, found, err
}

// OrderStatusInput parameterizes one Order-Status transaction.
type OrderStatusInput struct {
	WID uint32
	DID uint8
	CID uint32
}

// GenOrderStatus draws Order-Status parameters.
func GenOrderStatus(r *Rand, scale Scale, homeW uint32) OrderStatusInput {
	return OrderStatusInput{
		WID: homeW,
		DID: uint8(r.Int(1, scale.Districts)),
		CID: uint32(r.CustomerID(scale.Customers)),
	}
}

// OrderStatusResult is the read-only answer.
type OrderStatusResult struct {
	Customer Customer
	Order    Order
	Lines    []OrderLine
	HasOrder bool
}

// OrderStatus reports a customer's balance and their most recent order
// with its lines. Read-only: exercises index probes and backward-ish range
// location without any lock-manager writes.
func (db *DB) OrderStatus(in OrderStatusInput) (OrderStatusResult, error) {
	e := db.Engine
	t, err := e.Begin()
	if err != nil {
		return OrderStatusResult{}, err
	}
	fail := func(err error) (OrderStatusResult, error) {
		_ = e.Abort(t)
		return OrderStatusResult{}, err
	}
	var res OrderStatusResult
	res.Customer, err = db.readCustomer(t, in.WID, in.DID, in.CID)
	if err != nil {
		return fail(err)
	}
	// Find the customer's most recent order: scan the district's orders
	// and keep the last match (order ids ascend with time).
	from := oKey(in.WID, in.DID, 0)
	to := oKey(in.WID, in.DID+1, 0)
	err = e.IndexScan(t, db.Orders, from, to, func(k, v []byte) bool {
		ord, err := decodeOrder(v)
		if err != nil {
			return false
		}
		if ord.CID == in.CID {
			res.Order = ord
			res.HasOrder = true
		}
		return true
	})
	if err != nil {
		return fail(err)
	}
	if res.HasOrder {
		for l := uint8(1); l <= res.Order.OLCount; l++ {
			lb, ok, err := e.IndexLookup(t, db.OrderLine, olKey(in.WID, in.DID, res.Order.ID, l))
			if err != nil {
				return fail(err)
			}
			if !ok {
				continue
			}
			ol, err := decodeOrderLine(lb)
			if err != nil {
				return fail(err)
			}
			res.Lines = append(res.Lines, ol)
		}
	}
	if err := e.Commit(t); err != nil {
		return OrderStatusResult{}, err
	}
	return res, nil
}

// StockLevelInput parameterizes one Stock-Level transaction.
type StockLevelInput struct {
	WID       uint32
	DID       uint8
	Threshold int32
}

// GenStockLevel draws Stock-Level parameters (threshold 10-20 per spec).
func GenStockLevel(r *Rand, scale Scale, homeW uint32) StockLevelInput {
	return StockLevelInput{
		WID:       homeW,
		DID:       uint8(r.Int(1, scale.Districts)),
		Threshold: int32(r.Int(10, 20)),
	}
}

// StockLevel counts distinct items from the district's last 20 orders
// whose stock is below the threshold. Read-only; the heaviest scanner of
// the mix.
func (db *DB) StockLevel(in StockLevelInput) (low int, err error) {
	e := db.Engine
	t, err := e.Begin()
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int, error) {
		_ = e.Abort(t)
		return 0, err
	}
	dist, err := db.readDistrict(t, in.WID, in.DID)
	if err != nil {
		return fail(err)
	}
	firstOID := uint32(1)
	if dist.NextOID > 20 {
		firstOID = dist.NextOID - 20
	}
	// Collect distinct item ids from those orders' lines.
	items := map[uint32]struct{}{}
	from := olKey(in.WID, in.DID, firstOID, 0)
	to := oKey(in.WID, in.DID+1, 0)
	err = e.IndexScan(t, db.OrderLine, from, to, func(k, v []byte) bool {
		ol, err := decodeOrderLine(v)
		if err != nil {
			return false
		}
		items[ol.ItemID] = struct{}{}
		return true
	})
	if err != nil {
		return fail(err)
	}
	for item := range items {
		st, err := db.readStock(t, in.WID, item)
		if err != nil {
			return fail(err)
		}
		if st.Quantity < in.Threshold {
			low++
		}
	}
	if err := e.Commit(t); err != nil {
		return 0, err
	}
	return low, nil
}
