package tpcc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/client"
	"repro/internal/wire"
)

// Catalog names under which a served TPC-C database publishes its
// stores (and scale axes) for remote drivers to resolve.
const (
	CatWarehouse = "tpcc.warehouse"
	CatDistrict  = "tpcc.district"
	CatCustomer  = "tpcc.customer"
	CatOrders    = "tpcc.orders"
	CatNewOrder  = "tpcc.neworder"
	CatOrderLine = "tpcc.orderline"
	CatItem      = "tpcc.item"
	CatStock     = "tpcc.stock"
	CatHistory   = "tpcc.history"

	CatScaleWarehouses = "tpcc.scale.warehouses"
	CatScaleDistricts  = "tpcc.scale.districts"
	CatScaleCustomers  = "tpcc.scale.customers"
	CatScaleItems      = "tpcc.scale.items"
)

// Catalog enumerates the entries a server should register for this
// database: the nine stores plus the scale axes remote generators need.
func (db *DB) Catalog() []CatalogEntry {
	return []CatalogEntry{
		{CatWarehouse, db.Warehouse.Store(), wire.KindIndex},
		{CatDistrict, db.District.Store(), wire.KindIndex},
		{CatCustomer, db.Customer.Store(), wire.KindIndex},
		{CatOrders, db.Orders.Store(), wire.KindIndex},
		{CatNewOrder, db.NewOrderTab.Store(), wire.KindIndex},
		{CatOrderLine, db.OrderLine.Store(), wire.KindIndex},
		{CatItem, db.Item.Store(), wire.KindIndex},
		{CatStock, db.Stock.Store(), wire.KindIndex},
		{CatHistory, db.History, wire.KindHeap},
		{CatScaleWarehouses, uint32(db.Scale.Warehouses), wire.KindMeta},
		{CatScaleDistricts, uint32(db.Scale.Districts), wire.KindMeta},
		{CatScaleCustomers, uint32(db.Scale.Customers), wire.KindMeta},
		{CatScaleItems, uint32(db.Scale.Items), wire.KindMeta},
	}
}

// CatalogEntry is one name→id binding for a server catalog.
type CatalogEntry struct {
	Name string
	ID   uint32
	Kind byte
}

// RemoteStats counts a remote driver's retry traffic.
type RemoteStats struct {
	Sheds      atomic.Uint64 // ErrBusy responses (admission control)
	Deadlocks  atomic.Uint64 // deadlock-victim retries
	Timeouts   atomic.Uint64 // lock-timeout retries
	UserAborts atomic.Uint64 // the spec's 1% intentional rollbacks
}

// Remote drives TPC-C transactions against a shored server over one
// client connection, mirroring the local Payment and New Order bodies.
// Each transaction is two round trips: a BeginBatch carrying every read
// (all keys are known up front), then a RunCommit carrying every write.
// Deadlock victims, lock timeouts and shed requests are retried
// client-side with capped exponential backoff. Not safe for concurrent
// use — one Remote per goroutine, like the Client it wraps.
type Remote struct {
	C     *client.Client
	Scale Scale
	Stats *RemoteStats

	warehouse, district, customer uint32
	orders, newOrder, orderLine   uint32
	item, stock, history          uint32
}

// OpenRemote resolves the TPC-C catalog over c. The returned Remote
// shares *stats if non-nil (so many connections can aggregate).
func OpenRemote(ctx context.Context, c *client.Client, stats *RemoteStats) (*Remote, error) {
	if stats == nil {
		stats = &RemoteStats{}
	}
	r := &Remote{C: c, Stats: stats}
	resolve := func(name string, dst *uint32) error {
		id, _, err := c.Resolve(ctx, name)
		if err != nil {
			return fmt.Errorf("tpcc: resolve %s: %w", name, err)
		}
		*dst = id
		return nil
	}
	var w, d, cu, it uint32
	for _, e := range []struct {
		name string
		dst  *uint32
	}{
		{CatWarehouse, &r.warehouse}, {CatDistrict, &r.district},
		{CatCustomer, &r.customer}, {CatOrders, &r.orders},
		{CatNewOrder, &r.newOrder}, {CatOrderLine, &r.orderLine},
		{CatItem, &r.item}, {CatStock, &r.stock}, {CatHistory, &r.history},
		{CatScaleWarehouses, &w}, {CatScaleDistricts, &d},
		{CatScaleCustomers, &cu}, {CatScaleItems, &it},
	} {
		if err := resolve(e.name, e.dst); err != nil {
			return nil, err
		}
	}
	r.Scale = Scale{Warehouses: int(w), Districts: int(d), Customers: int(cu), Items: int(it), StockPerItem: true}
	return r, nil
}

// remoteAttempts bounds client-side retries of one transaction.
const remoteAttempts = 12

// retryRemote runs fn with client-side retry on deadlock, timeout and
// shed responses. fn must be a whole unit of work (it re-runs from
// scratch).
func (r *Remote) retryRemote(ctx context.Context, fn func() error) error {
	backoff := 500 * time.Microsecond
	var err error
	for attempt := 0; attempt < remoteAttempts; attempt++ {
		err = fn()
		if err == nil || !client.Retryable(err) {
			return err
		}
		switch {
		case errors.Is(err, client.ErrBusy):
			r.Stats.Sheds.Add(1)
			// A shed request never started: the server refused it at the
			// admission boundary. Retrying is always safe and, unlike a
			// deadlock loop, converges as soon as a slot frees — so shed
			// retries don't consume the attempt budget (the surrounding
			// ctx bounds them).
			attempt--
		case errors.Is(err, client.ErrDeadlock):
			r.Stats.Deadlocks.Add(1)
		case errors.Is(err, client.ErrTimeout):
			r.Stats.Timeouts.Add(1)
		}
		select {
		case <-ctx.Done():
			return err
		case <-time.After(backoff):
		}
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
	return err
}

// rollbackUnlessAborted releases the transaction after a failure that
// may or may not have carried the server's aborted flag.
func rollbackUnlessAborted(ctx context.Context, tx *client.Tx, err error) {
	if !client.IsAborted(err) {
		_ = tx.Rollback(ctx)
	}
}

// Payment runs one remote Payment transaction (reads batched into the
// begin round trip, writes batched into the commit round trip).
func (r *Remote) Payment(ctx context.Context, in PaymentInput) error {
	return r.retryRemote(ctx, func() error { return r.paymentOnce(ctx, in) })
}

func (r *Remote) paymentOnce(ctx context.Context, in PaymentInput) error {
	// Every row read here is written back at commit, and the write is a
	// full client round trip away — take the X locks up front (SELECT
	// FOR UPDATE) or concurrent payments on the same warehouse deadlock
	// on the S→X upgrade almost every time.
	reads := client.NewBatch()
	gw := reads.IndexGetForUpdate(r.warehouse, wKey(in.WID))
	gd := reads.IndexGetForUpdate(r.district, dKey(in.WID, in.DID))
	gc := reads.IndexGetForUpdate(r.customer, cKey(in.CWID, in.CDID, in.CID))
	tx, err := r.C.BeginBatch(ctx, reads)
	if err != nil {
		return err
	}
	if !gw.Found || !gd.Found || !gc.Found {
		_ = tx.Rollback(ctx)
		return fmt.Errorf("tpcc: payment row missing (w=%v d=%v c=%v)", gw.Found, gd.Found, gc.Found)
	}
	wh, err := decodeWarehouse(gw.Value)
	if err != nil {
		_ = tx.Rollback(ctx)
		return err
	}
	dist, err := decodeDistrict(gd.Value)
	if err != nil {
		_ = tx.Rollback(ctx)
		return err
	}
	cust, err := decodeCustomer(gc.Value)
	if err != nil {
		_ = tx.Rollback(ctx)
		return err
	}

	wh.YTD += in.Amount
	dist.YTD += in.Amount
	cust.Balance -= in.Amount
	cust.YTDPayment += in.Amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		info := fmt.Sprintf("%d %d %d %d %d %.2f|", in.CID, in.CDID, in.CWID, in.DID, in.WID, in.Amount)
		cust.Data = info + cust.Data
		if len(cust.Data) > 500 {
			cust.Data = cust.Data[:500]
		}
	}
	h := History{
		CID: in.CID, CDID: in.CDID, CWID: in.CWID,
		DID: in.DID, WID: in.WID,
		Date: time.Now().UnixNano(), Amount: in.Amount,
		Data: wh.Name + "    " + dist.Name,
	}

	writes := client.NewBatch()
	writes.IndexUpdate(r.warehouse, wKey(in.WID), wh.encode())
	writes.IndexUpdate(r.district, dKey(in.WID, in.DID), dist.encode())
	writes.IndexUpdate(r.customer, cKey(in.CWID, in.CDID, in.CID), cust.encode())
	writes.HeapInsert(r.history, h.encode())
	if err := tx.RunCommit(ctx, writes); err != nil {
		rollbackUnlessAborted(ctx, tx, err)
		return err
	}
	return nil
}

// OrderStatus runs one remote Order-Status query through the server's
// View path (wire.BatchView): with the server opened under snapshot
// reads every batch below is a lock-free as-of read. The query spans
// two View batches — the second fetches the order lines found by the
// first — so it reads across two snapshots; each batch is individually
// consistent, which is what a status screen needs.
func (r *Remote) OrderStatus(ctx context.Context, in OrderStatusInput) (OrderStatusResult, error) {
	var res OrderStatusResult
	err := r.retryRemote(ctx, func() error {
		res = OrderStatusResult{}
		var gc *client.Lookup
		var orders *client.Scanned
		if err := r.C.View(ctx, func(b *client.Batch) {
			gc = b.IndexGet(r.customer, cKey(in.WID, in.DID, in.CID))
			orders = b.IndexScan(r.orders, oKey(in.WID, in.DID, 0), oKey(in.WID, in.DID+1, 0), 0)
		}); err != nil {
			return err
		}
		if !gc.Found {
			return fmt.Errorf("tpcc: customer %d/%d/%d missing", in.WID, in.DID, in.CID)
		}
		cust, err := decodeCustomer(gc.Value)
		if err != nil {
			return err
		}
		res.Customer = cust
		for _, kv := range orders.KVs {
			ord, err := decodeOrder(kv.Value)
			if err != nil {
				return err
			}
			if ord.CID == in.CID {
				res.Order = ord
				res.HasOrder = true
			}
		}
		if !res.HasOrder {
			return nil
		}
		var lines *client.Scanned
		if err := r.C.View(ctx, func(b *client.Batch) {
			lines = b.IndexScan(r.orderLine,
				olKey(in.WID, in.DID, res.Order.ID, 0),
				olKey(in.WID, in.DID, res.Order.ID+1, 0), 0)
		}); err != nil {
			return err
		}
		for _, kv := range lines.KVs {
			ol, err := decodeOrderLine(kv.Value)
			if err != nil {
				return err
			}
			res.Lines = append(res.Lines, ol)
		}
		return nil
	})
	return res, err
}

// StockLevel runs one remote Stock-Level query through the View path:
// district read, order-line range scan, then the distinct items' stock
// rows — three read-only batches, the heaviest remote scanner of the
// mix.
func (r *Remote) StockLevel(ctx context.Context, in StockLevelInput) (int, error) {
	low := 0
	err := r.retryRemote(ctx, func() error {
		low = 0
		var gd *client.Lookup
		if err := r.C.View(ctx, func(b *client.Batch) {
			gd = b.IndexGet(r.district, dKey(in.WID, in.DID))
		}); err != nil {
			return err
		}
		if !gd.Found {
			return fmt.Errorf("tpcc: district %d/%d missing", in.WID, in.DID)
		}
		dist, err := decodeDistrict(gd.Value)
		if err != nil {
			return err
		}
		firstOID := uint32(1)
		if dist.NextOID > 20 {
			firstOID = dist.NextOID - 20
		}
		var lines *client.Scanned
		if err := r.C.View(ctx, func(b *client.Batch) {
			lines = b.IndexScan(r.orderLine,
				olKey(in.WID, in.DID, firstOID, 0), oKey(in.WID, in.DID+1, 0), 0)
		}); err != nil {
			return err
		}
		items := map[uint32]struct{}{}
		for _, kv := range lines.KVs {
			ol, err := decodeOrderLine(kv.Value)
			if err != nil {
				return err
			}
			items[ol.ItemID] = struct{}{}
		}
		if len(items) == 0 {
			return nil
		}
		stocks := make(map[uint32]*client.Lookup, len(items))
		if err := r.C.View(ctx, func(b *client.Batch) {
			for item := range items {
				stocks[item] = b.IndexGet(r.stock, sKey(in.WID, item))
			}
		}); err != nil {
			return err
		}
		for _, g := range stocks {
			if !g.Found {
				continue
			}
			st, err := decodeStock(g.Value)
			if err != nil {
				return err
			}
			if st.Quantity < in.Threshold {
				low++
			}
		}
		return nil
	})
	return low, err
}

// NewOrder runs one remote New Order transaction.
func (r *Remote) NewOrder(ctx context.Context, in NewOrderInput) error {
	err := r.retryRemote(ctx, func() error { return r.newOrderOnce(ctx, in) })
	if errors.Is(err, ErrUserAbort) {
		r.Stats.UserAborts.Add(1)
	}
	return err
}

func (r *Remote) newOrderOnce(ctx context.Context, in NewOrderInput) error {
	// Every key is known up front, so the whole read set rides on the
	// begin round trip.
	reads := client.NewBatch()
	reads.IndexGet(r.warehouse, wKey(in.WID))
	reads.IndexGet(r.customer, cKey(in.WID, in.DID, in.CID))
	// District and stock rows are written back at commit: X up front
	// (see paymentOnce). Warehouse, customer and item stay S — New
	// Order only reads them.
	gd := reads.IndexGetForUpdate(r.district, dKey(in.WID, in.DID))
	items := make([]*client.Lookup, len(in.Lines))
	stocks := make([]*client.Lookup, len(in.Lines))
	for i, l := range in.Lines {
		items[i] = reads.IndexGet(r.item, iKey(l.ItemID))
		stocks[i] = reads.IndexGetForUpdate(r.stock, sKey(l.SupplyWID, l.ItemID))
	}
	tx, err := r.C.BeginBatch(ctx, reads)
	if err != nil {
		return err
	}
	if !gd.Found {
		_ = tx.Rollback(ctx)
		return fmt.Errorf("tpcc: district %d/%d missing", in.WID, in.DID)
	}
	dist, err := decodeDistrict(gd.Value)
	if err != nil {
		_ = tx.Rollback(ctx)
		return err
	}
	oid := dist.NextOID
	dist.NextOID++

	allLocal := true
	for _, l := range in.Lines {
		if l.SupplyWID != in.WID {
			allLocal = false
		}
	}
	writes := client.NewBatch()
	writes.IndexUpdate(r.district, dKey(in.WID, in.DID), dist.encode())
	ord := Order{
		WID: in.WID, DID: in.DID, ID: oid, CID: in.CID,
		EntryDate: time.Now().UnixNano(),
		OLCount:   uint8(len(in.Lines)), AllLocal: allLocal,
	}
	writes.IndexInsert(r.orders, oKey(in.WID, in.DID, oid), ord.encode())
	no := NewOrderRow{WID: in.WID, DID: in.DID, OID: oid}
	writes.IndexInsert(r.newOrder, oKey(in.WID, in.DID, oid), no.encode())

	for i, l := range in.Lines {
		if in.Rollback && i == len(in.Lines)-1 {
			// The spec's intentional rollback (unused item id).
			_ = tx.Rollback(ctx)
			return ErrUserAbort
		}
		if !items[i].Found {
			_ = tx.Rollback(ctx)
			return ErrUserAbort
		}
		item, err := decodeItem(items[i].Value)
		if err != nil {
			_ = tx.Rollback(ctx)
			return err
		}
		if !stocks[i].Found {
			_ = tx.Rollback(ctx)
			return fmt.Errorf("tpcc: stock %d/%d missing", l.SupplyWID, l.ItemID)
		}
		st, err := decodeStock(stocks[i].Value)
		if err != nil {
			_ = tx.Rollback(ctx)
			return err
		}
		if st.Quantity >= int32(l.Quantity)+10 {
			st.Quantity -= int32(l.Quantity)
		} else {
			st.Quantity += 91 - int32(l.Quantity)
		}
		st.YTD += float64(l.Quantity)
		st.OrderCnt++
		if l.SupplyWID != in.WID {
			st.RemoteCnt++
		}
		writes.IndexUpdate(r.stock, sKey(l.SupplyWID, l.ItemID), st.encode())
		ol := OrderLine{
			WID: in.WID, DID: in.DID, OID: oid, Number: uint8(i + 1),
			ItemID: l.ItemID, SupplyWID: l.SupplyWID, Quantity: l.Quantity,
			Amount:   float64(l.Quantity) * item.Price,
			DistInfo: st.DistInfo,
		}
		writes.IndexInsert(r.orderLine, olKey(in.WID, in.DID, oid, uint8(i+1)), ol.encode())
	}
	if err := tx.RunCommit(ctx, writes); err != nil {
		rollbackUnlessAborted(ctx, tx, err)
		return err
	}
	return nil
}
