package tpcc

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/page"
	"repro/internal/wal"
)

func newDB(t testing.TB, scale Scale) *DB {
	t.Helper()
	vol := disk.NewMem(0)
	logStore := wal.NewMemStore()
	cfg := core.StageConfig(core.StageFinal)
	cfg.Frames = 2048
	e, err := core.Open(vol, logStore, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	db, err := Load(e, scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCodecRoundTrips(t *testing.T) {
	w := Warehouse{ID: 3, Name: "W3", Street: "s", City: "c", State: "ST", Zip: "123456789", Tax: 0.1, YTD: 5.5}
	got, err := decodeWarehouse(w.encode())
	if err != nil || got != w {
		t.Fatalf("warehouse: %+v, %v", got, err)
	}
	d := District{WID: 1, ID: 2, Name: "D", Tax: 0.05, YTD: 1, NextOID: 42}
	gd, err := decodeDistrict(d.encode())
	if err != nil || gd != d {
		t.Fatalf("district: %+v, %v", gd, err)
	}
	c := Customer{WID: 1, DID: 2, ID: 3, First: "a", Middle: "OE", Last: "BARBARBAR", Credit: "GC", Balance: -10}
	gc, err := decodeCustomer(c.encode())
	if err != nil || gc != c {
		t.Fatalf("customer: %+v, %v", gc, err)
	}
	h := History{CID: 1, CDID: 2, CWID: 3, DID: 4, WID: 5, Date: 99, Amount: 7.5, Data: "x"}
	gh, err := decodeHistory(h.encode())
	if err != nil || gh != h {
		t.Fatalf("history: %+v, %v", gh, err)
	}
	o := Order{WID: 1, DID: 2, ID: 3, CID: 4, EntryDate: 5, OLCount: 6, AllLocal: true}
	gon, err := decodeOrder(o.encode())
	if err != nil || gon != o {
		t.Fatalf("order: %+v, %v", gon, err)
	}
	n := NewOrderRow{WID: 1, DID: 2, OID: 3}
	gn, err := decodeNewOrderRow(n.encode())
	if err != nil || gn != n {
		t.Fatalf("neworder: %+v, %v", gn, err)
	}
	ol := OrderLine{WID: 1, DID: 2, OID: 3, Number: 4, ItemID: 5, SupplyWID: 6, Quantity: 7, Amount: 8.5, DistInfo: "d"}
	gol, err := decodeOrderLine(ol.encode())
	if err != nil || gol != ol {
		t.Fatalf("orderline: %+v, %v", gol, err)
	}
	it := Item{ID: 1, ImID: 2, Name: "n", Price: 3.5, Data: "d"}
	git, err := decodeItem(it.encode())
	if err != nil || git != it {
		t.Fatalf("item: %+v, %v", git, err)
	}
	s := Stock{WID: 1, ItemID: 2, Quantity: -3, YTD: 4.5, OrderCnt: 5, RemoteCnt: 6, DistInfo: "di", Data: "da"}
	gs, err := decodeStock(s.encode())
	if err != nil || gs != s {
		t.Fatalf("stock: %+v, %v", gs, err)
	}
	// Truncated rows error.
	if _, err := decodeCustomer(c.encode()[:5]); err == nil {
		t.Error("truncated customer decoded")
	}
}

func TestKeyOrdering(t *testing.T) {
	// Order keys must sort by (w, d, o).
	a := oKey(1, 2, 3)
	b := oKey(1, 2, 4)
	c := oKey(1, 3, 1)
	d := oKey(2, 1, 1)
	if !(string(a) < string(b) && string(b) < string(c) && string(c) < string(d)) {
		t.Fatal("order keys do not sort correctly")
	}
	if len(olKey(1, 2, 3, 4)) != len(oKey(1, 2, 3))+1 {
		t.Fatal("order-line key length")
	}
}

func TestRandPrimitives(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 1000; i++ {
		if v := r.Int(5, 10); v < 5 || v > 10 {
			t.Fatalf("Int out of range: %d", v)
		}
		if v := r.NURand(255, 1, 100, 7); v < 1 || v > 100 {
			t.Fatalf("NURand out of range: %d", v)
		}
		if v := r.CustomerID(3000); v < 1 || v > 3000 {
			t.Fatalf("CustomerID out of range: %d", v)
		}
		if v := r.ItemID(100000); v < 1 || v > 100000 {
			t.Fatalf("ItemID out of range: %d", v)
		}
		if v := r.CustomerID(10); v < 1 || v > 10 {
			t.Fatalf("small CustomerID out of range: %d", v)
		}
	}
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %q", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" { // 3-7-1 → PRI CALLY OUGHT
		t.Errorf("LastName(371) = %q", LastName(371))
	}
	if s := r.AString(5, 5); len(s) != 5 {
		t.Errorf("AString length %d", len(s))
	}
	if s := r.NString(9, 9); len(s) != 9 {
		t.Errorf("NString length %d", len(s))
	}
	// NURand skew: customer ids should be non-uniform.
	counts := make(map[int]int)
	for i := 0; i < 30000; i++ {
		counts[r.CustomerID(3000)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3 {
		t.Error("NURand produced a suspiciously uniform distribution")
	}
}

func TestLoadPopulatesAllTables(t *testing.T) {
	db := newDB(t, TinyScale())
	tx1, err := db.Engine.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for w := uint32(1); w <= 2; w++ {
		wh, err := db.readWarehouse(context.Background(), tx1, w)
		if err != nil {
			t.Fatal(err)
		}
		if wh.ID != w {
			t.Fatalf("warehouse %d decoded id %d", w, wh.ID)
		}
		for d := uint8(1); d <= 2; d++ {
			dist, err := db.readDistrict(context.Background(), tx1, w, d)
			if err != nil {
				t.Fatal(err)
			}
			if dist.NextOID != 1 {
				t.Fatalf("district NextOID = %d", dist.NextOID)
			}
			for c := uint32(1); c <= 10; c++ {
				if _, err := db.readCustomer(context.Background(), tx1, w, d, c); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := uint32(1); i <= 50; i++ {
			if _, err := db.readStock(context.Background(), tx1, w, i); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := uint32(1); i <= 50; i++ {
		if _, ok, err := db.readItem(context.Background(), tx1, i); err != nil || !ok {
			t.Fatalf("item %d: %v %v", i, ok, err)
		}
	}
	if err := db.Engine.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	db := newDB(t, TinyScale())
	in := PaymentInput{WID: 1, DID: 1, CWID: 1, CDID: 1, CID: 3, Amount: 100}
	if err := db.Payment(in); err != nil {
		t.Fatal(err)
	}
	tx1, _ := db.Engine.Begin()
	wh, err := db.readWarehouse(context.Background(), tx1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wh.YTD != 100 {
		t.Errorf("warehouse YTD = %v, want 100", wh.YTD)
	}
	dist, _ := db.readDistrict(context.Background(), tx1, 1, 1)
	if dist.YTD != 100 {
		t.Errorf("district YTD = %v", dist.YTD)
	}
	cust, _ := db.readCustomer(context.Background(), tx1, 1, 1, 3)
	if cust.Balance != -110 {
		t.Errorf("customer balance = %v, want -110", cust.Balance)
	}
	if cust.PaymentCnt != 1 || cust.YTDPayment != 110 {
		t.Errorf("customer stats: %+v", cust)
	}
	// Exactly one history row exists and decodes to the payment.
	count := 0
	if err := db.Engine.HeapScan(tx1, db.History, func(_ page.RID, rec []byte) bool {
		h, err := decodeHistory(rec)
		if err != nil {
			t.Errorf("history decode: %v", err)
			return false
		}
		if h.Amount != 100 || h.CID != 3 {
			t.Errorf("history row: %+v", h)
		}
		count++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("history rows = %d, want 1", count)
	}
	if err := db.Engine.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderCreatesRows(t *testing.T) {
	db := newDB(t, TinyScale())
	in := NewOrderInput{
		WID: 1, DID: 1, CID: 2,
		Lines: []NewOrderLine{
			{ItemID: 1, SupplyWID: 1, Quantity: 5},
			{ItemID: 2, SupplyWID: 1, Quantity: 3},
		},
	}
	if err := db.NewOrder(in); err != nil {
		t.Fatal(err)
	}
	tx1, _ := db.Engine.Begin()
	dist, err := db.readDistrict(context.Background(), tx1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dist.NextOID != 2 {
		t.Fatalf("NextOID = %d, want 2", dist.NextOID)
	}
	// The order and its lines are queryable.
	b, ok, err := db.Engine.IndexLookup(tx1, db.Orders, oKey(1, 1, 1))
	if err != nil || !ok {
		t.Fatalf("order row: %v %v", ok, err)
	}
	ord, err := decodeOrder(b)
	if err != nil || ord.OLCount != 2 || ord.CID != 2 {
		t.Fatalf("order: %+v, %v", ord, err)
	}
	for n := uint8(1); n <= 2; n++ {
		b, ok, err := db.Engine.IndexLookup(tx1, db.OrderLine, olKey(1, 1, 1, n))
		if err != nil || !ok {
			t.Fatalf("order line %d: %v %v", n, ok, err)
		}
		ol, err := decodeOrderLine(b)
		if err != nil || ol.OID != 1 || ol.Number != n {
			t.Fatalf("order line: %+v, %v", ol, err)
		}
	}
	// Stock was decremented.
	st, err := db.readStock(context.Background(), tx1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderCnt != 1 || st.YTD != 5 {
		t.Fatalf("stock after order: %+v", st)
	}
	if err := db.Engine.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

func TestNewOrderRollbackLeavesNoTrace(t *testing.T) {
	db := newDB(t, TinyScale())
	in := NewOrderInput{
		WID: 1, DID: 1, CID: 1,
		Lines:    []NewOrderLine{{ItemID: 1, SupplyWID: 1, Quantity: 1}, {ItemID: 2, SupplyWID: 1, Quantity: 1}},
		Rollback: true,
	}
	err := db.NewOrder(in)
	if !errors.Is(err, ErrUserAbort) {
		t.Fatalf("rollback order err = %v", err)
	}
	tx1, _ := db.Engine.Begin()
	dist, err := db.readDistrict(context.Background(), tx1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dist.NextOID != 1 {
		t.Fatalf("NextOID = %d after rollback, want 1", dist.NextOID)
	}
	if _, ok, _ := db.Engine.IndexLookup(tx1, db.Orders, oKey(1, 1, 1)); ok {
		t.Fatal("rolled-back order row visible")
	}
	st, err := db.readStock(context.Background(), tx1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.OrderCnt != 0 {
		t.Fatalf("stock touched by rolled-back order: %+v", st)
	}
	if err := db.Engine.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorsRespectScale(t *testing.T) {
	r := NewRand(3)
	scale := TinyScale()
	for i := 0; i < 500; i++ {
		p := GenPayment(r, scale, 1)
		if p.WID != 1 || p.DID < 1 || p.DID > uint8(scale.Districts) {
			t.Fatalf("payment input out of range: %+v", p)
		}
		if p.CID < 1 || p.CID > uint32(scale.Customers) {
			t.Fatalf("payment customer out of range: %+v", p)
		}
		if p.CWID < 1 || p.CWID > uint32(scale.Warehouses) {
			t.Fatalf("payment cwid out of range: %+v", p)
		}
		no := GenNewOrder(r, scale, 2)
		if len(no.Lines) < 5 || len(no.Lines) > 15 {
			t.Fatalf("new order lines: %d", len(no.Lines))
		}
		for _, l := range no.Lines {
			if l.ItemID < 1 || l.ItemID > uint32(scale.Items) {
				t.Fatalf("item id out of range: %+v", l)
			}
		}
	}
}

func TestConcurrentMixedWorkload(t *testing.T) {
	db := newDB(t, Scale{Warehouses: 2, Districts: 2, Customers: 20, Items: 100, StockPerItem: true})
	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers*40)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := NewRand(int64(100 + w))
			home := uint32(w%2 + 1)
			for i := 0; i < 20; i++ {
				if i%2 == 0 {
					if err := db.PaymentWithRetry(GenPayment(r, db.Scale, home), 25); err != nil {
						errCh <- err
						return
					}
				} else {
					err := db.NewOrderWithRetry(GenNewOrder(r, db.Scale, home), 25)
					if err != nil && !errors.Is(err, ErrUserAbort) {
						errCh <- err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Money conservation: warehouse YTD sums must equal district YTD sums.
	tx1, _ := db.Engine.Begin()
	var wYTD, dYTD float64
	for w := uint32(1); w <= 2; w++ {
		wh, err := db.readWarehouse(context.Background(), tx1, w)
		if err != nil {
			t.Fatal(err)
		}
		wYTD += wh.YTD
		for d := uint8(1); d <= 2; d++ {
			dist, err := db.readDistrict(context.Background(), tx1, w, d)
			if err != nil {
				t.Fatal(err)
			}
			dYTD += dist.YTD
		}
	}
	// Warehouse and district totals accumulate the same payments in
	// different orders; allow float rounding slack.
	if diff := wYTD - dYTD; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("money not conserved: warehouse YTD %v != district YTD %v", wYTD, dYTD)
	}
	if err := db.Engine.Commit(tx1); err != nil {
		t.Fatal(err)
	}
}
