package tpcc

import "math/rand"

// NURand constants fixed at load time, per the TPC-C specification
// (clause 2.1.6): C values for the non-uniform distributions.
const (
	cLast  = 157
	cCID   = 91
	cOLIID = 33
)

// Rand wraps a seeded source with the TPC-C random primitives.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic TPC-C randomizer.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Int returns a uniform integer in [lo, hi].
func (r *Rand) Int(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + r.r.Intn(hi-lo+1)
}

// Float returns a uniform float in [lo, hi).
func (r *Rand) Float(lo, hi float64) float64 {
	return lo + r.r.Float64()*(hi-lo)
}

// NURand is the TPC-C non-uniform random function:
// (((random(0,A) | random(x,y)) + C) % (y-x+1)) + x.
func (r *Rand) NURand(a, x, y, c int) int {
	return ((r.Int(0, a)|r.Int(x, y))+c)%(y-x+1) + x
}

// CustomerID draws a customer id over [1, n] with the spec's skew.
func (r *Rand) CustomerID(n int) int {
	if n < 1 {
		return 1
	}
	if n >= 3000 {
		return r.NURand(1023, 1, n, cCID)
	}
	// Scaled-down skew for small test databases.
	return r.NURand(nextPow2(n)-1, 1, n, cCID%n)
}

// ItemID draws an item id over [1, n] with the spec's skew (hits ~8% of
// items with ~75% of probability at full scale).
func (r *Rand) ItemID(n int) int {
	if n < 1 {
		return 1
	}
	if n >= 100000 {
		return r.NURand(8191, 1, n, cOLIID)
	}
	return r.NURand(nextPow2(n)-1, 1, n, cOLIID%n)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// lastNameSyllables are the spec's clause 4.3.2.3 syllables.
var lastNameSyllables = []string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName builds the spec customer last name for number (0..999).
func LastName(number int) string {
	if number < 0 {
		number = -number
	}
	number %= 1000
	return lastNameSyllables[number/100] + lastNameSyllables[(number/10)%10] + lastNameSyllables[number%10]
}

// LastNameNumber draws a last-name number with the NURand(255) skew.
func (r *Rand) LastNameNumber() int {
	return r.NURand(255, 0, 999, cLast)
}

// AString returns a random alphanumeric string with length in [lo, hi].
func (r *Rand) AString(lo, hi int) string {
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
	n := r.Int(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = alpha[r.r.Intn(len(alpha))]
	}
	return string(b)
}

// NString returns a random numeric string with length in [lo, hi].
func (r *Rand) NString(lo, hi int) string {
	n := r.Int(lo, hi)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + r.r.Intn(10))
	}
	return string(b)
}

// Rollback1Percent reports true with probability 1/100 (New Order's
// intentional rollback rate).
func (r *Rand) Rollback1Percent() bool { return r.r.Intn(100) == 0 }
