package tpcc

import (
	"context"
	"errors"
	"testing"
)

// placeOrder is a test helper that runs a successful New Order.
func placeOrder(t *testing.T, db *DB, w uint32, d uint8, c uint32, items ...uint32) {
	t.Helper()
	var lines []NewOrderLine
	for _, i := range items {
		lines = append(lines, NewOrderLine{ItemID: i, SupplyWID: w, Quantity: 5})
	}
	if err := db.NewOrder(NewOrderInput{WID: w, DID: d, CID: c, Lines: lines}); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryProcessesOldestOrder(t *testing.T) {
	db := newDB(t, TinyScale())
	// Two orders in district 1, one in district 2.
	placeOrder(t, db, 1, 1, 2, 1, 2)
	placeOrder(t, db, 1, 1, 3, 3)
	placeOrder(t, db, 1, 2, 4, 4)

	delivered, err := db.Delivery(DeliveryInput{WID: 1, CarrierID: 7})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 2 {
		t.Fatalf("delivered %d orders, want 2 (one per district with orders)", delivered)
	}
	// District 1's OLDEST order (oid 1, customer 2) was delivered.
	tx1, _ := db.Engine.Begin()
	defer db.Engine.Commit(tx1)
	if _, ok, _ := db.Engine.IndexLookup(tx1, db.NewOrderTab, oKey(1, 1, 1)); ok {
		t.Fatal("delivered NEW_ORDER row still present")
	}
	if _, ok, _ := db.Engine.IndexLookup(tx1, db.NewOrderTab, oKey(1, 1, 2)); !ok {
		t.Fatal("newer order's NEW_ORDER row missing")
	}
	ob, ok, err := db.Engine.IndexLookup(tx1, db.Orders, oKey(1, 1, 1))
	if err != nil || !ok {
		t.Fatal(err)
	}
	ord, _ := decodeOrder(ob)
	if ord.CarrierID != 7 {
		t.Fatalf("carrier = %d, want 7", ord.CarrierID)
	}
	// Customer 2's balance was credited with the order total.
	cust, err := db.readCustomer(context.Background(), tx1, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cust.Balance <= -10 || cust.DeliveryCt != 1 {
		t.Fatalf("customer not credited: %+v", cust)
	}
}

func TestDeliveryNothingToDeliver(t *testing.T) {
	db := newDB(t, TinyScale())
	if _, err := db.Delivery(DeliveryInput{WID: 1, CarrierID: 1}); !errors.Is(err, ErrNothingToDeliver) {
		t.Fatalf("empty delivery = %v", err)
	}
}

func TestOrderStatus(t *testing.T) {
	db := newDB(t, TinyScale())
	placeOrder(t, db, 1, 1, 5, 1, 2, 3)
	placeOrder(t, db, 1, 1, 5, 4) // more recent order for the same customer
	placeOrder(t, db, 1, 1, 6, 5) // different customer

	res, err := db.OrderStatus(OrderStatusInput{WID: 1, DID: 1, CID: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasOrder {
		t.Fatal("no order found for customer 5")
	}
	if res.Order.ID != 2 || res.Order.CID != 5 {
		t.Fatalf("most recent order = %+v, want oid 2", res.Order)
	}
	if len(res.Lines) != 1 || res.Lines[0].ItemID != 4 {
		t.Fatalf("lines = %+v", res.Lines)
	}
	if res.Customer.ID != 5 {
		t.Fatalf("customer = %+v", res.Customer)
	}
	// Customer with no orders.
	res2, err := db.OrderStatus(OrderStatusInput{WID: 1, DID: 2, CID: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.HasOrder {
		t.Fatal("phantom order for orderless customer")
	}
}

func TestStockLevel(t *testing.T) {
	db := newDB(t, TinyScale())
	placeOrder(t, db, 1, 1, 1, 1, 2, 3)
	// Threshold above every stock level: all three items count.
	low, err := db.StockLevel(StockLevelInput{WID: 1, DID: 1, Threshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if low != 3 {
		t.Fatalf("low-stock items = %d, want 3", low)
	}
	// Threshold below every stock level: none count.
	low, err = db.StockLevel(StockLevelInput{WID: 1, DID: 1, Threshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if low != 0 {
		t.Fatalf("low-stock items = %d, want 0", low)
	}
	// Distinctness: ordering the same item twice counts once.
	placeOrder(t, db, 1, 2, 1, 7)
	placeOrder(t, db, 1, 2, 2, 7)
	low, err = db.StockLevel(StockLevelInput{WID: 1, DID: 2, Threshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if low != 1 {
		t.Fatalf("distinct low-stock items = %d, want 1", low)
	}
}

func TestGenExtendedInputs(t *testing.T) {
	r := NewRand(5)
	scale := TinyScale()
	for i := 0; i < 200; i++ {
		d := GenDelivery(r, scale, 2)
		if d.WID != 2 || d.CarrierID < 1 || d.CarrierID > 10 {
			t.Fatalf("delivery input %+v", d)
		}
		os := GenOrderStatus(r, scale, 1)
		if os.DID < 1 || os.DID > uint8(scale.Districts) || os.CID < 1 || os.CID > uint32(scale.Customers) {
			t.Fatalf("order-status input %+v", os)
		}
		sl := GenStockLevel(r, scale, 1)
		if sl.Threshold < 10 || sl.Threshold > 20 {
			t.Fatalf("stock-level input %+v", sl)
		}
	}
}

func TestFullMixConsistency(t *testing.T) {
	// Run the complete five-transaction mix and audit invariants.
	db := newDB(t, Scale{Warehouses: 1, Districts: 2, Customers: 10, Items: 50, StockPerItem: true})
	r := NewRand(11)
	newOrders := 0
	for i := 0; i < 60; i++ {
		switch i % 5 {
		case 0, 1:
			if err := db.PaymentWithRetry(GenPayment(r, db.Scale, 1), 5); err != nil {
				t.Fatal(err)
			}
		case 2, 3:
			err := db.NewOrderWithRetry(GenNewOrder(r, db.Scale, 1), 5)
			if err == nil {
				newOrders++
			} else if !errors.Is(err, ErrUserAbort) {
				t.Fatal(err)
			}
		case 4:
			if _, err := db.Delivery(GenDelivery(r, db.Scale, 1)); err != nil && !errors.Is(err, ErrNothingToDeliver) {
				t.Fatal(err)
			}
			if _, err := db.OrderStatus(GenOrderStatus(r, db.Scale, 1)); err != nil {
				t.Fatal(err)
			}
			if _, err := db.StockLevel(GenStockLevel(r, db.Scale, 1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Invariant: ORDERS row count == committed New Orders; district
	// NextOID counters are consistent with it.
	tx1, _ := db.Engine.Begin()
	defer db.Engine.Commit(tx1)
	orders := 0
	if err := db.Engine.IndexScan(tx1, db.Orders, nil, nil, func(k, v []byte) bool {
		orders++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if orders != newOrders {
		t.Fatalf("ORDERS rows %d != committed new orders %d", orders, newOrders)
	}
	sumNext := 0
	for d := 1; d <= db.Scale.Districts; d++ {
		dist, err := db.readDistrict(context.Background(), tx1, 1, uint8(d))
		if err != nil {
			t.Fatal(err)
		}
		sumNext += int(dist.NextOID) - 1
	}
	if sumNext != newOrders {
		t.Fatalf("sum of district order counters %d != %d", sumNext, newOrders)
	}
}
