package tpcc

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/lock"
)

// ErrUserAbort marks New Order's intentional 1% rollback.
var ErrUserAbort = errors.New("tpcc: user-initiated rollback")

// retryable reports whether err should be retried after an abort
// (deadlock victim or lock timeout).
func retryable(err error) bool {
	return errors.Is(err, lock.ErrDeadlock) || errors.Is(err, lock.ErrTimeout)
}

// retryBackoff sleeps a randomized, linearly growing interval between
// deadlock retries so repeated victims do not re-collide in lockstep.
func retryBackoff(attempt int) {
	time.Sleep(time.Duration(rand.Intn(1000)+500) * time.Microsecond * time.Duration(attempt+1))
}

// PaymentInput parameterizes one Payment transaction.
type PaymentInput struct {
	WID    uint32
	DID    uint8
	CWID   uint32 // customer's warehouse (== WID for local payments)
	CDID   uint8
	CID    uint32
	Amount float64
}

// GenPayment draws Payment parameters per the spec: 85% local customers,
// amount in [1, 5000].
func GenPayment(r *Rand, scale Scale, homeW uint32) PaymentInput {
	in := PaymentInput{
		WID:    homeW,
		DID:    uint8(r.Int(1, scale.Districts)),
		Amount: r.Float(1, 5000),
	}
	if scale.Warehouses > 1 && r.Int(1, 100) > 85 {
		// Remote customer.
		for {
			w := uint32(r.Int(1, scale.Warehouses))
			if w != homeW {
				in.CWID = w
				break
			}
		}
	} else {
		in.CWID = homeW
	}
	in.CDID = uint8(r.Int(1, scale.Districts))
	in.CID = uint32(r.CustomerID(scale.Customers))
	return in
}

// Payment executes one TPC-C Payment transaction (§3.2: "updates the
// customer's balance and corresponding district and warehouse sales
// statistics ... One of the updates made by Payment is to a contended
// table, WAREHOUSE"). It commits on success and aborts on error.
func (db *DB) Payment(in PaymentInput) error {
	e := db.Engine
	t, err := e.Begin()
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = e.Abort(t)
		return err
	}

	// Warehouse: read + update YTD — the hot row.
	wh, err := db.readWarehouse(t, in.WID)
	if err != nil {
		return fail(err)
	}
	wh.YTD += in.Amount
	if err := e.IndexUpdate(t, db.Warehouse, wKey(in.WID), wh.encode()); err != nil {
		return fail(err)
	}

	// District: read + update YTD.
	dist, err := db.readDistrict(t, in.WID, in.DID)
	if err != nil {
		return fail(err)
	}
	dist.YTD += in.Amount
	if err := e.IndexUpdate(t, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
		return fail(err)
	}

	// Customer: read + update balance/payment stats.
	cust, err := db.readCustomer(t, in.CWID, in.CDID, in.CID)
	if err != nil {
		return fail(err)
	}
	cust.Balance -= in.Amount
	cust.YTDPayment += in.Amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		info := fmt.Sprintf("%d %d %d %d %d %.2f|", in.CID, in.CDID, in.CWID, in.DID, in.WID, in.Amount)
		cust.Data = info + cust.Data
		if len(cust.Data) > 500 {
			cust.Data = cust.Data[:500]
		}
	}
	if err := e.IndexUpdate(t, db.Customer, cKey(in.CWID, in.CDID, in.CID), cust.encode()); err != nil {
		return fail(err)
	}

	// History: append.
	h := History{
		CID: in.CID, CDID: in.CDID, CWID: in.CWID,
		DID: in.DID, WID: in.WID,
		Date: time.Now().UnixNano(), Amount: in.Amount,
		Data: wh.Name + "    " + dist.Name,
	}
	if _, err := e.HeapInsert(t, db.History, h.encode()); err != nil {
		return fail(err)
	}
	return e.Commit(t)
}

// PaymentWithRetry runs Payment, retrying deadlock/timeout victims with
// randomized backoff.
func (db *DB) PaymentWithRetry(in PaymentInput, maxRetries int) error {
	var err error
	for i := 0; i <= maxRetries; i++ {
		err = db.Payment(in)
		if err == nil || !retryable(err) {
			return err
		}
		retryBackoff(i)
	}
	return err
}
