package tpcc

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/tx"
)

// ErrUserAbort marks New Order's intentional 1% rollback.
var ErrUserAbort = errors.New("tpcc: user-initiated rollback")

// retryPolicy is the managed-retry policy for the *Ctx transaction
// entrypoints: the engine aborts deadlock/timeout victims and re-runs
// the body with capped exponential backoff. TPC-C transactions are
// short (tens of µs of work), so the cap is kept tight — the default
// 50ms cap would oversleep hot-row victims by two orders of magnitude.
var retryPolicy = core.RetryPolicy{BaseBackoff: 500 * time.Microsecond, MaxBackoff: 16 * time.Millisecond}

// onceOnly runs a managed transaction exactly once — the plain
// entrypoints surface deadlock victims to the caller.
var onceOnly = core.RetryPolicy{MaxAttempts: 1}

// attempts converts a legacy "retries" count to a RetryPolicy.
func attempts(maxRetries int) core.RetryPolicy {
	p := retryPolicy
	p.MaxAttempts = maxRetries + 1
	return p
}

// PaymentInput parameterizes one Payment transaction.
type PaymentInput struct {
	WID    uint32
	DID    uint8
	CWID   uint32 // customer's warehouse (== WID for local payments)
	CDID   uint8
	CID    uint32
	Amount float64
}

// GenPayment draws Payment parameters per the spec: 85% local customers,
// amount in [1, 5000].
func GenPayment(r *Rand, scale Scale, homeW uint32) PaymentInput {
	in := PaymentInput{
		WID:    homeW,
		DID:    uint8(r.Int(1, scale.Districts)),
		Amount: r.Float(1, 5000),
	}
	if scale.Warehouses > 1 && r.Int(1, 100) > 85 {
		// Remote customer.
		for {
			w := uint32(r.Int(1, scale.Warehouses))
			if w != homeW {
				in.CWID = w
				break
			}
		}
	} else {
		in.CWID = homeW
	}
	in.CDID = uint8(r.Int(1, scale.Districts))
	in.CID = uint32(r.CustomerID(scale.Customers))
	return in
}

// Payment executes one TPC-C Payment transaction (§3.2: "updates the
// customer's balance and corresponding district and warehouse sales
// statistics ... One of the updates made by Payment is to a contended
// table, WAREHOUSE"). It commits on success and aborts on error; a
// deadlock victim is surfaced, not retried — use PaymentCtx.
func (db *DB) Payment(in PaymentInput) error {
	return db.Engine.RunCtx(context.Background(), onceOnly, func(t *tx.Tx) error {
		return db.payment(context.Background(), t, in)
	}, nil)
}

// PaymentCtx runs Payment under the engine's managed-transaction runner:
// deadlock victims and lock timeouts are aborted and retried with capped
// exponential backoff, and every lock wait observes ctx.
func (db *DB) PaymentCtx(ctx context.Context, in PaymentInput) error {
	return db.Engine.RunCtx(ctx, retryPolicy, func(t *tx.Tx) error {
		return db.payment(ctx, t, in)
	}, nil)
}

// payment is the transaction body, run inside a managed transaction
// (begin/abort/commit and deadlock retry belong to the runner).
func (db *DB) payment(ctx context.Context, t *tx.Tx, in PaymentInput) error {
	e := db.Engine
	// Warehouse: read + update YTD — the hot row.
	wh, err := db.readWarehouse(ctx, t, in.WID)
	if err != nil {
		return err
	}
	wh.YTD += in.Amount
	if err := e.IndexUpdateCtx(ctx, t, db.Warehouse, wKey(in.WID), wh.encode()); err != nil {
		return err
	}

	// District: read + update YTD.
	dist, err := db.readDistrict(ctx, t, in.WID, in.DID)
	if err != nil {
		return err
	}
	dist.YTD += in.Amount
	if err := e.IndexUpdateCtx(ctx, t, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
		return err
	}

	// Customer: read + update balance/payment stats.
	cust, err := db.readCustomer(ctx, t, in.CWID, in.CDID, in.CID)
	if err != nil {
		return err
	}
	cust.Balance -= in.Amount
	cust.YTDPayment += in.Amount
	cust.PaymentCnt++
	if cust.Credit == "BC" {
		info := fmt.Sprintf("%d %d %d %d %d %.2f|", in.CID, in.CDID, in.CWID, in.DID, in.WID, in.Amount)
		cust.Data = info + cust.Data
		if len(cust.Data) > 500 {
			cust.Data = cust.Data[:500]
		}
	}
	if err := e.IndexUpdateCtx(ctx, t, db.Customer, cKey(in.CWID, in.CDID, in.CID), cust.encode()); err != nil {
		return err
	}

	// History: append.
	h := History{
		CID: in.CID, CDID: in.CDID, CWID: in.CWID,
		DID: in.DID, WID: in.WID,
		Date: time.Now().UnixNano(), Amount: in.Amount,
		Data: wh.Name + "    " + dist.Name,
	}
	_, err = e.HeapInsertCtx(ctx, t, db.History, h.encode())
	return err
}

// PaymentWithRetry is PaymentCtx with an explicit retry budget, kept for
// callers that count in "retries"; the hand-rolled loop it once carried
// now lives in the engine's managed runner.
func (db *DB) PaymentWithRetry(in PaymentInput, maxRetries int) error {
	return db.Engine.RunCtx(context.Background(), attempts(maxRetries), func(t *tx.Tx) error {
		return db.payment(context.Background(), t, in)
	}, nil)
}
