package tpcc

import "encoding/binary"

// Composite primary keys, big-endian so B-tree order matches key order.

func wKey(w uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, w)
	return b
}

func dKey(w uint32, d uint8) []byte {
	return append(wKey(w), d)
}

func cKey(w uint32, d uint8, c uint32) []byte {
	b := dKey(w, d)
	return binary.BigEndian.AppendUint32(b, c)
}

func oKey(w uint32, d uint8, o uint32) []byte {
	b := dKey(w, d)
	return binary.BigEndian.AppendUint32(b, o)
}

func olKey(w uint32, d uint8, o uint32, ol uint8) []byte {
	return append(oKey(w, d, o), ol)
}

func iKey(i uint32) []byte {
	b := make([]byte, 4)
	binary.BigEndian.PutUint32(b, i)
	return b
}

func sKey(w, i uint32) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, w)
	binary.BigEndian.PutUint32(b[4:], i)
	return b
}

// Warehouse is one WAREHOUSE row.
type Warehouse struct {
	ID     uint32
	Name   string
	Street string
	City   string
	State  string
	Zip    string
	Tax    float64
	YTD    float64
}

func (w *Warehouse) encode() []byte {
	var e enc
	e.u32(w.ID)
	e.str(w.Name)
	e.str(w.Street)
	e.str(w.City)
	e.str(w.State)
	e.str(w.Zip)
	e.f64(w.Tax)
	e.f64(w.YTD)
	return e.b
}

func decodeWarehouse(b []byte) (Warehouse, error) {
	d := dec{b: b}
	w := Warehouse{
		ID: d.u32(), Name: d.str(), Street: d.str(), City: d.str(),
		State: d.str(), Zip: d.str(), Tax: d.f64(), YTD: d.f64(),
	}
	return w, d.err
}

// District is one DISTRICT row.
type District struct {
	WID     uint32
	ID      uint8
	Name    string
	Street  string
	City    string
	Tax     float64
	YTD     float64
	NextOID uint32
}

func (r *District) encode() []byte {
	var e enc
	e.u32(r.WID)
	e.u8(r.ID)
	e.str(r.Name)
	e.str(r.Street)
	e.str(r.City)
	e.f64(r.Tax)
	e.f64(r.YTD)
	e.u32(r.NextOID)
	return e.b
}

func decodeDistrict(b []byte) (District, error) {
	d := dec{b: b}
	r := District{
		WID: d.u32(), ID: d.u8(), Name: d.str(), Street: d.str(),
		City: d.str(), Tax: d.f64(), YTD: d.f64(), NextOID: d.u32(),
	}
	return r, d.err
}

// Customer is one CUSTOMER row.
type Customer struct {
	WID        uint32
	DID        uint8
	ID         uint32
	First      string
	Middle     string
	Last       string
	Credit     string // "GC" or "BC"
	CreditLim  float64
	Discount   float64
	Balance    float64
	YTDPayment float64
	PaymentCnt uint32
	DeliveryCt uint32
	Data       string
}

func (c *Customer) encode() []byte {
	var e enc
	e.u32(c.WID)
	e.u8(c.DID)
	e.u32(c.ID)
	e.str(c.First)
	e.str(c.Middle)
	e.str(c.Last)
	e.str(c.Credit)
	e.f64(c.CreditLim)
	e.f64(c.Discount)
	e.f64(c.Balance)
	e.f64(c.YTDPayment)
	e.u32(c.PaymentCnt)
	e.u32(c.DeliveryCt)
	e.str(c.Data)
	return e.b
}

func decodeCustomer(b []byte) (Customer, error) {
	d := dec{b: b}
	c := Customer{
		WID: d.u32(), DID: d.u8(), ID: d.u32(),
		First: d.str(), Middle: d.str(), Last: d.str(), Credit: d.str(),
		CreditLim: d.f64(), Discount: d.f64(), Balance: d.f64(),
		YTDPayment: d.f64(), PaymentCnt: d.u32(), DeliveryCt: d.u32(),
		Data: d.str(),
	}
	return c, d.err
}

// History is one HISTORY row (heap resident; no primary key).
type History struct {
	CID    uint32
	CDID   uint8
	CWID   uint32
	DID    uint8
	WID    uint32
	Date   int64
	Amount float64
	Data   string
}

func (h *History) encode() []byte {
	var e enc
	e.u32(h.CID)
	e.u8(h.CDID)
	e.u32(h.CWID)
	e.u8(h.DID)
	e.u32(h.WID)
	e.i64(h.Date)
	e.f64(h.Amount)
	e.str(h.Data)
	return e.b
}

func decodeHistory(b []byte) (History, error) {
	d := dec{b: b}
	h := History{
		CID: d.u32(), CDID: d.u8(), CWID: d.u32(), DID: d.u8(), WID: d.u32(),
		Date: d.i64(), Amount: d.f64(), Data: d.str(),
	}
	return h, d.err
}

// Order is one ORDERS row.
type Order struct {
	WID       uint32
	DID       uint8
	ID        uint32
	CID       uint32
	EntryDate int64
	CarrierID uint8
	OLCount   uint8
	AllLocal  bool
}

func (o *Order) encode() []byte {
	var e enc
	e.u32(o.WID)
	e.u8(o.DID)
	e.u32(o.ID)
	e.u32(o.CID)
	e.i64(o.EntryDate)
	e.u8(o.CarrierID)
	e.u8(o.OLCount)
	if o.AllLocal {
		e.u8(1)
	} else {
		e.u8(0)
	}
	return e.b
}

func decodeOrder(b []byte) (Order, error) {
	d := dec{b: b}
	o := Order{
		WID: d.u32(), DID: d.u8(), ID: d.u32(), CID: d.u32(),
		EntryDate: d.i64(), CarrierID: d.u8(), OLCount: d.u8(),
	}
	o.AllLocal = d.u8() == 1
	return o, d.err
}

// NewOrderRow is one NEW_ORDER row.
type NewOrderRow struct {
	WID uint32
	DID uint8
	OID uint32
}

func (n *NewOrderRow) encode() []byte {
	var e enc
	e.u32(n.WID)
	e.u8(n.DID)
	e.u32(n.OID)
	return e.b
}

func decodeNewOrderRow(b []byte) (NewOrderRow, error) {
	d := dec{b: b}
	n := NewOrderRow{WID: d.u32(), DID: d.u8(), OID: d.u32()}
	return n, d.err
}

// OrderLine is one ORDER_LINE row.
type OrderLine struct {
	WID       uint32
	DID       uint8
	OID       uint32
	Number    uint8
	ItemID    uint32
	SupplyWID uint32
	Quantity  uint8
	Amount    float64
	DistInfo  string
}

func (ol *OrderLine) encode() []byte {
	var e enc
	e.u32(ol.WID)
	e.u8(ol.DID)
	e.u32(ol.OID)
	e.u8(ol.Number)
	e.u32(ol.ItemID)
	e.u32(ol.SupplyWID)
	e.u8(ol.Quantity)
	e.f64(ol.Amount)
	e.str(ol.DistInfo)
	return e.b
}

func decodeOrderLine(b []byte) (OrderLine, error) {
	d := dec{b: b}
	ol := OrderLine{
		WID: d.u32(), DID: d.u8(), OID: d.u32(), Number: d.u8(),
		ItemID: d.u32(), SupplyWID: d.u32(), Quantity: d.u8(),
		Amount: d.f64(), DistInfo: d.str(),
	}
	return ol, d.err
}

// Item is one ITEM row.
type Item struct {
	ID    uint32
	ImID  uint32
	Name  string
	Price float64
	Data  string
}

func (i *Item) encode() []byte {
	var e enc
	e.u32(i.ID)
	e.u32(i.ImID)
	e.str(i.Name)
	e.f64(i.Price)
	e.str(i.Data)
	return e.b
}

func decodeItem(b []byte) (Item, error) {
	d := dec{b: b}
	i := Item{ID: d.u32(), ImID: d.u32(), Name: d.str(), Price: d.f64(), Data: d.str()}
	return i, d.err
}

// Stock is one STOCK row.
type Stock struct {
	WID       uint32
	ItemID    uint32
	Quantity  int32
	YTD       float64
	OrderCnt  uint32
	RemoteCnt uint32
	DistInfo  string
	Data      string
}

func (s *Stock) encode() []byte {
	var e enc
	e.u32(s.WID)
	e.u32(s.ItemID)
	e.u32(uint32(s.Quantity))
	e.f64(s.YTD)
	e.u32(s.OrderCnt)
	e.u32(s.RemoteCnt)
	e.str(s.DistInfo)
	e.str(s.Data)
	return e.b
}

func decodeStock(b []byte) (Stock, error) {
	d := dec{b: b}
	s := Stock{WID: d.u32(), ItemID: d.u32()}
	s.Quantity = int32(d.u32())
	s.YTD = d.f64()
	s.OrderCnt = d.u32()
	s.RemoteCnt = d.u32()
	s.DistInfo = d.str()
	s.Data = d.str()
	return s, d.err
}
