// Package tpcc implements the TPC-C subset the paper benchmarks with
// (§3.2): the full nine-table schema, the standard NURand key generator,
// a scale-configurable loader, and the Payment and New Order transactions
// — together 88% of the TPC-C mix and the workloads of Figure 5.
//
// Rows live in B-tree primary indexes keyed by their composite primary
// keys (big-endian encodings so ranges scan in order); HISTORY, which has
// no primary key, lives in a heap table.
package tpcc

import (
	"encoding/binary"
	"errors"
	"math"
)

// ErrShortRow reports a truncated row during decoding.
var ErrShortRow = errors.New("tpcc: truncated row")

// enc is a tiny append-only row encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.BigEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.BigEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}
func (e *enc) str(s string) {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	e.b = append(e.b, byte(len(s)>>8), byte(len(s)))
	e.b = append(e.b, s...)
}

// dec is the matching decoder.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) need(n int) bool {
	if d.err != nil || d.off+n > len(d.b) {
		d.err = ErrShortRow
		return false
	}
	return true
}

func (d *dec) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *dec) str() string {
	if !d.need(2) {
		return ""
	}
	n := int(d.b[d.off])<<8 | int(d.b[d.off+1])
	d.off += 2
	if !d.need(n) {
		return ""
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s
}
