package tpcc

import (
	"context"
	"time"

	"repro/internal/tx"
)

// NewOrderInput parameterizes one New Order transaction.
type NewOrderInput struct {
	WID   uint32
	DID   uint8
	CID   uint32
	Lines []NewOrderLine
	// Rollback triggers the spec's 1% intentional abort (unused item id).
	Rollback bool
}

// NewOrderLine is one requested order line.
type NewOrderLine struct {
	ItemID    uint32
	SupplyWID uint32
	Quantity  uint8
}

// GenNewOrder draws New Order parameters per the spec: 5–15 lines, NURand
// item ids, 1% remote supply warehouses, 1% rollbacks.
func GenNewOrder(r *Rand, scale Scale, homeW uint32) NewOrderInput {
	in := NewOrderInput{
		WID:      homeW,
		DID:      uint8(r.Int(1, scale.Districts)),
		CID:      uint32(r.CustomerID(scale.Customers)),
		Rollback: r.Rollback1Percent(),
	}
	n := r.Int(5, 15)
	for i := 0; i < n; i++ {
		l := NewOrderLine{
			ItemID:    uint32(r.ItemID(scale.Items)),
			SupplyWID: homeW,
			Quantity:  uint8(r.Int(1, 10)),
		}
		if scale.Warehouses > 1 && r.Int(1, 100) == 1 {
			for {
				w := uint32(r.Int(1, scale.Warehouses))
				if w != homeW {
					l.SupplyWID = w
					break
				}
			}
		}
		in.Lines = append(in.Lines, l)
	}
	return in
}

// NewOrder executes one TPC-C New Order transaction (§3.2: "enters an
// order and its line items into the system, as well as updating customer
// and stock information ... stresses B-Tree indexes (probes and
// insertions) and the lock manager"). It commits on success; the 1%
// intentional rollback returns ErrUserAbort after aborting.
func (db *DB) NewOrder(in NewOrderInput) error {
	return db.Engine.RunCtx(context.Background(), onceOnly, func(t *tx.Tx) error {
		return db.newOrder(context.Background(), t, in)
	}, nil)
}

// NewOrderCtx runs NewOrder under the engine's managed-transaction
// runner: deadlock victims and lock timeouts are aborted and retried
// with capped exponential backoff, every lock wait observes ctx, and
// ErrUserAbort (not retryable) passes through as-is.
func (db *DB) NewOrderCtx(ctx context.Context, in NewOrderInput) error {
	return db.Engine.RunCtx(ctx, retryPolicy, func(t *tx.Tx) error {
		return db.newOrder(ctx, t, in)
	}, nil)
}

// newOrder is the transaction body, run inside a managed transaction
// (begin/abort/commit and deadlock retry belong to the runner; returning
// ErrUserAbort makes the runner abort without retrying).
func (db *DB) newOrder(ctx context.Context, t *tx.Tx, in NewOrderInput) error {
	e := db.Engine
	// Warehouse tax (read-only).
	if _, err := db.readWarehouse(ctx, t, in.WID); err != nil {
		return err
	}
	// Customer discount/credit (read-only).
	if _, err := db.readCustomer(ctx, t, in.WID, in.DID, in.CID); err != nil {
		return err
	}
	// District: allocate the order id (hot per-district counter).
	dist, err := db.readDistrict(ctx, t, in.WID, in.DID)
	if err != nil {
		return err
	}
	oid := dist.NextOID
	dist.NextOID++
	if err := e.IndexUpdateCtx(ctx, t, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
		return err
	}

	// ORDERS and NEW_ORDER rows.
	allLocal := true
	for _, l := range in.Lines {
		if l.SupplyWID != in.WID {
			allLocal = false
		}
	}
	ord := Order{
		WID: in.WID, DID: in.DID, ID: oid, CID: in.CID,
		EntryDate: time.Now().UnixNano(),
		OLCount:   uint8(len(in.Lines)), AllLocal: allLocal,
	}
	if err := e.IndexInsertCtx(ctx, t, db.Orders, oKey(in.WID, in.DID, oid), ord.encode()); err != nil {
		return err
	}
	no := NewOrderRow{WID: in.WID, DID: in.DID, OID: oid}
	if err := e.IndexInsertCtx(ctx, t, db.NewOrderTab, oKey(in.WID, in.DID, oid), no.encode()); err != nil {
		return err
	}

	// Lines: item probe (ITEM contention), stock update (STOCK
	// contention), order-line insert.
	for i, l := range in.Lines {
		if in.Rollback && i == len(in.Lines)-1 {
			// Unused item id: the spec's intentional rollback.
			return ErrUserAbort
		}
		item, ok, err := db.readItem(ctx, t, l.ItemID)
		if err != nil {
			return err
		}
		if !ok {
			return ErrUserAbort
		}
		st, err := db.readStock(ctx, t, l.SupplyWID, l.ItemID)
		if err != nil {
			return err
		}
		if st.Quantity >= int32(l.Quantity)+10 {
			st.Quantity -= int32(l.Quantity)
		} else {
			st.Quantity += 91 - int32(l.Quantity)
		}
		st.YTD += float64(l.Quantity)
		st.OrderCnt++
		if l.SupplyWID != in.WID {
			st.RemoteCnt++
		}
		if err := e.IndexUpdateCtx(ctx, t, db.Stock, sKey(l.SupplyWID, l.ItemID), st.encode()); err != nil {
			return err
		}
		ol := OrderLine{
			WID: in.WID, DID: in.DID, OID: oid, Number: uint8(i + 1),
			ItemID: l.ItemID, SupplyWID: l.SupplyWID, Quantity: l.Quantity,
			Amount:   float64(l.Quantity) * item.Price,
			DistInfo: st.DistInfo,
		}
		if err := e.IndexInsertCtx(ctx, t, db.OrderLine, olKey(in.WID, in.DID, oid, uint8(i+1)), ol.encode()); err != nil {
			return err
		}
	}
	return nil
}

// NewOrderWithRetry is NewOrderCtx with an explicit retry budget, kept
// for callers that count in "retries". ErrUserAbort is a success from
// the harness's point of view and is returned as-is, without retry.
func (db *DB) NewOrderWithRetry(in NewOrderInput, maxRetries int) error {
	return db.Engine.RunCtx(context.Background(), attempts(maxRetries), func(t *tx.Tx) error {
		return db.newOrder(context.Background(), t, in)
	}, nil)
}
