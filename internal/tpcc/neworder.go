package tpcc

import (
	"time"
)

// NewOrderInput parameterizes one New Order transaction.
type NewOrderInput struct {
	WID   uint32
	DID   uint8
	CID   uint32
	Lines []NewOrderLine
	// Rollback triggers the spec's 1% intentional abort (unused item id).
	Rollback bool
}

// NewOrderLine is one requested order line.
type NewOrderLine struct {
	ItemID    uint32
	SupplyWID uint32
	Quantity  uint8
}

// GenNewOrder draws New Order parameters per the spec: 5–15 lines, NURand
// item ids, 1% remote supply warehouses, 1% rollbacks.
func GenNewOrder(r *Rand, scale Scale, homeW uint32) NewOrderInput {
	in := NewOrderInput{
		WID:      homeW,
		DID:      uint8(r.Int(1, scale.Districts)),
		CID:      uint32(r.CustomerID(scale.Customers)),
		Rollback: r.Rollback1Percent(),
	}
	n := r.Int(5, 15)
	for i := 0; i < n; i++ {
		l := NewOrderLine{
			ItemID:    uint32(r.ItemID(scale.Items)),
			SupplyWID: homeW,
			Quantity:  uint8(r.Int(1, 10)),
		}
		if scale.Warehouses > 1 && r.Int(1, 100) == 1 {
			for {
				w := uint32(r.Int(1, scale.Warehouses))
				if w != homeW {
					l.SupplyWID = w
					break
				}
			}
		}
		in.Lines = append(in.Lines, l)
	}
	return in
}

// NewOrder executes one TPC-C New Order transaction (§3.2: "enters an
// order and its line items into the system, as well as updating customer
// and stock information ... stresses B-Tree indexes (probes and
// insertions) and the lock manager"). It commits on success; the 1%
// intentional rollback returns ErrUserAbort after aborting.
func (db *DB) NewOrder(in NewOrderInput) error {
	e := db.Engine
	t, err := e.Begin()
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = e.Abort(t)
		return err
	}

	// Warehouse tax (read-only).
	if _, err := db.readWarehouse(t, in.WID); err != nil {
		return fail(err)
	}
	// Customer discount/credit (read-only).
	if _, err := db.readCustomer(t, in.WID, in.DID, in.CID); err != nil {
		return fail(err)
	}
	// District: allocate the order id (hot per-district counter).
	dist, err := db.readDistrict(t, in.WID, in.DID)
	if err != nil {
		return fail(err)
	}
	oid := dist.NextOID
	dist.NextOID++
	if err := e.IndexUpdate(t, db.District, dKey(in.WID, in.DID), dist.encode()); err != nil {
		return fail(err)
	}

	// ORDERS and NEW_ORDER rows.
	allLocal := true
	for _, l := range in.Lines {
		if l.SupplyWID != in.WID {
			allLocal = false
		}
	}
	ord := Order{
		WID: in.WID, DID: in.DID, ID: oid, CID: in.CID,
		EntryDate: time.Now().UnixNano(),
		OLCount:   uint8(len(in.Lines)), AllLocal: allLocal,
	}
	if err := e.IndexInsert(t, db.Orders, oKey(in.WID, in.DID, oid), ord.encode()); err != nil {
		return fail(err)
	}
	no := NewOrderRow{WID: in.WID, DID: in.DID, OID: oid}
	if err := e.IndexInsert(t, db.NewOrderTab, oKey(in.WID, in.DID, oid), no.encode()); err != nil {
		return fail(err)
	}

	// Lines: item probe (ITEM contention), stock update (STOCK
	// contention), order-line insert.
	for i, l := range in.Lines {
		if in.Rollback && i == len(in.Lines)-1 {
			// Unused item id: the spec's intentional rollback.
			_ = e.Abort(t)
			return ErrUserAbort
		}
		item, ok, err := db.readItem(t, l.ItemID)
		if err != nil {
			return fail(err)
		}
		if !ok {
			_ = e.Abort(t)
			return ErrUserAbort
		}
		st, err := db.readStock(t, l.SupplyWID, l.ItemID)
		if err != nil {
			return fail(err)
		}
		if st.Quantity >= int32(l.Quantity)+10 {
			st.Quantity -= int32(l.Quantity)
		} else {
			st.Quantity += 91 - int32(l.Quantity)
		}
		st.YTD += float64(l.Quantity)
		st.OrderCnt++
		if l.SupplyWID != in.WID {
			st.RemoteCnt++
		}
		if err := e.IndexUpdate(t, db.Stock, sKey(l.SupplyWID, l.ItemID), st.encode()); err != nil {
			return fail(err)
		}
		ol := OrderLine{
			WID: in.WID, DID: in.DID, OID: oid, Number: uint8(i + 1),
			ItemID: l.ItemID, SupplyWID: l.SupplyWID, Quantity: l.Quantity,
			Amount:   float64(l.Quantity) * item.Price,
			DistInfo: st.DistInfo,
		}
		if err := e.IndexInsert(t, db.OrderLine, olKey(in.WID, in.DID, oid, uint8(i+1)), ol.encode()); err != nil {
			return fail(err)
		}
	}
	return e.Commit(t)
}

// NewOrderWithRetry runs NewOrder, retrying deadlock/timeout victims.
// ErrUserAbort is a success from the harness's point of view and is
// returned as-is.
func (db *DB) NewOrderWithRetry(in NewOrderInput, maxRetries int) error {
	var err error
	for i := 0; i <= maxRetries; i++ {
		err = db.NewOrder(in)
		if err == nil || !retryable(err) {
			return err
		}
		retryBackoff(i)
	}
	return err
}
