package hash

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Cuckoo table geometry. Keys are at most 40 bits and values at most 24
// bits so that an occupied entry packs into one uint64, giving lock-free
// atomic lookups — the property the paper exploits: "updates and searches
// only interfere with each other when they actually touch the same value"
// (§6.2.3).
const (
	cuckooWays    = 3  // N hash functions -> N candidate slots
	cuckooMaxKick = 64 // eviction-cascade bound before declaring overflow
	keyBits       = 40
	valBits       = 24

	// MaxKey is the largest key storable in a Cuckoo table. Keys are
	// stored +1 (zero marks an empty slot), so the top raw value is
	// reserved.
	MaxKey = uint64(1)<<keyBits - 2
	// MaxValue is the largest value storable in a Cuckoo table.
	MaxValue = uint32(1)<<valBits - 1
)

// Errors returned by Cuckoo operations.
var (
	ErrKeyRange = errors.New("hash: key exceeds 40-bit cuckoo key space")
	ErrValRange = errors.New("hash: value exceeds 24-bit cuckoo value space")
)

// pack encodes key (stored +1 so zero means empty) and val in one word.
func pack(key uint64, val uint32) uint64 {
	return (key+1)<<valBits | uint64(val)
}

func unpack(e uint64) (key uint64, val uint32) {
	return (e >> valBits) - 1, uint32(e) & MaxValue
}

// Cuckoo is a 3-ary cuckoo hash table mapping small integer keys (page IDs)
// to small integer values (frame indexes). Lookups are wait-free single
// atomic loads per candidate slot; mutations serialize on one writer mutex,
// which is acceptable for a buffer-pool index because hits vastly outnumber
// misses (the paper: "Most buffer pool searches (80-90%) hit").
//
// A collision occurs only when all N candidate slots for a key are full and
// is resolved by relocating a victim to one of its other N-1 slots,
// cascading if necessary. Because the buffer pool is merely a cache, a
// cascade that exceeds its bound evicts the final victim entry outright and
// reports it to the caller (Insert's first return), matching the paper's
// "we can also evict particularly troublesome pages in order to end
// cascades".
type Cuckoo struct {
	h     Combined
	slots []atomic.Uint64 // one flat array; each way indexes the whole array
	mask  uint64
	mu    sync.Mutex // serializes Insert/Delete
	size  atomic.Int64
}

// NewCuckoo creates a table with at least capacity slots (rounded up to a
// power of two) using hash functions seeded from seed.
func NewCuckoo(capacity int, seed int64) *Cuckoo {
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Cuckoo{
		h:     NewCombined(seed),
		slots: make([]atomic.Uint64, n),
		mask:  uint64(n - 1),
	}
}

// idx returns the candidate slot index of key under hash function way.
func (c *Cuckoo) idx(way int, key uint64) uint64 {
	return c.h.Sub(way, key) & c.mask
}

// Get returns the value stored for key. It is wait-free.
func (c *Cuckoo) Get(key uint64) (uint32, bool) {
	for w := 0; w < cuckooWays; w++ {
		e := c.slots[c.idx(w, key)].Load()
		if e != 0 {
			if k, v := unpack(e); k == key {
				return v, true
			}
		}
	}
	return 0, false
}

// Evicted describes an entry displaced by a cascade overflow.
type Evicted struct {
	Key   uint64
	Value uint32
}

func checkRange(key uint64, val uint32) error {
	if key > MaxKey {
		return fmt.Errorf("%w: %d", ErrKeyRange, key)
	}
	if val > MaxValue {
		return fmt.Errorf("%w: %d", ErrValRange, val)
	}
	return nil
}

// getLocked looks key up while c.mu is held.
func (c *Cuckoo) getLocked(key uint64) (uint32, bool) {
	for w := 0; w < cuckooWays; w++ {
		if e := c.slots[c.idx(w, key)].Load(); e != 0 {
			if k, v := unpack(e); k == key {
				return v, true
			}
		}
	}
	return 0, false
}

// insertLocked performs the insert/replace/cascade while c.mu is held.
func (c *Cuckoo) insertLocked(key uint64, val uint32) *Evicted {
	// Replace in place if present.
	for w := 0; w < cuckooWays; w++ {
		i := c.idx(w, key)
		if e := c.slots[i].Load(); e != 0 {
			if k, _ := unpack(e); k == key {
				c.slots[i].Store(pack(key, val))
				return nil
			}
		}
	}
	// Use any empty candidate slot.
	for w := 0; w < cuckooWays; w++ {
		i := c.idx(w, key)
		if c.slots[i].Load() == 0 {
			c.slots[i].Store(pack(key, val))
			c.size.Add(1)
			return nil
		}
	}
	// Cascade: displace the occupant of a candidate slot and walk.
	curKey, curVal := key, val
	way := 0
	for kick := 0; kick < cuckooMaxKick; kick++ {
		i := c.idx(way, curKey)
		old := c.slots[i].Load()
		c.slots[i].Store(pack(curKey, curVal))
		if old == 0 {
			c.size.Add(1)
			return nil
		}
		curKey, curVal = unpack(old)
		// Try the victim's other slots before cascading further.
		for w := 0; w < cuckooWays; w++ {
			j := c.idx(w, curKey)
			if c.slots[j].Load() == 0 {
				c.slots[j].Store(pack(curKey, curVal))
				c.size.Add(1)
				return nil
			}
		}
		// Displace from a rotating way to avoid short cycles.
		way = (way + 1) % cuckooWays
	}
	// Cascade bound exceeded: the cache drops the final victim. The net
	// size is unchanged (one entry in, one entry out).
	return &Evicted{Key: curKey, Value: curVal}
}

// Insert stores key→val. If key is present its value is replaced. If an
// eviction cascade exceeds its bound, the displaced entry is returned in
// evicted (non-nil) and the insert still succeeds.
func (c *Cuckoo) Insert(key uint64, val uint32) (evicted *Evicted, err error) {
	if err := checkRange(key, val); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.insertLocked(key, val), nil
}

// GetOrInsert atomically looks key up and, if absent, inserts val. It
// returns the value now associated with key and whether this call inserted
// it. Buffer-pool miss paths use this to close the window in which a
// concurrent cascade makes an entry transiently invisible to lock-free Get.
func (c *Cuckoo) GetOrInsert(key uint64, val uint32) (got uint32, inserted bool, evicted *Evicted, err error) {
	if err := checkRange(key, val); err != nil {
		return 0, false, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.getLocked(key); ok {
		return v, false, nil, nil
	}
	return val, true, c.insertLocked(key, val), nil
}

// Delete removes key and reports whether it was present.
func (c *Cuckoo) Delete(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for w := 0; w < cuckooWays; w++ {
		i := c.idx(w, key)
		if e := c.slots[i].Load(); e != 0 {
			if k, _ := unpack(e); k == key {
				c.slots[i].Store(0)
				c.size.Add(-1)
				return true
			}
		}
	}
	return false
}

// Len returns the number of stored entries.
func (c *Cuckoo) Len() int { return int(c.size.Load()) }

// Capacity returns the number of slots.
func (c *Cuckoo) Capacity() int { return len(c.slots) }

// Range calls fn for each entry until fn returns false. The iteration is a
// racy snapshot: entries inserted or removed concurrently may or may not be
// observed, which is fine for its users (page-cleaner sweeps, stats).
func (c *Cuckoo) Range(fn func(key uint64, val uint32) bool) {
	for i := range c.slots {
		if e := c.slots[i].Load(); e != 0 {
			k, v := unpack(e)
			if !fn(k, v) {
				return
			}
		}
	}
}
