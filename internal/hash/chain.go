package hash

import (
	"repro/internal/sync2"
)

// chainEntry is a node in an open-chaining bucket list.
type chainEntry struct {
	key  uint64
	val  uint32
	next *chainEntry
}

// LockingMode selects how a ChainTable is protected, reproducing the
// buffer-pool evolution in §7.2: the original Shore used "a single, global
// mutex that very quickly became contended"; bpool1 replaced it with "one
// mutex per hash bucket".
type LockingMode int

// Locking modes for ChainTable.
const (
	GlobalLock    LockingMode = iota // one mutex for the whole table
	PerBucketLock                    // one mutex per bucket
)

// ChainTable is an open-chaining hash table with pluggable locking
// granularity. It is the baseline buffer-pool index and the lock-manager
// table substrate.
type ChainTable struct {
	mode    LockingMode
	h       Combined
	buckets []*chainEntry
	locks   []sync2.Locker // len 1 (global) or len(buckets) (per bucket)
	mask    uint64
	size    int64 // guarded by the global lock or distributed; see Len
	sizes   []int64
}

// NewChainTable creates a table with at least capacity buckets (rounded to
// a power of two), protected per mode, using locks built by mkLock.
func NewChainTable(capacity int, mode LockingMode, seed int64, mkLock func() sync2.Locker) *ChainTable {
	n := 16
	for n < capacity {
		n <<= 1
	}
	t := &ChainTable{
		mode:    mode,
		h:       NewCombined(seed),
		buckets: make([]*chainEntry, n),
		mask:    uint64(n - 1),
	}
	if mode == GlobalLock {
		t.locks = []sync2.Locker{mkLock()}
	} else {
		t.locks = make([]sync2.Locker, n)
		for i := range t.locks {
			t.locks[i] = mkLock()
		}
		t.sizes = make([]int64, n)
	}
	return t
}

// bucket returns the bucket index for key.
func (t *ChainTable) bucket(key uint64) uint64 { return t.h.Hash(key) & t.mask }

// lockFor returns the lock guarding bucket b.
func (t *ChainTable) lockFor(b uint64) sync2.Locker {
	if t.mode == GlobalLock {
		return t.locks[0]
	}
	return t.locks[b]
}

// Get returns the value stored for key.
func (t *ChainTable) Get(key uint64) (uint32, bool) {
	b := t.bucket(key)
	l := t.lockFor(b)
	l.Lock()
	defer l.Unlock()
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			return e.val, true
		}
	}
	return 0, false
}

// Insert stores key→val, replacing any existing value, and reports whether
// a new entry was created.
func (t *ChainTable) Insert(key uint64, val uint32) bool {
	b := t.bucket(key)
	l := t.lockFor(b)
	l.Lock()
	defer l.Unlock()
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			e.val = val
			return false
		}
	}
	t.buckets[b] = &chainEntry{key: key, val: val, next: t.buckets[b]}
	t.addSize(b, 1)
	return true
}

// GetOrInsert returns the value for key, inserting val first if absent.
func (t *ChainTable) GetOrInsert(key uint64, val uint32) (got uint32, inserted bool) {
	b := t.bucket(key)
	l := t.lockFor(b)
	l.Lock()
	defer l.Unlock()
	for e := t.buckets[b]; e != nil; e = e.next {
		if e.key == key {
			return e.val, false
		}
	}
	t.buckets[b] = &chainEntry{key: key, val: val, next: t.buckets[b]}
	t.addSize(b, 1)
	return val, true
}

// Delete removes key and reports whether it was present.
func (t *ChainTable) Delete(key uint64) bool {
	b := t.bucket(key)
	l := t.lockFor(b)
	l.Lock()
	defer l.Unlock()
	for pp := &t.buckets[b]; *pp != nil; pp = &(*pp).next {
		if (*pp).key == key {
			*pp = (*pp).next
			t.addSize(b, -1)
			return true
		}
	}
	return false
}

func (t *ChainTable) addSize(b uint64, d int64) {
	if t.mode == GlobalLock {
		t.size += d
	} else {
		t.sizes[b] += d
	}
}

// Len returns the number of entries. With per-bucket locking the result is
// a racy sum, adequate for stats.
func (t *ChainTable) Len() int {
	if t.mode == GlobalLock {
		t.locks[0].Lock()
		defer t.locks[0].Unlock()
		return int(t.size)
	}
	var n int64
	for i := range t.sizes {
		n += t.sizes[i]
	}
	return int(n)
}

// LockStats aggregates contention statistics across the table's locks.
func (t *ChainTable) LockStats() sync2.Stats {
	var agg sync2.Stats
	for _, l := range t.locks {
		s := l.Stats()
		agg.Acquisitions += s.Acquisitions
		agg.Contended += s.Contended
		agg.SpinIters += s.SpinIters
	}
	return agg
}

// Range calls fn for each entry until it returns false, locking one bucket
// at a time. fn must not call back into the table.
func (t *ChainTable) Range(fn func(key uint64, val uint32) bool) {
	for b := range t.buckets {
		l := t.lockFor(uint64(b))
		l.Lock()
		for e := t.buckets[b]; e != nil; e = e.next {
			if !fn(e.key, e.val) {
				l.Unlock()
				return
			}
		}
		l.Unlock()
	}
}
