package hash

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/sync2"
)

func TestUniversalDistribution(t *testing.T) {
	// Sequential keys must spread across buckets reasonably evenly.
	u := NewCombined(42)
	const buckets = 64
	counts := make([]int, buckets)
	const n = 64 * 1000
	for i := uint64(0); i < n; i++ {
		counts[u.Hash(i)%buckets]++
	}
	want := n / buckets
	for b, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d: count %d far from expected %d", b, c, want)
		}
	}
}

func TestCombinedSubIndependence(t *testing.T) {
	c := NewCombined(7)
	// The three constituent hashes of the same key must rarely agree in
	// their low bits (else cuckoo candidate slots collapse).
	same := 0
	const n = 10000
	for i := uint64(0); i < n; i++ {
		a := c.Sub(0, i) & 1023
		b := c.Sub(1, i) & 1023
		d := c.Sub(2, i) & 1023
		if a == b || b == d || a == d {
			same++
		}
	}
	if same > n/100 {
		t.Errorf("candidate slots collide for %d/%d keys", same, n)
	}
}

func TestCuckooBasic(t *testing.T) {
	c := NewCuckoo(1024, 1)
	if _, ok := c.Get(5); ok {
		t.Fatal("Get on empty table found a value")
	}
	if _, err := c.Insert(5, 50); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v want 50,true", v, ok)
	}
	if _, err := c.Insert(5, 51); err != nil { // replace
		t.Fatal(err)
	}
	if v, _ := c.Get(5); v != 51 {
		t.Fatalf("Get(5) after replace = %d, want 51", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if !c.Delete(5) {
		t.Fatal("Delete(5) reported absent")
	}
	if c.Delete(5) {
		t.Fatal("second Delete(5) reported present")
	}
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
}

func TestCuckooKeyZero(t *testing.T) {
	c := NewCuckoo(64, 1)
	if _, err := c.Insert(0, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(0); !ok || v != 7 {
		t.Fatalf("Get(0) = %d,%v want 7,true", v, ok)
	}
}

func TestCuckooRangeErrors(t *testing.T) {
	c := NewCuckoo(64, 1)
	if _, err := c.Insert(MaxKey+1, 0); err == nil {
		t.Error("Insert with oversized key did not error")
	}
	if _, err := c.Insert(1, MaxValue+1); err == nil {
		t.Error("Insert with oversized value did not error")
	}
	if _, _, _, err := c.GetOrInsert(MaxKey+1, 0); err == nil {
		t.Error("GetOrInsert with oversized key did not error")
	}
	// Boundary values must work.
	if _, err := c.Insert(MaxKey, MaxValue); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Get(MaxKey); !ok || v != MaxValue {
		t.Fatalf("Get(MaxKey) = %d,%v", v, ok)
	}
}

func TestCuckooManyKeys(t *testing.T) {
	c := NewCuckoo(4096, 99)
	const n = 2000 // ~50% load factor, cascades will occur
	dropped := map[uint64]bool{}
	for i := uint64(0); i < n; i++ {
		ev, err := c.Insert(i, uint32(i%1000))
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			dropped[ev.Key] = true
		}
	}
	missing := 0
	for i := uint64(0); i < n; i++ {
		v, ok := c.Get(i)
		if !ok {
			if !dropped[i] {
				missing++
			}
			continue
		}
		if v != uint32(i%1000) {
			t.Fatalf("Get(%d) = %d, want %d", i, v, i%1000)
		}
	}
	if missing > 0 {
		t.Fatalf("%d keys missing that were never reported evicted", missing)
	}
}

func TestCuckooGetOrInsert(t *testing.T) {
	c := NewCuckoo(256, 3)
	v, ins, _, err := c.GetOrInsert(9, 90)
	if err != nil || !ins || v != 90 {
		t.Fatalf("first GetOrInsert = %d,%v,%v", v, ins, err)
	}
	v, ins, _, err = c.GetOrInsert(9, 91)
	if err != nil || ins || v != 90 {
		t.Fatalf("second GetOrInsert = %d,%v,%v want existing 90", v, ins, err)
	}
}

func TestCuckooConcurrentReadsDuringWrites(t *testing.T) {
	c := NewCuckoo(8192, 5)
	const hot = 100
	for i := uint64(0); i < hot; i++ {
		if _, err := c.Insert(i, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	// Writer churns a disjoint key range until told to stop.
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			k := hot + uint64(rng.Intn(1000))
			if rng.Intn(2) == 0 {
				_, _ = c.Insert(k, uint32(k))
			} else {
				c.Delete(k)
			}
		}
	}()
	// Readers must always see the hot keys.
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 20000; i++ {
				k := uint64(i % hot)
				if v, ok := c.Get(k); !ok || v != uint32(k) {
					t.Errorf("hot key %d invisible or wrong: %d,%v", k, v, ok)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	<-writerDone
}

func TestCuckooRange(t *testing.T) {
	c := NewCuckoo(256, 11)
	for i := uint64(0); i < 50; i++ {
		if _, err := c.Insert(i, uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[uint64]bool{}
	c.Range(func(k uint64, v uint32) bool {
		if v != uint32(k) {
			t.Errorf("Range: key %d has value %d", k, v)
		}
		seen[k] = true
		return true
	})
	if len(seen) != 50 {
		t.Fatalf("Range visited %d entries, want 50", len(seen))
	}
	// Early termination.
	n := 0
	c.Range(func(uint64, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Range with false visited %d, want 1", n)
	}
}

// TestCuckooQuickMapEquivalence property-tests the cuckoo table against a
// Go map over random operation sequences.
func TestCuckooQuickMapEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		c := NewCuckoo(4096, 13)
		ref := map[uint64]uint32{}
		evicted := map[uint64]bool{}
		for _, op := range ops {
			k := uint64(op % 512)
			switch op % 3 {
			case 0, 1:
				ev, err := c.Insert(k, uint32(op))
				if err != nil {
					return false
				}
				ref[k] = uint32(op)
				delete(evicted, k)
				if ev != nil {
					evicted[ev.Key] = true
				}
			case 2:
				c.Delete(k)
				delete(ref, k)
			}
		}
		for k, want := range ref {
			v, ok := c.Get(k)
			if !ok {
				if !evicted[k] {
					return false
				}
				continue
			}
			if v != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func chainModes() map[string]LockingMode {
	return map[string]LockingMode{"global": GlobalLock, "perBucket": PerBucketLock}
}

func TestChainTableBasic(t *testing.T) {
	for name, mode := range chainModes() {
		mode := mode
		t.Run(name, func(t *testing.T) {
			ct := NewChainTable(64, mode, 1, func() sync2.Locker { return new(sync2.TATASLock) })
			if _, ok := ct.Get(1); ok {
				t.Fatal("empty table Get found value")
			}
			if !ct.Insert(1, 10) {
				t.Fatal("Insert reported replace on fresh key")
			}
			if ct.Insert(1, 11) {
				t.Fatal("Insert reported new on existing key")
			}
			if v, ok := ct.Get(1); !ok || v != 11 {
				t.Fatalf("Get = %d,%v", v, ok)
			}
			got, ins := ct.GetOrInsert(2, 20)
			if !ins || got != 20 {
				t.Fatalf("GetOrInsert fresh = %d,%v", got, ins)
			}
			got, ins = ct.GetOrInsert(2, 21)
			if ins || got != 20 {
				t.Fatalf("GetOrInsert existing = %d,%v", got, ins)
			}
			if ct.Len() != 2 {
				t.Fatalf("Len = %d, want 2", ct.Len())
			}
			if !ct.Delete(1) || ct.Delete(1) {
				t.Fatal("Delete semantics wrong")
			}
			if ct.Len() != 1 {
				t.Fatalf("Len after delete = %d, want 1", ct.Len())
			}
		})
	}
}

func TestChainTableConcurrent(t *testing.T) {
	for name, mode := range chainModes() {
		mode := mode
		t.Run(name, func(t *testing.T) {
			ct := NewChainTable(256, mode, 2, func() sync2.Locker { return new(sync2.HybridLock) })
			var wg sync.WaitGroup
			const g, n = 8, 500
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(base uint64) {
					defer wg.Done()
					for j := uint64(0); j < n; j++ {
						k := base*n + j
						ct.Insert(k, uint32(k))
					}
				}(uint64(i))
			}
			wg.Wait()
			if ct.Len() != g*n {
				t.Fatalf("Len = %d, want %d", ct.Len(), g*n)
			}
			for i := uint64(0); i < g*n; i++ {
				if v, ok := ct.Get(i); !ok || v != uint32(i) {
					t.Fatalf("Get(%d) = %d,%v", i, v, ok)
				}
			}
			if st := ct.LockStats(); st.Acquisitions == 0 {
				t.Error("lock stats recorded no acquisitions")
			}
		})
	}
}

func TestChainTableRange(t *testing.T) {
	ct := NewChainTable(64, PerBucketLock, 3, func() sync2.Locker { return new(sync2.TATASLock) })
	for i := uint64(0); i < 30; i++ {
		ct.Insert(i, uint32(i*2))
	}
	sum := uint32(0)
	ct.Range(func(_ uint64, v uint32) bool { sum += v; return true })
	if want := uint32(29 * 30); sum != want { // 2*(0+..+29)
		t.Fatalf("Range sum = %d, want %d", sum, want)
	}
	n := 0
	ct.Range(func(uint64, uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early-stop Range visited %d", n)
	}
}
