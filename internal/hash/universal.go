// Package hash provides the hash-table substrates of the buffer pool and
// lock manager: combined universal hash functions, a 3-ary cuckoo hash
// table (§6.2.3 of the Shore-MT paper) with lock-free lookups, and an
// open-chaining table with pluggable per-bucket or global locking.
package hash

import "math/rand"

// Universal is a multiply-shift universal hash function over 64-bit keys.
// The paper notes (§6.2.3 footnote 8) that cuckoo hashing is "extremely
// prone to clustering with weak hash functions" and that Shore-MT combines
// three universal hash functions to make one high-quality hash; Combined
// below does the same.
type Universal struct {
	a, b uint64
}

// NewUniversal returns a universal hash function seeded from rng.
func NewUniversal(rng *rand.Rand) Universal {
	// Multipliers must be odd for multiply-shift to be universal.
	return Universal{a: rng.Uint64() | 1, b: rng.Uint64()}
}

// Hash maps key to a 64-bit hash value.
func (u Universal) Hash(key uint64) uint64 {
	// Dietzfelbinger multiply-shift on the high half, mixed with an
	// xorshift finalizer for avalanche in the low bits.
	h := key*u.a + u.b
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return h
}

// Combined composes three independent universal hash functions into one
// high-quality function, as Shore-MT does for its cuckoo table.
type Combined struct {
	f [3]Universal
}

// NewCombined returns a combined hash seeded deterministically from seed.
func NewCombined(seed int64) Combined {
	rng := rand.New(rand.NewSource(seed))
	return Combined{f: [3]Universal{
		NewUniversal(rng), NewUniversal(rng), NewUniversal(rng),
	}}
}

// Hash returns the combined hash of key.
func (c Combined) Hash(key uint64) uint64 {
	return c.f[0].Hash(key) ^ rotl(c.f[1].Hash(key), 21) ^ rotl(c.f[2].Hash(key), 42)
}

// Sub returns the i-th constituent hash (i in 0..2), used by the cuckoo
// table to derive its N independent slot locations.
func (c Combined) Sub(i int, key uint64) uint64 {
	// Mix the constituent with the combined value so the three locations
	// stay independent even for adversarial key sets.
	return c.f[i].Hash(key ^ rotl(key, uint(13*(i+1))))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }
