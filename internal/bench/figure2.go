package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Figure 2 — "Number of HW contexts per chip as a function of time" — is a
// historical dataset, not an experiment. The paper plots five processor
// families from 1990 to 2010; the data below reconstructs the public
// record of hardware thread counts (cores × threads/core) per flagship
// part of each family.

// ContextPoint is one (year, hardware contexts) sample of one family.
type ContextPoint struct {
	Family   string
	Year     int
	Chip     string
	Contexts int
}

// Figure2Data returns the reconstructed dataset, sorted by family then
// year.
func Figure2Data() []ContextPoint {
	data := []ContextPoint{
		// Intel Pentium line: single context until HyperThreading.
		{"Pentium", 1993, "Pentium", 1},
		{"Pentium", 1997, "Pentium II", 1},
		{"Pentium", 1999, "Pentium III", 1},
		{"Pentium", 2002, "Pentium 4 HT", 2},
		{"Pentium", 2005, "Pentium D", 2},
		// Itanium.
		{"Itanium", 2001, "Itanium", 1},
		{"Itanium", 2002, "Itanium 2", 1},
		{"Itanium", 2006, "Montecito", 4},
		{"Itanium", 2010, "Tukwila", 8},
		// Intel Core 2 era multicores.
		{"Intel Core2", 2006, "Core 2 Duo", 2},
		{"Intel Core2", 2007, "Core 2 Quad", 4},
		{"Intel Core2", 2008, "Nehalem (i7)", 8},
		{"Intel Core2", 2010, "Westmere", 12},
		// Sun UltraSPARC: the CMT line the paper benchmarks.
		{"UltraSparc", 1995, "UltraSPARC", 1},
		{"UltraSparc", 2001, "UltraSPARC III", 1},
		{"UltraSparc", 2005, "Niagara (T1)", 32},
		{"UltraSparc", 2007, "Niagara 2 (T2)", 64},
		// IBM POWER.
		{"IBM Power", 1997, "POWER2", 1},
		{"IBM Power", 2001, "POWER4", 2},
		{"IBM Power", 2004, "POWER5", 4},
		{"IBM Power", 2007, "POWER6", 4},
		{"IBM Power", 2010, "POWER7", 32},
		// AMD.
		{"AMD", 1999, "Athlon", 1},
		{"AMD", 2005, "Athlon 64 X2", 2},
		{"AMD", 2007, "Barcelona", 4},
		{"AMD", 2010, "Magny-Cours", 12},
	}
	sort.SliceStable(data, func(i, j int) bool {
		if data[i].Family != data[j].Family {
			return data[i].Family < data[j].Family
		}
		return data[i].Year < data[j].Year
	})
	return data
}

// Figure2Render formats the dataset as the table behind the figure.
func Figure2Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure2 — Number of HW contexts per chip as a function of time\n")
	fmt.Fprintf(&b, "%-12s %-6s %-18s %s\n", "Family", "Year", "Chip", "HW contexts")
	for _, p := range Figure2Data() {
		fmt.Fprintf(&b, "%-12s %-6d %-18s %d\n", p.Family, p.Year, p.Chip, p.Contexts)
	}
	b.WriteString("(doubling roughly every processor generation — the paper's premise)\n")
	return b.String()
}
