package bench

import (
	"strings"
	"testing"

	"repro/internal/peers"
)

// Shape checks: every assertion below is a qualitative claim the paper
// makes about a figure, tested against the regenerated curves. Absolute
// values are not asserted — who wins, by roughly what factor, and where
// curves flatten/cross are.

const testHorizon = 100e6 // 100 virtual ms keeps the suite fast

func sweep(t *testing.T, m peers.InsertModel, threads []int) map[int]float64 {
	t.Helper()
	out := map[int]float64{}
	for _, n := range threads {
		tps, _ := RunInsert(m, n, testHorizon)
		if tps <= 0 {
			t.Fatalf("%s at %d threads: no throughput", m.Name, n)
		}
		out[n] = tps
	}
	return out
}

func TestFigure1Shapes(t *testing.T) {
	threads := []int{1, 4, 8, 16, 32}
	curves := map[string]map[int]float64{}
	for _, m := range peers.Figure1Models() {
		curves[m.Name] = sweep(t, m, threads)
	}
	// "none of the four systems scales well": nobody reaches even half of
	// linear speedup at 32 contexts.
	for name, c := range curves {
		if norm := c[32] / c[1]; norm > 16 {
			t.Errorf("%s scales too well: %.1fx at 32 threads", name, norm)
		}
	}
	// Shore plateaus at its single-thread rate (cooperative threading).
	shore := curves["shore"]
	if shore[32] > shore[1]*1.3 || shore[32] < shore[1]*0.5 {
		t.Errorf("shore should plateau near 1x: %.2fx", shore[32]/shore[1])
	}
	// PostgreSQL plateaus (no significant drop from its peak).
	pg := curves["postgres"]
	if pg[32] < pg[8]*0.7 {
		t.Errorf("postgres should plateau, dropped %.0f -> %.0f", pg[8], pg[32])
	}
	// BerkeleyDB and MySQL drop significantly from their peaks.
	for _, name := range []string{"bdb", "mysql"} {
		c := curves[name]
		peak := 0.0
		for _, v := range c {
			if v > peak {
				peak = v
			}
		}
		if c[32] > peak*0.85 {
			t.Errorf("%s should drop from its peak: peak %.0f, at-32 %.0f", name, peak, c[32])
		}
	}
	// BDB's drop starts early ("more than four clients"): its per-thread
	// efficiency at 8 is already well below 4's.
	bdb := curves["bdb"]
	if bdb[8]/8 > bdb[4]/4*0.9 {
		t.Errorf("bdb per-thread at 8 (%.1f) should fall below at 4 (%.1f)", bdb[8]/8, bdb[4]/4)
	}
}

func TestFigure4Shapes(t *testing.T) {
	threads := []int{1, 4, 16, 32}
	curves := map[string]map[int]float64{}
	for _, m := range peers.Figure4Models() {
		curves[m.Name] = sweep(t, m, threads)
	}
	shoreMT := curves["shore-mt"]
	// "Shore-MT scales commensurately with the hardware": near-linear up
	// to the SMT limit (~25.6x of single thread at 32 contexts).
	if norm := shoreMT[32] / shoreMT[1]; norm < 18 {
		t.Errorf("shore-mt scales only %.1fx at 32 threads", norm)
	}
	// "2-4 times as fast as the fastest open-source system" (total tps at
	// high thread counts); allow 2-8x to keep the check robust.
	bestOpen := 0.0
	for _, name := range []string{"shore", "bdb", "mysql", "postgres"} {
		if v := curves[name][32]; v > bestOpen {
			bestOpen = v
		}
	}
	if ratio := shoreMT[32] / bestOpen; ratio < 2 || ratio > 8 {
		t.Errorf("shore-mt/best-open at 32 = %.1fx, want roughly 2-4x", ratio)
	}
	// Shore-MT at least matches the commercial engine at 32 ("at 32
	// clients it scales better than DBMS X").
	if shoreMT[32] < curves["dbms-x"][32] {
		t.Errorf("shore-mt (%.0f) below dbms-x (%.0f) at 32", shoreMT[32], curves["dbms-x"][32])
	}
	// BDB is the single-thread leader (§5 footnote 6).
	for name, c := range curves {
		if name == "bdb" {
			continue
		}
		if c[1] > curves["bdb"][1] {
			t.Errorf("%s (%.1f) beats bdb (%.1f) single-threaded", name, c[1], curves["bdb"][1])
		}
	}
}

func TestFigure6Shapes(t *testing.T) {
	threads := []int{1, 8, 32}
	curves := map[string]map[int]float64{}
	for _, m := range peers.Figure6Variants() {
		curves[m.Name] = sweep(t, m, threads)
	}
	bpool1 := curves["bpool 1"]
	tatas := curves["T&T&S mutex"]
	mcs := curves["MCS mutex"]
	refactor := curves["Refactor"]
	// T&T&S improves single-thread performance substantially over the
	// pthread mutex (paper: +90%).
	if tatas[1] < bpool1[1]*1.2 {
		t.Errorf("T&T&S single-thread gain too small: %.2f vs %.2f", tatas[1], bpool1[1])
	}
	// ... but does not improve 32-thread throughput much (so relative
	// scalability drops).
	if tatas[32] > bpool1[32]*1.6 {
		t.Errorf("T&T&S should not scale: %.1f vs bpool1 %.1f at 32", tatas[32], bpool1[32])
	}
	if tatas[32]/tatas[1] > bpool1[32]/bpool1[1] {
		t.Errorf("T&T&S scalability (%.1fx) should drop below pthread's (%.1fx)",
			tatas[32]/tatas[1], bpool1[32]/bpool1[1])
	}
	// MCS beats T&T&S under contention.
	if mcs[32] <= tatas[32] {
		t.Errorf("MCS (%.1f) should beat T&T&S (%.1f) at 32", mcs[32], tatas[32])
	}
	// The refactor costs single-thread performance (paper: ~30%) but wins
	// big at 32 (paper: ~200% net gain).
	if refactor[1] >= mcs[1] {
		t.Errorf("refactor should cost single-thread perf: %.2f vs %.2f", refactor[1], mcs[1])
	}
	if refactor[32] < mcs[32]*2 {
		t.Errorf("refactor at 32 (%.1f) should be >= 2x MCS (%.1f)", refactor[32], mcs[32])
	}
}

func TestFigure7Shapes(t *testing.T) {
	threads := []int{1, 32}
	tps := map[string]map[int]float64{}
	for _, name := range peers.StageNames() {
		tps[name] = sweep(t, peers.ShoreStage(name), threads)
	}
	// Monotone improvement at 32 threads across the stage ladder.
	prev := 0.0
	for _, name := range peers.StageNames() {
		v := tps[name][32]
		if v < prev*0.95 { // small tolerance for simulator granularity
			t.Errorf("stage %q regressed at 32 threads: %.1f after %.1f", name, v, prev)
		}
		if v > prev {
			prev = v
		}
	}
	// Baseline is "completely unscalable": under 4x at 32 contexts.
	base := tps["baseline"]
	if base[32]/base[1] > 4 {
		t.Errorf("baseline scales %.1fx, should be nearly flat", base[32]/base[1])
	}
	// Final scales near-linearly (SMT-bounded).
	final := tps["final"]
	if final[32]/final[1] < 18 {
		t.Errorf("final scales only %.1fx", final[32]/final[1])
	}
	// Single-thread performance roughly tripled from baseline to final
	// ("nearly 3x speedup in single-thread performance"); allow 2-5x.
	if r := final[1] / base[1]; r < 2 || r > 5 {
		t.Errorf("single-thread final/baseline = %.1fx, want ~3x", r)
	}
	// End-to-end improvement at 32 threads is enormous (paper: ~40x+).
	if r := final[32] / base[32]; r < 20 {
		t.Errorf("final/baseline at 32 = %.1fx, want > 20x", r)
	}
}

func TestFigure5Shapes(t *testing.T) {
	threads := []int{1, 8, 16, 32}
	type curve map[int]float64
	newOrder := map[string]curve{}
	payment := map[string]curve{}
	for _, m := range peers.Figure5Models() {
		no, pay := curve{}, curve{}
		for _, n := range threads {
			no[n] = RunTpcc(m, "neworder", n, testHorizon) / float64(n)
			pay[n] = RunTpcc(m, "payment", n, testHorizon) / float64(n)
		}
		newOrder[m.Name] = no
		payment[m.Name] = pay
	}
	// Shore-MT is fastest on both workloads at every measured point.
	for _, n := range threads {
		for _, other := range []string{"postgres", "dbms-x"} {
			if newOrder["shore-mt"][n] < newOrder[other][n] {
				t.Errorf("new order at %d: shore-mt (%.0f) below %s (%.0f)",
					n, newOrder["shore-mt"][n], other, newOrder[other][n])
			}
			if payment["shore-mt"][n] < payment[other][n] {
				t.Errorf("payment at %d: shore-mt (%.0f) below %s (%.0f)",
					n, payment["shore-mt"][n], other, payment[other][n])
			}
		}
	}
	// New Order dips from STOCK/ITEM contention by 32 clients (the paper's
	// "significant dip in scalability ... around 16 clients").
	for name, c := range newOrder {
		if c[32] > c[8]*0.8 {
			t.Errorf("%s new order should dip: per-client %.0f at 8 vs %.0f at 32", name, c[8], c[32])
		}
	}
	// Payment does NOT dip for shore-mt: it "scales all the way to 32".
	if payment["shore-mt"][32] < payment["shore-mt"][1]*0.85 {
		t.Errorf("shore-mt payment should stay flat per-client: %.0f at 1 vs %.0f at 32",
			payment["shore-mt"][1], payment["shore-mt"][32])
	}
}

func TestProfileIdentifiesPaperBottlenecks(t *testing.T) {
	// §4: the profiler must blame the right component per engine.
	top := func(m peers.InsertModel) string {
		entries := Profile(m, 16)
		if len(entries) == 0 {
			return ""
		}
		return entries[0].Resource
	}
	if got := top(peers.Postgres()); got != "XLogInsert" && got != "malloc" && got != "ExecOpenIndices" {
		t.Errorf("postgres top bottleneck = %q, want XLogInsert/malloc/ExecOpenIndices", got)
	}
	if got := top(peers.MySQL()); !strings.Contains(got, "srv_conc") && !strings.Contains(got, "log") {
		t.Errorf("mysql top bottleneck = %q, want the admission gate or log", got)
	}
	if got := top(peers.BerkeleyDB()); !strings.Contains(got, "_bam") {
		t.Errorf("bdb top bottleneck = %q, want a _bam page latch", got)
	}
	if got := top(peers.ShoreSingle()); !strings.Contains(got, "engine") {
		t.Errorf("shore top bottleneck = %q, want the engine lock", got)
	}
}

func TestAblationEveryRevertCosts(t *testing.T) {
	// Each reverted optimization must cost throughput at 32 threads
	// relative to the full final system (that is what made it into
	// Shore-MT in the first place).
	models := peers.AblationModels()
	full := sweep(t, models[0], []int{32})[32]
	for _, m := range models[1:] {
		m := m
		got := sweep(t, m, []int{32})[32]
		if got > full*1.02 {
			t.Errorf("reverting %q helps at 32 threads (%.1f vs %.1f)", m.Name, got, full)
		}
	}
	// The log redesigns are among the paper's biggest wins: reverting all
	// the way to the coupled log must hurt substantially.
	for _, m := range models[1:] {
		if m.Name == "- decoupled log" {
			got := sweep(t, m, []int{32})[32]
			if got > full*0.7 {
				t.Errorf("coupled log costs too little: %.1f vs %.1f", got, full)
			}
		}
	}
}

func TestDeterministicFigures(t *testing.T) {
	a, _ := RunInsert(peers.ShoreMT(), 16, testHorizon)
	b, _ := RunInsert(peers.ShoreMT(), 16, testHorizon)
	if a != b {
		t.Fatalf("nondeterministic simulation: %v vs %v", a, b)
	}
}

func TestRenderAndCSV(t *testing.T) {
	fig := Figure{
		ID: "t", Title: "T", XLabel: "Threads", YLabel: "tps", LogY: true,
		Series: []Series{
			{Name: "a", Points: []Point{{1, 1.5}, {2, 3.0}}},
			{Name: "b two", Points: []Point{{1, 2.5}, {2, 5.0}}},
		},
	}
	r := fig.Render()
	if !strings.Contains(r, "t — T") || !strings.Contains(r, "1.500") || !strings.Contains(r, "log-scale") {
		t.Errorf("render output wrong:\n%s", r)
	}
	c := fig.CSV()
	if !strings.Contains(c, "threads,a,b_two") || !strings.Contains(c, "2,3,5") {
		t.Errorf("csv output wrong:\n%s", c)
	}
	if fig.Series[0].At(99) != 0 {
		t.Error("At on absent point should be 0")
	}
	// Figure 2 dataset sanity.
	data := Figure2Data()
	if len(data) < 20 {
		t.Fatalf("figure 2 dataset has %d points", len(data))
	}
	niagaraSeen := false
	for _, p := range data {
		if p.Chip == "Niagara (T1)" && p.Contexts == 32 {
			niagaraSeen = true
		}
		if p.Contexts < 1 || p.Year < 1990 || p.Year > 2010 {
			t.Errorf("implausible point %+v", p)
		}
	}
	if !niagaraSeen {
		t.Error("the paper's own machine (Niagara, 32 contexts) missing from figure 2")
	}
	if !strings.Contains(Figure2Render(), "Niagara") {
		t.Error("figure 2 render missing Niagara")
	}
}
