// Package bench regenerates every figure of the paper's evaluation: the
// thread sweeps (Figures 1, 4, 6, 7), the TPC-C sweeps (Figure 5), the
// historical context-count dataset (Figure 2), and the §4 profiler
// breakdowns — all over the deterministic contention simulator, plus
// shape checks that assert the qualitative claims each figure makes.
package bench

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/peers"
	"repro/internal/sim"
)

// DefaultThreads is the x-axis of the paper's sweeps (1..32 on a 32-context
// Niagara).
func DefaultThreads() []int { return []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32} }

// DefaultHorizon is the virtual duration of each simulated run (ns).
const DefaultHorizon = 400e6 // 400 virtual ms

// Point is one measurement.
type Point struct {
	Threads int
	Value   float64
}

// Series is one engine's curve.
type Series struct {
	Name   string
	Points []Point
}

// At returns the value at the given thread count (0 if absent).
func (s Series) At(threads int) float64 {
	for _, p := range s.Points {
		if p.Threads == threads {
			return p.Value
		}
	}
	return 0
}

// Figure is a reproduced figure: several series over a thread axis.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
}

// RunInsert executes one engine model at one thread count and returns
// transactions/second (1000-insert transactions) plus the resource profile.
func RunInsert(m peers.InsertModel, threads int, horizon float64) (tps float64, profile []sim.WaitStats) {
	s := sim.New(sim.Niagara())
	commits := make([]int, threads)
	factory := m.Setup(s, threads, horizon, commits)
	for i := 0; i < threads; i++ {
		s.Spawn(factory(i))
	}
	s.Run(horizon)
	inserts := 0
	for _, c := range commits {
		inserts += c
	}
	seconds := horizon / 1e9
	return float64(inserts) / float64(peers.InsertsPerTx) / seconds, s.Profile()
}

// InsertSweep runs an engine model across thread counts. transform maps
// (tps, threads) to the plotted value (identity, per-thread, normalized…).
func InsertSweep(m peers.InsertModel, threadCounts []int, horizon float64, transform func(tps float64, threads int) float64) Series {
	se := Series{Name: m.Name}
	for _, n := range threadCounts {
		tps, _ := RunInsert(m, n, horizon)
		v := tps
		if transform != nil {
			v = transform(tps, n)
		}
		se.Points = append(se.Points, Point{Threads: n, Value: v})
	}
	return se
}

// RunTpcc executes one TPC-C engine model and returns transactions/second
// for the chosen transaction type ("payment" or "neworder").
func RunTpcc(m peers.TpccModel, kind string, threads int, horizon float64) float64 {
	s := sim.New(sim.Niagara())
	commits := make([]int, threads)
	payment, newOrder := m.Setup(s, threads, horizon, commits)
	for i := 0; i < threads; i++ {
		if kind == "payment" {
			s.Spawn(payment(i))
		} else {
			s.Spawn(newOrder(i))
		}
	}
	s.Run(horizon)
	total := 0
	for _, c := range commits {
		total += c
	}
	return float64(total) / (horizon / 1e9)
}

// TpccSweep runs a TPC-C model across thread counts, reporting tps/client
// as Figure 5 does.
func TpccSweep(m peers.TpccModel, kind string, threadCounts []int, horizon float64) Series {
	se := Series{Name: m.Name}
	for _, n := range threadCounts {
		tps := RunTpcc(m, kind, n, horizon)
		se.Points = append(se.Points, Point{Threads: n, Value: tps / float64(n)})
	}
	return se
}

// Figure1 reproduces the introduction's scalability comparison: normalized
// throughput (relative to each engine's 1-thread run) for the four
// open-source engines.
func Figure1() Figure {
	fig := Figure{
		ID:     "figure1",
		Title:  "Scalability as a function of available hardware contexts",
		XLabel: "Concurrent Threads", YLabel: "Norm. Throughput",
	}
	for _, m := range peers.Figure1Models() {
		base, _ := RunInsert(m, 1, DefaultHorizon)
		se := InsertSweep(m, DefaultThreads(), DefaultHorizon, func(tps float64, _ int) float64 {
			if base == 0 {
				return 0
			}
			return tps / base
		})
		fig.Series = append(fig.Series, se)
	}
	return fig
}

// Figure4 reproduces the headline comparison: throughput per thread
// (log-y) for all six engines.
func Figure4() Figure {
	fig := Figure{
		ID:     "figure4",
		Title:  "Scalability and performance of Shore-MT vs open-source and commercial engines",
		XLabel: "Concurrent Threads", YLabel: "Throughput (tps/thread)", LogY: true,
	}
	for _, m := range peers.Figure4Models() {
		se := InsertSweep(m, DefaultThreads(), DefaultHorizon, func(tps float64, n int) float64 {
			return tps / float64(n)
		})
		fig.Series = append(fig.Series, se)
	}
	return fig
}

// Figure5 reproduces the TPC-C comparison: per-client throughput for New
// Order (left) and Payment (right).
func Figure5() (newOrder, payment Figure) {
	newOrder = Figure{
		ID:     "figure5-neworder",
		Title:  "Per-client throughput, TPC-C New Order",
		XLabel: "Clients", YLabel: "Throughput (tps/client)", LogY: true,
	}
	payment = Figure{
		ID:     "figure5-payment",
		Title:  "Per-client throughput, TPC-C Payment",
		XLabel: "Clients", YLabel: "Throughput (tps/client)", LogY: true,
	}
	for _, m := range peers.Figure5Models() {
		newOrder.Series = append(newOrder.Series, TpccSweep(m, "neworder", DefaultThreads(), DefaultHorizon))
		payment.Series = append(payment.Series, TpccSweep(m, "payment", DefaultThreads(), DefaultHorizon))
	}
	return newOrder, payment
}

// Figure6 reproduces the free-space-manager optimization case study
// (throughput in ktps, linear y).
func Figure6() Figure {
	fig := Figure{
		ID:     "figure6",
		Title:  "Impact of synchronization-primitive choice on the free-space manager",
		XLabel: "Concurrent Threads", YLabel: "Throughput (ktps)",
	}
	for _, m := range peers.Figure6Variants() {
		se := InsertSweep(m, DefaultThreads(), DefaultHorizon, func(tps float64, _ int) float64 {
			// ktps of 1000-insert transactions would be minuscule; the
			// figure's y axis (0-12 ktps) matches kilo-inserts/s.
			return tps // tx/s of 1000-insert txs == kilo-inserts/s
		})
		fig.Series = append(fig.Series, se)
	}
	return fig
}

// Figure7 reproduces the staged optimization of Shore into Shore-MT
// (tps/client, log-y).
func Figure7() Figure {
	fig := Figure{
		ID:     "figure7",
		Title:  "Performance and scalability after each optimization stage (Shore → Shore-MT)",
		XLabel: "Concurrent Threads", YLabel: "Performance (tps/client)", LogY: true,
	}
	for _, name := range peers.StageNames() {
		m := peers.ShoreStage(name)
		se := InsertSweep(m, DefaultThreads(), DefaultHorizon, func(tps float64, n int) float64 {
			return tps / float64(n)
		})
		fig.Series = append(fig.Series, se)
	}
	// Figure 7 plots stages bottom-up; keep insertion order (baseline
	// first) and let the renderer display all.
	return fig
}

// Ablation quantifies each optimization's contribution to the final
// system: the finished Shore-MT with exactly one optimization reverted,
// at 1 and 32 threads. Not a paper figure — the ablation study DESIGN.md
// adds on top of the cumulative Figure 7 ladder.
func Ablation() Figure {
	fig := Figure{
		ID:     "ablation",
		Title:  "Leave-one-out ablation of Shore-MT's optimizations",
		XLabel: "Concurrent Threads", YLabel: "Throughput (tps)", LogY: true,
	}
	for _, m := range peers.AblationModels() {
		se := InsertSweep(m, []int{1, 8, 16, 32}, DefaultHorizon, nil)
		fig.Series = append(fig.Series, se)
	}
	return fig
}

// Profile reproduces the §4 per-engine bottleneck breakdowns: percentage
// of total thread time spent waiting on each resource at the given client
// count (the paper profiles at 16–24 clients).
func Profile(m peers.InsertModel, threads int) []ProfileEntry {
	horizon := DefaultHorizon
	_, prof := RunInsert(m, threads, horizon)
	totalThreadTime := horizon * float64(threads)
	var out []ProfileEntry
	for _, w := range prof {
		if w.Acquires == 0 {
			continue
		}
		out = append(out, ProfileEntry{
			Resource:    w.Name,
			WaitPercent: 100 * w.WaitNs / totalThreadTime,
			HoldPercent: 100 * w.HoldNs / horizon,
			Acquires:    w.Acquires,
			Contended:   w.Contended,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].WaitPercent > out[j].WaitPercent })
	return out
}

// ProfileEntry is one row of a §4-style profile.
type ProfileEntry struct {
	Resource    string
	WaitPercent float64 // share of total thread time spent waiting
	HoldPercent float64 // share of wall-clock the resource was held
	Acquires    uint64
	Contended   uint64
}

// Render formats the figure as an aligned text table (threads down,
// series across) — the "same rows/series the paper reports".
func (f Figure) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	width := 14
	for _, s := range f.Series {
		if len(s.Name)+2 > width {
			width = len(s.Name) + 2
		}
	}
	fmt.Fprintf(&b, "%-10s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%*s", width, s.Name)
	}
	fmt.Fprintf(&b, "\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%-10d", p.Threads)
		for _, s := range f.Series {
			fmt.Fprintf(&b, "%*.3f", width, s.At(p.Threads))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(y: %s", f.YLabel)
	if f.LogY {
		fmt.Fprintf(&b, ", plotted log-scale in the paper")
	}
	fmt.Fprintf(&b, ")\n")
	return b.String()
}

// CSV formats the figure as CSV (threads, series...).
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "threads")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", strings.ReplaceAll(s.Name, " ", "_"))
	}
	fmt.Fprintf(&b, "\n")
	if len(f.Series) == 0 {
		return b.String()
	}
	for _, p := range f.Series[0].Points {
		fmt.Fprintf(&b, "%d", p.Threads)
		for _, s := range f.Series {
			fmt.Fprintf(&b, ",%.6g", s.At(p.Threads))
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
