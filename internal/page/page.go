// Package page implements the 8 KiB slotted page that every other storage
// component operates on: a fixed header (page id, page LSN, type, owning
// store), a slot directory, and a record heap.
//
// Two slot disciplines coexist on the same layout:
//
//   - Heap pages (tables) use Insert/Delete with tombstoned slots so that a
//     record's RID (page id, slot) stays stable for its lifetime.
//   - Index pages (B-tree nodes) use InsertAt/RemoveAt, which shift the slot
//     directory to keep entries physically ordered by key.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Size is the fixed page size in bytes.
const Size = 8192

// Header layout (little endian):
//
//	off 0  : PID        (8 bytes)
//	off 8  : page LSN   (8 bytes)
//	off 16 : type       (2 bytes)
//	off 18 : store id   (4 bytes)
//	off 22 : slot count (2 bytes)
//	off 24 : heap top   (2 bytes)  lowest record byte offset
//	off 26 : reserved   (2 bytes)
//	off 28 : checksum   (4 bytes)
const (
	offPID      = 0
	offLSN      = 8
	offType     = 16
	offStore    = 18
	offNSlots   = 22
	offHeapTop  = 24
	offChecksum = 28
	headerSize  = 32

	slotSize = 4 // 2 bytes record offset + 2 bytes record length
)

// MaxRecordSize is the largest record that fits on an empty page.
const MaxRecordSize = Size - headerSize - slotSize

// ID identifies a page within a volume. IDs fit in 40 bits so they can be
// indexed by the cuckoo table.
type ID uint64

// InvalidID is the zero, never-allocated page ID.
const InvalidID ID = 0

// String formats the ID.
func (id ID) String() string { return fmt.Sprintf("pg%d", uint64(id)) }

// Type tags what a page stores.
type Type uint16

// Page types.
const (
	TypeFree   Type = iota // unallocated
	TypeHeap               // table records
	TypeBTree              // index node
	TypeExtent             // free-space map
	TypeMeta               // store directory / metadata
)

// String names the page type.
func (t Type) String() string {
	switch t {
	case TypeFree:
		return "free"
	case TypeHeap:
		return "heap"
	case TypeBTree:
		return "btree"
	case TypeExtent:
		return "extent"
	case TypeMeta:
		return "meta"
	default:
		return fmt.Sprintf("type%d", uint16(t))
	}
}

// RID is a record identifier: page plus slot.
type RID struct {
	Page ID
	Slot uint16
}

// String formats the RID.
func (r RID) String() string { return fmt.Sprintf("%v:%d", r.Page, r.Slot) }

// Errors returned by page operations.
var (
	ErrPageFull   = errors.New("page: not enough free space")
	ErrBadSlot    = errors.New("page: slot out of range or deleted")
	ErrTooLarge   = errors.New("page: record exceeds maximum size")
	ErrCorrupt    = errors.New("page: checksum mismatch")
	ErrWrongSize  = errors.New("page: buffer is not page.Size bytes")
	ErrEmptyInput = errors.New("page: record must not be empty")
)

// Page wraps a Size-byte buffer. The zero value is unusable; call Init or
// Wrap.
type Page struct {
	b []byte
}

// Wrap adopts buf (must be Size bytes) without initializing it.
func Wrap(buf []byte) (*Page, error) {
	if len(buf) != Size {
		return nil, ErrWrongSize
	}
	return &Page{b: buf}, nil
}

// New allocates a fresh, initialized page.
func New(pid ID, t Type, store uint32) *Page {
	p := &Page{b: make([]byte, Size)}
	p.Init(pid, t, store)
	return p
}

// Init formats the buffer as an empty page.
func (p *Page) Init(pid ID, t Type, store uint32) {
	for i := range p.b {
		p.b[i] = 0
	}
	binary.LittleEndian.PutUint64(p.b[offPID:], uint64(pid))
	binary.LittleEndian.PutUint16(p.b[offType:], uint16(t))
	binary.LittleEndian.PutUint32(p.b[offStore:], store)
	p.setHeapTop(Size)
}

// Bytes returns the underlying buffer (aliased, not copied).
func (p *Page) Bytes() []byte { return p.b }

// PID returns the page id stored in the header.
func (p *Page) PID() ID { return ID(binary.LittleEndian.Uint64(p.b[offPID:])) }

// SetPID stores the page id.
func (p *Page) SetPID(id ID) { binary.LittleEndian.PutUint64(p.b[offPID:], uint64(id)) }

// LSN returns the page LSN (the LSN of the last log record applied).
func (p *Page) LSN() uint64 { return binary.LittleEndian.Uint64(p.b[offLSN:]) }

// SetLSN stores the page LSN.
func (p *Page) SetLSN(lsn uint64) { binary.LittleEndian.PutUint64(p.b[offLSN:], lsn) }

// Type returns the page type.
func (p *Page) Type() Type { return Type(binary.LittleEndian.Uint16(p.b[offType:])) }

// SetType stores the page type.
func (p *Page) SetType(t Type) { binary.LittleEndian.PutUint16(p.b[offType:], uint16(t)) }

// Store returns the owning store (table/index) id.
func (p *Page) Store() uint32 { return binary.LittleEndian.Uint32(p.b[offStore:]) }

// SetStore stores the owning store id.
func (p *Page) SetStore(s uint32) { binary.LittleEndian.PutUint32(p.b[offStore:], s) }

// NumSlots returns the size of the slot directory, including tombstones.
func (p *Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p.b[offNSlots:])) }

func (p *Page) setNumSlots(n int) { binary.LittleEndian.PutUint16(p.b[offNSlots:], uint16(n)) }

func (p *Page) heapTop() int { return int(binary.LittleEndian.Uint16(p.b[offHeapTop:])) }

func (p *Page) setHeapTop(v int) {
	// Size itself (8192) overflows uint16; store 0 to mean "empty heap".
	binary.LittleEndian.PutUint16(p.b[offHeapTop:], uint16(v%Size))
}

func (p *Page) heapTopAbs() int {
	v := p.heapTop()
	if v == 0 {
		return Size
	}
	return v
}

// slot accessors -----------------------------------------------------------

func (p *Page) slotPos(i int) int { return headerSize + i*slotSize }

func (p *Page) slot(i int) (off, length int) {
	s := p.slotPos(i)
	return int(binary.LittleEndian.Uint16(p.b[s:])), int(binary.LittleEndian.Uint16(p.b[s+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	s := p.slotPos(i)
	binary.LittleEndian.PutUint16(p.b[s:], uint16(off))
	binary.LittleEndian.PutUint16(p.b[s+2:], uint16(length))
}

// FreeSpace returns the bytes available for a new record including its slot.
func (p *Page) FreeSpace() int {
	free := p.heapTopAbs() - (headerSize + p.NumSlots()*slotSize)
	if free < 0 {
		return 0
	}
	return free
}

// CanFit reports whether a record of n bytes fits (using a fresh slot).
func (p *Page) CanFit(n int) bool { return p.FreeSpace() >= n+slotSize }

// Insert appends data as a new record, reusing a tombstoned slot if one
// exists, and returns the slot number. Heap-page discipline.
func (p *Page) Insert(data []byte) (uint16, error) {
	if len(data) == 0 {
		return 0, ErrEmptyInput
	}
	if len(data) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	// Reuse a tombstone if available (no new slot space needed).
	n := p.NumSlots()
	reuse := -1
	for i := 0; i < n; i++ {
		if off, _ := p.slot(i); off == 0 {
			reuse = i
			break
		}
	}
	need := len(data)
	if reuse < 0 {
		need += slotSize
	}
	if p.FreeSpace() < need {
		return 0, ErrPageFull
	}
	top := p.heapTopAbs() - len(data)
	copy(p.b[top:], data)
	p.setHeapTop(top)
	if reuse >= 0 {
		p.setSlot(reuse, top, len(data))
		return uint16(reuse), nil
	}
	p.setSlot(n, top, len(data))
	p.setNumSlots(n + 1)
	return uint16(n), nil
}

// PlaceAt stores data into the specific heap slot i, extending the slot
// directory with tombstones if needed. It is the deterministic redo
// counterpart of Insert: replaying a logged insert must land in the same
// slot. The slot must be empty (tombstone or beyond the directory).
func (p *Page) PlaceAt(i int, data []byte) error {
	if len(data) == 0 {
		return ErrEmptyInput
	}
	if len(data) > MaxRecordSize {
		return ErrTooLarge
	}
	if i < 0 || i >= (Size-headerSize)/slotSize {
		return ErrBadSlot
	}
	n := p.NumSlots()
	if i < n {
		if off, _ := p.slot(i); off != 0 {
			return ErrBadSlot // occupied
		}
	}
	need := len(data)
	if i >= n {
		need += (i + 1 - n) * slotSize
	}
	if p.FreeSpace() < need {
		return ErrPageFull
	}
	for j := n; j <= i; j++ {
		p.setSlot(j, 0, 0)
	}
	if i >= n {
		p.setNumSlots(i + 1)
	}
	top := p.heapTopAbs() - len(data)
	copy(p.b[top:], data)
	p.setHeapTop(top)
	p.setSlot(i, top, len(data))
	return nil
}

// InsertAt inserts data as a new record at slot index i, shifting later
// slots right. Index-page discipline (keeps slots sorted).
func (p *Page) InsertAt(i int, data []byte) error {
	if len(data) == 0 {
		return ErrEmptyInput
	}
	if len(data) > MaxRecordSize {
		return ErrTooLarge
	}
	n := p.NumSlots()
	if i < 0 || i > n {
		return ErrBadSlot
	}
	if p.FreeSpace() < len(data)+slotSize {
		return ErrPageFull
	}
	top := p.heapTopAbs() - len(data)
	copy(p.b[top:], data)
	p.setHeapTop(top)
	// Shift slots [i, n) right by one.
	copy(p.b[p.slotPos(i+1):p.slotPos(n+1)], p.b[p.slotPos(i):p.slotPos(n)])
	p.setSlot(i, top, len(data))
	p.setNumSlots(n + 1)
	return nil
}

// Record returns the record stored in slot i (aliased, not copied).
// Every bound is checked against the page size rather than trusted:
// optimistic (latch-free) readers may call Record on a page image that a
// concurrent writer is mutating, so a torn slot directory must surface
// as ErrBadSlot — never as an out-of-range panic. Callers validate their
// latch version afterwards and discard the result on mismatch.
func (p *Page) Record(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, ErrBadSlot
	}
	if p.slotPos(i)+slotSize > len(p.b) {
		return nil, ErrBadSlot
	}
	off, length := p.slot(i)
	if off < headerSize || off+length > len(p.b) {
		return nil, ErrBadSlot
	}
	return p.b[off : off+length], nil
}

// Delete tombstones slot i, keeping later slot numbers stable. The record
// bytes become dead space until Compact runs. Heap-page discipline.
func (p *Page) Delete(i int) error {
	if i < 0 || i >= p.NumSlots() {
		return ErrBadSlot
	}
	if off, _ := p.slot(i); off == 0 {
		return ErrBadSlot
	}
	p.setSlot(i, 0, 0)
	// Shrink the directory if the tail slots are all tombstones.
	n := p.NumSlots()
	for n > 0 {
		if off, _ := p.slot(n - 1); off != 0 {
			break
		}
		n--
	}
	p.setNumSlots(n)
	return nil
}

// RemoveAt removes slot i, shifting later slots left. Index-page
// discipline.
func (p *Page) RemoveAt(i int) error {
	n := p.NumSlots()
	if i < 0 || i >= n {
		return ErrBadSlot
	}
	copy(p.b[p.slotPos(i):p.slotPos(n-1)], p.b[p.slotPos(i+1):p.slotPos(n)])
	p.setNumSlots(n - 1)
	return nil
}

// Update replaces the record in slot i. If the new data does not fit in the
// old location it is relocated within the page; ErrPageFull is returned if
// there is no room.
func (p *Page) Update(i int, data []byte) error {
	if len(data) == 0 {
		return ErrEmptyInput
	}
	if i < 0 || i >= p.NumSlots() {
		return ErrBadSlot
	}
	off, length := p.slot(i)
	if off == 0 {
		return ErrBadSlot
	}
	if len(data) <= length {
		copy(p.b[off:], data)
		p.setSlot(i, off, len(data))
		return nil
	}
	if p.FreeSpace() < len(data) {
		// Try compaction: the old record's space is reclaimed too.
		p.Compact()
		off, length = p.slot(i)
		if p.FreeSpace()+length < len(data) {
			return ErrPageFull
		}
		// Drop the old copy, then re-add below.
	}
	p.setSlot(i, 0, 0)
	p.Compact()
	top := p.heapTopAbs() - len(data)
	if top < headerSize+p.NumSlots()*slotSize {
		return ErrPageFull
	}
	copy(p.b[top:], data)
	p.setHeapTop(top)
	p.setSlot(i, top, len(data))
	return nil
}

// Compact rewrites the record heap to squeeze out dead space, preserving
// slot numbers.
func (p *Page) Compact() {
	n := p.NumSlots()
	type rec struct {
		slot, off, length int
	}
	recs := make([]rec, 0, n)
	for i := 0; i < n; i++ {
		if off, length := p.slot(i); off != 0 {
			recs = append(recs, rec{i, off, length})
		}
	}
	// Copy live records into a scratch area ordered by descending offset,
	// then write them back packed against the end of the page.
	scratch := make([]byte, 0, Size-headerSize)
	top := Size
	// Pack from the end: iterate records sorted by current offset descending
	// is unnecessary since we copy via scratch.
	for i := range recs {
		scratch = append(scratch, p.b[recs[i].off:recs[i].off+recs[i].length]...)
	}
	pos := 0
	for i := range recs {
		top -= recs[i].length
		copy(p.b[top:], scratch[pos:pos+recs[i].length])
		p.setSlot(recs[i].slot, top, recs[i].length)
		pos += recs[i].length
	}
	p.setHeapTop(top)
}

// LiveRecords returns the number of non-tombstoned slots.
func (p *Page) LiveRecords() int {
	live := 0
	for i := 0; i < p.NumSlots(); i++ {
		if off, _ := p.slot(i); off != 0 {
			live++
		}
	}
	return live
}

// UpdateChecksum computes and stores the page checksum.
func (p *Page) UpdateChecksum() {
	binary.LittleEndian.PutUint32(p.b[offChecksum:], 0)
	sum := crc32.ChecksumIEEE(p.b)
	binary.LittleEndian.PutUint32(p.b[offChecksum:], sum)
}

// VerifyChecksum reports ErrCorrupt if the stored checksum does not match
// the contents. A page whose stored checksum is zero is treated as
// unchecksummed and passes.
func (p *Page) VerifyChecksum() error {
	stored := binary.LittleEndian.Uint32(p.b[offChecksum:])
	if stored == 0 {
		return nil
	}
	binary.LittleEndian.PutUint32(p.b[offChecksum:], 0)
	sum := crc32.ChecksumIEEE(p.b)
	binary.LittleEndian.PutUint32(p.b[offChecksum:], stored)
	if sum != stored {
		return fmt.Errorf("%w: page %v", ErrCorrupt, p.PID())
	}
	return nil
}
