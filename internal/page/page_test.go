package page

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestInitHeader(t *testing.T) {
	p := New(42, TypeHeap, 7)
	if p.PID() != 42 {
		t.Errorf("PID = %v", p.PID())
	}
	if p.Type() != TypeHeap {
		t.Errorf("Type = %v", p.Type())
	}
	if p.Store() != 7 {
		t.Errorf("Store = %d", p.Store())
	}
	if p.NumSlots() != 0 || p.LSN() != 0 {
		t.Error("fresh page not empty")
	}
	if p.FreeSpace() != Size-headerSize {
		t.Errorf("FreeSpace = %d", p.FreeSpace())
	}
	p.SetLSN(99)
	p.SetPID(43)
	p.SetStore(8)
	p.SetType(TypeBTree)
	if p.LSN() != 99 || p.PID() != 43 || p.Store() != 8 || p.Type() != TypeBTree {
		t.Error("header setters failed")
	}
}

func TestWrap(t *testing.T) {
	if _, err := Wrap(make([]byte, 100)); err != ErrWrongSize {
		t.Errorf("Wrap short buffer err = %v", err)
	}
	buf := make([]byte, Size)
	p, err := Wrap(buf)
	if err != nil {
		t.Fatal(err)
	}
	p.Init(1, TypeHeap, 0)
	if &p.Bytes()[0] != &buf[0] {
		t.Error("Wrap copied the buffer")
	}
}

func TestInsertAndRead(t *testing.T) {
	p := New(1, TypeHeap, 0)
	s1, err := p.Insert([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Insert([]byte("world!"))
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("duplicate slot numbers")
	}
	r1, err := p.Record(int(s1))
	if err != nil || string(r1) != "hello" {
		t.Fatalf("Record(s1) = %q, %v", r1, err)
	}
	r2, _ := p.Record(int(s2))
	if string(r2) != "world!" {
		t.Fatalf("Record(s2) = %q", r2)
	}
	if p.LiveRecords() != 2 {
		t.Errorf("LiveRecords = %d", p.LiveRecords())
	}
}

func TestInsertErrors(t *testing.T) {
	p := New(1, TypeHeap, 0)
	if _, err := p.Insert(nil); err != ErrEmptyInput {
		t.Errorf("Insert(nil) = %v", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); err != ErrTooLarge {
		t.Errorf("oversized insert = %v", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Errorf("max-size insert = %v", err)
	}
	if _, err := p.Insert([]byte("x")); err != ErrPageFull {
		t.Errorf("insert into full page = %v", err)
	}
}

func TestDeleteTombstoneAndReuse(t *testing.T) {
	p := New(1, TypeHeap, 0)
	s1, _ := p.Insert([]byte("aaaa"))
	s2, _ := p.Insert([]byte("bbbb"))
	s3, _ := p.Insert([]byte("cccc"))
	if err := p.Delete(int(s2)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Record(int(s2)); err != ErrBadSlot {
		t.Errorf("read of deleted slot = %v", err)
	}
	if err := p.Delete(int(s2)); err != ErrBadSlot {
		t.Errorf("double delete = %v", err)
	}
	// s1 and s3 must be untouched (stable RIDs).
	if r, _ := p.Record(int(s1)); string(r) != "aaaa" {
		t.Error("s1 corrupted by delete")
	}
	if r, _ := p.Record(int(s3)); string(r) != "cccc" {
		t.Error("s3 corrupted by delete")
	}
	// New insert must reuse the tombstone.
	s4, err := p.Insert([]byte("dddd"))
	if err != nil {
		t.Fatal(err)
	}
	if s4 != s2 {
		t.Errorf("tombstone not reused: got slot %d want %d", s4, s2)
	}
}

func TestDeleteTailShrinksDirectory(t *testing.T) {
	p := New(1, TypeHeap, 0)
	s1, _ := p.Insert([]byte("a"))
	s2, _ := p.Insert([]byte("b"))
	if err := p.Delete(int(s2)); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 1 {
		t.Errorf("NumSlots = %d, want 1 after tail delete", p.NumSlots())
	}
	if err := p.Delete(int(s1)); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 0 {
		t.Errorf("NumSlots = %d, want 0", p.NumSlots())
	}
}

func TestInsertAtOrdering(t *testing.T) {
	p := New(1, TypeBTree, 0)
	// Build "b", then insert "a" before and "c" after.
	if err := p.InsertAt(0, []byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(0, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := p.InsertAt(2, []byte("c")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for i := 0; i < p.NumSlots(); i++ {
		r, err := p.Record(i)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, string(r))
	}
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("order = %v", got)
	}
	if err := p.InsertAt(99, []byte("x")); err != ErrBadSlot {
		t.Errorf("InsertAt out of range = %v", err)
	}
}

func TestRemoveAtShifts(t *testing.T) {
	p := New(1, TypeBTree, 0)
	for _, s := range []string{"a", "b", "c"} {
		if err := p.InsertAt(p.NumSlots(), []byte(s)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.RemoveAt(1); err != nil {
		t.Fatal(err)
	}
	if p.NumSlots() != 2 {
		t.Fatalf("NumSlots = %d", p.NumSlots())
	}
	r0, _ := p.Record(0)
	r1, _ := p.Record(1)
	if string(r0) != "a" || string(r1) != "c" {
		t.Fatalf("after RemoveAt: %q %q", r0, r1)
	}
	if err := p.RemoveAt(5); err != ErrBadSlot {
		t.Errorf("RemoveAt out of range = %v", err)
	}
}

func TestUpdateInPlaceAndRelocate(t *testing.T) {
	p := New(1, TypeHeap, 0)
	s, _ := p.Insert([]byte("longrecord"))
	if err := p.Update(int(s), []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(int(s)); string(r) != "tiny" {
		t.Fatalf("after shrink update: %q", r)
	}
	// Grow: must relocate.
	big := bytes.Repeat([]byte("z"), 100)
	if err := p.Update(int(s), big); err != nil {
		t.Fatal(err)
	}
	if r, _ := p.Record(int(s)); !bytes.Equal(r, big) {
		t.Fatal("after grow update record mismatch")
	}
	if err := p.Update(int(s), nil); err != ErrEmptyInput {
		t.Errorf("Update(nil) = %v", err)
	}
	if err := p.Update(99, []byte("x")); err != ErrBadSlot {
		t.Errorf("Update bad slot = %v", err)
	}
}

func TestUpdateGrowExhaustsPage(t *testing.T) {
	p := New(1, TypeHeap, 0)
	s, _ := p.Insert(make([]byte, 1000))
	// Fill the rest.
	for {
		if _, err := p.Insert(make([]byte, 1000)); err != nil {
			break
		}
	}
	// Growing s beyond any possible space must fail cleanly.
	if err := p.Update(int(s), make([]byte, 7000)); err != ErrPageFull {
		t.Fatalf("grow on full page = %v", err)
	}
	// Record must still be readable after the failed update.
	if _, err := p.Record(int(s)); err != nil {
		t.Fatalf("record lost after failed update: %v", err)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := New(1, TypeHeap, 0)
	var slots []uint16
	for i := 0; i < 6; i++ {
		s, err := p.Insert(bytes.Repeat([]byte{byte('a' + i)}, 1000))
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	freeBefore := p.FreeSpace()
	// Delete alternating records.
	for i := 0; i < 6; i += 2 {
		if err := p.Delete(int(slots[i])); err != nil {
			t.Fatal(err)
		}
	}
	p.Compact()
	if p.FreeSpace() < freeBefore+3000 {
		t.Fatalf("FreeSpace after compact = %d, want >= %d", p.FreeSpace(), freeBefore+3000)
	}
	// Survivors intact, same slots.
	for i := 1; i < 6; i += 2 {
		r, err := p.Record(int(slots[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r, bytes.Repeat([]byte{byte('a' + i)}, 1000)) {
			t.Fatalf("record %d corrupted by compact", i)
		}
	}
}

func TestChecksum(t *testing.T) {
	p := New(9, TypeHeap, 1)
	if _, err := p.Insert([]byte("data")); err != nil {
		t.Fatal(err)
	}
	p.UpdateChecksum()
	if err := p.VerifyChecksum(); err != nil {
		t.Fatalf("fresh checksum verify: %v", err)
	}
	// Corrupt a record byte.
	p.Bytes()[Size-2] ^= 0xff
	if err := p.VerifyChecksum(); err == nil {
		t.Fatal("corruption not detected")
	}
	p.Bytes()[Size-2] ^= 0xff
	if err := p.VerifyChecksum(); err != nil {
		t.Fatalf("restored page fails verify: %v", err)
	}
	// Zero checksum means unchecksummed: passes.
	q := New(1, TypeHeap, 0)
	if err := q.VerifyChecksum(); err != nil {
		t.Fatalf("unchecksummed page fails verify: %v", err)
	}
}

func TestTypeAndRIDStrings(t *testing.T) {
	if TypeHeap.String() != "heap" || TypeBTree.String() != "btree" ||
		TypeFree.String() != "free" || TypeExtent.String() != "extent" ||
		TypeMeta.String() != "meta" || Type(77).String() != "type77" {
		t.Error("Type.String mismatch")
	}
	r := RID{Page: 3, Slot: 4}
	if r.String() != "pg3:4" {
		t.Errorf("RID.String = %q", r.String())
	}
}

// TestQuickInsertDeleteInvariant property-tests that any sequence of
// insert/delete keeps records readable and free space consistent.
func TestQuickInsertDeleteInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		p := New(1, TypeHeap, 0)
		live := map[uint16][]byte{}
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				data := bytes.Repeat([]byte{op}, int(op)%200+1)
				s, err := p.Insert(data)
				if err == ErrPageFull {
					continue
				}
				if err != nil {
					return false
				}
				live[s] = data
			} else {
				// Delete an arbitrary live slot.
				for s := range live {
					if err := p.Delete(int(s)); err != nil {
						return false
					}
					delete(live, s)
					break
				}
			}
		}
		if p.LiveRecords() != len(live) {
			return false
		}
		for s, want := range live {
			got, err := p.Record(int(s))
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		return p.FreeSpace() >= 0 && p.FreeSpace() <= Size-headerSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
