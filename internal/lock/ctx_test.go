package lock

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/page"
)

// TestCancelUnblocksLockWait: with the timeout set to 5s, cancelling the
// waiter's context must unblock it well inside 100ms, and the error must
// carry both ErrCanceled and context.Canceled.
func TestCancelUnblocksLockWait(t *testing.T) {
	m := NewManager(Options{DefaultTimeout: 5 * time.Second, DetectDeadlock: true})
	n := RowName(1, page.RID{Page: 1, Slot: 1})
	if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- m.Lock(ctx, 2, n, X, 0) }()
	time.Sleep(30 * time.Millisecond) // let tx2 enqueue and block
	start := time.Now()
	cancel()
	select {
	case err := <-errc:
		if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
			t.Fatalf("cancel took %v to unblock (want < 100ms)", elapsed)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("err = %v, want ErrCanceled", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want wrapped context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter still blocked after 2s")
	}
	if got := m.Stats().Cancels; got != 1 {
		t.Fatalf("Cancels = %d, want 1", got)
	}
	// The queue must remain grantable: tx1 releases, tx3 acquires.
	m.Unlock(1, n)
	if err := m.Lock(context.Background(), 3, n, X, 50*time.Millisecond); err != nil {
		t.Fatalf("queue not grantable after cancel: %v", err)
	}
}

// TestCancelLeavesFIFOIntact: tx1 holds X; tx2 (cancelled) and tx3 queue
// behind it. After tx2's cancellation and tx1's release, tx3 must be
// granted — the dequeue re-examines the waiters behind the leaver.
func TestCancelLeavesFIFOIntact(t *testing.T) {
	m := NewManager(Options{DefaultTimeout: 5 * time.Second})
	n := StoreName(7)
	if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	err2 := make(chan error, 1)
	go func() { err2 <- m.Lock(ctx2, 2, n, X, 0) }()
	time.Sleep(20 * time.Millisecond)
	err3 := make(chan error, 1)
	go func() { err3 <- m.Lock(context.Background(), 3, n, X, 0) }()
	time.Sleep(20 * time.Millisecond)

	cancel2()
	if err := <-err2; !errors.Is(err, ErrCanceled) {
		t.Fatalf("tx2: %v, want ErrCanceled", err)
	}
	// tx3 must still be waiting (tx1 holds X), then granted on release.
	select {
	case err := <-err3:
		t.Fatalf("tx3 resolved early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.Unlock(1, n)
	select {
	case err := <-err3:
		if err != nil {
			t.Fatalf("tx3 after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("tx3 never granted after cancel + release")
	}
	if got := m.Holds(3, n); got != X {
		t.Fatalf("tx3 holds %v, want X", got)
	}
}

// TestCtxDeadlineBeatsTimeout: the earliest of the ctx deadline and the
// lock timeout wins; a ctx deadline shorter than the timeout surfaces
// ErrCanceled wrapping DeadlineExceeded, not ErrTimeout.
func TestCtxDeadlineBeatsTimeout(t *testing.T) {
	m := NewManager(Options{DefaultTimeout: 5 * time.Second})
	n := StoreName(9)
	if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := m.Lock(ctx, 2, n, S, 0)
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
	// And the reverse: a timeout shorter than the deadline still times out.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := m.Lock(ctx2, 3, n, S, 30*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestCancelBeforeWait: an already-cancelled context fails fast without
// enqueueing anything.
func TestCancelBeforeWait(t *testing.T) {
	m := NewManager(Options{})
	n := StoreName(11)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Lock(ctx, 1, n, X, 0); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	// Nothing was enqueued: another tx acquires immediately.
	if err := m.Lock(context.Background(), 2, n, X, 0); err != nil {
		t.Fatal(err)
	}
}

// TestCancelPendingConversion: a cancelled conversion reverts to the
// originally granted mode instead of losing the lock.
func TestCancelPendingConversion(t *testing.T) {
	m := NewManager(Options{DefaultTimeout: 5 * time.Second})
	n := StoreName(13)
	if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 2, n, S, 0); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- m.Lock(ctx, 1, n, X, 0) }() // conversion blocked by tx2
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, ErrCanceled) {
		t.Fatalf("conversion cancel: %v", err)
	}
	if got := m.Holds(1, n); got != S {
		t.Fatalf("tx1 holds %v after cancelled conversion, want S", got)
	}
	// tx2's release leaves the queue healthy and tx1 can convert later.
	m.Unlock(2, n)
	if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
		t.Fatal(err)
	}
}
