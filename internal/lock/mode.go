// Package lock implements the hierarchical two-phase-locking lock manager
// of §2.2.3 and §7.5: intention modes, a hash table of lock heads with
// global or per-bucket latching, a pre-allocated request pool (mutex-based
// or lock-free Treiber stack), blocking waits with timeouts, and waits-for
// deadlock detection.
package lock

import "fmt"

// Mode is a database lock mode.
type Mode uint8

// Lock modes. NL is the absence of a lock.
const (
	NL  Mode = iota // not locked
	IS              // intention shared
	IX              // intention exclusive
	S               // shared
	SIX             // shared + intention exclusive
	U               // update (read now, intend to write)
	X               // exclusive
	numModes
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case NL:
		return "NL"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return fmt.Sprintf("mode%d", uint8(m))
	}
}

// compat[a][b] reports whether a holder in mode a is compatible with a new
// request in mode b (standard hierarchical locking matrix; U is compatible
// with S holders but not with other U/X, and blocks new S once waiting —
// queue ordering handles the latter).
var compat = [numModes][numModes]bool{
	NL:  {NL: true, IS: true, IX: true, S: true, SIX: true, U: true, X: true},
	IS:  {NL: true, IS: true, IX: true, S: true, SIX: true, U: true, X: false},
	IX:  {NL: true, IS: true, IX: true, S: false, SIX: false, U: false, X: false},
	S:   {NL: true, IS: true, IX: false, S: true, SIX: false, U: true, X: false},
	SIX: {NL: true, IS: true, IX: false, S: false, SIX: false, U: false, X: false},
	U:   {NL: true, IS: true, IX: false, S: true, SIX: false, U: false, X: false},
	X:   {NL: true, IS: false, IX: false, S: false, SIX: false, U: false, X: false},
}

// Compatible reports whether held and requested can coexist.
func Compatible(held, requested Mode) bool {
	return compat[held][requested]
}

// supremum[a][b] is the weakest mode at least as strong as both a and b,
// used for lock conversions (e.g. holding S and requesting IX yields SIX).
var supremum = [numModes][numModes]Mode{
	NL:  {NL: NL, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IS:  {NL: IS, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IX:  {NL: IX, IS: IX, IX: IX, S: SIX, SIX: SIX, U: X, X: X},
	S:   {NL: S, IS: S, IX: SIX, S: S, SIX: SIX, U: U, X: X},
	SIX: {NL: SIX, IS: SIX, IX: SIX, S: SIX, SIX: SIX, U: SIX, X: X},
	U:   {NL: U, IS: U, IX: X, S: U, SIX: SIX, U: U, X: X},
	X:   {NL: X, IS: X, IX: X, S: X, SIX: X, U: X, X: X},
}

// Supremum returns the weakest mode at least as strong as both a and b.
func Supremum(a, b Mode) Mode { return supremum[a][b] }

// StrongerOrEqual reports whether a subsumes b (Supremum(a,b) == a).
func StrongerOrEqual(a, b Mode) bool { return supremum[a][b] == a }

// Intention returns the intention mode a parent must carry for a child
// lock in mode m: IS for read modes, IX for write modes.
func Intention(m Mode) Mode {
	switch m {
	case IS, S:
		return IS
	case U:
		return IX // an update lock intends to write
	default:
		return IX
	}
}
