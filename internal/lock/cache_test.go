package lock

import (
	"testing"

	"repro/internal/page"
)

func TestCachePutGet(t *testing.T) {
	var c Cache
	if got := c.Get(DatabaseName()); got != NL {
		t.Fatalf("empty cache Get = %v, want NL", got)
	}
	if !c.Put(DatabaseName(), IX) {
		t.Fatal("first Put not reported fresh")
	}
	if c.Put(DatabaseName(), IX) {
		t.Fatal("re-Put reported fresh")
	}
	if got := c.Get(DatabaseName()); got != IX {
		t.Fatalf("Get = %v, want IX", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestCacheSupremumMerge(t *testing.T) {
	var c Cache
	n := StoreName(7)
	c.Put(n, IX)
	if c.Put(n, S) {
		t.Fatal("merge reported fresh")
	}
	if got := c.Get(n); got != SIX {
		t.Fatalf("IX+S = %v, want SIX", got)
	}
	// A weaker grant never downgrades the cached mode.
	c.Put(n, IS)
	if got := c.Get(n); got != SIX {
		t.Fatalf("after weaker Put = %v, want SIX", got)
	}
}

func TestCacheGrowth(t *testing.T) {
	var c Cache
	const rows = 1000 // forces several doublings past cacheInitSlots
	for i := 0; i < rows; i++ {
		n := RowName(3, page.RID{Page: page.ID(i), Slot: uint16(i % 50)})
		if !c.Put(n, X) {
			t.Fatalf("row %d not fresh", i)
		}
	}
	if c.Len() != rows {
		t.Fatalf("Len = %d, want %d", c.Len(), rows)
	}
	for i := 0; i < rows; i++ {
		n := RowName(3, page.RID{Page: page.ID(i), Slot: uint16(i % 50)})
		if got := c.Get(n); got != X {
			t.Fatalf("row %d Get = %v after growth", i, got)
		}
	}
	if got := c.Get(RowName(3, page.RID{Page: rows + 1})); got != NL {
		t.Fatalf("absent row Get = %v, want NL", got)
	}
}
