package lock

// Cache is a transaction-private cache of held lock modes: a small
// open-addressed hash map from Name to the supremum of every mode the
// transaction has been granted on that name. The engine consults it
// before the shared lock table, so re-acquiring a lock the transaction
// already holds (the database and store intent locks of every row
// access, re-reads of the same row) costs a private probe instead of a
// bucket-latch round trip — the §7.5 lesson that the lock table becomes
// the dominant shared structure once the other hotspots are gone.
//
// A Cache is owned by a single transaction and is not safe for
// concurrent use; it only ever grows (2PL releases nothing before
// end-of-transaction, at which point the whole Cache is discarded).
type Cache struct {
	slots []cacheSlot
	mask  uint64
	n     int
}

type cacheSlot struct {
	name Name
	mode Mode
	live bool
}

// cacheInitSlots sizes the first allocation: big enough for the intent
// locks plus a handful of row locks without growing, small enough that
// short transactions stay cheap.
const cacheInitSlots = 32

// Get returns the mode cached for n (NL if the transaction holds no
// lock on n).
func (c *Cache) Get(n Name) Mode {
	if c.n == 0 {
		return NL
	}
	for i := n.hashKey() & c.mask; ; i = (i + 1) & c.mask {
		s := &c.slots[i]
		if !s.live {
			return NL
		}
		if s.name == n {
			return s.mode
		}
	}
}

// Put records a grant of m on n, folding it into any cached mode via
// Supremum (matching the lock manager's conversion rule, so the cache
// always mirrors the granted mode exactly). It reports whether n is new
// to the cache — i.e. whether this is the transaction's first grant on
// the name and it must be recorded for release.
func (c *Cache) Put(n Name, m Mode) (fresh bool) {
	if c.slots == nil {
		c.slots = make([]cacheSlot, cacheInitSlots)
		c.mask = cacheInitSlots - 1
	} else if 4*(c.n+1) > 3*len(c.slots) {
		c.grow()
	}
	for i := n.hashKey() & c.mask; ; i = (i + 1) & c.mask {
		s := &c.slots[i]
		if !s.live {
			*s = cacheSlot{name: n, mode: m, live: true}
			c.n++
			return true
		}
		if s.name == n {
			s.mode = Supremum(s.mode, m)
			return false
		}
	}
}

// Len returns the number of distinct names cached.
func (c *Cache) Len() int { return c.n }

// grow doubles the table and rehashes every live slot.
func (c *Cache) grow() {
	old := c.slots
	c.slots = make([]cacheSlot, 2*len(old))
	c.mask = uint64(len(c.slots) - 1)
	for i := range old {
		s := &old[i]
		if !s.live {
			continue
		}
		for j := s.name.hashKey() & c.mask; ; j = (j + 1) & c.mask {
			if !c.slots[j].live {
				c.slots[j] = *s
				break
			}
		}
	}
}
