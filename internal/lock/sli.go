package lock

// Speculative Lock Inheritance (Johnson, Pandis, Ailamaki, VLDB 2009):
// the hot locks at the top of the hierarchy — the database and store
// intent locks every transaction acquires and which virtually never
// conflict — can bypass the lock table almost entirely. Instead of
// releasing them at commit, the manager parks the granted request in
// place (spec = specSpeculative) and hands a reference to the
// committing transaction's Agent; the agent's next transaction claims
// the request with a single CAS, never touching the bucket latch. The
// inheritance is speculative because it must stay revocable: a
// conflicting requester CASes the parked request to specRevoked under
// the bucket latch and unlinks it, and the agent's next claim attempt
// falls back to normal acquisition.
//
// The claim/revoke race is arbitrated entirely by the spec field:
//
//	claim  (agent, latch-free):  store txID; CAS spec SPECULATIVE→OWNED
//	revoke (under bucket latch): CAS spec SPECULATIVE→REVOKED; unlink
//
// Exactly one CAS wins. A revoked request is never returned to the
// request pool — the agent may still hold a stale pointer and write its
// txID into it — so it is left to the garbage collector once the agent
// discards its entry.

// Agent identifies a worker (a client thread in the paper's terms)
// across the transactions it runs, and carries the intent locks those
// transactions inherit from one another. An Agent is owned by at most
// one transaction at a time; handing it from a committing transaction
// to the next one must happen under external synchronization (the
// engine's agent pool provides it). Its methods are not otherwise safe
// for concurrent use.
type Agent struct {
	mgr     *Manager
	entries []agentEntry
}

type agentEntry struct {
	name Name
	mode Mode
	r    *request
}

// NewAgent creates an agent bound to the manager.
func (m *Manager) NewAgent() *Agent { return &Agent{mgr: m} }

// Inherited returns the number of locks currently parked on the agent
// (including any already revoked but not yet discovered).
func (a *Agent) Inherited() int { return len(a.entries) }

// Claim attempts to take ownership of an inherited lock on n for txID
// without touching the lock table. On success it returns the inherited
// mode (the claimer may still need a manager conversion if it wants a
// stronger one). On failure — no inherited entry, or the entry was
// revoked by a conflicting requester — it returns NL, false and the
// caller acquires normally. Either way the entry is consumed.
func (a *Agent) Claim(n Name, txID uint64) (Mode, bool) {
	for i := range a.entries {
		e := &a.entries[i]
		if e.name != n {
			continue
		}
		r, mode := e.r, e.mode
		last := len(a.entries) - 1
		a.entries[i] = a.entries[last]
		a.entries[last] = agentEntry{}
		a.entries = a.entries[:last]
		// Order matters: the new owner's ID must be visible before the
		// CAS publishes the claim, so no walker ever sees an owned
		// request with the dead holder's ID. While the request is still
		// speculative only this agent may write txID, and if the CAS
		// loses the request is already unlinked — the write is harmless.
		r.txID.Store(txID)
		if r.spec.CompareAndSwap(specSpeculative, specOwned) {
			a.mgr.inheritGrants.Add(1)
			return mode, true
		}
		return NL, false // revoked meanwhile; fall back to the manager
	}
	return NL, false
}

// Drop revokes and releases every lock still parked on the agent. Used
// when an agent retires (engine shutdown, tests); conflicting
// requesters do not need it — they revoke in place.
func (a *Agent) Drop() {
	for _, e := range a.entries {
		if e.r.spec.CompareAndSwap(specSpeculative, specRevoked) {
			a.mgr.releaseRevoked(e.name, e.r)
		}
	}
	a.entries = a.entries[:0]
}

// ReleaseInherit ends txID's hold on name by parking it for inheritance
// instead of releasing it: the granted request stays in the queue in
// specSpeculative state and is recorded on ag for a latch-free claim by
// the agent's next transaction. Only uncontended pure intent grants are
// eligible — the request must be granted in IS or IX with no waiter or
// pending conversion behind it (inheriting over a waiter would starve
// it). Returns false without side effects when ineligible; the caller
// falls back to Unlock.
func (m *Manager) ReleaseInherit(txID uint64, name Name, ag *Agent) bool {
	b := m.bucketFor(name)
	b.latch.Lock()
	h := b.findHead(name, false)
	if h == nil {
		b.latch.Unlock()
		return false
	}
	var mine *request
	for r := h.queue; r != nil; r = r.next {
		if r.txID.Load() == txID && r.granted {
			mine = r
			break
		}
	}
	if mine == nil || (mine.mode != IS && mine.mode != IX) ||
		mine.spec.Load() != specOwned || hasWaiters(h, mine) {
		b.latch.Unlock()
		return false
	}
	mine.spec.Store(specSpeculative)
	b.latch.Unlock()
	ag.entries = append(ag.entries, agentEntry{name: name, mode: mine.mode, r: mine})
	m.inherits.Add(1)
	return true
}

// grantableOrRevoke reports whether mode is compatible with every
// granted request on h except exclude — revoking incompatible
// speculative (inherited, unclaimed) holders when they are what stands
// in the way. Every grant-examination point must use it (fresh
// admission, conversions, TryLockNoWait, and grantWaiters after a
// release): an inherited lock is only safe to keep parked because any
// live request it blocks can always reclaim it, and a path that checks
// compatibility without offering revocation turns the parked lock into
// a phantom holder that can outwait a timeout. Caller holds the bucket
// latch.
func (m *Manager) grantableOrRevoke(h *lockHead, mode Mode, exclude *request) bool {
	if grantedCompatible(h, mode, exclude) {
		return true
	}
	return m.revokeIncompatible(h, mode, exclude) && grantedCompatible(h, mode, exclude)
}

// revokeIncompatible revokes every speculative (inherited, unclaimed)
// granted request on h whose mode conflicts with mode, unlinking the
// losers, and reports whether anything changed (the caller re-checks
// grantability). Called under the bucket latch on the contended path
// only — when a compatibility check has already failed. A CAS that
// loses to a concurrent claim leaves the request as a normal holder.
func (m *Manager) revokeIncompatible(h *lockHead, mode Mode, exclude *request) bool {
	revoked := false
	for r := h.queue; r != nil; {
		next := r.next
		if r != exclude && r.granted && !Compatible(r.mode, mode) &&
			r.spec.CompareAndSwap(specSpeculative, specRevoked) {
			unlinkRequest(h, r)
			m.revokes.Add(1)
			revoked = true
		}
		r = next
	}
	return revoked
}

// releaseRevoked finishes an agent-side revocation (Drop): the caller
// won the CAS to specRevoked; unlink the request and re-examine the
// queue under the bucket latch.
func (m *Manager) releaseRevoked(name Name, r *request) {
	b := m.bucketFor(name)
	b.latch.Lock()
	h := r.head
	unlinkRequest(h, r)
	h.grantWaiters(m)
	b.removeHeadIfEmpty(h)
	b.latch.Unlock()
}
