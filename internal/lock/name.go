package lock

import (
	"fmt"

	"repro/internal/page"
)

// Scope is the level in the lock hierarchy.
type Scope uint8

// Lock scopes, coarse to fine.
const (
	ScopeDatabase Scope = iota
	ScopeStore          // a table or index
	ScopeRow            // a record (RID) or key
)

// String names the scope.
func (s Scope) String() string {
	switch s {
	case ScopeDatabase:
		return "db"
	case ScopeStore:
		return "store"
	case ScopeRow:
		return "row"
	default:
		return fmt.Sprintf("scope%d", uint8(s))
	}
}

// Name identifies a lockable object. The hierarchy is
// database → store → row.
type Name struct {
	Scope Scope
	Store uint32  // store id for ScopeStore/ScopeRow
	Page  page.ID // page for ScopeRow
	Slot  uint16  // slot for ScopeRow
}

// DatabaseName returns the single database-level lock name.
func DatabaseName() Name { return Name{Scope: ScopeDatabase} }

// StoreName returns the lock name of a store (table or index).
func StoreName(store uint32) Name { return Name{Scope: ScopeStore, Store: store} }

// RowName returns the lock name of a record.
func RowName(store uint32, rid page.RID) Name {
	return Name{Scope: ScopeRow, Store: store, Page: rid.Page, Slot: rid.Slot}
}

// Parent returns the name one level up the hierarchy and whether one
// exists (the database lock has no parent).
func (n Name) Parent() (Name, bool) {
	switch n.Scope {
	case ScopeRow:
		return StoreName(n.Store), true
	case ScopeStore:
		return DatabaseName(), true
	default:
		return Name{}, false
	}
}

// String formats the name.
func (n Name) String() string {
	switch n.Scope {
	case ScopeDatabase:
		return "db"
	case ScopeStore:
		return fmt.Sprintf("store%d", n.Store)
	default:
		return fmt.Sprintf("store%d/%v:%d", n.Store, n.Page, n.Slot)
	}
}

// hashKey folds the name into a 64-bit key for bucket selection. Full
// names are compared on collision, so imperfect mixing only costs time.
func (n Name) hashKey() uint64 {
	h := uint64(n.Scope) + 0x9e3779b97f4a7c15
	h = (h ^ uint64(n.Store)) * 0xbf58476d1ce4e5b9
	h = (h ^ uint64(n.Page)) * 0x94d049bb133111eb
	h = (h ^ uint64(n.Slot)) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return h
}
