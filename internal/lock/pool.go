package lock

import (
	"sync"
	"sync/atomic"

	"repro/internal/sync2"
)

// request is a lock request: one transaction's (granted or waiting) claim
// on one lock head. Requests are pooled; Shore-MT found the pool's mutex
// to be a contention point and replaced it with a lock-free stack (§7.5).
//
// txID and spec are atomic because speculative lock inheritance claims
// and revokes a parked request without the bucket latch: the owning
// agent writes txID and CASes spec outside the latch, while queue
// walkers read both under it.
type request struct {
	txID    atomic.Uint64
	spec    atomic.Uint32 // specOwned / specSpeculative / specRevoked
	mode    Mode          // granted mode (or requested, while waiting)
	want    Mode          // target mode for waiting conversions
	granted bool
	wake    chan struct{} // closed when the request is granted
	next    *request      // intrusive list inside a lock head
	head    *lockHead     // owner, for release
	node    sync2.StackNode
}

// Speculative-inheritance states of a granted request.
const (
	specOwned       uint32 = iota // held by a live transaction (normal)
	specSpeculative               // parked by a committed holder, claimable by its agent
	specRevoked                   // terminal: a conflicting requester (or Drop) reclaimed it
)

// requestPool abstracts the pre-allocated request pool.
type requestPool interface {
	get() *request
	put(r *request)
	// allocations reports how many requests were newly allocated (pool
	// misses).
	allocations() uint64
}

// PoolKind selects the request-pool implementation.
type PoolKind int

// Request pool kinds.
const (
	PoolMutex    PoolKind = iota // free list under one mutex (pre-§7.5)
	PoolLockFree                 // Treiber stack, single-CAS push/pop (§7.5)
)

// String names the pool kind.
func (k PoolKind) String() string {
	if k == PoolLockFree {
		return "lockfree"
	}
	return "mutex"
}

// mutexPool is the original design: a single free list guarded by a mutex
// — simple, and a contention point with many threads.
type mutexPool struct {
	mu     sync.Mutex
	free   *request
	allocs atomic.Uint64
}

func (p *mutexPool) get() *request {
	p.mu.Lock()
	r := p.free
	if r != nil {
		p.free = r.next
	}
	p.mu.Unlock()
	if r == nil {
		p.allocs.Add(1)
		r = &request{}
	}
	r.reset()
	return r
}

func (p *mutexPool) put(r *request) {
	p.mu.Lock()
	r.next = p.free
	p.free = r
	p.mu.Unlock()
}

func (p *mutexPool) allocations() uint64 { return p.allocs.Load() }

// lockFreePool is the §7.5 replacement: a Treiber stack where threads push
// and pop requests with a single compare-and-swap.
type lockFreePool struct {
	stack  sync2.Stack
	allocs atomic.Uint64
}

func (p *lockFreePool) get() *request {
	if n := p.stack.Pop(); n != nil {
		r := n.Value().(*request)
		r.reset()
		return r
	}
	p.allocs.Add(1)
	r := &request{}
	return r
}

func (p *lockFreePool) put(r *request) {
	n := &r.node
	if n.Value() == nil {
		n.Init(r)
	}
	p.stack.Push(n)
}

func (p *lockFreePool) allocations() uint64 { return p.allocs.Load() }

func (r *request) reset() {
	r.txID.Store(0)
	r.spec.Store(specOwned)
	r.mode = NL
	r.want = NL
	r.granted = false
	r.wake = nil
	r.next = nil
	r.head = nil
}

func newPool(k PoolKind) requestPool {
	if k == PoolLockFree {
		return &lockFreePool{}
	}
	return &mutexPool{}
}
