package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sync2"
)

// Errors returned by Lock.
var (
	ErrDeadlock = errors.New("lock: deadlock detected")
	ErrTimeout  = errors.New("lock: wait timed out")
	// ErrCanceled is returned when the caller's context is cancelled (or
	// its deadline passes) while the request is blocked. The underlying
	// context error (context.Canceled / context.DeadlineExceeded / the
	// cancellation cause) is wrapped, so errors.Is works against both
	// ErrCanceled and the context sentinel. The cancelled request is
	// dequeued cleanly: FIFO grant order and waits-for edges for everyone
	// behind it are unaffected.
	ErrCanceled = errors.New("lock: wait canceled")
)

// TableMode selects the latching granularity of the lock hash table,
// reproducing §7.5: "Like the bufferpool, the lock manager's hash table was
// protected by a single mutex. However, the lock manager code included
// support for a mutex per bucket, statically disabled by a single #define."
type TableMode int

// Table latching modes.
const (
	TableGlobal    TableMode = iota // one mutex for the whole table
	TablePerBucket                  // one mutex per bucket
)

// String names the table mode.
func (m TableMode) String() string {
	if m == TablePerBucket {
		return "perBucket"
	}
	return "global"
}

// Options configures a Manager.
type Options struct {
	Buckets        int           // hash buckets (default 1024)
	Table          TableMode     // latch granularity
	Pool           PoolKind      // request pool implementation
	DefaultTimeout time.Duration // wait bound; 0 means 500ms
	DetectDeadlock bool          // waits-for cycle detection before blocking
}

// Stats reports lock-manager activity.
type Stats struct {
	Acquires    uint64 // granted lock requests (incl. re-grants/conversions)
	Waits       uint64 // requests that had to block
	Deadlocks   uint64 // requests aborted by the detector
	Timeouts    uint64 // requests aborted by timeout
	Cancels     uint64 // requests abandoned by context cancellation
	PoolAllocs  uint64 // request-pool misses
	ELRReleases uint64 // transactions that released locks before hardening
	// Lock-table bypass fast paths (transaction-private cache + SLI).
	CacheHits       uint64 // requests answered by the tx-private lock cache
	Inherits        uint64 // intent locks parked for inheritance at release
	InheritedGrants uint64 // parked locks claimed latch-free by an agent
	Revokes         uint64 // parked locks reclaimed by conflicting requesters
	// Live gauges, measured by walking the whole table under its
	// latches at Stats time: both must drop to zero once every
	// transaction has finished (leaked locks keep them non-zero, which
	// is exactly what the server's disconnect tests assert on).
	LiveHeads    uint64 // lock names with a non-empty request queue
	LiveRequests uint64 // granted + waiting requests across those queues
	Latch        sync2.Stats
}

// lockHead is the per-object lock state: an intrusive FIFO queue of
// requests, granted ones first in arrival order.
type lockHead struct {
	name  Name
	queue *request
	next  *lockHead // bucket chain
}

type bucket struct {
	latch sync2.Locker
	heads *lockHead
	// free recycles emptied lockHeads under the bucket latch: without
	// it every acquire/release cycle on a quiescent name allocates a
	// fresh head (removeHeadIfEmpty drops it as soon as the queue
	// empties), which makes the lock table an allocation hotspot.
	free *lockHead
}

// Manager is the lock manager.
type Manager struct {
	opts    Options
	buckets []bucket
	global  sync2.Locker // used in TableGlobal mode
	pool    requestPool
	mask    uint64

	// waits-for graph for deadlock detection. Edge sets are plain
	// slices (possibly with duplicates) and the traversal scratch —
	// generation-marked seen maps plus DFS stacks — lives on the
	// manager, all under wfMu: a blocked request refreshes its edges
	// and re-probes every few milliseconds, and rebuilding maps per
	// probe made the detector an allocation hotspot.
	wfMu      sync.Mutex
	wf        map[uint64][]uint64
	wfFree    [][]uint64        // recycled edge slices
	cycSeen   map[uint64]uint64 // generation marks for cycleLocked
	cycGen    uint64
	cycStack  []uint64
	walkSeen  map[uint64]uint64 // generation marks for hasCycleVictim's walk
	walkGen   uint64
	walkStack []uint64

	acquires      atomic.Uint64
	waits         atomic.Uint64
	deadlocks     atomic.Uint64
	timeouts      atomic.Uint64
	cancels       atomic.Uint64
	cacheHits     atomic.Uint64
	inherits      atomic.Uint64
	inheritGrants atomic.Uint64
	revokes       atomic.Uint64

	// Early Lock Release (staged commit pipeline): the highest log
	// position released-before-hardening by any committing transaction.
	// Acquirers fold the current horizon into their own durability
	// dependency, ordering their commit acknowledgment behind every
	// releaser whose (still volatile) data they may have observed.
	elrHorizon  atomic.Uint64
	elrReleases atomic.Uint64
}

// NewManager builds a lock manager.
func NewManager(opts Options) *Manager {
	if opts.Buckets <= 0 {
		opts.Buckets = 1024
	}
	n := 16
	for n < opts.Buckets {
		n <<= 1
	}
	if opts.DefaultTimeout == 0 {
		opts.DefaultTimeout = 500 * time.Millisecond
	}
	m := &Manager{
		opts:     opts,
		buckets:  make([]bucket, n),
		pool:     newPool(opts.Pool),
		mask:     uint64(n - 1),
		wf:       make(map[uint64][]uint64),
		cycSeen:  make(map[uint64]uint64),
		walkSeen: make(map[uint64]uint64),
	}
	if opts.Table == TableGlobal {
		m.global = new(sync2.HybridLock)
		for i := range m.buckets {
			m.buckets[i].latch = m.global
		}
	} else {
		for i := range m.buckets {
			m.buckets[i].latch = new(sync2.HybridLock)
		}
	}
	return m
}

func (m *Manager) bucketFor(n Name) *bucket {
	return &m.buckets[n.hashKey()&m.mask]
}

// findHead returns the head for name in b, creating it if asked.
// Caller holds the bucket latch.
func (b *bucket) findHead(name Name, create bool) *lockHead {
	for h := b.heads; h != nil; h = h.next {
		if h.name == name {
			return h
		}
	}
	if !create {
		return nil
	}
	h := b.free
	if h != nil {
		b.free = h.next
	} else {
		h = &lockHead{}
	}
	h.name = name
	h.next = b.heads
	b.heads = h
	return h
}

// removeHeadIfEmpty unlinks h from b when it has no requests, recycling
// it onto the bucket's free list.
func (b *bucket) removeHeadIfEmpty(h *lockHead) {
	if h.queue != nil {
		return
	}
	for pp := &b.heads; *pp != nil; pp = &(*pp).next {
		if *pp == h {
			*pp = h.next
			h.next = b.free
			b.free = h
			return
		}
	}
}

// grantedCompatible reports whether mode is compatible with every granted
// request except exclude.
func grantedCompatible(h *lockHead, mode Mode, exclude *request) bool {
	for r := h.queue; r != nil; r = r.next {
		if r == exclude || !r.granted {
			continue
		}
		if !Compatible(r.mode, mode) {
			return false
		}
	}
	return true
}

// hasWaiters reports whether any request other than exclude is blocked on
// h (callers test admission for a request already linked into the queue).
func hasWaiters(h *lockHead, exclude *request) bool {
	for r := h.queue; r != nil; r = r.next {
		if r == exclude {
			continue
		}
		if !r.granted || r.want != r.mode {
			return true
		}
	}
	return false
}

// grantWaiters re-examines h after a release or conversion and grants
// whatever can now proceed: conversions first (they already hold the
// object), then FIFO waiters until the first incompatible one.
// Caller holds the bucket latch. The manager is needed to retire the
// grantee's waits-for edges *at grant time*: clearing them only when the
// woken goroutine resumes leaves a window in which a stale edge
// ("A waits for B") coexists with the new reality ("B waits for A"),
// producing false deadlock cycles.
func (h *lockHead) grantWaiters(m *Manager) {
	grant := func(r *request) {
		if m.opts.DetectDeadlock {
			m.clearEdges(r.txID.Load())
		}
		if r.wake != nil {
			close(r.wake)
			r.wake = nil
		}
	}
	// Conversions. grantableOrRevoke may unlink speculative holders
	// mid-iteration; an unlinked node's next pointer still leads back
	// into the live chain, so the walk stays sound.
	for r := h.queue; r != nil; r = r.next {
		if r.granted && r.want != r.mode {
			if m.grantableOrRevoke(h, r.want, r) {
				r.mode = r.want
				grant(r)
			}
		}
	}
	// FIFO waiters: queue is in reverse arrival order (push-front), so
	// collect and scan oldest-first.
	var reqs []*request
	for r := h.queue; r != nil; r = r.next {
		reqs = append(reqs, r)
	}
	for i := len(reqs) - 1; i >= 0; i-- {
		r := reqs[i]
		if r.granted {
			continue
		}
		if m.grantableOrRevoke(h, r.want, r) {
			r.granted = true
			r.mode = r.want
			grant(r)
		} else {
			break // strict FIFO beyond the first blocked waiter
		}
	}
}

// holdersIncompatibleWith collects txIDs whose granted requests block mode.
func holdersIncompatibleWith(h *lockHead, mode Mode, exclude *request) []uint64 {
	var ids []uint64
	for r := h.queue; r != nil; r = r.next {
		if r == exclude || !r.granted {
			continue
		}
		if !Compatible(r.mode, mode) {
			ids = append(ids, r.txID.Load())
		}
	}
	return ids
}

// blockersOf collects every transaction a fresh request r (wanting mode)
// waits on: granted holders whose mode conflicts, plus — because grants
// are strict FIFO — every earlier-arrived waiter or pending conversion,
// compatible or not (hasWaiters blocks r behind them regardless). The
// queue is push-front, so everything after r in the chain arrived before
// it. Without the waiter edges, a cycle that passes through a queued
// waiter (A holds x, B waits on x, C queued behind B while holding what
// A wants) is invisible to the detector and resolves only by timeout.
func blockersOf(h *lockHead, r *request, mode Mode) []uint64 {
	var ids []uint64
	myID := r.txID.Load()
	for rr := r.next; rr != nil; rr = rr.next {
		if rr.granted && rr.want == rr.mode {
			if !Compatible(rr.mode, mode) {
				ids = append(ids, rr.txID.Load())
			}
		} else if id := rr.txID.Load(); id != myID {
			ids = append(ids, id)
		}
	}
	return ids
}

// Lock acquires name in mode for txID, blocking until granted, deadlock,
// timeout (0 uses the default), or ctx cancellation — whichever comes
// first (the earliest of the ctx deadline and the timeout wins).
// Re-acquiring an equal-or-weaker mode is a no-op; a stronger mode
// performs a conversion. Cancellation returns ErrCanceled wrapping the
// context's error and dequeues the request promptly, leaving the queue
// grantable for every waiter behind it.
func (m *Manager) Lock(ctx context.Context, txID uint64, name Name, mode Mode, timeout time.Duration) error {
	if mode == NL {
		return nil
	}
	if err := ctx.Err(); err != nil {
		m.cancels.Add(1)
		return fmt.Errorf("%w: tx %d on %v: %w", ErrCanceled, txID, name, context.Cause(ctx))
	}
	if timeout == 0 {
		timeout = m.opts.DefaultTimeout
	}
	b := m.bucketFor(name)
	b.latch.Lock()
	h := b.findHead(name, true)

	// Existing request by this transaction?
	var mine *request
	for r := h.queue; r != nil; r = r.next {
		if r.txID.Load() == txID {
			mine = r
			break
		}
	}
	if mine != nil && mine.granted {
		want := Supremum(mine.mode, mode)
		if want == mine.mode {
			b.latch.Unlock()
			m.acquires.Add(1)
			return nil // already strong enough
		}
		// Conversion: incompatible speculative holders are revoked, not
		// waited on — an inherited lock must never block a live request.
		if m.grantableOrRevoke(h, want, mine) {
			mine.mode = want
			mine.want = want
			b.latch.Unlock()
			m.acquires.Add(1)
			return nil
		}
		mine.want = want
		mine.wake = make(chan struct{})
		wake := mine.wake
		blockers := holdersIncompatibleWith(h, want, mine)
		b.latch.Unlock()
		return m.wait(ctx, txID, name, mine, wake, blockers, timeout, true)
	}

	// Fresh request.
	r := m.pool.get()
	r.txID.Store(txID)
	r.want = mode
	r.head = h
	r.next = h.queue
	h.queue = r
	if !hasWaiters(h, r) && m.grantableOrRevoke(h, mode, r) {
		r.granted = true
		r.mode = mode
		b.latch.Unlock()
		m.acquires.Add(1)
		return nil
	}
	r.wake = make(chan struct{})
	wake := r.wake
	blockers := blockersOf(h, r, mode)
	b.latch.Unlock()
	return m.wait(ctx, txID, name, r, wake, blockers, timeout, false)
}

// detectPoll is how often a blocked request refreshes its waits-for
// edges and re-runs cycle detection while a cycle is suspected (two
// consecutive confirmations are needed, so real-deadlock latency is
// ~2×detectPoll). Waiters with no suspected cycle back their polling
// off exponentially to detectPollMax so long benign waits — the hot-lock
// queues this engine is built around — don't hammer the bucket latch and
// the waits-for mutex.
const (
	detectPoll    = 3 * time.Millisecond
	detectPollMax = 24 * time.Millisecond
)

// wait blocks txID's request until granted, deadlock, timeout or ctx
// cancellation.
//
// With deadlock detection on, the wait is a poll loop: every detectPoll
// the waiter re-derives its blockers from the live queue under the
// bucket latch and replaces its waits-for edges, then re-runs cycle
// detection. Deriving edges from current state (rather than a snapshot
// taken at enqueue) is what keeps the graph honest — snapshots go stale
// as earlier waiters are granted and re-queue, and a stale edge can both
// fabricate cycles (spurious victims) and hide real ones (timeout
// storms). A cycle must survive two consecutive accurate snapshots
// before its designated victim (largest txID: youngest-dies, so retry
// loops cannot livelock on mutual victimization) backs out; a
// non-victim that sees the cycle outlive many polls aborts itself as a
// fallback rather than stalling until the lock timeout.
func (m *Manager) wait(ctx context.Context, txID uint64, name Name, r *request, wake chan struct{}, blockers []uint64, timeout time.Duration, conversion bool) error {
	m.waits.Add(1)
	if !m.opts.DetectDeadlock {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		select {
		case <-wake:
			m.acquires.Add(1)
			return nil
		case <-ctx.Done():
			return m.cancelFor(ctx, txID, name, r, wake, conversion)
		case <-timer.C:
			if m.finishWait(name, r, wake, conversion) {
				m.acquires.Add(1)
				return nil // the grant raced the timer: keep the lock
			}
			m.timeouts.Add(1)
			return fmt.Errorf("%w: tx %d on %v after %v", ErrTimeout, txID, name, timeout)
		}
	}

	defer m.clearEdges(txID)
	m.setEdges(txID, blockers)
	deadline := time.Now().Add(timeout)
	suspicion := 0
	interval := detectPoll
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-wake:
			m.acquires.Add(1)
			return nil
		case <-ctx.Done():
			return m.cancelFor(ctx, txID, name, r, wake, conversion)
		case <-timer.C:
		}
		if !time.Now().Before(deadline) {
			if m.finishWait(name, r, wake, conversion) {
				m.acquires.Add(1)
				return nil // the grant raced the timer: keep the lock
			}
			m.timeouts.Add(1)
			return fmt.Errorf("%w: tx %d on %v after %v", ErrTimeout, txID, name, timeout)
		}
		granted, cur := m.currentBlockers(name, r, wake, conversion)
		if granted {
			m.acquires.Add(1)
			return nil
		}
		m.setEdges(txID, cur)
		cycle, victim := m.hasCycleVictim(txID)
		switch {
		case !cycle:
			suspicion = 0
			if interval < detectPollMax {
				interval *= 2
			}
		case victim && suspicion >= 1, suspicion >= 12:
			// Confirmed victim — or a cycle that outlived the whole
			// window because its victim slept past its own check.
			if m.finishWait(name, r, wake, conversion) {
				m.acquires.Add(1)
				return nil // the grant raced the verdict: keep the lock
			}
			m.deadlocks.Add(1)
			return fmt.Errorf("%w: tx %d on %v", ErrDeadlock, txID, name)
		default:
			suspicion++
			interval = detectPoll // confirm quickly
		}
		timer.Reset(interval)
	}
}

// currentBlockers re-derives, under the bucket latch, the set of
// transactions r currently waits on — or reports that r has been granted
// meanwhile.
func (m *Manager) currentBlockers(name Name, r *request, wake chan struct{}, conversion bool) (granted bool, blockers []uint64) {
	b := m.bucketFor(name)
	b.latch.Lock()
	defer b.latch.Unlock()
	select {
	case <-wake:
		return true, nil
	default:
	}
	if conversion {
		return false, holdersIncompatibleWith(r.head, r.want, r)
	}
	return false, blockersOf(r.head, r, r.want)
}

// cancelFor resolves a wait whose context fired. A grant that raced the
// cancellation wins — the lock is kept and nil returned, so the caller's
// bookkeeping (2PL lock lists) stays consistent; the cancellation will
// surface at the next blocking point instead.
func (m *Manager) cancelFor(ctx context.Context, txID uint64, name Name, r *request, wake chan struct{}, conversion bool) error {
	if m.finishWait(name, r, wake, conversion) {
		m.acquires.Add(1)
		return nil
	}
	m.cancels.Add(1)
	return fmt.Errorf("%w: tx %d on %v: %w", ErrCanceled, txID, name, context.Cause(ctx))
}

// finishWait concludes a wait the caller is abandoning (timeout,
// cancellation, or a deadlock verdict). The wake channel is re-checked
// under the bucket latch — grants happen under it, so the check is
// race-free: either the grant already won (report true, keep the lock) or
// the request is dequeued / the pending conversion reverted, and waiters
// behind it are re-examined so the queue stays grantable.
func (m *Manager) finishWait(name Name, r *request, wake chan struct{}, conversion bool) (granted bool) {
	b := m.bucketFor(name)
	b.latch.Lock()
	select {
	case <-wake:
		b.latch.Unlock()
		return true
	default:
	}
	m.cancelWaitLocked(b, r, conversion)
	b.latch.Unlock()
	return false
}

func (m *Manager) cancelWaitLocked(b *bucket, r *request, conversion bool) {
	h := r.head
	if conversion {
		// Keep the original granted mode; drop the conversion intent.
		r.want = r.mode
		r.wake = nil
	} else {
		unlinkRequest(h, r)
		m.pool.put(r)
	}
	h.grantWaiters(m)
	b.removeHeadIfEmpty(h)
}

func unlinkRequest(h *lockHead, r *request) {
	for pp := &h.queue; *pp != nil; pp = &(*pp).next {
		if *pp == r {
			*pp = r.next
			return
		}
	}
}

// ErrWouldBlock is returned by TryLockNoWait when the request cannot be
// granted immediately.
var ErrWouldBlock = errors.New("lock: would block")

// TryLockNoWait acquires name in mode for txID only if it can be granted
// immediately, without ever enqueueing. Callers holding page latches use
// this to avoid lock-waits-under-latch deadlocks.
func (m *Manager) TryLockNoWait(txID uint64, name Name, mode Mode) error {
	if mode == NL {
		return nil
	}
	b := m.bucketFor(name)
	b.latch.Lock()
	defer b.latch.Unlock()
	h := b.findHead(name, true)
	var mine *request
	for r := h.queue; r != nil; r = r.next {
		if r.txID.Load() == txID {
			mine = r
			break
		}
	}
	if mine != nil && mine.granted {
		want := Supremum(mine.mode, mode)
		if want == mine.mode {
			m.acquires.Add(1)
			return nil
		}
		if m.grantableOrRevoke(h, want, mine) {
			mine.mode = want
			mine.want = want
			m.acquires.Add(1)
			return nil
		}
		b.removeHeadIfEmpty(h)
		return ErrWouldBlock
	}
	if !hasWaiters(h, nil) && m.grantableOrRevoke(h, mode, nil) {
		r := m.pool.get()
		r.txID.Store(txID)
		r.mode = mode
		r.want = mode
		r.granted = true
		r.head = h
		r.next = h.queue
		h.queue = r
		m.acquires.Add(1)
		return nil
	}
	b.removeHeadIfEmpty(h)
	return ErrWouldBlock
}

// RaiseELR publishes horizon as an early-release point before the caller
// drops a committing transaction's locks: the commit record covering
// horizon is in the log but possibly not durable yet. Later acquirers of
// any lock must treat the horizon as a durability dependency (see
// ELRHorizon). The horizon is manager-global — coarser than per-lock
// tracking, but safe, and commit-record ordering in the single log makes
// the over-approximation nearly free: a dependent's own commit LSN almost
// always exceeds it anyway.
func (m *Manager) RaiseELR(horizon uint64) {
	m.elrReleases.Add(1)
	for {
		old := m.elrHorizon.Load()
		if horizon <= old || m.elrHorizon.CompareAndSwap(old, horizon) {
			return
		}
	}
}

// ELRHorizon returns the current early-release horizon: the log position
// that must be durable before data guarded by any recently acquired lock
// may be considered committed.
func (m *Manager) ELRHorizon() uint64 { return m.elrHorizon.Load() }

// Unlock releases txID's lock on name. Unlocking a name not held is a
// no-op (idempotent release simplifies abort paths).
func (m *Manager) Unlock(txID uint64, name Name) {
	b := m.bucketFor(name)
	b.latch.Lock()
	h := b.findHead(name, false)
	if h == nil {
		b.latch.Unlock()
		return
	}
	var mine *request
	for r := h.queue; r != nil; r = r.next {
		if r.txID.Load() == txID && r.granted {
			mine = r
			break
		}
	}
	if mine == nil {
		b.latch.Unlock()
		return
	}
	unlinkRequest(h, mine)
	h.grantWaiters(m)
	b.removeHeadIfEmpty(h)
	b.latch.Unlock()
	if mine.spec.Load() == specOwned {
		// A request that is (or was) parked for inheritance may still be
		// referenced by its agent; leave it to the garbage collector
		// instead of recycling it under a live pointer.
		m.pool.put(mine)
	}
}

// NoteCacheHits folds n transaction-private lock-cache hits into the
// manager's counters. The engine counts hits on a plain per-transaction
// field (the fast path must not touch a shared cache line) and reports
// them in one call at release time.
func (m *Manager) NoteCacheHits(n uint64) { m.cacheHits.Add(n) }

// Holds returns the mode txID currently holds on name (NL if none).
func (m *Manager) Holds(txID uint64, name Name) Mode {
	b := m.bucketFor(name)
	b.latch.Lock()
	defer b.latch.Unlock()
	h := b.findHead(name, false)
	if h == nil {
		return NL
	}
	for r := h.queue; r != nil; r = r.next {
		if r.txID.Load() == txID && r.granted {
			return r.mode
		}
	}
	return NL
}

// setEdges replaces txID's outgoing waits-for edges with blockers,
// reusing the transaction's previous edge slice (or a recycled one):
// the common caller is a blocked request refreshing the same edge set
// every poll, which should not allocate.
func (m *Manager) setEdges(txID uint64, blockers []uint64) {
	m.wfMu.Lock()
	set, ok := m.wf[txID]
	if !ok && len(m.wfFree) > 0 {
		set = m.wfFree[len(m.wfFree)-1]
		m.wfFree = m.wfFree[:len(m.wfFree)-1]
	}
	set = set[:0]
	for _, b := range blockers {
		if b != txID {
			set = append(set, b)
		}
	}
	m.wf[txID] = set
	m.wfMu.Unlock()
}

// hasCycleVictim re-runs cycle detection for txID and reports whether a
// cycle exists and whether txID should be its victim. Victim policy:
// youngest-dies — the largest transaction id on the cycle aborts, so
// exactly one participant backs out and mutual victimization (livelock
// under retry loops) cannot occur.
func (m *Manager) hasCycleVictim(txID uint64) (cycle, victim bool) {
	m.wfMu.Lock()
	defer m.wfMu.Unlock()
	if !m.cycleLocked(txID) {
		return false, false
	}
	// txID is on a cycle; find the cycle's members by walking edges
	// restricted to nodes that can reach txID (approximation: all nodes on
	// any path back to txID). Scratch is distinct from cycleLocked's —
	// the walk re-probes cycleLocked per candidate node.
	m.walkGen++
	if len(m.walkSeen) > seenHighWater {
		clear(m.walkSeen)
	}
	g := m.walkGen
	maxID := txID
	m.walkSeen[txID] = g
	stack := append(m.walkStack[:0], txID)
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range m.wf[u] {
			if m.walkSeen[v] != g {
				m.walkSeen[v] = g
				stack = append(stack, v)
				if v > maxID && m.cycleLocked(v) {
					maxID = v
				}
			}
		}
	}
	m.walkStack = stack
	return true, txID == maxID
}

// seenHighWater bounds the generation-marked scratch maps: past it the
// map is cleared rather than carrying marks for every transaction that
// ever blocked.
const seenHighWater = 1 << 13

// cycleLocked reports whether a waits-for path leads from txID back to
// itself: an iterative DFS over manager-owned scratch (generation marks
// instead of a fresh map per probe). Caller holds wfMu.
func (m *Manager) cycleLocked(txID uint64) bool {
	m.cycGen++
	if len(m.cycSeen) > seenHighWater {
		clear(m.cycSeen)
	}
	g := m.cycGen
	stack := append(m.cycStack[:0], m.wf[txID]...)
	found := false
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if u == txID {
			found = true
			break
		}
		if m.cycSeen[u] == g {
			continue
		}
		m.cycSeen[u] = g
		stack = append(stack, m.wf[u]...)
	}
	m.cycStack = stack
	return found
}

// clearEdges removes txID's outgoing waits-for edges, recycling the
// slice for the next setEdges.
func (m *Manager) clearEdges(txID uint64) {
	m.wfMu.Lock()
	if set, ok := m.wf[txID]; ok {
		delete(m.wf, txID)
		if cap(set) > 0 && len(m.wfFree) < 64 {
			m.wfFree = append(m.wfFree, set[:0])
		}
	}
	m.wfMu.Unlock()
}

// Stats returns a snapshot of lock-manager counters.
func (m *Manager) Stats() Stats {
	s := Stats{
		Acquires:        m.acquires.Load(),
		Waits:           m.waits.Load(),
		Deadlocks:       m.deadlocks.Load(),
		Timeouts:        m.timeouts.Load(),
		Cancels:         m.cancels.Load(),
		PoolAllocs:      m.pool.allocations(),
		ELRReleases:     m.elrReleases.Load(),
		CacheHits:       m.cacheHits.Load(),
		Inherits:        m.inherits.Load(),
		InheritedGrants: m.inheritGrants.Load(),
		Revokes:         m.revokes.Load(),
	}
	if m.opts.Table == TableGlobal {
		s.Latch = m.global.Stats()
		// One latch guards every chain: a single critical section
		// snapshots the whole table.
		m.global.Lock()
		for i := range m.buckets {
			countChain(m.buckets[i].heads, &s)
		}
		m.global.Unlock()
	} else {
		for i := range m.buckets {
			st := m.buckets[i].latch.Stats()
			s.Latch.Acquisitions += st.Acquisitions
			s.Latch.Contended += st.Contended
			s.Latch.SpinIters += st.SpinIters
		}
		// Per-bucket latches: snapshot bucket by bucket. The gauges are
		// not a single consistent cut across buckets, but they are exact
		// on a quiescent table — the case the zero assertion cares about.
		for i := range m.buckets {
			b := &m.buckets[i]
			b.latch.Lock()
			countChain(b.heads, &s)
			b.latch.Unlock()
		}
	}
	return s
}

// countChain folds one bucket chain into the live gauges. Empty heads
// (recycled on the free list, or mid-removal) do not count.
func countChain(h *lockHead, s *Stats) {
	for ; h != nil; h = h.next {
		if h.queue == nil {
			continue
		}
		s.LiveHeads++
		for r := h.queue; r != nil; r = r.next {
			s.LiveRequests++
		}
	}
}
