package lock

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/page"
)

func newTestManager(t TableMode, p PoolKind) *Manager {
	return NewManager(Options{
		Buckets:        64,
		Table:          t,
		Pool:           p,
		DefaultTimeout: 200 * time.Millisecond,
		DetectDeadlock: true,
	})
}

func TestCompatibilityMatrixSpotChecks(t *testing.T) {
	cases := []struct {
		a, b Mode
		want bool
	}{
		{IS, IS, true}, {IS, IX, true}, {IS, S, true}, {IS, U, true}, {IS, X, false},
		{IX, IX, true}, {IX, S, false}, {IX, SIX, false},
		{S, S, true}, {S, IX, false}, {S, U, true},
		{SIX, IS, true}, {SIX, S, false},
		{U, IS, true}, {U, S, true}, {U, U, false}, {U, X, false},
		{X, IS, false}, {X, X, false},
	}
	for _, c := range cases {
		if got := Compatible(c.a, c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSupremumProperties(t *testing.T) {
	modes := []Mode{NL, IS, IX, S, SIX, U, X}
	for _, a := range modes {
		if Supremum(a, a) != a {
			t.Errorf("Supremum(%v,%v) != %v", a, a, a)
		}
		if Supremum(a, NL) != a || Supremum(NL, a) != a {
			t.Errorf("NL not identity for %v", a)
		}
		if Supremum(a, X) != X {
			t.Errorf("Supremum(%v,X) != X", a)
		}
		for _, b := range modes {
			s := Supremum(a, b)
			if !StrongerOrEqual(s, a) || !StrongerOrEqual(s, b) {
				t.Errorf("Supremum(%v,%v)=%v not an upper bound", a, b, s)
			}
		}
	}
	if Supremum(S, IX) != SIX {
		t.Errorf("Supremum(S,IX) = %v, want SIX", Supremum(S, IX))
	}
}

// TestQuickSupremumCompatibility: anything compatible with sup(a,b) is
// compatible with both a and b.
func TestQuickSupremumCompatibility(t *testing.T) {
	f := func(x, y, z uint8) bool {
		a, b, c := Mode(x%uint8(numModes)), Mode(y%uint8(numModes)), Mode(z%uint8(numModes))
		s := Supremum(a, b)
		if Compatible(s, c) {
			return Compatible(a, c) && Compatible(b, c)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntentionAndStrings(t *testing.T) {
	if Intention(S) != IS || Intention(IS) != IS || Intention(X) != IX ||
		Intention(U) != IX || Intention(IX) != IX {
		t.Error("Intention mapping wrong")
	}
	for _, m := range []Mode{NL, IS, IX, S, SIX, U, X} {
		if m.String() == "" {
			t.Error("empty mode name")
		}
	}
	if ScopeDatabase.String() != "db" || ScopeStore.String() != "store" || ScopeRow.String() != "row" {
		t.Error("scope strings")
	}
	n := RowName(3, page.RID{Page: 7, Slot: 2})
	if n.String() != "store3/pg7:2" {
		t.Errorf("RowName.String = %q", n.String())
	}
	if p, ok := n.Parent(); !ok || p != StoreName(3) {
		t.Error("row parent should be its store")
	}
	if p, ok := StoreName(3).Parent(); !ok || p != DatabaseName() {
		t.Error("store parent should be db")
	}
	if _, ok := DatabaseName().Parent(); ok {
		t.Error("db has no parent")
	}
}

func testManagerVariants(t *testing.T, fn func(t *testing.T, m *Manager)) {
	for _, tm := range []TableMode{TableGlobal, TablePerBucket} {
		for _, pk := range []PoolKind{PoolMutex, PoolLockFree} {
			tm, pk := tm, pk
			t.Run(tm.String()+"/"+pk.String(), func(t *testing.T) {
				fn(t, newTestManager(tm, pk))
			})
		}
	}
}

func TestSharedThenExclusive(t *testing.T) {
	testManagerVariants(t, func(t *testing.T, m *Manager) {
		n := StoreName(1)
		if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Lock(context.Background(), 2, n, S, 0); err != nil {
			t.Fatal(err) // S compatible with S
		}
		if err := m.Lock(context.Background(), 3, n, X, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
			t.Fatalf("X over two S holders = %v, want timeout", err)
		}
		m.Unlock(1, n)
		m.Unlock(2, n)
		if err := m.Lock(context.Background(), 3, n, X, 0); err != nil {
			t.Fatal(err)
		}
		if m.Holds(3, n) != X {
			t.Fatalf("Holds = %v, want X", m.Holds(3, n))
		}
		m.Unlock(3, n)
		if m.Holds(3, n) != NL {
			t.Fatal("lock survived unlock")
		}
	})
}

func TestReacquireAndConversion(t *testing.T) {
	testManagerVariants(t, func(t *testing.T, m *Manager) {
		n := RowName(1, page.RID{Page: 2, Slot: 3})
		if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
			t.Fatal(err)
		}
		// Re-acquire weaker/equal: no-op.
		if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Lock(context.Background(), 1, n, IS, 0); err != nil {
			t.Fatal(err)
		}
		if m.Holds(1, n) != S {
			t.Fatalf("mode = %v, want S", m.Holds(1, n))
		}
		// Upgrade S -> X with no other holders: immediate.
		if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
			t.Fatal(err)
		}
		if m.Holds(1, n) != X {
			t.Fatalf("mode = %v, want X", m.Holds(1, n))
		}
		m.Unlock(1, n)
	})
}

func TestConversionWaitsForReaders(t *testing.T) {
	m := newTestManager(TablePerBucket, PoolLockFree)
	n := StoreName(9)
	if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 2, n, S, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- m.Lock(context.Background(), 1, n, X, time.Second) // conversion blocked by tx2
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("conversion granted too early: %v", err)
	default:
	}
	m.Unlock(2, n)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if m.Holds(1, n) != X {
		t.Fatalf("mode after conversion = %v", m.Holds(1, n))
	}
	m.Unlock(1, n)
}

func TestSupremumConversionSIX(t *testing.T) {
	m := newTestManager(TablePerBucket, PoolLockFree)
	n := StoreName(4)
	if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 1, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	if m.Holds(1, n) != SIX {
		t.Fatalf("S + IX = %v, want SIX", m.Holds(1, n))
	}
	m.Unlock(1, n)
}

func TestFIFONoStarvation(t *testing.T) {
	m := newTestManager(TablePerBucket, PoolLockFree)
	n := StoreName(5)
	if err := m.Lock(context.Background(), 1, n, S, 0); err != nil {
		t.Fatal(err)
	}
	// Writer queues.
	wDone := make(chan error, 1)
	go func() { wDone <- m.Lock(context.Background(), 2, n, X, time.Second) }()
	time.Sleep(20 * time.Millisecond)
	// A later reader must NOT jump the queued writer.
	rDone := make(chan error, 1)
	go func() { rDone <- m.Lock(context.Background(), 3, n, S, time.Second) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-rDone:
		t.Fatal("reader jumped ahead of queued writer")
	default:
	}
	m.Unlock(1, n)
	if err := <-wDone; err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, n)
	if err := <-rDone; err != nil {
		t.Fatal(err)
	}
	m.Unlock(3, n)
}

func TestDeadlockDetection(t *testing.T) {
	m := newTestManager(TablePerBucket, PoolLockFree)
	a, b := StoreName(1), StoreName(2)
	if err := m.Lock(context.Background(), 1, a, X, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(context.Background(), 2, b, X, 0); err != nil {
		t.Fatal(err)
	}
	// tx1 waits for b (held by tx2).
	errc := make(chan error, 1)
	go func() { errc <- m.Lock(context.Background(), 1, b, X, 2*time.Second) }()
	time.Sleep(30 * time.Millisecond)
	// tx2 requests a: cycle. The detector must abort this quickly, well
	// before the 2s timeout.
	start := time.Now()
	err := m.Lock(context.Background(), 2, a, X, 2*time.Second)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("deadlock detection took as long as a timeout")
	}
	// tx2 releases b so tx1 can proceed.
	m.Unlock(2, b)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if m.Stats().Deadlocks == 0 {
		t.Error("deadlock not counted")
	}
	m.Unlock(1, a)
	m.Unlock(1, b)
}

func TestTimeoutWithoutDetector(t *testing.T) {
	m := NewManager(Options{Buckets: 16, DefaultTimeout: 50 * time.Millisecond})
	n := StoreName(1)
	if err := m.Lock(context.Background(), 1, n, X, 0); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Lock(context.Background(), 2, n, X, 0)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Errorf("timed out after %v, want ~50ms", d)
	}
	if m.Stats().Timeouts == 0 {
		t.Error("timeout not counted")
	}
	// After the timeout the waiter must be fully gone: unlock and relock.
	m.Unlock(1, n)
	if err := m.Lock(context.Background(), 2, n, X, 0); err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, n)
}

func TestUnlockNotHeldIsNoop(t *testing.T) {
	m := newTestManager(TableGlobal, PoolMutex)
	m.Unlock(1, StoreName(1)) // nothing held: no panic
	if err := m.Lock(context.Background(), 1, StoreName(1), S, 0); err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, StoreName(1)) // wrong tx: no effect
	if m.Holds(1, StoreName(1)) != S {
		t.Fatal("no-op unlock removed someone else's lock")
	}
	m.Unlock(1, StoreName(1))
}

func TestConcurrentRowLocking(t *testing.T) {
	testManagerVariants(t, func(t *testing.T, m *Manager) {
		// Concurrent transactions X-lock disjoint rows plus IX on the
		// shared store: all must succeed without waiting long.
		var wg sync.WaitGroup
		errs := make(chan error, 64)
		for tx := uint64(1); tx <= 8; tx++ {
			wg.Add(1)
			go func(tx uint64) {
				defer wg.Done()
				if err := m.Lock(context.Background(), tx, StoreName(1), IX, time.Second); err != nil {
					errs <- err
					return
				}
				for i := 0; i < 50; i++ {
					rid := page.RID{Page: page.ID(tx), Slot: uint16(i)}
					if err := m.Lock(context.Background(), tx, RowName(1, rid), X, time.Second); err != nil {
						errs <- err
						return
					}
				}
				for i := 0; i < 50; i++ {
					rid := page.RID{Page: page.ID(tx), Slot: uint16(i)}
					m.Unlock(tx, RowName(1, rid))
				}
				m.Unlock(tx, StoreName(1))
			}(tx)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		st := m.Stats()
		if st.Acquires < 8*51 {
			t.Errorf("acquires = %d, want >= %d", st.Acquires, 8*51)
		}
	})
}

func TestHotLockContention(t *testing.T) {
	// The WAREHOUSE-row pattern: every transaction updates the same row.
	m := newTestManager(TablePerBucket, PoolLockFree)
	hot := RowName(1, page.RID{Page: 1, Slot: 0})
	var counter int
	var wg sync.WaitGroup
	for tx := uint64(1); tx <= 4; tx++ {
		wg.Add(1)
		go func(tx uint64) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := m.Lock(context.Background(), tx, hot, X, 5*time.Second); err != nil {
					t.Error(err)
					return
				}
				counter++
				// Yield while holding the lock so other goroutines pile up
				// on it even at GOMAXPROCS=1.
				runtime.Gosched()
				m.Unlock(tx, hot)
			}
		}(tx)
	}
	wg.Wait()
	if counter != 400 {
		t.Fatalf("counter = %d, want 400 (mutual exclusion violated)", counter)
	}
}

func TestPoolReuse(t *testing.T) {
	for _, pk := range []PoolKind{PoolMutex, PoolLockFree} {
		pk := pk
		t.Run(pk.String(), func(t *testing.T) {
			p := newPool(pk)
			r1 := p.get()
			r1.txID.Store(9)
			p.put(r1)
			r2 := p.get()
			if r2 != r1 {
				t.Error("pool did not reuse the freed request")
			}
			if r2.txID.Load() != 0 {
				t.Error("pooled request not reset")
			}
			if p.allocations() != 1 {
				t.Errorf("allocations = %d, want 1", p.allocations())
			}
		})
	}
}
