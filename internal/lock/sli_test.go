package lock

import (
	"context"
	"sync"
	"testing"
	"time"
)

func sliManager() *Manager {
	return NewManager(Options{Table: TablePerBucket, Pool: PoolLockFree, DetectDeadlock: true})
}

func TestInheritAndClaim(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()

	if err := m.Lock(ctx, 1, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	if !m.ReleaseInherit(1, n, ag) {
		t.Fatal("uncontended IX grant not inherited")
	}
	if ag.Inherited() != 1 {
		t.Fatalf("agent holds %d entries, want 1", ag.Inherited())
	}
	mode, ok := ag.Claim(n, 2)
	if !ok || mode != IX {
		t.Fatalf("Claim = %v, %v; want IX, true", mode, ok)
	}
	if got := m.Holds(2, n); got != IX {
		t.Fatalf("after claim Holds(2) = %v, want IX", got)
	}
	// A claimed lock releases through the normal path.
	m.Unlock(2, n)
	if got := m.Holds(2, n); got != NL {
		t.Fatalf("after unlock Holds(2) = %v, want NL", got)
	}
	st := m.Stats()
	if st.Inherits != 1 || st.InheritedGrants != 1 || st.Revokes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInheritRefusedForNonIntentModes(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	ctx := context.Background()
	for i, mode := range []Mode{S, SIX, U, X} {
		txID := uint64(10 + i)
		n := StoreName(uint32(100 + i))
		if err := m.Lock(ctx, txID, n, mode, 0); err != nil {
			t.Fatal(err)
		}
		if m.ReleaseInherit(txID, n, ag) {
			t.Fatalf("%v grant inherited; only IS/IX are eligible", mode)
		}
		m.Unlock(txID, n)
	}
}

func TestInheritRefusedWithWaiters(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()
	if err := m.Lock(ctx, 1, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Lock(ctx, 2, n, X, time.Second) }()
	// Wait until tx 2 is enqueued behind the IX grant.
	for i := 0; ; i++ {
		if m.Stats().Waits > 0 {
			break
		}
		if i > 1000 {
			t.Fatal("tx 2 never blocked")
		}
		time.Sleep(time.Millisecond)
	}
	if m.ReleaseInherit(1, n, ag) {
		t.Fatal("lock inherited over a waiter")
	}
	m.Unlock(1, n)
	if err := <-done; err != nil {
		t.Fatalf("waiter after release: %v", err)
	}
}

func TestRevokeOnConflict(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()
	if err := m.Lock(ctx, 1, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	if !m.ReleaseInherit(1, n, ag) {
		t.Fatal("not inherited")
	}
	// A conflicting request revokes the parked lock instead of waiting.
	start := time.Now()
	if err := m.Lock(ctx, 2, n, X, 0); err != nil {
		t.Fatalf("conflicting lock: %v", err)
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("conflicting request waited instead of revoking")
	}
	if mode, ok := ag.Claim(n, 3); ok {
		t.Fatalf("claim of revoked lock succeeded with %v", mode)
	}
	st := m.Stats()
	if st.Revokes != 1 {
		t.Fatalf("Revokes = %d, want 1", st.Revokes)
	}
	m.Unlock(2, n)
	// Fallback after a failed claim is a plain acquisition.
	if err := m.Lock(ctx, 3, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	m.Unlock(3, n)
}

func TestCompatibleRequestSharesInherited(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()
	if err := m.Lock(ctx, 1, n, IS, 0); err != nil {
		t.Fatal(err)
	}
	if !m.ReleaseInherit(1, n, ag) {
		t.Fatal("not inherited")
	}
	// IS is compatible with IX: no revocation needed, both coexist.
	if err := m.Lock(ctx, 2, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Revokes != 0 {
		t.Fatal("compatible request revoked the inherited lock")
	}
	if mode, ok := ag.Claim(n, 3); !ok || mode != IS {
		t.Fatalf("Claim = %v, %v; want IS, true", mode, ok)
	}
	m.Unlock(2, n)
	m.Unlock(3, n)
}

func TestAgentDrop(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()
	if err := m.Lock(ctx, 1, n, IX, 0); err != nil {
		t.Fatal(err)
	}
	if !m.ReleaseInherit(1, n, ag) {
		t.Fatal("not inherited")
	}
	ag.Drop()
	if ag.Inherited() != 0 {
		t.Fatalf("entries after Drop = %d", ag.Inherited())
	}
	// The table is fully released: an X lock is granted immediately.
	if err := m.Lock(ctx, 2, n, X, 0); err != nil {
		t.Fatal(err)
	}
	m.Unlock(2, n)
}

// TestGrantWaitersRevokesSpeculative: a waiter that enqueued behind
// other waiters (so its own enqueue-time revocation was skipped) must
// still revoke a parked speculative lock when its turn to be granted
// comes — grantWaiters offers revocation too, or the parked lock of a
// dead transaction could outwait the lock timeout.
func TestGrantWaitersRevokesSpeculative(t *testing.T) {
	m := sliManager()
	ag := m.NewAgent()
	n := StoreName(1)
	ctx := context.Background()

	// Parked speculative IS (dead holder) plus a live S holder.
	if err := m.Lock(ctx, 1, n, IS, 0); err != nil {
		t.Fatal(err)
	}
	if !m.ReleaseInherit(1, n, ag) {
		t.Fatal("IS not inherited")
	}
	if err := m.Lock(ctx, 2, n, S, 0); err != nil {
		t.Fatal(err)
	}
	waitBlocked := func(want uint64) {
		t.Helper()
		for i := 0; m.Stats().Waits < want; i++ {
			if i > 2000 {
				t.Fatal("waiter never blocked")
			}
			time.Sleep(time.Millisecond)
		}
	}
	// w1 wants IX: compatible with the parked IS, blocked only by the
	// live S — nothing to revoke at enqueue.
	w1 := make(chan error, 1)
	go func() { w1 <- m.Lock(ctx, 3, n, IX, 5*time.Second) }()
	waitBlocked(1)
	// w2 wants X: blocked, and hasWaiters skips its enqueue-time
	// revocation of the parked IS.
	w2 := make(chan error, 1)
	go func() { w2 <- m.Lock(ctx, 4, n, X, 5*time.Second) }()
	waitBlocked(2)

	m.Unlock(2, n) // grants w1 (IX coexists with parked IS)
	if err := <-w1; err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	m.Unlock(3, n) // w2's turn: grantWaiters must revoke the parked IS
	if err := <-w2; err != nil {
		t.Fatalf("queued waiter behind a speculative holder: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("w2 granted only after %v; revocation did not happen at grant time", elapsed)
	}
	if m.Stats().Revokes == 0 {
		t.Fatal("parked IS never revoked")
	}
	m.Unlock(4, n)
}

// TestInheritRevokeRace drives the claim/revoke CAS race under the race
// detector: one worker chains IX grants through inheritance while
// another keeps taking a conflicting S lock, so claims and revocations
// interleave freely. Every operation must succeed — an inherited lock
// may never block a live conflicting request for longer than its
// revocation.
func TestInheritRevokeRace(t *testing.T) {
	m := sliManager()
	n := StoreName(1)
	ctx := context.Background()
	const iters = 300
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	aDone := make(chan struct{})

	wg.Add(2)
	go func() { // inheriting worker: claim-or-lock IX, park, repeat
		defer wg.Done()
		defer close(aDone)
		ag := m.NewAgent()
		txID := uint64(1000)
		for i := 0; i < iters; i++ {
			txID++
			if _, ok := ag.Claim(n, txID); !ok {
				if err := m.Lock(ctx, txID, n, IX, 2*time.Second); err != nil {
					errs <- err
					return
				}
			}
			if !m.ReleaseInherit(txID, n, ag) {
				m.Unlock(txID, n)
			}
			if i%4 == 0 {
				// Leave the parked lock exposed so the conflicting
				// worker's revocation races the next claim.
				time.Sleep(time.Microsecond)
			}
		}
		ag.Drop()
	}()
	go func() { // conflicting worker: S lock revokes the parked IX
		defer wg.Done()
		for txID := uint64(2_000_000); ; txID++ {
			select {
			case <-aDone:
				return
			default:
			}
			if err := m.Lock(ctx, txID, n, S, 2*time.Second); err != nil {
				errs <- err
				return
			}
			m.Unlock(txID, n)
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Inherits == 0 {
		t.Fatal("race test never inherited")
	}
	if st.Revokes == 0 {
		t.Fatal("race test never revoked")
	}
}
