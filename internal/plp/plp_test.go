package plp

import (
	"bytes"
	"testing"
)

func TestOwnerAndBounds(t *testing.T) {
	m := New(8, 4)
	if got := m.Bounds(); !equalU32(got, []uint32{1, 3, 5, 7, 9}) {
		t.Fatalf("bounds = %v", got)
	}
	for rk, want := range map[uint32]int{1: 0, 2: 0, 3: 1, 6: 2, 7: 3, 8: 3} {
		if got := m.Owner(rk); got != want {
			t.Errorf("Owner(%d) = %d, want %d", rk, got, want)
		}
	}
	// Clamping keeps the router total.
	if m.Owner(0) != 0 || m.Owner(99) != m.Parts()-1 {
		t.Errorf("out-of-range keys did not clamp: %d %d", m.Owner(0), m.Owner(99))
	}
	// More partitions than keys clamps the partition count.
	if n := New(3, 8); n.Parts() != 3 {
		t.Errorf("Parts = %d, want 3", n.Parts())
	}
}

func TestWithBoundsVersioning(t *testing.T) {
	m := New(8, 4)
	n, err := m.WithBounds([]uint32{1, 4, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if n.Version() != m.Version()+1 {
		t.Fatalf("version = %d, want %d", n.Version(), m.Version()+1)
	}
	if m.Owner(3) != 1 || n.Owner(3) != 0 {
		t.Fatalf("ownership flip not visible: old=%d new=%d", m.Owner(3), n.Owner(3))
	}
	for _, bad := range [][]uint32{
		{1, 4, 5, 9},     // wrong length
		{2, 4, 5, 7, 9},  // does not start at 1
		{1, 4, 5, 7, 10}, // does not cover the keyspace
		{1, 5, 4, 7, 9},  // not monotonic
	} {
		if _, err := m.WithBounds(bad); err == nil {
			t.Errorf("WithBounds(%v) accepted", bad)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := New(4, 2)
	m, err := m.WithTable(7, []uint64{10, 20, 30, 40})
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithTable(3, []uint64{11, 21, 31, 41})
	if err != nil {
		t.Fatal(err)
	}
	m, err = m.WithBounds([]uint32{1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	enc := m.Encode()
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Encode(), enc) {
		t.Fatal("roundtrip not byte-identical")
	}
	if got.Version() != m.Version() || got.Owner(3) != 0 || got.Owner(4) != 1 {
		t.Fatalf("decoded map differs: version=%d owner(3)=%d owner(4)=%d",
			got.Version(), got.Owner(3), got.Owner(4))
	}
	if !equalU64(got.Roots(3), []uint64{11, 21, 31, 41}) {
		t.Fatalf("roots(3) = %v", got.Roots(3))
	}
	// Registration with the wrong segment count is rejected.
	if _, err := m.WithTable(9, []uint64{1}); err == nil {
		t.Error("short root list accepted")
	}
	// Corruption is detected: bad magic, truncation, trailing bytes.
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, err := Decode(bad); err == nil {
		t.Error("bad magic decoded")
	}
	if _, err := Decode(enc[:10]); err == nil {
		t.Error("truncated map decoded")
	}
	if _, err := Decode(append(append([]byte(nil), enc...), 0)); err == nil {
		t.Error("trailing bytes decoded")
	}
}

func TestRepartition(t *testing.T) {
	m := New(8, 4)
	n := m.Repartition(2)
	if n.Parts() != 2 || n.Version() != m.Version()+1 {
		t.Fatalf("parts=%d version=%d", n.Parts(), n.Version())
	}
	if !equalU32(n.Bounds(), []uint32{1, 5, 9}) {
		t.Fatalf("bounds = %v", n.Bounds())
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
